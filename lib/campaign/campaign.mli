(** Deterministic sweep engine: topology cache, work-stealing scheduler,
    checkpoint/resume.  DESIGN.md §14 documents the architecture and its
    determinism argument.

    [run] expands nothing itself — it executes the cells of a parsed
    {!Spec.t} and streams one {!Journal} line per cell, in cell-index
    order, through [emit].  The emitted bytes are a pure function of the
    spec: independent of [domains], [schedule], [cache], pool worker
    availability, resume, and abort history.  Everything nondeterministic
    (wall-clock, journal file order, the steal count) stays out of the
    emitted lines and is reported only through {!stats}.

    The engine is quiet (no printing, no file I/O): callers own every
    channel via the [emit] and [journal] callbacks, and wall-clock enters
    only through the injected [clock] — which is what keeps the library
    inside rblint's R4/R8 determinism envelope. *)

type schedule =
  | Static  (** each lane runs exactly its strided share; no stealing *)
  | Stealing
      (** idle executors steal single cells from the most loaded lane —
          the default; results are identical either way *)

type stats = {
  cells : int;  (** total cells in the spec *)
  executed : int;  (** cells actually run this session *)
  replayed : int;  (** cells restored verbatim from [resume_lines] *)
  aborted : bool;  (** true when [abort_after] cut the run short *)
  steals : int;  (** cells executed off their initial lane *)
  gen_s : float;  (** clock time attributed to topology generation *)
  run_s : float;  (** clock time attributed to protocol execution *)
  drain_s : float;  (** coordinator time in journal/emit drains *)
  cell_wall : float array;
      (** per-cell clock seconds (generation + run); 0 for replayed cells *)
  cell_rounds : int array;
      (** per-cell simulated rounds; parsed from the journal line for
          replayed cells, so totals survive a resume *)
}

val run :
  ?domains:int ->
  ?schedule:schedule ->
  ?cache:bool ->
  ?journal:(string -> unit) ->
  ?resume_lines:string list ->
  ?select:int array ->
  ?abort_after:int ->
  ?on_cell:(completed:int -> total:int -> unit) ->
  ?clock:(unit -> float) ->
  emit:(string -> unit) ->
  Spec.t ->
  stats
(** Run a campaign.

    - [domains] is the lane count (default {!Rn_radio.Runner.default_domains});
      executors are pool workers plus the calling domain, at most one per
      lane.  Lane assignment is static and strided (cell [i] starts on
      lane [i mod domains]); under [Stealing] an executor whose lanes are
      dry takes one cell at a time from the back of the most loaded lane.
    - [cache] (default true) pre-builds every distinct topology once into
      an immutable array shared read-only by all executors; when false
      each cell regenerates its graph (same bytes — generators are pure
      functions of the instance descriptor).
    - [journal] is called with each finished cell's line as it is
      drained, in completion order — append it to a file and flush to
      checkpoint.  [resume_lines] replays a previous journal: lines whose
      job key matches the spec's cell are restored without re-running
      (malformed or stale lines are ignored), and are re-emitted — but
      not re-journaled — so the output stream is complete.
    - [select] restricts the run to the given cell indices — the shard a
      distributed campaign worker owns.  Unselected cells are invisible:
      never executed, journaled, or emitted, and resume lines naming them
      are ignored; [stats.cells] still reports the full spec size.
      Out-of-range indices are ignored; [Some [||]] runs nothing.
    - [abort_after n] simulates a kill: after [n] cells have been
      journaled this session the run stops draining, workers wind down,
      and [aborted] is reported — buffered-but-undrained results are
      dropped exactly as a real SIGKILL would drop them.
    - [on_cell] fires after each journaled cell with this session's
      completion count (the CLI's [--kill-after] hook).
    - [clock] (default [fun () -> 0.]) timestamps the profile fields in
      {!stats}; pass [Unix.gettimeofday] from bin/bench.
    - [emit] receives every cell line exactly once, in cell-index order,
      as soon as the index-order prefix is complete (streaming).

    @raise Failure if a protocol name in the spec is not registered
    (callers run [Rn_broadcast.Protocols.ensure_registered ()] first).
    Exceptions raised by protocol runs are re-raised after all executors
    stop. *)
