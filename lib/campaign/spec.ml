open Rn_util
open Rn_graph

(* ------------------------------------------------------------------ *)
(* Generator table                                                     *)
(* ------------------------------------------------------------------ *)

type pkind = I | F

type pval = Pi of int | Pf of float

(* (name, randomized, parameters in canonical label order).  The label
   order is frozen: it feeds the job-key hash, so reordering a row here
   would silently orphan every journal written before the change. *)
let generators =
  [
    ("path", false, [ ("n", I) ]);
    ("cycle", false, [ ("n", I) ]);
    ("star", false, [ ("n", I) ]);
    ("complete", false, [ ("n", I) ]);
    ("grid", false, [ ("w", I); ("h", I) ]);
    ("tree", false, [ ("arity", I); ("depth", I) ]);
    ("caterpillar", false, [ ("spine", I); ("legs", I) ]);
    ("barbell", false, [ ("clique", I); ("bridge", I) ]);
    ("gnp", true, [ ("n", I); ("p", F) ]);
    ("random", true, [ ("n", I); ("extra", I) ]);
    ("layered", true, [ ("depth", I); ("width", I); ("p", F) ]);
    ("clusters", true, [ ("clusters", I); ("size", I); ("p_intra", F) ]);
    ("disk", true, [ ("n", I); ("radius", F) ]);
  ]

let generator_names = List.map (fun (n, _, _) -> n) generators

let find_generator name =
  let rec go = function
    | [] -> None
    | ((n, _, _) as g) :: rest ->
        if String.equal n name then Some g else go rest
  in
  go generators

type instance = {
  i_gen : string;
  i_params : (string * pval) list;  (* in table order *)
  i_tseed : int option;  (* Some for randomized generators *)
  i_label : string;
}

type cell = {
  idx : int;
  topo : int;
  proto : string;
  k : int option;
  seed : int;
  label : string;
  key : string;
  run_seed : int;
}

type t = { t_instances : instance array; t_cells : cell array }

let instances t = Array.copy t.t_instances
let cells t = Array.copy t.t_cells
let instance_label i = i.i_label

(* ------------------------------------------------------------------ *)
(* Job keys: FNV-1a 64 over the canonical label.  Hand-rolled because   *)
(* R2 bans [Hashtbl.hash] (polymorphic, layout-dependent) from the      *)
(* deterministic core; FNV is stable across runs, OCaml versions, and   *)
(* architectures.                                                       *)
(* ------------------------------------------------------------------ *)

let fnv64 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h :=
        Int64.mul
          (Int64.logxor !h (Int64.of_int (Char.code c)))
          0x100000001b3L)
    s;
  !h

let key_of_label label = Printf.sprintf "%016Lx" (fnv64 label)

(* Each cell's engine seed is a second hash domain over the key: the cell
   draws from its own SplitMix64 stream, disjoint by construction from
   every other cell's, so results cannot depend on execution order. *)
let run_seed_of_key key = Int64.to_int (fnv64 (key ^ "#rng")) land max_int

let pval_str = function
  | Pi i -> string_of_int i
  | Pf f -> Jsons.float_lit f

let make_label gen params tseed =
  let b = Buffer.create 48 in
  Buffer.add_string b gen;
  Buffer.add_char b '(';
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b name;
      Buffer.add_char b '=';
      Buffer.add_string b (pval_str v))
    params;
  (match tseed with
  | Some s ->
      (match params with [] -> () | _ :: _ -> Buffer.add_char b ',');
      Buffer.add_string b "tseed=";
      Buffer.add_string b (string_of_int s)
  | None -> ());
  Buffer.add_char b ')';
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Building                                                            *)
(* ------------------------------------------------------------------ *)

let param inst name =
  let rec go = function
    | [] -> invalid_arg ("Spec.build: missing param " ^ name)
    | (n, v) :: rest -> if String.equal n name then v else go rest
  in
  go inst.i_params

let gi inst name =
  match param inst name with
  | Pi i -> i
  | Pf _ -> invalid_arg ("Spec.build: param " ^ name ^ " is not an int")

let gf inst name =
  match param inst name with
  | Pf f -> f
  | Pi i -> float_of_int i

let build inst =
  let rng () =
    match inst.i_tseed with
    | Some s -> Rng.create ~seed:s
    | None -> invalid_arg "Spec.build: deterministic generator has no tseed"
  in
  match inst.i_gen with
  | "path" -> Gen.path (gi inst "n")
  | "cycle" -> Gen.cycle (gi inst "n")
  | "star" -> Gen.star (gi inst "n")
  | "complete" -> Gen.complete (gi inst "n")
  | "grid" -> Gen.grid ~w:(gi inst "w") ~h:(gi inst "h")
  | "tree" -> Gen.balanced_tree ~arity:(gi inst "arity") ~depth:(gi inst "depth")
  | "caterpillar" ->
      Gen.caterpillar ~spine:(gi inst "spine") ~legs:(gi inst "legs")
  | "barbell" -> Gen.barbell ~clique:(gi inst "clique") ~bridge:(gi inst "bridge")
  | "gnp" -> Gen.gnp ~rng:(rng ()) ~n:(gi inst "n") ~p:(gf inst "p")
  | "random" ->
      Gen.random_connected ~rng:(rng ()) ~n:(gi inst "n")
        ~extra:(gi inst "extra")
  | "layered" ->
      Gen.layered_random ~rng:(rng ()) ~depth:(gi inst "depth")
        ~width:(gi inst "width") ~p:(gf inst "p")
  | "clusters" ->
      Gen.cluster_path ~rng:(rng ()) ~clusters:(gi inst "clusters")
        ~size:(gi inst "size") ~p_intra:(gf inst "p_intra")
  | "disk" -> Gen.unit_disk ~rng:(rng ()) ~n:(gi inst "n") ~radius:(gf inst "radius")
  | g -> invalid_arg ("Spec.build: unknown generator " ^ g)

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

type family = {
  fam_gen : string;
  fam_params : (string * pval) list;
  fam_tseeds : int list option;  (* None for deterministic generators *)
}

let split_lines s = String.split_on_char '\n' s

let is_blank line =
  let n = String.length line in
  let rec go i = i >= n || ((match line.[i] with
    | ' ' | '\t' | '\r' -> true
    | _ -> false) && go (i + 1))
  in
  go 0

let is_comment line =
  let rec first i =
    if i >= String.length line then None
    else
      match line.[i] with
      | ' ' | '\t' | '\r' -> first (i + 1)
      | c -> Some c
  in
  match first 0 with Some '#' -> true | _ -> false

exception Spec_error of string

let parse content =
  let families = ref [] and protos = ref [] and run_seeds = ref [] in
  let fail lineno msg =
    raise (Spec_error (Printf.sprintf "spec line %d: %s" lineno msg))
  in
  let check_keys lineno allowed fields =
    List.iter
      (fun (k, _) ->
        if not (List.exists (String.equal k) allowed) then
          fail lineno
            (Printf.sprintf "unknown field %S (expected one of: %s)" k
               (String.concat ", " allowed)))
      fields
  in
  let parse_topo lineno fields name =
    match find_generator name with
    | None ->
        fail lineno
          (Printf.sprintf "unknown generator %S (supported: %s)" name
             (String.concat ", " generator_names))
    | Some (_, seeded, params) ->
        check_keys lineno
          ("topo" :: "seeds" :: List.map fst params)
          fields;
        let vals =
          List.map
            (fun (pname, kind) ->
              match kind with
              | I -> (
                  match Jsons.int_mem pname fields with
                  | Some i -> (pname, Pi i)
                  | None ->
                      fail lineno
                        (Printf.sprintf "generator %s needs integer %S" name
                           pname))
              | F -> (
                  match Jsons.float_mem pname fields with
                  | Some f -> (pname, Pf f)
                  | None ->
                      fail lineno
                        (Printf.sprintf "generator %s needs number %S" name
                           pname)))
            params
        in
        let tseeds =
          match (seeded, Jsons.ints_mem "seeds" fields) with
          | true, Some [] -> fail lineno "empty topology seed list"
          | true, Some ss -> Some ss
          | true, None -> Some [ 1 ]
          | false, Some _ ->
              fail lineno
                (Printf.sprintf "generator %s is deterministic: drop \"seeds\""
                   name)
          | false, None -> None
        in
        families :=
          { fam_gen = name; fam_params = vals; fam_tseeds = tseeds }
          :: !families
  in
  let parse_proto lineno fields name =
    check_keys lineno [ "proto"; "k" ] fields;
    let k =
      match Jsons.mem "k" fields with
      | None -> None
      | Some (Jsons.Int i) when i >= 1 -> Some i
      | Some _ -> fail lineno "\"k\" must be a positive integer"
    in
    protos := (name, k) :: !protos
  in
  try
    List.iteri
      (fun i line ->
        let lineno = i + 1 in
        if is_blank line || is_comment line then ()
        else
          match Jsons.parse_obj line with
          | Error msg -> fail lineno msg
          | Ok fields -> (
              match Jsons.str_mem "topo" fields with
              | Some name -> parse_topo lineno fields name
              | None -> (
                  match Jsons.str_mem "proto" fields with
                  | Some name -> parse_proto lineno fields name
                  | None -> (
                      match Jsons.ints_mem "seeds" fields with
                      | Some ss ->
                          check_keys lineno [ "seeds" ] fields;
                          run_seeds := !run_seeds @ ss
                      | None ->
                          fail lineno
                            "expected a \"topo\", \"proto\", or \"seeds\" line"))))
      (split_lines content);
    let families = List.rev !families and protos = List.rev !protos in
    (match families with
    | [] -> raise (Spec_error "spec has no \"topo\" line")
    | _ :: _ -> ());
    (match protos with
    | [] -> raise (Spec_error "spec has no \"proto\" line")
    | _ :: _ -> ());
    let run_seeds = match !run_seeds with [] -> [ 1 ] | ss -> ss in
    let instances =
      List.concat_map
        (fun fam ->
          match fam.fam_tseeds with
          | None ->
              [
                {
                  i_gen = fam.fam_gen;
                  i_params = fam.fam_params;
                  i_tseed = None;
                  i_label = make_label fam.fam_gen fam.fam_params None;
                };
              ]
          | Some ss ->
              List.map
                (fun s ->
                  {
                    i_gen = fam.fam_gen;
                    i_params = fam.fam_params;
                    i_tseed = Some s;
                    i_label = make_label fam.fam_gen fam.fam_params (Some s);
                  })
                ss)
        families
    in
    (* Seed-middle, protocol-minor: the stream groups each seed's
       protocol comparison together, which is the order a reader wants.
       Note for the scheduler: with this order a strided lane split can
       align pathologically (two protocols on two lanes puts the whole
       slow protocol on one lane) — cell order is chosen for output
       readability, and balancing is the work-stealing scheduler's job. *)
    let cells =
      List.concat_map
        (fun (ti, inst) ->
          List.concat_map
            (fun seed ->
              List.map
                (fun (pname, k) ->
                  let proto_label =
                    match k with
                    | None -> pname
                    | Some k -> Printf.sprintf "%s(k=%d)" pname k
                  in
                  let label =
                    Printf.sprintf "%s|%s|seed=%d" inst.i_label proto_label
                      seed
                  in
                  let key = key_of_label label in
                  {
                    idx = 0 (* assigned below *);
                    topo = ti;
                    proto = pname;
                    k;
                    seed;
                    label;
                    key;
                    run_seed = run_seed_of_key key;
                  })
                protos)
            run_seeds)
        (List.mapi (fun i inst -> (i, inst)) instances)
    in
    let cells = List.mapi (fun i c -> { c with idx = i }) cells in
    (* Duplicate cells would collide in the journal (same job key), so a
       spec that lists the same topo/proto/seed twice is an error. *)
    let labels = List.sort String.compare (List.map (fun c -> c.label) cells) in
    let rec dup = function
      | a :: (b :: _ as rest) ->
          if String.equal a b then Some a else dup rest
      | _ -> None
    in
    (match dup labels with
    | Some l -> raise (Spec_error (Printf.sprintf "duplicate cell %S" l))
    | None -> ());
    Ok
      {
        t_instances = Array.of_list instances;
        t_cells = Array.of_list cells;
      }
  with Spec_error msg -> Error msg
