(** Declarative campaign specifications.

    A campaign is the cross product (topology instances) × (protocols) ×
    (run seeds), written as a JSONL spec file — one object per line, in
    exactly the dialect {!Rn_util.Jsons.parse_obj} reads:

    {v
    # topology families; seeded generators expand per topology seed
    {"topo":"layered","depth":8,"width":32,"p":0.3,"seeds":[1,2]}
    {"topo":"grid","w":8,"h":8}
    # protocols, by registry name; "k" only for multi-message pipelines
    {"proto":"decay"}
    {"proto":"mmv","k":4}
    # run seeds (lines concatenate; default [1])
    {"seeds":[1,2,3]}
    v}

    Blank lines and lines starting with [#] are ignored.  Expansion is
    deterministic: instances in spec order (families in file order, then
    topology seeds in list order), cells in instance-major /
    seed-middle / protocol-minor order, so each seed's protocol
    comparison is contiguous in the output stream.

    Every cell carries a {e job key}: an FNV-1a 64-bit hash of its
    canonical label (e.g.
    [layered(depth=8,width=32,p=0.3,tseed=1)|mmv(k=4)|seed=2]) rendered
    as 16 hex digits.  The key names the cell in the checkpoint journal,
    and the cell's engine seed is derived from it — every cell draws from
    its own [Rng] stream, so results are independent of which lane or
    domain executes it. *)

type instance
(** One concrete topology: a generator plus fixed parameters (plus its
    topology seed when the generator is randomized).  Building is
    deterministic — equal instances yield byte-identical CSR graphs. *)

type cell = {
  idx : int;  (** position in expansion order; stable for a given spec *)
  topo : int;  (** index into {!instances} *)
  proto : string;  (** registry name; resolved by [Campaign.run] *)
  k : int option;  (** message count for multi-message protocols *)
  seed : int;  (** spec-level run seed (the sweep axis) *)
  label : string;  (** canonical human-readable cell description *)
  key : string;  (** 16-hex FNV-1a 64 of [label]: the journal job key *)
  run_seed : int;
      (** engine seed derived from [key] — the cell's private Rng stream,
          schedule- and domain-independent *)
}

type t

val parse : string -> (t, string) result
(** Parse a full spec file (the file {e contents}, not a path).  Errors
    carry the 1-based line number and reject unknown generators or
    parameters, topology seeds on deterministic generators, duplicate
    cells, and specs with no topology or no protocol. *)

val instances : t -> instance array
(** Fresh array of the distinct topology instances, in expansion order.
    [cell.topo] indexes it. *)

val cells : t -> cell array
(** Fresh array of all cells in expansion order ([cell.idx] equals the
    array index). *)

val instance_label : instance -> string
(** Canonical label, e.g. [disk(n=300,radius=0.12,tseed=1)] — the
    topology prefix of every cell label using it. *)

val build : instance -> Rn_graph.Graph.t
(** Generate the instance's graph.  Pure: randomized generators create
    their [Rng] from the instance's topology seed, so repeated builds are
    byte-identical — which is what lets the topology cache and the
    cache-off path produce identical results. *)

val generator_names : string list
(** Supported ["topo"] values, for error messages and docs. *)
