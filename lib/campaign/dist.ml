type status = Running | Exited of int | Signaled of int

type io = {
  spawn : slot:int -> attempt:int -> cells:int array -> unit;
  status : slot:int -> status;
  kill : slot:int -> unit;
  journal_lines : slot:int -> string list;
  clock : unit -> float;
  sleep : float -> unit;
}

type config = {
  workers : int;
  retries : int;
  heartbeat_timeout : float;
  backoff_base : float;
  poll_interval : float;
}

type event =
  | Spawn of { slot : int; attempt : int; cells : int }
  | Progress of { slot : int; completed : int; total : int }
  | Stall of { slot : int; idle : float }
  | Kill of { slot : int }
  | Crash of { slot : int; attempt : int; reason : string }
  | Backoff of { slot : int; attempt : int; delay : float }
  | Retire of { slot : int }
  | Death of { slot : int; orphans : int }
  | Reassign of { slot : int; cells : int }

type sup_stats = {
  spawns : int;
  kills : int;
  crashes : int;
  reassigned : int;
}

type merge_stats = {
  shards : int;
  lines_in : int;
  torn : int;
  stale : int;
  duplicates : int;
  conflicts : int;
  missing : int list;
}

type stats = { cells : int; sup : sup_stats; merge : merge_stats }

let plan ~workers ~pending =
  let n = Array.length pending in
  let q = n / workers and r = n mod workers in
  let off = ref 0 in
  Array.init workers (fun s ->
      let len = q + if s < r then 1 else 0 in
      let part = Array.sub pending !off len in
      off := !off + len;
      part)

let cells_to_string cells =
  let b = Buffer.create 64 in
  let n = Array.length cells in
  let i = ref 0 in
  while !i < n do
    let lo = cells.(!i) in
    let j = ref !i in
    while !j + 1 < n && cells.(!j + 1) = cells.(!j) + 1 do
      incr j
    done;
    if Buffer.length b > 0 then Buffer.add_char b ',';
    if !j = !i then Buffer.add_string b (string_of_int lo)
    else Buffer.add_string b (Printf.sprintf "%d-%d" lo cells.(!j));
    i := !j + 1
  done;
  Buffer.contents b

let cells_of_string s =
  let bad () = invalid_arg (Printf.sprintf "Dist.cells_of_string: %S" s) in
  let int_of tok =
    match int_of_string_opt tok with
    | Some v when v >= 0 -> v
    | _ -> bad ()
  in
  if String.equal (String.trim s) "" then [||]
  else
    let out =
      String.split_on_char ',' s
      |> List.concat_map (fun tok ->
             match String.index_opt tok '-' with
             | None -> [ int_of tok ]
             | Some cut ->
                 let lo = int_of (String.sub tok 0 cut) in
                 let hi =
                   int_of
                     (String.sub tok (cut + 1) (String.length tok - cut - 1))
                 in
                 if hi < lo then bad ();
                 List.init (hi - lo + 1) (fun k -> lo + k))
    in
    let a = Array.of_list out in
    Array.sort Int.compare a;
    a

(* ----------------------------------------------------------------- *)
(* Supervisor                                                         *)
(* ----------------------------------------------------------------- *)

(* Per-slot life cycle.  [Wait] covers both the initial pre-spawn state
   (until = neg_infinity) and post-crash backoff; [cells] is always the
   slot's still-pending assignment at the time it entered the state. *)
type slot_state =
  | Wait of { attempt : int; until : float; cells : int array }
  | Live of { attempt : int; mutable last : float; cells : int array }
  | Retired
  | Dead

type slot = {
  id : int;
  mutable st : slot_state;
  mutable attempts : int;  (* spawns so far *)
  mutable seen : int;  (* valid journal lines observed in this shard *)
}

let supervise ?(on_event = fun _ -> ()) ~config ~io spec =
  if config.workers < 1 then invalid_arg "Dist.supervise: workers < 1";
  if config.retries < 0 then invalid_arg "Dist.supervise: retries < 0";
  let cells = Spec.cells spec in
  let n = Array.length cells in
  let done_ = Array.make n false in
  let ndone = ref 0 in
  let mark line =
    match Journal.parse_line line with
    | Some (idx, key, _)
      when idx >= 0 && idx < n && String.equal key cells.(idx).Spec.key ->
        if not done_.(idx) then begin
          done_.(idx) <- true;
          incr ndone
        end;
        true
    | _ -> false
  in
  let spawns = ref 0
  and kills = ref 0
  and crashes = ref 0
  and reassigned = ref 0 in
  let stats () =
    {
      spawns = !spawns;
      kills = !kills;
      crashes = !crashes;
      reassigned = !reassigned;
    }
  in
  let slots =
    Array.init config.workers (fun id ->
        { id; st = Retired; attempts = 0; seen = 0 })
  in
  (* Resume: whatever the shard journals already hold counts as done —
     a re-run after a failed campaign picks up where it stopped. *)
  Array.iter
    (fun s ->
      List.iter
        (fun l -> if mark l then s.seen <- s.seen + 1)
        (io.journal_lines ~slot:s.id))
    slots;
  let pending =
    Array.of_list
      (List.filter
         (fun i -> not done_.(i))
         (List.init n (fun i -> i)))
  in
  Array.iteri
    (fun i part ->
      if Array.length part > 0 then
        slots.(i).st <- Wait { attempt = 0; until = neg_infinity; cells = part })
    (plan ~workers:config.workers ~pending);
  let remaining cs = Array.of_seq (Seq.filter (fun i -> not done_.(i)) (Array.to_seq cs)) in
  let orphans = ref [||] in
  let do_spawn s cs =
    s.attempts <- s.attempts + 1;
    incr spawns;
    io.spawn ~slot:s.id ~attempt:s.attempts ~cells:cs;
    s.st <- Live { attempt = s.attempts; last = io.clock (); cells = cs };
    on_event (Spawn { slot = s.id; attempt = s.attempts; cells = Array.length cs })
  in
  let retire s =
    s.st <- Retired;
    on_event (Retire { slot = s.id })
  in
  (* A crash either schedules a respawn on the slot's remaining cells
     (exponential backoff) or, once the budget is spent, kills the slot
     and hands its cells to the orphan pool for reassignment. *)
  let crash s cs reason =
    incr crashes;
    on_event (Crash { slot = s.id; attempt = s.attempts; reason });
    if s.attempts > config.retries then begin
      s.st <- Dead;
      orphans := Array.append !orphans cs;
      on_event (Death { slot = s.id; orphans = Array.length cs })
    end
    else begin
      let delay =
        config.backoff_base *. (2. ** float_of_int (max 0 (s.attempts - 1)))
      in
      s.st <-
        Wait { attempt = s.attempts; until = io.clock () +. delay; cells = cs };
      on_event (Backoff { slot = s.id; attempt = s.attempts; delay })
    end
  in
  let failure () =
    Error
      (Printf.sprintf
         "campaign-dist: retry budget exhausted with %d of %d cells \
          incomplete; shard journals preserved for resume"
         (n - !ndone) n)
  in
  let result = ref None in
  while Option.is_none !result do
    (* 1. journal growth is the heartbeat *)
    Array.iter
      (fun s ->
        match s.st with
        | Live l ->
            let valid = ref 0 in
            List.iter
              (fun line -> if mark line then incr valid)
              (io.journal_lines ~slot:s.id);
            if !valid > s.seen then begin
              s.seen <- !valid;
              l.last <- io.clock ();
              on_event (Progress { slot = s.id; completed = !ndone; total = n })
            end
        | _ -> ())
      slots;
    (* 2. child status + stall detection *)
    Array.iter
      (fun s ->
        match s.st with
        | Live l -> (
            let rem = remaining l.cells in
            let unfinished = Array.length rem in
            match io.status ~slot:s.id with
            | Exited 0 ->
                if unfinished = 0 then retire s
                else
                  crash s rem
                    (Printf.sprintf "exited 0 with %d unfinished cells"
                       unfinished)
            | Exited c ->
                if unfinished = 0 then retire s
                else crash s rem (Printf.sprintf "exit code %d" c)
            | Signaled sg ->
                (* killed after its last flush: the work is journaled,
                   so the slot retires as a success *)
                if unfinished = 0 then retire s
                else crash s rem (Printf.sprintf "killed by signal %d" sg)
            | Running ->
                let idle = io.clock () -. l.last in
                if idle > config.heartbeat_timeout then begin
                  on_event (Stall { slot = s.id; idle });
                  io.kill ~slot:s.id;
                  incr kills;
                  on_event (Kill { slot = s.id });
                  if unfinished = 0 then retire s
                  else crash s rem "heartbeat timeout"
                end)
        | _ -> ())
      slots;
    (* 3. expired backoffs respawn on their remaining cells *)
    Array.iter
      (fun s ->
        match s.st with
        | Wait w when io.clock () >= w.until ->
            let rem = remaining w.cells in
            if Array.length rem = 0 then retire s else do_spawn s rem
        | _ -> ())
      slots;
    (* 4. orphaned cells of dead slots go to a retired survivor *)
    (if Array.length !orphans > 0 then
       let eligible s =
         match s.st with
         | Retired -> s.attempts <= config.retries
         | _ -> false
       in
       match Array.find_opt eligible slots with
       | Some s ->
           let cs = remaining !orphans in
           orphans := [||];
           if Array.length cs > 0 then begin
             reassigned := !reassigned + Array.length cs;
             on_event (Reassign { slot = s.id; cells = Array.length cs });
             do_spawn s cs
           end
       | None -> ());
    (* 5. termination *)
    if !ndone = n then begin
      Array.iter
        (fun s ->
          match s.st with
          | Live _ ->
              io.kill ~slot:s.id;
              incr kills;
              on_event (Kill { slot = s.id });
              retire s
          | _ -> ())
        slots;
      result := Some (Ok (stats ()))
    end
    else begin
      let alive =
        Array.exists
          (fun s -> match s.st with Live _ | Wait _ -> true | _ -> false)
          slots
      in
      let can_adopt =
        Array.length !orphans > 0
        && Array.exists
             (fun s ->
               match s.st with
               | Retired -> s.attempts <= config.retries
               | _ -> false)
             slots
      in
      if (not alive) && not can_adopt then result := Some (failure ())
      else io.sleep config.poll_interval
    end
  done;
  match !result with Some r -> r | None -> assert false

(* ----------------------------------------------------------------- *)
(* Merge                                                              *)
(* ----------------------------------------------------------------- *)

let merge spec shards =
  let cells = Spec.cells spec in
  let n = Array.length cells in
  let best = Array.make n None in
  let lines_in = ref 0
  and torn = ref 0
  and stale = ref 0
  and duplicates = ref 0
  and conflicts = ref 0 in
  List.iter
    (fun lines ->
      List.iter
        (fun line ->
          if not (String.equal (String.trim line) "") then begin
            incr lines_in;
            match Journal.parse_line line with
            | None -> incr torn
            | Some (idx, key, _) -> (
                if
                  idx < 0 || idx >= n
                  || not (String.equal key cells.(idx).Spec.key)
                then incr stale
                else
                  match best.(idx) with
                  | None -> best.(idx) <- Some line
                  | Some prev when String.equal prev line -> incr duplicates
                  | Some prev ->
                      (* corrupt-but-sealed twins: keep the lexicographic
                         least so the choice is independent of shard and
                         arrival order *)
                      incr conflicts;
                      if String.compare line prev < 0 then
                        best.(idx) <- Some line)
          end)
        lines)
    shards;
  let missing = ref [] in
  for i = n - 1 downto 0 do
    match best.(i) with None -> missing := i :: !missing | Some _ -> ()
  done;
  let out =
    Array.to_list best |> List.filter_map (fun o -> o)
  in
  ( out,
    {
      shards = List.length shards;
      lines_in = !lines_in;
      torn = !torn;
      stale = !stale;
      duplicates = !duplicates;
      conflicts = !conflicts;
      missing = !missing;
    } )

let run ?on_event ~config ~io ~emit spec =
  match supervise ?on_event ~config ~io spec with
  | Error m -> Error m
  | Ok sup -> (
      let shards =
        List.init config.workers (fun s -> io.journal_lines ~slot:s)
      in
      let out, m = merge spec shards in
      match m.missing with
      | _ :: _ ->
          Error
            (Printf.sprintf
               "campaign-merge: %d cells missing from shard journals"
               (List.length m.missing))
      | [] ->
          List.iter emit out;
          Ok { cells = Array.length (Spec.cells spec); sup; merge = m })
