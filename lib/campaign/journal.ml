open Rn_util

let line ~idx ~key ~cell ~rounds ~delivered ~details =
  Jsons.obj
    ([
       ("idx", string_of_int idx);
       ("key", Jsons.quote key);
       ("cell", Jsons.quote cell);
       ("rounds", string_of_int rounds);
       ("delivered", (if delivered then "true" else "false"));
     ]
    @ List.map (fun (k, v) -> ("d_" ^ k, Jsons.quote v)) details)

let parse_line s =
  match Jsons.parse_obj s with
  | Error _ -> None
  | Ok fields -> (
      match
        ( Jsons.int_mem "idx" fields,
          Jsons.str_mem "key" fields,
          Jsons.int_mem "rounds" fields )
      with
      | Some idx, Some key, Some rounds -> Some (idx, key, rounds)
      | _ -> None)
