open Rn_util

let line ~idx ~key ~cell ~rounds ~delivered ~details =
  let base =
    Jsons.obj
      ([
         ("idx", string_of_int idx);
         ("key", Jsons.quote key);
         ("cell", Jsons.quote cell);
         ("rounds", string_of_int rounds);
         ("delivered", (if delivered then "true" else "false"));
       ]
      @ List.map (fun (k, v) -> ("d_" ^ k, Jsons.quote v)) details)
  in
  (* Seal the record with a trailing "eor" field — written last, valued
     at the byte length of the unsealed object — so a line torn inside
     the details (or two torn halves glued by an append) cannot both
     parse as JSON and pass the length check.  [parse_line] rejects any
     line whose final field is not a consistent seal. *)
  let l = String.length base in
  Printf.sprintf "%s,\"eor\":%d}" (String.sub base 0 (l - 1)) l

let parse_line s =
  match Jsons.parse_obj s with
  | Error _ -> None
  | Ok fields -> (
      let rec last = function
        | [] -> None
        | [ kv ] -> Some kv
        | _ :: rest -> last rest
      in
      let sealed =
        match last fields with
        | Some ("eor", Jsons.Int l) ->
            (* the seal must be the last field AND the line must be
               exactly the unsealed object of length [l] re-closed with
               the seal — anything shorter, longer, or re-glued fails *)
            String.length s
            = l - 1 + String.length (Printf.sprintf ",\"eor\":%d}" l)
        | _ -> false
      in
      if not sealed then None
      else
        match
          ( Jsons.int_mem "idx" fields,
            Jsons.str_mem "key" fields,
            Jsons.int_mem "rounds" fields,
            Jsons.str_mem "cell" fields,
            Jsons.bool_mem "delivered" fields )
        with
        | Some idx, Some key, Some rounds, Some _, Some _ ->
            Some (idx, key, rounds)
        | _ -> None)
