(** Distributed campaign executor: shared-nothing multi-process fan-out
    with supervised workers and deterministic journal merge.  DESIGN.md
    §15 documents the distribution model and its determinism argument.

    The coordinator partitions the spec's cell list into contiguous
    shards, one per worker slot, and drives each slot through a small
    state machine: spawn → (progress | stall | crash) → backoff/respawn
    → retire or die.  All effects go through the injected {!io} record —
    the library itself never forks, sleeps, reads a clock, or touches a
    file, which keeps it inside rblint's R4/R8 determinism envelope and
    makes the whole supervisor testable against a simulated harness with
    a virtual clock.

    Liveness is judged by journal growth, not by the process table: a
    slot is healthy as long as its shard journal keeps gaining valid
    sealed lines.  A worker that exits 0 without journaling its assigned
    cells is a crash; a worker killed between its final journal flush
    and its exit is a success.  Crashes respawn the slot on its
    remaining cells after exponential backoff, up to [retries] respawns;
    a slot that exhausts its budget dies and its unfinished cells are
    reassigned to a retired survivor.  When every slot is dead and cells
    remain, the campaign fails loudly — shard journals are preserved on
    disk (they are caller-owned), so a later run resumes from them.

    {!merge} combines the shard journals into the final output: lines
    are validated (sealed, in-range index, job key matching the spec),
    deduplicated by job key, conflicts resolved by lexicographic-least
    line — a commutative rule, so the result is independent of shard
    order and arrival order.  Since every valid line is a pure function
    of its cell, the merged output is byte-identical to a single-process
    {!Campaign.run} over the same spec. *)

type status =
  | Running  (** the slot's child is alive *)
  | Exited of int  (** terminated normally with this exit code *)
  | Signaled of int  (** terminated by this signal *)

type io = {
  spawn : slot:int -> attempt:int -> cells:int array -> unit;
      (** start a worker on [cells] (spec cell indices, ascending).  Any
          previous child of this slot has already exited or been killed;
          the implementation reaps it before starting the new one. *)
  status : slot:int -> status;
      (** poll the slot's most recently spawned child (non-blocking). *)
  kill : slot:int -> unit;  (** force-terminate the slot's child *)
  journal_lines : slot:int -> string list;
      (** current contents of the slot's shard journal, one element per
          line, in file order — re-read on every poll tick *)
  clock : unit -> float;  (** monotonic seconds (any fixed origin) *)
  sleep : float -> unit;  (** block for this many seconds *)
}

type config = {
  workers : int;  (** worker slots (>= 1) *)
  retries : int;  (** respawns allowed per slot after its first attempt *)
  heartbeat_timeout : float;
      (** seconds without journal growth before a running slot is
          declared stalled and killed *)
  backoff_base : float;
      (** respawn delay after the first crash; doubles per attempt *)
  poll_interval : float;  (** supervisor tick, seconds *)
}

type event =
  | Spawn of { slot : int; attempt : int; cells : int }
  | Progress of { slot : int; completed : int; total : int }
      (** campaign-wide completion after this slot's journal grew *)
  | Stall of { slot : int; idle : float }
  | Kill of { slot : int }
  | Crash of { slot : int; attempt : int; reason : string }
  | Backoff of { slot : int; attempt : int; delay : float }
  | Retire of { slot : int }
  | Death of { slot : int; orphans : int }
  | Reassign of { slot : int; cells : int }

type sup_stats = {
  spawns : int;  (** total worker spawns, retries included *)
  kills : int;  (** stalled or lingering workers force-killed *)
  crashes : int;  (** crash transitions (timeouts, bad exits, signals) *)
  reassigned : int;  (** cells moved off a dead slot to a survivor *)
}

type merge_stats = {
  shards : int;  (** shard journals merged *)
  lines_in : int;  (** non-blank input lines *)
  torn : int;  (** unsealed / unparseable lines dropped *)
  stale : int;  (** sealed lines whose key does not match the spec *)
  duplicates : int;  (** byte-identical repeats of an accepted line *)
  conflicts : int;
      (** same job key, different bytes — resolved lexicographic-least *)
  missing : int list;  (** cell indices with no surviving line *)
}

type stats = {
  cells : int;  (** total cells in the spec *)
  sup : sup_stats;
  merge : merge_stats;
}

val plan : workers:int -> pending:int array -> int array array
(** Partition [pending] (ascending cell indices) into [workers]
    contiguous shards whose sizes differ by at most one.  Shards may be
    empty when there are fewer cells than workers. *)

val cells_to_string : int array -> string
(** Render an ascending index array as a compact range list, e.g.
    [[|0;1;2;7;9;10|]] is ["0-2,7,9-10"] — the [--cells] wire format
    between coordinator and worker. *)

val cells_of_string : string -> int array
(** Parse the {!cells_to_string} format back into an ascending array.
    @raise Invalid_argument on malformed input. *)

val supervise :
  ?on_event:(event -> unit) ->
  config:config ->
  io:io ->
  Spec.t ->
  (sup_stats, string) result
(** Drive worker slots until every cell of the spec has a valid line in
    some shard journal, or until no slot can make further progress.
    Existing shard-journal contents are scanned first, so re-running
    after a failed campaign resumes rather than restarts.  [Error]
    carries a human-readable reason (retry budget exhausted); the shard
    journals are left exactly as the workers wrote them. *)

val merge : Spec.t -> string list list -> string list * merge_stats
(** [merge spec shards] deduplicates and orders the shard journals'
    lines into the final campaign output, in cell-index order, skipping
    missing cells (reported in {!merge_stats.missing}).  Pure and
    commutative in both shard order and line order. *)

val run :
  ?on_event:(event -> unit) ->
  config:config ->
  io:io ->
  emit:(string -> unit) ->
  Spec.t ->
  (stats, string) result
(** {!supervise}, then {!merge} over every slot's journal, then [emit]
    each merged line in cell-index order.  [Error] if supervision gave
    up or the merge is missing cells; nothing is emitted on error. *)
