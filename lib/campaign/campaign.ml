open Rn_radio

type schedule = Static | Stealing

type stats = {
  cells : int;
  executed : int;
  replayed : int;
  aborted : bool;
  steals : int;
  gen_s : float;
  run_s : float;
  drain_s : float;
  cell_wall : float array;
  cell_rounds : int array;
}

(* One lane's share of the cell indices.  [order.(lo..hi)] is the
   unclaimed window: the owner takes from the front, thieves take from
   the back, both under [qlock] — every cross-domain access to [lo]/[hi]
   is ordered by the mutex, and each index leaves exactly one queue
   exactly once. *)
type lane_queue = {
  qlock : Mutex.t;
  order : int array;
  mutable lo : int;
  mutable hi : int;
}

(* Owner-local result buffer: the executing domain pushes, only the
   coordinator drains.  A short critical section around a list swap —
   no atomics, and no contention unless the coordinator is draining this
   very buffer. *)
type buffer = { block : Mutex.t; mutable items : (int * string) list }

let run ?domains ?(schedule = Stealing) ?(cache = true) ?journal
    ?(resume_lines = []) ?select ?abort_after ?on_cell ?(clock = fun () -> 0.)
    ~emit spec =
  let instances = Spec.instances spec in
  let cells = Spec.cells spec in
  let ncells = Array.length cells in
  (* [select] restricts the run to a subset of cell indices — the shard a
     distributed campaign-worker owns.  Unselected cells are invisible:
     never queued, cached, journaled, or emitted; resume lines naming
     them are ignored. *)
  let selected =
    match select with
    | None -> Array.make ncells true
    | Some idxs ->
        let a = Array.make ncells false in
        Array.iter (fun i -> if i >= 0 && i < ncells then a.(i) <- true) idxs;
        a
  in
  let d =
    let want =
      match domains with Some d -> d | None -> Runner.default_domains ()
    in
    max 1 (min want (max 1 ncells))
  in
  let entry_of =
    Array.map
      (fun (c : Spec.cell) ->
        if not selected.(c.idx) then None
        else
          match Registry.find c.proto with
          | Some e -> Some e
          | None ->
              failwith
                (Printf.sprintf
                   "campaign: protocol %S is not registered (run \
                    Protocols.ensure_registered first)"
                   c.proto))
      cells
  in
  (* --- resume: replay journal lines into their output slots --------- *)
  let slots = Array.make ncells None in
  let cell_rounds = Array.make ncells 0 in
  let replayed = ref 0 in
  List.iter
    (fun line ->
      match Journal.parse_line line with
      | Some (idx, key, rounds)
        when idx >= 0 && idx < ncells && selected.(idx)
             && String.equal key cells.(idx).key -> (
          match slots.(idx) with
          | None ->
              slots.(idx) <- Some line;
              cell_rounds.(idx) <- rounds;
              incr replayed
          | Some _ -> ())
      | _ -> ())
    resume_lines;
  (* --- topology cache: build each needed instance once, then freeze.
     The array is a local immutable value by the time any worker starts,
     so sharing it read-only across stolen cells is R6/R12-clean — there
     is no post-publication mutation to race on. ------------------------ *)
  let needed = Array.make (Array.length instances) false in
  Array.iter
    (fun (c : Spec.cell) ->
      if selected.(c.idx) then
        match slots.(c.idx) with
        | None -> needed.(c.topo) <- true
        | Some _ -> ())
    cells;
  let t_cache0 = clock () in
  let topo_cache =
    if cache then
      Array.mapi
        (fun i inst -> if needed.(i) then Some (Spec.build inst) else None)
        instances
    else Array.make (Array.length instances) None
  in
  let cache_gen_s = clock () -. t_cache0 in
  (* --- per-lane queues over the still-pending cells ------------------ *)
  let queues =
    Array.init d (fun l ->
        let count = ref 0 in
        let i = ref l in
        while !i < ncells do
          (match slots.(!i) with
          | None when selected.(!i) -> incr count
          | _ -> ());
          i := !i + d
        done;
        let order = Array.make (max 1 !count) 0 in
        let pos = ref 0 in
        let i = ref l in
        while !i < ncells do
          (match slots.(!i) with
          | None when selected.(!i) ->
              order.(!pos) <- !i;
              incr pos
          | _ -> ());
          i := !i + d
        done;
        { qlock = Mutex.create (); order; lo = 0; hi = !count })
  in
  let take_own q =
    Mutex.lock q.qlock;
    let r =
      if q.lo < q.hi then (
        let i = q.order.(q.lo) in
        q.lo <- q.lo + 1;
        i)
      else -1
    in
    Mutex.unlock q.qlock;
    r
  in
  let steal_back q =
    Mutex.lock q.qlock;
    let r =
      if q.lo < q.hi then (
        q.hi <- q.hi - 1;
        q.order.(q.hi))
      else -1
    in
    Mutex.unlock q.qlock;
    r
  in
  let remaining q =
    Mutex.lock q.qlock;
    let r = q.hi - q.lo in
    Mutex.unlock q.qlock;
    r
  in
  let workers = Runner.Pool.borrow ~want:(d - 1) in
  let execs = Array.length workers + 1 in
  let stop = Atomic.make false in
  let buffers =
    Array.init execs (fun _ -> { block = Mutex.create (); items = [] })
  in
  let gen_acc = Array.make execs 0.0 in
  let run_acc = Array.make execs 0.0 in
  let steal_acc = Array.make execs 0 in
  let exec_acc = Array.make execs 0 in
  let cell_wall = Array.make ncells 0.0 in
  (* Executor [e] owns lanes e, e+execs, … (all of them when running
     solo); when its lanes are dry and stealing is on, it takes one cell
     from the back of the most loaded lane.  Single-cell steals keep the
     residual work stealable by others, which is what bounds the tail on
     heavy-tailed cell mixes. *)
  let rec next_cell e =
    let rec own l =
      if l >= d then -1
      else
        let i = take_own queues.(l) in
        if i >= 0 then i else own (l + execs)
    in
    let i = own e in
    if i >= 0 then i
    else
      match schedule with
      | Static -> -1
      | Stealing ->
          let best = ref (-1) and best_rem = ref 0 in
          for l = 0 to d - 1 do
            let r = remaining queues.(l) in
            if r > !best_rem then (
              best_rem := r;
              best := l)
          done;
          if !best < 0 then -1
          else
            let i = steal_back queues.(!best) in
            if i >= 0 then (
              steal_acc.(e) <- steal_acc.(e) + 1;
              i)
            else next_cell e (* lost the race; rescan *)
  in
  let exec_cell e idx =
    let c = cells.(idx) in
    let t0 = clock () in
    let g =
      match topo_cache.(c.topo) with
      | Some g -> g
      | None -> Spec.build instances.(c.topo)
    in
    let t1 = clock () in
    let entry = Option.get entry_of.(idx) in
    let { Registry.rounds; delivered; details } =
      entry.Registry.run ?k:c.k ~seed:c.run_seed ~graph:g ~source:0 ()
    in
    let t2 = clock () in
    gen_acc.(e) <- gen_acc.(e) +. (t1 -. t0);
    run_acc.(e) <- run_acc.(e) +. (t2 -. t1);
    exec_acc.(e) <- exec_acc.(e) + 1;
    cell_wall.(idx) <- t2 -. t0;
    cell_rounds.(idx) <- rounds;
    let line =
      Journal.line ~idx ~key:c.key ~cell:c.label ~rounds ~delivered ~details
    in
    let b = buffers.(e) in
    Mutex.lock b.block;
    b.items <- (idx, line) :: b.items;
    Mutex.unlock b.block
  in
  let worker_body e () =
    let continue = ref true in
    while !continue do
      if Atomic.get stop then continue := false
      else
        let i = next_cell e in
        if i < 0 then continue := false else exec_cell e i
    done
  in
  (* --- coordinator: journal in completion order, emit in index order - *)
  let completed = ref 0 in
  let cursor = ref 0 in
  let aborted = ref false in
  let drain_s = ref 0.0 in
  let drain () =
    let t0 = clock () in
    for e = 0 to execs - 1 do
      let b = buffers.(e) in
      Mutex.lock b.block;
      let got = b.items in
      b.items <- [];
      Mutex.unlock b.block;
      List.iter
        (fun (idx, line) ->
          if not !aborted then begin
            (match abort_after with
            | Some n when !completed >= n ->
                (* Simulated kill: everything from here on — including
                   this very result — is dropped, exactly as a SIGKILL
                   between two journal flushes would drop it. *)
                aborted := true;
                Atomic.set stop true
            | _ -> ());
            if not !aborted then begin
              (match journal with Some j -> j line | None -> ());
              slots.(idx) <- Some line;
              incr completed;
              match on_cell with
              | Some cb -> cb ~completed:!completed ~total:ncells
              | None -> ()
            end
          end)
        (List.rev got)
    done;
    if not !aborted then begin
      let advancing = ref true in
      while !advancing && !cursor < ncells do
        if not selected.(!cursor) then incr cursor
        else
          match slots.(!cursor) with
          | Some l ->
              emit l;
              incr cursor
          | None -> advancing := false
      done
    end;
    drain_s := !drain_s +. (clock () -. t0)
  in
  drain () (* stream the replayed prefix before any new work *);
  Array.iteri (fun t w -> Runner.Pool.run_on w (worker_body (t + 1))) workers;
  let caller_exn =
    try
      let continue = ref true in
      while !continue do
        if Atomic.get stop then continue := false
        else
          let i = next_cell 0 in
          if i < 0 then continue := false
          else begin
            exec_cell 0 i;
            drain ()
          end
      done;
      None
    with ex ->
      Atomic.set stop true;
      Some ex
  in
  let worker_exn = ref None in
  Array.iter
    (fun w ->
      match Runner.Pool.await w with
      | Some ex when Option.is_none !worker_exn -> worker_exn := Some ex
      | _ -> ())
    workers;
  Runner.Pool.release workers;
  drain ();
  (match (caller_exn, !worker_exn) with
  | Some ex, _ | None, Some ex -> raise ex
  | None, None -> ());
  let sumf a = Array.fold_left ( +. ) 0.0 a in
  let sumi a = Array.fold_left ( + ) 0 a in
  {
    cells = ncells;
    executed = sumi exec_acc;
    replayed = !replayed;
    aborted = !aborted;
    steals = sumi steal_acc;
    gen_s = cache_gen_s +. sumf gen_acc;
    run_s = sumf run_acc;
    drain_s = !drain_s;
    cell_wall;
    cell_rounds;
  }
