(** Checkpoint journal lines.

    The journal is an append-only JSONL file: one object per finished
    cell, written (and flushed) by the campaign coordinator the moment
    the cell's result is drained.  Journal lines double as the campaign's
    output lines — resuming replays them verbatim, which is what makes a
    resumed run byte-identical to an uninterrupted one.

    Line shape (flat, in the {!Rn_util.Jsons} dialect):

    {v
    {"idx":17,"key":"89a0c2b4d6e8f001","cell":"grid(w=8,h=8)|decay|seed=3",
     "rounds":41,"delivered":true,"d_rounds":"41",...,"eor":123}
    v}

    [idx]/[key]/[cell]/[rounds]/[delivered] are fixed; each protocol
    detail [(name, value)] follows as a ["d_" ^ name] string field, in
    the protocol's stable order; the final ["eor"] field seals the
    record — its value is the byte length of the line {e before} the
    seal was appended, and it is written last.  Everything is a pure
    function of the cell and its result, so the line for a given cell is
    the same bytes on every run, schedule, and domain count. *)

val line :
  idx:int ->
  key:string ->
  cell:string ->
  rounds:int ->
  delivered:bool ->
  details:(string * string) list ->
  string
(** Render one journal/output line (no trailing newline). *)

val parse_line : string -> (int * string * int) option
(** [parse_line s] is [Some (idx, key, rounds)] when [s] is a complete,
    sealed journal line, [None] otherwise — a half-written trailing line
    from a killed run parses as [None] and is simply re-run on resume.

    Completeness is checked end-of-record, not field-by-field: the last
    field must be the ["eor"] seal and the line's byte length must match
    it, and all five fixed fields must be present.  A line truncated
    inside the details that still happens to close as valid JSON — or
    two torn halves glued together by an [O_APPEND] respawn — therefore
    cannot be mistaken for a finished cell by the shard-journal merge. *)
