(** Minimal JSON helpers shared by every emitter in the tree (the
    observability exporters, the bench perf record, the rblint JSON
    reports) and, since the campaign runner, the line-oriented readers
    (the campaign journal, campaign spec files, benchdiff).  Pure string
    functions — callers own the channel.

    The dialect is deliberately tiny: one flat object per line whose
    values are scalars (null, bool, int, float, string) or arrays of
    integers.  That is exactly what the emitters below produce and what
    the journal and benchdiff need; nesting or mixed arrays are a parse
    error, never a silent guess. *)

(** {1 Construction} *)

val escape : string -> string
(** [escape s] is the body of a JSON string literal encoding [s]: quote,
    backslash, and control characters (newline, tab, CR, backspace,
    form-feed named; the rest as [\u00XX]) are escaped.  Bytes
    [0x80..0xff] pass through verbatim, so the output is valid JSON
    exactly when [s] is valid UTF-8 — unlike OCaml's [%S], whose decimal
    escapes (backslash-221) are not JSON. *)

val quote : string -> string
(** [quote s] is [escape s] wrapped in double quotes: a complete JSON
    string literal. *)

val int_array : int list -> string
(** [int_array xs] is the compact JSON array of [xs], e.g. [[12,8,3]] —
    the shape bench/main.ml embeds as per-phase fields in
    BENCH_engine.json and benchdiff compares exactly. *)

val obj : (string * string) list -> string
(** [obj fields] is the compact one-line JSON object whose keys are the
    field names (escaped) and whose values are the given strings spliced
    in {e verbatim} — callers pass already-rendered JSON ([quote s],
    [string_of_int n], [int_array xs], [float_lit f]). *)

val float_lit : float -> string
(** [float_lit f] is a decimal literal that [float_of_string] maps back
    to exactly [f] (shortest of %.15g/%.16g/%.17g; integral values as
    ["N.0"]).  [f] must be finite — JSON has no nan/infinity. *)

(** {1 Parsing} *)

type value =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Ints of int list
      (** The only array shape the dialect admits: every element an
          integer literal. *)

val parse_obj : string -> ((string * value) list, string) result
(** [parse_obj line] parses one JSON object from [line], returning its
    fields in source order.  Accepts arbitrary surrounding whitespace
    and tolerates one trailing [','] (the record separator inside
    BENCH_engine.json's [experiments] block); any other trailing bytes,
    nesting, or non-integer array elements yield [Error msg] with a byte
    offset.  Deterministic: the result depends only on [line].

    Pinned number semantics: an integral token (optional ['-'] then
    digits) is an [Int] and {e must} fit the native [int] — an
    out-of-range integer literal is an [Error], never a silently-lossy
    [Float] (journal merge compares [idx]/[rounds] by exact value).
    Tokens with ['.'/'e'/'E'] are [Float]s; a leading ['+'] is rejected
    (JSON forbids it; [int_of_string] does not).  Leading zeros are
    tolerated.

    Pinned string semantics: [\uXXXX] escapes decode to UTF-8;
    surrogate {e pairs} combine into one supplementary-plane scalar
    (4-byte UTF-8), and a lone or mispaired surrogate half is an
    [Error] — never CESU-8 bytes passed off as UTF-8.

    Pinned duplicate-key semantics: duplicated keys parse fine and are
    kept in source order; every accessor below resolves {e first-wins}.
    Journal-merge duplicate resolution relies on this being stable. *)

val mem : string -> (string * value) list -> value option
(** {e First} binding of the key (first-wins on duplicate keys; pinned —
    merge resolution depends on it), compared with [String.equal] (no
    polymorphic compare on the lookup path). *)

val int_mem : string -> (string * value) list -> int option
(** [Some i] iff the key is bound to [Int i]. *)

val float_mem : string -> (string * value) list -> float option
(** [Some f] for [Float f] bindings, and [Some (float_of_int i)] for
    [Int i] — numeric fields like [wall_s] print as [0] when exactly
    zero. *)

val str_mem : string -> (string * value) list -> string option
(** [Some s] iff the key is bound to [Str s]. *)

val bool_mem : string -> (string * value) list -> bool option
(** [Some b] iff the key is bound to [Bool b]. *)

val ints_mem : string -> (string * value) list -> int list option
(** [Some xs] iff the key is bound to [Ints xs]. *)
