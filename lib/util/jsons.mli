(** Minimal JSON construction helpers shared by every emitter in the tree
    (the observability exporters, the bench perf record, the rblint JSON
    reports).  Pure string functions — callers own the channel.

    Only construction is provided, no parsing: every JSON consumer in this
    repo is external (CI tooling, benchdiff's span-bounded scanner). *)

val escape : string -> string
(** [escape s] is the body of a JSON string literal encoding [s]: quote,
    backslash, and control characters (newline, tab, CR, backspace,
    form-feed named; the rest as [\u00XX]) are escaped.  Bytes
    [0x80..0xff] pass through verbatim, so the output is valid JSON
    exactly when [s] is valid UTF-8 — unlike OCaml's [%S], whose decimal
    escapes (backslash-221) are not JSON. *)

val quote : string -> string
(** [quote s] is [escape s] wrapped in double quotes: a complete JSON
    string literal. *)

val int_array : int list -> string
(** [int_array xs] is the compact JSON array of [xs], e.g. [[12,8,3]] —
    the shape bench/main.ml embeds as per-phase fields in
    BENCH_engine.json and benchdiff compares exactly. *)
