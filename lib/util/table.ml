type t = {
  title : string;
  columns : string list;
  mutable rows : string list list; (* reversed *)
}

let create ~title ~columns = { title; columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg "Table.add_row: cell count mismatch";
  t.rows <- cells :: t.rows

let add_int_row t (label, ints) =
  add_row t (label :: List.map string_of_int ints)

let cell_f x =
  if Float.is_integer x && abs_float x < 1e15 then
    Printf.sprintf "%.0f" x
  else if abs_float x >= 100.0 then Printf.sprintf "%.0f" x
  else if abs_float x >= 10.0 then Printf.sprintf "%.1f" x
  else Printf.sprintf "%.2f" x

let csv_dir : string option Atomic.t = Atomic.make None

let slug title =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> c
      | _ -> '_')
    (String.lowercase_ascii title)

let write_csv t =
  match Atomic.get csv_dir with
  | None -> ()
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let path = Filename.concat dir (slug t.title ^ ".csv") in
      let oc = open_out path in
      let quote c =
        if String.contains c ',' || String.contains c '"' then
          "\"" ^ String.concat "\"\"" (String.split_on_char '"' c) ^ "\""
        else c
      in
      let line cells = String.concat "," (List.map quote cells) in
      output_string oc (line t.columns ^ "\n");
      List.iter (fun r -> output_string oc (line r ^ "\n")) (List.rev t.rows);
      close_out oc

(* Rendering returns lines instead of printing them: library code must hand
   data back (rblint R4) and let bin/bench/examples decide where it goes. *)
let to_lines t =
  let rows = List.rev t.rows in
  let all = t.columns :: rows in
  let ncols = List.length t.columns in
  let width i =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row i))) 0 all
  in
  let widths = List.init ncols width in
  let render_row row =
    let cells =
      List.mapi
        (fun i c ->
          let w = List.nth widths i in
          let pad = String.make (w - String.length c) ' ' in
          if i = 0 then c ^ pad else pad ^ c)
        row
    in
    "| " ^ String.concat " | " cells ^ " |"
  in
  let sep =
    "|"
    ^ String.concat "|" (List.map (fun w -> String.make (w + 2) '-') widths)
    ^ "|"
  in
  t.title :: render_row t.columns :: sep :: List.map render_row rows

let note_line s = "  -> " ^ s

let section_lines s =
  let bar = String.make (String.length s + 4) '=' in
  [ bar; "| " ^ s ^ " |"; bar ]
