let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let quote s = "\"" ^ escape s ^ "\""

let int_array xs =
  let b = Buffer.create 64 in
  Buffer.add_char b '[';
  List.iteri
    (fun i x ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (string_of_int x))
    xs;
  Buffer.add_char b ']';
  Buffer.contents b

let obj fields =
  let b = Buffer.create 128 in
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (quote k);
      Buffer.add_char b ':';
      Buffer.add_string b v)
    fields;
  Buffer.add_char b '}';
  Buffer.contents b

let float_lit f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    let s15 = Printf.sprintf "%.15g" f in
    if Float.equal (float_of_string s15) f then s15
    else
      let s16 = Printf.sprintf "%.16g" f in
      if Float.equal (float_of_string s16) f then s16
      else Printf.sprintf "%.17g" f

(* ------------------------------------------------------------------ *)
(* Parsing.  A deliberately small recursive-descent reader covering    *)
(* exactly the subset the tree emits: one flat object per line whose   *)
(* values are scalars or arrays of integers.  No nesting, no mixed     *)
(* arrays — anything else is a parse error, never a silent guess.      *)
(* ------------------------------------------------------------------ *)

type value =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Ints of int list

exception Bad of string

let is_ws c =
  match c with ' ' | '\t' | '\r' | '\n' -> true | _ -> false

let parse_obj line =
  let n = String.length line in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some line.[!pos] else None in
  let skip_ws () =
    while !pos < n && is_ws line.[!pos] do
      incr pos
    done
  in
  let expect c =
    skip_ws ();
    match peek () with
    | Some c' when Char.equal c c' -> incr pos
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let hex c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail "bad hex digit in \\u escape"
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = line.[!pos] in
      incr pos;
      match c with
      | '"' -> Buffer.contents b
      | '\\' ->
          (if !pos >= n then fail "unterminated escape";
           let e = line.[!pos] in
           incr pos;
           match e with
           | '"' -> Buffer.add_char b '"'
           | '\\' -> Buffer.add_char b '\\'
           | '/' -> Buffer.add_char b '/'
           | 'n' -> Buffer.add_char b '\n'
           | 't' -> Buffer.add_char b '\t'
           | 'r' -> Buffer.add_char b '\r'
           | 'b' -> Buffer.add_char b '\b'
           | 'f' -> Buffer.add_char b '\012'
           | 'u' ->
               let hex4 () =
                 if !pos + 4 > n then fail "truncated \\u escape";
                 let v =
                   (hex line.[!pos] lsl 12)
                   lor (hex line.[!pos + 1] lsl 8)
                   lor (hex line.[!pos + 2] lsl 4)
                   lor hex line.[!pos + 3]
                 in
                 pos := !pos + 4;
                 v
               in
               let v = hex4 () in
               (* The emitters only produce \u00XX (control bytes); the
                  reader accepts any Unicode scalar — surrogate pairs
                  included — and re-encodes UTF-8, so a hand-written spec
                  file with é or an emoji still round-trips.  A lone
                  surrogate half has no scalar value and is an error, not
                  a CESU-8 byte blob masquerading as UTF-8. *)
               if v >= 0xd800 && v <= 0xdbff then begin
                 if
                   not
                     (!pos + 2 <= n
                     && Char.equal line.[!pos] '\\'
                     && Char.equal line.[!pos + 1] 'u')
                 then fail "lone high surrogate in \\u escape";
                 pos := !pos + 2;
                 let w = hex4 () in
                 if w < 0xdc00 || w > 0xdfff then
                   fail "high surrogate not followed by a low surrogate";
                 let cp = 0x10000 + ((v - 0xd800) lsl 10) + (w - 0xdc00) in
                 Buffer.add_char b (Char.chr (0xf0 lor (cp lsr 18)));
                 Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 12) land 0x3f)));
                 Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
                 Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3f)))
               end
               else if v >= 0xdc00 && v <= 0xdfff then
                 fail "lone low surrogate in \\u escape"
               else if v < 0x80 then Buffer.add_char b (Char.chr v)
               else if v < 0x800 then (
                 Buffer.add_char b (Char.chr (0xc0 lor (v lsr 6)));
                 Buffer.add_char b (Char.chr (0x80 lor (v land 0x3f))))
               else (
                 Buffer.add_char b (Char.chr (0xe0 lor (v lsr 12)));
                 Buffer.add_char b (Char.chr (0x80 lor ((v lsr 6) land 0x3f)));
                 Buffer.add_char b (Char.chr (0x80 lor (v land 0x3f))))
           | _ -> fail "unknown escape");
          loop ()
      | c -> Buffer.add_char b c; loop ()
    in
    loop ()
  in
  let number_token () =
    let start = !pos in
    while
      !pos < n
      && (match line.[!pos] with
         | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
         | _ -> false)
    do
      incr pos
    done;
    if !pos = start then fail "expected a number";
    let tok = String.sub line start (!pos - start) in
    (* [int_of_string] accepts OCaml-isms JSON forbids; a leading '+' is
       the only one the token charset lets through. *)
    if Char.equal tok.[0] '+' then fail "leading '+' is not JSON";
    tok
  in
  (* An optional '-' followed by digits only: a token JSON calls an
     integer.  Such a token must round-trip through native int exactly —
     the journal merge compares idx/rounds by value — so one that
     overflows is an error, never a silently-lossy [Float]. *)
  let is_integral tok =
    let k = String.length tok in
    let s = if Char.equal tok.[0] '-' then 1 else 0 in
    let rec digits i =
      i >= k || (match tok.[i] with '0' .. '9' -> digits (i + 1) | _ -> false)
    in
    k > s && digits s
  in
  let parse_int () =
    let tok = number_token () in
    match int_of_string_opt tok with
    | Some i -> i
    | None ->
        if is_integral tok then
          fail (Printf.sprintf "integer literal %s out of native range" tok)
        else fail (Printf.sprintf "expected an integer, got %S" tok)
  in
  let parse_number () =
    let tok = number_token () in
    if is_integral tok then
      match int_of_string_opt tok with
      | Some i -> Int i
      | None ->
          fail (Printf.sprintf "integer literal %s out of native range" tok)
    else
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" tok)
  in
  let literal word v =
    let k = String.length word in
    if !pos + k <= n && String.equal (String.sub line !pos k) word then (
      pos := !pos + k;
      v)
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "expected a value"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        incr pos;
        skip_ws ();
        if (match peek () with Some ']' -> true | _ -> false) then (
          incr pos;
          Ints [])
        else
          let rec items acc =
            skip_ws ();
            let i = parse_int () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                items (i :: acc)
            | Some ']' ->
                incr pos;
                List.rev (i :: acc)
            | _ -> fail "expected ',' or ']' in array"
          in
          Ints (items [])
    | Some _ -> parse_number ()
  in
  try
    expect '{';
    skip_ws ();
    let fields =
      if (match peek () with Some '}' -> true | _ -> false) then (
        incr pos;
        [])
      else
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
              incr pos;
              members ((k, v) :: acc)
          | Some '}' ->
              incr pos;
              List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}' in object"
        in
        members []
    in
    (* Tolerate the record-separator tail bench emits (`},`) plus
       whitespace; any other trailing bytes are an error. *)
    skip_ws ();
    (match peek () with Some ',' -> incr pos | _ -> ());
    skip_ws ();
    if !pos <> n then fail "trailing garbage after object";
    Ok fields
  with Bad msg -> Error msg

let mem key fields =
  let rec go = function
    | [] -> None
    | (k, v) :: rest -> if String.equal k key then Some v else go rest
  in
  go fields

let int_mem key fields =
  match mem key fields with Some (Int i) -> Some i | _ -> None

let float_mem key fields =
  match mem key fields with
  | Some (Float f) -> Some f
  | Some (Int i) -> Some (float_of_int i)
  | _ -> None

let str_mem key fields =
  match mem key fields with Some (Str s) -> Some s | _ -> None

let bool_mem key fields =
  match mem key fields with Some (Bool b) -> Some b | _ -> None

let ints_mem key fields =
  match mem key fields with Some (Ints xs) -> Some xs | _ -> None
