let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let quote s = "\"" ^ escape s ^ "\""

let int_array xs =
  let b = Buffer.create 64 in
  Buffer.add_char b '[';
  List.iteri
    (fun i x ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (string_of_int x))
    xs;
  Buffer.add_char b ']';
  Buffer.contents b
