type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  p25 : float;
  median : float;
  p75 : float;
  max : float;
}

let mean xs =
  if Array.length xs = 0 then invalid_arg "Stats.mean";
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    sqrt (ss /. float_of_int (n - 1))
  end

let percentile xs p =
  if Array.length xs = 0 then invalid_arg "Stats.percentile";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  (* Float.compare orders exactly like the polymorphic compare it replaces
     (NaN equal to itself and below every number), so percentile output is
     byte-identical. *)
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) and hi = int_of_float (ceil rank) in
  if lo = hi then sorted.(lo)
  else begin
    let w = rank -. float_of_int lo in
    ((1.0 -. w) *. sorted.(lo)) +. (w *. sorted.(hi))
  end

let median xs = percentile xs 50.0

(* Min/max folds ordered by Float.compare, matching the percentile sort
   above: NaN is equal to itself and below every number, so [fmin] of a
   sample containing NaN is NaN (= percentile 0) and [fmax] ignores NaN
   unless the sample is all-NaN.  [Stdlib.min]/[max] use the polymorphic
   [<=], for which NaN comparisons are all false — the result then depends
   on operand order and disagrees with the percentiles in the same
   summary. *)
let fmin (a : float) (x : float) = if Float.compare x a < 0 then x else a
let fmax (a : float) (x : float) = if Float.compare x a > 0 then x else a

let summarize xs =
  if Array.length xs = 0 then invalid_arg "Stats.summarize";
  {
    n = Array.length xs;
    mean = mean xs;
    stddev = stddev xs;
    min = Array.fold_left fmin xs.(0) xs;
    p25 = percentile xs 25.0;
    median = median xs;
    p75 = percentile xs 75.0;
    max = Array.fold_left fmax xs.(0) xs;
  }

type fit = { slope : float; intercept : float; r2 : float }

let linear_fit pts =
  let n = List.length pts in
  if n < 2 then invalid_arg "Stats.linear_fit: need at least two points";
  let fn = float_of_int n in
  let sx = List.fold_left (fun a (x, _) -> a +. x) 0.0 pts in
  let sy = List.fold_left (fun a (_, y) -> a +. y) 0.0 pts in
  let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0.0 pts in
  let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0.0 pts in
  let denom = (fn *. sxx) -. (sx *. sx) in
  if abs_float denom < 1e-12 then invalid_arg "Stats.linear_fit: degenerate x";
  let slope = ((fn *. sxy) -. (sx *. sy)) /. denom in
  let intercept = (sy -. (slope *. sx)) /. fn in
  let ybar = sy /. fn in
  let ss_tot = List.fold_left (fun a (_, y) -> a +. ((y -. ybar) ** 2.0)) 0.0 pts in
  let ss_res =
    List.fold_left
      (fun a (x, y) -> a +. ((y -. (slope *. x) -. intercept) ** 2.0))
      0.0 pts
  in
  let r2 = if ss_tot < 1e-12 then 1.0 else 1.0 -. (ss_res /. ss_tot) in
  { slope; intercept; r2 }

type fit2 = { a : float; b : float; c : float; r2_2 : float }

(* Solve the 3x3 normal equations with Gaussian elimination. *)
let solve3 m v =
  let m = Array.map Array.copy m and v = Array.copy v in
  for col = 0 to 2 do
    (* Partial pivot. *)
    let piv = ref col in
    for r = col + 1 to 2 do
      if abs_float m.(r).(col) > abs_float m.(!piv).(col) then piv := r
    done;
    if abs_float m.(!piv).(col) < 1e-9 then
      invalid_arg "Stats.two_predictor_fit: singular normal equations";
    if !piv <> col then begin
      let tmp = m.(col) in
      m.(col) <- m.(!piv);
      m.(!piv) <- tmp;
      let tv = v.(col) in
      v.(col) <- v.(!piv);
      v.(!piv) <- tv
    end;
    for r = 0 to 2 do
      if r <> col then begin
        let f = m.(r).(col) /. m.(col).(col) in
        for c = col to 2 do
          m.(r).(c) <- m.(r).(c) -. (f *. m.(col).(c))
        done;
        v.(r) <- v.(r) -. (f *. v.(col))
      end
    done
  done;
  Array.init 3 (fun i -> v.(i) /. m.(i).(i))

let two_predictor_fit pts =
  if List.length pts < 3 then
    invalid_arg "Stats.two_predictor_fit: need at least three points";
  let s f = List.fold_left (fun acc p -> acc +. f p) 0.0 pts in
  let n = float_of_int (List.length pts) in
  let sx1 = s (fun (x, _, _) -> x)
  and sx2 = s (fun (_, x, _) -> x)
  and sy = s (fun (_, _, y) -> y) in
  let sx11 = s (fun (x, _, _) -> x *. x)
  and sx22 = s (fun (_, x, _) -> x *. x)
  and sx12 = s (fun (x1, x2, _) -> x1 *. x2)
  and sx1y = s (fun (x1, _, y) -> x1 *. y)
  and sx2y = s (fun (_, x2, y) -> x2 *. y) in
  let sol =
    solve3
      [| [| sx11; sx12; sx1 |]; [| sx12; sx22; sx2 |]; [| sx1; sx2; n |] |]
      [| sx1y; sx2y; sy |]
  in
  let a = sol.(0) and b = sol.(1) and c = sol.(2) in
  let ybar = sy /. n in
  let ss_tot = s (fun (_, _, y) -> (y -. ybar) ** 2.0) in
  let ss_res =
    s (fun (x1, x2, y) -> (y -. (a *. x1) -. (b *. x2) -. c) ** 2.0)
  in
  let r2_2 = if ss_tot < 1e-12 then 1.0 else 1.0 -. (ss_res /. ss_tot) in
  { a; b; c; r2_2 }

let ratio_spread pts =
  let ratios =
    List.filter_map (fun (x, y) -> if x = 0.0 then None else Some (y /. x)) pts
  in
  match ratios with
  | [] -> invalid_arg "Stats.ratio_spread: no usable points"
  | r0 :: _ ->
      let arr = Array.of_list ratios in
      let mn = Array.fold_left fmin r0 arr
      and mx = Array.fold_left fmax r0 arr in
      (mean arr, if mn = 0.0 then infinity else mx /. mn)

let of_ints a = Array.map float_of_int a
