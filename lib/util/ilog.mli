(** Integer logarithm and power helpers.

    The paper's schedules are parameterized by quantities such as
    [⌈log₂ n⌉]; these helpers compute them exactly on integers (no floating
    point rounding surprises). *)

val floor_log2 : int -> int
(** [floor_log2 n] is [⌊log₂ n⌋] for [n ≥ 1].  @raise Invalid_argument if
    [n < 1]. *)

val ceil_log2 : int -> int
(** [ceil_log2 n] is [⌈log₂ n⌉] for [n ≥ 1]; [ceil_log2 1 = 0]. *)

val clog : int -> int
(** [clog n] is the paper's [⌈log n⌉] rounded up to at least 1 — every
    schedule length in the paper is a positive multiple of [log n] even for
    tiny [n], so this never returns 0. *)

val pow2 : int -> int
(** [pow2 k] is [2^k] for [0 ≤ k < 62]. *)

val pow : int -> int -> int
(** [pow b k] is [b^k] by repeated squaring, for [k ≥ 0].

    @raise Invalid_argument if [k < 0] or if any intermediate product
    overflows native [int] range.  Theorem round budgets multiply
    [log^5 n]-scale factors through this function ([⌈log n⌉ ≤ 63] on a
    64-bit host, so [pow (clog n) 5 ≤ 63^5 < 2^30] is always safe); the
    guard exists so a bad exponent fails loudly instead of silently
    wrapping into a nonsense (possibly negative) round budget. *)

val isqrt : int -> int
(** Integer square root: greatest [r] with [r*r ≤ n], for [n ≥ 0]. *)

val cdiv : int -> int -> int
(** [cdiv a b] is [⌈a/b⌉] for positive [b]. *)
