let floor_log2 n =
  if n < 1 then invalid_arg "Ilog.floor_log2";
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let ceil_log2 n =
  if n < 1 then invalid_arg "Ilog.ceil_log2";
  let f = floor_log2 n in
  if 1 lsl f = n then f else f + 1

let clog n = max 1 (ceil_log2 n)

let pow2 k =
  if k < 0 || k >= 62 then invalid_arg "Ilog.pow2";
  1 lsl k

(* Overflow-checked multiply: the division round-trip fails iff a*b wrapped.
   [a = -1 && b = min_int] is the one case where the product wraps yet the
   round-trip succeeds (min_int / -1 itself wraps). *)
let mul_exn a b =
  let p = a * b in
  if a <> 0 && (p / a <> b || (a = -1 && b = min_int)) then
    invalid_arg "Ilog.pow: overflow"
  else p

let pow b k =
  if k < 0 then invalid_arg "Ilog.pow";
  (* Square-and-multiply, but only square the base while higher bits of [k]
     remain: the pre-guard version squared unconditionally, so [b * b] could
     wrap (silently, then poison acc) even when the result fit. *)
  let rec go acc b k =
    let acc = if k land 1 = 1 then mul_exn acc b else acc in
    let k = k lsr 1 in
    if k = 0 then acc else go acc (mul_exn b b) k
  in
  go 1 b k

let isqrt n =
  if n < 0 then invalid_arg "Ilog.isqrt";
  if n < 2 then n
  else begin
    let r = ref (int_of_float (sqrt (float_of_int n))) in
    while !r * !r > n do decr r done;
    while (!r + 1) * (!r + 1) <= n do incr r done;
    !r
  end

let cdiv a b =
  if b <= 0 then invalid_arg "Ilog.cdiv";
  (a + b - 1) / b
