(** Plain-text table rendering for the benchmark harness.

    Produces aligned, pipe-separated tables so that every experiment prints
    the same kind of rows the paper's claims are checked against.

    Rendering is pure: this module returns lines and never writes to the
    console (rblint rule R4 — library code returns data).  The printing
    helpers live with the callers, e.g. [bench/main.ml]. *)

type t

val create : title:string -> columns:string list -> t
(** A new table with the given column headers. *)

val add_row : t -> string list -> unit
(** Append a row; must have as many cells as there are columns. *)

val add_int_row : t -> (string * int list) -> unit
(** Convenience: a label cell followed by integer cells. *)

val to_lines : t -> string list
(** Render with column alignment: the title line, the header row, a
    separator, then one line per data row. *)

val write_csv : t -> unit
(** When {!csv_dir} is set, write the table as a CSV file named after a
    slug of its title into that directory (created if missing); a no-op
    otherwise. *)

val csv_dir : string option Atomic.t
(** CSV output directory for {!write_csv} — used by
    [bench/main.exe --csv DIR] so plots can be regenerated.  An [Atomic.t]
    so setting it is safe even with benchmark trials running on sibling
    domains. *)

val cell_f : float -> string
(** Format a float cell compactly ("123", "12.3", "1.23"). *)

val note_line : string -> string
(** A single indented commentary line (shape verdicts etc.). *)

val section_lines : string -> string list
(** A three-line section banner (one per experiment id). *)
