type t = { len : int; words : int array }

let bits_per_word = 63

let words_for len = (len + bits_per_word - 1) / bits_per_word

let create len =
  if len < 0 then invalid_arg "Bitvec.create";
  { len; words = Array.make (words_for len) 0 }

let length t = t.len

let copy t = { len = t.len; words = Array.copy t.words }

let check_index t i =
  if i < 0 || i >= t.len then invalid_arg "Bitvec: index out of bounds"

let get t i =
  check_index t i;
  t.words.(i / bits_per_word) lsr (i mod bits_per_word) land 1 = 1

let set t i b =
  check_index t i;
  let w = i / bits_per_word and o = i mod bits_per_word in
  if b then t.words.(w) <- t.words.(w) lor (1 lsl o)
  else t.words.(w) <- t.words.(w) land lnot (1 lsl o)

(* Unchecked hot-path accessors for loops that have already bounds-checked
   their range.  [unsafe_set]/[unsafe_clear] are single-bit orientations
   of [set] without the branch on a bool argument. *)
(* rblint:allow R9 contract accessor: callers bounds-check [i] before the call; the word index [i / bits_per_word] is then within [words] by construction *)
let unsafe_get t i =
  Array.unsafe_get t.words (i / bits_per_word) lsr (i mod bits_per_word) land 1
  = 1

(* rblint:allow R9 contract accessor: callers bounds-check [i]; same word-index argument as [unsafe_get] *)
let unsafe_set t i =
  let w = i / bits_per_word in
  Array.unsafe_set t.words w
    (Array.unsafe_get t.words w lor (1 lsl (i mod bits_per_word)))

(* rblint:allow R9 contract accessor: callers bounds-check [i]; same word-index argument as [unsafe_get] *)
let unsafe_clear t i =
  let w = i / bits_per_word in
  Array.unsafe_set t.words w
    (Array.unsafe_get t.words w land lnot (1 lsl (i mod bits_per_word)))

let clear_range t ~lo ~hi =
  if lo < 0 || hi > t.len || lo > hi then invalid_arg "Bitvec.clear_range";
  if lo < hi then begin
    let wl = lo / bits_per_word and wh = (hi - 1) / bits_per_word in
    let mask_lo = (1 lsl (lo mod bits_per_word)) - 1 in
    (* Bits of the top word at offsets >= hi survive.  Two-step shift: the
       offset can be [bits_per_word - 1], and [lsl] by a full word is
       unspecified ([lsl] is right-associative — the inner shift must be
       parenthesized or the shift counts compose). *)
    let keep_hi = (-1 lsl ((hi - 1) mod bits_per_word)) lsl 1 in
    if wl = wh then t.words.(wl) <- t.words.(wl) land (mask_lo lor keep_hi)
    else begin
      t.words.(wl) <- t.words.(wl) land mask_lo;
      Array.fill t.words (wl + 1) (wh - wl - 1) 0;
      t.words.(wh) <- t.words.(wh) land keep_hi
    end
  end

let unit len i =
  let t = create len in
  set t i true;
  t

let is_zero t = Array.for_all (fun w -> w = 0) t.words

let equal a b = a.len = b.len && a.words = b.words

let check_lengths a b op =
  if a.len <> b.len then invalid_arg ("Bitvec." ^ op ^ ": length mismatch")

let xor_into ~dst src =
  check_lengths dst src "xor_into";
  for i = 0 to Array.length dst.words - 1 do
    dst.words.(i) <- dst.words.(i) lxor src.words.(i)
  done

let word_parity w =
  let w = w lxor (w lsr 32) in
  let w = w lxor (w lsr 16) in
  let w = w lxor (w lsr 8) in
  let w = w lxor (w lsr 4) in
  let w = w lxor (w lsr 2) in
  let w = w lxor (w lsr 1) in
  w land 1

let dot a b =
  check_lengths a b "dot";
  let acc = ref 0 in
  for i = 0 to Array.length a.words - 1 do
    acc := !acc lxor word_parity (a.words.(i) land b.words.(i))
  done;
  !acc = 1

let first_set t =
  let rec find_word w =
    if w >= Array.length t.words then None
    else if t.words.(w) = 0 then find_word (w + 1)
    else begin
      let rec find_bit o =
        if t.words.(w) lsr o land 1 = 1 then Some ((w * bits_per_word) + o)
        else find_bit (o + 1)
      in
      find_bit 0
    end
  in
  find_word 0

let popcount t =
  let count_word w =
    let rec go acc w = if w = 0 then acc else go (acc + (w land 1)) (w lsr 1) in
    go 0 w
  in
  Array.fold_left (fun acc w -> acc + count_word w) 0 t.words

let random rng len =
  let t = create len in
  for i = 0 to len - 1 do
    if Rn_util.Rng.bool rng then set t i true
  done;
  t

let of_bools bs =
  let t = create (List.length bs) in
  List.iteri (fun i b -> if b then set t i true) bs;
  t

let to_bools t = List.init t.len (get t)

let to_string t =
  String.init t.len (fun i -> if get t i then '1' else '0')

let of_string s =
  let t = create (String.length s) in
  String.iteri
    (fun i c ->
      match c with
      | '1' -> set t i true
      | '0' -> ()
      | _ -> invalid_arg "Bitvec.of_string: expected only '0'/'1'")
    s;
  t
