(** Fixed-length bit vectors over GF(2).

    Random linear network coding (§3.3.1) works over F₂: messages are bit
    vectors, coefficient vectors are bit vectors, and packets carry sums
    (XORs) of messages.  This module is the shared representation, bit-packed
    into 63-bit words. *)

type t

val create : int -> t
(** [create len] is the zero vector of length [len ≥ 0]. *)

val length : t -> int
val copy : t -> t

val get : t -> int -> bool
val set : t -> int -> bool -> unit

val bits_per_word : int
(** Bits stored per backing word (63 on a 64-bit platform).  Concurrent
    writers that partition the index space must align their partition
    boundaries to multiples of this so no two ever touch the same word —
    {!Rn_graph.Graph.shard_cuts} takes it as [align]. *)

val unsafe_get : t -> int -> bool

val unsafe_set : t -> int -> unit
(** [unsafe_set t i] sets bit [i] to one — no bounds check; the caller must
    guarantee [0 <= i < length t].  Hot-path variant for loops over an
    already-validated range. *)

val unsafe_clear : t -> int -> unit
(** [unsafe_clear t i] sets bit [i] to zero — same contract as
    {!unsafe_set}. *)

val clear_range : t -> lo:int -> hi:int -> unit
(** [clear_range t ~lo ~hi] zeroes bits [\[lo, hi)] with whole-word stores
    (O(range/63) rather than O(range)).
    @raise Invalid_argument unless [0 <= lo <= hi <= length t]. *)

val unit : int -> int -> t
(** [unit len i] is the standard basis vector e_i. *)

val is_zero : t -> bool

val equal : t -> t -> bool

val xor_into : dst:t -> t -> unit
(** [xor_into ~dst src] sets [dst <- dst XOR src].  Lengths must match. *)

val dot : t -> t -> bool
(** Inner product over GF(2): parity of the AND.  Lengths must match. *)

val first_set : t -> int option
(** Index of the lowest set bit, if any. *)

val popcount : t -> int

val random : Rn_util.Rng.t -> int -> t
(** Uniformly random vector of the given length. *)

val of_bools : bool list -> t
val to_bools : t -> bool list

val to_string : t -> string
(** E.g. ["1011"], index 0 leftmost. *)

val of_string : string -> t
(** Inverse of [to_string].  @raise Invalid_argument on non-[01]
    characters. *)
