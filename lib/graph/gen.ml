open Rn_util

let path n =
  if n < 1 then invalid_arg "Gen.path";
  Graph.create ~n ~edges:(List.init (max 0 (n - 1)) (fun i -> (i, i + 1)))

let cycle n =
  if n < 3 then invalid_arg "Gen.cycle";
  let edges = (n - 1, 0) :: List.init (n - 1) (fun i -> (i, i + 1)) in
  Graph.create ~n ~edges

let star n =
  if n < 1 then invalid_arg "Gen.star";
  Graph.create ~n ~edges:(List.init (max 0 (n - 1)) (fun i -> (0, i + 1)))

let complete n =
  if n < 1 then invalid_arg "Gen.complete";
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges := (u, v) :: !edges
    done
  done;
  Graph.create ~n ~edges:!edges

let grid ~w ~h =
  if w < 1 || h < 1 then invalid_arg "Gen.grid";
  let id x y = (y * w) + x in
  let b = Graph.Builder.create ~capacity:(2 * w * h) ~n:(w * h) () in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      if x + 1 < w then Graph.Builder.add_edge b (id x y) (id (x + 1) y);
      if y + 1 < h then Graph.Builder.add_edge b (id x y) (id x (y + 1))
    done
  done;
  Graph.Builder.finish b

let balanced_tree ~arity ~depth =
  if arity < 1 || depth < 0 then invalid_arg "Gen.balanced_tree";
  let edges = ref [] and next = ref 1 in
  (* Frontier-by-frontier construction keeps ids in BFS order. *)
  let rec expand frontier d =
    if d < depth then begin
      let children =
        List.concat_map
          (fun parent ->
            List.init arity (fun _ ->
                let c = !next in
                incr next;
                edges := (parent, c) :: !edges;
                c))
          frontier
      in
      expand children (d + 1)
    end
  in
  expand [ 0 ] 0;
  Graph.create ~n:!next ~edges:!edges

let caterpillar ~spine ~legs =
  if spine < 1 || legs < 0 then invalid_arg "Gen.caterpillar";
  let n = spine * (1 + legs) in
  let edges = ref [] in
  for s = 0 to spine - 1 do
    if s + 1 < spine then edges := (s, s + 1) :: !edges;
    for l = 0 to legs - 1 do
      edges := (s, spine + (s * legs) + l) :: !edges
    done
  done;
  Graph.create ~n ~edges:!edges

let gnp ~rng ~n ~p =
  if n < 0 then invalid_arg "Gen.gnp";
  let b = Graph.Builder.create ~n () in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Rng.bernoulli rng p then Graph.Builder.add_edge b u v
    done
  done;
  Graph.Builder.finish b

let random_connected ~rng ~n ~extra =
  if n < 1 then invalid_arg "Gen.random_connected";
  let b = Graph.Builder.create ~capacity:(n + max extra 0) ~n () in
  for v = 1 to n - 1 do
    Graph.Builder.add_edge b (Rng.int rng v) v
  done;
  for _ = 1 to extra do
    if n >= 2 then begin
      let u = Rng.int rng n in
      let v = Rng.int rng n in
      if u <> v then Graph.Builder.add_edge b u v
    end
  done;
  Graph.Builder.finish b

let layered_random ~rng ~depth ~width ~p =
  if depth < 1 || width < 1 then invalid_arg "Gen.layered_random";
  let n = 1 + (depth * width) in
  let node layer j = if layer = 0 then 0 else 1 + ((layer - 1) * width) + j in
  let b = Graph.Builder.create ~capacity:(2 * n) ~n () in
  for layer = 1 to depth do
    let prev_width = if layer = 1 then 1 else width in
    for j = 0 to width - 1 do
      let v = node layer j in
      (* Guaranteed uplink keeps the BFS level equal to the layer index. *)
      let forced = Rng.int rng prev_width in
      Graph.Builder.add_edge b (node (layer - 1) forced) v;
      for i = 0 to prev_width - 1 do
        if i <> forced && Rng.bernoulli rng p then
          Graph.Builder.add_edge b (node (layer - 1) i) v
      done
    done
  done;
  Graph.Builder.finish b

let cluster_path ~rng ~clusters ~size ~p_intra =
  if clusters < 1 || size < 1 then invalid_arg "Gen.cluster_path";
  let n = clusters * size in
  let node c j = (c * size) + j in
  let b = Graph.Builder.create ~capacity:(2 * n) ~n () in
  for c = 0 to clusters - 1 do
    (* Spanning path inside the cluster guarantees connectivity. *)
    for j = 0 to size - 2 do
      Graph.Builder.add_edge b (node c j) (node c (j + 1))
    done;
    for j = 0 to size - 1 do
      for i = j + 2 to size - 1 do
        if Rng.bernoulli rng p_intra then
          Graph.Builder.add_edge b (node c j) (node c i)
      done
    done;
    if c + 1 < clusters then
      Graph.Builder.add_edge b (node c (size - 1)) (node (c + 1) 0)
  done;
  Graph.Builder.finish b

let barbell ~clique ~bridge =
  if clique < 1 || bridge < 0 then invalid_arg "Gen.barbell";
  let n = (2 * clique) + bridge in
  let edges = ref [] in
  let add_clique base =
    for i = 0 to clique - 1 do
      for j = i + 1 to clique - 1 do
        edges := (base + i, base + j) :: !edges
      done
    done
  in
  add_clique 0;
  add_clique (clique + bridge);
  (* Path: last node of clique 1, the bridge nodes, first node of clique 2. *)
  let left = clique - 1 and right = clique + bridge in
  if bridge = 0 then edges := (left, right) :: !edges
  else begin
    edges := (left, clique) :: !edges;
    for b = 0 to bridge - 2 do
      edges := (clique + b, clique + b + 1) :: !edges
    done;
    edges := (clique + bridge - 1, right) :: !edges
  end;
  Graph.create ~n ~edges:!edges

let unit_disk ~rng ~n ~radius =
  if n < 1 then invalid_arg "Gen.unit_disk";
  let xs = Array.init n (fun _ -> Rng.float rng 1.0) in
  let ys = Array.init n (fun _ -> Rng.float rng 1.0) in
  let dist2 u v = ((xs.(u) -. xs.(v)) ** 2.0) +. ((ys.(u) -. ys.(v)) ** 2.0) in
  let r2 = radius *. radius in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if dist2 u v <= r2 then edges := (u, v) :: !edges
    done
  done;
  (* Stitch components with their geometrically closest cross pair so the
     broadcast problem is well-defined. *)
  let rec stitch edges =
    let g = Graph.create ~n ~edges in
    let comp = Bfs.levels g ~src:0 in
    if Array.for_all (fun d -> d >= 0) comp then g
    else begin
      let best = ref None in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if comp.(u) >= 0 && comp.(v) < 0 then begin
            let d = dist2 u v in
            match !best with
            | Some (_, _, bd) when bd <= d -> ()
            | _ -> best := Some (u, v, d)
          end
        done
      done;
      match !best with
      | Some (u, v, _) -> stitch ((u, v) :: edges)
      | None -> g
    end
  in
  stitch !edges

let bipartite_random ~rng ~reds ~blues ~p =
  if reds < 1 || blues < 0 then invalid_arg "Gen.bipartite_random";
  let bld = Graph.Builder.create ~capacity:(2 * (reds + blues)) ~n:(reds + blues) () in
  for b = 0 to blues - 1 do
    let blue = reds + b in
    let forced = Rng.int rng reds in
    Graph.Builder.add_edge bld forced blue;
    for r = 0 to reds - 1 do
      if r <> forced && Rng.bernoulli rng p then Graph.Builder.add_edge bld r blue
    done
  done;
  Graph.Builder.finish bld

let bipartite_regular ~rng ~reds ~blues ~degree =
  if reds < 1 || blues < 0 || degree < 1 || degree > reds then
    invalid_arg "Gen.bipartite_regular";
  let bld = Graph.Builder.create ~capacity:(blues * degree) ~n:(reds + blues) () in
  for b = 0 to blues - 1 do
    let blue = reds + b in
    Array.iter
      (fun r -> Graph.Builder.add_edge bld r blue)
      (Rng.sample_without_replacement rng degree reds)
  done;
  Graph.Builder.finish bld

let dot g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "graph G {\n";
  List.iter
    (fun (u, v) -> Buffer.add_string buf (Printf.sprintf "  %d -- %d;\n" u v))
    (Graph.edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
