let levels g ~src =
  let n = Graph.n g in
  let dist = Array.make n (-1) in
  let queue = Queue.create () in
  dist.(src) <- 0;
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Graph.iter_neighbors g u (fun v ->
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v queue
        end)
  done;
  dist

let multi_levels g ~sources =
  let n = Graph.n g in
  let dist = Array.make n (-1) in
  let queue = Queue.create () in
  Array.iter
    (fun s ->
      if dist.(s) < 0 then begin
        dist.(s) <- 0;
        Queue.add s queue
      end)
    sources;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Graph.iter_neighbors g u (fun v ->
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v queue
        end)
  done;
  dist

let levels_and_parents g ~src =
  let dist = levels g ~src in
  let n = Graph.n g in
  let parent = Array.make n (-1) in
  for v = 0 to n - 1 do
    if dist.(v) > 0 then
      (* Neighbors are stored ascending, so the first match is smallest. *)
      Graph.iter_neighbors g v (fun u ->
          if parent.(v) < 0 && dist.(u) = dist.(v) - 1 then parent.(v) <- u)
  done;
  (dist, parent)

let eccentricity g v =
  let dist = levels g ~src:v in
  Array.fold_left
    (fun acc d ->
      if d < 0 then invalid_arg "Bfs.eccentricity: disconnected graph"
      else max acc d)
    0 dist

let is_connected g =
  let n = Graph.n g in
  n = 0 || Array.for_all (fun d -> d >= 0) (levels g ~src:0)

let diameter g =
  let n = Graph.n g in
  if n = 0 then 0
  else begin
    let best = ref 0 in
    for v = 0 to n - 1 do
      best := max !best (eccentricity g v)
    done;
    !best
  end

let nodes_at_level (levels : int array) (l : int) =
  let acc = ref [] in
  Array.iteri (fun v lv -> if lv = l then acc := v :: !acc) levels;
  Array.of_list (List.rev !acc)

let max_level levels = Array.fold_left max (-1) levels
