(** Static undirected graphs.

    The radio network model of the paper (§1.1) is a synchronous network on
    an undirected graph [G = (V, E)]; this module is the immutable topology
    substrate every protocol runs on.  Nodes are integers [0 .. n-1].

    Adjacency is stored in compressed sparse row (CSR) form — one flat
    offsets array plus one flat targets array — so neighbor iteration is a
    contiguous slice walk with no per-node indirection. *)

type t

val create : n:int -> edges:(int * int) list -> t
(** [create ~n ~edges] builds a graph on [n] nodes.  Self-loops and
    duplicate edges are dropped; endpoints must lie in [\[0, n)].
    @raise Invalid_argument on an out-of-range endpoint or [n < 0]. *)

module Builder : sig
  (** Incremental, list-free construction for large graphs.

      The list-based {!create} boxes every edge twice (a tuple inside a
      cons cell); at [n = 10⁶] that intermediate dominates generation time
      and heap.  A builder accumulates endpoints in one flat int array with
      amortized doubling and funnels through the same CSR finisher as
      {!create}, so [finish] yields a graph identical to
      [create ~n ~edges] for the same edge multiset. *)

  type b

  val create : ?capacity:int -> n:int -> unit -> b
  (** [create ~n ()] starts an empty builder for a graph on [n] nodes;
      [capacity] is an optional edge-count hint (the buffer grows as
      needed either way).  @raise Invalid_argument if [n < 0]. *)

  val add_edge : b -> int -> int -> unit
  (** [add_edge b u v] appends the undirected edge [(u, v)].  Self-loops
      and duplicates are accepted here and dropped by [finish], exactly as
      {!create} drops them.  @raise Invalid_argument if an endpoint is
      outside [\[0, n)]. *)

  val edge_count : b -> int
  (** Edges appended so far (before self-loop/duplicate dropping). *)

  val finish : b -> t
  (** Build the graph.  The builder may be reused afterwards (it is not
      consumed), though typical callers discard it. *)
end

val n : t -> int
(** Number of nodes. *)

val m : t -> int
(** Number of (undirected) edges. *)

val degree : t -> int -> int

val neighbors : t -> int -> int array
(** The neighbors of a node, sorted ascending, as a fresh array (the
    backing store is shared CSR; a copy is the only safe row view).
    Prefer [iter_neighbors]/[fold_neighbors] on hot paths. *)

val iter_neighbors : t -> int -> (int -> unit) -> unit
val fold_neighbors : t -> int -> ('a -> int -> 'a) -> 'a -> 'a

val offsets : t -> int array
(** The physical CSR offsets array, length [n + 1] — do not mutate.  The
    neighbors of [v] are [targets.(offsets.(v)) .. targets.(offsets.(v+1) -
    1)], sorted ascending.  Exposed for allocation-free inner loops (the
    radio engine); everything else should use the iterators. *)

val targets : t -> int array
(** The physical CSR targets array, length [2m] — do not mutate. *)

val csc_offsets : t -> int array

val csc_targets : t -> int array
(** Reverse-adjacency (CSC) view: [csc_targets.(csc_offsets.(v)) ..
    csc_targets.(csc_offsets.(v+1) - 1)] are the {e in}-neighbors of [v].
    The graph is undirected, so its adjacency matrix is symmetric and the
    CSR arrays are their own CSC — these are O(1) aliases of
    {!offsets}/{!targets}, exposed under the gather-side name for readers
    of pull-model loops (the sharded engine iterates the in-edges of its
    own listeners so that every write stays shard-local).  Do not
    mutate. *)

val shard_cuts : ?align:int -> t -> parts:int -> int array
(** [shard_cuts t ~parts] partitions the node range into [parts] contiguous
    shards balanced by CSR edge count: the returned array [cuts] has length
    [parts + 1] with [cuts.(0) = 0], [cuts.(parts) = n], nondecreasing, and
    shard [k] owns nodes [\[cuts.(k), cuts.(k+1))].  Balance weights each
    node as [1 + degree], matching a decide scan plus a gather sweep.
    [align] (default 1) forces every interior cut onto a multiple of
    [align] — the sharded engine aligns cuts to the bit-vector word size so
    no two shards ever touch the same word.  Cuts may coincide (empty
    shards) when [parts > n] or alignment collapses them.
    @raise Invalid_argument if [parts < 1] or [align < 1]. *)

val mem_edge : t -> int -> int -> bool
(** Edge test in O(log deg). *)

val edges : t -> (int * int) list
(** Each undirected edge once, as [(u, v)] with [u < v]. *)

val max_degree : t -> int

val induced_bipartite : t -> left:int array -> right:int array -> t * int array
(** [induced_bipartite g ~left ~right] extracts the bipartite graph [H]
    between the node sets [left] and [right] (edges inside a side are
    ignored, as in §2.2.2).  Returns the new graph — nodes of [left] come
    first, then [right] — and the mapping from new ids back to ids in
    [g]. *)

val pp : Format.formatter -> t -> unit
(** One-line summary ["graph(n=…, m=…)"], for logs and test failures. *)
