(** Static undirected graphs.

    The radio network model of the paper (§1.1) is a synchronous network on
    an undirected graph [G = (V, E)]; this module is the immutable topology
    substrate every protocol runs on.  Nodes are integers [0 .. n-1].

    Adjacency is stored in compressed sparse row (CSR) form — one flat
    offsets array plus one flat targets array — so neighbor iteration is a
    contiguous slice walk with no per-node indirection. *)

type t

val create : n:int -> edges:(int * int) list -> t
(** [create ~n ~edges] builds a graph on [n] nodes.  Self-loops and
    duplicate edges are dropped; endpoints must lie in [\[0, n)].
    @raise Invalid_argument on an out-of-range endpoint or [n < 0]. *)

val n : t -> int
(** Number of nodes. *)

val m : t -> int
(** Number of (undirected) edges. *)

val degree : t -> int -> int

val neighbors : t -> int -> int array
(** The neighbors of a node, sorted ascending, as a fresh array (the
    backing store is shared CSR; a copy is the only safe row view).
    Prefer [iter_neighbors]/[fold_neighbors] on hot paths. *)

val iter_neighbors : t -> int -> (int -> unit) -> unit
val fold_neighbors : t -> int -> ('a -> int -> 'a) -> 'a -> 'a

val offsets : t -> int array
(** The physical CSR offsets array, length [n + 1] — do not mutate.  The
    neighbors of [v] are [targets.(offsets.(v)) .. targets.(offsets.(v+1) -
    1)], sorted ascending.  Exposed for allocation-free inner loops (the
    radio engine); everything else should use the iterators. *)

val targets : t -> int array
(** The physical CSR targets array, length [2m] — do not mutate. *)

val mem_edge : t -> int -> int -> bool
(** Edge test in O(log deg). *)

val edges : t -> (int * int) list
(** Each undirected edge once, as [(u, v)] with [u < v]. *)

val max_degree : t -> int

val induced_bipartite : t -> left:int array -> right:int array -> t * int array
(** [induced_bipartite g ~left ~right] extracts the bipartite graph [H]
    between the node sets [left] and [right] (edges inside a side are
    ignored, as in §2.2.2).  Returns the new graph — nodes of [left] come
    first, then [right] — and the mapping from new ids back to ids in
    [g]. *)

val pp : Format.formatter -> t -> unit
(** One-line summary ["graph(n=…, m=…)"], for logs and test failures. *)
