(* Adjacency is stored in CSR form: [tgt.(off.(v)) .. tgt.(off.(v+1)-1)] are
   the neighbors of [v], sorted ascending.  One flat target array keeps
   neighbor walks cache-friendly and gives the radio engine a branch-free
   slice to scan, instead of chasing per-node array pointers. *)
type t = { off : int array; tgt : int array; m : int }

(* In-place monomorphic int sort on [a.(lo) .. a.(hi-1)]: quicksort with a
   median-of-three pivot, insertion sort below a small cutoff.  Avoids both
   the polymorphic-compare calls and the closure dispatch of
   [Array.sort compare] on the construction path. *)
let rec sort_range (a : int array) lo hi =
  let len = hi - lo in
  if len <= 12 then
    for i = lo + 1 to hi - 1 do
      let x = a.(i) in
      let j = ref (i - 1) in
      while !j >= lo && a.(!j) > x do
        a.(!j + 1) <- a.(!j);
        decr j
      done;
      a.(!j + 1) <- x
    done
  else begin
    let mid = lo + (len / 2) in
    (* Median of first / middle / last as pivot, moved to [lo]. *)
    let swap i j =
      let tmp = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- tmp
    in
    if a.(mid) < a.(lo) then swap mid lo;
    if a.(hi - 1) < a.(lo) then swap (hi - 1) lo;
    if a.(hi - 1) < a.(mid) then swap (hi - 1) mid;
    swap lo mid;
    let pivot = a.(lo) in
    let i = ref (lo + 1) and j = ref (hi - 1) in
    while !i <= !j do
      while !i <= !j && a.(!i) <= pivot do incr i done;
      while !i <= !j && a.(!j) > pivot do decr j done;
      if !i < !j then swap !i !j
    done;
    swap lo !j;
    sort_range a lo !j;
    sort_range a (!j + 1) hi
  end

(* Shared CSR finisher over a flat endpoint buffer: edge [i] is
   [(pairs.(2i), pairs.(2i+1))], [i < len].  Both the list-based [create]
   and the list-free [Builder] funnel through here, so the two construction
   paths produce identical graphs for the same edge multiset by
   construction. *)
let of_flat ~n ~pairs ~len =
  if n < 0 then invalid_arg "Graph.create: negative n";
  let check v =
    if v < 0 || v >= n then
      invalid_arg (Printf.sprintf "Graph.create: node %d out of range [0,%d)" v n)
  in
  (* Pass 1: validate and count directed half-edges (self-loops dropped). *)
  let deg = Array.make (max n 1) 0 in
  for i = 0 to len - 1 do
    let u = pairs.(2 * i) and v = pairs.((2 * i) + 1) in
    check u;
    check v;
    if u <> v then begin
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1
    end
  done;
  let off = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    off.(v + 1) <- off.(v) + deg.(v)
  done;
  (* Pass 2: scatter targets; [cursor] tracks each row's write position. *)
  let cursor = Array.sub off 0 (max n 1) in
  let tgt = Array.make (max off.(n) 1) 0 in
  for i = 0 to len - 1 do
    let u = pairs.(2 * i) and v = pairs.((2 * i) + 1) in
    if u <> v then begin
      tgt.(cursor.(u)) <- v;
      cursor.(u) <- cursor.(u) + 1;
      tgt.(cursor.(v)) <- u;
      cursor.(v) <- cursor.(v) + 1
    end
  done;
  for v = 0 to n - 1 do
    sort_range tgt off.(v) off.(v + 1)
  done;
  (* Pass 3: drop duplicate edges, compacting [tgt] in place (the write
     cursor never overtakes the read cursor). *)
  let w = ref 0 in
  let coff = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    coff.(v) <- !w;
    let prev = ref min_int in
    for i = off.(v) to off.(v + 1) - 1 do
      let x = tgt.(i) in
      if x <> !prev then begin
        tgt.(!w) <- x;
        incr w;
        prev := x
      end
    done
  done;
  coff.(n) <- !w;
  let tgt = if !w = Array.length tgt then tgt else Array.sub tgt 0 !w in
  { off = coff; tgt; m = !w / 2 }

let create ~n ~edges =
  let len = List.length edges in
  let pairs = Array.make (max (2 * len) 1) 0 in
  List.iteri
    (fun i (u, v) ->
      pairs.(2 * i) <- u;
      pairs.((2 * i) + 1) <- v)
    edges;
  of_flat ~n ~pairs ~len

module Builder = struct
  type b = { n : int; mutable pairs : int array; mutable len : int }

  let create ?(capacity = 256) ~n () =
    if n < 0 then invalid_arg "Graph.Builder.create: negative n";
    { n; pairs = Array.make (2 * max capacity 1) 0; len = 0 }

  let add_edge b u v =
    let check w =
      if w < 0 || w >= b.n then
        invalid_arg
          (Printf.sprintf "Graph.Builder.add_edge: node %d out of range [0,%d)"
             w b.n)
    in
    check u;
    check v;
    if 2 * b.len = Array.length b.pairs then begin
      (* Amortized doubling: the buffer is the only O(m) intermediate, flat
         ints rather than a list of boxed pairs. *)
      let bigger = Array.make (4 * max b.len 1) 0 in
      Array.blit b.pairs 0 bigger 0 (2 * b.len);
      b.pairs <- bigger
    end;
    b.pairs.(2 * b.len) <- u;
    b.pairs.((2 * b.len) + 1) <- v;
    b.len <- b.len + 1

  let edge_count b = b.len
  let finish b = of_flat ~n:b.n ~pairs:b.pairs ~len:b.len
end

let n t = Array.length t.off - 1
let m t = t.m
let degree t v = t.off.(v + 1) - t.off.(v)
let neighbors t v = Array.sub t.tgt t.off.(v) (t.off.(v + 1) - t.off.(v))
let offsets t = t.off
let targets t = t.tgt

let iter_neighbors t v f =
  (* Hot path: the CSR invariant puts indices in
     [off.(v), off.(v+1)) ⊆ [0, length tgt); the hoisted guard costs one
     compare per call, not per edge, and turns a corrupted [off] table
     into an exception instead of an out-of-bounds read. *)
  let tgt = t.tgt in
  let hi = t.off.(v + 1) in
  if hi > Array.length tgt then invalid_arg "Graph.iter_neighbors";
  for i = t.off.(v) to hi - 1 do
    f (Array.unsafe_get tgt i)
  done

let fold_neighbors t v f init =
  let tgt = t.tgt in
  let hi = t.off.(v + 1) in
  if hi > Array.length tgt then invalid_arg "Graph.fold_neighbors";
  let acc = ref init in
  for i = t.off.(v) to hi - 1 do
    acc := f !acc (Array.unsafe_get tgt i)
  done;
  !acc

let mem_edge t u v =
  let a = t.tgt in
  let rec bsearch lo hi =
    if lo >= hi then false
    else begin
      let mid = (lo + hi) / 2 in
      if a.(mid) = v then true
      else if a.(mid) < v then bsearch (mid + 1) hi
      else bsearch lo mid
    end
  in
  bsearch t.off.(u) t.off.(u + 1)

let edges t =
  let acc = ref [] in
  for u = n t - 1 downto 0 do
    for i = t.off.(u + 1) - 1 downto t.off.(u) do
      let v = t.tgt.(i) in
      if u < v then acc := (u, v) :: !acc
    done
  done;
  !acc

let max_degree t =
  let best = ref 0 in
  for v = 0 to n t - 1 do
    best := max !best (degree t v)
  done;
  !best

let induced_bipartite g ~left ~right =
  let nl = Array.length left and nr = Array.length right in
  let back = Array.append left right in
  (* Only right-side nodes need a forward mapping: edges inside a side are
     ignored, so a left endpoint that is absent from the table behaves the
     same as a non-member. *)
  let fwd = Hashtbl.create (max nr 1) in
  Array.iteri (fun j v -> Hashtbl.replace fwd v (nl + j)) right;
  let es = ref [] in
  Array.iteri
    (fun i u ->
      iter_neighbors g u (fun v ->
          match Hashtbl.find_opt fwd v with
          | Some j -> es := (i, j) :: !es
          | None -> ()))
    left;
  (create ~n:(nl + nr) ~edges:!es, back)

(* The adjacency matrix of an undirected graph is symmetric, so the CSR
   arrays are their own reverse-adjacency (CSC) view: the in-edges of [v]
   are exactly its out-edges.  The sharded engine iterates these under the
   gather-side name; exposing them as O(1) aliases documents the intent
   without copying 2m ints. *)
let csc_offsets t = t.off
let csc_targets t = t.tgt

let shard_cuts ?(align = 1) t ~parts =
  if parts < 1 then invalid_arg "Graph.shard_cuts: parts must be >= 1";
  if align < 1 then invalid_arg "Graph.shard_cuts: align must be >= 1";
  let nn = n t in
  let off = t.off in
  (* Weight of the node prefix [0, v): one unit per node plus its degree,
     so a cut balances the decide scan plus the gather work per shard. *)
  let prefix v = v + off.(v) in
  let total = prefix nn in
  let cuts = Array.make (parts + 1) 0 in
  cuts.(parts) <- nn;
  for k = 1 to parts - 1 do
    let target = total * k / parts in
    (* Smallest v with prefix v >= target; prefix is strictly increasing. *)
    let lo = ref 0 and hi = ref nn in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if prefix mid >= target then hi := mid else lo := mid + 1
    done;
    (* Rounding down to the alignment can only undershoot, so cuts stay in
       [0, n]; the max keeps the sequence nondecreasing when several cuts
       collapse onto the same aligned boundary (empty shards are legal). *)
    cuts.(k) <- max (!lo / align * align) cuts.(k - 1)
  done;
  cuts

let pp fmt t = Format.fprintf fmt "graph(n=%d, m=%d)" (n t) t.m
