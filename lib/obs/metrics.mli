(** Deterministic, allocation-free metrics registry.

    A registry is fully preallocated at {!create}: per-phase counters are
    flat int arrays indexed by phase id, per-round history is a
    fixed-capacity ring buffer, and the receive-round histogram is a flat
    bin array.  The recording ops ({!set_phase}, {!record_round},
    {!observe_receive_round}) are pure int mutation — no closures, no
    boxing — so the engines call them from their [@@zero_alloc_hot] round
    loops without breaking the 0-word quiet-round budget enforced by
    test/test_alloc.ml.

    Determinism: recording happens only from coordinator-serial code (the
    serial engine's round tail; the sharded engine's post-barrier merge of
    owner-local lane counters, walked in fixed shard order), so exported
    output is byte-identical for every domain count — see DESIGN §11. *)

type t

val create :
  ?phases:int -> ?ring:int -> ?hist_bins:int -> ?hist_width:int -> unit -> t
(** [create ()] preallocates a registry.  [phases] (default 64) is the
    number of per-phase bins — phase ids at or beyond it are clamped into
    the last bin.  [ring] (default 1024) is the per-round ring capacity:
    the last [ring] recorded rounds are retained.  [hist_bins] (default
    64) and [hist_width] (default 1) shape the receive-round histogram:
    bin [i] counts receive rounds in [[i*hist_width, (i+1)*hist_width)],
    with the last bin absorbing overflow.  Protocol drivers pick
    [hist_width] so bins align with their phase length (Decay uses the
    ladder length, making the histogram a per-phase first-receive count).
    @raise Invalid_argument if any size is < 1. *)

val reset : t -> unit
(** Zero every counter, the ring and the histogram; phase returns to 0.
    Capacities are unchanged (no allocation). *)

val set_phase : t -> int -> unit
(** [set_phase t p] makes [p] the phase that subsequent
    {!record_round}/[...] calls attribute to.  Out-of-range ids clamp
    (never raises — this runs mid-round).  Prefer {!Phase.enter}. *)

val record_round :
  t -> round:int -> transmissions:int -> deliveries:int -> collisions:int ->
  unit
(** Record one simulated round under the current phase: bumps run totals,
    the current phase's aggregates, and appends to the ring buffer.
    Called once per round by [Engine.run]/[Engine_sharded.run] when the
    run is given [?metrics]. *)

val observe_receive_round : t -> int -> unit
(** [observe_receive_round t r] adds one observation to the receive-round
    histogram (bin [r / hist_width], clamped).  Negative [r] ("never
    received") is ignored. *)

val record_receive_rounds : t -> int array -> unit
(** Fold a per-node receive-round array (as produced by e.g.
    [Decay.broadcast]) into the histogram; negative entries are skipped. *)

(** {2 Read accessors} *)

val current_phase : t -> int
val n_phases : t -> int
val rounds : t -> int
val transmissions : t -> int
val deliveries : t -> int
val collisions : t -> int

val phase_rounds : t -> int -> int
val phase_transmissions : t -> int -> int
val phase_deliveries : t -> int -> int
val phase_collisions : t -> int -> int
(** Per-phase aggregates.  @raise Invalid_argument on out-of-range id. *)

val phases_used : t -> int
(** 1 + highest phase id with at least one recorded round; 0 if nothing
    was recorded. *)

val ring_capacity : t -> int
val ring_length : t -> int

val ring_get : t -> int -> int * int * int * int * int
(** [ring_get t i] is the [i]-th retained round in chronological order
    (0 = oldest) as [(round, phase, transmissions, deliveries,
    collisions)].  @raise Invalid_argument if [i] is out of range. *)

val hist_bins : t -> int
val hist_width : t -> int
val hist_count : t -> int
val hist_get : t -> int -> int
(** Histogram shape and per-bin counts.
    @raise Invalid_argument on out-of-range bin. *)
