(** Pure JSONL/CSV emitters for {!Metrics}.

    Every function returns strings — nothing here prints (rblint R4);
    bench/ and bin/ own the consoles and files.  Field order and number
    formatting are fixed, so equal registries produce byte-identical
    output — the property the sharded-vs-serial equivalence tests and the
    ES bench checks compare. *)

val round_row :
  round:int -> phase:int -> transmissions:int -> deliveries:int ->
  collisions:int -> string
(** One JSONL object for a single round. *)

val round_jsonl : Metrics.t -> string list
(** One line per retained round, chronological (oldest first).  Runs
    longer than the ring capacity retain only the tail. *)

val phases_jsonl : Metrics.t -> string list
(** One line per used phase: rounds, tx, deliveries, collisions. *)

val phases_csv : Metrics.t -> string list
(** Header + one CSV row per used phase. *)

val hist_csv : Metrics.t -> string list
(** Header + one CSV row per receive-round histogram bin, up to the last
    non-empty bin: [bin,round_lo,round_hi,count]. *)

val summary_json : Metrics.t -> string
(** Single-object run summary (totals + used-phase and observation
    counts). *)

val json_int_array : int list -> string
(** ["[1,2,3]"] — compact JSON int array. *)

val phase_deliveries_json : Metrics.t -> string
val phase_tx_json : Metrics.t -> string
val phase_collisions_json : Metrics.t -> string
(** Per-phase aggregates as compact JSON int arrays — the per-phase fields
    bench/main.ml embeds in BENCH_engine.json and tools/benchdiff gates
    on. *)
