(* Deterministic, allocation-free metrics registry.

   Everything is preallocated at [create] time: per-phase counters are flat
   int arrays indexed by phase id, per-round history is a fixed-capacity
   ring buffer, and the receive-round histogram is a flat bin array.  The
   recording ops below are pure int-array mutation — no closures, no
   boxing — so the engine can call them from its [@@zero_alloc_hot] round
   loop without breaking the 0-word quiet-round budget (test/test_alloc.ml).

   Determinism contract: recording happens only from coordinator-serial
   code (the serial engine's round tail, the sharded engine's post-barrier
   merge), with values that are themselves deterministic (the sharded
   engine merges owner-local lane counters in fixed shard order).  Exported
   output is therefore byte-identical for every domain count. *)

type t = {
  n_phases : int;
  hist_width : int;
  mutable phase : int;
  (* Run totals (mirror Engine.stats, but owned by the registry). *)
  mutable rounds : int;
  mutable transmissions : int;
  mutable deliveries : int;
  mutable collisions : int;
  (* Per-phase aggregates, indexed by phase id (last index = overflow bin). *)
  p_rounds : int array;
  p_tx : int array;
  p_del : int array;
  p_col : int array;
  (* Per-round ring buffer: the last [ring_cap] recorded rounds. *)
  ring_cap : int;
  mutable ring_len : int;
  mutable ring_next : int;
  r_round : int array;
  r_phase : int array;
  r_tx : int array;
  r_del : int array;
  r_col : int array;
  (* Receive-round histogram: bin i counts first receives in rounds
     [i*hist_width, (i+1)*hist_width) (last bin = overflow). *)
  hist : int array;
  mutable hist_count : int;
}

let create ?(phases = 64) ?(ring = 1024) ?(hist_bins = 64) ?(hist_width = 1)
    () =
  if phases < 1 then invalid_arg "Metrics.create: phases < 1";
  if ring < 1 then invalid_arg "Metrics.create: ring < 1";
  if hist_bins < 1 then invalid_arg "Metrics.create: hist_bins < 1";
  if hist_width < 1 then invalid_arg "Metrics.create: hist_width < 1";
  {
    n_phases = phases;
    hist_width;
    phase = 0;
    rounds = 0;
    transmissions = 0;
    deliveries = 0;
    collisions = 0;
    p_rounds = Array.make phases 0;
    p_tx = Array.make phases 0;
    p_del = Array.make phases 0;
    p_col = Array.make phases 0;
    ring_cap = ring;
    ring_len = 0;
    ring_next = 0;
    r_round = Array.make ring 0;
    r_phase = Array.make ring 0;
    r_tx = Array.make ring 0;
    r_del = Array.make ring 0;
    r_col = Array.make ring 0;
    hist = Array.make hist_bins 0;
    hist_count = 0;
  }

let reset t =
  t.phase <- 0;
  t.rounds <- 0;
  t.transmissions <- 0;
  t.deliveries <- 0;
  t.collisions <- 0;
  Array.fill t.p_rounds 0 t.n_phases 0;
  Array.fill t.p_tx 0 t.n_phases 0;
  Array.fill t.p_del 0 t.n_phases 0;
  Array.fill t.p_col 0 t.n_phases 0;
  t.ring_len <- 0;
  t.ring_next <- 0;
  Array.fill t.hist 0 (Array.length t.hist) 0;
  t.hist_count <- 0

(* Phase ids out of range are clamped into the first/last bin rather than
   raising: the recording path must never throw mid-round. *)
let set_phase t p =
  t.phase <-
    (if p < 0 then 0 else if p >= t.n_phases then t.n_phases - 1 else p)
[@@zero_alloc_hot]

let record_round t ~round ~transmissions ~deliveries ~collisions =
  let p = t.phase in
  t.rounds <- t.rounds + 1;
  t.transmissions <- t.transmissions + transmissions;
  t.deliveries <- t.deliveries + deliveries;
  t.collisions <- t.collisions + collisions;
  t.p_rounds.(p) <- t.p_rounds.(p) + 1;
  t.p_tx.(p) <- t.p_tx.(p) + transmissions;
  t.p_del.(p) <- t.p_del.(p) + deliveries;
  t.p_col.(p) <- t.p_col.(p) + collisions;
  let i = t.ring_next in
  t.r_round.(i) <- round;
  t.r_phase.(i) <- p;
  t.r_tx.(i) <- transmissions;
  t.r_del.(i) <- deliveries;
  t.r_col.(i) <- collisions;
  let j = i + 1 in
  t.ring_next <- (if j = t.ring_cap then 0 else j);
  if t.ring_len < t.ring_cap then t.ring_len <- t.ring_len + 1
[@@zero_alloc_hot]

let observe_receive_round t r =
  if r >= 0 then begin
    let b = r / t.hist_width in
    let last = Array.length t.hist - 1 in
    let b = if b > last then last else b in
    t.hist.(b) <- t.hist.(b) + 1;
    t.hist_count <- t.hist_count + 1
  end
[@@zero_alloc_hot]

let record_receive_rounds t rr =
  for i = 0 to Array.length rr - 1 do
    observe_receive_round t rr.(i)
  done

(* Read accessors. *)

let current_phase t = t.phase
let n_phases t = t.n_phases
let rounds t = t.rounds
let transmissions t = t.transmissions
let deliveries t = t.deliveries
let collisions t = t.collisions

let check_phase t p ctx =
  if p < 0 || p >= t.n_phases then invalid_arg ctx

let phase_rounds t p =
  check_phase t p "Metrics.phase_rounds";
  t.p_rounds.(p)

let phase_transmissions t p =
  check_phase t p "Metrics.phase_transmissions";
  t.p_tx.(p)

let phase_deliveries t p =
  check_phase t p "Metrics.phase_deliveries";
  t.p_del.(p)

let phase_collisions t p =
  check_phase t p "Metrics.phase_collisions";
  t.p_col.(p)

(* Number of phase bins actually used: 1 + highest phase id with at least
   one recorded round (0 if nothing was recorded). *)
let phases_used t =
  let hi = ref 0 in
  for p = 0 to t.n_phases - 1 do
    if t.p_rounds.(p) > 0 then hi := p + 1
  done;
  !hi

let ring_capacity t = t.ring_cap
let ring_length t = t.ring_len

(* i-th retained round in chronological order, 0 = oldest. *)
let ring_get t i =
  if i < 0 || i >= t.ring_len then invalid_arg "Metrics.ring_get";
  let base = (t.ring_next - t.ring_len + t.ring_cap) mod t.ring_cap in
  let j = (base + i) mod t.ring_cap in
  (t.r_round.(j), t.r_phase.(j), t.r_tx.(j), t.r_del.(j), t.r_col.(j))

let hist_bins t = Array.length t.hist
let hist_width t = t.hist_width
let hist_count t = t.hist_count

let hist_get t b =
  if b < 0 || b >= Array.length t.hist then invalid_arg "Metrics.hist_get";
  t.hist.(b)
