(** Phase annotation for {!Metrics}.

    Protocols annotate phase boundaries (Decay phase index, GST epoch,
    recruiting iteration, bipartite epoch) so counters aggregate per paper
    phase.  Annotate only from coordinator-serial code — [after_round]
    hooks or between runs, never from [decide]/[deliver] (those run inside
    shard lanes under [Engine_sharded] and would break the byte-identity
    contract). *)

val enter : Metrics.t -> int -> unit
(** [enter m p] makes [p] the current phase.  Out-of-range ids clamp. *)

val current : Metrics.t -> int
(** The phase subsequent rounds will be attributed to. *)

val enter_of_round : Metrics.t -> len:int -> round:int -> unit
(** [enter_of_round m ~len ~round] enters phase [round / len] — the
    annotation pattern for ladder protocols whose phase is a pure function
    of the round index.  @raise Invalid_argument if [len < 1]. *)
