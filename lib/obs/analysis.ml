(* Post-run analyses that turn the paper's per-phase lemmas into measured
   numbers.  These run once after a broadcast (allocation is fine here) on
   plain int arrays — CSR [offsets]/[targets] as exposed by Rn_graph.Graph
   and the per-node receive-round array a protocol driver returns — so the
   library stays dependency-free. *)

type phase_stat = {
  phase : int;
  start_round : int;
  eligible : int;
  delivered : int;
  informed_end : int;
}

(* Lemma 2.2 (Decay): in each phase, a node that is uninformed at the
   phase start but has an informed neighbor receives the message during
   the phase with probability >= 1/8.  We measure exactly that ratio:

     eligible(p)  = nodes other than [source], uninformed at the phase
                    start, with at least one neighbor informed by then;
     delivered(p) = eligible nodes whose first receive falls inside the
                    phase.

   "Informed by round s" means [source], or a first receive in a round
   < s.  [received_round.(v)] is v's first receive round (< 0 = never);
   the source conventionally holds the message from round 0. *)
let decay_phases ~offsets ~targets ~received_round ~source ~ladder =
  if ladder < 1 then invalid_arg "Analysis.decay_phases: ladder < 1";
  let n = Array.length received_round in
  if source < 0 || source >= n then
    invalid_arg "Analysis.decay_phases: bad source";
  if Array.length offsets <> n + 1 then
    invalid_arg "Analysis.decay_phases: offsets/received_round mismatch";
  let informed_by v s =
    v = source || (received_round.(v) >= 0 && received_round.(v) < s)
  in
  let max_rr = ref 0 in
  for v = 0 to n - 1 do
    if received_round.(v) > !max_rr then max_rr := received_round.(v)
  done;
  let n_phases = (!max_rr / ladder) + 1 in
  List.init n_phases (fun p ->
      let s = p * ladder in
      let e = s + ladder in
      let eligible = ref 0 and delivered = ref 0 and informed_end = ref 0 in
      for v = 0 to n - 1 do
        if informed_by v e then incr informed_end;
        if (not (informed_by v s)) && v <> source then begin
          let has_informed_nbr = ref false in
          let j = ref offsets.(v) in
          let stop = offsets.(v + 1) in
          while (not !has_informed_nbr) && !j < stop do
            if informed_by targets.(!j) s then has_informed_nbr := true;
            incr j
          done;
          if !has_informed_nbr then begin
            incr eligible;
            let rr = received_round.(v) in
            if rr >= s && rr < e then incr delivered
          end
        end
      done;
      {
        phase = p;
        start_round = s;
        eligible = !eligible;
        delivered = !delivered;
        informed_end = !informed_end;
      })

let delivery_ratio st =
  if st.eligible = 0 then nan
  else float_of_int st.delivered /. float_of_int st.eligible

(* Minimum per-phase delivery ratio over phases with at least [min_eligible]
   eligible nodes (tiny phases are noise); nan when no phase qualifies. *)
let min_delivery_ratio ?(min_eligible = 1) stats =
  List.fold_left
    (fun acc st ->
      if st.eligible >= min_eligible then
        let r = delivery_ratio st in
        if Float.is_nan acc || Float.compare r acc < 0 then r else acc
      else acc)
    nan stats

(* Lemma 2.4 (bipartite epochs): the count of unassigned left nodes shrinks
   by a constant factor per epoch (w.h.p.).  Given the per-epoch survivor
   counts a driver records (e.g. Bipartite_assignment epoch history), return
   the per-epoch shrink factors prev/next (infinite when next = 0, skipped
   when prev = 0). *)
let shrink_factors counts =
  let rec go = function
    | a :: (b :: _ as rest) ->
        if a <= 0 then go rest
        else
          (if b = 0 then infinity
           else float_of_int a /. float_of_int b)
          :: go rest
    | _ -> []
  in
  go counts
