(** Post-run analyses: the paper's per-phase lemmas as measured numbers.

    These run once after a broadcast on plain int arrays (CSR
    [offsets]/[targets] plus a per-node receive-round array), keeping the
    library dependency-free.  Allocation is fine here — nothing below is
    on the round loop. *)

type phase_stat = {
  phase : int;  (** phase index (rounds [start_round ..
                    start_round+ladder-1]) *)
  start_round : int;
  eligible : int;
      (** nodes uninformed at the phase start with an informed neighbor *)
  delivered : int;
      (** eligible nodes whose first receive falls inside the phase *)
  informed_end : int;  (** nodes informed by the end of the phase *)
}

val decay_phases :
  offsets:int array ->
  targets:int array ->
  received_round:int array ->
  source:int ->
  ladder:int ->
  phase_stat list
(** Per-phase Lemma 2.2 measurement for a Decay run: for each phase,
    how many nodes were eligible (uninformed at the phase start, with an
    informed neighbor) and how many of those were delivered during the
    phase.  L2.2 promises E[delivered/eligible] >= 1/8.
    [received_round.(v)] is v's first receive round, < 0 for never; the
    source holds the message from round 0.
    @raise Invalid_argument on bad [ladder]/[source] or CSR shape
    mismatch. *)

val delivery_ratio : phase_stat -> float
(** [delivered / eligible]; [nan] when no node was eligible. *)

val min_delivery_ratio : ?min_eligible:int -> phase_stat list -> float
(** Minimum {!delivery_ratio} over phases with at least [min_eligible]
    (default 1) eligible nodes; [nan] when no phase qualifies. *)

val shrink_factors : int list -> float list
(** Lemma 2.4 helper: per-epoch shrink factors [prev/next] of a survivor
    count sequence (e.g. bipartite epoch history).  [infinity] when a
    step reaches 0; steps starting at 0 are skipped. *)
