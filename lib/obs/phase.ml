(* Phase annotation: protocol drivers mark phase boundaries so the metrics
   registry aggregates per paper phase (Decay phase index, GST epoch,
   recruiting iteration, bipartite epoch).

   Annotation must happen from coordinator-serial code — protocol [decide]
   and [deliver] callbacks run inside shard lanes under Engine_sharded, so
   phase changes belong in [after_round] hooks (serial in both engines) or
   between runs.  All annotators in lib/core follow this rule; it is what
   keeps exported output byte-identical across domain counts. *)

let enter m p = Metrics.set_phase m p [@@zero_alloc_hot]

let current = Metrics.current_phase

(* Convenience for ladder-style protocols whose phase is a pure function of
   the round index: enter the phase of [round], given a fixed [len]-round
   phase length. *)
let enter_of_round m ~len ~round =
  if len < 1 then invalid_arg "Phase.enter_of_round: len < 1";
  Metrics.set_phase m (round / len)
[@@zero_alloc_hot]
