(* Pure emitters: every function returns strings; callers that own a
   console or a file (bench/, bin/) do the writing.  Field order and
   formatting are fixed so output is byte-comparable across runs and
   across engines. *)

let round_row ~round ~phase ~transmissions ~deliveries ~collisions =
  Printf.sprintf
    {|{"round":%d,"phase":%d,"tx":%d,"deliveries":%d,"collisions":%d}|} round
    phase transmissions deliveries collisions

(* One JSONL line per retained round, chronological (oldest first).  If the
   run outlived the ring capacity only the last [ring_capacity] rounds are
   present — callers size the ring at create time to retain a full run. *)
let round_jsonl m =
  List.init (Metrics.ring_length m) (fun i ->
      let round, phase, tx, del, col = Metrics.ring_get m i in
      round_row ~round ~phase ~transmissions:tx ~deliveries:del
        ~collisions:col)

let phase_row m p =
  Printf.sprintf
    {|{"phase":%d,"rounds":%d,"tx":%d,"deliveries":%d,"collisions":%d}|} p
    (Metrics.phase_rounds m p)
    (Metrics.phase_transmissions m p)
    (Metrics.phase_deliveries m p)
    (Metrics.phase_collisions m p)

let phases_jsonl m = List.init (Metrics.phases_used m) (phase_row m)

let phases_csv m =
  "phase,rounds,tx,deliveries,collisions"
  :: List.init (Metrics.phases_used m) (fun p ->
         Printf.sprintf "%d,%d,%d,%d,%d" p
           (Metrics.phase_rounds m p)
           (Metrics.phase_transmissions m p)
           (Metrics.phase_deliveries m p)
           (Metrics.phase_collisions m p))

(* Histogram rows for bins up to the last non-empty one. *)
let hist_used m =
  let last = ref 0 in
  for b = 0 to Metrics.hist_bins m - 1 do
    if Metrics.hist_get m b > 0 then last := b + 1
  done;
  !last

let hist_csv m =
  let w = Metrics.hist_width m in
  "bin,round_lo,round_hi,count"
  :: List.init (hist_used m) (fun b ->
         Printf.sprintf "%d,%d,%d,%d" b (b * w)
           (((b + 1) * w) - 1)
           (Metrics.hist_get m b))

let summary_json m =
  Printf.sprintf
    {|{"rounds":%d,"tx":%d,"deliveries":%d,"collisions":%d,"phases":%d,"receives":%d}|}
    (Metrics.rounds m)
    (Metrics.transmissions m)
    (Metrics.deliveries m)
    (Metrics.collisions m)
    (Metrics.phases_used m)
    (Metrics.hist_count m)

(* Compact JSON int-array of a per-phase aggregate, e.g. "[12,8,3]" — the
   shape bench/main.ml embeds as per-phase fields in BENCH_engine.json and
   benchdiff compares exactly.  One shared emitter (Rn_util.Jsons) serves
   every JSON writer in the tree. *)
let json_int_array = Rn_util.Jsons.int_array

let phase_deliveries_json m =
  json_int_array (List.init (Metrics.phases_used m) (Metrics.phase_deliveries m))

let phase_tx_json m =
  json_int_array
    (List.init (Metrics.phases_used m) (Metrics.phase_transmissions m))

let phase_collisions_json m =
  json_int_array (List.init (Metrics.phases_used m) (Metrics.phase_collisions m))
