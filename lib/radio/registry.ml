type caps = {
  dense : bool;
  sparse : bool;
  sharded : bool;
  offers_hint : bool;
}

type result = {
  rounds : int;
  delivered : bool;
  details : (string * string) list;
}

type run =
  ?k:int ->
  ?engine:Engine.mode ->
  ?metrics:Rn_obs.Metrics.t ->
  seed:int ->
  graph:Rn_graph.Graph.t ->
  source:int ->
  unit ->
  result

type entry = {
  name : string;
  summary : string;
  multi : bool;
  traceable : bool;
  silence_pure : bool;
  caps : caps;
  run : run;
}

(* Reverse registration order; [all] re-reverses.  CAS append keeps
   registration thread-safe without a lock (registration happens once per
   process but tests may race [ensure_registered] from domains). *)
let entries : entry list Atomic.t = Atomic.make []

let rec register e =
  let cur = Atomic.get entries in
  if List.exists (fun e' -> String.equal e'.name e.name) cur then
    invalid_arg ("Registry.register: duplicate protocol name " ^ e.name);
  if not (Atomic.compare_and_set entries cur (e :: cur)) then register e

let all () = List.rev (Atomic.get entries)
let find name = List.find_opt (fun e -> String.equal e.name name) (Atomic.get entries)
let names () = List.map (fun e -> e.name) (all ())
