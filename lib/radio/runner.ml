let default_domains () = max 1 (Domain.recommended_domain_count ())

module Pool = struct
  (* A process-wide pool of reusable worker domains shared by every
     parallel entry point (trial-level [map], round-level
     [Engine_sharded.run]).  Two jobs motivate it over bare [Domain.spawn]:

     - spawn amortization: a sharded engine crosses a barrier every round,
       so respawning domains per run (let alone per round) would dwarf the
       work; borrowed workers park on a condition variable between jobs;
     - oversubscription control: [borrow] spawns new workers only when the
       pool is completely idle.  A nested parallel region (a sharded run
       inside a [map] trial, or a [map] inside a sharded protocol callback)
       therefore gets zero workers and falls back to running in its calling
       domain — the domain count stays bounded by one level of parallelism
       instead of multiplying across levels.  Determinism is unaffected:
       both [map]'s sharding and the sharded engine's results depend only
       on their requested width, never on how many workers actually
       execute the lanes.

     Memory model: [slot.job] is only ever read or written under
     [slot.lock], and the registry only under [registry_lock], so every
     cross-domain access is ordered by a mutex happens-before edge. *)

  type job = Idle | Run of (unit -> unit) | Done of exn option | Quit

  type slot = { lock : Mutex.t; cond : Condition.t; mutable job : job }

  type worker = { slot : slot; domain : unit Domain.t }

  let worker_loop slot () =
    let rec serve () =
      Mutex.lock slot.lock;
      while match slot.job with Run _ | Quit -> false | _ -> true do
        Condition.wait slot.cond slot.lock
      done;
      match slot.job with
      | Quit -> Mutex.unlock slot.lock
      | Run f ->
          Mutex.unlock slot.lock;
          let outcome = (try f (); None with e -> Some e) in
          Mutex.lock slot.lock;
          slot.job <- Done outcome;
          Condition.broadcast slot.cond;
          Mutex.unlock slot.lock;
          serve ()
      | Idle | Done _ -> assert false
    in
    serve ()

  let registry_lock = Mutex.create ()

  (* rblint:allow R6 registry is only accessed under registry_lock *)
  let idle_workers : worker list ref = ref []

  (* rblint:allow R6 busy count is only accessed under registry_lock *)
  let busy_count = ref 0

  (* Total domains ever spawned and still alive (busy + idle); under
     registry_lock. *)
  (* rblint:allow R6 pool size is only accessed under registry_lock *)
  let pool_size = ref 0

  (* Hardware cap: the calling domain plus a full pool exactly saturate
     the cores.  CPU-bound lanes gain nothing from more executors than
     cores and lose badly — every barrier crossing becomes a scheduler
     round-trip (measured ~10x on a 1-core host) — and by the determinism
     contract of [map] and [Engine_sharded.run] the executor count never
     affects results, so capping is free.  Tests raise it to force true
     multi-domain execution on small machines. *)
  let size_cap : int Atomic.t = Atomic.make (max 0 (default_domains () - 1))

  (* rblint:allow R6 at_exit hook registration flag, flipped once under registry_lock *)
  let shutdown_registered = ref false

  let shutdown () =
    Mutex.lock registry_lock;
    let workers = !idle_workers in
    idle_workers := [];
    pool_size := !pool_size - List.length workers;
    Mutex.unlock registry_lock;
    List.iter
      (fun w ->
        Mutex.lock w.slot.lock;
        w.slot.job <- Quit;
        Condition.broadcast w.slot.cond;
        Mutex.unlock w.slot.lock;
        Domain.join w.domain)
      workers

  let spawn_worker () =
    let slot = { lock = Mutex.create (); cond = Condition.create (); job = Idle } in
    (* rblint:allow R7 slot handshake: [job] is only touched under [slot.lock] *)
    { slot; domain = Domain.spawn (worker_loop slot) }

  (* [borrow ~want] hands back between 0 and [want] workers.  Idle workers
     are always reused; new domains are spawned only when nothing is busy,
     so only the outermost parallel region ever grows the pool. *)
  let borrow ~want =
    if want <= 0 then [||]
    else begin
      Mutex.lock registry_lock;
      let rec take k acc = function
        | w :: rest when k > 0 -> take (k - 1) (w :: acc) rest
        | rest ->
            idle_workers := rest;
            acc
      in
      let taken = take want [] !idle_workers in
      let fresh =
        if !busy_count = 0 then
          min
            (want - List.length taken)
            (max 0 (Atomic.get size_cap - !pool_size))
        else 0
      in
      pool_size := !pool_size + fresh;
      busy_count := !busy_count + List.length taken + fresh;
      if not !shutdown_registered then begin
        shutdown_registered := true;
        (* Parked domains must be joined before runtime teardown. *)
        at_exit shutdown
      end;
      Mutex.unlock registry_lock;
      let spawned = List.init fresh (fun _ -> spawn_worker ()) in
      Array.of_list (taken @ spawned)
    end

  let release ws =
    let k = Array.length ws in
    if k > 0 then begin
      Mutex.lock registry_lock;
      Array.iter (fun w -> idle_workers := w :: !idle_workers) ws;
      busy_count := !busy_count - k;
      Mutex.unlock registry_lock
    end

  let run_on w f =
    Mutex.lock w.slot.lock;
    (match w.slot.job with Idle -> () | _ -> assert false);
    w.slot.job <- Run f;
    Condition.broadcast w.slot.cond;
    Mutex.unlock w.slot.lock

  (* Wait for the worker's current job; returns the exception it raised,
     if any, leaving the worker idle and reusable either way. *)
  let await w =
    Mutex.lock w.slot.lock;
    while match w.slot.job with Done _ -> false | _ -> true do
      Condition.wait w.slot.cond w.slot.lock
    done;
    let outcome = match w.slot.job with Done o -> o | _ -> assert false in
    w.slot.job <- Idle;
    Mutex.unlock w.slot.lock;
    outcome
end

let map_array ?domains f items =
  let k = Array.length items in
  let d =
    match domains with
    | Some d -> max 1 (min d k)
    | None -> max 1 (min (default_domains ()) k)
  in
  if k = 0 then [||]
  else if d <= 1 then Array.map f items
  else begin
    (* Deterministic static sharding: lane [i] takes items i, i+d, i+2d, …
       Each lane evaluates its first item, sizes one result array off it,
       and then fills the remaining slots in place — no per-element option
       boxing, no list building.  Each lane array is written by exactly
       one executor and [lane_results.(i)] exactly once, so the plain
       arrays are race-free; the pool's mutex handshake publishes the
       writes.  The merge below restores input order, so the output is
       bit-identical to the serial map — and independent of how many pool
       workers actually ran the lanes. *)
    let lane_results = Array.make d [||] in
    let lane i () =
      let first = f items.(i) in
      let len = (k - i + d - 1) / d in
      let out = Array.make len first in
      let fill () =
        let j = ref (i + d) in
        let slot = ref 1 in
        while !j < k do
          out.(!slot) <- f items.(!j);
          incr slot;
          j := !j + d
        done
      [@@zero_alloc_hot]
      in
      fill ();
      lane_results.(i) <- out
    in
    let workers = Pool.borrow ~want:(d - 1) in
    let execs = Array.length workers + 1 in
    let run_executor e () =
      let l = ref e in
      while !l < d do
        lane !l ();
        l := !l + execs
      done
    in
    Array.iteri (fun t w -> Pool.run_on w (run_executor (t + 1))) workers;
    let caller_exn = (try run_executor 0 (); None with e -> Some e) in
    let worker_exn = ref None in
    Array.iter
      (fun w ->
        match Pool.await w with
        | Some e when Option.is_none !worker_exn -> worker_exn := Some e
        | _ -> ())
      workers;
    Pool.release workers;
    (match (caller_exn, !worker_exn) with
    | Some e, _ | None, Some e -> raise e
    | None, None -> ());
    (* Every lane is non-empty (d <= k), so lane 0 seeds the merge. *)
    let out = Array.make k lane_results.(0).(0) in
    for l = 0 to d - 1 do
      let lr = lane_results.(l) in
      for s = 0 to Array.length lr - 1 do
        out.(l + (s * d)) <- lr.(s)
      done
    done;
    out
  end

let map ?domains f items =
  Array.to_list (map_array ?domains f (Array.of_list items))

let map_seeds ?domains ~seeds f =
  map ?domains (fun seed -> f ~seed) seeds
