let default_domains () = max 1 (Domain.recommended_domain_count ())

let map ?domains f items =
  let items = Array.of_list items in
  let k = Array.length items in
  let d =
    match domains with
    | Some d -> max 1 (min d k)
    | None -> max 1 (min (default_domains ()) k)
  in
  if d <= 1 then Array.to_list (Array.map f items)
  else begin
    let results = Array.make k None in
    (* Deterministic static sharding: domain [i] takes items i, i+d, i+2d, …
       Each index is written by exactly one domain, so the plain array is
       race-free; [Domain.join] publishes the writes.  Results come back in
       input order, so the output is bit-identical to the serial map. *)
    let worker i () =
      let j = ref i in
      while !j < k do
        (* rblint:allow R7 exclusive ownership: disjoint index shards, Domain.join publishes *)
        results.(!j) <- Some (f items.(!j));
        j := !j + d
      done
    [@@zero_alloc_hot]
    in
    let spawned = List.init d (fun i -> Domain.spawn (worker i)) in
    List.iter Domain.join spawned;
    Array.to_list
      (Array.map (function Some r -> r | None -> assert false) results)
  end

let map_seeds ?domains ~seeds f =
  map ?domains (fun seed -> f ~seed) seeds
