(** First-class protocol registry.

    Every broadcast/construction pipeline in [lib/core] registers one
    {!entry} here (see [Rn_broadcast.Protocols.ensure_registered]), making
    the protocol set a run-time value: [bin/rbcast.ml] derives its
    [--proto] enumeration from {!names}, [bench/main.ml] sweeps {!all}
    instead of hand-wired wrapper tables, and [test/test_contracts.ml]
    exercises each registered [run] under spurious-[Silence] injection.

    The registry is also the anchor of rblint's protocol-contract rules
    (DESIGN.md §13): R11–R13 statically verify every protocol's
    [decide]/[deliver]/[next_busy_round] closures, and R14 flags any
    engine-driving pipeline that is not reachable from a
    [Registry.register] call — so a protocol cannot opt out of the
    contract checks by simply not registering. *)

type caps = {
  dense : bool;  (** honours [~engine:Dense] ({!Engine.run}) *)
  sparse : bool;  (** honours [~engine:Sparse] ({!Engine_sparse.run}) *)
  sharded : bool;  (** can run on {!Engine_sharded} (multi-domain) *)
  offers_hint : bool;  (** supplies a [next_busy_round] skip hint *)
}
(** Which engine fast paths the protocol's wrapper supports.  Capabilities
    are declarative: a [run] whose wrapper has no [?engine] parameter
    ignores the mode argument, and callers consult [caps] to learn which
    modes are meaningful. *)

type result = {
  rounds : int;  (** simulated rounds (total across phases) *)
  delivered : bool;  (** the pipeline's own success criterion *)
  details : (string * string) list;
      (** protocol-specific key/value facts (phase round counts, ring
          counts, payload checks …) in a stable order — deterministic for
          a given (graph, seed), so tests may compare them byte-for-byte *)
}
(** Engine-independent summary of one pipeline run.  Everything in it is a
    pure function of the inputs; wrappers derive all randomness from
    [seed]. *)

type run =
  ?k:int ->
  ?engine:Engine.mode ->
  ?metrics:Rn_obs.Metrics.t ->
  seed:int ->
  graph:Rn_graph.Graph.t ->
  source:int ->
  unit ->
  result
(** Uniform pipeline entry point.  [k] is the message count for multi-
    message protocols (ignored otherwise; defaults to 8), [engine] selects
    the round path where [caps] permit, and [metrics] is forwarded to
    wrappers that support round tracing.  The wrapper creates its own
    {!Rn_util.Rng} from [seed]. *)

type entry = {
  name : string;  (** unique CLI-friendly identifier, e.g. ["decay"] *)
  summary : string;  (** one-line description for [--help] listings *)
  multi : bool;  (** consumes [?k] (k-message pipeline) *)
  traceable : bool;  (** forwards [?metrics] to the engine *)
  silence_pure : bool;
      (** no phase of the pipeline observes [Silence] as evidence: extra
          [Silence] deliveries cannot change its result.  [false] mirrors a
          reasoned [rblint:allow R11] in the pipeline's source (e.g. the
          GST self-test, where silence {e means} unsafe); the contracts
          suite only asserts injection byte-identity when [true]. *)
  caps : caps;
  run : run;
}

val register : entry -> unit
(** Append to the registry.  Thread-safe (lock-free CAS).
    @raise Invalid_argument on a duplicate [name]. *)

val all : unit -> entry list
(** Entries in registration order. *)

val find : string -> entry option

val names : unit -> string list
(** [List.map (fun e -> e.name) (all ())]. *)
