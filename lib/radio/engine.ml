open Rn_graph

type detection = Collision_detection | No_collision_detection

type 'msg action = Sleep | Listen | Transmit of 'msg

type 'msg reception = Silence | Collision | Received of 'msg

type 'msg protocol = {
  decide : round:int -> node:int -> 'msg action;
  deliver : round:int -> node:int -> 'msg reception -> unit;
}

type stats = {
  mutable rounds : int;
  mutable transmissions : int;
  mutable deliveries : int;
  mutable collisions : int;
  mutable busy_rounds : int;
}

let fresh_stats () =
  { rounds = 0; transmissions = 0; deliveries = 0; collisions = 0; busy_rounds = 0 }

type outcome = Completed of int | Out_of_budget of int

let rounds_of_outcome = function Completed r | Out_of_budget r -> r

let completed_exn = function
  | Completed r -> r
  | Out_of_budget r ->
      failwith (Printf.sprintf "Engine: run exhausted its %d-round budget" r)

type 'msg trace_event =
  | Ev_transmit of { node : int; msg : 'msg }
  | Ev_receive of { node : int; reception : 'msg reception }

(* Rounds simulated process-wide, across all runs and all domains; the bench
   harness reads the delta around an experiment to report rounds/sec. *)
let simulated_rounds = Atomic.make 0
let total_simulated_rounds () = Atomic.get simulated_rounds
let add_simulated_rounds k = Atomic.fetch_and_add simulated_rounds k |> ignore

(* Rounds fast-forwarded by {!Engine_sparse}'s silent-round skip, kept apart
   from [simulated_rounds] so rounds/sec never counts rounds the engine did
   not actually execute.  [stats.rounds] still counts skipped rounds — the
   protocol-visible clock is identical either way. *)
let skipped_rounds = Atomic.make 0
let total_skipped_rounds () = Atomic.get skipped_rounds
let add_skipped_rounds k = Atomic.fetch_and_add skipped_rounds k |> ignore

type mode = Dense | Sparse

(* Debug probe for the contracts suite: when set, every listener receives
   one spurious [Silence] delivery before its real reception.  A pipeline
   whose [deliver] honours the R11 silence-purity contract produces
   byte-identical results either way; test/test_contracts.ml asserts
   exactly that.  Read once per [run], so flipping it mid-run is
   deliberately without effect. *)
let inject_silence = Atomic.make false

(* The round loop is allocation-free outside the tracing path: node sets are
   int-array stacks reused every round, stats are mutated directly, and a
   transmitter's packet is shared by reference — the [Transmit] block the
   protocol returned is stored as-is in [out_act], never re-wrapped, so the
   only per-round allocations are the [Received] wrappers handed to
   listeners (test/test_alloc.ml holds the loop to that budget).

   Invariant between rounds: [listening] is all-false, [tx_count] all-zero,
   [tx_act]/[out_act] all-[Sleep].  Each round re-establishes it by undoing
   only the entries it touched, so a quiet round on a huge graph costs only
   the decide scan (or only the active set, under [decide_active]).

   Ordering contract (kept bit-compatible with the original list-based
   engine, which consed nodes onto lists during an ascending scan and then
   iterated the lists head-first): transmitters spray and listeners are
   delivered in *descending* decide order, so the stacks are walked
   top-down. *)
let run ?stats ?metrics ?on_round ?after_round ?decide_active
    ?(validate = false) ~graph ~detection ~protocol ~stop ~max_rounds () =
  let n = Graph.n graph in
  let off = Graph.offsets graph and tgt = Graph.targets graph in
  (* CSR guard, once per run: every neighbour index the round loop reads
     lies in [off.(v), off.(v+1)) ⊆ [0, off.(n)), so checking the final
     offset against [tgt] bounds the unchecked reads below. *)
  if off.(n) > Array.length tgt then
    invalid_arg "Engine.run: offsets exceed target array";
  let s = match stats with Some s -> s | None -> fresh_stats () in
  let tx_count = Array.make (max n 1) 0 in
  let tx_act = Array.make (max n 1) Sleep in
  let out_act = Array.make (max n 1) Sleep in
  let listening = Array.make (max n 1) false in
  let transmitters = Array.make (max n 1) 0 in
  let listeners = Array.make (max n 1) 0 in
  let touched = Array.make (max n 1) 0 in
  let active =
    match decide_active with None -> [||] | Some _ -> Array.make (max n 1) 0
  in
  let n_tx = ref 0 and n_ls = ref 0 and n_tc = ref 0 in
  (* Round-stamped visit marks for the [validate] distinctness check;
     allocated only when the check is on. *)
  let seen = if validate then Array.make (max n 1) (-1) else [||] in
  let inject = Atomic.get inject_silence in
  let tracing = Option.is_some on_round in
  let events = ref [] in
  let decide_one round v =
    match protocol.decide ~round ~node:v with
    | Sleep -> ()
    | Listen ->
        listening.(v) <- true;
        listeners.(!n_ls) <- v;
        incr n_ls
    | Transmit msg as act ->
        out_act.(v) <- act;
        transmitters.(!n_tx) <- v;
        incr n_tx;
        if tracing then events := Ev_transmit { node = v; msg } :: !events
  in
  let rec loop round =
    if stop ~round then begin
      Atomic.fetch_and_add simulated_rounds round |> ignore;
      Completed round
    end
    else if round >= max_rounds then begin
      Atomic.fetch_and_add simulated_rounds round |> ignore;
      Out_of_budget round
    end
    else begin
      (match decide_active with
      | None -> for v = 0 to n - 1 do decide_one round v done
      | Some da ->
          let k = da ~round active in
          if k < 0 || k > n then
            invalid_arg "Engine.run: decide_active returned a bad count";
          for i = 0 to k - 1 do
            let v = active.(i) in
            if v < 0 || v >= n then
              invalid_arg "Engine.run: decide_active wrote a bad node id";
            if validate then begin
              if seen.(v) = round then
                invalid_arg
                  (Printf.sprintf
                     "Engine.run: decide_active repeated node id %d in round \
                      %d (the transmit-buffer contract requires distinct ids)"
                     v round);
              seen.(v) <- round
            end;
            decide_one round v
          done);
      let round_tx = !n_tx in
      let tx_happened = round_tx > 0 in
      let del0 = s.deliveries and col0 = s.collisions in
      for i = !n_tx - 1 downto 0 do
        let t = transmitters.(i) in
        s.transmissions <- s.transmissions + 1;
        let act = out_act.(t) in
        for j = off.(t) to off.(t + 1) - 1 do
          let v = Array.unsafe_get tgt j in
          if listening.(v) then begin
            if tx_count.(v) = 0 then begin
              touched.(!n_tc) <- v;
              incr n_tc;
              tx_act.(v) <- act
            end;
            tx_count.(v) <- tx_count.(v) + 1
          end
        done
      done;
      for i = !n_ls - 1 downto 0 do
        let v = listeners.(i) in
        if inject then protocol.deliver ~round ~node:v Silence;
        let reception =
          match tx_count.(v) with
          | 0 -> Silence
          | 1 -> (
              s.deliveries <- s.deliveries + 1;
              match tx_act.(v) with Transmit m -> Received m | _ -> assert false)
          | _ -> (
              s.collisions <- s.collisions + 1;
              match detection with
              | Collision_detection -> Collision
              | No_collision_detection -> Silence)
        in
        if tracing then events := Ev_receive { node = v; reception } :: !events;
        protocol.deliver ~round ~node:v reception
      done;
      for i = 0 to !n_tc - 1 do
        let v = touched.(i) in
        tx_count.(v) <- 0;
        tx_act.(v) <- Sleep
      done;
      for i = 0 to !n_tx - 1 do
        out_act.(transmitters.(i)) <- Sleep
      done;
      for i = 0 to !n_ls - 1 do
        listening.(listeners.(i)) <- false
      done;
      n_tc := 0;
      n_tx := 0;
      n_ls := 0;
      s.rounds <- s.rounds + 1;
      if tx_happened then s.busy_rounds <- s.busy_rounds + 1;
      (match metrics with
      | Some m ->
          Rn_obs.Metrics.record_round m ~round ~transmissions:round_tx
            ~deliveries:(s.deliveries - del0)
            ~collisions:(s.collisions - col0)
      | None -> ());
      (match on_round with
      | Some f ->
          (* rblint:allow R5 tracing path: reached only when [on_round] is set, never in steady-state benchmarking *)
          f ~round (List.rev !events);
          events := []
      | None -> ());
      (match after_round with Some f -> f ~round | None -> ());
      loop (round + 1)
    end
  in
  loop 0
(* [@@zero_alloc_hot] makes rblint (R5, dune build @lint) reject any list
   traversal or closure-allocating array iteration introduced into this
   round loop; test/test_alloc.ml checks the complementary dynamic claim
   with Gc.minor_words. *)
[@@zero_alloc_hot]
