open Rn_graph
open Engine

(* Event-driven round path.  Two ideas on top of Engine.run:

   1. No listener bookkeeping.  Engine.run pushes every listener onto a
      stack, walks the whole stack to deliver (mostly Silence), and walks
      it again to reset the [listening] flags.  Here a listener is a round
      stamp ([listen_round.(v) = round]); stamps never need resetting
      (rounds strictly increase), and delivery walks only the *touched*
      stack — listeners inside a transmitter's neighborhood.  An untouched
      listener would have received [Silence]; the sparse contract is that
      such a delivery is a no-op for the protocol, so it is elided
      entirely.  A round where k nodes act costs O(k + Σ deg over
      transmitters), independent of n.

   2. Silent-round skip.  When the protocol knows its own schedule well
      enough to promise "nobody transmits before round r" it can expose
      [next_busy_round]; the engine then fast-forwards the stretch without
      calling [decide] at all.  Every skipped round still ticks the
      protocol-visible clock — [stop] is checked, [stats.rounds]
      increments, [metrics] gets a zero row (ring buffer stays
      byte-identical to the dense engine's silent rounds), and
      [after_round] fires so protocol state machines advance.  The hint is
      re-queried every round because [after_round] may change the
      schedule.  Skipped rounds are credited to [Engine.skipped_rounds],
      not [simulated_rounds], so throughput stays honest.

   The tracing path ([on_round]) delegates wholesale to Engine.run: traces
   include Silence receptions of untouched listeners, which only the dense
   scan produces faithfully.  Tracing is a debugging mode; byte-identity
   with the reference engine matters more there than speed.

   Ordering: transmitters spray in descending decide order exactly like
   Engine.run (first writer wins [tx_act], but the stored action is only
   read when [tx_count = 1], so the winner is irrelevant).  Touched
   listeners are delivered in descending touch order, which differs from
   the dense engine's descending decide order — the engine contract
   requires deliveries within a round to be order-independent (each
   listener receives at most one reception per round and protocols keep
   per-node state), so per-node observable behavior is identical. *)

let run ?stats ?metrics ?on_round ?after_round ?decide_active ?next_busy_round
    ?(validate = false) ~graph ~detection ~protocol ~stop ~max_rounds () =
  match on_round with
  | Some _ ->
      Engine.run ?stats ?metrics ?on_round ?after_round ?decide_active
        ~validate ~graph ~detection ~protocol ~stop ~max_rounds ()
  | None ->
      let n = Graph.n graph in
      let off = Graph.offsets graph and tgt = Graph.targets graph in
      (* CSR guard, once per run: neighbour indices read unchecked in the
         spray loop lie in [off.(t), off.(t+1)) ⊆ [0, off.(n)). *)
      if off.(n) > Array.length tgt then
        invalid_arg "Engine_sparse.run: offsets exceed target array";
      let s = match stats with Some s -> s | None -> fresh_stats () in
      let tx_count = Array.make (max n 1) 0 in
      let tx_act = Array.make (max n 1) Sleep in
      let out_act = Array.make (max n 1) Sleep in
      let listen_round = Array.make (max n 1) (-1) in
      let transmitters = Array.make (max n 1) 0 in
      let touched = Array.make (max n 1) 0 in
      let active =
        match decide_active with
        | None -> [||]
        | Some _ -> Array.make (max n 1) 0
      in
      let n_tx = ref 0 and n_tc = ref 0 in
      (* Round-stamped visit marks for the [validate] distinctness check;
         allocated only when the check is on. *)
      let seen = if validate then Array.make (max n 1) (-1) else [||] in
      let inject = Atomic.get inject_silence in
      let skipped = ref 0 in
      let decide_one round v =
        match protocol.decide ~round ~node:v with
        | Sleep -> ()
        | Listen -> listen_round.(v) <- round
        | Transmit _ as act ->
            out_act.(v) <- act;
            transmitters.(!n_tx) <- v;
            incr n_tx
      in
      let finish round outcome =
        add_simulated_rounds (round - !skipped);
        add_skipped_rounds !skipped;
        outcome
      in
      let rec loop round =
        if stop ~round then finish round (Completed round)
        else if round >= max_rounds then finish round (Out_of_budget round)
        else begin
          let busy_at =
            match next_busy_round with
            | None -> round
            | Some f ->
                let r = f ~round in
                if r < round then
                  invalid_arg
                    "Engine_sparse.run: next_busy_round went backwards";
                r
          in
          if busy_at > round then begin
            (* Provably-silent round: nobody transmits, so no listener can
               observe anything but Silence and no per-node work is owed.
               Only the clock ticks. *)
            incr skipped;
            s.rounds <- s.rounds + 1;
            (match metrics with
            | Some m ->
                Rn_obs.Metrics.record_round m ~round ~transmissions:0
                  ~deliveries:0 ~collisions:0
            | None -> ());
            (match after_round with Some f -> f ~round | None -> ());
            loop (round + 1)
          end
          else begin
            (match decide_active with
            | None -> for v = 0 to n - 1 do decide_one round v done
            | Some da ->
                let k = da ~round active in
                if k < 0 || k > n then
                  invalid_arg
                    "Engine_sparse.run: decide_active returned a bad count";
                for i = 0 to k - 1 do
                  let v = active.(i) in
                  if v < 0 || v >= n then
                    invalid_arg
                      "Engine_sparse.run: decide_active wrote a bad node id";
                  if validate then begin
                    if seen.(v) = round then
                      invalid_arg
                        (Printf.sprintf
                           "Engine_sparse.run: decide_active repeated node \
                            id %d in round %d (the transmit-buffer contract \
                            requires distinct ids)"
                           v round);
                    seen.(v) <- round
                  end;
                  decide_one round v
                done);
            let round_tx = !n_tx in
            let del0 = s.deliveries and col0 = s.collisions in
            for i = !n_tx - 1 downto 0 do
              let t = transmitters.(i) in
              s.transmissions <- s.transmissions + 1;
              let act = out_act.(t) in
              for j = off.(t) to off.(t + 1) - 1 do
                let v = Array.unsafe_get tgt j in
                if listen_round.(v) = round then begin
                  if tx_count.(v) = 0 then begin
                    touched.(!n_tc) <- v;
                    incr n_tc;
                    tx_act.(v) <- act
                  end;
                  tx_count.(v) <- tx_count.(v) + 1
                end
              done
            done;
            for i = !n_tc - 1 downto 0 do
              let v = touched.(i) in
              if inject then protocol.deliver ~round ~node:v Silence;
              let reception =
                match tx_count.(v) with
                | 1 -> (
                    s.deliveries <- s.deliveries + 1;
                    match tx_act.(v) with
                    | Transmit m -> Received m
                    | _ -> assert false)
                | _ -> (
                    s.collisions <- s.collisions + 1;
                    match detection with
                    | Collision_detection -> Collision
                    | No_collision_detection -> Silence)
              in
              protocol.deliver ~round ~node:v reception
            done;
            for i = 0 to !n_tc - 1 do
              let v = touched.(i) in
              tx_count.(v) <- 0;
              tx_act.(v) <- Sleep
            done;
            for i = 0 to !n_tx - 1 do
              out_act.(transmitters.(i)) <- Sleep
            done;
            n_tc := 0;
            n_tx := 0;
            s.rounds <- s.rounds + 1;
            if round_tx > 0 then s.busy_rounds <- s.busy_rounds + 1;
            (match metrics with
            | Some m ->
                Rn_obs.Metrics.record_round m ~round ~transmissions:round_tx
                  ~deliveries:(s.deliveries - del0)
                  ~collisions:(s.collisions - col0)
            | None -> ());
            (match after_round with Some f -> f ~round | None -> ());
            loop (round + 1)
          end
        end
      in
      loop 0
(* R5 holds the frontier loop to the same static budget as Engine.run: no
   list traversals, no closure-allocating iterators; test/test_alloc.ml
   pins quiet and skipped rounds to 0 minor words dynamically. *)
[@@zero_alloc_hot]
