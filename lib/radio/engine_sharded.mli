(** Deterministic sharded (multi-domain) round engine.

    [run ~domains] simulates the same synchronous round structure as
    {!Engine.run}, but cuts the node range into [domains] contiguous
    shards (balanced by CSR edge count, cut points from
    {!Rn_graph.Graph.shard_cuts}) and runs each round's phases on a pool
    of worker domains separated by barriers:

    + {e decide} — each lane scans its own node range (or its contiguous
      slice of the active buffer) and records actions lane-locally;
    + {e spray + deliver} — in full-scan mode, owner-filtered push: each
      lane walks every transmitter stack but binary-searches the sorted
      CSR neighbor slice for its own [lo, hi) node range and sprays only
      that sub-slice, accumulating receptions in a saturating per-node
      byte (not-listening / silent / one packet / collided) — so the work
      scales with the transmitter set exactly as in the serial engine,
      every edge is visited by one lane, and all writes are owner-local.  In active-set mode, pull:
      each lane scans the in-edges (the CSC view — for an undirected
      graph, the CSR arrays themselves) of its own listeners, whose count
      the protocol already pruned.  Either way no lane ever writes another
      lane's state, so the round needs zero atomics; listeners are then
      delivered in the serial engine's descending order within the shard;
    + {e reset} — transmit marks are re-Slept by the lane that wrote them
      (folded into the next decide in full-scan mode).

    {b Determinism contract.}  For any protocol whose [decide]/[deliver]
    callbacks touch only per-node state — every protocol in this tree —
    the outcome, stats, trace events, and each [on_round]/[after_round]
    observation are byte-identical to {!Engine.run}, for every [domains]
    value (enforced by the QCheck equivalence suite in
    [test/test_engine_sharded.ml]).  The schedule depends only on the
    shard count: when the worker pool is busy (e.g. a sharded run inside a
    {!Runner.map} trial), lanes simply execute on fewer domains — possibly
    just the caller's — with unchanged results.

    Protocols whose callbacks share mutable state {e across} nodes (a
    common accumulator, a shared RNG drawn per-call) are outside the
    contract: their callbacks would race.  Per-node RNG streams
    ({!Rn_util.Rng.split_n}) and per-node arrays are safe; cross-node
    aggregates must be [Atomic.t] (see [Decay]'s missing-count) and their
    update order is unspecified within a round.

    [stop], [decide_active], [on_round], and [after_round] always run in
    the calling domain, between rounds, exactly as under the serial
    engine. *)

val run :
  ?stats:Engine.stats ->
  ?metrics:Rn_obs.Metrics.t ->
  ?on_round:(round:int -> 'msg Engine.trace_event list -> unit) ->
  ?after_round:(round:int -> unit) ->
  ?decide_active:(round:int -> int array -> int) ->
  ?validate:bool ->
  domains:int ->
  graph:Rn_graph.Graph.t ->
  detection:Engine.detection ->
  protocol:'msg Engine.protocol ->
  stop:(round:int -> bool) ->
  max_rounds:int ->
  unit ->
  Engine.outcome
(** Same surface as {!Engine.run} ([validate] included; the
    {!Engine.inject_silence} probe is dense/sparse-only) plus
    [domains ≥ 1], the shard count.
    [metrics] follows the determinism contract: the coordinator records
    each round from the shard-order sums of the owner-local lane counters
    at the post-barrier merge, so the registry (and any export of it) is
    byte-identical to a serial run with the same registry configuration.
    [domains = 1] runs the sharded schedule inline in the calling domain
    (no pool, no barriers).  [domains] exceeding the node count leaves the
    extra shards empty, which is legal.
    @raise Invalid_argument if [domains < 1], or on a bad
    [decide_active] id/count (as {!Engine.run}; note the sharded engine
    validates the whole prefix before any [decide] call of the round). *)
