(** Event-driven sparse round path.

    Same model, protocol interface, and observable behavior as
    {!Engine.run}, with two structural changes that make long, mostly-quiet
    schedules (the Theorem 1.1 pipeline) cheap:

    - {b Frontier delivery.}  Listeners are round-stamped instead of
      stacked; only listeners inside a transmitter's neighborhood (the
      {e touched} set) receive a [deliver] call.  An untouched listener
      would have heard [Silence]; the engine relies on the {b silence
      no-op contract}: delivering [Silence] must not change protocol
      state.  Every protocol in this repository satisfies it (silence
      arms are [()] or absent).  A protocol that reacts to silence — e.g.
      counting quiet rounds inside [deliver] — must use {!Engine.run}, or
      move the reaction to [after_round].  Note: under
      [No_collision_detection] a collided listener hears [Silence] too;
      {e those} deliveries still happen (the node is touched), so the
      contract only concerns zero-transmitter silence.

    - {b Silent-round skip.}  An optional [next_busy_round] hint lets the
      protocol promise that no node transmits before a given round; the
      engine fast-forwards the stretch without calling [decide].  Each
      skipped round still checks [stop], increments [stats.rounds],
      records a zero metrics row, and fires [after_round] — the
      protocol-visible clock and the full metrics export are byte-identical
      to the dense engine executing those silent rounds.  Skipped rounds
      are credited to {!Engine.total_skipped_rounds}, not
      {!Engine.total_simulated_rounds}.

    Deliveries within a round arrive in a different order than
    {!Engine.run} (descending touch order vs descending decide order).
    Each listener still receives at most one reception per round, so
    protocols with per-node state — all of them here — observe identical
    behavior; the equivalence suite ([test/test_engine_sparse.ml]) pins
    outcome, stats, per-node receive logs, traces, and metrics exports to
    the dense reference. *)

val run :
  ?stats:Engine.stats ->
  ?metrics:Rn_obs.Metrics.t ->
  ?on_round:(round:int -> 'msg Engine.trace_event list -> unit) ->
  ?after_round:(round:int -> unit) ->
  ?decide_active:(round:int -> int array -> int) ->
  ?next_busy_round:(round:int -> int) ->
  ?validate:bool ->
  graph:Rn_graph.Graph.t ->
  detection:Engine.detection ->
  protocol:'msg Engine.protocol ->
  stop:(round:int -> bool) ->
  max_rounds:int ->
  unit ->
  Engine.outcome
(** Drop-in for {!Engine.run} (including [validate] and the
    {!Engine.inject_silence} probe) plus [next_busy_round].

    [next_busy_round ~round] returns the earliest round [>= round] in
    which some node {e may} transmit; every round strictly before it is
    fast-forwarded.  Returning [round] means "cannot promise silence now"
    and costs nothing.  The hint is re-queried every round (protocol state
    may change in [after_round]), so implementations should be O(1) —
    precompute residue tables rather than scanning.  The hint must be
    {e sound}: claiming silence for a round in which a node would have
    transmitted silently changes the simulation (the engine cannot detect
    a lie it was told precisely to avoid checking; see DESIGN.md §12 for
    the contract).  A hint that goes backwards ([r < round]) raises.
    Protocols whose transmissions are randomized every round (Decay,
    jammers) must not offer a hint — wrappers disable it when fault
    injection is active.

    When [on_round] is set the call delegates to {!Engine.run} (traces
    must include untouched listeners' [Silence] events); the hint is
    ignored there.

    @raise Invalid_argument if [next_busy_round] returns [r < round], or
    on a bad [decide_active] id/count. *)
