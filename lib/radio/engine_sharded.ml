open Rn_graph
module Bitvec = Rn_coding.Bitvec

(* Deterministic sharded round loop — the parallel sibling of [Engine.run].

   The node range is cut into [domains] contiguous shards (balanced by CSR
   edge count, cut points from [Graph.shard_cuts]); each round runs phases
   separated by barriers:

     P1 decide   each executor scans its own node ranges (or its slices of
                 the active buffer) and records actions into its lanes;
     P2 spray    full-scan mode: owner-filtered push.  Every lane walks
       + deliver {e every} lane's transmitter stack, but for each
                 transmitter binary-searches its sorted CSR neighbor slice
                 for the lane's own [lo, hi) sub-slice and sprays only
                 that — so each directed edge out of a transmitter is
                 visited by exactly one lane, and every write (the
                 saturating per-node reception byte, the first-sprayer
                 [tx_act] slot) lands in lane-owned state.  Total work is
                 the serial engine's spray cost plus one binary search per
                 (transmitter, shard): crucially it scales with the
                 {e transmitter} set, not with the listener set — a pull
                 over listeners' in-edges re-scans the whole edge set every
                 busy round, a ~10x loss on Decay-like workloads where
                 almost everybody listens and few transmit.
                 Active-set mode: pull.  Ownership follows the active-buffer
                 slices, which cross node ranges, so push filtering by node
                 range is unavailable; instead each lane scans the in-edges
                 (CSC = CSR for an undirected graph) of its own listeners,
                 whose count the protocol already pruned.
                 Delivery is fused into the same phase (descending within
                 the shard): a listener's reception is fully determined
                 once the lane's spray (or its own in-scan) finishes.
     P3 reset    (active-set mode only) each lane re-Sleeps the [out_act]
                 entries it wrote.  In full-scan mode a lane owns the
                 [out_act] segment of its node range, so the reset folds
                 into the top of its next P1 and the round needs one less
                 barrier.

   The coordinator (the calling domain) runs the serial protocol surface —
   [stop], [decide_active], stats merging, [on_round]/[after_round] —
   between rounds, so those callbacks execute exactly as under the serial
   engine.

   Determinism contract: for protocols whose [decide]/[deliver] touch only
   per-node state, outcome, stats, traces, and every callback observation
   are byte-identical to [Engine.run], for every [domains] value.  Why:
   decide covers the same node sequence (concatenated ascending shards, or
   the same active-buffer order sliced contiguously); a listener's
   reception depends only on the {e set} of transmitting neighbors — the
   (seen, collided) pair saturates, and [tx_act] is only read when exactly
   one neighbor transmitted, in which case every spray order writes the
   same value — never on any inter-node order; delivery order
   reconstructed over shards (descending shard, descending within) is
   exactly the serial descending order; and stats/events are merged in
   fixed shard order by the coordinator.  The schedule depends only on the
   shard count, never on how many pool workers execute the lanes — so a
   busy pool degrades to fewer executors (or the calling domain alone)
   without changing a single byte of output.

   Memory model: all cross-domain visibility is ordered by the barrier's
   mutex (coordinator writes round state before releasing a phase; lanes
   read it after crossing).  Within a phase every mutable location —
   lane scratch, [out_act] entry, reception byte — has exactly one
   writer: lanes own disjoint node ranges, active-buffer ids are distinct
   by the engine contract, and a [Bytes] element is its own location in
   the OCaml memory model (byte stores never read neighbours back), so
   adjacent shards can touch adjacent bytes without a word-level race.
   Shard cuts are still word-aligned ([Bitvec.bits_per_word]) purely so
   the cut positions stay stable relative to earlier revisions. *)

type 'msg lane = {
  lo : int;  (* owned node range [lo, hi) *)
  hi : int;
  tx_stack : int array;
  ls_stack : int array;
  mutable n_tx : int;
  mutable n_ls : int;
  mutable a_lo : int;  (* this round's slice of the active buffer *)
  mutable a_hi : int;
  mutable deliveries : int;  (* per-round counters, drained by coordinator *)
  mutable collisions : int;
  (* Gather scratch as fields rather than refs: a ref cell per listener
     would allocate inside the hot loop. *)
  mutable g_cnt : int;
  mutable g_act : 'msg Engine.action;
  mutable exn_ : exn option;
  mutable ev_tx : 'msg Engine.trace_event list;  (* consed; tracing only *)
  mutable ev_rx : 'msg Engine.trace_event list;
}

(* A counting barrier on a mutex + condvar; [phase] increments at every
   release, which is the generation ("sense") that parks late arrivals of
   the current crossing without racing the next one. *)
module Barrier = struct
  type t = {
    lock : Mutex.t;
    cond : Condition.t;
    parties : int;
    mutable waiting : int;
    mutable phase : int;
  }

  let make parties =
    {
      lock = Mutex.create ();
      cond = Condition.create ();
      parties;
      waiting = 0;
      phase = 0;
    }

  let await b =
    Mutex.lock b.lock;
    let ph = b.phase in
    b.waiting <- b.waiting + 1;
    if b.waiting = b.parties then begin
      b.waiting <- 0;
      b.phase <- ph + 1;
      Condition.broadcast b.cond
    end
    else
      while b.phase = ph do
        Condition.wait b.cond b.lock
      done;
    Mutex.unlock b.lock
end

let run ?stats ?metrics ?on_round ?after_round ?decide_active
    ?(validate = false) ~domains ~graph ~detection ~protocol ~stop ~max_rounds
    () =
  if domains < 1 then invalid_arg "Engine_sharded.run: domains must be >= 1";
  let n = Graph.n graph in
  let off = Graph.csc_offsets graph and tgt = Graph.csc_targets graph in
  (* CSC guard, once per run, dominating every unchecked access below:
     gather indices lie in [off.(v), off.(v+1)) ⊆ [0, off.(n)), and the
     byte-table stores index by node id < n ≤ |st| (lane node ranges
     partition [0, n)). *)
  if off.(n) > Array.length tgt then
    invalid_arg "Engine_sharded.run: offsets exceed target array";
  let s = match stats with Some s -> s | None -> Engine.fresh_stats () in
  (* Round-stamped visit marks for the [validate] distinctness check, read
     and written only by the coordinator; allocated only when on. *)
  let seen = if validate then Array.make (max n 1) (-1) else [||] in
  let shards = domains in
  let full_scan = Option.is_none decide_active in
  let cuts = Graph.shard_cuts ~align:Bitvec.bits_per_word graph ~parts:shards in
  let out_act = Array.make (max n 1) Engine.Sleep in
  (* Full-scan-mode spray state, all owner-local by node range.  [st] packs
     listening + the saturating 0/1/≥2 reception counter into one byte per
     node: 255 = not listening this round, 0 = listening and silent so far,
     1 = exactly one packet heard, 2 = collided (saturates).  One byte load
     decides the whole spray step — measurably cheaper than a bitset pair,
     whose div/mod-by-63 word addressing dominated the per-edge cost on
     dense-transmitter rounds.  [tx_act] holds the first sprayer's packet
     (only read when the counter is exactly 1).  The per-round reset undoes
     only the dirty bytes — the previous round's listeners — via the lane's
     [ls_stack], falling back to one [Bytes.fill] over the owned range when
     the listener count approaches the range size.  Active-set mode leaves
     these untouched — its decide slices cross node ranges, so it gathers
     by pulling instead. *)
  let st = Bytes.make (max n 1) '\255' in
  let tx_act = Array.make (max n 1) Engine.Sleep in
  let active =
    match decide_active with None -> [||] | Some _ -> Array.make (max n 1) 0
  in
  let tracing = Option.is_some on_round in
  (* A lane's stacks must hold its worst case: its full node range in
     full-scan mode, the largest active-buffer slice otherwise. *)
  let slice_cap = ((n + shards - 1) / shards) + 1 in
  let lanes =
    Array.init shards (fun j ->
        let lo = cuts.(j) and hi = cuts.(j + 1) in
        let cap = max 1 (max (hi - lo) slice_cap) in
        {
          lo;
          hi;
          tx_stack = Array.make cap 0;
          ls_stack = Array.make cap 0;
          n_tx = 0;
          n_ls = 0;
          a_lo = 0;
          a_hi = 0;
          deliveries = 0;
          collisions = 0;
          g_cnt = 0;
          g_act = Engine.Sleep;
          exn_ = None;
          ev_tx = [];
          ev_rx = [];
        })
  in
  (* Round state written by the coordinator before a phase release and read
     by lanes after the barrier crossing (mutex-ordered). *)
  let cur_round = ref 0 in
  let running = ref true in
  let decide_one (lane : _ lane) round v =
    match protocol.Engine.decide ~round ~node:v with
    | Engine.Sleep -> ()
    | Engine.Listen ->
        if full_scan then Bytes.unsafe_set st v '\000';
        lane.ls_stack.(lane.n_ls) <- v;
        lane.n_ls <- lane.n_ls + 1
    | Engine.Transmit msg as act ->
        out_act.(v) <- act;
        lane.tx_stack.(lane.n_tx) <- v;
        lane.n_tx <- lane.n_tx + 1;
        if tracing then
          lane.ev_tx <- Engine.Ev_transmit { node = v; msg } :: lane.ev_tx
  in
  (* P1.  Full-scan mode starts by undoing the previous round's marks — the
     lane owns them all: its transmit writes lie in [lo, hi), and the
     reception bytes reset with one fill of the owned range. *)
  let do_decide (lane : _ lane) =
    let round = !cur_round in
    if full_scan then begin
      for i = 0 to lane.n_tx - 1 do
        out_act.(lane.tx_stack.(i)) <- Engine.Sleep
      done;
      (* [tx_act] keeps stale entries: it is only read under a counter this
         round raised to 1, and the write raising it rewrites [tx_act]
         first.  The dirty [st] bytes are exactly the previous round's
         listeners: [decide_one] marks only them '\000', and [spray_slice]
         only bumps bytes already below 2 — a deaf byte stays 255.  So the
         undo walks [ls_stack] when it is sparse, and falls back to one
         fill of the owned range once the listener count approaches it
         (sequential memset beats scattered byte stores well before the
         counts are equal). *)
      if 4 * lane.n_ls >= lane.hi - lane.lo then begin
        if lane.lo < lane.hi then
          Bytes.fill st lane.lo (lane.hi - lane.lo) '\255'
      end
      else
        for i = 0 to lane.n_ls - 1 do
          Bytes.unsafe_set st lane.ls_stack.(i) '\255'
        done
    end;
    lane.n_tx <- 0;
    lane.n_ls <- 0;
    lane.deliveries <- 0;
    lane.collisions <- 0;
    if tracing then begin
      lane.ev_tx <- [];
      lane.ev_rx <- []
    end;
    if full_scan then
      for v = lane.lo to lane.hi - 1 do
        decide_one lane round v
      done
    else
      for i = lane.a_lo to lane.a_hi - 1 do
        decide_one lane round active.(i)
      done
  [@@zero_alloc_hot]
  in
  (* Quiet-round test: every lane's transmit count is readable in P2
     (written in P1, ordered by the P1→P2 barrier).  Recursion rather than
     a ref keeps the zero-alloc invariant. *)
  let rec some_lane_transmits j =
    j < shards && (lanes.(j).n_tx > 0 || some_lane_transmits (j + 1))
  in
  (* Smallest edge index in [a, b) whose target is >= x; the CSR neighbor
     slices are sorted, so each lane can jump straight to its own node
     range inside any transmitter's adjacency. *)
  let rec lower_bound a b x =
    if a >= b then a
    else begin
      let mid = (a + b) / 2 in
      if Array.unsafe_get tgt mid < x then lower_bound (mid + 1) b x
      else lower_bound a mid x
    end
  in
  (* Spray one transmitter's packet into this lane's slice of its neighbor
     list: one byte load classifies the listener (255 deaf, 2 saturated —
     both skip), the first sprayer records the packet.  Recursion, not
     refs — a ref would allocate per transmitter. *)
  let rec spray_slice act e b hi =
    if e < b then begin
      let v = Array.unsafe_get tgt e in
      if v < hi then begin
        let c = Char.code (Bytes.unsafe_get st v) in
        if c < 2 then begin
          Bytes.unsafe_set st v (Char.unsafe_chr (c + 1));
          if c = 0 then Array.unsafe_set tx_act v act
        end;
        spray_slice act (e + 1) b hi
      end
    end
  in
  (* P2, full-scan mode: owner-filtered push spray, then fused deliver
     descending within the shard.  Every lane walks every lane's
     transmitter stack (readable after the P1 barrier) but sprays only the
     [lo, hi) sub-slice of each neighbor list, so writes stay owner-local
     and each edge is visited once across all lanes. *)
  let do_gather_full (lane : _ lane) =
    let round = !cur_round in
    if lane.lo < lane.hi && some_lane_transmits 0 then
      for k = 0 to shards - 1 do
        let src = lanes.(k) in
        for i = 0 to src.n_tx - 1 do
          let t = src.tx_stack.(i) in
          let b = off.(t + 1) in
          spray_slice
            (Array.unsafe_get out_act t)
            (lower_bound off.(t) b lane.lo)
            b lane.hi
        done
      done;
    for i = lane.n_ls - 1 downto 0 do
      let v = lane.ls_stack.(i) in
      (* [v] is a listener, so its byte is 0, 1 or 2 — never 255. *)
      let c = Char.code (Bytes.unsafe_get st v) in
      let reception =
        if c = 0 then Engine.Silence
        else if c = 1 then begin
          lane.deliveries <- lane.deliveries + 1;
          match Array.unsafe_get tx_act v with
          | Engine.Transmit m -> Engine.Received m
          | _ -> assert false
        end
        else begin
          lane.collisions <- lane.collisions + 1;
          match detection with
          | Engine.Collision_detection -> Engine.Collision
          | Engine.No_collision_detection -> Engine.Silence
        end
      in
      if tracing then
        lane.ev_rx <- Engine.Ev_receive { node = v; reception } :: lane.ev_rx;
      protocol.Engine.deliver ~round ~node:v reception
    done
  [@@zero_alloc_hot]
  in
  (* P2, active-set mode: pull — each lane scans the in-edges (CSC = CSR
     for an undirected graph) of its own listeners, counting transmitting
     neighbors in lane-local scratch.  The protocol already pruned the
     listener set, so the scan is proportional to its choice. *)
  let do_gather_active (lane : _ lane) =
    let round = !cur_round in
    (* If nobody transmitted this round, every listener hears silence and
       the in-edge scans can be skipped wholesale. *)
    let any_tx = some_lane_transmits 0 in
    for i = lane.n_ls - 1 downto 0 do
      let v = lane.ls_stack.(i) in
      if any_tx then begin
        lane.g_cnt <- 0;
        for e = off.(v) to off.(v + 1) - 1 do
          let u = Array.unsafe_get tgt e in
          match Array.unsafe_get out_act u with
          | Engine.Transmit _ as act ->
              if lane.g_cnt = 0 then lane.g_act <- act;
              lane.g_cnt <- lane.g_cnt + 1
          | Engine.Sleep | Engine.Listen -> ()
        done
      end
      else lane.g_cnt <- 0;
      let reception =
        match lane.g_cnt with
        | 0 -> Engine.Silence
        | 1 -> (
            lane.deliveries <- lane.deliveries + 1;
            match lane.g_act with
            | Engine.Transmit m -> Engine.Received m
            | _ -> assert false)
        | _ -> (
            lane.collisions <- lane.collisions + 1;
            match detection with
            | Engine.Collision_detection -> Engine.Collision
            | Engine.No_collision_detection -> Engine.Silence)
      in
      if tracing then
        lane.ev_rx <- Engine.Ev_receive { node = v; reception } :: lane.ev_rx;
      protocol.Engine.deliver ~round ~node:v reception
    done
  [@@zero_alloc_hot]
  in
  let do_gather (lane : _ lane) =
    if full_scan then do_gather_full lane else do_gather_active lane
  in
  (* P3 (active-set mode): re-Sleep this lane's transmit writes.  Runs
     after every lane finished gathering; cannot fold into the next P1
     because next round's slices may hand these nodes to another lane. *)
  let do_reset (lane : _ lane) =
    for i = 0 to lane.n_tx - 1 do
      out_act.(lane.tx_stack.(i)) <- Engine.Sleep
    done
  [@@zero_alloc_hot]
  in
  let guarded f (lane : _ lane) =
    try f lane
    with ex -> (
      match lane.exn_ with None -> lane.exn_ <- Some ex | Some _ -> ())
  in
  (* Executors: the coordinator is executor 0; pool workers (however many
     the pool could spare — possibly none) take 1..execs-1.  Executor [e]
     runs shards e, e+execs, … — ownership is per shard, so the executor
     count affects scheduling only, never results. *)
  let workers = if shards > 1 then Runner.Pool.borrow ~want:(shards - 1) else [||] in
  let execs = Array.length workers + 1 in
  let barrier = Barrier.make execs in
  let sync () = if execs > 1 then Barrier.await barrier in
  let run_phases e =
    let phase f =
      let j = ref e in
      while !j < shards do
        guarded f lanes.(!j);
        j := !j + execs
      done
    in
    phase do_decide;
    sync ();
    phase do_gather;
    if not full_scan then begin
      sync ();
      phase do_reset
    end
  in
  let worker_body e () =
    let live = ref true in
    while !live do
      Barrier.await barrier;
      if !running then begin
        run_phases e;
        Barrier.await barrier
      end
      else live := false
    done
  in
  Array.iteri (fun t w -> Runner.Pool.run_on w (worker_body (t + 1))) workers;
  let shutdown () =
    running := false;
    sync ();
    Array.iter (fun w -> Runner.Pool.await w |> ignore) workers;
    Runner.Pool.release workers
  in
  let fail_shutdown ex =
    shutdown ();
    raise ex
  in
  let merge_round round =
    (* Shard-order merge makes every observation identical to serial:
       totals are order-independent sums; the event list is rebuilt in the
       serial order (transmits ascending, then receptions descending). *)
    let busy = ref false in
    let rtx = ref 0 and rdel = ref 0 and rcol = ref 0 in
    for j = 0 to shards - 1 do
      let lane = lanes.(j) in
      if lane.n_tx > 0 then busy := true;
      rtx := !rtx + lane.n_tx;
      rdel := !rdel + lane.deliveries;
      rcol := !rcol + lane.collisions
    done;
    s.Engine.transmissions <- s.Engine.transmissions + !rtx;
    s.Engine.deliveries <- s.Engine.deliveries + !rdel;
    s.Engine.collisions <- s.Engine.collisions + !rcol;
    s.Engine.rounds <- s.Engine.rounds + 1;
    if !busy then s.Engine.busy_rounds <- s.Engine.busy_rounds + 1;
    (* Same call the serial engine makes at its round tail, fed by the
       shard-order sums of the owner-local lane counters — so the registry
       contents (and anything exported from them) are byte-identical for
       every domain count. *)
    (match metrics with
    | Some m ->
        Rn_obs.Metrics.record_round m ~round ~transmissions:!rtx
          ~deliveries:!rdel ~collisions:!rcol
    | None -> ());
    (match on_round with
    | Some f ->
        (* Cold path, mirrors the serial engine's tracing reconstruction. *)
        let evs = ref [] in
        for j = 0 to shards - 1 do
          evs := List.rev_append lanes.(j).ev_rx !evs
        done;
        for j = shards - 1 downto 0 do
          evs := List.rev_append lanes.(j).ev_tx !evs
        done;
        f ~round !evs
    | None -> ());
    match after_round with Some f -> f ~round | None -> ()
  in
  let first_exn () =
    let found = ref None in
    for j = shards - 1 downto 0 do
      match lanes.(j).exn_ with Some e -> found := Some e | None -> ()
    done;
    !found
  in
  let rec loop round =
    if stop ~round then begin
      shutdown ();
      Engine.add_simulated_rounds round;
      Engine.Completed round
    end
    else if round >= max_rounds then begin
      shutdown ();
      Engine.add_simulated_rounds round;
      Engine.Out_of_budget round
    end
    else begin
      (match decide_active with
      | None -> ()
      | Some da ->
          let k =
            match da ~round active with
            | k -> k
            | exception ex -> fail_shutdown ex
          in
          if k < 0 || k > n then
            fail_shutdown
              (Invalid_argument
                 "Engine_sharded.run: decide_active returned a bad count");
          for i = 0 to k - 1 do
            let v = active.(i) in
            if v < 0 || v >= n then
              fail_shutdown
                (Invalid_argument
                   "Engine_sharded.run: decide_active wrote a bad node id");
            if validate then begin
              if seen.(v) = round then
                fail_shutdown
                  (Invalid_argument
                     (Printf.sprintf
                        "Engine_sharded.run: decide_active repeated node id \
                         %d in round %d (the transmit-buffer contract \
                         requires distinct ids)"
                        v round));
              seen.(v) <- round
            end
          done;
          for j = 0 to shards - 1 do
            lanes.(j).a_lo <- k * j / shards;
            lanes.(j).a_hi <- k * (j + 1) / shards
          done);
      cur_round := round;
      sync ();
      run_phases 0;
      sync ();
      (match first_exn () with
      | Some ex -> fail_shutdown ex
      | None -> ());
      merge_round round;
      loop (round + 1)
    end
  in
  match loop 0 with
  | outcome -> outcome
  | exception ex ->
      (* [stop]/[on_round]/[after_round]/merge raised in the serial
         section; the workers are parked at the round-release barrier. *)
      if !running then shutdown ();
      raise ex
