(** Parallel trial runner.

    Theorem-validation experiments are embarrassingly parallel: thousands of
    independent [Engine.run] calls, one per (configuration, seed) pair, each
    deriving all of its randomness from its own seed.  This module fans such
    trials out over OCaml 5 domains (one per available core by default)
    while keeping results {e bit-identical} to a serial run: sharding is
    static and deterministic, and results are returned in input order.

    The callback must be a pure function of its input (plus immutable shared
    data such as a pre-built {!Rn_graph.Graph.t}, which is safe to read from
    any domain): no shared mutable state, no printing.  All of the bench
    harness's per-seed loops satisfy this by construction — every trial
    creates its own {!Rn_util.Rng} from its seed. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()], floored at 1. *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map f items] evaluates [f] on every item, fanning out over
    [min domains (length items)] domains ([default_domains ()] if
    unspecified), and returns the results in input order.  [domains <= 1]
    runs serially in the calling domain.  An exception raised by any [f] is
    re-raised by [Domain.join]. *)

val map_seeds : ?domains:int -> seeds:int list -> (seed:int -> 'a) -> 'a list
(** [map_seeds ~seeds f] is [map] over a seed list — the shape of every
    per-seed trial loop in [bench/main.ml]. *)
