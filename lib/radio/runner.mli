(** Parallel trial runner and the shared worker-domain pool.

    Theorem-validation experiments are embarrassingly parallel: thousands of
    independent [Engine.run] calls, one per (configuration, seed) pair, each
    deriving all of its randomness from its own seed.  This module fans such
    trials out over OCaml 5 domains (one per available core by default)
    while keeping results {e bit-identical} to a serial run: sharding is
    static and deterministic, and results are returned in input order.

    The callback must be a pure function of its input (plus immutable shared
    data such as a pre-built {!Rn_graph.Graph.t}, which is safe to read from
    any domain): no shared mutable state, no printing.  All of the bench
    harness's per-seed loops satisfy this by construction — every trial
    creates its own {!Rn_util.Rng} from its seed. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()], floored at 1. *)

val map_array : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array f items] evaluates [f] on every item, fanned out over
    [min domains (length items)] deterministic lanes ([default_domains ()]
    if unspecified) executed by pool workers plus the calling domain, and
    returns the results in input order.  Result slots are preallocated
    per lane (each lane sizes one array off its first result), so the
    steady-state dispatch loop performs no per-element allocation — no
    option boxing, no list consing — which [test_alloc.ml] enforces with
    a [Gc.minor_words] budget.  [domains <= 1] runs serially in the
    calling domain.  The result depends only on [domains], never on how
    many pool workers were actually available.  An exception raised by
    any [f] is re-raised after all lanes finish. *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** List-interface wrapper over {!map_array}: same lanes, same
    determinism contract, results in input order. *)

val map_seeds : ?domains:int -> seeds:int list -> (seed:int -> 'a) -> 'a list
(** [map_seeds ~seeds f] is [map] over a seed list — the shape of every
    per-seed trial loop in [bench/main.ml]. *)

(** The process-wide pool of reusable worker domains behind [map] and
    {!Engine_sharded.run}.

    Workers park on a condition variable between jobs, so borrowing is
    cheap enough for round-granularity use.  [borrow] reuses idle workers
    freely but {e spawns} new domains only when no worker is busy: a nested
    parallel region (a sharded run inside a [map] trial, or vice versa)
    gets zero workers and runs in its calling domain, bounding the live
    domain count to one level of parallelism.  Callers must treat a short
    allocation as normal, not an error — every parallel entry point here
    degrades to a serial execution of the same deterministic schedule.

    Parked workers are joined by an [at_exit] hook. *)
module Pool : sig
  type worker

  val size_cap : int Atomic.t
  (** Upper bound on the total number of worker domains the pool will ever
      hold, defaulting to [default_domains () - 1] — the calling domain
      plus a full pool then exactly saturate the hardware.  CPU-bound lanes
      gain nothing from more executors than cores and lose badly (every
      barrier crossing becomes a scheduler round-trip), and by the
      determinism contracts of {!map} and {!Engine_sharded.run} the
      executor count never affects results, so requests beyond the cap
      simply degrade toward the calling domain.  Tests raise it to force
      true multi-domain execution on small machines. *)

  val borrow : want:int -> worker array
  (** At most [want] workers; possibly fewer (including none) when the
      pool is busy or [size_cap] is reached.  Every borrowed worker must be
      passed to [release] after its last [await]. *)

  val run_on : worker -> (unit -> unit) -> unit
  (** Start a job on an idle borrowed worker.  At most one job may be in
      flight per worker; [await] before reusing it. *)

  val await : worker -> exn option
  (** Block until the worker's job finishes; returns the exception it
      raised, if any.  The worker is idle and reusable afterwards. *)

  val release : worker array -> unit
  (** Return workers to the pool.  Call only with every job awaited. *)
end
