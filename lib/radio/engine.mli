(** Synchronous radio-network round engine.

    Implements the model of §1.1 of the paper exactly:

    - time advances in synchronous rounds [0, 1, 2, …];
    - in each round every node either transmits one packet or listens
      (half-duplex: a transmitter receives nothing that round);
    - a listener receives a packet iff {e exactly one} of its neighbors
      transmits;
    - if two or more neighbors transmit, a listener observes [Collision]
      (the special symbol ⊤) when collision detection is available, and
      observes [Silence] — indistinguishable from nobody transmitting —
      when it is not.

    Protocols are given as two callbacks closing over their own per-node
    state; the engine owns nothing but the schedule.  Packet contents are a
    type parameter: the model's only constraint is that a packet carries
    [B = Ω(log n)] bits, i.e. O(1) node ids — each protocol's message type
    documents what its packets carry. *)

type detection =
  | Collision_detection  (** listeners can distinguish ⊤ from silence *)
  | No_collision_detection
      (** collisions are delivered as [Silence]; protocols cannot cheat *)

type 'msg action =
  | Sleep  (** neither transmit nor listen; reception is not computed *)
  | Listen
  | Transmit of 'msg

type 'msg reception =
  | Silence
  | Collision  (** only ever delivered under [Collision_detection] *)
  | Received of 'msg

type 'msg protocol = {
  decide : round:int -> node:int -> 'msg action;
      (** called once per node per round, before any delivery *)
  deliver : round:int -> node:int -> 'msg reception -> unit;
      (** called once per {e listening} node per round, after all nodes
          decided *)
}

type stats = {
  mutable rounds : int;  (** rounds actually simulated *)
  mutable transmissions : int;  (** total Transmit actions *)
  mutable deliveries : int;  (** successful single-transmitter receptions *)
  mutable collisions : int;  (** listener-rounds with ≥ 2 transmitting neighbors *)
  mutable busy_rounds : int;  (** rounds with at least one transmission *)
}

val fresh_stats : unit -> stats

type outcome =
  | Completed of int
      (** [Completed r]: the stop predicate held before round [r]; [r]
          rounds were simulated *)
  | Out_of_budget of int  (** the round budget was exhausted first *)

val rounds_of_outcome : outcome -> int
(** The simulated round count in either case. *)

val completed_exn : outcome -> int
(** @raise Failure if the run did not complete. *)

type 'msg trace_event =
  | Ev_transmit of { node : int; msg : 'msg }
  | Ev_receive of { node : int; reception : 'msg reception }

val total_simulated_rounds : unit -> int
(** Rounds simulated process-wide since startup, summed over every [run]
    (across all domains; the counter is atomic).  The bench harness reads
    the delta around an experiment to report rounds/sec. *)

val add_simulated_rounds : int -> unit
(** Credit rounds to the process-wide tally.  For alternate engine front
    ends ({!Engine_sharded}) that simulate rounds without going through
    [run]; protocols and benches never call this. *)

val total_skipped_rounds : unit -> int
(** Rounds fast-forwarded process-wide by {!Engine_sparse}'s silent-round
    skip.  Disjoint from {!total_simulated_rounds}: a round is counted in
    exactly one of the two tallies, so honest throughput is
    [simulated / wall] and a bench can report the skipped volume
    separately.  Protocol-visible state ([stats.rounds], metrics rows,
    [after_round] calls) does not distinguish the two. *)

val add_skipped_rounds : int -> unit
(** Credit fast-forwarded rounds.  For engine front ends only. *)

type mode = Dense | Sparse
(** Which round path a protocol wrapper should drive: [Dense] is {!run}
    (the reference full-scan engine), [Sparse] is {!Engine_sparse.run}.
    Wrappers default to [Sparse]; benches pass [Dense] to time or verify
    against the reference. *)

val inject_silence : bool Atomic.t
(** Debug probe for the contracts suite: when set, {!run} (and
    {!Engine_sparse.run}) delivers one spurious [Silence] to every listener
    before its real reception of the round.  A protocol honouring the R11
    silence-purity contract (DESIGN.md §13) produces byte-identical results
    either way — [test/test_contracts.ml] asserts exactly that for every
    registered pipeline.  Read once per run; defaults to [false], in which
    case the engine behaves identically to previous releases. *)

val run :
  ?stats:stats ->
  ?metrics:Rn_obs.Metrics.t ->
  ?on_round:(round:int -> 'msg trace_event list -> unit) ->
  ?after_round:(round:int -> unit) ->
  ?decide_active:(round:int -> int array -> int) ->
  ?validate:bool ->
  graph:Rn_graph.Graph.t ->
  detection:detection ->
  protocol:'msg protocol ->
  stop:(round:int -> bool) ->
  max_rounds:int ->
  unit ->
  outcome
(** [run ~graph ~detection ~protocol ~stop ~max_rounds ()] simulates rounds
    until [stop ~round] holds (checked before each round) or [max_rounds]
    rounds have been simulated.  [metrics], when given, receives one
    [Rn_obs.Metrics.record_round] call at the end of every simulated round
    (this round's transmissions/deliveries/collisions, attributed to the
    registry's current phase) — pure int mutation, so the quiet-round
    0-word budget still holds; protocols annotate phase boundaries from
    [after_round] (see [Rn_obs.Phase]).  [on_round], when given, receives every
    transmit/receive event of the round (including sleep-free listens that
    heard silence) — intended for examples and debugging, not benchmarks.
    [after_round] is a cheap per-round hook (no event capture) called after
    all deliveries of a round; protocol state machines use it to advance
    phase counters.

    [validate] (default [false]) additionally enforces the documented
    transmit-buffer contract of [decide_active] — the ids of a round must be
    distinct — raising [Invalid_argument] naming the offending id and round.
    The distinctness scan costs one array read/write per active id and one
    length-[n] allocation per run, so it is reserved for tests (the QCheck
    equivalence suites enable it); the in-range check below is always on.

    [decide_active], when given, replaces the every-node decide scan: each
    round the engine hands it a reusable buffer of length [n]; the protocol
    writes the ids of the awake nodes into a prefix and returns the prefix
    length, and [decide] is then called on exactly those nodes (in buffer
    order) — every other node implicitly [Sleep]s that round.  The ids of a
    round must be distinct and in [\[0, n)] (distinctness is the protocol's
    obligation; a duplicated id would act twice).  This lets schedules where
    only one layer or ring is awake — Decay waves, GST stretches — simulate
    a round in O(|active|) instead of O(n).
    @raise Invalid_argument on an out-of-range id or count.

    The engine allocates only its fixed per-run scratch (a few int arrays of
    length [n]); the round loop itself is allocation-free apart from the
    [Transmit] packets protocols return (stored by reference, never
    re-wrapped), the [Received] wrappers handed to successful listeners, and,
    when [on_round] is set, the trace events.  [test/test_alloc.ml] enforces
    this budget under [Gc.minor_words]; rblint rule R5 (see DESIGN.md §8)
    statically rejects list traversals inside the [@@zero_alloc_hot]-tagged
    loop.

    Complexity per round: O(n) decide calls (or O(|active|) under
    [decide_active]) plus O(Σ deg) over transmitters, so protocols that
    [Sleep] inactive nodes simulate large round counts cheaply. *)
