(** The distributed Bipartite Assignment algorithm (§2.2.3).

    One instance solves the assignment problem between a {e red} level
    [l−1] and a {e blue} level [l] of the BFS layering: every blue obtains
    a red parent, adopting reds obtain GST ranks, and the assignment is
    collision-free w.h.p. (Lemma 2.5).  Ranks are processed from
    [⌈log n⌉] down to 1; each rank runs epochs of

    - Stage I — loner detection: one all-active-reds beacon round (a blue
      that receives cleanly has exactly one active red neighbor), then a
      Decay stage in which loners inform their reds;
    - Stage II — three recruiting parts: loner-parents (permanent),
      {e brisk} reds (coin = heads), {e lazy} reds (coin = tails); a blue
      recruited by a many-recruit red is permanently assigned, a single
      recruit is temporary and is released at the epoch end;
    - Stage III — freshly marked reds are ranked ([i] for one rank-[i]
      child, [i+1] for several) and announce [(id, rank)] through Decay so
      unassigned blues of lower ranks can permanently attach to them.

    Reds marked with zero recruits leave the current rank phase unranked
    and become eligible again at lower ranks (see the wave-safety
    discussion in {!Gst}); a red that never adopts ends as a leaf.

    Like {!Recruiting}, the instance is an embeddable state machine driven
    by a scheduler, so the pipelined construction (§2.2.4) can interleave
    many instances.  The [ready] callback gates each rank phase on its
    pipeline dependency (rank [i] here needs rank [i−1] finished one level
    deeper); the sequential construction passes [fun ~rank:_ -> true]. *)

open Rn_util
open Rn_radio

type t

val create :
  rng:Rng.t ->
  params:Params.t ->
  scale_n:int ->
  graph:Rn_graph.Graph.t ->
  reds:int array ->
  blues:int array ->
  parents:int array ->
  ranks:int array ->
  parent_rank:int array ->
  ready:(rank:int -> bool) ->
  unit ->
  t
(** [parents], [ranks] and [parent_rank] are shared result arrays indexed
    by node id, written in place ([-1] / [0] / [-1] when unknown): the
    orchestrator passes the same arrays to every level's instance so that
    blue ranks are visible to the pair below as soon as they are final. *)

(** {1 Scheduler interface} *)

val decide : t -> node:int -> Cmsg.t Engine.action
val deliver : t -> node:int -> Cmsg.t Engine.reception -> unit
val advance : t -> unit
val finished : t -> bool

val current_rank : t -> int
(** Rank phase currently being processed (0 once finished). *)

val waiting : t -> bool
(** True while the instance idles on its [ready] dependency. *)

(** {1 Instrumentation} *)

val rounds_used : t -> int

val epoch_active_history : t -> (int * int) list
(** [(rank, active-red-count)] at the start of every epoch — the shrinkage
    series of Lemma 2.4 (experiment E4). *)

val class_fixups : t -> int
(** Number of recruit-class inconsistencies that had to be oracle-repaired
    after a recruiting part exhausted its budget (expected 0). *)

val fallback_reactivations : t -> int
(** Number of times a stranded blue forced re-identification of active
    reds (expected 0; counts robustness-fallback activations). *)

val late_attaches : t -> int
(** Number of primaries attached by the last-resort Stage-III-style rule
    after their whole upper neighborhood was already ranked (expected 0;
    each is a recovered w.h.p. failure). *)

(** {1 Standalone run (tests, experiment E4)} *)

type outcome = {
  rounds : int;
  parents : int array;
  ranks : int array;
  parent_rank : int array;
  epoch_history : (int * int) list;
}

val run_standalone :
  ?detection:Engine.detection ->
  ?engine:Engine.mode ->
  ?metrics:Rn_obs.Metrics.t ->
  rng:Rng.t ->
  params:Params.t ->
  graph:Rn_graph.Graph.t ->
  reds:int array ->
  blues:int array ->
  blue_ranks:int array ->
  unit ->
  outcome
(** Solve a single level pair on [graph] where [blue_ranks] gives each
    blue's (already final) rank; node ids index [blue_ranks] directly.
    [metrics], when given, records each round under the phase annotation
    [epoch] — Lemma 2.4's shrinkage unit (epoch survivor counts themselves
    are in [epoch_history]). *)
