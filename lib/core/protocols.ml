(* Registry population: one [Rn_radio.Registry.entry] per pipeline.

   This is the single source of truth behind rbcast's [--proto]
   enumeration, bench's registry sweep, and test_contracts' injection
   harness.  rblint rule R14 (DESIGN.md §13) checks the converse: every
   engine-driving pipeline in lib/ must be reachable from one of the
   [Registry.register] calls below. *)

open Rn_util
open Rn_graph
open Rn_coding
open Rn_radio

let k_or = function Some k -> k | None -> 8

let stat_details (s : Engine.stats) =
  [
    ("transmissions", string_of_int s.Engine.transmissions);
    ("deliveries", string_of_int s.Engine.deliveries);
    ("collisions", string_of_int s.Engine.collisions);
  ]

let all_received a = Array.for_all (fun r -> r >= 0) a

let decay_entry =
  {
    Registry.name = "decay";
    summary = "classic Decay broadcast (Bar-Yehuda-Goldreich-Itai baseline)";
    multi = false;
    traceable = true;
    silence_pure = true;
    caps = { Registry.dense = true; sparse = true; sharded = true; offers_hint = false };
    run =
      (fun ?k:_ ?engine ?metrics ~seed ~graph ~source () ->
        let rng = Rng.create ~seed in
        let r = Decay.broadcast ?engine ?metrics ~rng ~graph ~source () in
        {
          Registry.rounds = Engine.rounds_of_outcome r.Decay.outcome;
          delivered = all_received r.Decay.received_round;
          details = stat_details r.Decay.stats;
        });
  }

let cr_entry =
  {
    Registry.name = "cr";
    summary = "Czumaj-Rytter Decay variant driven by the diameter estimate";
    multi = false;
    traceable = true;
    silence_pure = true;
    caps = { Registry.dense = true; sparse = true; sharded = false; offers_hint = false };
    run =
      (fun ?k:_ ?engine ?metrics ~seed ~graph ~source () ->
        let rng = Rng.create ~seed in
        let diameter = Bfs.eccentricity graph source in
        let r =
          Baselines.cr_broadcast ?engine ?metrics ~rng ~graph ~source ~diameter ()
        in
        {
          Registry.rounds = Engine.rounds_of_outcome r.Decay.outcome;
          delivered = all_received r.Decay.received_round;
          details = stat_details r.Decay.stats;
        });
  }

let mmv_entry =
  {
    Registry.name = "mmv";
    summary = "level-keyed MMV Decay schedule of Lemma 3.2 (needs BFS levels)";
    multi = false;
    traceable = false;
    silence_pure = true;
    caps = { Registry.dense = true; sparse = false; sharded = false; offers_hint = false };
    run =
      (fun ?k:_ ?engine:_ ?metrics:_ ~seed ~graph ~source () ->
        let rng = Rng.create ~seed in
        let levels = Bfs.levels graph ~src:source in
        let r = Decay.mmv_broadcast ~rng ~graph ~levels ~source () in
        {
          Registry.rounds = Engine.rounds_of_outcome r.Decay.outcome;
          delivered = all_received r.Decay.received_round;
          details = stat_details r.Decay.stats;
        });
  }

let gst_entry =
  {
    Registry.name = "gst";
    summary = "GST schedule broadcast over a centralized tree (known topology)";
    multi = false;
    traceable = true;
    silence_pure = true;
    caps = { Registry.dense = true; sparse = true; sharded = false; offers_hint = true };
    run =
      (fun ?k:_ ?engine ?metrics ~seed ~graph ~source () ->
        let rng = Rng.create ~seed in
        let gst = Gst.build_centralized ~graph ~roots:[| source |] () in
        let vd = Gst.virtual_distances gst in
        let msgs = [| Bitvec.random rng 32 |] in
        let r =
          Gst_broadcast.run ?engine ?metrics ~rng ~gst ~vd ~msgs
            ~sources:[| source |] ()
        in
        {
          Registry.rounds = r.Gst_broadcast.rounds;
          delivered = all_received r.Gst_broadcast.decode_round && r.Gst_broadcast.payloads_ok;
          details =
            ("payloads_ok", string_of_bool r.Gst_broadcast.payloads_ok)
            :: stat_details r.Gst_broadcast.stats;
        });
  }

let thm11_entry =
  {
    Registry.name = "thm11";
    summary = "Theorem 1.1 single-message broadcast (layering + GST + rings)";
    multi = false;
    traceable = false;
    (* The GST construction's self-test phase treats Silence as evidence
       (rblint:allow R11 in gst_distributed.ml), so spurious Silence
       injection legitimately perturbs this pipeline. *)
    silence_pure = false;
    caps = { Registry.dense = true; sparse = true; sharded = false; offers_hint = true };
    run =
      (fun ?k:_ ?engine ?metrics:_ ~seed ~graph ~source () ->
        let rng = Rng.create ~seed in
        let r = Single_broadcast.run ?engine ~rng ~graph ~source () in
        {
          Registry.rounds = r.Single_broadcast.rounds_total;
          delivered = r.Single_broadcast.delivered;
          details =
            [
              ("rounds_layering", string_of_int r.Single_broadcast.rounds_layering);
              ("rounds_construction", string_of_int r.Single_broadcast.rounds_construction);
              ("rounds_broadcast", string_of_int r.Single_broadcast.rounds_broadcast);
              ("ring_count", string_of_int r.Single_broadcast.ring_count);
            ];
        });
  }

let estimate_entry =
  {
    Registry.name = "estimate";
    summary = "beep-wave diameter 2-approximation (footnote 2)";
    multi = false;
    traceable = false;
    silence_pure = true;
    caps = { Registry.dense = true; sparse = false; sharded = false; offers_hint = false };
    run =
      (fun ?k:_ ?engine:_ ?metrics:_ ~seed:_ ~graph ~source () ->
        let r = Diameter_estimate.run ~graph ~source () in
        {
          Registry.rounds = r.Diameter_estimate.rounds;
          delivered = r.Diameter_estimate.estimate >= r.Diameter_estimate.eccentricity;
          details =
            [
              ("estimate", string_of_int r.Diameter_estimate.estimate);
              ("eccentricity", string_of_int r.Diameter_estimate.eccentricity);
            ];
        });
  }

let gst_dist_entry =
  {
    Registry.name = "gst-dist";
    summary = "distributed GST construction (Theorem 2.1, pipelined)";
    multi = false;
    traceable = false;
    (* Same self-test caveat as thm11. *)
    silence_pure = false;
    caps = { Registry.dense = true; sparse = true; sharded = false; offers_hint = true };
    run =
      (fun ?k:_ ?engine ?metrics:_ ~seed ~graph ~source () ->
        let rng = Rng.create ~seed in
        let r =
          Gst_distributed.construct ?engine ~learn_vd:true ~rng ~graph
            ~roots:[| source |] ()
        in
        {
          Registry.rounds = r.Gst_distributed.total_rounds;
          delivered =
            (match Gst.validate r.Gst_distributed.gst with
            | Ok () -> true
            | Error _ -> false);
          details =
            [
              ("layering_rounds", string_of_int r.Gst_distributed.layering_rounds);
              ("assignment_rounds", string_of_int r.Gst_distributed.assignment_rounds);
              ("selftest_rounds", string_of_int r.Gst_distributed.selftest_rounds);
              ("vd_rounds", string_of_int r.Gst_distributed.vd_rounds);
            ];
        });
  }

let known_entry =
  {
    Registry.name = "known";
    summary = "Theorem 1.2 k-message broadcast (known topology)";
    multi = true;
    traceable = false;
    silence_pure = true;
    caps = { Registry.dense = true; sparse = true; sharded = false; offers_hint = true };
    run =
      (fun ?k ?engine ?metrics:_ ~seed ~graph ~source () ->
        let rng = Rng.create ~seed in
        let r = Multi_broadcast.known ?engine ~rng ~graph ~source ~k:(k_or k) () in
        {
          Registry.rounds = r.Multi_broadcast.rounds;
          delivered = r.Multi_broadcast.delivered;
          details = [ ("payloads_ok", string_of_bool r.Multi_broadcast.payloads_ok) ];
        });
  }

let unknown_entry =
  {
    Registry.name = "unknown";
    summary = "Theorem 1.3 k-message broadcast (unknown topology)";
    multi = true;
    traceable = false;
    (* Uses the distributed GST construction; see thm11. *)
    silence_pure = false;
    caps = { Registry.dense = true; sparse = true; sharded = false; offers_hint = true };
    run =
      (fun ?k ?engine ?metrics:_ ~seed ~graph ~source () ->
        let rng = Rng.create ~seed in
        let r = Multi_broadcast.unknown ?engine ~rng ~graph ~source ~k:(k_or k) () in
        {
          Registry.rounds = r.Multi_broadcast.rounds_total;
          delivered = r.Multi_broadcast.delivered;
          details =
            [
              ("ring_count", string_of_int r.Multi_broadcast.ring_count);
              ("batch_count", string_of_int r.Multi_broadcast.batch_count);
              ("epochs", string_of_int r.Multi_broadcast.epochs);
              ("payloads_ok", string_of_bool r.Multi_broadcast.payloads_ok);
            ];
        });
  }

let routing_entry =
  {
    Registry.name = "routing";
    summary = "per-message routing baseline for k-message broadcast";
    multi = true;
    traceable = false;
    silence_pure = true;
    caps = { Registry.dense = true; sparse = false; sharded = false; offers_hint = false };
    run =
      (fun ?k ?engine:_ ?metrics:_ ~seed ~graph ~source () ->
        let rng = Rng.create ~seed in
        let r = Baselines.routing_multi ~rng ~graph ~source ~k:(k_or k) () in
        {
          Registry.rounds = r.Baselines.rounds;
          delivered = r.Baselines.delivered;
          details = stat_details r.Baselines.stats;
        });
  }

let sequential_entry =
  {
    Registry.name = "sequential";
    summary = "k sequential Decay broadcasts baseline";
    multi = true;
    traceable = false;
    silence_pure = true;
    caps = { Registry.dense = true; sparse = false; sharded = false; offers_hint = false };
    run =
      (fun ?k ?engine:_ ?metrics:_ ~seed ~graph ~source () ->
        let rng = Rng.create ~seed in
        let r = Baselines.sequential_multi ~rng ~graph ~source ~k:(k_or k) () in
        {
          Registry.rounds = r.Baselines.rounds;
          delivered = r.Baselines.delivered;
          details = stat_details r.Baselines.stats;
        });
  }

let registered = Atomic.make false

let ensure_registered () =
  if not (Atomic.exchange registered true) then
    List.iter Registry.register
      [
        decay_entry; cr_entry; mmv_entry; gst_entry; thm11_entry;
        estimate_entry; gst_dist_entry; known_entry; unknown_entry;
        routing_entry; sequential_entry;
      ]
