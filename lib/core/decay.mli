(** The Decay protocol of Bar-Yehuda, Goldreich and Itai (BGI) [2].

    Decay is the standard randomized technique for coping with collisions:
    rounds are grouped into phases of [⌈log n⌉] rounds and in the i-th
    round of a phase every participating node transmits independently with
    probability 2^{-i}.  Lemma 2.2: whichever the set of participating
    neighbors, a listener receives something in a phase with probability
    ≥ 1/8, hence Θ(log n) phases deliver w.h.p.

    This module provides
    - the probability ladder used as a building block by every construction
      in the paper,
    - the classic single-message Decay broadcast
      (the [O(D log n + log² n)] baseline of §1.3),
    - a truncated-ladder variant that serves as the Czumaj–Rytter /
      Kowalski–Pelc [O(D log(n/D) + log² n)] stand-in (see DESIGN.md §4),
    - the multi-message-viable Decay schedule of §3.1 (Lemma 3.2), in which
      prompted nodes that do not yet have the message transmit noise. *)

open Rn_util
open Rn_radio

val probability : ladder:int -> int -> float
(** [probability ~ladder r] is the transmit probability in round [r] of a
    Decay schedule whose phase cycles through exponents 1 … [ladder]:
    [2^{-((r mod ladder) + 1)}]. *)

type result = {
  outcome : Engine.outcome;
  received_round : int array;
      (** first round in which each node held the message; [-1] = never,
          [0] = source *)
  stats : Engine.stats;
}

val broadcast :
  ?params:Params.t ->
  ?ladder:int ->
  ?detection:Engine.detection ->
  ?max_rounds:int ->
  ?faults:Faults.spec ->
  ?domains:int ->
  ?engine:Engine.mode ->
  ?metrics:Rn_obs.Metrics.t ->
  rng:Rng.t ->
  graph:Rn_graph.Graph.t ->
  source:int ->
  unit ->
  result
(** Classic Decay broadcast: every node holding the message participates in
    every phase; delivery to all nodes w.h.p. in [O(D log n + log² n)]
    rounds.  [ladder] defaults to [⌈log n⌉]; passing a smaller ladder gives
    the truncated variant (progress [O(log(n/D))] per hop when layer degrees
    are ≤ n/D).  Collision detection is irrelevant to Decay; the default is
    [No_collision_detection] as in [2].

    [domains], when given, runs the round loop on {!Engine_sharded} with
    that shard count — bit-identical results to the serial default for any
    [domains ≥ 1] (the protocol's callbacks touch only per-node state; the
    completion count is atomic).  This is the E-scale workload.

    [engine] (default [Sparse]) picks the serial round path when [domains]
    is absent: {!Engine_sparse.run} elides the per-round silence
    deliveries (Decay ignores them), [Dense] is the {!Engine.run}
    reference.  Identical results either way; no skip hint is offered
    because informed nodes draw a coin every round.

    [metrics], when given, records every round into the registry with the
    phase annotation [round / ladder] (Lemma 2.2's unit — set from
    [after_round], never from the parallel deliver phase) and, after the
    run, folds each non-source node's first-receive round into the
    registry's histogram — create the registry with
    [~hist_width:ladder] to make the histogram a per-phase first-receive
    count.  Identical registry contents for serial and any [domains]. *)

val cr_ladder : n:int -> diameter:int -> int
(** The truncated ladder [⌈log(n/D)⌉ + 1] used by the Czumaj–Rytter-style
    baseline. *)

val mmv_broadcast :
  ?params:Params.t ->
  ?noising:bool ->
  ?max_rounds:int ->
  rng:Rng.t ->
  graph:Rn_graph.Graph.t ->
  levels:int array ->
  source:int ->
  unit ->
  result
(** The level-keyed Decay schedule of Lemma 3.2: a node at BFS level [l] is
    prompted only in rounds [r ≡ l + 1 (mod 3)], with probability
    [2^{-((r - l - 1)/3 mod ⌈log n⌉)}].  With [noising = true] (default)
    prompted nodes without the message send noise — the MMV framework of
    Definition 3.1; with [noising = false] they stay silent (classic
    behaviour), the comparison point for experiment E7. *)
