open Rn_util
open Rn_graph
open Rn_coding

type ring_choice = Auto | Ring_count of int | Ring_width of int

type result = {
  delivered : bool;
  rounds_total : int;
  rounds_layering : int;
  rounds_construction : int;
  rounds_broadcast : int;
  ring_count : int;
  ring_width : int;
  received : bool array;
}

let ring_width_of ~depth = function
  | Ring_width w ->
      if w < 1 then invalid_arg "Single_broadcast: ring width must be >= 1";
      w
  | Ring_count c ->
      if c < 1 then invalid_arg "Single_broadcast: ring count must be >= 1";
      max 1 (Ilog.cdiv (depth + 1) c)
  | Auto ->
      (* Balance construction cost (∝ width) against handoff cost
         (∝ count): √D rings.  See the module documentation. *)
      let count = max 1 (Ilog.isqrt (max 1 depth)) in
      max 1 (Ilog.cdiv (depth + 1) count)

let run ?(rings = Auto) ?(params = Params.default)
    ?(construction_mode = Gst_distributed.Pipelined)
    ?(estimate_diameter = false) ?(engine = Rn_radio.Engine.Sparse) ~rng
    ~graph ~source () =
  let n = Graph.n graph in
  if n = 0 then invalid_arg "Single_broadcast.run: empty graph";
  (* Phase 1: collision-detection layering — either the D-round wave alone
     (when a constant-factor D bound is assumed known, the model default)
     or the footnote-2 estimator, which costs O(D) and also layers. *)
  let levels, layering_rounds, depth_bound =
    if estimate_diameter then begin
      let e = Diameter_estimate.run ~graph ~source () in
      (e.Diameter_estimate.levels, e.Diameter_estimate.rounds,
       e.Diameter_estimate.estimate)
    end
    else begin
      let wave = Layering.collision_wave ~graph ~sources:[| source |] () in
      (wave.Layering.levels, wave.Layering.rounds,
       Bfs.max_level wave.Layering.levels)
    end
  in
  let width = ring_width_of ~depth:depth_bound rings in
  let rings_t = Rings.decompose ~levels ~width in
  let count = rings_t.Rings.count in
  (* Phase 2: per-ring GST construction, rings in parallel. *)
  let ring_results =
    List.init count (fun j ->
        let roots = Rings.roots rings_t j in
        let local = Rings.ring_levels rings_t j in
        Gst_distributed.construct ~mode:construction_mode
          ~layering:(Gst_distributed.Given_layering local) ~learn_vd:true
          ~params ~engine ~rng:(Rng.split rng) ~graph ~roots ())
  in
  let rounds_construction =
    Rings.charged_parallel_rounds
      (List.map (fun r -> r.Gst_distributed.total_rounds) ring_results)
  in
  (* Phase 3: ring-by-ring dissemination. *)
  let msg = [| Bitvec.random rng 32 |] in
  let received = Array.make n false in
  received.(source) <- true;
  let rounds_broadcast = ref 0 in
  let ok = ref true in
  List.iteri
    (fun j r ->
      if !ok then begin
        let roots = Rings.roots rings_t j in
        if not (Array.for_all (fun v -> received.(v)) roots) then ok := false
        else begin
          let gst = r.Gst_distributed.gst in
          let b =
            Gst_broadcast.run ~params ~engine ~rng:(Rng.split rng) ~gst
              ~vd:r.Gst_distributed.vd ~msgs:msg ~sources:roots ()
          in
          rounds_broadcast := !rounds_broadcast + b.Gst_broadcast.rounds;
          (match b.Gst_broadcast.outcome with
          | Rn_radio.Engine.Completed _ ->
              Array.iteri
                (fun v dr -> if dr >= 0 then received.(v) <- true)
                b.Gst_broadcast.decode_round
          | Rn_radio.Engine.Out_of_budget _ -> ok := false);
          if !ok && j + 1 < count then begin
            let holders = Rings.outer_boundary rings_t j in
            let receivers = Rings.roots rings_t (j + 1) in
            let h =
              Rings.handoff_single ~params ~engine ~rng:(Rng.split rng) ~graph
                ~holders ~receivers ()
            in
            rounds_broadcast := !rounds_broadcast + h.Rings.rounds;
            if h.Rings.delivered then
              Array.iter (fun v -> received.(v) <- true) receivers
            else ok := false
          end
        end
      end)
    ring_results;
  let delivered = !ok && Array.for_all (fun b -> b) received in
  {
    delivered;
    rounds_total = layering_rounds + rounds_construction + !rounds_broadcast;
    rounds_layering = layering_rounds;
    rounds_construction;
    rounds_broadcast = !rounds_broadcast;
    ring_count = count;
    ring_width = width;
    received;
  }
