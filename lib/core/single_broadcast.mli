(** Theorem 1.1: single-message broadcast in unknown topology with
    collision detection, in [O(D + log⁶ n)] rounds w.h.p.

    The pipeline of §2.3:

    + a {e collision wave} computes the BFS layering in exactly [D] rounds
      (the only step that needs collision detection);
    + the graph is decomposed into rings of consecutive layers;
    + a GST forest is built inside every ring {e in parallel} (even/odd
      rings alternate rounds; cost charged as twice the slowest ring);
    + the message travels ring by ring: inside a ring along the GST
      schedule ([O(width + log² n)]), across boundaries by Decay
      ([O(log² n)]).

    The ring count trades construction cost (∝ width) against handoff
    cost (∝ count); the paper picks [log⁴ n] rings so both sides are
    [O(D) + polylog].  At simulation scale the hidden constants differ, so
    [`Auto] balances the measured costs with [√D] rings; the benchmark E1
    sweeps this choice.  Either way the total stays [c·D + polylog(n)] —
    the additive-in-[D] shape that separates this algorithm from the
    [D·log] baselines. *)

open Rn_util

type ring_choice = Auto | Ring_count of int | Ring_width of int

type result = {
  delivered : bool;
  rounds_total : int;
  rounds_layering : int;
  rounds_construction : int;  (** charged parallel cost, 2 × slowest ring *)
  rounds_broadcast : int;  (** in-ring broadcasts plus boundary handoffs *)
  ring_count : int;
  ring_width : int;
  received : bool array;
}

val run :
  ?rings:ring_choice ->
  ?params:Params.t ->
  ?construction_mode:Gst_distributed.mode ->
  ?estimate_diameter:bool ->
  ?engine:Rn_radio.Engine.mode ->
  rng:Rng.t ->
  graph:Rn_graph.Graph.t ->
  source:int ->
  unit ->
  result
(** Requires a connected graph; every node must end up with the message
    ([delivered] reports it, and [received] the per-node outcome).

    [engine] (default [Sparse]) selects the round path for every phase of
    the pipeline — construction, in-ring GST broadcasts and boundary
    handoffs all run on {!Rn_radio.Engine_sparse} with frontier active
    sets and silent-round skipping; pass [Dense] for the reference
    full-scan path.  Outcomes, round counts and statistics are identical
    either way (DESIGN.md §12); only the collision wave stays dense (it
    is [D] rounds with every awake node acting).

    With [estimate_diameter = true] the run starts with the footnote-2
    beep-wave estimator ({!Diameter_estimate}), sizes the rings from the
    returned 2-approximation instead of the exact depth, and charges the
    estimator's rounds to [rounds_layering] — the fully assumption-free
    version of Theorem 1.1 (nodes need to know nothing about [D]). *)
