open Rn_graph
open Rn_radio

type result = {
  estimate : int;
  eccentricity : int;
  rounds : int;
  levels : int array;
}

(* One guess: forward wave (rounds 0..T-1), coverage probe (round T),
   aligned echo (rounds T+1..2T+1).  Returns (levels, too_small). *)
let run_guess ~graph ~source ~t =
  let n = Graph.n graph in
  let level = Array.make n (-1) in
  level.(source) <- 0;
  let boundary_hit = Array.make n false in
  let echo = Array.make n false in
  let source_heard_echo = Atomic.make false in
  let decide ~round ~node =
    if round < t then
      (* Forward wave: level l beeps exactly in round l. *)
      if level.(node) = round then Engine.Transmit Cmsg.Beacon
      else if level.(node) < 0 then Engine.Listen
      else Engine.Sleep
    else if round = t then
      (* Coverage probe: the unreached beep, the reached listen. *)
      if level.(node) < 0 then Engine.Transmit Cmsg.Beacon else Engine.Listen
    else begin
      (* Echo: level l owns slot 2T+1-l, deeper levels first. *)
      let l = level.(node) in
      if l < 0 then Engine.Sleep
      else if round = (2 * t) + 1 - l then begin
        if boundary_hit.(node) || echo.(node) then Engine.Transmit Cmsg.Beacon
        else Engine.Sleep
      end
      else if round = (2 * t) - l then Engine.Listen (* the deeper slot *)
      else Engine.Sleep
    end
  in
  let deliver ~round ~node reception =
    match reception with
    | Engine.Silence -> ()
    | Engine.Received _ | Engine.Collision ->
        if round < t then begin
          if level.(node) < 0 then level.(node) <- round + 1
        end
        else if round = t then boundary_hit.(node) <- true
        else begin
          (* Hearing anything in the slot just below ours relays the bit. *)
          let l = level.(node) in
          if l >= 0 && round = (2 * t) - l then begin
            echo.(node) <- true;
            if node = source then Atomic.set source_heard_echo true
          end
        end
  in
  ignore
    (Engine.run ~graph ~detection:Engine.Collision_detection
       ~protocol:{ Engine.decide; deliver }
       ~stop:(fun ~round:_ -> false)
       ~max_rounds:((2 * t) + 2)
       ());
  let too_small =
    Atomic.get source_heard_echo
    || (* the source itself may border the uncovered region *)
    boundary_hit.(source)
  in
  (level, too_small)

let run ?max_rounds ~graph ~source () =
  let n = Graph.n graph in
  if n = 0 then invalid_arg "Diameter_estimate.run: empty graph";
  let eccentricity = Bfs.eccentricity graph source in
  let max_rounds = match max_rounds with Some m -> m | None -> 16 * (n + 4) in
  let rec go t spent =
    if spent > max_rounds then
      failwith "Diameter_estimate: no convergence (disconnected graph?)";
    let levels, too_small = run_guess ~graph ~source ~t in
    let spent = spent + (2 * t) + 2 in
    if too_small then go (2 * t) spent
    else { estimate = t; eccentricity; rounds = spent; levels }
  in
  go 1 0
