(** Distributed BFS layerings.

    Two ways for every node to learn its BFS level (distance to the
    source(s)):

    - {!decay_bfs} (§2.2.2, no collision detection): [D] epochs of
      [Θ(log n)] Decay phases; the epoch in which a node first receives a
      probe is its level.  [O(D log² n)] rounds.
    - {!collision_wave} (§2.3, requires collision detection): the source
      transmits every round and every node starts transmitting the round
      after it first hears {e anything} — a message or the collision symbol
      ⊤.  The wavefront advances one hop per round, so the layering takes
      exactly [D] rounds.  This [Θ(log² n)]-factor gap is what makes the
      collision-detection model faster here. *)

open Rn_util
open Rn_radio

type result = {
  levels : int array;  (** [-1] if the node was never reached *)
  rounds : int;
  stats : Engine.stats;
}

val decay_bfs :
  ?params:Params.t ->
  ?max_rounds:int ->
  ?engine:Engine.mode ->
  rng:Rng.t ->
  graph:Rn_graph.Graph.t ->
  sources:int array ->
  unit ->
  result

val collision_wave :
  ?max_rounds:int ->
  graph:Rn_graph.Graph.t ->
  sources:int array ->
  unit ->
  result
(** Deterministic; needs no randomness.  Runs under
    [Collision_detection]. *)
