(** Ring decomposition and boundary handoffs (§2.3, §3.4).

    After a BFS layering, the graph is cut into rings of [width]
    consecutive layers around the source.  GSTs for different rings are
    built {e in parallel}: rings two apart share no edges, so even and odd
    rings alternate rounds and the wall-clock cost is twice the slowest
    ring — the accounting used by {!charged_parallel_rounds}.

    Messages cross from the outer boundary of ring [j] to the inner
    boundary (the GST roots) of ring [j+1] by Decay: plainly for a single
    message, or FEC-coded for a batch (each boundary holder transmits
    fresh random GF(2) combinations until every receiver can decode —
    the paper's Θ(k′)-packet forward error correction). *)

open Rn_util
open Rn_coding
open Rn_radio

type t = {
  levels : int array;  (** the global BFS layering *)
  width : int;
  count : int;
  ring_of : int array;  (** ring index per node; [-1] if unreachable *)
}

val decompose : levels:int array -> width:int -> t
(** [width ≥ 1]; rings are [\[j·width, (j+1)·width)] layer bands. *)

val ring_levels : t -> int -> int array
(** Ring-local levels for ring [j] ([-1] outside the ring). *)

val roots : t -> int -> int array
(** Inner-boundary nodes of ring [j] (its GST forest roots). *)

val outer_boundary : t -> int -> int array
(** Nodes of the last layer of ring [j] (empty if the ring is shallower
    than [width], i.e. the outermost ring). *)

val charged_parallel_rounds : int list -> int
(** Wall-clock rounds for running the listed per-ring round counts in
    parallel with even/odd interleaving: [2 × max] (0 for the empty
    list). *)

type handoff_result = { rounds : int; delivered : bool }

val handoff_single :
  ?params:Params.t ->
  ?engine:Engine.mode ->
  rng:Rng.t ->
  graph:Rn_graph.Graph.t ->
  holders:int array ->
  receivers:int array ->
  unit ->
  handoff_result
(** One message crosses a ring boundary: [holders] run Decay phases until
    every receiver has heard it ([O(log² n)] w.h.p.). *)

val handoff_fec :
  ?params:Params.t ->
  ?engine:Engine.mode ->
  rng:Rng.t ->
  graph:Rn_graph.Graph.t ->
  holders:int array ->
  receivers:int array ->
  msgs:Bitvec.t array ->
  unit ->
  handoff_result * Bitvec.t array option
(** A batch of [k′] messages crosses a boundary: holders transmit fresh
    random FEC combinations through Decay until every receiver decodes;
    returns the decoded batch of the first receiver (equal to [msgs] on
    success). *)
