open Rn_util
open Rn_graph
open Rn_coding
open Rn_radio

type t = {
  levels : int array;
  width : int;
  count : int;
  ring_of : int array;
}

let decompose ~levels ~width =
  if width < 1 then invalid_arg "Rings.decompose: width must be >= 1";
  let depth = Bfs.max_level levels in
  let count = if depth < 0 then 0 else (depth / width) + 1 in
  let ring_of =
    Array.map (fun l -> if l < 0 then -1 else l / width) levels
  in
  { levels; width; count; ring_of }

let ring_levels t j =
  Array.mapi
    (fun v l -> if t.ring_of.(v) = j then l - (j * t.width) else -1)
    t.levels

let nodes_with t f =
  let acc = ref [] in
  Array.iteri (fun v _ -> if f v then acc := v :: !acc) t.levels;
  Array.of_list (List.rev !acc)

let roots t j = nodes_with t (fun v -> t.ring_of.(v) = j && t.levels.(v) = j * t.width)

let outer_boundary t j =
  nodes_with t (fun v -> t.levels.(v) = (((j + 1) * t.width) - 1))

let charged_parallel_rounds rounds =
  match rounds with [] -> 0 | l -> 2 * List.fold_left max 0 l

type handoff_result = { rounds : int; delivered : bool }

(* Shared Decay loop for both handoff flavours: [payload] builds the packet
   a holder sends when its coin comes up; [receive] consumes a clean
   reception and returns true once that receiver is satisfied. *)
let decay_handoff ~params ~engine ~rng ~graph ~holders ~receivers ~payload
    ~receive ~satisfied () =
  let n = Graph.n graph in
  let ladder = Params.phase_len ~n in
  let node_rng = Rng.split_n rng n in
  let is_holder = Array.make n false in
  Array.iter (fun v -> is_holder.(v) <- true) holders;
  let is_receiver = Array.make n false in
  Array.iter (fun v -> is_receiver.(v) <- true) receivers;
  let missing = Atomic.make 0 in
  Array.iter (fun v -> if not (satisfied v) then Atomic.incr missing) receivers;
  let decide ~round ~node =
    if is_holder.(node) then begin
      let p = 1.0 /. float_of_int (1 lsl min ((round mod ladder) + 1) 62) in
      if Rng.bernoulli node_rng.(node) p then Engine.Transmit (payload node)
      else Engine.Listen
    end
    else if is_receiver.(node) && not (satisfied node) then Engine.Listen
    else Engine.Sleep
  in
  let deliver ~round:_ ~node reception =
    match reception with
    | Engine.Received msg ->
        if is_receiver.(node) && not (satisfied node) then
          if receive node msg then Atomic.decr missing
    | Engine.Silence | Engine.Collision -> ()
  in
  let budget =
    params.Params.max_round_factor * Params.whp_phases params ~n * ladder * 4
  in
  let protocol = { Engine.decide; deliver } in
  let stop ~round:_ = Atomic.get missing = 0 in
  (* Everyone else sleeps, so the awake set is the (static, disjoint)
     boundary populations; deduped defensively in case a caller passes
     overlapping sets.  No skip hint: holders draw a coin every round. *)
  let active_ids =
    let mark = Array.make n false in
    Array.iter (fun v -> mark.(v) <- true) holders;
    Array.iter (fun v -> mark.(v) <- true) receivers;
    let count = ref 0 in
    Array.iter (fun b -> if b then incr count) mark;
    let ids = Array.make (max !count 1) 0 in
    let i = ref 0 in
    for v = 0 to n - 1 do
      if mark.(v) then begin
        ids.(!i) <- v;
        incr i
      end
    done;
    (ids, !count)
  in
  let decide_active ~round:_ dst =
    let ids, count = active_ids in
    Array.blit ids 0 dst 0 count;
    count
  in
  let outcome =
    match engine with
    | Engine.Dense ->
        Engine.run ~graph ~detection:Engine.No_collision_detection ~protocol
          ~stop ~max_rounds:budget ()
    | Engine.Sparse ->
        Engine_sparse.run ~decide_active ~graph
          ~detection:Engine.No_collision_detection ~protocol ~stop
          ~max_rounds:budget ()
  in
  {
    rounds = Engine.rounds_of_outcome outcome;
    delivered = (match outcome with Engine.Completed _ -> true | _ -> false);
  }

let handoff_single ?(params = Params.default) ?(engine = Engine.Sparse) ~rng
    ~graph ~holders ~receivers () =
  if Array.length holders = 0 then { rounds = 0; delivered = false }
  else begin
    let got = Array.make (Graph.n graph) false in
    decay_handoff ~params ~engine ~rng ~graph ~holders ~receivers
      ~payload:(fun _ -> Cmsg.Beacon)
      ~receive:(fun v _ ->
        got.(v) <- true;
        true)
      ~satisfied:(fun v -> got.(v))
      ()
  end

type fec_msg = Fec_packet of Rlnc.packet

let handoff_fec ?(params = Params.default) ?(engine = Engine.Sparse) ~rng
    ~graph ~holders ~receivers ~msgs () =
  let k = Array.length msgs in
  if k = 0 then invalid_arg "Rings.handoff_fec: empty batch";
  let msg_len = Bitvec.length msgs.(0) in
  if Array.length holders = 0 then ({ rounds = 0; delivered = false }, None)
  else begin
    let n = Graph.n graph in
    let fec_rng = Rng.split_n rng n in
    let decoders = Array.init n (fun _ -> Rlnc.create ~k ~msg_len) in
    let result =
      decay_handoff ~params ~engine ~rng ~graph ~holders ~receivers
        ~payload:(fun v ->
          (* Fresh random combination per transmission — RLNC-grade FEC,
             at least as decodable as the paper's fixed Θ(k′) codebook. *)
          let pkts = Fec.encode fec_rng.(v) ~msgs ~count:1 in
          Fec_packet pkts.(0))
        ~receive:(fun v msg ->
          match msg with
          | Fec_packet p ->
              ignore (Rlnc.receive decoders.(v) p);
              Rlnc.can_decode decoders.(v))
        ~satisfied:(fun v -> Rlnc.can_decode decoders.(v))
        ()
    in
    let decoded =
      if Array.length receivers = 0 then Some (Array.map Bitvec.copy msgs)
      else Rlnc.decode decoders.(receivers.(0))
    in
    (result, decoded)
  end
