(** Distributed GST construction (Theorem 2.1, §2.2, and Lemma 3.10).

    Builds a gathering spanning tree (or forest, for ring bands) with only
    node-local knowledge and radio communication, in four phases:

    + {b Layering} — BFS levels via {!Layering} (Decay-based without
      collision detection, or the [D]-round collision wave with it), or a
      caller-provided layering (ring decompositions reuse one global
      layering).
    + {b Assignment} — one {!Bipartite_assignment} instance per level pair.
      [`Sequential] runs them one at a time, deepest first —
      [O(D log⁵ n)] rounds; [`Pipelined] (§2.2.4) interleaves all pairs,
      granting pair [l] the rounds [≡ l (mod 3)] and gating its rank-[i]
      phase on pair [l+1] having finished rank [i−1] — [O((D + log n)
      log⁴ n)] rounds.  (The paper interleaves two adjacent pairs in even /
      odd rounds; with every pair live at once, transmissions reach two
      levels away, so three round classes are needed — a constant-factor
      correction, see DESIGN.md.)
    + {b Wave-safety self-test} — 3·[⌈log n⌉] deterministic rounds in which
      all nodes of rank [r] in layer class [c] transmit their id; a node
      whose parent shares its rank but that does not hear {e exactly its
      parent} flags itself [head_override] (it knows its parent must have
      transmitted, so a silent round implies a collision even without
      collision detection).  This is the distributed form of
      {!Gst.repair_wave_safety}.
    + {b Virtual distances} (optional, Lemma 3.10) — nodes learn their
      distance in the virtual graph G′ by [2⌈log n⌉] rounds of alternating
      stretch sweeps and Decay relaxation, [O(D log² n + log³ n)] rounds.

    The returned {!Gst.t} is assembled from what nodes learned locally;
    {!Gst.validate} holds w.h.p. *)

open Rn_util
open Rn_radio

type mode = Sequential | Pipelined

type layering_spec =
  | Decay_layering
  | Collision_wave_layering
  | Given_layering of int array

type result = {
  gst : Gst.t;
  parent_rank : int array;
      (** each node's knowledge of its parent's rank ([-1] for roots) *)
  vd : int array;
      (** learned virtual distances ([-1] everywhere unless [learn_vd]) *)
  layering_rounds : int;
  assignment_rounds : int;
  selftest_rounds : int;
  vd_rounds : int;
  total_rounds : int;
  class_fixups : int;
  fallback_reactivations : int;
}

val construct :
  ?mode:mode ->
  ?layering:layering_spec ->
  ?learn_vd:bool ->
  ?params:Params.t ->
  ?detection:Engine.detection ->
  ?engine:Engine.mode ->
  rng:Rng.t ->
  graph:Rn_graph.Graph.t ->
  roots:int array ->
  unit ->
  result
(** Defaults: [mode = Pipelined], [layering = Decay_layering],
    [learn_vd = false], [detection = No_collision_detection] (the
    construction never needs CD; pass [Collision_wave_layering] together
    with [Collision_detection] for the Theorem 1.1 pipeline).

    [engine] (default [Sparse]) selects the round path for every phase.
    Under [Sparse] the assignment phase wakes only the level pairs of
    live bipartite blocks (a dormant — [Waiting] or finished — block's
    nodes all sleep) and fast-forwards rounds whose mod-3 slot has no
    live block; the self-test wakes one rank group per round and skips
    empty (rank, layer-class) slices; vd-learning wakes the sweeping
    level pair (stage 1, skipping levels with no potential transmitter)
    or the relaxation candidates (stage 2).  Results are identical to
    [Dense]: every excluded node's decide is a side-effect-free [Sleep],
    and every skipped round is provably silent — per-node RNG streams
    advance exactly as under the full scan (DESIGN.md §12).
    @raise Failure if a phase exhausts its round budget. *)
