open Rn_util
open Rn_graph
open Rn_radio

let decay_broadcast ?(params = Params.default) ?metrics ~rng ~graph ~source () =
  Decay.broadcast ~params ?metrics ~rng ~graph ~source ()

let cr_broadcast ?(params = Params.default) ?metrics
    ?(engine = Engine.Sparse) ~rng ~graph ~source ~diameter () =
  let n = Graph.n graph in
  if source < 0 || source >= n then invalid_arg "Baselines.cr_broadcast";
  let full = Params.phase_len ~n in
  let short = min full (Decay.cr_ladder ~n ~diameter) in
  (* Cycle: three truncated phases (fast progress at per-layer degrees
     <= n/D) then one full phase (resolves dense neighborhoods). *)
  let cycle = (3 * short) + full in
  let prob round =
    let r = round mod cycle in
    let e = if r < 3 * short then (r mod short) + 1 else r - (3 * short) + 1 in
    1.0 /. float_of_int (1 lsl min e 62)
  in
  let max_rounds = params.Params.max_round_factor * (n + 1) * full in
  let node_rng = Rng.split_n rng n in
  let received_round = Array.make n (-1) in
  received_round.(source) <- 0;
  let missing = Atomic.make (n - 1) in
  let decide ~round ~node =
    if received_round.(node) >= 0 then begin
      if Rng.bernoulli node_rng.(node) (prob round) then
        Engine.Transmit Cmsg.Probe
      else Engine.Listen
    end
    else Engine.Listen
  in
  let deliver ~round ~node reception =
    match reception with
    | Engine.Received Cmsg.Probe ->
        if received_round.(node) < 0 then begin
          received_round.(node) <- round;
          Atomic.decr missing
        end
    | Engine.Received _ | Engine.Silence | Engine.Collision -> ()
  in
  let stats = Engine.fresh_stats () in
  (* Phase annotation: one full short³+full cycle per phase id. *)
  let after_round =
    match metrics with
    | None -> None
    | Some m ->
        Rn_obs.Phase.enter m 0;
        Some
          (fun ~round -> Rn_obs.Phase.enter_of_round m ~len:cycle ~round:(round + 1))
  in
  let outcome =
    (* No active set or hint: every node may receive in any round, and the
       holders' probability ladder draws a coin every round. *)
    match engine with
    | Engine.Dense ->
        Engine.run ?metrics ?after_round ~stats ~graph
          ~detection:Engine.No_collision_detection
          ~protocol:{ Engine.decide; deliver }
          ~stop:(fun ~round:_ -> Atomic.get missing = 0)
          ~max_rounds ()
    | Engine.Sparse ->
        Engine_sparse.run ?metrics ?after_round ~stats ~graph
          ~detection:Engine.No_collision_detection
          ~protocol:{ Engine.decide; deliver }
          ~stop:(fun ~round:_ -> Atomic.get missing = 0)
          ~max_rounds ()
  in
  (match metrics with
  | None -> ()
  | Some m ->
      for v = 0 to n - 1 do
        if v <> source then Rn_obs.Metrics.observe_receive_round m received_round.(v)
      done);
  { Decay.outcome; received_round; stats }

type multi_result = {
  rounds : int;
  delivered : bool;
  complete_round : int array;
  stats : Engine.stats;
}

type routing_msg = Plain of int

let routing_multi ?(params = Params.default) ?max_rounds ~rng ~graph ~source
    ~k () =
  let n = Graph.n graph in
  if k < 1 then invalid_arg "Baselines.routing_multi";
  let ladder = Params.phase_len ~n in
  let max_rounds =
    match max_rounds with
    | Some m -> m
    | None -> params.Params.max_round_factor * (n + k) * ladder * 4
  in
  let node_rng = Rng.split_n rng n in
  let has = Array.make_matrix n k false in
  let count = Array.make n 0 in
  for i = 0 to k - 1 do
    has.(source).(i) <- true
  done;
  count.(source) <- k;
  let complete_round = Array.make n (-1) in
  complete_round.(source) <- 0;
  let missing = Atomic.make (n - 1) in
  let decide ~round ~node =
    if count.(node) = 0 then Engine.Listen
    else begin
      let p = 1.0 /. float_of_int (1 lsl min ((round mod ladder) + 1) 62) in
      if Rng.bernoulli node_rng.(node) p then begin
        (* Uniform choice among held messages: the classic store-and-forward
           forwarding rule. *)
        let pick = Rng.int node_rng.(node) count.(node) in
        let rec find i seen =
          if has.(node).(i) then
            if seen = pick then i else find (i + 1) (seen + 1)
          else find (i + 1) seen
        in
        Engine.Transmit (Plain (find 0 0))
      end
      else Engine.Listen
    end
  in
  let deliver ~round ~node reception =
    match reception with
    | Engine.Received (Plain i) ->
        if not has.(node).(i) then begin
          has.(node).(i) <- true;
          count.(node) <- count.(node) + 1;
          if count.(node) = k then begin
            complete_round.(node) <- round;
            Atomic.decr missing
          end
        end
    | Engine.Silence | Engine.Collision -> ()
  in
  let stats = Engine.fresh_stats () in
  let outcome =
    Engine.run ~stats ~graph ~detection:Engine.No_collision_detection
      ~protocol:{ Engine.decide; deliver }
      ~stop:(fun ~round:_ -> Atomic.get missing = 0)
      ~max_rounds ()
  in
  {
    rounds = Engine.rounds_of_outcome outcome;
    delivered = (match outcome with Engine.Completed _ -> true | _ -> false);
    complete_round;
    stats;
  }

let sequential_multi ?(params = Params.default) ~rng ~graph ~source ~k () =
  if k < 1 then invalid_arg "Baselines.sequential_multi";
  let n = Graph.n graph in
  let stats = Engine.fresh_stats () in
  let complete_round = Array.make n (-1) in
  let rec go i offset delivered =
    if i >= k then (offset, delivered)
    else begin
      let r = Decay.broadcast ~params ~rng:(Rng.split rng) ~graph ~source () in
      let rounds = Engine.rounds_of_outcome r.Decay.outcome in
      stats.Engine.rounds <- stats.Engine.rounds + r.Decay.stats.Engine.rounds;
      stats.Engine.transmissions <-
        stats.Engine.transmissions + r.Decay.stats.Engine.transmissions;
      stats.Engine.deliveries <-
        stats.Engine.deliveries + r.Decay.stats.Engine.deliveries;
      stats.Engine.collisions <-
        stats.Engine.collisions + r.Decay.stats.Engine.collisions;
      stats.Engine.busy_rounds <-
        stats.Engine.busy_rounds + r.Decay.stats.Engine.busy_rounds;
      let ok =
        match r.Decay.outcome with
        | Engine.Completed _ -> true
        | Engine.Out_of_budget _ -> false
      in
      if i = k - 1 then
        Array.iteri
          (fun v rr -> if rr >= 0 then complete_round.(v) <- offset + rr)
          r.Decay.received_round;
      go (i + 1) (offset + rounds) (delivered && ok)
    end
  in
  let total, delivered = go 0 0 true in
  { rounds = total; delivered; complete_round; stats }
