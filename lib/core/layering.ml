open Rn_util
open Rn_graph
open Rn_radio

type result = { levels : int array; rounds : int; stats : Engine.stats }

let decay_bfs ?(params = Params.default) ?max_rounds
    ?(engine = Engine.Sparse) ~rng ~graph ~sources () =
  let n = Graph.n graph in
  let ladder = Params.phase_len ~n in
  let epoch_len = Params.whp_phases params ~n * ladder in
  let max_rounds =
    match max_rounds with
    | Some m -> m
    | None -> params.Params.max_round_factor * (n + 2) * epoch_len
  in
  let node_rng = Rng.split_n rng n in
  let levels = Array.make n (-1) in
  Array.iter (fun s -> levels.(s) <- 0) sources;
  let labeled = Atomic.make (Array.length sources) in
  (* Nodes labeled during epoch [e] have level [e + 1]; they join the
     relays from the next epoch on. *)
  let epoch_of round = round / epoch_len in
  let decide ~round ~node =
    let lvl = levels.(node) in
    if lvl >= 0 && lvl <= epoch_of round then begin
      let i = (round mod ladder) + 1 in
      if Rng.bernoulli node_rng.(node) (1.0 /. float_of_int (1 lsl min i 62))
      then Engine.Transmit Cmsg.Probe
      else Engine.Listen
    end
    else if lvl < 0 then Engine.Listen
    else Engine.Sleep
  in
  let deliver ~round ~node reception =
    match reception with
    | Engine.Received Cmsg.Probe ->
        if levels.(node) < 0 then begin
          levels.(node) <- epoch_of round + 1;
          Atomic.incr labeled
        end
    | Engine.Received _ | Engine.Silence | Engine.Collision -> ()
  in
  let stats = Engine.fresh_stats () in
  let protocol = { Engine.decide; deliver } in
  let stop ~round = Atomic.get labeled = n && round mod epoch_len = 0 in
  (* finish on epoch boundary; no skip hint — labeled nodes draw a coin
     every round, so no round is statically silent. *)
  let outcome =
    match engine with
    | Engine.Dense ->
        Engine.run ~stats ~graph ~detection:Engine.No_collision_detection
          ~protocol ~stop ~max_rounds ()
    | Engine.Sparse ->
        Engine_sparse.run ~stats ~graph
          ~detection:Engine.No_collision_detection ~protocol ~stop ~max_rounds
          ()
  in
  { levels; rounds = Engine.rounds_of_outcome outcome; stats }

let collision_wave ?max_rounds ~graph ~sources () =
  let n = Graph.n graph in
  let max_rounds = match max_rounds with Some m -> m | None -> n + 1 in
  let levels = Array.make n (-1) in
  Array.iter (fun s -> levels.(s) <- 0) sources;
  let labeled = Atomic.make (Array.length sources) in
  let decide ~round ~node =
    let lvl = levels.(node) in
    if lvl >= 0 && lvl <= round then Engine.Transmit Cmsg.Beacon
    else if lvl < 0 then Engine.Listen
    else Engine.Sleep
  in
  let deliver ~round ~node reception =
    match reception with
    | Engine.Received _ | Engine.Collision ->
        if levels.(node) < 0 then begin
          levels.(node) <- round + 1;
          Atomic.incr labeled
        end
    | Engine.Silence -> ()
  in
  let stats = Engine.fresh_stats () in
  let outcome =
    Engine.run ~stats ~graph ~detection:Engine.Collision_detection
      ~protocol:{ Engine.decide; deliver }
      ~stop:(fun ~round:_ -> Atomic.get labeled = n)
      ~max_rounds ()
  in
  { levels; rounds = Engine.rounds_of_outcome outcome; stats }
