open Rn_util
open Rn_graph
open Rn_radio

let probability ~ladder r =
  if ladder < 1 then invalid_arg "Decay.probability";
  let i = (r mod ladder) + 1 in
  1.0 /. float_of_int (1 lsl min i 62)

type result = {
  outcome : Engine.outcome;
  received_round : int array;
  stats : Engine.stats;
}

type msg = Payload | Noise

let broadcast ?(params = Params.default) ?ladder
    ?(detection = Engine.No_collision_detection) ?max_rounds ?faults ?domains
    ?(engine = Engine.Sparse) ?metrics ~rng ~graph ~source () =
  let n = Graph.n graph in
  if source < 0 || source >= n then invalid_arg "Decay.broadcast: bad source";
  let ladder = match ladder with Some l -> l | None -> Params.phase_len ~n in
  let max_rounds =
    match max_rounds with
    | Some m -> m
    | None -> params.Params.max_round_factor * (n + 1) * Params.phase_len ~n
  in
  let node_rng = Rng.split_n rng n in
  let received_round = Array.make n (-1) in
  received_round.(source) <- 0;
  (* The only cross-node aggregate; atomic so the sharded engine's
     parallel deliver phase may decrement it from any lane.  Everything
     else the callbacks touch is per-node (own RNG stream, own
     received_round cell), which is exactly the Engine_sharded contract. *)
  let missing = Atomic.make (n - 1) in
  let decide ~round ~node =
    if received_round.(node) >= 0 then begin
      if Rng.bernoulli node_rng.(node) (probability ~ladder round) then
        Engine.Transmit Payload
      else Engine.Listen
    end
    else Engine.Listen
  in
  let deliver ~round ~node reception =
    match reception with
    | Engine.Received Payload ->
        if received_round.(node) < 0 then begin
          received_round.(node) <- round;
          Atomic.decr missing
        end
    | Engine.Received Noise | Engine.Silence | Engine.Collision -> ()
  in
  let protocol = { Engine.decide; deliver } in
  let protocol =
    match faults with
    | None -> protocol
    | Some { Faults.jammers; p } ->
        Faults.with_jammers ~rng:(Rng.split rng) ~jammers ~p ~noise:Noise
          protocol
  in
  let stats = Engine.fresh_stats () in
  let stop ~round:_ = Atomic.get missing = 0 in
  (* Phase annotation runs in [after_round] — coordinator-serial under both
     engines — so per-phase aggregation never touches the parallel deliver
     phase.  Round r belongs to Decay phase r/ladder (Lemma 2.2's unit). *)
  let after_round =
    match metrics with
    | None -> None
    | Some m ->
        Rn_obs.Phase.enter m 0;
        Some
          (fun ~round ->
            Rn_obs.Phase.enter_of_round m ~len:ladder ~round:(round + 1))
  in
  let outcome =
    match (domains, engine) with
    | Some d, _ ->
        Engine_sharded.run ~stats ?metrics ?after_round ~domains:d ~graph
          ~detection ~protocol ~stop ~max_rounds ()
    | None, Engine.Dense ->
        Engine.run ~stats ?metrics ?after_round ~graph ~detection ~protocol
          ~stop ~max_rounds ()
    | None, Engine.Sparse ->
        (* No skip hint: an informed node draws its coin every round, so no
           round is statically silent; the win is the elided silence
           deliveries and listener resets.  Decay's deliver ignores
           Silence, satisfying the sparse no-op contract. *)
        Engine_sparse.run ~stats ?metrics ?after_round ~graph ~detection
          ~protocol ~stop ~max_rounds ()
  in
  (match metrics with
  | None -> ()
  | Some m ->
      (* First-receive histogram; the source holds the message from the
         start rather than receiving it, so it is excluded. *)
      for v = 0 to n - 1 do
        if v <> source then
          Rn_obs.Metrics.observe_receive_round m received_round.(v)
      done);
  { outcome; received_round; stats }

let cr_ladder ~n ~diameter =
  if n < 1 || diameter < 0 then invalid_arg "Decay.cr_ladder";
  let ratio = max 2 (Ilog.cdiv n (max 1 diameter)) in
  Ilog.clog ratio + 1

let mmv_broadcast ?(params = Params.default) ?(noising = true) ?max_rounds ~rng
    ~graph ~levels ~source () =
  let n = Graph.n graph in
  if Array.length levels <> n then invalid_arg "Decay.mmv_broadcast: levels";
  let ladder = Params.phase_len ~n in
  let max_rounds =
    match max_rounds with
    | Some m -> m
    | None -> params.Params.max_round_factor * 3 * (n + 1) * ladder
  in
  let node_rng = Rng.split_n rng n in
  let received_round = Array.make n (-1) in
  received_round.(source) <- 0;
  let missing = Atomic.make (n - 1) in
  let decide ~round ~node =
    let l = levels.(node) in
    if l < 0 then Engine.Sleep
    else if round mod 3 = (l + 1) mod 3 then begin
      let step = (round - l - 1) / 3 in
      (* The paper's exponent is [step mod ⌈log n⌉] starting at 0; the
         probability-1 round (exponent 0) is what lets single-neighbor
         nodes receive deterministically. *)
      let e = ((step mod ladder) + ladder) mod ladder in
      let p = 1.0 /. float_of_int (1 lsl min e 62) in
      if Rng.bernoulli node_rng.(node) p then begin
        if received_round.(node) >= 0 then Engine.Transmit Payload
        else if noising then Engine.Transmit Noise
        else Engine.Listen
      end
      else Engine.Listen
    end
    else Engine.Listen
  in
  let deliver ~round ~node reception =
    match reception with
    | Engine.Received Payload ->
        if received_round.(node) < 0 then begin
          received_round.(node) <- round;
          Atomic.decr missing
        end
    | Engine.Received Noise | Engine.Silence | Engine.Collision -> ()
  in
  let stats = Engine.fresh_stats () in
  let outcome =
    Engine.run ~stats ~graph ~detection:Engine.No_collision_detection
      ~protocol:{ Engine.decide; deliver }
      ~stop:(fun ~round:_ -> Atomic.get missing = 0)
      ~max_rounds ()
  in
  { outcome; received_round; stats }
