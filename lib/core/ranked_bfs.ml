let children_lists ~parents =
  let n = Array.length parents in
  let children = Array.make n [] in
  Array.iteri
    (fun v p ->
      if p >= 0 then begin
        if p >= n then invalid_arg "Ranked_bfs: parent out of range";
        children.(p) <- v :: children.(p)
      end)
    parents;
  children

let order_by_level_desc ~levels =
  let n = Array.length levels in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> Int.compare levels.(b) levels.(a)) order;
  order

let ranks ~parents ~levels =
  let n = Array.length parents in
  if Array.length levels <> n then invalid_arg "Ranked_bfs.ranks";
  Array.iteri
    (fun v p ->
      if p >= 0 && levels.(v) >= 0 && levels.(p) <> levels.(v) - 1 then
        invalid_arg "Ranked_bfs.ranks: parent level must be child level - 1")
    parents;
  let children = children_lists ~parents in
  let rank = Array.make n 0 in
  let order = order_by_level_desc ~levels in
  (* Deepest levels first, so children are ranked before their parent. *)
  Array.iter
    (fun v ->
      if levels.(v) >= 0 then begin
        let in_tree = List.filter (fun c -> levels.(c) >= 0) children.(v) in
        match in_tree with
        | [] -> rank.(v) <- 1
        | cs ->
            let rmax = List.fold_left (fun acc c -> max acc rank.(c)) 0 cs in
            let count = List.length (List.filter (fun c -> rank.(c) = rmax) cs) in
            rank.(v) <- (if count >= 2 then rmax + 1 else rmax)
      end)
    order;
  rank

let max_rank ranks = Array.fold_left max 0 ranks

let subtree_sizes ~parents =
  let n = Array.length parents in
  let size = Array.make n 1 in
  (* Process nodes in reverse topological order: repeatedly push counted
     leaves upward.  A simple two-pass with explicit child counts avoids
     recursion depth issues on path graphs. *)
  let pending = Array.make n 0 in
  Array.iter (fun p -> if p >= 0 then pending.(p) <- pending.(p) + 1) parents;
  let queue = Queue.create () in
  for v = 0 to n - 1 do
    if pending.(v) = 0 then Queue.add v queue
  done;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    let p = parents.(v) in
    if p >= 0 then begin
      size.(p) <- size.(p) + size.(v);
      pending.(p) <- pending.(p) - 1;
      if pending.(p) = 0 then Queue.add p queue
    end
  done;
  size

let check_rank_rule ~parents ~ranks =
  let n = Array.length parents in
  if Array.length ranks <> n then invalid_arg "Ranked_bfs.check_rank_rule";
  let children = children_lists ~parents in
  let problem = ref None in
  Array.iteri
    (fun v cs ->
      if Option.is_none !problem && ranks.(v) > 0 then begin
        let ranked = List.filter (fun c -> ranks.(c) > 0) cs in
        let expected =
          match ranked with
          | [] -> 1
          | cs ->
              let rmax = List.fold_left (fun acc c -> max acc ranks.(c)) 0 cs in
              let count =
                List.length (List.filter (fun c -> ranks.(c) = rmax) cs)
              in
              if count >= 2 then rmax + 1 else rmax
        in
        if ranks.(v) <> expected then
          problem :=
            Some
              (Printf.sprintf "node %d has rank %d but the rule gives %d" v
                 ranks.(v) expected)
      end)
    children;
  match !problem with None -> Ok () | Some msg -> Error msg
