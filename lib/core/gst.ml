open Rn_graph
open Rn_util

type t = {
  graph : Graph.t;
  levels : int array;
  parents : int array;
  ranks : int array;
  head_override : bool array;
}

let make ~graph ~levels ~parents ~ranks ?head_override () =
  let n = Graph.n graph in
  let head_override =
    match head_override with Some h -> h | None -> Array.make n false
  in
  if
    Array.length levels <> n
    || Array.length parents <> n
    || Array.length ranks <> n
    || Array.length head_override <> n
  then invalid_arg "Gst.make: array length mismatch";
  { graph; levels; parents; ranks; head_override }

let in_forest t v = t.levels.(v) >= 0

let roots t =
  let acc = ref [] in
  Array.iteri
    (fun v l -> if l = 0 && t.parents.(v) < 0 then acc := v :: !acc)
    t.levels;
  Array.of_list (List.rev !acc)

let size t =
  Array.fold_left (fun acc l -> if l >= 0 then acc + 1 else acc) 0 t.levels

let is_stretch_head t v =
  in_forest t v
  && (t.parents.(v) < 0
     || t.head_override.(v)
     || t.ranks.(t.parents.(v)) <> t.ranks.(v))

let stretch_head_of t =
  let n = Graph.n t.graph in
  let head = Array.make n (-1) in
  let rec resolve v =
    if head.(v) >= 0 then head.(v)
    else begin
      let h = if is_stretch_head t v then v else resolve t.parents.(v) in
      head.(v) <- h;
      h
    end
  in
  for v = 0 to n - 1 do
    if in_forest t v then ignore (resolve v)
  done;
  head

let stretch_members t h =
  if not (is_stretch_head t h) then []
  else begin
    let heads = stretch_head_of t in
    let acc = ref [] in
    Array.iteri (fun v hv -> if hv = h then acc := v :: !acc) heads;
    List.rev !acc
  end

let virtual_distances t =
  let n = Graph.n t.graph in
  let heads = stretch_head_of t in
  (* Fast out-edges, grouped by head. *)
  let fast = Array.make n [] in
  Array.iteri
    (fun v h -> if h >= 0 && h <> v then fast.(h) <- v :: fast.(h))
    heads;
  let dist = Array.make n (-1) in
  let queue = Queue.create () in
  Array.iter
    (fun r ->
      dist.(r) <- 0;
      Queue.add r queue)
    (roots t);
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    let relax v =
      if in_forest t v && dist.(v) < 0 then begin
        dist.(v) <- dist.(u) + 1;
        Queue.add v queue
      end
    in
    Graph.iter_neighbors t.graph u relax;
    List.iter relax fast.(u)
  done;
  dist

(* ------------------------------------------------------------------ *)
(* Checkers                                                            *)

let check_structure t =
  let n = Graph.n t.graph in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let rec go v =
    if v >= n then Ok ()
    else if not (in_forest t v) then
      if t.ranks.(v) <> 0 then err "node %d outside forest has rank %d" v t.ranks.(v)
      else if t.parents.(v) >= 0 then err "node %d outside forest has a parent" v
      else go (v + 1)
    else if t.ranks.(v) < 1 then err "forest node %d has rank %d < 1" v t.ranks.(v)
    else begin
      let p = t.parents.(v) in
      if p < 0 then
        if t.levels.(v) <> 0 then err "non-root forest node %d has no parent" v
        else go (v + 1)
      else if not (in_forest t p) then err "parent of %d is outside the forest" v
      else if t.levels.(p) <> t.levels.(v) - 1 then
        err "parent of %d is at level %d, expected %d" v t.levels.(p)
          (t.levels.(v) - 1)
      else if not (Graph.mem_edge t.graph p v) then
        err "parent edge %d-%d is not a graph edge" p v
      else go (v + 1)
    end
  in
  go 0

let check_ranks t =
  let n = Graph.n t.graph in
  match Ranked_bfs.check_rank_rule ~parents:t.parents ~ranks:t.ranks with
  | Error _ as e -> e
  | Ok () ->
      let mr = Ranked_bfs.max_rank t.ranks in
      let bound = Ilog.clog (max 2 n) in
      if mr > bound then
        Error (Printf.sprintf "max rank %d exceeds ceil(log2 n) = %d" mr bound)
      else Ok ()

let collision_violations t =
  (* For every blue u2 with a same-rank parent v2, an edge to any other
     same-rank node v1 at the parent level that itself has a same-rank
     child u1 is a violating quadruple. *)
  let n = Graph.n t.graph in
  let has_same_rank_child = Array.make n false in
  let sample_child = Array.make n (-1) in
  for v = 0 to n - 1 do
    let p = t.parents.(v) in
    if p >= 0 && t.ranks.(p) = t.ranks.(v) then begin
      has_same_rank_child.(p) <- true;
      sample_child.(p) <- v
    end
  done;
  let viol = ref [] in
  for u2 = 0 to n - 1 do
    let v2 = t.parents.(u2) in
    if v2 >= 0 && t.ranks.(v2) = t.ranks.(u2) then
      Graph.iter_neighbors t.graph u2 (fun v1 ->
          if
            v1 <> v2
            && t.levels.(v1) = t.levels.(u2) - 1
            && t.ranks.(v1) = t.ranks.(u2)
            && has_same_rank_child.(v1)
            && sample_child.(v1) <> u2
          then viol := (sample_child.(v1), v1, u2, v2) :: !viol)
  done;
  List.rev !viol

let wave_unsafe t =
  let n = Graph.n t.graph in
  let bad = ref [] in
  for u = 0 to n - 1 do
    if in_forest t u && not (is_stretch_head t u) then begin
      let p = t.parents.(u) in
      Graph.iter_neighbors t.graph u (fun x ->
          if
            x <> p
            && t.levels.(x) = t.levels.(u) - 1
            && t.ranks.(x) = t.ranks.(u)
          then bad := (u, x) :: !bad)
    end
  done;
  List.rev !bad

let validate t =
  match check_structure t with
  | Error _ as e -> e
  | Ok () -> (
      match check_ranks t with
      | Error _ as e -> e
      | Ok () -> (
          match collision_violations t with
          | (u1, v1, u2, v2) :: _ ->
              Error
                (Printf.sprintf
                   "collision-freeness violated: %d->%d and %d->%d share a cross edge"
                   u1 v1 u2 v2)
          | [] -> (
              match wave_unsafe t with
              | (u, x) :: _ ->
                  Error
                    (Printf.sprintf
                       "wave hazard: interior node %d also hears same-rank %d" u x)
              | [] -> Ok ())))

(* ------------------------------------------------------------------ *)
(* Centralized construction                                            *)

let assign_level_pair ~graph ~reds ~blues ~blue_rank ~parents ~ranks =
  let is_red = Hashtbl.create 64 and is_blue = Hashtbl.create 64 in
  Array.iter (fun r -> Hashtbl.replace is_red r ()) reds;
  Array.iter (fun b -> Hashtbl.replace is_blue b ()) blues;
  let red_nbrs b =
    Graph.fold_neighbors graph b
      (fun acc v -> if Hashtbl.mem is_red v then v :: acc else acc)
      []
  in
  let blue_nbrs r =
    Graph.fold_neighbors graph r
      (fun acc v -> if Hashtbl.mem is_blue v then v :: acc else acc)
      []
  in
  let assigned b = parents.(b) >= 0 in
  let ranked r = ranks.(r) > 0 in
  let max_rank = Array.fold_left (fun acc b -> max acc (blue_rank b)) 0 blues in
  for i = max_rank downto 1 do
    let remaining () =
      Array.to_list blues
      |> List.filter (fun b -> blue_rank b = i && not (assigned b))
    in
    let active_nbrs b = List.filter (fun r -> not (ranked r)) (red_nbrs b) in
    let adopt v =
      (* v takes all its unassigned rank-i blues, is ranked by their count,
         and (Stage III) collects any unassigned lower-rank blues too. *)
      let children =
        List.filter (fun b -> blue_rank b = i && not (assigned b)) (blue_nbrs v)
      in
      assert (match children with [] -> false | _ :: _ -> true);
      List.iter (fun b -> parents.(b) <- v) children;
      ranks.(v) <- (if List.length children >= 2 then i + 1 else i);
      List.iter
        (fun b -> if blue_rank b < i && not (assigned b) then parents.(b) <- v)
        (blue_nbrs v)
    in
    let rec loop () =
      match remaining () with
      | [] -> ()
      | rem ->
          let loner_parent =
            List.find_map
              (fun b ->
                match active_nbrs b with [ v ] -> Some v | _ -> None)
              rem
          in
          let v =
            match loner_parent with
            | Some v -> v
            | None ->
                (* Max unassigned-neighbor count, smallest id on ties. *)
                let count v =
                  List.length
                    (List.filter
                       (fun b -> blue_rank b = i && not (assigned b))
                       (blue_nbrs v))
                in
                let candidates =
                  List.sort_uniq Int.compare (List.concat_map active_nbrs rem)
                in
                (match candidates with
                | [] ->
                    invalid_arg
                      "Gst.assign_level_pair: a blue node has no unranked red \
                       neighbor"
                | c0 :: rest ->
                    List.fold_left
                      (fun best v -> if count v > count best then v else best)
                      c0 rest)
          in
          adopt v;
          loop ()
    in
    loop ()
  done

let repair_wave_safety t =
  let n = Graph.n t.graph in
  let head_override = Array.copy t.head_override in
  for u = 0 to n - 1 do
    if in_forest t u then begin
      let p = t.parents.(u) in
      if p >= 0 && t.ranks.(p) = t.ranks.(u) && not (t.head_override.(u)) then begin
        let hazard = ref false in
        Graph.iter_neighbors t.graph u (fun x ->
            if
              x <> p
              && t.levels.(x) = t.levels.(u) - 1
              && t.ranks.(x) = t.ranks.(u)
            then hazard := true);
        if !hazard then head_override.(u) <- true
      end
    end
  done;
  { t with head_override }

let override_count t =
  Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 t.head_override

let build_centralized ~graph ?levels ~roots () =
  let n = Graph.n graph in
  let levels =
    match levels with Some l -> l | None -> Bfs.multi_levels graph ~sources:roots
  in
  if Array.length levels <> n then invalid_arg "Gst.build_centralized: levels";
  let parents = Array.make n (-1) in
  let ranks = Array.make n 0 in
  let depth = Array.fold_left max (-1) levels in
  let at_level l = Bfs.nodes_at_level levels l in
  for l = depth downto 1 do
    let blues = at_level l and reds = at_level (l - 1) in
    (* Blues still unranked at their own pair are leaves: rank 1. *)
    Array.iter (fun b -> if ranks.(b) = 0 then ranks.(b) <- 1) blues;
    assign_level_pair ~graph ~reds ~blues ~blue_rank:(fun b -> ranks.(b))
      ~parents ~ranks
  done;
  Array.iter (fun r -> if levels.(r) = 0 && ranks.(r) = 0 then ranks.(r) <- 1)
    (at_level 0);
  let t = make ~graph ~levels ~parents ~ranks () in
  repair_wave_safety t
