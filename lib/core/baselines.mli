(** Baseline algorithms the paper compares against (§1.3).

    - {!decay_broadcast}: the BGI Decay broadcast [2],
      [O(D log n + log² n)] rounds — re-exported from {!Decay} for
      discoverability.
    - {!cr_broadcast}: the Czumaj–Rytter / Kowalski–Pelc-shaped
      [O(D log(n/D) + log² n)] baseline.  The original algorithms build on
      selective families; per DESIGN.md §4 we use the standard
      truncated-ladder stand-in: Decay whose probability ladder stops at
      [2^{-(⌈log(n/D)⌉+1)}], interleaved with periodic full-range phases so
      dense neighborhoods still resolve.  On workloads whose per-layer
      degrees are [O(n/D)] this exhibits the [D log(n/D)] growth the
      comparison needs.
    - {!routing_multi}: store-and-forward multi-message broadcast — every
      holder, when its Decay coin fires, transmits one {e uncoded} message
      chosen uniformly from those it holds.  The coding-vs-routing
      comparison of [11] (experiment E10).
    - {!sequential_multi}: [k] back-to-back single-message Decay
      broadcasts — the naive [O(k · (D log n + log² n))] upper bound. *)

open Rn_util
open Rn_radio

val decay_broadcast :
  ?params:Params.t ->
  ?metrics:Rn_obs.Metrics.t ->
  rng:Rng.t ->
  graph:Rn_graph.Graph.t ->
  source:int ->
  unit ->
  Decay.result

val cr_broadcast :
  ?params:Params.t ->
  ?metrics:Rn_obs.Metrics.t ->
  ?engine:Engine.mode ->
  rng:Rng.t ->
  graph:Rn_graph.Graph.t ->
  source:int ->
  diameter:int ->
  unit ->
  Decay.result
(** [diameter] is the constant-factor estimate of [D] the model grants
    every node (§1.1).  [metrics], when given, records every round with
    one short³+full schedule cycle per phase id and folds first-receive
    rounds into the histogram after the run.  [engine] (default [Sparse])
    selects the round path; the sparse engine elides silent-round
    delivery sweeps but uses no active set or skip hint (every node may
    receive, and holders draw a ladder coin each round), and results are
    identical to [Dense]. *)

type multi_result = {
  rounds : int;
  delivered : bool;
  complete_round : int array;
      (** first round each node held all [k] messages; [-1] = never *)
  stats : Engine.stats;
}

val routing_multi :
  ?params:Params.t ->
  ?max_rounds:int ->
  rng:Rng.t ->
  graph:Rn_graph.Graph.t ->
  source:int ->
  k:int ->
  unit ->
  multi_result

val sequential_multi :
  ?params:Params.t ->
  rng:Rng.t ->
  graph:Rn_graph.Graph.t ->
  source:int ->
  k:int ->
  unit ->
  multi_result
