open Rn_util
open Rn_graph
open Rn_coding

let random_messages rng ~k ~msg_len =
  Array.init k (fun _ -> Bitvec.random rng msg_len)

type known_result = {
  rounds : int;
  delivered : bool;
  decode_round : int array;
  payloads_ok : bool;
}

let known ?(params = Params.default) ?(msg_len = 32)
    ?(slow_key = Gst_broadcast.By_virtual_distance)
    ?(engine = Rn_radio.Engine.Sparse) ~rng ~graph ~source ~k () =
  if k < 1 then invalid_arg "Multi_broadcast.known: k must be >= 1";
  let gst = Gst.build_centralized ~graph ~roots:[| source |] () in
  let vd = Gst.virtual_distances gst in
  let msgs = random_messages rng ~k ~msg_len in
  let r =
    Gst_broadcast.run ~params ~slow_key ~engine ~rng:(Rng.split rng) ~gst ~vd
      ~msgs ~sources:[| source |] ()
  in
  {
    rounds = r.Gst_broadcast.rounds;
    delivered =
      (match r.Gst_broadcast.outcome with
      | Rn_radio.Engine.Completed _ -> true
      | Rn_radio.Engine.Out_of_budget _ -> false);
    decode_round = r.Gst_broadcast.decode_round;
    payloads_ok = r.Gst_broadcast.payloads_ok;
  }

type unknown_result = {
  rounds_total : int;
  rounds_layering : int;
  rounds_construction : int;
  rounds_dissemination : int;
  ring_count : int;
  batch_count : int;
  epochs : int;
  delivered : bool;
  payloads_ok : bool;
}

let unknown ?(params = Params.default) ?(msg_len = 32)
    ?(rings = Single_broadcast.Auto) ?batch_size ?(estimate_diameter = false)
    ?(engine = Rn_radio.Engine.Sparse) ~rng ~graph ~source ~k () =
  if k < 1 then invalid_arg "Multi_broadcast.unknown: k must be >= 1";
  let n = Graph.n graph in
  let batch_size =
    match batch_size with
    | Some b ->
        if b < 1 then invalid_arg "Multi_broadcast.unknown: batch_size";
        b
    | None -> Ilog.clog (max 2 n)
  in
  (* Phase 1: collision-detection layering, optionally via the footnote-2
     estimator so no D knowledge is assumed. *)
  let levels, layering_rounds, depth_bound =
    if estimate_diameter then begin
      let e = Diameter_estimate.run ~graph ~source () in
      ( e.Diameter_estimate.levels,
        e.Diameter_estimate.rounds,
        e.Diameter_estimate.estimate )
    end
    else begin
      let wave = Layering.collision_wave ~graph ~sources:[| source |] () in
      ( wave.Layering.levels,
        wave.Layering.rounds,
        Bfs.max_level wave.Layering.levels )
    end
  in
  let width =
    match rings with
    | Single_broadcast.Ring_width w -> max 1 w
    | Single_broadcast.Ring_count c ->
        max 1 (Ilog.cdiv (depth_bound + 1) (max 1 c))
    | Single_broadcast.Auto ->
        let count = max 1 (Ilog.isqrt (max 1 depth_bound)) in
        max 1 (Ilog.cdiv (depth_bound + 1) count)
  in
  let rings_t = Rings.decompose ~levels ~width in
  let rcount = rings_t.Rings.count in
  (* Phase 2: parallel per-ring construction with virtual distances. *)
  let ring_gsts =
    List.init rcount (fun j ->
        Gst_distributed.construct ~mode:Gst_distributed.Pipelined
          ~layering:(Gst_distributed.Given_layering (Rings.ring_levels rings_t j))
          ~learn_vd:true ~params ~engine ~rng:(Rng.split rng) ~graph
          ~roots:(Rings.roots rings_t j) ())
  in
  let rounds_construction =
    Rings.charged_parallel_rounds
      (List.map (fun r -> r.Gst_distributed.total_rounds) ring_gsts)
  in
  let ring_gsts = Array.of_list ring_gsts in
  (* Phase 3: batches pipeline through the rings. *)
  let msgs = random_messages rng ~k ~msg_len in
  let bcount = Ilog.cdiv k batch_size in
  let batch b =
    Array.sub msgs (b * batch_size) (min batch_size (k - (b * batch_size)))
  in
  let delivered = ref true in
  let payloads_ok = ref true in
  let max_stage = ref 0 in
  (* got.(b).(v) = node v decoded batch b *)
  let got = Array.make_matrix bcount n false in
  for b = 0 to bcount - 1 do
    let bmsgs = batch b in
    got.(b).(source) <- true;
    for j = 0 to rcount - 1 do
      if !delivered then begin
        let roots = Rings.roots rings_t j in
        if not (Array.for_all (fun v -> got.(b).(v)) roots) then
          delivered := false
        else begin
          let stage_rounds = ref 0 in
          let g = ring_gsts.(j) in
          let r =
            Gst_broadcast.run ~params ~engine ~rng:(Rng.split rng)
              ~gst:g.Gst_distributed.gst ~vd:g.Gst_distributed.vd ~msgs:bmsgs
              ~sources:roots ()
          in
          stage_rounds := r.Gst_broadcast.rounds;
          if not r.Gst_broadcast.payloads_ok then payloads_ok := false;
          (match r.Gst_broadcast.outcome with
          | Rn_radio.Engine.Completed _ ->
              Array.iteri
                (fun v dr -> if dr >= 0 then got.(b).(v) <- true)
                r.Gst_broadcast.decode_round
          | Rn_radio.Engine.Out_of_budget _ -> delivered := false);
          if !delivered && j + 1 < rcount then begin
            let holders = Rings.outer_boundary rings_t j in
            let receivers = Rings.roots rings_t (j + 1) in
            let h, decoded =
              Rings.handoff_fec ~params ~engine ~rng:(Rng.split rng) ~graph
                ~holders ~receivers ~msgs:bmsgs ()
            in
            stage_rounds := !stage_rounds + h.Rings.rounds;
            if h.Rings.delivered then begin
              Array.iter (fun v -> got.(b).(v) <- true) receivers;
              match decoded with
              | Some out when Array.for_all2 Bitvec.equal out bmsgs -> ()
              | Some _ | None -> payloads_ok := false
            end
            else delivered := false
          end;
          max_stage := max !max_stage !stage_rounds
        end
      end
    done
  done;
  let all_got =
    !delivered
    && Array.for_all
         (fun per_batch ->
           let ok = ref true in
           Array.iteri
             (fun v got_v -> if levels.(v) >= 0 && not got_v then ok := false)
             per_batch;
           !ok)
         got
  in
  let epochs = rcount + bcount - 1 in
  (* Lockstep pipeline: each epoch lasts twice the slowest stage (adjacent
     rings alternate rounds). *)
  let rounds_dissemination = epochs * 2 * !max_stage in
  {
    rounds_total = layering_rounds + rounds_construction + rounds_dissemination;
    rounds_layering = layering_rounds;
    rounds_construction;
    rounds_dissemination;
    ring_count = rcount;
    batch_count = bcount;
    epochs;
    delivered = all_got;
    payloads_ok = !payloads_ok;
  }
