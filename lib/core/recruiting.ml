open Rn_util
open Rn_graph
open Rn_radio

type red_state = {
  red_rng : Rng.t;
  mutable coin : bool;
  mutable claims : int list;  (* distinct unrecruited blues claiming me *)
  mutable recruits : int;  (* saturating at 2 = "many" *)
  mutable single : int;  (* the unique recruit when recruits = 1 *)
}

type blue_state = {
  blue_rng : Rng.t;
  mutable heard : int;  (* red heard in this iteration's announce round; -1 none *)
  mutable parent : int;  (* -1 = not recruited *)
  mutable many : bool;  (* belief about parent's class *)
}

type t = {
  graph : Graph.t;
  params : Params.t;
  ladder : int;  (* ⌈log n⌉ *)
  iter_len : int;  (* 2 + ladder *)
  total_rounds : int;
  reds : int array;
  blues : int array;
  red_st : (int, red_state) Hashtbl.t;
  blue_st : (int, blue_state) Hashtbl.t;
  mutable round : int;
  mutable done_flag : bool;
}

let create ~rng ~params ~scale_n ~graph ~reds ~blues () =
  let ladder = Params.phase_len ~n:scale_n in
  let iter_len = 2 + ladder in
  let iters = Params.recruit_iterations params ~n:scale_n in
  let red_st = Hashtbl.create (Array.length reds) in
  Array.iter
    (fun r ->
      Hashtbl.replace red_st r
        { red_rng = Rng.split rng; coin = false; claims = []; recruits = 0; single = -1 })
    reds;
  let blue_st = Hashtbl.create (Array.length blues) in
  Array.iter
    (fun b ->
      Hashtbl.replace blue_st b
        { blue_rng = Rng.split rng; heard = -1; parent = -1; many = false })
    blues;
  {
    graph;
    params;
    ladder;
    iter_len;
    total_rounds = iters * iter_len;
    reds;
    blues;
    red_st;
    blue_st;
    round = 0;
    done_flag = false;
  }

type slot = Announce | Claiming of int | Verdict

let slot t =
  let r = t.round mod t.iter_len in
  if r = 0 then Announce
  else if r <= t.ladder then Claiming r
  else Verdict

let iteration t = t.round / t.iter_len

let announce_probability t =
  (* 2^{-⌈j/⌈log n⌉⌉}, cycling so long runs keep sweeping all scales. *)
  let e = ((iteration t / t.ladder) mod t.ladder) + 1 in
  1.0 /. float_of_int (1 lsl min e 62)

let decide t ~node =
  if t.done_flag then Engine.Sleep
  else
    match (Hashtbl.find_opt t.red_st node, slot t) with
    | Some red, Announce ->
        red.coin <- Rng.bernoulli red.red_rng (announce_probability t);
        red.claims <- [];
        if red.coin then Engine.Transmit (Cmsg.Red_id node) else Engine.Listen
    | Some _, Claiming _ -> Engine.Listen
    | Some red, Verdict ->
        if not red.coin then Engine.Listen
        else begin
          let n_claims = List.length red.claims in
          let verdict =
            if n_claims >= 2 then Cmsg.Sigma node
            else if n_claims = 1 then begin
              if red.recruits >= 1 then Cmsg.Sigma node
              else Cmsg.Confirm { red = node; blue = List.hd red.claims }
            end
            else if
              (* Echo the standing verdict for class consistency. *)
              red.recruits >= 2
            then Cmsg.Sigma node
            else if red.recruits = 1 then
              Cmsg.Confirm { red = node; blue = red.single }
            else Cmsg.Beacon
          in
          Engine.Transmit verdict
        end
    | None, _ -> (
        match (Hashtbl.find_opt t.blue_st node, slot t) with
        | None, _ -> Engine.Sleep
        | Some blue, Announce ->
            blue.heard <- -1;
            Engine.Listen
        | Some blue, Claiming d ->
            if blue.parent < 0 && blue.heard >= 0 then begin
              let p = 1.0 /. float_of_int (1 lsl min d 62) in
              if Rng.bernoulli blue.blue_rng p then
                Engine.Transmit (Cmsg.Claim { blue = node; red = blue.heard })
              else Engine.Listen
            end
            else Engine.Listen
        | Some _, Verdict -> Engine.Listen)

let commit_recruit red_state ~red:_ ~blue =
  if red_state.recruits = 0 then begin
    red_state.recruits <- 1;
    red_state.single <- blue
  end
  else red_state.recruits <- 2

let deliver t ~node reception =
  if not t.done_flag then
    match reception with
    | Engine.Silence | Engine.Collision -> ()
    | Engine.Received msg -> (
        match Hashtbl.find_opt t.red_st node with
        | Some red -> (
            match (msg, slot t) with
            | Cmsg.Claim { blue; red = target }, Claiming _ when target = node ->
                if not (List.mem blue red.claims) then
                  red.claims <- blue :: red.claims
            | _ -> ())
        | None -> (
            match Hashtbl.find_opt t.blue_st node with
            | None -> ()
            | Some blue -> (
                match (msg, slot t) with
                | Cmsg.Red_id r, Announce -> blue.heard <- r
                | Cmsg.Confirm { red; blue = b }, Verdict ->
                    if b = node && blue.parent < 0 && blue.heard = red then begin
                      blue.parent <- red;
                      blue.many <- false;
                      commit_recruit (Hashtbl.find t.red_st red) ~red ~blue:node
                    end
                | Cmsg.Sigma red, Verdict ->
                    if blue.parent = red then blue.many <- true
                    else if blue.parent < 0 && blue.heard = red then begin
                      blue.parent <- red;
                      blue.many <- true;
                      (* The red might not have heard this blue; its class is
                         already Many by construction of Sigma. *)
                      let rs = Hashtbl.find t.red_st red in
                      (* rblint:allow R12 Lemma-6 bookkeeping writes the recruiting red's record from the blue's callback; the recruiting subroutine is a serial building block and is never driven by Engine_sharded. *)
                      if rs.recruits < 2 then rs.recruits <- 2
                    end
                | _ -> ())))

let coverable_blues t =
  Array.to_list t.blues
  |> List.filter (fun b ->
         Graph.fold_neighbors t.graph b
           (fun acc v -> acc || Hashtbl.mem t.red_st v)
           false)

let goal_reached t =
  List.for_all
    (fun b ->
      let bs = Hashtbl.find t.blue_st b in
      bs.parent >= 0
      &&
      let rs = Hashtbl.find t.red_st bs.parent in
      bs.many = (rs.recruits >= 2))
    (coverable_blues t)

let advance t =
  if not t.done_flag then begin
    t.round <- t.round + 1;
    if t.round >= t.total_rounds then t.done_flag <- true
    else if
      t.params.Params.adaptive
      && t.round mod t.iter_len = 0
      && goal_reached t
    then t.done_flag <- true
  end

let finished t = t.done_flag

type red_class = Zero | One of int | Many

let parent_of t b =
  match Hashtbl.find_opt t.blue_st b with
  | Some bs when bs.parent >= 0 -> Some bs.parent
  | Some _ | None -> None

let red_class t r =
  match Hashtbl.find_opt t.red_st r with
  | None -> Zero
  | Some rs ->
      if rs.recruits >= 2 then Many
      else if rs.recruits = 1 then One rs.single
      else Zero

let blue_sees_many t b =
  match Hashtbl.find_opt t.blue_st b with
  | Some bs when bs.parent >= 0 -> Some bs.many
  | Some _ | None -> None

let rounds_used t = t.round

type outcome = {
  recruited : (int * int) list;
  rounds : int;
  all_covered : bool;
  classes_consistent : bool;
}

let run_standalone ?(detection = Engine.No_collision_detection)
    ?(engine = Engine.Sparse) ?metrics ~rng ~params ~graph ~reds ~blues () =
  let t = create ~rng ~params ~scale_n:(Graph.n graph) ~graph ~reds ~blues () in
  (* rblint:allow R14 internal Lemma-6 driver: a serial building block of the assignment phase, reachable from registered pipelines only through Bipartite_assignment; not a user-facing protocol. *)
  let protocol =
    {
      Engine.decide = (fun ~round:_ ~node -> decide t ~node);
      deliver = (fun ~round:_ ~node r -> deliver t ~node r);
    }
  in
  (* Nodes outside the bipartite population sleep in every round (decide
     falls through both tables), so the awake set is static.  No skip
     hint: every slot keeps some population awake (announce coins, claim
     listeners, verdict transmitters). *)
  let active_ids =
    let n = Graph.n graph in
    let mark = Array.make n false in
    Array.iter (fun v -> mark.(v) <- true) reds;
    Array.iter (fun v -> mark.(v) <- true) blues;
    let count = ref 0 in
    Array.iter (fun b -> if b then incr count) mark;
    let ids = Array.make (max !count 1) 0 in
    let i = ref 0 in
    for v = 0 to n - 1 do
      if mark.(v) then begin
        ids.(!i) <- v;
        incr i
      end
    done;
    (ids, !count)
  in
  let decide_active ~round:_ dst =
    let ids, count = active_ids in
    Array.blit ids 0 dst 0 count;
    count
  in
  (* Phase = recruiting iteration (one announce/claim/verdict cycle).
     [advance] moves [t.round], so the annotation reads the machine's own
     iteration counter right after advancing — coordinator-serial. *)
  let after_round =
    match metrics with
    | None -> fun ~round:_ -> advance t
    | Some m ->
        Rn_obs.Phase.enter m 0;
        fun ~round:_ ->
          advance t;
          Rn_obs.Phase.enter m (iteration t)
  in
  let stop ~round:_ = finished t in
  let max_rounds = t.total_rounds + 1 in
  let outcome =
    match engine with
    | Engine.Dense ->
        Engine.run ?metrics ~graph ~detection ~protocol ~after_round ~stop
          ~max_rounds ()
    | Engine.Sparse ->
        Engine_sparse.run ?metrics ~decide_active ~graph ~detection ~protocol
          ~after_round ~stop ~max_rounds ()
  in
  let rounds = Engine.rounds_of_outcome outcome in
  let recruited =
    Array.to_list t.blues
    |> List.filter_map (fun b ->
           match parent_of t b with Some r -> Some (b, r) | None -> None)
  in
  let all_covered =
    List.for_all (fun b -> Option.is_some (parent_of t b)) (coverable_blues t)
  in
  let classes_consistent =
    List.for_all
      (fun (b, r) ->
        match (blue_sees_many t b, red_class t r) with
        | Some m, Many -> m
        | Some m, One _ -> not m
        | _ -> false)
      recruited
  in
  { recruited; rounds; all_covered; classes_consistent }
