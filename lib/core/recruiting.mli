(** The Recruiting protocol (§2.2.1, Lemma 2.3).

    On a bipartite graph between {e red} and {e blue} nodes, recruiting
    assigns to (w.h.p.) every blue node an adjacent red parent in
    Θ(log³ n) rounds, such that

    - (a) every blue with at least one participating red neighbor is
      recruited,
    - (b) every red knows whether it recruited zero, one, or ≥ 2 blues,
    - (c) every recruited blue knows whether its parent recruited one or
      ≥ 2 blues (the blue derives its parent's rank from this, footnote 3).

    Each recruiting iteration has [2 + ⌈log n⌉] rounds: reds announce their
    id with a probability that halves every [⌈log n⌉] iterations; blues that
    heard a red cleanly echo a claim through one Decay phase; reds then
    repeat their announce-round coin with a verdict — [Confirm] for exactly
    one claim, [Sigma] for ≥ 2 (all clean round-1 receivers of a [Sigma]
    red are recruited).

    {b Class-consistency echoes} (implementation note): the paper's verdict
    rule alone lets a red's recruit class silently upgrade from one to many
    in a later iteration, leaving its first child with a stale class.  Our
    reds therefore re-announce their standing verdict ([Confirm] of the
    single child, or [Sigma]) in every confirm round they transmit in, so
    children converge to the true class w.h.p. within the iteration budget;
    the run is not considered complete until classes agree.  This repairs
    property (c) without changing the round structure.

    The module is an embeddable state machine: an enclosing protocol (the
    bipartite assignment of §2.2.3) grants it rounds by calling [decide] /
    [deliver] / [advance]; {!run_standalone} wraps it in an engine run for
    direct use and tests. *)

open Rn_util
open Rn_radio

type t

val create :
  rng:Rng.t ->
  params:Params.t ->
  scale_n:int ->
  graph:Rn_graph.Graph.t ->
  reds:int array ->
  blues:int array ->
  unit ->
  t
(** [scale_n] sets the [log n] in every schedule length (the network size,
    which in the paper all nodes know up to a polynomial).  [graph] is used
    only by the adaptive-termination oracle (deciding which blues are
    coverable); node behaviour is purely local. *)

(** {1 Scheduler interface} *)

val decide : t -> node:int -> Cmsg.t Engine.action
(** Action for one of the protocol's nodes in the current granted round.
    Nodes not in [reds ∪ blues] must not be asked. *)

val deliver : t -> node:int -> Cmsg.t Engine.reception -> unit

val advance : t -> unit
(** Advance the internal round counter; call exactly once per granted
    round, after all deliveries. *)

val finished : t -> bool
(** True once the iteration budget is exhausted, or (with
    [params.adaptive]) as soon as every coverable blue is recruited with
    consistent classes. *)

(** {1 Results} *)

type red_class = Zero | One of int | Many
(** What a red recruited: nothing, exactly the given blue, or ≥ 2 blues. *)

val parent_of : t -> int -> int option
(** Recruited parent of a blue, if any. *)

val red_class : t -> int -> red_class

val blue_sees_many : t -> int -> bool option
(** Property (c): the recruited blue's belief about its parent's class
    ([Some true] = many, [Some false] = only child); [None] if not
    recruited. *)

val rounds_used : t -> int

(** {1 Standalone run} *)

type outcome = {
  recruited : (int * int) list;  (** (blue, red) pairs *)
  rounds : int;
  all_covered : bool;  (** every blue with a red neighbor was recruited *)
  classes_consistent : bool;  (** beliefs of blues match red classes *)
}

val run_standalone :
  ?detection:Engine.detection ->
  ?engine:Engine.mode ->
  ?metrics:Rn_obs.Metrics.t ->
  rng:Rng.t ->
  params:Params.t ->
  graph:Rn_graph.Graph.t ->
  reds:int array ->
  blues:int array ->
  unit ->
  outcome
(** Run recruiting alone on [graph] (e.g. a random bipartite graph) until
    [finished]; used by experiment E3 and the test-suite.  [metrics], when
    given, records each round under the phase annotation [iteration t] —
    one announce/claim/verdict cycle per phase. *)
