open Rn_util
open Rn_graph
open Rn_radio

type stage =
  | Waiting
  | Identify
  | Loner_probe
  | Loner_inform
  | Part of int * Recruiting.t
  | Stage3
  | Done

type t = {
  rng : Rng.t;
  params : Params.t;
  scale_n : int;
  graph : Graph.t;
  reds : int array;
  blues : int array;
  is_red : bool array;
  is_blue : bool array;
  parents : int array;
  ranks : int array;
  parent_rank : int array;
  ready : rank:int -> bool;
  ladder : int;
  decay_budget : int;
  node_rng : Rng.t option array;
  (* rank-phase state *)
  mutable rank : int;
  mutable stage : stage;
  mutable stage_round : int;
  mutable rounds : int;
  active : bool array;
  excluded : bool array;
  (* epoch state *)
  loner : bool array;
  loner_parent : bool array;
  brisk : bool array;
  temp_taken : bool array;
  offer_red : int array;
  offer_rank : int array;
  mutable ranked_now : int list;
  mutable epoch : int;
  mutable epoch_hist : (int * int) list;
  mutable fixups : int;
  mutable fallbacks : int;
  mutable late_attaches : int;
}

let decay_prob t r =
  1.0 /. float_of_int (1 lsl min ((r mod t.ladder) + 1) 62)

let node_rng t v =
  match t.node_rng.(v) with
  | Some r -> r
  | None -> invalid_arg "Bipartite_assignment: foreign node"

let is_primary t b =
  t.is_blue.(b) && t.parents.(b) < 0 && t.ranks.(b) = t.rank

let is_secondary t b =
  t.is_blue.(b) && t.parents.(b) < 0 && t.ranks.(b) < t.rank && t.ranks.(b) >= 1

let red_eligible t v = t.is_red.(v) && t.ranks.(v) = 0 && not t.excluded.(v)

(* A blue that heard a Stage III announcement before knowing its own rank
   buffered the offer; attach as soon as the rank is known (pipelined mode
   learns blue ranks while shallower phases are already running). *)
let apply_offers t =
  Array.iter
    (fun b ->
      if
        t.parents.(b) < 0
        && t.offer_red.(b) >= 0
        && t.ranks.(b) >= 1
        && t.ranks.(b) < t.offer_rank.(b)
      then begin
        t.parents.(b) <- t.offer_red.(b);
        t.parent_rank.(b) <- t.offer_rank.(b)
      end)
    t.blues

let unassigned_primaries t =
  Array.to_list t.blues |> List.filter (fun b -> is_primary t b)

let exists_unassigned_primary t = Array.exists (fun b -> is_primary t b) t.blues

(* ------------------------------------------------------------------ *)
(* Construction *)

let create ~rng ~params ~scale_n ~graph ~reds ~blues ~parents ~ranks
    ~parent_rank ~ready () =
  let n = Graph.n graph in
  let mk_flag () = Array.make n false in
  let is_red = mk_flag () and is_blue = mk_flag () in
  Array.iter (fun v -> is_red.(v) <- true) reds;
  Array.iter (fun v -> is_blue.(v) <- true) blues;
  let node_rng = Array.make n None in
  Array.iter (fun v -> node_rng.(v) <- Some (Rng.split rng)) reds;
  Array.iter (fun v -> node_rng.(v) <- Some (Rng.split rng)) blues;
  let ladder = Params.phase_len ~n:scale_n in
  {
    rng;
    params;
    scale_n;
    graph;
    reds;
    blues;
    is_red;
    is_blue;
    parents;
    ranks;
    parent_rank;
    ready;
    ladder;
    decay_budget = Params.whp_phases params ~n:scale_n * ladder;
    node_rng;
    rank = Ilog.clog (max 2 scale_n);
    stage = Waiting;
    stage_round = 0;
    rounds = 0;
    active = mk_flag ();
    excluded = mk_flag ();
    loner = mk_flag ();
    loner_parent = mk_flag ();
    brisk = mk_flag ();
    temp_taken = mk_flag ();
    offer_red = Array.make n (-1);
    offer_rank = Array.make n (-1);
    ranked_now = [];
    epoch = 0;
    epoch_hist = [];
    fixups = 0;
    fallbacks = 0;
    late_attaches = 0;
  }

(* ------------------------------------------------------------------ *)
(* Stage transitions (run inside [advance]) *)

let clear t a = Array.iter (fun v -> a.(v) <- false) (Array.append t.reds t.blues)

let reset_rank_state t =
  clear t t.active;
  clear t t.excluded;
  t.epoch <- 0

let reset_epoch_state t =
  clear t t.loner;
  clear t t.loner_parent;
  clear t t.brisk;
  clear t t.temp_taken;
  t.ranked_now <- []

let enter t stage =
  t.stage <- stage;
  t.stage_round <- 0

let identify_goal t =
  (* Every eligible red adjacent to an unassigned primary has activated. *)
  Array.for_all
    (fun v ->
      (not (red_eligible t v))
      || t.active.(v)
      || not (Graph.fold_neighbors t.graph v (fun acc b -> acc || is_primary t b) false))
    t.reds

let loner_inform_goal t =
  Array.for_all
    (fun v ->
      (not (t.active.(v) && not t.loner_parent.(v)))
      || not
           (Graph.fold_neighbors t.graph v
              (fun acc b -> acc || (t.loner.(b) && is_primary t b))
              false))
    t.reds

let stage3_goal t =
  let marked = t.ranked_now in
  Array.for_all
    (fun b ->
      let has_marked_nbr () =
        Graph.fold_neighbors t.graph b (fun acc v -> acc || List.mem v marked) false
      in
      if is_secondary t b then not (has_marked_nbr ())
      else if t.is_blue.(b) && t.parents.(b) < 0 && t.ranks.(b) = 0 then
        t.offer_red.(b) >= 0 || not (has_marked_nbr ())
      else true)
    t.blues

let part_reds t = function
  | 1 -> Array.to_list t.reds |> List.filter (fun v -> t.active.(v) && t.loner_parent.(v))
  | 2 -> Array.to_list t.reds |> List.filter (fun v -> t.active.(v) && t.brisk.(v))
  | 3 ->
      Array.to_list t.reds
      |> List.filter (fun v ->
             t.active.(v) && (not t.loner_parent.(v)) && not t.brisk.(v))
  | _ -> assert false

let part_blues t =
  unassigned_primaries t |> List.filter (fun b -> not t.temp_taken.(b))

let harvest_part t k (recr : Recruiting.t) =
  let bl = part_blues t in
  (* Blues first: permanence decisions from (class-consistent) beliefs. *)
  List.iter
    (fun b ->
      match Recruiting.parent_of recr b with
      | None -> ()
      | Some v ->
          let truth =
            match Recruiting.red_class recr v with
            | Recruiting.Many -> true
            | Recruiting.One _ -> false
            | Recruiting.Zero -> assert false
          in
          (match Recruiting.blue_sees_many recr b with
          | Some belief when belief <> truth -> t.fixups <- t.fixups + 1
          | Some _ | None -> ());
          let many = truth in
          if k = 1 then begin
            (* Part 1 recruits are permanent regardless of class. *)
            t.parents.(b) <- v;
            t.parent_rank.(b) <- (if many then t.rank + 1 else t.rank)
          end
          else if many then begin
            t.parents.(b) <- v;
            t.parent_rank.(b) <- t.rank + 1
          end
          else t.temp_taken.(b) <- true)
    bl;
  (* Reds: marking and ranking. *)
  List.iter
    (fun v ->
      match Recruiting.red_class recr v with
      | Recruiting.Zero -> if k >= 2 then t.excluded.(v) <- true
      | Recruiting.One _ ->
          if k = 1 then begin
            t.ranks.(v) <- t.rank;
            t.excluded.(v) <- true;
            t.ranked_now <- v :: t.ranked_now
          end
          (* Parts 2/3 single recruits stay active with a temporary child. *)
      | Recruiting.Many ->
          t.ranks.(v) <- t.rank + 1;
          t.excluded.(v) <- true;
          t.ranked_now <- v :: t.ranked_now)
    (part_reds t k)

let rec next_rank t =
  t.rank <- t.rank - 1;
  if t.rank < 1 then enter t Done
  else if not (t.ready ~rank:t.rank) then enter t Waiting
  else begin
    reset_rank_state t;
    apply_offers t;
    if exists_unassigned_primary t then enter t Identify else next_rank t
  end

let begin_epoch t =
  t.epoch <- t.epoch + 1;
  if t.epoch > 4 * Params.max_epochs t.params ~n:t.scale_n then
    failwith "Bipartite_assignment: epoch budget blown (protocol stalled)";
  reset_epoch_state t;
  let count =
    Array.fold_left (fun acc v -> if t.active.(v) then acc + 1 else acc) 0 t.reds
  in
  t.epoch_hist <- (t.rank, count) :: t.epoch_hist;
  enter t Loner_probe

let start_rank_or_finish t =
  (* Called when the current rank has no unassigned primaries left. *)
  next_rank t

let enter_part t k =
  let rl = part_reds t k and bl = part_blues t in
  match (rl, bl) with
  | [], _ -> None
  | _ :: _, [] ->
      begin
    (* The part would run with nothing to recruit: every red of the part
       recruits zero, so (Stage III) it is marked and leaves the rank
       phase.  Skipping without marking would let a red hold a temporary
       child epoch after epoch and stall the shrinkage of Lemma 2.4. *)
    if k >= 2 then List.iter (fun v -> t.excluded.(v) <- true) rl;
    None
  end
  | _ :: _, _ :: _ ->
      Some
        (Recruiting.create ~rng:(Rng.split t.rng) ~params:t.params
           ~scale_n:t.scale_n ~graph:t.graph ~reds:(Array.of_list rl)
           ~blues:(Array.of_list bl) ())

let end_epoch t =
  (* Temporaries dissolve; marked reds leave the rank phase. *)
  clear t t.temp_taken;
  Array.iter (fun v -> if t.excluded.(v) then t.active.(v) <- false) t.reds;
  if exists_unassigned_primary t then begin
    (* Last-resort net for a w.h.p. failure: a primary whose upper
       neighbors are all permanently ranked can still attach to one of
       strictly higher rank without disturbing any announced rank (the
       Stage III rule applied late).  An all-equal-rank neighborhood
       cannot be repaired locally; surface it. *)
    List.iter
      (fun b ->
        let has_unranked =
          Graph.fold_neighbors t.graph b
            (fun acc v -> acc || (t.is_red.(v) && t.ranks.(v) = 0))
            false
        in
        if not has_unranked then begin
          let higher =
            Graph.fold_neighbors t.graph b
              (fun acc v ->
                if t.is_red.(v) && t.ranks.(v) > t.ranks.(b) then v :: acc
                else acc)
              []
          in
          match higher with
          | v :: _ ->
              t.parents.(b) <- v;
              t.parent_rank.(b) <- t.ranks.(v);
              t.late_attaches <- t.late_attaches + 1
          | [] ->
              failwith
                "Bipartite_assignment: stranded blue with only equal-rank \
                 ranked neighbors (w.h.p. failure; raise Params budgets)"
        end)
      (unassigned_primaries t);
    let stranded =
      List.exists
        (fun b ->
          not
            (Graph.fold_neighbors t.graph b
               (fun acc v -> acc || (t.is_red.(v) && t.active.(v)))
               false))
        (unassigned_primaries t)
    in
    if stranded then begin
      (* Robustness fallback: let unranked marked reds rejoin and
         re-identify the active set. *)
      t.fallbacks <- t.fallbacks + 1;
      Array.iter (fun v -> if t.ranks.(v) = 0 then t.excluded.(v) <- false) t.reds;
      clear t t.active;
      enter t Identify
    end
    else begin_epoch t
  end
  else start_rank_or_finish t

(* Move through zero-round transitions until a stage that consumes rounds. *)
let rec settle t =
  match t.stage with
  | Done -> ()
  | Waiting ->
      if t.ready ~rank:t.rank then begin
        reset_rank_state t;
        apply_offers t;
        if exists_unassigned_primary t then begin
          enter t Identify;
          settle t
        end
        else begin
          next_rank t;
          settle t
        end
      end
  | Identify ->
      if
        t.stage_round >= t.decay_budget
        || (t.params.Params.adaptive && t.stage_round mod t.ladder = 0
           && t.stage_round > 0 && identify_goal t)
      then begin
        begin_epoch t;
        settle t
      end
  | Loner_probe -> () (* consumes exactly one round; advanced explicitly *)
  | Loner_inform ->
      if
        t.stage_round >= t.decay_budget
        || (t.params.Params.adaptive && t.stage_round mod t.ladder = 0
           && t.stage_round > 0 && loner_inform_goal t)
      then begin
        (match enter_part t 1 with
        | Some r -> enter t (Part (1, r))
        | None -> enter_next_part t 1);
        settle t
      end
  | Part (k, recr) ->
      if Recruiting.finished recr then begin
        harvest_part t k recr;
        enter_next_part t k;
        settle t
      end
  | Stage3 ->
      if
        t.stage_round >= t.decay_budget
        || (t.params.Params.adaptive && t.stage_round mod t.ladder = 0
           && stage3_goal t)
      then begin
        end_epoch t;
        settle t
      end

and enter_next_part t k =
  if k >= 3 then begin
    (* Brisk/lazy coins are per-epoch; after part 3 comes Stage III (skip
       straight to the epoch end when nobody was ranked and no secondary
       can attach). *)
    match t.ranked_now with [] -> end_epoch t | _ :: _ -> enter t Stage3
  end
  else begin
    if k = 1 then
      (* Flip the brisk/lazy coins now that loner-parents are known. *)
      Array.iter
        (fun v ->
          if t.active.(v) && not t.loner_parent.(v) then
            t.brisk.(v) <- Rng.bool (node_rng t v))
        t.reds;
    match enter_part t (k + 1) with
    | Some r -> enter t (Part (k + 1, r))
    | None -> enter_next_part t (k + 1)
  end

(* ------------------------------------------------------------------ *)
(* Scheduler interface *)

let decide t ~node =
  match t.stage with
  | Done | Waiting -> Engine.Sleep
  | Identify ->
      if is_primary t node then begin
        if Rng.bernoulli (node_rng t node) (decay_prob t t.stage_round) then
          Engine.Transmit Cmsg.Blue_here
        else Engine.Listen
      end
      else if red_eligible t node && not t.active.(node) then Engine.Listen
      else Engine.Sleep
  | Loner_probe ->
      if t.is_red.(node) && t.active.(node) then Engine.Transmit Cmsg.Beacon
      else if is_primary t node then Engine.Listen
      else Engine.Sleep
  | Loner_inform ->
      if is_primary t node && t.loner.(node) then begin
        if Rng.bernoulli (node_rng t node) (decay_prob t t.stage_round) then
          Engine.Transmit Cmsg.Loner_here
        else Engine.Listen
      end
      else if t.is_red.(node) && t.active.(node) then Engine.Listen
      else Engine.Sleep
  | Part (_, recr) -> Recruiting.decide recr ~node
  | Stage3 ->
      if List.mem node t.ranked_now then begin
        if Rng.bernoulli (node_rng t node) (decay_prob t t.stage_round) then
          Engine.Transmit (Cmsg.Marked { red = node; rank = t.ranks.(node) })
        else Engine.Listen
      end
      else if
        is_secondary t node
        || (t.is_blue.(node) && t.parents.(node) < 0 && t.ranks.(node) = 0)
      then Engine.Listen
      else Engine.Sleep

let deliver t ~node reception =
  match t.stage with
  | Identify -> (
      match reception with
      | Engine.Received Cmsg.Blue_here ->
          if red_eligible t node then t.active.(node) <- true
      | _ -> ())
  | Loner_probe -> (
      match reception with
      | Engine.Received Cmsg.Beacon ->
          if is_primary t node then t.loner.(node) <- true
      | _ -> ())
  | Loner_inform -> (
      match reception with
      | Engine.Received Cmsg.Loner_here ->
          if t.is_red.(node) && t.active.(node) then t.loner_parent.(node) <- true
      | _ -> ())
  | Part (_, recr) -> Recruiting.deliver recr ~node reception
  | Stage3 -> (
      match reception with
      | Engine.Received (Cmsg.Marked { red; rank }) ->
          if is_secondary t node then begin
            t.parents.(node) <- red;
            t.parent_rank.(node) <- rank
          end
          else if
            t.is_blue.(node) && t.parents.(node) < 0 && t.ranks.(node) = 0
            && t.offer_red.(node) < 0
          then begin
            t.offer_red.(node) <- red;
            t.offer_rank.(node) <- rank
          end
      | _ -> ())
  | Done | Waiting -> ()

let advance t =
  t.rounds <- t.rounds + 1;
  (match t.stage with
  | Part (_, recr) -> Recruiting.advance recr
  | Loner_probe ->
      (* One-shot stage: move on unconditionally. *)
      t.stage_round <- t.stage_round + 1;
      if
        t.params.Params.adaptive
        && not (Array.exists (fun b -> is_primary t b && t.loner.(b)) t.blues)
      then begin
        (* No loners: skip the inform stage. *)
        match enter_part t 1 with
        | Some r -> enter t (Part (1, r))
        | None -> enter_next_part t 1
      end
      else enter t Loner_inform
  | Identify | Loner_inform | Stage3 -> t.stage_round <- t.stage_round + 1
  | Waiting | Done -> ());
  settle t

let finished t = match t.stage with Done -> true | _ -> false

let current_rank t = if finished t then 0 else t.rank

let waiting t = match t.stage with Waiting -> true | _ -> false

let rounds_used t = t.rounds

let epoch_active_history t = List.rev t.epoch_hist

let class_fixups t = t.fixups

let fallback_reactivations t = t.fallbacks

let late_attaches t = t.late_attaches

(* ------------------------------------------------------------------ *)
(* Standalone *)

type outcome = {
  rounds : int;
  parents : int array;
  ranks : int array;
  parent_rank : int array;
  epoch_history : (int * int) list;
}

let run_standalone ?(detection = Engine.No_collision_detection)
    ?(engine = Engine.Sparse) ?metrics ~rng ~params ~graph ~reds ~blues
    ~blue_ranks () =
  let n = Graph.n graph in
  let parents = Array.make n (-1) in
  let ranks = Array.make n 0 in
  let parent_rank = Array.make n (-1) in
  Array.iter (fun b -> ranks.(b) <- blue_ranks.(b)) blues;
  let t =
    create ~rng ~params ~scale_n:n ~graph ~reds ~blues ~parents ~ranks
      ~parent_rank
      ~ready:(fun ~rank:_ -> true)
      ()
  in
  settle t;
  (* rblint:allow R14 internal Lemma-7 driver: exercised by the assignment phase of registered GST pipelines and directly by its unit tests, not a user-facing protocol. *)
  let protocol =
    {
      Engine.decide = (fun ~round:_ ~node -> decide t ~node);
      deliver = (fun ~round:_ ~node r -> deliver t ~node r);
    }
  in
  (* [Ilog.pow] now overflow-checked: [clog n ≤ 63] keeps [63^5 < 2^30]
     comfortably in range, and a bad exponent raises instead of silently
     wrapping into a negative round budget. *)
  let max_rounds =
    params.Params.max_round_factor
    * Ilog.pow (Ilog.clog (max 2 n)) 5
  in
  (* Phase = bipartite epoch (Lemma 2.4's shrinkage unit), read off the
     machine's own counter right after [advance] — coordinator-serial. *)
  let after_round =
    match metrics with
    | None -> fun ~round:_ -> advance t
    | Some m ->
        Rn_obs.Phase.enter m 0;
        fun ~round:_ ->
          advance t;
          Rn_obs.Phase.enter m t.epoch
  in
  (* Only reds and blues ever act (decide falls through both tables to
     Sleep); the awake set is static.  No hint: Waiting never occurs under
     the standalone [ready], and every live stage keeps nodes awake. *)
  let active_ids =
    let mark = Array.make n false in
    Array.iter (fun v -> mark.(v) <- true) reds;
    Array.iter (fun v -> mark.(v) <- true) blues;
    let count = ref 0 in
    Array.iter (fun b -> if b then incr count) mark;
    let ids = Array.make (max !count 1) 0 in
    let i = ref 0 in
    for v = 0 to n - 1 do
      if mark.(v) then begin
        ids.(!i) <- v;
        incr i
      end
    done;
    (ids, !count)
  in
  let decide_active ~round:_ dst =
    let ids, count = active_ids in
    Array.blit ids 0 dst 0 count;
    count
  in
  let stop ~round:_ = finished t in
  ignore
    (match engine with
    | Engine.Dense ->
        Engine.run ?metrics ~graph ~detection ~protocol ~after_round ~stop
          ~max_rounds ()
    | Engine.Sparse ->
        Engine_sparse.run ?metrics ~decide_active ~graph ~detection ~protocol
          ~after_round ~stop ~max_rounds ());
  {
    rounds = rounds_used t;
    parents;
    ranks;
    parent_rank;
    epoch_history = epoch_active_history t;
  }
