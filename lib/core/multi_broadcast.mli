(** Multi-message broadcast: Theorems 1.2 and 1.3.

    {!known}: with full topology knowledge (and no collision detection),
    every node computes the same GST and virtual distances offline; the
    source's [k] messages spread by the MMV schedule with random linear
    network coding in [O(D + k log n + log² n)] rounds w.h.p. — optimal
    against the [Ω(k log n)], [Ω(log² n)] and [Ω(D)] lower bounds cited in
    §1.2.

    {!unknown}: with unknown topology but collision detection (§3.4): a
    collision wave layers the graph, rings are decomposed and per-ring
    GSTs (with learned virtual distances) built in parallel, the messages
    are split into batches of Θ(log n) — which also keeps RLNC coefficient
    headers at O(log n) bits — and batches pipeline through the rings:
    RLNC inside each ring, FEC across ring boundaries.  One batch crosses
    one ring per epoch, so with [R] rings and [B] batches the dissemination
    takes [(R + B − 1)] epochs of twice the slowest stage (adjacent rings
    alternate rounds), for [O(D + k log n + log⁶ n)] in total. *)

open Rn_util
open Rn_coding

type known_result = {
  rounds : int;
  delivered : bool;
  decode_round : int array;
  payloads_ok : bool;
}

val known :
  ?params:Params.t ->
  ?msg_len:int ->
  ?slow_key:Gst_broadcast.slow_key ->
  ?engine:Rn_radio.Engine.mode ->
  rng:Rng.t ->
  graph:Rn_graph.Graph.t ->
  source:int ->
  k:int ->
  unit ->
  known_result
(** Theorem 1.2.  [msg_len] defaults to 32 bits of random payload per
    message.  [engine] (default [Sparse]) selects the round path of the
    GST dissemination (see {!Gst_broadcast.run}); results are identical
    either way. *)

type unknown_result = {
  rounds_total : int;
  rounds_layering : int;
  rounds_construction : int;
  rounds_dissemination : int;  (** charged pipelined cost *)
  ring_count : int;
  batch_count : int;
  epochs : int;
  delivered : bool;
  payloads_ok : bool;
}

val unknown :
  ?params:Params.t ->
  ?msg_len:int ->
  ?rings:Single_broadcast.ring_choice ->
  ?batch_size:int ->
  ?estimate_diameter:bool ->
  ?engine:Rn_radio.Engine.mode ->
  rng:Rng.t ->
  graph:Rn_graph.Graph.t ->
  source:int ->
  k:int ->
  unit ->
  unknown_result
(** Theorem 1.3.  [batch_size] defaults to [⌈log n⌉];
    [estimate_diameter = true] sizes rings from the footnote-2 beep-wave
    2-approximation instead of the exact depth (no knowledge of [D]
    assumed).  [engine] (default [Sparse]) selects the round path of
    construction, in-ring RLNC dissemination and FEC handoffs; results
    are identical either way (DESIGN.md §12). *)

val random_messages : Rng.t -> k:int -> msg_len:int -> Bitvec.t array
