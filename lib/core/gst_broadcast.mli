(** Broadcast schedules atop a GST: the multi-message-viable schedule of
    §3.2 combined with random linear network coding (§3.3).

    In round [t], a node at BFS level [l], with GST rank [r] and virtual
    distance [d] in G′:

    - {e fast} (even rounds): if [t ≡ 2(l + 3r) (mod 6⌈log n⌉)] it
      transmits — a fresh coded packet if it heads a fast stretch, else a
      relay of the packet received in the previous fast round (the
      pipelined wave; Lemma 3.5 keeps these collision-free);
    - {e slow} (odd rounds): if [t ≡ 1 + 2d (mod 6)] it transmits a fresh
      coded packet with probability [2^{-((t-1-2d)/6 mod ⌈log n⌉)}] —
      Decay-style steps that push packets toward entry points of fast
      stretches (Lemma 3.7).

    Keying the slow transmissions by virtual distance rather than by level
    is the paper's crucial change versus [7,19]; the [slow_key] parameter
    exposes the level-keyed variant for the ablation experiment E8.

    A single-message broadcast is the [k = 1] case; with
    [noise_when_empty] a prompted node with an empty buffer transmits a
    vacuous packet — the "noise" of the MMV framework (Definition 3.1) —
    while [noise_when_empty = false] gives the classic silent behaviour.
    Either way the schedule needs no collision detection. *)

open Rn_util
open Rn_coding
open Rn_radio

type slow_key = By_virtual_distance  (** the paper's schedule *)
              | By_level  (** the [7,19]-style ablation *)

type result = {
  outcome : Engine.outcome;
  decode_round : int array;
      (** first round after which the node could decode all [k] messages;
          [-1] if it never could, [0] for initial holders *)
  rounds : int;
  stats : Engine.stats;
  payloads_ok : bool;
      (** every forest node that could decode recovered exactly the
          original messages *)
}

val run :
  ?noise_when_empty:bool ->
  ?slow_key:slow_key ->
  ?step_reset:int ->
  ?faults:Faults.spec ->
  ?max_rounds:int ->
  ?params:Params.t ->
  ?engine:Engine.mode ->
  ?metrics:Rn_obs.Metrics.t ->
  rng:Rng.t ->
  gst:Gst.t ->
  vd:int array ->
  msgs:Bitvec.t array ->
  sources:int array ->
  unit ->
  result
(** Broadcast the [k = Array.length msgs] messages from [sources] (each
    source starts with all of them) to every node of the GST forest.
    [vd] must give virtual distances for all forest nodes (from
    {!Gst.virtual_distances} or the distributed learning of Lemma 3.10).
    Completion = every forest node can decode all [k] messages.
    Defaults: [noise_when_empty = true], [slow_key = By_virtual_distance].

    [metrics], when given, records every round into the registry with the
    phase annotation [round / (6·⌈log n⌉)] — one sweep of the slow-wave
    exponent ladder, the natural GST epoch (annotated from [after_round],
    composed before any [step_reset] action).

    [step_reset] enables the bounded-memory discipline from the strips
    argument at the end of §3.4: time is cut into steps of the given
    length (the paper uses Θ(log² n)) and a node that cannot decode the
    batch at a step boundary empties its packet buffer and restarts.  The
    paper shows a batch still advances one Θ(log² n)-height strip per
    step w.h.p., so completion survives with buffers bounded by one step's
    receptions; sources (who hold the originals) never reset.

    [engine] (default [Sparse]) selects the round path.  Under [Sparse]
    the run also hands {!Engine_sparse.run} a [next_busy_round] hint built
    from the two transmission schedules' residue classes (fast slots mod
    [6·⌈log n⌉], slow slots mod 6), fast-forwarding rounds in which no
    forest node is in either slot — such rounds are all-Listen with no RNG
    draw, so results are identical to [Dense].  Fault injection disables
    the hint (jammers transmit in arbitrary rounds) but keeps the sparse
    delivery path. *)

val fast_slot : clogn:int -> level:int -> rank:int -> round:int -> bool
(** Exposed for tests: the deterministic fast-slot predicate. *)

val slow_slot : level_or_vd:int -> round:int -> bool
(** Exposed for tests: the slow-slot predicate (before the coin flip). *)

val slow_exponent : clogn:int -> level_or_vd:int -> round:int -> int
(** The Decay exponent used in a slow slot. *)
