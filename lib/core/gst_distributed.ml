open Rn_util
open Rn_graph
open Rn_radio

type mode = Sequential | Pipelined

type layering_spec =
  | Decay_layering
  | Collision_wave_layering
  | Given_layering of int array

type result = {
  gst : Gst.t;
  parent_rank : int array;
  vd : int array;
  layering_rounds : int;
  assignment_rounds : int;
  selftest_rounds : int;
  vd_rounds : int;
  total_rounds : int;
  class_fixups : int;
  fallback_reactivations : int;
}

(* ------------------------------------------------------------------ *)
(* Phase 2: level-pair assignments *)

let run_assignment ~mode ~params ~detection ~engine ~rng ~graph ~levels () =
  let n = Graph.n graph in
  let scale_n = n in
  let depth = Bfs.max_level levels in
  let parents = Array.make n (-1) in
  let ranks = Array.make n 0 in
  let parent_rank = Array.make n (-1) in
  if depth <= 0 then begin
    (* No level pairs: every root is a leaf. *)
    Array.iteri (fun v l -> if l = 0 then ranks.(v) <- 1) levels;
    (parents, ranks, parent_rank, 0, 0, 0)
  end
  else begin
    let at_level l = Bfs.nodes_at_level levels l in
    (* Deepest level: all leaves. *)
    Array.iter (fun v -> ranks.(v) <- 1) (at_level depth);
    let leaf_inited = Array.make (depth + 1) false in
    leaf_inited.(depth) <- true;
    let blocks = Array.make (depth + 1) None in
    let block l = match blocks.(l) with Some b -> b | None -> assert false in
    let finished_pair l = Bipartite_assignment.finished (block l) in
    let leaf_init l =
      if not leaf_inited.(l) then begin
        Array.iter (fun v -> if ranks.(v) = 0 then ranks.(v) <- 1) (at_level l);
        leaf_inited.(l) <- true
      end
    in
    let ready_for l ~rank =
      if l = depth then true
      else begin
        let below = block (l + 1) in
        let fin = Bipartite_assignment.finished below in
        (* Leaf ranks at level [l] become final the moment pair [l+1] is
           done; install them lazily before our rank-1 phase starts. *)
        if fin then leaf_init l;
        fin || Bipartite_assignment.current_rank below < rank - 1
      end
    in
    for l = 1 to depth do
      blocks.(l) <-
        Some
          (Bipartite_assignment.create ~rng:(Rng.split rng) ~params ~scale_n
             ~graph ~reds:(at_level (l - 1)) ~blues:(at_level l) ~parents
             ~ranks ~parent_rank ~ready:(ready_for l) ())
    done;
    let current = ref depth (* sequential cursor *) in
    let all_done () =
      let rec go l = l < 1 || (finished_pair l && go (l - 1)) in
      go depth
    in
    let owner_block ~round ~node =
      let l = levels.(node) in
      if l < 0 then None
      else
        match mode with
        | Sequential ->
            let c = !current in
            if (l = c || l = c - 1) && not (finished_pair c) then Some (block c)
            else None
        | Pipelined ->
            let slot = round mod 3 in
            if l >= 1 && l <= depth && l mod 3 = slot && not (finished_pair l)
            then Some (block l)
            else if
              l + 1 >= 1
              && l + 1 <= depth
              && (l + 1) mod 3 = slot
              && not (finished_pair (l + 1))
            then Some (block (l + 1))
            else None
    in
    let decide ~round ~node =
      match owner_block ~round ~node with
      | Some b -> Bipartite_assignment.decide b ~node
      | None -> Engine.Sleep
    in
    let deliver ~round ~node reception =
      match owner_block ~round ~node with
      | Some b -> Bipartite_assignment.deliver b ~node reception
      | None -> ()
    in
    let after_round ~round =
      match mode with
      | Sequential ->
          let c = !current in
          if not (finished_pair c) then Bipartite_assignment.advance (block c);
          while !current > 1 && finished_pair !current do
            leaf_init (!current - 1);
            decr current
          done
      | Pipelined ->
          let slot = round mod 3 in
          for l = 1 to depth do
            if l mod 3 = slot && not (finished_pair l) then
              Bipartite_assignment.advance (block l)
          done
    in
    let ladder = Ilog.clog (max 2 scale_n) in
    let max_rounds =
      params.Params.max_round_factor * ((depth + 2) * Ilog.pow ladder 5)
      + 10_000
    in
    (* Frontier: a block whose machine is [Waiting] (gated by [ready_for])
       or [Done] returns a side-effect-free [Sleep] for every node it
       owns, so the awake set of a round is the level pairs of the
       *live* blocks in the round's slot — in steady pipelined state
       that is one or two level pairs, not the whole graph.  The block
       wakes only inside [advance]/[settle] (after_round), never in
       decide, so dormancy observed at round start holds for the whole
       round. *)
    let level_nodes = Array.init (depth + 1) at_level in
    let dormant l =
      let b = block l in
      Bipartite_assignment.finished b || Bipartite_assignment.waiting b
    in
    let first_of_slot slot = if slot = 0 then 3 else slot in
    let decide_active ~round (buf : int array) =
      let k = ref 0 in
      let put l =
        let nodes = level_nodes.(l) in
        let len = Array.length nodes in
        Array.blit nodes 0 buf !k len;
        k := !k + len
      in
      (match mode with
      | Sequential ->
          let c = !current in
          if not (dormant c) then begin
            put (c - 1);
            put c
          end
      | Pipelined ->
          let l = ref (first_of_slot (round mod 3)) in
          while !l <= depth do
            if not (dormant !l) then begin
              put (!l - 1);
              put !l
            end;
            l := !l + 3
          done);
      !k
    in
    (* Skip hint, re-queried every round so it only ever promises rounds
       whose silence follows from *current* machine state: a slot with no
       live block is silent this round; a slot whose blocks are all
       finished stays silent forever (finishing is monotone), letting the
       endgame fast-forward to the last live slot's rounds.  Dormant
       blocks may wake in after_round, so those promises stop at one
       round. *)
    let slot_live s =
      let rec go l = l <= depth && ((l mod 3 = s && not (dormant l)) || go (l + 1)) in
      go (first_of_slot s)
    in
    let slot_dead s =
      let rec go l =
        l > depth || ((l mod 3 <> s || finished_pair l) && go (l + 1))
      in
      go (first_of_slot s)
    in
    let next_busy_round ~round =
      match mode with
      | Sequential -> if dormant !current then round + 1 else round
      | Pipelined ->
          if slot_live (round mod 3) then round
          else if not (slot_dead (round mod 3)) then round + 1
          else if slot_live ((round + 1) mod 3) || not (slot_dead ((round + 1) mod 3))
          then round + 1
          else if slot_live ((round + 2) mod 3) || not (slot_dead ((round + 2) mod 3))
          then round + 2
          else round + 3 (* every block finished; stop fires first *)
    in
    let protocol = { Engine.decide; deliver } in
    let stop ~round:_ = all_done () in
    let outcome =
      match engine with
      | Engine.Dense ->
          Engine.run ~graph ~detection ~protocol ~after_round ~stop
            ~max_rounds ()
      | Engine.Sparse ->
          Engine_sparse.run ~decide_active ~next_busy_round ~graph ~detection
            ~protocol ~after_round ~stop ~max_rounds ()
    in
    let rounds =
      match outcome with
      | Engine.Completed r -> r
      | Engine.Out_of_budget _ ->
          failwith "Gst_distributed: assignment phase exhausted its budget"
    in
    leaf_init 0;
    let fixups =
      Array.fold_left
        (fun acc b ->
          match b with
          | Some b -> acc + Bipartite_assignment.class_fixups b
          | None -> acc)
        0 blocks
    in
    let fallbacks =
      Array.fold_left
        (fun acc b ->
          match b with
          | Some b -> acc + Bipartite_assignment.fallback_reactivations b
          | None -> acc)
        0 blocks
    in
    (parents, ranks, parent_rank, rounds, fixups, fallbacks)
  end

(* ------------------------------------------------------------------ *)
(* Phase 3: wave-safety self-test *)

let run_selftest ~detection ~engine ~graph ~levels ~parents ~ranks () =
  let n = Graph.n graph in
  let max_rank = Array.fold_left max 0 ranks in
  let safe = Array.make n true in
  let listens = Array.make n false in
  (* Round s: rank s/3 + 1, transmitter layer class s mod 3. *)
  let total = 3 * max_rank in
  let decide ~round ~node =
    let r = (round / 3) + 1 and c = round mod 3 in
    let l = levels.(node) in
    if l < 0 || ranks.(node) <> r then Engine.Sleep
    else if l mod 3 = c then
      Engine.Transmit (Cmsg.Marked { red = node; rank = r })
    else begin
      let p = parents.(node) in
      if p >= 0 && ranks.(p) = r && (l - 1) mod 3 = c then begin
        listens.(node) <- true;
        Engine.Listen
      end
      else Engine.Sleep
    end
  in
  let deliver ~round:_ ~node reception =
    (* The parent certainly transmitted, so anything but a clean reception
       of exactly the parent betrays a same-rank contender. *)
    match reception with
    | Engine.Received (Cmsg.Marked { red; rank = _ }) ->
        if red <> parents.(node) then safe.(node) <- false
    | Engine.Received _ | Engine.Silence | Engine.Collision ->
        safe.(node) <- false
  in
  (* rblint:allow R11 Silence-means-unsafe is this protocol's semantics; the rank/class schedule guarantees every listener has a transmitting parent in-neighborhood, so no genuinely silent round ever reaches a listener (see the sparse-path comment below). *)
  let protocol = { Engine.decide; deliver } in
  let stop ~round:_ = false in
  (* Only rank-r nodes act in the three rounds of rank r; group ids by
     rank once.  A listener's parent shares its rank and transmits in the
     same round (level class l−1), so every listener is inside a
     transmitter's neighborhood — the Silence-means-unsafe deliver never
     fires on an untouched listener, making the sparse path safe even
     though this deliver is *not* silence-neutral.  Rounds whose
     (rank, class) slice holds no node have no transmitters and therefore
     no listeners either (a listener's parent would populate the slice),
     so they can be fast-forwarded from a static table. *)
  let outcome =
    match engine with
    | Engine.Dense -> Engine.run ~graph ~detection ~protocol ~stop ~max_rounds:total ()
    | Engine.Sparse ->
        let rank_count = Array.make (max_rank + 1) 0 in
        Array.iteri
          (fun v l -> if l >= 0 && ranks.(v) >= 1 then
              rank_count.(ranks.(v)) <- rank_count.(ranks.(v)) + 1)
          levels;
        let rank_nodes =
          Array.map (fun c -> Array.make (max c 1) 0) rank_count
        in
        let fill = Array.make (max_rank + 1) 0 in
        Array.iteri
          (fun v l ->
            if l >= 0 && ranks.(v) >= 1 then begin
              let r = ranks.(v) in
              rank_nodes.(r).(fill.(r)) <- v;
              fill.(r) <- fill.(r) + 1
            end)
          levels;
        let slice_count = Array.make (max (3 * (max_rank + 1)) 1) 0 in
        Array.iteri
          (fun v l ->
            if l >= 0 && ranks.(v) >= 1 then begin
              let i = (3 * ranks.(v)) + (l mod 3) in
              slice_count.(i) <- slice_count.(i) + 1
            end)
          levels;
        let decide_active ~round (buf : int array) =
          let r = (round / 3) + 1 in
          let nodes = rank_nodes.(r) and count = rank_count.(r) in
          Array.blit nodes 0 buf 0 count;
          count
        in
        let next_busy_round ~round =
          let rec go r =
            if r >= total then total
            else if slice_count.((3 * ((r / 3) + 1)) + (r mod 3)) > 0 then r
            else go (r + 1)
          in
          go round
        in
        Engine_sparse.run ~decide_active ~next_busy_round ~graph ~detection
          ~protocol ~stop ~max_rounds:total ()
  in
  let head_override = Array.init n (fun v -> listens.(v) && not safe.(v)) in
  (head_override, Engine.rounds_of_outcome outcome)

(* ------------------------------------------------------------------ *)
(* Phase 4: virtual-distance learning (Lemma 3.10) *)

let run_vd ~params ~detection ~engine ~rng ~graph ~levels ~parents ~ranks
    ~parent_rank ~head_override () =
  let n = Graph.n graph in
  let scale_n = n in
  let ladder = Params.phase_len ~n:scale_n in
  let depth = Bfs.max_level levels in
  let max_rank = Array.fold_left max 0 ranks in
  let vd = Array.make n (-1) in
  Array.iteri
    (fun v l -> if l = 0 && ranks.(v) > 0 then vd.(v) <- 0)
    levels;
  let in_forest v = levels.(v) >= 0 && ranks.(v) > 0 in
  let is_head v =
    in_forest v
    && (parents.(v) < 0 || head_override.(v) || parent_rank.(v) <> ranks.(v))
  in
  let unlabeled_remain () =
    let rec go v = v < n && ((in_forest v && vd.(v) < 0) || go (v + 1)) in
    go 0
  in
  let node_rng = Rng.split_n rng n in
  let total_rounds = ref 0 in
  (* One d-iteration: stretch sweeps for every rank, then Decay
     relaxation.  [swept] marks nodes labeled d+1 by the current sweep so
     epoch 2 only cascades fresh labels. *)
  let d = ref 0 in
  let iter_cap = (3 * ladder) + n in
  let run_phase ?decide_active ?next_busy_round ~decide ~deliver ~stop
      ~max_rounds () =
    let protocol = { Engine.decide; deliver } in
    let outcome =
      match engine with
      | Engine.Dense ->
          Engine.run ~graph ~detection ~protocol ~stop ~max_rounds ()
      | Engine.Sparse ->
          Engine_sparse.run ?decide_active ?next_busy_round ~graph ~detection
            ~protocol ~stop ~max_rounds ()
    in
    total_rounds := !total_rounds + Engine.rounds_of_outcome outcome
  in
  (* Stage-1 sweeps wake only a moving level pair; stage 2 wakes the
     forest nodes still relevant to the current distance.  Both reuse
     these buffers. *)
  let depth_cap = depth + 2 in
  let level_nodes = Array.init (depth + 1) (fun l -> Bfs.nodes_at_level levels l) in
  let cand = Array.make (max n 1) 0 in
  while unlabeled_remain () && !d <= iter_cap do
    let dv = !d in
    (* Stage 1: label whole stretches hanging off F_dv, rank by rank. *)
    for r = 1 to max_rank do
      let sweep_hit = Array.make n false in
      let heads_exist =
        let rec go v =
          v < n
          && ((is_head v && vd.(v) = dv && ranks.(v) = r) || go (v + 1))
        in
        go 0
      in
      if heads_exist || not params.Params.adaptive then begin
        (* Epoch 1 then epoch 2, each a D-round layer sweep. *)
        let epoch_len = depth + 1 in
        (* Per-level transmitter potential for the skip hint: epoch-0
           counts (qualifying heads per level) are static for the phase;
           epoch-1 counts grow as the sweep labels nodes (bumped in
           deliver).  A round with zero potential transmitters delivers
           nothing, so it creates no new potential either — promising its
           silence from counts read at round start is sound. *)
        let head_count = Array.make depth_cap 0 in
        Array.iteri
          (fun v l ->
            if l >= 0 && is_head v && vd.(v) = dv && ranks.(v) = r then
              head_count.(l) <- head_count.(l) + 1)
          levels;
        let sweep_count = Array.make depth_cap 0 in
        let decide ~round ~node =
          let epoch = round / epoch_len and l = round mod epoch_len in
          if not (in_forest node) then Engine.Sleep
          else if
            levels.(node) = l && ranks.(node) = r
            && ((epoch = 0 && is_head node && vd.(node) = dv)
               || (epoch = 1 && sweep_hit.(node)))
          then Engine.Transmit (Cmsg.Vd_label { from_node = node; vd = dv })
          else if
            levels.(node) = l + 1
            && ranks.(node) = r
            && vd.(node) < 0
            && (not (is_head node))
            && parents.(node) >= 0
          then Engine.Listen
          else Engine.Sleep
        in
        let deliver ~round:_ ~node reception =
          match reception with
          | Engine.Received (Cmsg.Vd_label { from_node; vd = _ })
            when from_node = parents.(node) && vd.(node) < 0 ->
              vd.(node) <- dv + 1;
              sweep_hit.(node) <- true;
              sweep_count.(levels.(node)) <- sweep_count.(levels.(node)) + 1
          | Engine.Received _ | Engine.Silence | Engine.Collision -> ()
        in
        let decide_active ~round (buf : int array) =
          let l = round mod epoch_len in
          let k = ref 0 in
          let put lv =
            if lv <= depth then begin
              let nodes = level_nodes.(lv) in
              let len = Array.length nodes in
              Array.blit nodes 0 buf !k len;
              k := !k + len
            end
          in
          put l;
          put (l + 1);
          !k
        in
        let busy m =
          if m < epoch_len then head_count.(m) > 0
          else sweep_count.(m - epoch_len) > 0
        in
        let max_rounds = 2 * epoch_len in
        let next_busy_round ~round =
          let rec go m = if m >= max_rounds || busy m then m else go (m + 1) in
          go round
        in
        run_phase ~decide_active ~next_busy_round ~decide ~deliver
          ~stop:(fun ~round:_ -> false)
          ~max_rounds ()
      end
    done;
    (* Stage 2: Decay relaxation across ordinary G-edges. *)
    let budget = Params.whp_phases params ~n:scale_n * ladder in
    let goal () =
      Array.for_all
        (fun v ->
          (not (in_forest v))
          || vd.(v) >= 0
          || not
               (Graph.fold_neighbors graph v
                  (fun acc u -> acc || (in_forest u && vd.(u) = dv))
                  false))
        (Array.init n (fun i -> i))
    in
    let decide ~round ~node =
      if in_forest node && vd.(node) = dv then begin
        let p = 1.0 /. float_of_int (1 lsl min ((round mod ladder) + 1) 62) in
        if Rng.bernoulli node_rng.(node) p then
          Engine.Transmit (Cmsg.Vd_label { from_node = node; vd = dv })
        else Engine.Listen
      end
      else if in_forest node && vd.(node) < 0 then Engine.Listen
      else Engine.Sleep
    in
    let deliver ~round:_ ~node reception =
      match reception with
      | Engine.Received (Cmsg.Vd_label _) when vd.(node) < 0 ->
          vd.(node) <- dv + 1
      | Engine.Received _ | Engine.Silence | Engine.Collision -> ()
    in
    (* Awake set for the whole relaxation: frontier nodes (vd = dv) and
       the still-unlabeled (vd < 0).  A node labeled dv+1 mid-phase stays
       in the buffer but its decide is a side-effect-free Sleep.  No skip
       hint: frontier nodes draw a coin every round. *)
    let n_cand = ref 0 in
    for v = 0 to n - 1 do
      if in_forest v && (vd.(v) = dv || vd.(v) < 0) then begin
        cand.(!n_cand) <- v;
        incr n_cand
      end
    done;
    let stage2_cand = !n_cand in
    let decide_active ~round:_ (buf : int array) =
      Array.blit cand 0 buf 0 stage2_cand;
      stage2_cand
    in
    run_phase ~decide_active ~decide ~deliver
      ~stop:(fun ~round ->
        params.Params.adaptive && round mod ladder = 0 && goal ())
      ~max_rounds:budget ();
    incr d
  done;
  if unlabeled_remain () then
    failwith "Gst_distributed: virtual-distance learning did not converge";
  (vd, !total_rounds)

(* ------------------------------------------------------------------ *)

let construct ?(mode = Pipelined) ?(layering = Decay_layering)
    ?(learn_vd = false) ?(params = Params.default)
    ?(detection = Engine.No_collision_detection) ?(engine = Engine.Sparse)
    ~rng ~graph ~roots () =
  let n = Graph.n graph in
  let levels, layering_rounds =
    match layering with
    | Given_layering levels ->
        if Array.length levels <> n then
          invalid_arg "Gst_distributed.construct: levels length";
        (levels, 0)
    | Decay_layering ->
        let r =
          Layering.decay_bfs ~params ~engine ~rng:(Rng.split rng) ~graph
            ~sources:roots ()
        in
        (r.Layering.levels, r.Layering.rounds)
    | Collision_wave_layering ->
        (* The wave is D deterministic all-transmit rounds; it stays on the
           dense reference engine (no sparsity to exploit). *)
        let r = Layering.collision_wave ~graph ~sources:roots () in
        (r.Layering.levels, r.Layering.rounds)
  in
  let parents, ranks, parent_rank, assignment_rounds, class_fixups,
      fallback_reactivations =
    run_assignment ~mode ~params ~detection ~engine ~rng ~graph ~levels ()
  in
  let head_override, selftest_rounds =
    run_selftest ~detection ~engine ~graph ~levels ~parents ~ranks ()
  in
  let vd, vd_rounds =
    if learn_vd then
      run_vd ~params ~detection ~engine ~rng ~graph ~levels ~parents ~ranks
        ~parent_rank ~head_override ()
    else (Array.make n (-1), 0)
  in
  let gst = Gst.make ~graph ~levels ~parents ~ranks ~head_override () in
  {
    gst;
    parent_rank;
    vd;
    layering_rounds;
    assignment_rounds;
    selftest_rounds;
    vd_rounds;
    total_rounds = layering_rounds + assignment_rounds + selftest_rounds + vd_rounds;
    class_fixups;
    fallback_reactivations;
  }
