open Rn_util
open Rn_graph
open Rn_coding
open Rn_radio

type slow_key = By_virtual_distance | By_level

type result = {
  outcome : Engine.outcome;
  decode_round : int array;
  rounds : int;
  stats : Engine.stats;
  payloads_ok : bool;
}

let emod a m = ((a mod m) + m) mod m

let fast_slot ~clogn ~level ~rank ~round =
  round mod 2 = 0 && emod (round - (2 * (level + (3 * rank)))) (6 * clogn) = 0

let slow_slot ~level_or_vd ~round =
  round mod 2 = 1 && emod (round - 1 - (2 * level_or_vd)) 6 = 0

let slow_exponent ~clogn ~level_or_vd ~round =
  emod ((round - 1 - (2 * level_or_vd)) / 6) clogn

type msg = Data of Rlnc.packet

let run ?(noise_when_empty = true) ?(slow_key = By_virtual_distance)
    ?step_reset ?faults ?max_rounds ?(params = Params.default)
    ?(engine = Engine.Sparse) ?metrics ~rng ~gst ~vd ~msgs ~sources () =
  let graph = gst.Gst.graph in
  let n = Graph.n graph in
  let k = Array.length msgs in
  if k = 0 then invalid_arg "Gst_broadcast.run: no messages";
  let msg_len = Bitvec.length msgs.(0) in
  let clogn = Ilog.clog (max 2 n) in
  let depth = Bfs.max_level gst.Gst.levels in
  let max_rounds =
    match max_rounds with
    | Some m -> m
    | None ->
        params.Params.max_round_factor
        * 6
        * (depth + (k * clogn) + (2 * clogn * clogn) + (6 * clogn))
  in
  let in_forest v = Gst.in_forest gst v in
  let slow_of v =
    match slow_key with
    | By_virtual_distance -> vd.(v)
    | By_level -> gst.Gst.levels.(v)
  in
  Array.iteri
    (fun v l ->
      if l >= 0 && (vd.(v) < 0 || gst.Gst.ranks.(v) < 1) then
        invalid_arg "Gst_broadcast.run: forest node lacks vd or rank")
    gst.Gst.levels;
  let node_rng = Rng.split_n rng n in
  let buf = Array.init n (fun _ -> Rlnc.create ~k ~msg_len) in
  Array.iter (fun s -> Rlnc.seed_with_sources buf.(s) ~msgs) sources;
  let decode_round = Array.make n (-1) in
  let missing = Atomic.make 0 in
  Array.iteri
    (fun v l ->
      if l >= 0 then
        if Rlnc.can_decode buf.(v) then decode_round.(v) <- 0
        else Atomic.incr missing)
    gst.Gst.levels;
  (* Relay buffer for the fast wave: packet received in an even round,
     stamped with that round. *)
  let last_fast : (int * Rlnc.packet) option array = Array.make n None in
  let empty_packet () =
    { Rlnc.coeffs = Bitvec.create k; payload = Bitvec.create msg_len }
  in
  let fresh_packet v =
    match Rlnc.encode node_rng.(v) buf.(v) with
    | Some p -> Some p
    | None -> if noise_when_empty then Some (empty_packet ()) else None
  in
  let decide ~round ~node =
    if not (in_forest node) then Engine.Sleep
    else begin
      let l = gst.Gst.levels.(node) and r = gst.Gst.ranks.(node) in
      if fast_slot ~clogn ~level:l ~rank:r ~round then begin
        if Gst.is_stretch_head gst node then
          match fresh_packet node with
          | Some p -> Engine.Transmit (Data p)
          | None -> Engine.Listen
        else
          (* Interior: relay the wave packet from the previous fast round
             (the parent's slot is exactly two rounds earlier). *)
          match last_fast.(node) with
          | Some (rcv, p) when rcv = round - 2 -> Engine.Transmit (Data p)
          | Some _ | None ->
              if noise_when_empty then Engine.Transmit (Data (empty_packet ()))
              else Engine.Listen
      end
      else if slow_slot ~level_or_vd:(slow_of node) ~round then begin
        let e = slow_exponent ~clogn ~level_or_vd:(slow_of node) ~round in
        let p = 1.0 /. float_of_int (1 lsl min e 62) in
        if Rng.bernoulli node_rng.(node) p then
          match fresh_packet node with
          | Some pkt -> Engine.Transmit (Data pkt)
          | None -> Engine.Listen
        else Engine.Listen
      end
      else Engine.Listen
    end
  in
  let deliver ~round ~node reception =
    match reception with
    | Engine.Received (Data p) ->
        if round mod 2 = 0 then last_fast.(node) <- Some (round, p);
        if not (Bitvec.is_zero p.Rlnc.coeffs) then begin
          ignore (Rlnc.receive buf.(node) p);
          if decode_round.(node) < 0 && Rlnc.can_decode buf.(node) then begin
            decode_round.(node) <- round;
            Atomic.decr missing
          end
        end
    | Engine.Silence | Engine.Collision -> ()
  in
  let is_source = Array.make n false in
  Array.iter (fun s -> is_source.(s) <- true) sources;
  let after_round =
    match step_reset with
    | None -> None
    | Some step ->
        if step < 1 then invalid_arg "Gst_broadcast.run: step_reset";
        Some
          (fun ~round ->
            if (round + 1) mod step = 0 then
              for v = 0 to n - 1 do
                if
                  in_forest v && (not is_source.(v))
                  && not (Rlnc.can_decode buf.(v))
                then begin
                  buf.(v) <- Rlnc.create ~k ~msg_len;
                  last_fast.(v) <- None
                end
              done)
  in
  (* Phase annotation: the slow schedule repeats with period [6·clogn]
     (the slow_exponent ladder completes one sweep), which is the natural
     "GST epoch".  Annotated from [after_round] (coordinator-serial),
     composed before any [step_reset] action for the same round. *)
  let after_round =
    match metrics with
    | None -> after_round
    | Some m ->
        Rn_obs.Phase.enter m 0;
        let epoch_len = 6 * clogn in
        let annotate ~round =
          Rn_obs.Phase.enter_of_round m ~len:epoch_len ~round:(round + 1)
        in
        Some
          (match after_round with
          | None -> annotate
          | Some g ->
              fun ~round ->
                annotate ~round;
                g ~round)
  in
  let protocol = { Engine.decide; deliver } in
  let protocol =
    match faults with
    | None -> protocol
    | Some { Faults.jammers; p } ->
        Faults.with_jammers ~rng:(Rng.split rng) ~jammers ~p
          ~noise:(Data (empty_packet ())) protocol
  in
  (* Nodes outside the forest sleep in every round (and a jammer overrides
     its decide even off-forest), so the awake set is static: hand it to the
     engine once and skip the O(n) decide scan.  Ids ascend, matching the
     default scan's call order exactly. *)
  let active_ids =
    let mark = Array.make n false in
    for v = 0 to n - 1 do
      if in_forest v then mark.(v) <- true
    done;
    (match faults with
    | Some { Faults.jammers; _ } ->
        Array.iter (fun j -> mark.(j) <- true) jammers
    | None -> ());
    let count = ref 0 in
    Array.iter (fun b -> if b then incr count) mark;
    let ids = Array.make (max !count 1) 0 in
    let i = ref 0 in
    for v = 0 to n - 1 do
      if mark.(v) then begin
        ids.(!i) <- v;
        incr i
      end
    done;
    if !count < n then Some (ids, !count) else None
  in
  let decide_active =
    Option.map
      (fun (ids, count) ~round:_ dst ->
        Array.blit ids 0 dst 0 count;
        count)
      active_ids
  in
  (* Skip hint: both transmission schedules are residue classes of static
     node attributes — a fast slot occupies the even residue
     [2·(level + 3·rank) mod 6·clogn], a slow slot the odd residues
     [(1 + 2·slow_of v) mod 6] — so "some forest node is in slot" is a
     presence bitmap over residues mod [6·clogn] (the lcm of the two
     periods).  A round whose residue is unoccupied sees every forest node
     return [Listen] without touching its RNG stream, so fast-forwarding
     it is observationally identical to simulating it.  Occupied residues
     must be simulated even if no transmission results (decide draws coins
     there).  Jammers transmit in arbitrary rounds, so fault injection
     disables the hint. *)
  let next_busy_round =
    match (faults, engine) with
    | Some _, _ | _, Engine.Dense -> None
    | None, Engine.Sparse ->
        let period = 6 * clogn in
        let busy = Array.make period false in
        Array.iteri
          (fun v l ->
            if l >= 0 then begin
              let r = gst.Gst.ranks.(v) in
              busy.(emod (2 * (l + (3 * r))) period) <- true;
              let sr = emod (1 + (2 * slow_of v)) 6 in
              let i = ref sr in
              while !i < period do
                busy.(!i) <- true;
                i := !i + 6
              done
            end)
          gst.Gst.levels;
        if not (Array.exists Fun.id busy) then None
        else begin
          let delta = Array.make period 0 in
          let next = ref (2 * period) in
          for i = (2 * period) - 1 downto 0 do
            if busy.(i mod period) then next := i;
            if i < period then delta.(i) <- !next - i
          done;
          Some (fun ~round -> round + delta.(round mod period))
        end
  in
  let stats = Engine.fresh_stats () in
  let stop ~round:_ = Atomic.get missing = 0 in
  let outcome =
    match engine with
    | Engine.Dense ->
        Engine.run ?metrics ?after_round ?decide_active ~stats ~graph
          ~detection:Engine.No_collision_detection ~protocol ~stop ~max_rounds
          ()
    | Engine.Sparse ->
        Engine_sparse.run ?metrics ?after_round ?decide_active
          ?next_busy_round ~stats ~graph
          ~detection:Engine.No_collision_detection ~protocol ~stop ~max_rounds
          ()
  in
  let payloads_ok =
    let ok = ref true in
    Array.iteri
      (fun v dr ->
        if dr >= 0 then
          match Rlnc.decode buf.(v) with
          | Some out ->
              if not (Array.for_all2 Bitvec.equal out msgs) then ok := false
          | None -> ok := false)
      decode_round;
    !ok
  in
  {
    outcome;
    decode_round;
    rounds = Engine.rounds_of_outcome outcome;
    stats;
    payloads_ok;
  }
