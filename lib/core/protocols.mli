(** Populates {!Rn_radio.Registry} with every pipeline in this library.

    Call {!ensure_registered} once at startup (rbcast, bench, and the test
    suites do) and then enumerate via [Registry.all]/[Registry.names].
    Each entry's [run] derives all randomness from its [seed] argument, so
    results are deterministic per (graph, seed) — the contracts suite
    relies on that for byte-identity checks.

    rblint's R14 (DESIGN.md §13) closes the loop statically: a pipeline in
    [lib/] that constructs an [Engine.protocol] and drives an engine but is
    not reachable from a registration below is a lint error. *)

val ensure_registered : unit -> unit
(** Idempotent and thread-safe; the first call registers all entries. *)
