(* benchdiff — regression gate over the bench perf records.

   Usage: benchdiff BASELINE.json CURRENT.json [--threshold PCT]

   Both files are `BENCH_engine.json`-format records written by
   [bench/main.exe --json].  For every experiment id present in both:

   - [rounds] must match the baseline exactly: the simulation is
     deterministic per seed, so any drift in total simulated rounds is a
     semantic change, not noise, and fails regardless of threshold;
   - [rounds_per_sec] must not regress below baseline × (1 - PCT/100)
     (default 25%).  Speedups and experiments missing on either side are
     reported but never fail the gate, so the baseline can cover a
     superset of the experiments a smoke run executes;
   - per-phase aggregate fields ([phase_deliveries]/[phase_tx]/
     [phase_collisions], compact JSON int arrays from the metrics
     registry) are gated exactly when the baseline record has them too —
     deterministic like [rounds] — and are informational when the
     baseline predates them.

   Experiments present only in the current run are new — informational,
   never a failure, even when the runs share nothing (a run made of only
   new experiments passes; the ids join the baseline whenever it is next
   re-seeded).

   Exit codes: 0 ok, 1 regression, 2 usage/parse error.

   The parser below handles exactly the flat object/array shape the bench
   writes — a dependency-free subset of JSON, not a general parser. *)

type experiment = {
  id : string;
  rounds : int;
  rounds_per_sec : float;
  skipped : int option;
      (* fast-forwarded silent rounds (sparse engine); deterministic like
         [rounds], gated exactly when the baseline records it too *)
  phases : (string * string) list;
      (* optional per-phase int-array fields, raw compact text *)
}

let phase_field_names = [ "phase_deliveries"; "phase_tx"; "phase_collisions" ]

let fail_usage () =
  prerr_endline "usage: benchdiff BASELINE.json CURRENT.json [--threshold PCT]";
  exit 2

let read_file path =
  match open_in_bin path with
  | exception Sys_error msg ->
      Printf.eprintf "benchdiff: %s\n" msg;
      exit 2
  | ic ->
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      s

(* Find `"key": value` after position [from]; value is a number or a
   quoted string, returned as its raw text. *)
let find_field s key from =
  let pat = "\"" ^ key ^ "\"" in
  let n = String.length s and pl = String.length pat in
  let rec locate i =
    if i + pl > n then None
    else if String.sub s i pl = pat then Some (i + pl)
    else locate (i + 1)
  in
  match locate from with
  | None -> None
  | Some i ->
      let i = ref i in
      while !i < n && (s.[!i] = ':' || s.[!i] = ' ' || s.[!i] = '\t') do
        incr i
      done;
      if !i >= n then None
      else if s.[!i] = '"' then begin
        let j = ref (!i + 1) in
        while !j < n && s.[!j] <> '"' do
          incr j
        done;
        Some (String.sub s (!i + 1) (!j - !i - 1), !j + 1)
      end
      else begin
        let j = ref !i in
        while
          !j < n
          && (match s.[!j] with
             | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
             | _ -> false)
        do
          incr j
        done;
        if !j = !i then None else Some (String.sub s !i (!j - !i), !j)
      end

(* Find `"key": [ ... ]` after [from] but before [limit] (the next record's
   "id" — optional fields must not be picked up from a later record);
   returns the bracketed text verbatim. *)
let find_array_field s key from limit =
  let pat = "\"" ^ key ^ "\"" in
  let pl = String.length pat in
  let rec locate i =
    if i + pl > limit then None
    else if String.sub s i pl = pat then Some (i + pl)
    else locate (i + 1)
  in
  match locate from with
  | None -> None
  | Some i ->
      let i = ref i in
      while !i < limit && (s.[!i] = ':' || s.[!i] = ' ' || s.[!i] = '\t') do
        incr i
      done;
      if !i >= limit || s.[!i] <> '[' then None
      else begin
        let j = ref !i in
        while !j < limit && s.[!j] <> ']' do
          incr j
        done;
        if !j >= limit then None else Some (String.sub s !i (!j - !i + 1))
      end

(* Position of the next record's "id" key, bounding this record's span. *)
let next_record_start s from =
  let pat = "\"id\"" in
  let n = String.length s and pl = String.length pat in
  let rec locate i =
    if i + pl > n then n else if String.sub s i pl = pat then i else locate (i + 1)
  in
  locate from

let parse_experiments path =
  let s = read_file path in
  let rec collect from acc =
    match find_field s "id" from with
    | None -> List.rev acc
    | Some (id, after_id) -> (
        match find_field s "rounds" after_id with
        | None -> List.rev acc
        | Some (rounds, after_rounds) -> (
            match find_field s "rounds_per_sec" after_rounds with
            | None -> List.rev acc
            | Some (rps, after_rps) ->
                let span_end = next_record_start s after_rps in
                let phases =
                  List.filter_map
                    (fun k ->
                      Option.map
                        (fun v -> (k, v))
                        (find_array_field s k after_rps span_end))
                    phase_field_names
                in
                (* Bound the optional-field search to this record's span:
                   searching the raw string would pick the value up from a
                   later record when this one predates the field. *)
                let span = String.sub s after_rps (span_end - after_rps) in
                let skipped =
                  match find_field span "skipped_rounds" 0 with
                  | Some (v, _) -> int_of_string_opt v
                  | None -> None
                in
                let exp =
                  try
                    {
                      id;
                      rounds = int_of_string rounds;
                      rounds_per_sec = float_of_string rps;
                      skipped;
                      phases;
                    }
                  with _ ->
                    Printf.eprintf "benchdiff: malformed record in %s\n" path;
                    exit 2
                in
                collect after_rps (exp :: acc)))
  in
  let exps = collect 0 [] in
  if exps = [] then begin
    Printf.eprintf "benchdiff: no experiments found in %s\n" path;
    exit 2
  end;
  exps

let () =
  let baseline_path, current_path, threshold =
    match Array.to_list Sys.argv with
    | [ _; b; c ] -> (b, c, 25.0)
    | [ _; b; c; "--threshold"; pct ] -> (
        match float_of_string_opt pct with
        | Some t when t > 0.0 && t < 100.0 -> (b, c, t)
        | _ -> fail_usage ())
    | _ -> fail_usage ()
  in
  let baseline = parse_experiments baseline_path in
  let current = parse_experiments current_path in
  let failures = ref 0 in
  let compared = ref 0 in
  List.iter
    (fun cur ->
      match List.find_opt (fun b -> b.id = cur.id) baseline with
      | None ->
          Printf.printf "%-4s new experiment (no baseline), informational\n"
            cur.id
      | Some base ->
          incr compared;
          let rounds_ok = cur.rounds = base.rounds in
          if not rounds_ok then begin
            incr failures;
            Printf.printf
              "%-4s FAIL rounds drifted: %d -> %d (deterministic count must \
               match baseline exactly)\n"
              cur.id base.rounds cur.rounds
          end;
          (match (base.skipped, cur.skipped) with
          | Some b, Some c when b <> c ->
              incr failures;
              Printf.printf
                "%-4s FAIL skipped rounds drifted: %d -> %d (deterministic \
                 count must match baseline exactly)\n"
                cur.id b c
          | Some _, None ->
              incr failures;
              Printf.printf
                "%-4s FAIL skipped_rounds field disappeared from the current \
                 record\n"
                cur.id
          | None, Some _ ->
              Printf.printf
                "%-4s note skipped_rounds absent in baseline, informational\n"
                cur.id
          | Some _, Some _ | None, None -> ());
          List.iter
            (fun (k, v) ->
              match List.assoc_opt k base.phases with
              | None ->
                  Printf.printf
                    "%-4s note per-phase field %S absent in baseline, \
                     informational\n"
                    cur.id k
              | Some bv ->
                  if not (String.equal bv v) then begin
                    incr failures;
                    Printf.printf
                      "%-4s FAIL per-phase field %S drifted (deterministic \
                       aggregate must match baseline exactly)\n"
                      cur.id k
                  end)
            cur.phases;
          let floor = base.rounds_per_sec *. (1.0 -. (threshold /. 100.0)) in
          if cur.rounds_per_sec < floor then begin
            incr failures;
            Printf.printf
              "%-4s FAIL throughput regressed beyond %.0f%%: %.0f -> %.0f \
               rounds/s (floor %.0f)\n"
              cur.id threshold base.rounds_per_sec cur.rounds_per_sec floor
          end
          else if rounds_ok then
            Printf.printf "%-4s ok   rounds=%d  %.0f -> %.0f rounds/s (%+.1f%%)\n"
              cur.id cur.rounds base.rounds_per_sec cur.rounds_per_sec
              (if base.rounds_per_sec > 0.0 then
                 (cur.rounds_per_sec -. base.rounds_per_sec)
                 /. base.rounds_per_sec *. 100.0
               else 0.0))
    current;
  List.iter
    (fun b ->
      if not (List.exists (fun c -> c.id = b.id) current) then
        Printf.printf "%-4s not in current run, skipped\n" b.id)
    baseline;
  if !compared = 0 then
    (* Every current experiment is new: nothing to gate.  [parse_experiments]
       already rejected empty runs, so this is the all-new case. *)
    Printf.printf
      "benchdiff: no overlapping experiments — %d new experiment(s), \
       informational only\n"
      (List.length current);
  if !failures > 0 then begin
    Printf.printf "benchdiff: %d regression(s) vs %s (threshold %.0f%%)\n"
      !failures baseline_path threshold;
    exit 1
  end
  else Printf.printf "benchdiff: ok (%d experiment(s) within %.0f%%)\n"
         !compared threshold
