(* benchdiff — regression gate over the bench perf records.

   Usage: benchdiff BASELINE.json CURRENT.json [--threshold PCT]

   Both files are `BENCH_engine.json`-format records written by
   [bench/main.exe --json]: a header, then one record per line.  The
   parser is [Rn_util.Jsons.parse_obj] applied line by line — the bench
   writer emits exactly one flat object per record line (with a trailing
   comma, which the parser tolerates), so lines that don't parse as flat
   objects (the header and the array/object brackets) are skipped.  For
   every experiment id present in both files:

   - [rounds] must match the baseline exactly: the simulation is
     deterministic per seed, so any drift in total simulated rounds is a
     semantic change, not noise, and fails regardless of threshold;
   - [rounds_per_sec] must not regress below baseline × (1 - PCT/100)
     (default 25%).  Speedups and experiments missing on either side are
     reported but never fail the gate, so the baseline can cover a
     superset of the experiments a smoke run executes;
   - [cells_per_sec] (campaign capacity rows) is gated with the same
     floor when the baseline record has it too, and is informational
     when the baseline predates the field;
   - per-phase aggregate fields ([phase_deliveries]/[phase_tx]/
     [phase_collisions], compact JSON int arrays from the metrics
     registry) are gated exactly when the baseline record has them too —
     deterministic like [rounds] — and are informational when the
     baseline predates them.

   Experiments present only in the current run are new — informational,
   never a failure, even when the runs share nothing (a run made of only
   new experiments passes; the ids join the baseline whenever it is next
   re-seeded).

   Exit codes: 0 ok, 1 regression, 2 usage/parse error. *)

open Rn_util

type experiment = {
  id : string;
  rounds : int;
  rounds_per_sec : float;
  skipped : int option;
      (* fast-forwarded silent rounds (sparse engine); deterministic like
         [rounds], gated exactly when the baseline records it too *)
  cells_per_sec : float option;
      (* campaign rows only; floor-gated like [rounds_per_sec] *)
  phases : (string * int list) list;
      (* optional per-phase int-array fields *)
}

let phase_field_names = [ "phase_deliveries"; "phase_tx"; "phase_collisions" ]

let fail_usage () =
  prerr_endline "usage: benchdiff BASELINE.json CURRENT.json [--threshold PCT]";
  exit 2

let read_lines path =
  match open_in_bin path with
  | exception Sys_error msg ->
      Printf.eprintf "benchdiff: %s\n" msg;
      exit 2
  | ic ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file ->
            close_in ic;
            List.rev acc
      in
      go []

let parse_experiments path =
  let record line =
    match Jsons.parse_obj line with
    | Error _ -> None (* header / bracket lines are not records *)
    | Ok fields -> (
        match Jsons.str_mem "id" fields with
        | None -> None (* the suite header object has no "id" *)
        | Some id -> (
            match
              ( Jsons.int_mem "rounds" fields,
                Jsons.float_mem "rounds_per_sec" fields )
            with
            | Some rounds, Some rps ->
                Some
                  {
                    id;
                    rounds;
                    rounds_per_sec = rps;
                    skipped = Jsons.int_mem "skipped_rounds" fields;
                    cells_per_sec = Jsons.float_mem "cells_per_sec" fields;
                    phases =
                      List.filter_map
                        (fun k ->
                          Option.map (fun v -> (k, v)) (Jsons.ints_mem k fields))
                        phase_field_names;
                  }
            | _ ->
                Printf.eprintf "benchdiff: malformed record in %s: %s\n" path
                  line;
                exit 2))
  in
  let exps = List.filter_map record (read_lines path) in
  (match exps with
  | [] ->
      Printf.eprintf "benchdiff: no experiments found in %s\n" path;
      exit 2
  | _ :: _ -> ());
  exps

let () =
  let baseline_path, current_path, threshold =
    match Array.to_list Sys.argv with
    | [ _; b; c ] -> (b, c, 25.0)
    | [ _; b; c; "--threshold"; pct ] -> (
        match float_of_string_opt pct with
        | Some t when t > 0.0 && t < 100.0 -> (b, c, t)
        | _ -> fail_usage ())
    | _ -> fail_usage ()
  in
  let baseline = parse_experiments baseline_path in
  let current = parse_experiments current_path in
  let failures = ref 0 in
  let compared = ref 0 in
  let floor_of base = base *. (1.0 -. (threshold /. 100.0)) in
  List.iter
    (fun cur ->
      match List.find_opt (fun b -> String.equal b.id cur.id) baseline with
      | None ->
          Printf.printf "%-4s new experiment (no baseline), informational\n"
            cur.id
      | Some base ->
          incr compared;
          let rounds_ok = cur.rounds = base.rounds in
          if not rounds_ok then begin
            incr failures;
            Printf.printf
              "%-4s FAIL rounds drifted: %d -> %d (deterministic count must \
               match baseline exactly)\n"
              cur.id base.rounds cur.rounds
          end;
          (match (base.skipped, cur.skipped) with
          | Some b, Some c when b <> c ->
              incr failures;
              Printf.printf
                "%-4s FAIL skipped rounds drifted: %d -> %d (deterministic \
                 count must match baseline exactly)\n"
                cur.id b c
          | Some _, None ->
              incr failures;
              Printf.printf
                "%-4s FAIL skipped_rounds field disappeared from the current \
                 record\n"
                cur.id
          | None, Some _ ->
              Printf.printf
                "%-4s note skipped_rounds absent in baseline, informational\n"
                cur.id
          | Some _, Some _ | None, None -> ());
          List.iter
            (fun (k, v) ->
              match List.assoc_opt k base.phases with
              | None ->
                  Printf.printf
                    "%-4s note per-phase field %S absent in baseline, \
                     informational\n"
                    cur.id k
              | Some bv ->
                  if not (List.equal Int.equal bv v) then begin
                    incr failures;
                    Printf.printf
                      "%-4s FAIL per-phase field %S drifted (deterministic \
                       aggregate must match baseline exactly)\n"
                      cur.id k
                  end)
            cur.phases;
          (match (base.cells_per_sec, cur.cells_per_sec) with
          | Some b, Some c when c < floor_of b ->
              incr failures;
              Printf.printf
                "%-4s FAIL campaign throughput regressed beyond %.0f%%: %.1f \
                 -> %.1f cells/s (floor %.1f)\n"
                cur.id threshold b c (floor_of b)
          | Some _, None ->
              incr failures;
              Printf.printf
                "%-4s FAIL cells_per_sec field disappeared from the current \
                 record\n"
                cur.id
          | None, Some _ ->
              Printf.printf
                "%-4s note cells_per_sec absent in baseline, informational\n"
                cur.id
          | Some _, Some _ | None, None -> ());
          if cur.rounds_per_sec < floor_of base.rounds_per_sec then begin
            incr failures;
            Printf.printf
              "%-4s FAIL throughput regressed beyond %.0f%%: %.0f -> %.0f \
               rounds/s (floor %.0f)\n"
              cur.id threshold base.rounds_per_sec cur.rounds_per_sec
              (floor_of base.rounds_per_sec)
          end
          else if rounds_ok then
            Printf.printf
              "%-4s ok   rounds=%d  %.0f -> %.0f rounds/s (%+.1f%%)\n" cur.id
              cur.rounds base.rounds_per_sec cur.rounds_per_sec
              (if base.rounds_per_sec > 0.0 then
                 (cur.rounds_per_sec -. base.rounds_per_sec)
                 /. base.rounds_per_sec *. 100.0
               else 0.0))
    current;
  List.iter
    (fun b ->
      if not (List.exists (fun c -> String.equal c.id b.id) current) then
        Printf.printf "%-4s not in current run, skipped\n" b.id)
    baseline;
  if !compared = 0 then
    (* Every current experiment is new: nothing to gate.  [parse_experiments]
       already rejected empty runs, so this is the all-new case. *)
    Printf.printf
      "benchdiff: no overlapping experiments — %d new experiment(s), \
       informational only\n"
      (List.length current);
  if !failures > 0 then begin
    Printf.printf "benchdiff: %d regression(s) vs %s (threshold %.0f%%)\n"
      !failures baseline_path threshold;
    exit 1
  end
  else
    Printf.printf "benchdiff: ok (%d experiment(s) within %.0f%%)\n" !compared
      threshold
