(* audit — the suppression-debt ledger behind `rblint --audit`.

   Every [rblint:allow] marker is debt: it documents a finding someone
   decided to live with.  The audit makes that debt visible — one row per
   allow with its rule, reason, whether it still suppresses anything, and
   a best-effort age (last commit that touched the marker's line).  A
   *stale* allow suppresses nothing; it outlived its finding and must be
   deleted, so the audit exit code treats it as an error. *)

(* Best-effort single-line git query; None on any failure (no repo, file
   not tracked, old git).  Ages are advisory — the ledger stays correct
   without them. *)
let run_git args =
  let cmd = "git " ^ args ^ " 2>/dev/null" in
  match Unix.open_process_in cmd with
  | exception _ -> None
  | ic -> (
      let out = try input_line ic with End_of_file -> "" in
      (try
         while true do
           ignore (input_line ic)
         done
       with End_of_file -> ());
      match Unix.close_process_in ic with
      | Unix.WEXITED 0 when out <> "" -> Some out
      | _ -> None)

(* Age in days of the marker's line, from `git log -L`.  The linter often
   runs from the dune context root (_build/default), where the sources
   are untracked copies — retry from two directories up, which is the
   repo root in that layout. *)
let age_days ~now (e : Lint.ledger_entry) =
  let query extra =
    run_git
      (Printf.sprintf "%slog -1 --format=%%ct -s -L %d,%d:%s" extra e.Lint.l_line
         e.Lint.l_line (Filename.quote e.Lint.l_file))
  in
  let raw =
    match query "" with Some r -> Some r | None -> query "-C ../../ "
  in
  match raw with
  | Some s -> (
      match float_of_string_opt s with
      | Some t -> Some (max 0 (int_of_float ((now -. t) /. 86400.)))
      | None -> None)
  | None -> None

let json_of_entry ~age (e : Lint.ledger_entry) =
  Printf.sprintf
    "{ \"file\": %s, \"line\": %d, \"rule\": %s, \"reason\": %s, \"used\": \
     %b, \"age_days\": %s }"
    (Rn_util.Jsons.quote e.Lint.l_file)
    e.Lint.l_line
    (Rn_util.Jsons.quote e.Lint.l_rule)
    (Rn_util.Jsons.quote e.Lint.l_reason)
    e.Lint.l_used
    (match age with Some d -> string_of_int d | None -> "null")

(* Render the ledger.  Returns (lines to print, stale count). *)
let report ~json ?(now = Unix.time ()) ?(ages = true) entries =
  let rows =
    List.map
      (fun e -> (e, if ages then age_days ~now e else None))
      entries
  in
  let stale =
    List.length (List.filter (fun (e, _) -> not e.Lint.l_used) rows)
  in
  let lines =
    if json then
      [
        Printf.sprintf "{ \"allows\": [%s], \"total\": %d, \"stale\": %d }"
          (String.concat ", "
             (List.map (fun (e, a) -> json_of_entry ~age:a e) rows))
          (List.length rows) stale;
      ]
    else
      List.map
        (fun ((e : Lint.ledger_entry), a) ->
          Printf.sprintf "%s:%d allow %s %s(%s)%s" e.Lint.l_file e.Lint.l_line
            e.Lint.l_rule
            (if e.Lint.l_used then "" else "STALE ")
            e.Lint.l_reason
            (match a with
            | Some d -> Printf.sprintf " [age %dd]" d
            | None -> ""))
        rows
      @ [ Printf.sprintf "%d allows, %d stale" (List.length rows) stale ]
  in
  (lines, stale)
