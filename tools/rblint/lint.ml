(* rblint — repo-specific static analysis for the radio-broadcast simulator.

   v2: the analysis runs on the *typed* AST.  The CLI reads the `.cmt`
   files dune already emits (`-bin-annot`), so every identifier arrives as
   a resolved [Path.t] (aliases and `open`s are seen through) and every
   expression carries its inferred type.  A second frontend typechecks a
   source string in-process (stdlib-only scope) so the fixture self-tests
   stay hermetic.  Enforced invariants (DESIGN.md §8–§9):

     R1  no [Stdlib.Random] outside lib/util/rng.ml — all randomness must
         flow through the seeded SplitMix64 [Rng] so every trial replays
         from one integer seed.
     R2  no polymorphic comparison inside lib/util, lib/graph, lib/core,
         lib/radio: bare [compare], [Hashtbl.hash], comparison operators
         used as values, and — now that operand *types* are visible — any
         [=]/[<]/… whose operands are not of a type the compiler
         specializes (int, char, bool, unit, float, string, bytes,
         int32, int64, nativeint).
     R3  no [Obj.magic] / [Obj.repr] (any use of [Obj]) anywhere.
     R4  no console output from lib/ — library code returns data; only
         bin/, bench/ and examples/ print.
     R5  no [List.*] traversal and no closure-allocating [Array]
         iteration inside a function tagged [@@zero_alloc_hot]; callees
         are resolved through module aliases and [open]s.
     R6  no top-level mutable state ([ref] cells, arrays, [Bytes],
         [Hashtbl]/[Buffer]/[Queue]/[Stack], records with mutable
         fields) in a module reachable from a [Domain.spawn] worker,
         unless it is an [Atomic.t] or explicitly suppressed.
     R7  no closure passed to [Domain.spawn] may capture (directly or
         through a locally defined worker function) non-atomic mutable
         state.

   Findings print as "file:line:col RULE message".  A finding is
   suppressed by an inline [rblint:allow RULE reason] comment marker on
   the same line or the line directly above; a suppression with an empty
   reason is itself an error (R0) and suppresses nothing. *)

type finding = {
  file : string;
  line : int;
  col : int;
  rule : string;
  msg : string;
}

let pp_finding f = Printf.sprintf "%s:%d:%d %s %s" f.file f.line f.col f.rule f.msg

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_of_finding f =
  Printf.sprintf
    "{ \"file\": \"%s\", \"line\": %d, \"col\": %d, \"rule\": \"%s\", \
     \"msg\": \"%s\" }"
    (json_escape f.file) f.line f.col (json_escape f.rule) (json_escape f.msg)

(* ------------------------------------------------------------------ *)
(* Path scoping                                                        *)

(* Normalize away leading "./" and backslashes so scope checks work on the
   paths dune hands us as well as plain CLI paths. *)
let normalize path =
  let path = String.map (fun c -> if c = '\\' then '/' else c) path in
  if String.length path > 2 && String.sub path 0 2 = "./" then
    String.sub path 2 (String.length path - 2)
  else path

let has_dir ~dir path =
  let path = normalize path and dir = dir ^ "/" in
  let n = String.length path and d = String.length dir in
  (n >= d && String.sub path 0 d = dir)
  ||
  let infix = "/" ^ dir in
  let di = String.length infix in
  let rec scan i =
    i + di <= n && (String.sub path i di = infix || scan (i + 1))
  in
  scan 0

let is_rng_ml path =
  let path = normalize path in
  let suffix = "lib/util/rng.ml" in
  let n = String.length path and s = String.length suffix in
  n >= s
  && String.sub path (n - s) s = suffix
  && (n = s || path.[n - s - 1] = '/')

let r2_scope path =
  List.exists
    (fun d -> has_dir ~dir:d path)
    [ "lib/util"; "lib/graph"; "lib/core"; "lib/radio"; "lib/obs" ]

let r4_scope path = has_dir ~dir:"lib" path

(* ------------------------------------------------------------------ *)
(* Suppressions                                                        *)

type allow = { a_line : int; a_rule : string; a_reason : string }

(* Scan raw source for [rblint:allow RULE reason] markers (written inside a
   comment).  The typed tree drops comments, so this is a plain text scan;
   a marker applies to findings on its own line and on the following
   line. *)
let collect_allows source =
  let allows = ref [] in
  let lines = String.split_on_char '\n' source in
  List.iteri
    (fun i line ->
      let lno = i + 1 in
      let key = "rblint:allow" in
      match
        let kl = String.length key in
        let rec find j =
          if j + kl > String.length line then None
          else if String.sub line j kl = key then Some (j + kl)
          else find (j + 1)
        in
        find 0
      with
      | None -> ()
      | Some start ->
          let stop =
            let rec find j =
              if j + 2 > String.length line then String.length line
              else if String.sub line j 2 = "*)" then j
              else find (j + 1)
            in
            find start
          in
          let body = String.trim (String.sub line start (stop - start)) in
          let rule, reason =
            match String.index_opt body ' ' with
            | None -> (body, "")
            | Some sp ->
                ( String.sub body 0 sp,
                  String.trim
                    (String.sub body (sp + 1) (String.length body - sp - 1)) )
          in
          allows := { a_line = lno; a_rule = rule; a_reason = reason } :: !allows)
    lines;
  List.rev !allows

(* Split allows into R0 findings (malformed: missing rule or reason) and the
   valid list. *)
let validate_allows ~file allows =
  let invalid =
    List.filter_map
      (fun a ->
        if a.a_rule = "" || a.a_reason = "" then
          Some
            {
              file;
              line = a.a_line;
              col = 0;
              rule = "R0";
              msg = "rblint:allow needs a rule and a non-empty reason";
            }
        else None)
      allows
  in
  let valid = List.filter (fun a -> a.a_rule <> "" && a.a_reason <> "") allows in
  (invalid, valid)

let filter_allowed valid findings =
  List.filter
    (fun f ->
      not
        (List.exists
           (fun a ->
             a.a_rule = f.rule && (a.a_line = f.line || a.a_line = f.line - 1))
           valid))
    findings

(* ------------------------------------------------------------------ *)
(* Typed-AST analysis                                                  *)

open Typedtree

type unit_info = {
  u_path : string;  (** normalized source path, used for scoping *)
  u_modname : string;  (** compilation-unit name, e.g. "Rn_radio__Runner" *)
  u_imports : string list;  (** unit names this module depends on *)
  u_spawns : bool;  (** contains a [Domain.spawn] occurrence *)
  u_findings : finding list;  (** R0–R5, R7 — suppressions already applied *)
  u_r6 : finding list;  (** R6 candidates — filtered at [finalize] time *)
  u_allows : allow list;  (** valid suppressions, for the R6 filter *)
}

let loc_finding ~file (loc : Location.t) rule msg =
  let p = loc.Location.loc_start in
  { file; line = p.pos_lnum; col = p.pos_cnum - p.pos_bol; rule; msg }

let poly_ops = [ "="; "<"; ">"; "<="; ">="; "<>" ]

(* Resolve a path through locally-seen module aliases (module L = List), so
   [L.map] compares equal to [Stdlib.List.map]. *)
let rec resolve_alias aliases p =
  match p with
  | Path.Pident id -> (
      match Hashtbl.find_opt aliases id with
      | Some p' -> resolve_alias aliases p'
      | None -> p)
  | Path.Pdot (p', s) -> Path.Pdot (resolve_alias aliases p', s)
  | _ -> p

(* Flatten a resolved path to its component names, root first: the path of
   [Random.int] becomes ["Stdlib"; "Random"; "int"].  Requiring the
   "Stdlib" root makes the checks robust against local shadowing (a
   module-local [compare] is a [Pident] without the root). *)
let parts_of aliases p =
  match Path.flatten (resolve_alias aliases p) with
  | `Ok (id, rest) -> Ident.name id :: rest
  | `Contains_apply -> []

(* --- type classification ------------------------------------------- *)

(* Rehydrate the (summarized) environment stored in a cmt so abbreviations
   expand and type declarations resolve; fall back to the raw env when the
   load path cannot serve a module. *)
let real_env env = try Envaux.env_of_only_summary env with _ -> env

let expand env ty = try Ctype.expand_head env ty with _ -> ty

let type_to_string ty =
  try Format.asprintf "%a" Printtyp.type_expr ty with _ -> "_"

(* Types whose comparisons the compiler specializes to primitive calls
   (Translcore's comparison table): polymorphic [=] on these costs no
   caml_compare dispatch, so R2 leaves them alone. *)
let specialized_paths =
  [
    Predef.path_int; Predef.path_char; Predef.path_bool; Predef.path_unit;
    Predef.path_float; Predef.path_string; Predef.path_bytes;
    Predef.path_int32; Predef.path_int64; Predef.path_nativeint;
  ]

let comparison_specialized env ty =
  match Types.get_desc (expand env ty) with
  | Types.Tconstr (p, _, _) -> List.exists (Path.same p) specialized_paths
  | _ -> false

(* [Stdlib.min]/[max] get a narrower allowlist than the comparison
   operators: immediate types only.  Float is specialized for [=]/[<] but
   min/max on float is still wrong — the polymorphic [<=] inside them is
   false for every NaN operand, so the result depends on operand order and
   disagrees with a Float.compare-based fold (the Stats.summarize bug this
   rule extension flushed out). *)
let immediate_paths =
  [ Predef.path_int; Predef.path_char; Predef.path_bool; Predef.path_unit ]

let comparison_immediate env ty =
  match Types.get_desc (expand env ty) with
  | Types.Tconstr (p, _, _) -> List.exists (Path.same p) immediate_paths
  | _ -> false

let minmax_msg op ty =
  "polymorphic " ^ op ^ " at type " ^ ty
  ^ ": NaN-unsafe on float (order-dependent, disagrees with Float.compare) \
     and unspecialized on boxed types — use an explicit Float.compare-based \
     fold or a monomorphic min/max"

let type_parts p =
  match Path.flatten p with
  | `Ok (id, rest) -> (
      match Ident.name id :: rest with
      | "Stdlib" :: rest when rest <> [] -> rest
      | parts -> parts)
  | `Contains_apply -> []

(* Shared-mutability classification of a value's type, used by R6/R7.
   [`Atomic] is the sanctioned cross-domain cell; [`Mutable what] is
   anything a second domain could race on. *)
let rec mutability env ty =
  let ty = expand env ty in
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> (
      if
        Path.same p Predef.path_array
        || Path.same p Predef.path_bytes
        || Path.same p Predef.path_floatarray
      then `Mutable "array/bytes"
      else
        match type_parts p with
        | [ "Atomic"; "t" ] -> `Atomic
        | [ "ref" ] -> `Mutable "ref cell"
        | [ "Hashtbl"; "t" ] -> `Mutable "hash table"
        | [ "Buffer"; "t" ] -> `Mutable "buffer"
        | [ "Queue"; "t" ] -> `Mutable "queue"
        | [ "Stack"; "t" ] -> `Mutable "stack"
        | [ "Random"; "State"; "t" ] -> `Mutable "PRNG state"
        | _ -> (
            match Env.find_type p env with
            | decl -> (
                match decl.Types.type_kind with
                | Types.Type_record (lbls, _)
                  when List.exists
                         (fun l -> l.Types.ld_mutable = Asttypes.Mutable)
                         lbls ->
                    `Mutable "record with mutable fields"
                | _ -> `Immutable)
            | exception _ -> `Immutable))
  | Types.Tpoly (ty, _) -> mutability env ty
  | _ -> `Immutable

let is_function_type env ty =
  match Types.get_desc (expand env ty) with
  | Types.Tarrow _ -> true
  | _ -> false

(* --- per-structure analysis ---------------------------------------- *)

let closure_alloc_array_fns =
  [ "iter"; "iteri"; "map"; "mapi"; "fold_left"; "fold_right"; "to_list";
    "of_list" ]

let print_fns =
  [
    "print_string"; "print_endline"; "print_newline"; "print_char";
    "print_int"; "print_float"; "print_bytes"; "prerr_string";
    "prerr_endline"; "prerr_newline"; "prerr_char"; "prerr_int";
    "prerr_float"; "prerr_bytes"; "stdout"; "stderr";
  ]

let formatted_print_fns =
  [
    "printf"; "eprintf"; "pr"; "epr"; "print_string"; "print_newline";
    "print_flush"; "std_formatter"; "err_formatter"; "stdout"; "stderr";
  ]

(* Analyze one typed structure.  Returns (findings, r6 candidates, spawns). *)
let analyze ~path str =
  let file = normalize path in
  let findings = ref [] in
  let r6 = ref [] in
  let spawns = ref false in
  let emit loc rule msg = findings := loc_finding ~file loc rule msg :: !findings in
  let emit_r6 loc msg = r6 := loc_finding ~file loc "R6" msg :: !r6 in
  let in_r2 = r2_scope file and in_r4 = r4_scope file in
  let rng_exempt = is_rng_ml file in
  let hot = ref 0 in
  let aliases : (Ident.t, Path.t) Hashtbl.t = Hashtbl.create 16 in
  (* Map of every let-bound ident to its definition, so a worker function
     passed to Domain.spawn can be expanded one level for R7. *)
  let val_defs : (Ident.t, expression) Hashtbl.t = Hashtbl.create 64 in
  let check_ident loc parts =
    (match parts with
    | "Stdlib" :: "Random" :: _ when not rng_exempt ->
        emit loc "R1"
          "Stdlib.Random is banned: draw through the seeded Rng (SplitMix64) \
           so runs replay from one seed"
    | _ -> ());
    (match parts with
    | "Stdlib" :: "Obj" :: _ ->
        emit loc "R3" "Obj.magic/Obj.repr break abstraction and memory safety"
    | _ -> ());
    (if in_r2 then
       match parts with
       | [ "Stdlib"; "compare" ] ->
           emit loc "R2"
             "polymorphic compare: use a monomorphic comparator \
              (Int.compare, Float.compare, ...)"
       | [ "Stdlib"; "Hashtbl"; "hash" ] ->
           emit loc "R2" "polymorphic Hashtbl.hash: hash a concrete key type"
       | _ -> ());
    if in_r4 then begin
      (match parts with
      | [ "Stdlib"; p ] when List.mem p print_fns ->
          emit loc "R4"
            ("console output from lib/ (" ^ p
           ^ "): return data and let bin/bench/examples print")
      | _ -> ());
      match parts with
      | [ "Stdlib"; ("Printf" | "Format"); fn ] | [ "Fmt"; fn ]
        when List.mem fn formatted_print_fns ->
          emit loc "R4"
            "console output from lib/: return data and let bin/bench/examples \
             print"
      | _ -> ()
    end;
    if !hot > 0 then
      match parts with
      | "Stdlib" :: "List" :: _ ->
          emit loc "R5"
            "List traversal inside [@@zero_alloc_hot]: lists allocate; use \
             preallocated arrays and indices"
      | [ "Stdlib"; "Array"; fn ] when List.mem fn closure_alloc_array_fns ->
          emit loc "R5"
            ("closure-allocating Array." ^ fn
           ^ " inside [@@zero_alloc_hot]: use an explicit for-loop")
      | _ -> ()
  in
  (* R7: walk the expression passed to Domain.spawn; any free ident of
     non-atomic mutable type is shared writable state crossing the domain
     boundary.  Worker functions bound in the same unit are expanded one
     level so [Domain.spawn (worker i)] is seen through. *)
  let check_spawn_arg arg =
    let bound : (Ident.t, unit) Hashtbl.t = Hashtbl.create 32 in
    let expanded : (Ident.t, unit) Hashtbl.t = Hashtbl.create 8 in
    let iter = Tast_iterator.default_iterator in
    let pat_hook : type k. Tast_iterator.iterator -> k general_pattern -> unit
        =
     fun it p ->
      List.iter (fun id -> Hashtbl.replace bound id ()) (pat_bound_idents p);
      iter.pat it p
    in
    let rec expr_hook it e =
      (match e.exp_desc with
      | Texp_for (id, _, _, _, _, _) -> Hashtbl.replace bound id ()
      | _ -> ());
      (match e.exp_desc with
      | Texp_ident (p, _, _) -> (
          let env = real_env e.exp_env in
          let free_local id = not (Hashtbl.mem bound id) in
          let flag what =
            emit e.exp_loc "R7"
              ("closure passed to Domain.spawn captures non-atomic mutable \
                state `" ^ Path.name p ^ "` (" ^ what ^ " : "
              ^ type_to_string e.exp_type
              ^ "): share through Atomic.t, or prove exclusive ownership and \
                 suppress with a reasoned rblint:allow R7 marker")
          in
          match p with
          | Path.Pident id when free_local id -> (
              match mutability env e.exp_type with
              | `Mutable what -> flag what
              | `Atomic | `Immutable ->
                  if
                    is_function_type env e.exp_type
                    && not (Hashtbl.mem expanded id)
                  then
                    match Hashtbl.find_opt val_defs id with
                    | Some def ->
                        Hashtbl.replace expanded id ();
                        expr_hook it def
                    | None -> ())
          | Path.Pident _ -> ()
          | _ -> (
              (* Cross-module mutable state referenced from a worker. *)
              match mutability env e.exp_type with
              | `Mutable what -> flag what
              | `Atomic | `Immutable -> ()))
      | _ -> ());
      iter.expr it e
    in
    let it = { iter with expr = expr_hook; pat = pat_hook } in
    expr_hook it arg
  in
  (* R6 candidates: mutable state constructed while initializing a
     top-level binding.  Function bodies are skipped — cells created per
     call are not shared — and Atomic.make is the sanctioned escape. *)
  let scan_top_rhs rhs =
    let iter = Tast_iterator.default_iterator in
    let rec expr_hook it e =
      match e.exp_desc with
      | Texp_function _ -> ()
      | Texp_array _ ->
          emit_r6 e.exp_loc
            "top-level array literal is cross-domain mutable state: use \
             Atomic.t, immutable data, or a reasoned rblint:allow R6 marker";
          iter.expr it e
      | Texp_record { fields; _ }
        when Array.exists
               (fun (l, _) -> l.Types.lbl_mut = Asttypes.Mutable)
               fields ->
          emit_r6 e.exp_loc
            "top-level record with mutable fields is cross-domain mutable \
             state: use Atomic.t, immutable data, or a reasoned \
             rblint:allow R6 marker";
          iter.expr it e
      | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) -> (
          let parts = parts_of aliases p in
          let ctor what =
            emit_r6 e.exp_loc
              ("top-level mutable state (" ^ what
             ^ ") in a module reachable from a Domain.spawn worker: use \
                Atomic.t or document domain safety with a reasoned \
                rblint:allow R6 marker")
          in
          match parts with
          | [ "Stdlib"; "Atomic"; "make" ] -> ()
          | [ "Stdlib"; "ref" ] -> ctor "ref cell"
          | [ "Stdlib"; "Array";
              ( "make" | "init" | "create_float" | "make_matrix" | "copy"
              | "of_list" | "append" | "sub" | "concat" ) ] ->
              ctor "array"
          | [ "Stdlib"; "Bytes";
              ("create" | "make" | "init" | "of_string" | "copy" | "sub") ] ->
              ctor "bytes"
          | [ "Stdlib"; "Hashtbl"; "create" ] -> ctor "hash table"
          | [ "Stdlib"; "Buffer"; "create" ] -> ctor "buffer"
          | [ "Stdlib"; "Queue"; "create" ] -> ctor "queue"
          | [ "Stdlib"; "Stack"; "create" ] -> ctor "stack"
          | _ ->
              List.iter (fun (_, eo) -> Option.iter (expr_hook it) eo) args)
      | _ -> iter.expr it e
    in
    let it = { iter with expr = expr_hook } in
    expr_hook it rhs
  in
  (* --- main traversal ---------------------------------------------- *)
  let iter = Tast_iterator.default_iterator in
  let rec expr_hook it e =
    match e.exp_desc with
    | Texp_apply (({ exp_desc = Texp_ident (p, _, _); _ } as fn), args) -> (
        let parts = parts_of aliases p in
        match parts with
        | [ "Stdlib"; op ] when List.mem op poly_ops ->
            (if in_r2 then
               match args with
               | [ (_, Some a); (_, Some b) ] ->
                   let spec x =
                     comparison_specialized (real_env x.exp_env) x.exp_type
                   in
                   if not (spec a && spec b) then
                     let bad = if spec a then b else a in
                     emit fn.exp_loc "R2"
                       ("polymorphic (" ^ op ^ ") at type "
                       ^ type_to_string bad.exp_type
                       ^ ": the compiler cannot specialize this comparison — \
                          match instead, or use a monomorphic equal/compare")
               | _ ->
                   emit fn.exp_loc "R2"
                     ("comparison operator (" ^ op
                    ^ ") partially applied: pass a monomorphic comparator"));
            List.iter (fun (_, eo) -> Option.iter (expr_hook it) eo) args
        | [ "Stdlib"; (("min" | "max") as op) ] ->
            (if in_r2 then
               match args with
               | [ (_, Some a); (_, Some b) ] ->
                   let imm x =
                     comparison_immediate (real_env x.exp_env) x.exp_type
                   in
                   if not (imm a && imm b) then
                     let bad = if imm a then b else a in
                     emit fn.exp_loc "R2"
                       (minmax_msg op (type_to_string bad.exp_type))
               | _ ->
                   emit fn.exp_loc "R2"
                     (op
                    ^ " partially applied: pass a monomorphic min/max or \
                       comparator"));
            List.iter (fun (_, eo) -> Option.iter (expr_hook it) eo) args
        | [ "Stdlib"; "Domain"; "spawn" ] ->
            spawns := true;
            List.iter
              (fun (_, eo) -> Option.iter (fun a -> check_spawn_arg a) eo)
              args;
            List.iter (fun (_, eo) -> Option.iter (expr_hook it) eo) args
        | _ ->
            check_ident fn.exp_loc parts;
            List.iter (fun (_, eo) -> Option.iter (expr_hook it) eo) args)
    | Texp_ident (p, _, _) -> (
        let parts = parts_of aliases p in
        match parts with
        | [ "Stdlib"; op ] when List.mem op poly_ops ->
            if in_r2 then
              emit e.exp_loc "R2"
                ("comparison operator (" ^ op
               ^ ") used as a value: pass a monomorphic comparator")
        | [ "Stdlib"; (("min" | "max") as op) ] ->
            (* Used as a value (e.g. [Array.fold_left min] — the exact shape
               of the Stats.summarize bug): the instantiated arrow type tells
               us the element type. *)
            if in_r2 then begin
              let env = real_env e.exp_env in
              match Types.get_desc (expand env e.exp_type) with
              | Types.Tarrow (_, targ, _, _)
                when comparison_immediate env targ ->
                  ()
              | _ -> emit e.exp_loc "R2" (minmax_msg op (type_to_string e.exp_type))
            end
        | [ "Stdlib"; "Domain"; "spawn" ] -> spawns := true
        | _ -> check_ident e.exp_loc parts)
    | Texp_letmodule (Some id, _, _, { mod_desc = Tmod_ident (p, _); _ }, _) ->
        Hashtbl.replace aliases id (resolve_alias aliases p);
        iter.expr it e
    | _ -> iter.expr it e
  in
  let module_expr_hook it m =
    (match m.mod_desc with
    | Tmod_ident (p, _) -> (
        let parts = parts_of aliases p in
        match parts with
        | "Stdlib" :: "Random" :: _ when not rng_exempt ->
            emit m.mod_loc "R1"
              "aliasing Stdlib.Random is banned: draw through the seeded Rng"
        | "Stdlib" :: "Obj" :: _ ->
            emit m.mod_loc "R3" "aliasing Obj breaks abstraction"
        | _ -> ())
    | _ -> ());
    iter.module_expr it m
  in
  let module_binding_hook it mb =
    (match (mb.mb_id, mb.mb_expr.mod_desc) with
    | Some id, Tmod_ident (p, _) ->
        Hashtbl.replace aliases id (resolve_alias aliases p)
    | _ -> ());
    iter.module_binding it mb
  in
  let value_binding_hook it vb =
    (match vb.vb_pat.pat_desc with
    | Tpat_var (id, _) -> Hashtbl.replace val_defs id vb.vb_expr
    | _ -> ());
    let is_hot =
      List.exists
        (fun a -> a.Parsetree.attr_name.txt = "zero_alloc_hot")
        vb.vb_attributes
    in
    if is_hot then begin
      incr hot;
      iter.value_binding it vb;
      decr hot
    end
    else iter.value_binding it vb
  in
  let it =
    {
      iter with
      expr = expr_hook;
      module_expr = module_expr_hook;
      module_binding = module_binding_hook;
      value_binding = value_binding_hook;
    }
  in
  it.structure it str;
  (* R6 pass: top-level bindings only, including nested top-level modules. *)
  let rec scan_structure s =
    List.iter
      (fun item ->
        match item.str_desc with
        | Tstr_value (_, vbs) -> List.iter (fun vb -> scan_top_rhs vb.vb_expr) vbs
        | Tstr_module mb -> scan_module mb.mb_expr
        | Tstr_recmodule mbs -> List.iter (fun mb -> scan_module mb.mb_expr) mbs
        | _ -> ())
      s.str_items
  and scan_module m =
    match m.mod_desc with
    | Tmod_structure s -> scan_structure s
    | Tmod_constraint (m, _, _, _) -> scan_module m
    | _ -> ()
  in
  scan_structure str;
  let sort fs =
    List.sort
      (fun a b ->
        match Int.compare a.line b.line with
        | 0 -> Int.compare a.col b.col
        | c -> c)
      fs
  in
  (sort (List.rev !findings), sort (List.rev !r6), !spawns)

(* ------------------------------------------------------------------ *)
(* Frontends                                                           *)

let make_unit ~path ~source ~modname ~imports str =
  let file = normalize path in
  let findings, r6, sp = analyze ~path str in
  let r0, valid = validate_allows ~file (collect_allows source) in
  {
    u_path = file;
    u_modname = modname;
    u_imports = imports;
    u_spawns = sp;
    u_findings = r0 @ filter_allowed valid findings;
    u_r6 = r6;
    u_allows = valid;
  }

let error_unit ~path ~rule msg =
  {
    u_path = normalize path;
    u_modname = "";
    u_imports = [];
    u_spawns = false;
    u_findings = [ { file = normalize path; line = 1; col = 0; rule; msg } ];
    u_r6 = [];
    u_allows = [];
  }

(* cmt frontend: the CLI path.  Sets the load path recorded in the cmt so
   the stored environments rehydrate (run from the dune context root,
   where those relative paths resolve). *)
let unit_of_cmt cmt_path =
  match Cmt_format.read_cmt cmt_path with
  | exception _ ->
      `Error
        (error_unit ~path:cmt_path ~rule:"CMT"
           ("unreadable cmt file: " ^ cmt_path))
  | cmt -> (
      match (cmt.Cmt_format.cmt_sourcefile, cmt.Cmt_format.cmt_annots) with
      | Some src, Cmt_format.Implementation str
        when Filename.check_suffix src ".ml" ->
          Load_path.init ~auto_include:Load_path.no_auto_include
            cmt.Cmt_format.cmt_loadpath;
          Envaux.reset_cache ();
          let source =
            match open_in_bin src with
            | exception Sys_error _ -> ""
            | ic ->
                let len = in_channel_length ic in
                let s = really_input_string ic len in
                close_in ic;
                s
          in
          `Unit
            (make_unit ~path:src ~source ~modname:cmt.Cmt_format.cmt_modname
               ~imports:(List.map fst cmt.Cmt_format.cmt_imports)
               str)
      | _ -> `Skip)

(* In-process typechecking frontend (stdlib scope only): used by the
   fixture self-tests so they need no build artifacts. *)
let typecheck_initialized = ref false

let lint_unit_of_source ~path ~source =
  if not !typecheck_initialized then begin
    typecheck_initialized := true;
    Clflags.dont_write_files := true;
    ignore (Warnings.parse_options false "-a");
    Compmisc.init_path ()
  end;
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf (normalize path);
  match Parse.implementation lexbuf with
  | exception exn ->
      let msg =
        match Location.error_of_exn exn with
        | Some (`Ok e) -> Format.asprintf "%a" Location.print_report e
        | _ -> Printexc.to_string exn
      in
      error_unit ~path ~rule:"PARSE" msg
  | ast -> (
      Env.reset_cache ();
      let env = Compmisc.initial_env () in
      match Typemod.type_structure env ast with
      | exception exn ->
          let msg =
            match Location.error_of_exn exn with
            | Some (`Ok e) -> Format.asprintf "%a" Location.print_report e
            | _ -> Printexc.to_string exn
          in
          error_unit ~path ~rule:"TYPE" msg
      | str, _, _, _, _ ->
          let modname =
            String.capitalize_ascii
              (Filename.remove_extension (Filename.basename path))
          in
          make_unit ~path ~source ~modname ~imports:[] str)

(* ------------------------------------------------------------------ *)
(* Whole-tree finalization: Domain-reachability and R6                 *)

(* A module is domain-shared when code in it can run on a spawned domain:
   (a) it calls Domain.spawn itself, or (b) it depends on a spawning
   module — its closures may be handed to a worker (Runner.map f) — and
   then transitively everything such a module depends on, since the worker
   may call into any of it. *)
let domain_reachable units =
  let by_name = Hashtbl.create 64 in
  List.iter
    (fun u -> if u.u_modname <> "" then Hashtbl.replace by_name u.u_modname u)
    units;
  let spawner_names =
    List.filter_map (fun u -> if u.u_spawns then Some u.u_modname else None) units
  in
  let seeds =
    List.filter
      (fun u ->
        u.u_spawns
        || List.exists (fun i -> List.mem i spawner_names) u.u_imports)
      units
  in
  let reachable = Hashtbl.create 64 in
  let rec visit u =
    if not (Hashtbl.mem reachable u.u_modname) then begin
      Hashtbl.replace reachable u.u_modname ();
      List.iter
        (fun i ->
          match Hashtbl.find_opt by_name i with
          | Some dep -> visit dep
          | None -> ())
        u.u_imports
    end
  in
  List.iter visit seeds;
  fun u -> u.u_modname <> "" && Hashtbl.mem reachable u.u_modname

let finalize units =
  let reachable = domain_reachable units in
  let all =
    List.concat_map
      (fun u ->
        let r6 = if reachable u then filter_allowed u.u_allows u.u_r6 else [] in
        u.u_findings @ r6)
      units
  in
  List.sort
    (fun a b ->
      match String.compare a.file b.file with
      | 0 -> (
          match Int.compare a.line b.line with
          | 0 -> Int.compare a.col b.col
          | c -> c)
      | c -> c)
    all

(* Convenience for tests: lint one standalone source string (typechecked
   in-process; the module is its own reachability universe, so R6 fires
   only when the source itself spawns domains). *)
let lint_source ~path ~source = finalize [ lint_unit_of_source ~path ~source ]
