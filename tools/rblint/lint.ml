(* rblint — repo-specific static analysis for the radio-broadcast simulator.

   v2: the analysis runs on the *typed* AST.  The CLI reads the `.cmt`
   files dune already emits (`-bin-annot`), so every identifier arrives as
   a resolved [Path.t] (aliases and `open`s are seen through) and every
   expression carries its inferred type.  A second frontend typechecks a
   source string in-process (stdlib-only scope) so the fixture self-tests
   stay hermetic.  Enforced invariants (DESIGN.md §8–§9):

     R1  no [Stdlib.Random] outside lib/util/rng.ml — all randomness must
         flow through the seeded SplitMix64 [Rng] so every trial replays
         from one integer seed.
     R2  no polymorphic comparison inside lib/util, lib/graph, lib/core,
         lib/radio: bare [compare], [Hashtbl.hash], comparison operators
         used as values, and — now that operand *types* are visible — any
         [=]/[<]/… whose operands are not of a type the compiler
         specializes (int, char, bool, unit, float, string, bytes,
         int32, int64, nativeint).
     R3  no [Obj.magic] / [Obj.repr] (any use of [Obj]) anywhere.
     R4  no console output from lib/ — library code returns data; only
         bin/, bench/ and examples/ print.
     R5  no [List.*] traversal and no closure-allocating [Array]
         iteration inside a function tagged [@@zero_alloc_hot]; callees
         are resolved through module aliases and [open]s.
     R6  no top-level mutable state ([ref] cells, arrays, [Bytes],
         [Hashtbl]/[Buffer]/[Queue]/[Stack], records with mutable
         fields) in a module reachable from a [Domain.spawn] worker,
         unless it is an [Atomic.t] or explicitly suppressed.
     R7  no closure passed to [Domain.spawn] may capture (directly or
         through a locally defined worker function) non-atomic mutable
         state.

   v3 adds three interprocedural rules.  The traversal below doubles as
   a fact collector (call-graph nodes, call edges with Rng-carrying
   argument slots, nondeterministic-source uses, spawn captures, stream
   bindings — see [Callgraph.unit_facts]); the cross-unit analyses live
   in callgraph.ml and run at [finalize_full] time:

     R8  no nondeterministic source (wall clock, [Domain] identity, [Gc]
         statistics, [Hashtbl] iteration order) may flow, across calls,
         into functions defined under lib/ — sanctioned sinks are listed
         in one table in callgraph.ml.
     R9  every unsafe indexed access ([Array]/[Bytes]/[String]/[Bitvec]/
         [Float.Array] [unsafe_get]/[set]/…) must be dominated in its
         enclosing function by a bounds guard (length-derived for bound,
         if/while comparison, or raising precondition), or carry a
         reasoned allow.  Checked per unit, everywhere.
     R10 every [Rng.t] stream has exactly one owner: not captured by two
         [Domain.spawn] closures, not reused by the parent after a
         handoff (judged through *consuming* parameter slots over the
         call graph), not stored in top-level module state.

   v4 adds the engine protocol-contract rules (R11 silence purity of
   [deliver], R12 per-node write locality of [decide]/[deliver], R13
   purity of [~next_busy_round] hints, R14 registry coverage).  The
   traversal additionally collects mutable-store primitives (with
   silence-region and node-locality flags), [Engine.protocol] record
   constructions (whose callback closures become synthetic call-graph
   nodes), and hint closures; callgraph.ml holds the verdicts.

   Findings print as "file:line:col RULE message".  A finding is
   suppressed by an inline [rblint:allow RULE reason] comment marker —
   the marker must open its comment — placed on, or one line above, the
   finding's line or any enclosing-expression start line (so one marker
   above a multi-line definition covers the findings inside it).  A
   suppression with an empty reason is itself an error (R0) and
   suppresses nothing; a suppression that suppresses nothing is *stale*
   and fails [rblint --audit] (audit.ml renders the ledger). *)

type finding = {
  file : string;
  line : int;
  col : int;
  rule : string;
  msg : string;
  anchors : int list;
      (** start lines of the enclosing non-ghost expressions: an allow
          marker on (or one line above) any of them suppresses the
          finding, so one marker above a multi-line definition covers
          every finding inside it *)
}

let pp_finding f = Printf.sprintf "%s:%d:%d %s %s" f.file f.line f.col f.rule f.msg

let json_of_finding f =
  Printf.sprintf
    "{ \"file\": %s, \"line\": %d, \"col\": %d, \"rule\": %s, \"msg\": %s }"
    (Rn_util.Jsons.quote f.file) f.line f.col
    (Rn_util.Jsons.quote f.rule)
    (Rn_util.Jsons.quote f.msg)

(* ------------------------------------------------------------------ *)
(* Path scoping                                                        *)

(* Normalize away leading "./" and backslashes so scope checks work on the
   paths dune hands us as well as plain CLI paths. *)
let normalize path =
  let path = String.map (fun c -> if c = '\\' then '/' else c) path in
  if String.length path > 2 && String.sub path 0 2 = "./" then
    String.sub path 2 (String.length path - 2)
  else path

let has_dir ~dir path =
  let path = normalize path and dir = dir ^ "/" in
  let n = String.length path and d = String.length dir in
  (n >= d && String.sub path 0 d = dir)
  ||
  let infix = "/" ^ dir in
  let di = String.length infix in
  let rec scan i =
    i + di <= n && (String.sub path i di = infix || scan (i + 1))
  in
  scan 0

let is_rng_ml path =
  let path = normalize path in
  let suffix = "lib/util/rng.ml" in
  let n = String.length path and s = String.length suffix in
  n >= s
  && String.sub path (n - s) s = suffix
  && (n = s || path.[n - s - 1] = '/')

let r2_scope path =
  List.exists
    (fun d -> has_dir ~dir:d path)
    [ "lib/util"; "lib/graph"; "lib/core"; "lib/radio"; "lib/obs" ]

let r4_scope path = has_dir ~dir:"lib" path

(* ------------------------------------------------------------------ *)
(* Suppressions                                                        *)

type allow = { a_line : int; a_rule : string; a_reason : string }

(* Scan raw source for [rblint:allow RULE reason] markers.  The typed tree
   drops comments, so this is a plain text scan.  A marker must open its
   comment — the text before it on the line has to end with the comment
   opener — so prose that merely *mentions* the grammar (rule messages,
   docs, this comment) is not itself a marker. *)
let collect_allows source =
  let allows = ref [] in
  let lines = String.split_on_char '\n' source in
  List.iteri
    (fun i line ->
      let lno = i + 1 in
      let key = "rblint:allow" in
      let opens_comment upto =
        let rec last j = if j >= 0 && line.[j] = ' ' then last (j - 1) else j in
        let j = last (upto - 1) in
        j >= 1 && line.[j] = '*' && line.[j - 1] = '('
      in
      match
        let kl = String.length key in
        let rec find j =
          if j + kl > String.length line then None
          else if String.sub line j kl = key && opens_comment j then
            Some (j + kl)
          else find (j + 1)
        in
        find 0
      with
      | None -> ()
      | Some start ->
          let stop =
            let rec find j =
              if j + 2 > String.length line then String.length line
              else if String.sub line j 2 = "*)" then j
              else find (j + 1)
            in
            find start
          in
          let body = String.trim (String.sub line start (stop - start)) in
          let rule, reason =
            match String.index_opt body ' ' with
            | None -> (body, "")
            | Some sp ->
                ( String.sub body 0 sp,
                  String.trim
                    (String.sub body (sp + 1) (String.length body - sp - 1)) )
          in
          allows := { a_line = lno; a_rule = rule; a_reason = reason } :: !allows)
    lines;
  List.rev !allows

(* Split allows into R0 findings (malformed: missing rule or reason) and the
   valid list. *)
let validate_allows ~file allows =
  let invalid =
    List.filter_map
      (fun a ->
        if a.a_rule = "" || a.a_reason = "" then
          Some
            {
              file;
              line = a.a_line;
              col = 0;
              rule = "R0";
              msg = "rblint:allow needs a rule and a non-empty reason";
              anchors = [];
            }
        else None)
      allows
  in
  let valid = List.filter (fun a -> a.a_rule <> "" && a.a_reason <> "") allows in
  (invalid, valid)

(* A marker suppresses a finding when it sits on — or one line above — the
   finding's own line or any enclosing-expression start line (the
   finding's anchors).  R0 (malformed marker) is never suppressible. *)
let allow_matches a f =
  f.rule <> "R0" && a.a_rule = f.rule
  && List.exists
       (fun l -> a.a_line = l || a.a_line = l - 1)
       (f.line :: f.anchors)

let filter_allowed ?on_use valid findings =
  List.filter
    (fun f ->
      match List.find_opt (fun a -> allow_matches a f) valid with
      | Some a ->
          (match on_use with Some mark -> mark a | None -> ());
          false
      | None -> true)
    findings

(* ------------------------------------------------------------------ *)
(* Typed-AST analysis                                                  *)

open Typedtree

type unit_info = {
  u_path : string;  (** normalized source path, used for scoping *)
  u_modname : string;  (** compilation-unit name, e.g. "Rn_radio__Runner" *)
  u_imports : string list;  (** unit names this module depends on *)
  u_spawns : bool;  (** contains a [Domain.spawn] occurrence *)
  u_findings : finding list;
      (** raw unit-local findings (R0–R5, R7, R9, R10 storage) —
          suppressions applied at [finalize_full] time *)
  u_r6 : finding list;  (** R6 candidates — filtered at [finalize] time *)
  u_allows : allow list;  (** valid suppressions *)
  u_facts : Callgraph.unit_facts;  (** call-graph facts for R8/R10 *)
}

let loc_finding ~file (loc : Location.t) rule msg =
  let p = loc.Location.loc_start in
  { file; line = p.pos_lnum; col = p.pos_cnum - p.pos_bol; rule; msg;
    anchors = [] }

let poly_ops = [ "="; "<"; ">"; "<="; ">="; "<>" ]

(* Resolve a path through locally-seen module aliases (module L = List), so
   [L.map] compares equal to [Stdlib.List.map]. *)
let rec resolve_alias aliases p =
  match p with
  | Path.Pident id -> (
      match Hashtbl.find_opt aliases id with
      | Some p' -> resolve_alias aliases p'
      | None -> p)
  | Path.Pdot (p', s) -> Path.Pdot (resolve_alias aliases p', s)
  | _ -> p

(* Flatten a resolved path to its component names, root first: the path of
   [Random.int] becomes ["Stdlib"; "Random"; "int"].  Requiring the
   "Stdlib" root makes the checks robust against local shadowing (a
   module-local [compare] is a [Pident] without the root).  Components are
   split on dune's name-mangling separator — [Ctype.expand_head] (and some
   cross-library references) canonicalize [Rn_radio.Engine] to the single
   component [Rn_radio__Engine], which would otherwise defeat every
   module-name suffix match. *)
let demangle parts = List.concat_map Callgraph.key_of_modname parts

let parts_of aliases p =
  match Path.flatten (resolve_alias aliases p) with
  | `Ok (id, rest) -> demangle (Ident.name id :: rest)
  | `Contains_apply -> []

(* --- type classification ------------------------------------------- *)

(* Rehydrate the (summarized) environment stored in a cmt so abbreviations
   expand and type declarations resolve; fall back to the raw env when the
   load path cannot serve a module. *)
let real_env env = try Envaux.env_of_only_summary env with _ -> env

let expand env ty = try Ctype.expand_head env ty with _ -> ty

let type_to_string ty =
  try Format.asprintf "%a" Printtyp.type_expr ty with _ -> "_"

(* Types whose comparisons the compiler specializes to primitive calls
   (Translcore's comparison table): polymorphic [=] on these costs no
   caml_compare dispatch, so R2 leaves them alone. *)
let specialized_paths =
  [
    Predef.path_int; Predef.path_char; Predef.path_bool; Predef.path_unit;
    Predef.path_float; Predef.path_string; Predef.path_bytes;
    Predef.path_int32; Predef.path_int64; Predef.path_nativeint;
  ]

let comparison_specialized env ty =
  match Types.get_desc (expand env ty) with
  | Types.Tconstr (p, _, _) -> List.exists (Path.same p) specialized_paths
  | _ -> false

(* [Stdlib.min]/[max] get a narrower allowlist than the comparison
   operators: immediate types only.  Float is specialized for [=]/[<] but
   min/max on float is still wrong — the polymorphic [<=] inside them is
   false for every NaN operand, so the result depends on operand order and
   disagrees with a Float.compare-based fold (the Stats.summarize bug this
   rule extension flushed out). *)
let immediate_paths =
  [ Predef.path_int; Predef.path_char; Predef.path_bool; Predef.path_unit ]

let comparison_immediate env ty =
  match Types.get_desc (expand env ty) with
  | Types.Tconstr (p, _, _) -> List.exists (Path.same p) immediate_paths
  | _ -> false

let minmax_msg op ty =
  "polymorphic " ^ op ^ " at type " ^ ty
  ^ ": NaN-unsafe on float (order-dependent, disagrees with Float.compare) \
     and unspecialized on boxed types — use an explicit Float.compare-based \
     fold or a monomorphic min/max"

let type_parts p =
  match Path.flatten p with
  | `Ok (id, rest) -> (
      match demangle (Ident.name id :: rest) with
      | "Stdlib" :: rest when rest <> [] -> rest
      | parts -> parts)
  | `Contains_apply -> []

(* Shared-mutability classification of a value's type, used by R6/R7.
   [`Atomic] is the sanctioned cross-domain cell; [`Mutable what] is
   anything a second domain could race on.  [local] maps an
   [Ident.unique_name] to a mutability description for type declarations
   local to the unit under analysis: when a cmt's summarized environment
   cannot serve the declaration ([real_env] fell back), the typedtree's
   own [Tstr_type] items are still authoritative. *)
let rec mutability ?(local = fun _ -> None) env ty =
  let ty = expand env ty in
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> (
      if
        Path.same p Predef.path_array
        || Path.same p Predef.path_bytes
        || Path.same p Predef.path_floatarray
      then `Mutable "array/bytes"
      else
        match type_parts p with
        | [ "Atomic"; "t" ] -> `Atomic
        | [ "ref" ] -> `Mutable "ref cell"
        | [ "Hashtbl"; "t" ] -> `Mutable "hash table"
        | [ "Buffer"; "t" ] -> `Mutable "buffer"
        | [ "Queue"; "t" ] -> `Mutable "queue"
        | [ "Stack"; "t" ] -> `Mutable "stack"
        | [ "Random"; "State"; "t" ] -> `Mutable "PRNG state"
        | _ -> (
            let from_decls () =
              match p with
              | Path.Pident id -> (
                  match local (Ident.unique_name id) with
                  | Some what -> `Mutable what
                  | None -> `Immutable)
              | _ -> `Immutable
            in
            match Env.find_type p env with
            | decl -> (
                match decl.Types.type_kind with
                | Types.Type_record (lbls, _)
                  when List.exists
                         (fun l -> l.Types.ld_mutable = Asttypes.Mutable)
                         lbls ->
                    `Mutable "record with mutable fields"
                | _ -> `Immutable)
            | exception _ -> from_decls ()))
  | Types.Tpoly (ty, _) -> mutability ~local env ty
  | _ -> `Immutable

let is_function_type env ty =
  match Types.get_desc (expand env ty) with
  | Types.Tarrow _ -> true
  | _ -> false

(* --- per-structure analysis ---------------------------------------- *)

let closure_alloc_array_fns =
  [ "iter"; "iteri"; "map"; "mapi"; "fold_left"; "fold_right"; "to_list";
    "of_list" ]

let print_fns =
  [
    "print_string"; "print_endline"; "print_newline"; "print_char";
    "print_int"; "print_float"; "print_bytes"; "prerr_string";
    "prerr_endline"; "prerr_newline"; "prerr_char"; "prerr_int";
    "prerr_float"; "prerr_bytes"; "stdout"; "stderr";
  ]

let formatted_print_fns =
  [
    "printf"; "eprintf"; "pr"; "epr"; "print_string"; "print_newline";
    "print_flush"; "std_formatter"; "err_formatter"; "stdout"; "stderr";
  ]

(* Analyze one typed structure.  Returns
   (findings, r6 candidates, spawns, call-graph facts). *)
let analyze ~path ~modname str =
  let file = normalize path in
  let findings = ref [] in
  let r6 = ref [] in
  let spawns = ref false in
  (* Start lines of the enclosing non-ghost expressions, innermost first.
     Findings snapshot this so a suppression above a multi-line definition
     covers findings at inner lines. *)
  let anchor_stack = ref [] in
  let emit loc rule msg =
    findings :=
      { (loc_finding ~file loc rule msg) with anchors = !anchor_stack }
      :: !findings
  in
  let emit_r6 ~anchors loc msg =
    r6 := { (loc_finding ~file loc "R6" msg) with anchors } :: !r6
  in
  let in_r2 = r2_scope file and in_r4 = r4_scope file in
  let in_lib = Callgraph.in_lib file in
  let rng_exempt = is_rng_ml file in
  let hot = ref 0 in
  let guard = ref 0 in (* R9: > 0 inside a bounds-guarded context *)
  let in_spawn = ref 0 in (* inside a Domain.spawn argument *)
  let aliases : (Ident.t, Path.t) Hashtbl.t = Hashtbl.create 16 in
  (* Map of every let-bound ident to its definition, so a worker function
     passed to Domain.spawn can be expanded one level for R7. *)
  let val_defs : (Ident.t, expression) Hashtbl.t = Hashtbl.create 64 in
  (* Unit-local type declarations with mutable contents, keyed by
     [Ident.unique_name]; serves [mutability] when the cmt env cannot. *)
  let local_mut_types : (string, string) Hashtbl.t = Hashtbl.create 16 in
  (* --- call-graph fact accumulators -------------------------------- *)
  let unit_key = Callgraph.key_of_modname modname in
  let cur_node = ref (unit_key @ [ "<init>" ]) in
  let stamp id = Ident.unique_name id in
  let val_keys : (string, Callgraph.key) Hashtbl.t = Hashtbl.create 64 in
  let mod_keys : (string, Callgraph.key) Hashtbl.t = Hashtbl.create 16 in
  let nodes = ref [] in
  let raw_refs = ref [] in
  (* (caller, path, line, rng args) — resolved to keys after the walk so
     [let rec ... and ...] forward references land on registered stamps *)
  let nondet = ref [] in
  let spawn_caps = ref [] in
  let occs = ref [] in
  let binds = ref [] in
  let writes = ref [] in
  let raw_protos = ref [] in
  (* (node, line, anchors, decide target, deliver target) with targets
     still unresolved ([`Key] for synthetic callback nodes, [`Path] for
     identifier fields) *)
  let raw_hints = ref [] in  (* (`Key k | `Path p, line, anchors) *)
  (* R11 silence regions: > 0 inside the rhs of a reception-match arm that
     cannot match [Silence] — effects there never run on a Silence
     delivery. *)
  let nonsil = ref 0 in
  (* R12 node scopes: one table per enclosing [~node]-parameter function,
     innermost first, holding the idents the analysis considers
     node-derived (the parameter, bindings computed from it, node-local
     scratch allocations). *)
  let scopes : (Ident.t, unit) Hashtbl.t list ref = ref [] in
  let loc_line (loc : Location.t) = loc.Location.loc_start.pos_lnum in
  let record_ref ?(rng_args = []) ?(fwd = false) p loc =
    raw_refs :=
      ( !cur_node,
        resolve_alias aliases p,
        loc_line loc,
        rng_args,
        !nonsil = 0,
        fwd,
        !scopes <> [] )
      :: !raw_refs
  in
  (* --- Rng typing -------------------------------------------------- *)
  let is_rng_t env ty =
    match Types.get_desc (expand env ty) with
    | Types.Tconstr (p, _, _) -> (
        match List.rev (type_parts p) with
        | "t" :: "Rng" :: _ -> true
        | _ -> false)
    | _ -> false
  in
  (* Does the (non-arrow) type carry an Rng stream anywhere inside?  Used
     for the R10 top-level-storage check; arrows are not traversed — a
     function taking or returning a stream is fine. *)
  let rec mentions_rng env ty =
    match Types.get_desc (expand env ty) with
    | Types.Tconstr (p, args, _) -> (
        match List.rev (type_parts p) with
        | "t" :: "Rng" :: _ -> true
        | _ -> List.exists (mentions_rng env) args)
    | Types.Ttuple ts -> List.exists (mentions_rng env) ts
    | Types.Tpoly (t, _) -> mentions_rng env t
    | _ -> false
  in
  (* --- R11/R12/R13 protocol-contract fact helpers ------------------- *)
  let ty_suffix env ty suffix =
    match Types.get_desc (expand env ty) with
    | Types.Tconstr (p, _, _) -> (
        match List.rev (type_parts p) with
        | last :: up :: _ -> last = suffix && up = "Engine"
        | _ -> false)
    | _ -> false
  in
  let is_reception_type env ty = ty_suffix env ty "reception" in
  let is_protocol_type env ty = ty_suffix env ty "protocol" in
  (* Can this reception-match pattern bind a [Silence] delivery? *)
  let rec pat_can_silence : type k. k general_pattern -> bool =
   fun p ->
    match p.pat_desc with
    | Tpat_construct (_, cd, _, _) -> cd.Types.cstr_name = "Silence"
    | Tpat_or (a, b, _) -> pat_can_silence a || pat_can_silence b
    | Tpat_alias (q, _, _) -> pat_can_silence q
    | Tpat_value v -> pat_can_silence (v :> value general_pattern)
    | Tpat_exception _ -> false
    | _ -> true (* var/any/...: conservatively may be Silence *)
  in
  (* Stamps of local idents used as decide/deliver fields of a protocol
     record ([{ Engine.decide; deliver }] punning a local let).  Filled by
     a cheap pre-scan; the main walk gives such bindings their own
     synthetic call-graph node so their effects are separable from the
     constructing function's. *)
  let callback_stamps : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let local_cb : (string, Callgraph.key) Hashtbl.t = Hashtbl.create 16 in
  let in_scope id = List.exists (fun tbl -> Hashtbl.mem tbl id) !scopes in
  (* Does the expression mention any node-derived ident?  Used for write
     targets, call arguments (forwarding trust) and derived-binding
     propagation. *)
  let mentions_scoped e =
    let found = ref false in
    let iter0 = Tast_iterator.default_iterator in
    let look it e' =
      (match e'.exp_desc with
      | Texp_ident (Path.Pident id, _, _) when in_scope id -> found := true
      | _ -> ());
      if not !found then iter0.expr it e'
    in
    let it = { iter0 with expr = look } in
    look it e;
    !found
  in
  (* Is this RHS a fresh allocation?  Such a binding inside a node scope is
     node-local scratch: writes through it cannot alias another node's
     state. *)
  let is_allocating e =
    match e.exp_desc with
    | Texp_array _ | Texp_record _ -> true
    | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _) -> (
        match parts_of aliases p with
        | [ "Stdlib"; "ref" ] -> true
        | [ "Stdlib"; "Array";
            ( "make" | "init" | "create_float" | "make_matrix" | "copy"
            | "of_list" | "append" | "sub" | "concat" ) ] ->
            true
        | [ "Stdlib"; "Bytes"; ("create" | "make" | "init" | "copy" | "sub") ]
          ->
            true
        | [ "Stdlib"; ("Hashtbl" | "Buffer" | "Queue" | "Stack"); "create" ] ->
            true
        | parts -> (
            match List.rev parts with
            | ("create" | "split" | "split_n" | "copy") :: "Rng" :: _ -> true
            | _ -> false))
    | _ -> false
  in
  let record_write ?(atomic = false) ~node_ok ~desc loc =
    writes :=
      {
        Callgraph.w_node = !cur_node;
        w_line = loc_line loc;
        w_desc = desc;
        w_sil = !nonsil = 0;
        w_atomic = atomic;
        w_node_ok = node_ok;
        w_in_scope = !scopes <> [];
        w_anchors = !anchor_stack;
      }
      :: !writes
  in
  (* Mutable-store primitives: parts -> (description, is-atomic).  The
     locality verdict checks whether *any* argument mentions a
     node-derived ident (covering both [a.(node) <- x] container+index
     shapes and [Hashtbl.replace tbl node v]); [Rng] consumption is
     judged from call edges, not here. *)
  let write_prim parts =
    match parts with
    | [ "Stdlib"; ":=" ] -> Some (":=", false)
    | [ "Stdlib"; (("incr" | "decr") as f) ] -> Some (f, false)
    | [ "Stdlib"; "Array";
        (("set" | "unsafe_set" | "fill" | "blit" | "sort") as f) ] ->
        Some ("Array." ^ f, false)
    | [ "Stdlib"; "Bytes";
        (("set" | "unsafe_set" | "fill" | "blit" | "blit_string") as f) ] ->
        Some ("Bytes." ^ f, false)
    | [ "Stdlib"; "Hashtbl";
        (("replace" | "add" | "remove" | "clear" | "reset") as f) ] ->
        Some ("Hashtbl." ^ f, false)
    | [ "Stdlib"; "Buffer"; f ]
      when List.mem f [ "clear"; "reset"; "truncate" ]
           || (String.length f > 4 && String.sub f 0 4 = "add_") ->
        Some ("Buffer." ^ f, false)
    | [ "Stdlib"; "Queue";
        (("push" | "add" | "pop" | "take" | "clear" | "transfer") as f) ] ->
        Some ("Queue." ^ f, false)
    | [ "Stdlib"; "Stack"; (("push" | "pop" | "clear") as f) ] ->
        Some ("Stack." ^ f, false)
    | [ "Stdlib"; "Atomic";
        (( "set" | "incr" | "decr" | "fetch_and_add" | "exchange"
         | "compare_and_set" ) as f) ] ->
        Some ("Atomic." ^ f, true)
    | _ -> (
        match List.rev parts with
        | (( "set" | "fill" | "clear" | "unsafe_set" | "unsafe_fill"
           | "unsafe_clear" | "xor_into" ) as f)
          :: "Bitvec" :: _ ->
            Some ("Bitvec." ^ f, false)
        | _ -> None)
  in
  (* --- R9 bounds-guard heuristics ---------------------------------- *)
  let name_has_len s =
    let s = String.lowercase_ascii s in
    let n = String.length s in
    let rec scan i = i + 3 <= n && (String.sub s i 3 = "len" || scan (i + 1)) in
    scan 0
  in
  (* Is this expression derived from a container length?  A [*.length]
     call, an identifier or record field whose name mentions "len", or —
     one definition-chase deep — a local bound to such an expression. *)
  let rec length_derived depth e =
    match e.exp_desc with
    | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) -> (
        match List.rev (parts_of aliases p) with
        | ("length" | "dim") :: _ -> true
        | _ ->
            List.exists
              (fun (_, eo) ->
                match eo with
                | Some a -> length_derived depth a
                | None -> false)
              args)
    | Texp_ident (Path.Pident id, _, _) ->
        name_has_len (Ident.name id)
        || depth > 0
           && (match Hashtbl.find_opt val_defs id with
              | Some def -> length_derived (depth - 1) def
              | None -> false)
    | Texp_ident (p, _, _) -> name_has_len (Path.last p)
    | Texp_field (e', _, lbl) ->
        name_has_len lbl.Types.lbl_name || length_derived depth e'
    | _ -> false
  in
  let raising_fns = [ "invalid_arg"; "failwith"; "raise"; "raise_notrace" ] in
  let raises e =
    match e.exp_desc with
    | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _) -> (
        match parts_of aliases p with
        | [ "Stdlib"; f ] -> List.mem f raising_fns
        | _ -> false)
    | Texp_assert _ -> true
    | _ -> false
  in
  (* A statement that, once control passes it, proves a length-derived
     bound for the rest of the sequence: [if cond then invalid_arg ...] or
     [assert cond] with a length-derived condition. *)
  let seq_guard e =
    match e.exp_desc with
    | Texp_ifthenelse (cond, th, el) ->
        length_derived 1 cond
        && (raises th || match el with Some e' -> raises e' | None -> false)
    | Texp_assert (e', _) -> length_derived 1 e'
    | _ -> false
  in
  let unsafe_op parts =
    match List.rev parts with
    | fn :: m :: _
      when List.mem fn
             [ "unsafe_get"; "unsafe_set"; "unsafe_clear"; "unsafe_fill";
               "unsafe_blit" ]
           && List.mem m [ "Array"; "Bytes"; "String"; "Bitvec"; "Floatarray" ]
      ->
        Some (m ^ "." ^ fn)
    | _ -> None
  in
  let check_ident loc parts =
    (match Callgraph.nondet_of_parts parts with
    | Some src ->
        nondet :=
          { Callgraph.d_node = !cur_node; d_src = src; d_line = loc_line loc }
          :: !nondet
    | None -> ());
    (match parts with
    | "Stdlib" :: "Random" :: _ when not rng_exempt ->
        emit loc "R1"
          "Stdlib.Random is banned: draw through the seeded Rng (SplitMix64) \
           so runs replay from one seed"
    | _ -> ());
    (match parts with
    | "Stdlib" :: "Obj" :: _ ->
        emit loc "R3" "Obj.magic/Obj.repr break abstraction and memory safety"
    | _ -> ());
    (if in_r2 then
       match parts with
       | [ "Stdlib"; "compare" ] ->
           emit loc "R2"
             "polymorphic compare: use a monomorphic comparator \
              (Int.compare, Float.compare, ...)"
       | [ "Stdlib"; "Hashtbl"; "hash" ] ->
           emit loc "R2" "polymorphic Hashtbl.hash: hash a concrete key type"
       | _ -> ());
    if in_r4 then begin
      (match parts with
      | [ "Stdlib"; p ] when List.mem p print_fns ->
          emit loc "R4"
            ("console output from lib/ (" ^ p
           ^ "): return data and let bin/bench/examples print")
      | _ -> ());
      match parts with
      | [ "Stdlib"; ("Printf" | "Format"); fn ] | [ "Fmt"; fn ]
        when List.mem fn formatted_print_fns ->
          emit loc "R4"
            "console output from lib/: return data and let bin/bench/examples \
             print"
      | _ -> ()
    end;
    if !hot > 0 then
      match parts with
      | "Stdlib" :: "List" :: _ ->
          emit loc "R5"
            "List traversal inside [@@zero_alloc_hot]: lists allocate; use \
             preallocated arrays and indices"
      | [ "Stdlib"; "Array"; fn ] when List.mem fn closure_alloc_array_fns ->
          emit loc "R5"
            ("closure-allocating Array." ^ fn
           ^ " inside [@@zero_alloc_hot]: use an explicit for-loop")
      | _ -> ()
  in
  (* R7: walk the expression passed to Domain.spawn; any free ident of
     non-atomic mutable type is shared writable state crossing the domain
     boundary.  Worker functions bound in the same unit are expanded one
     level so [Domain.spawn (worker i)] is seen through. *)
  let check_spawn_arg spawn_loc arg =
    let bound : (Ident.t, unit) Hashtbl.t = Hashtbl.create 32 in
    let expanded : (Ident.t, unit) Hashtbl.t = Hashtbl.create 8 in
    let caps = ref [] in
    let iter = Tast_iterator.default_iterator in
    let pat_hook : type k. Tast_iterator.iterator -> k general_pattern -> unit
        =
     fun it p ->
      List.iter (fun id -> Hashtbl.replace bound id ()) (pat_bound_idents p);
      iter.pat it p
    in
    let rec expr_hook it e =
      (match e.exp_desc with
      | Texp_for (id, _, _, _, _, _) -> Hashtbl.replace bound id ()
      | _ -> ());
      (match e.exp_desc with
      | Texp_ident (p, _, _) -> (
          let env = real_env e.exp_env in
          let free_local id = not (Hashtbl.mem bound id) in
          (* R10 fact: Rng streams crossing the domain boundary *)
          (match p with
          | Path.Pident id
            when free_local id
                 && is_rng_t env e.exp_type
                 && not (List.mem (stamp id) !caps) ->
              caps := stamp id :: !caps
          | _ -> ());
          let flag what =
            emit e.exp_loc "R7"
              ("closure passed to Domain.spawn captures non-atomic mutable \
                state `" ^ Path.name p ^ "` (" ^ what ^ " : "
              ^ type_to_string e.exp_type
              ^ "): share through Atomic.t, or prove exclusive ownership and \
                 suppress with a reasoned rblint:allow R7 marker")
          in
          let local = Hashtbl.find_opt local_mut_types in
          match p with
          | Path.Pident id when free_local id -> (
              match mutability ~local env e.exp_type with
              | `Mutable what -> flag what
              | `Atomic | `Immutable ->
                  if
                    is_function_type env e.exp_type
                    && not (Hashtbl.mem expanded id)
                  then
                    match Hashtbl.find_opt val_defs id with
                    | Some def ->
                        Hashtbl.replace expanded id ();
                        expr_hook it def
                    | None -> ())
          | Path.Pident _ -> ()
          | _ -> (
              (* Cross-module mutable state referenced from a worker. *)
              match mutability ~local env e.exp_type with
              | `Mutable what -> flag what
              | `Atomic | `Immutable -> ()))
      | _ -> ());
      iter.expr it e
    in
    let it = { iter with expr = expr_hook; pat = pat_hook } in
    expr_hook it arg;
    spawn_caps :=
      {
        Callgraph.s_node = !cur_node;
        s_line = loc_line spawn_loc;
        s_caps = !caps;
      }
      :: !spawn_caps
  in
  (* R6 candidates: mutable state constructed while initializing a
     top-level binding.  Function bodies are skipped — cells created per
     call are not shared — and Atomic.make is the sanctioned escape. *)
  let scan_top_rhs ~anchors rhs =
    let iter = Tast_iterator.default_iterator in
    let rec expr_hook it e =
      match e.exp_desc with
      | Texp_function _ -> ()
      | Texp_array _ ->
          emit_r6 ~anchors e.exp_loc
            "top-level array literal is cross-domain mutable state: use \
             Atomic.t, immutable data, or a reasoned rblint:allow R6 marker";
          iter.expr it e
      | Texp_record { fields; _ }
        when Array.exists
               (fun (l, _) -> l.Types.lbl_mut = Asttypes.Mutable)
               fields ->
          emit_r6 ~anchors e.exp_loc
            "top-level record with mutable fields is cross-domain mutable \
             state: use Atomic.t, immutable data, or a reasoned \
             rblint:allow R6 marker";
          iter.expr it e
      | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) -> (
          let parts = parts_of aliases p in
          let ctor what =
            emit_r6 ~anchors e.exp_loc
              ("top-level mutable state (" ^ what
             ^ ") in a module reachable from a Domain.spawn worker: use \
                Atomic.t or document domain safety with a reasoned \
                rblint:allow R6 marker")
          in
          match parts with
          | [ "Stdlib"; "Atomic"; "make" ] -> ()
          | [ "Stdlib"; "ref" ] -> ctor "ref cell"
          | [ "Stdlib"; "Array";
              ( "make" | "init" | "create_float" | "make_matrix" | "copy"
              | "of_list" | "append" | "sub" | "concat" ) ] ->
              ctor "array"
          | [ "Stdlib"; "Bytes";
              ("create" | "make" | "init" | "of_string" | "copy" | "sub") ] ->
              ctor "bytes"
          | [ "Stdlib"; "Hashtbl"; "create" ] -> ctor "hash table"
          | [ "Stdlib"; "Buffer"; "create" ] -> ctor "buffer"
          | [ "Stdlib"; "Queue"; "create" ] -> ctor "queue"
          | [ "Stdlib"; "Stack"; "create" ] -> ctor "stack"
          | _ ->
              List.iter (fun (_, eo) -> Option.iter (expr_hook it) eo) args)
      | _ -> iter.expr it e
    in
    let it = { iter with expr = expr_hook } in
    expr_hook it rhs
  in
  (* --- main traversal ---------------------------------------------- *)
  let iter = Tast_iterator.default_iterator in
  let slot_params rhs =
    let pos = ref 0 in
    let rec peel acc e =
      match e.exp_desc with
      | Texp_function { arg_label; param; cases = [ c ]; _ } ->
          let sl =
            match arg_label with
            | Asttypes.Nolabel ->
                let i = !pos in
                incr pos;
                Callgraph.Pos i
            | Asttypes.Labelled l | Asttypes.Optional l -> Callgraph.Lab l
          in
          peel ((sl, stamp param) :: acc) c.c_rhs
      | _ -> List.rev acc
    in
    peel [] rhs
  in
  (* The wrapper maintains the anchor stack; expr_core does the work. *)
  let rec expr_hook it e =
    let loc = e.exp_loc in
    if loc.Location.loc_ghost then expr_core it e
    else begin
      let l = loc.Location.loc_start.pos_lnum in
      let prev = !anchor_stack in
      if not (List.mem l prev) then anchor_stack := l :: prev;
      expr_core it e;
      anchor_stack := prev
    end
  and expr_core it e =
    match e.exp_desc with
    | Texp_apply (({ exp_desc = Texp_ident (p, _, _); _ } as fn), args) -> (
        let parts = parts_of aliases p in
        (* Call-graph fact: every application is an edge; bare Rng.t
           identifier arguments are recorded by slot for R10 and excluded
           from the plain-occurrence count. *)
        let is_rng_arg a =
          match a.exp_desc with
          | Texp_ident (Path.Pident id, _, _)
            when is_rng_t (real_env a.exp_env) a.exp_type ->
              Some id
          | _ -> None
        in
        let rng_args =
          let pos = ref 0 in
          List.filter_map
            (fun (lbl, eo) ->
              let sl =
                match lbl with
                | Asttypes.Nolabel ->
                    let i = !pos in
                    incr pos;
                    Callgraph.Pos i
                | Asttypes.Labelled l | Asttypes.Optional l -> Callgraph.Lab l
              in
              match eo with
              | Some a when !in_spawn = 0 -> (
                  match is_rng_arg a with
                  | Some id -> Some (sl, stamp id)
                  | None -> None)
              | _ -> None)
            args
        in
        let arg_mentions_scoped =
          List.exists
            (fun (_, eo) ->
              match eo with Some a -> mentions_scoped a | None -> false)
            args
        in
        record_ref ~rng_args ~fwd:arg_mentions_scoped p fn.exp_loc;
        (match write_prim parts with
        | Some (desc, atomic) ->
            record_write ~atomic ~node_ok:arg_mentions_scoped ~desc fn.exp_loc
        | None -> ());
        let visit_args () =
          List.iter
            (fun (lbl, eo) ->
              match eo with
              | Some a -> (
                  match lbl with
                  | Asttypes.Labelled "next_busy_round"
                  | Asttypes.Optional "next_busy_round" ->
                      visit_hint_arg it a
                  | _ -> (
                      match is_rng_arg a with
                      | Some _ when !in_spawn = 0 ->
                          () (* counted as a call argument, not a plain use *)
                      | _ -> expr_hook it a))
              | None -> ())
            args
        in
        match parts with
        | [ "Stdlib"; op ] when List.mem op poly_ops ->
            (if in_r2 then
               match args with
               | [ (_, Some a); (_, Some b) ] ->
                   let spec x =
                     comparison_specialized (real_env x.exp_env) x.exp_type
                   in
                   if not (spec a && spec b) then
                     let bad = if spec a then b else a in
                     emit fn.exp_loc "R2"
                       ("polymorphic (" ^ op ^ ") at type "
                       ^ type_to_string bad.exp_type
                       ^ ": the compiler cannot specialize this comparison — \
                          match instead, or use a monomorphic equal/compare")
               | _ ->
                   emit fn.exp_loc "R2"
                     ("comparison operator (" ^ op
                    ^ ") partially applied: pass a monomorphic comparator"));
            visit_args ()
        | [ "Stdlib"; (("min" | "max") as op) ] ->
            (if in_r2 then
               match args with
               | [ (_, Some a); (_, Some b) ] ->
                   let imm x =
                     comparison_immediate (real_env x.exp_env) x.exp_type
                   in
                   if not (imm a && imm b) then
                     let bad = if imm a then b else a in
                     emit fn.exp_loc "R2"
                       (minmax_msg op (type_to_string bad.exp_type))
               | _ ->
                   emit fn.exp_loc "R2"
                     (op
                    ^ " partially applied: pass a monomorphic min/max or \
                       comparator"));
            visit_args ()
        | [ "Stdlib"; "Domain"; "spawn" ] ->
            spawns := true;
            List.iter
              (fun (_, eo) ->
                Option.iter (fun a -> check_spawn_arg fn.exp_loc a) eo)
              args;
            incr in_spawn;
            visit_args ();
            decr in_spawn
        | _ ->
            (match unsafe_op parts with
            | Some op when !guard = 0 ->
                emit fn.exp_loc "R9"
                  ("unchecked " ^ op
                 ^ ": not dominated by a bounds guard in this function — \
                    guard with a length-derived for-bound, if/while \
                    comparison, or raising precondition, or justify with a \
                    reasoned rblint:allow R9")
            | _ -> ());
            check_ident fn.exp_loc parts;
            visit_args ())
    | Texp_ident (p, _, _) -> (
        (match p with
        | Path.Pident id
          when !in_spawn = 0 && is_rng_t (real_env e.exp_env) e.exp_type ->
            occs :=
              { Callgraph.o_stamp = stamp id; o_line = loc_line e.exp_loc }
              :: !occs
        | _ -> ());
        record_ref p e.exp_loc;
        let parts = parts_of aliases p in
        match parts with
        | [ "Stdlib"; op ] when List.mem op poly_ops ->
            if in_r2 then
              emit e.exp_loc "R2"
                ("comparison operator (" ^ op
               ^ ") used as a value: pass a monomorphic comparator")
        | [ "Stdlib"; (("min" | "max") as op) ] ->
            (* Used as a value (e.g. [Array.fold_left min] — the exact shape
               of the Stats.summarize bug): the instantiated arrow type tells
               us the element type. *)
            if in_r2 then begin
              let env = real_env e.exp_env in
              match Types.get_desc (expand env e.exp_type) with
              | Types.Tarrow (_, targ, _, _)
                when comparison_immediate env targ ->
                  ()
              | _ -> emit e.exp_loc "R2" (minmax_msg op (type_to_string e.exp_type))
            end
        | [ "Stdlib"; "Domain"; "spawn" ] -> spawns := true
        | _ -> (
            (match unsafe_op parts with
            | Some op ->
                emit e.exp_loc "R9"
                  ("unchecked " ^ op
                 ^ " used as a value: an escaping unsafe accessor can never \
                    be bounds-checked at its use sites — wrap it in a \
                    guarded helper")
            | None -> ());
            check_ident e.exp_loc parts))
    | Texp_letmodule (Some id, _, _, { mod_desc = Tmod_ident (p, _); _ }, _) ->
        Hashtbl.replace aliases id (resolve_alias aliases p);
        iter.expr it e
    | Texp_setfield (obj, _, lbl, _) ->
        record_write ~node_ok:(mentions_scoped obj)
          ~desc:("mutable-field set (" ^ lbl.Types.lbl_name ^ ")")
          e.exp_loc;
        iter.expr it e
    (* R12: a [~node]-labelled parameter opens a node scope — everything
       derived from it (and fresh local allocations, see
       [value_binding_hook]) is per-node state. *)
    | Texp_function { arg_label = Asttypes.Labelled "node"; param; _ } ->
        let tbl = Hashtbl.create 8 in
        Hashtbl.replace tbl param ();
        scopes := tbl :: !scopes;
        iter.expr it e;
        scopes := List.tl !scopes
    (* A [function]-style reception match (a deliver written as
       [fun ~round ~node -> function Silence -> () | ...]) shields its
       non-Silence arms exactly like the explicit Texp_match below. *)
    | Texp_function { cases = ({ c_lhs; _ } :: _) as cases; _ }
      when is_reception_type (real_env c_lhs.pat_env) c_lhs.pat_type ->
        List.iter
          (fun c ->
            Option.iter (expr_hook it) c.c_guard;
            let shield = not (pat_can_silence c.c_lhs) in
            if shield then incr nonsil;
            expr_hook it c.c_rhs;
            if shield then decr nonsil)
          cases
    (* R11 silence regions + R12 derived-binding propagation through
       matches: arms of a reception match that cannot bind [Silence]
       shield their effects from silent rounds; patterns destructuring a
       node-derived scrutinee bind node-derived idents. *)
    | Texp_match (scrut, cases, _) ->
        expr_hook it scrut;
        (match !scopes with
        | tbl :: _ when mentions_scoped scrut ->
            List.iter
              (fun c ->
                List.iter
                  (fun id -> Hashtbl.replace tbl id ())
                  (pat_bound_idents c.c_lhs))
              cases
        | _ -> ());
        let recept =
          is_reception_type (real_env scrut.exp_env) scrut.exp_type
        in
        List.iter
          (fun c ->
            Option.iter (expr_hook it) c.c_guard;
            let shield = recept && not (pat_can_silence c.c_lhs) in
            if shield then incr nonsil;
            expr_hook it c.c_rhs;
            if shield then decr nonsil)
          cases
    (* R11/R12 roots: a protocol record's decide/deliver callbacks become
       their own call-graph nodes so their effects are separable from the
       constructing function's. *)
    | Texp_record { fields; extended_expression; _ }
      when is_protocol_type (real_env e.exp_env) e.exp_type ->
        Option.iter (expr_hook it) extended_expression;
        let dec = ref `None and del = ref `None in
        let handle name slot fe =
          match fe.exp_desc with
          | Texp_function _ -> slot := `Key (synth_walk it ~tag:name fe)
          | Texp_ident (p, _, _) ->
              slot := `Path p;
              expr_hook it fe
          | _ -> expr_hook it fe
        in
        Array.iter
          (fun (lbl, def) ->
            match def with
            | Overridden (_, fe) -> (
                match lbl.Types.lbl_name with
                | "decide" -> handle "decide" dec fe
                | "deliver" -> handle "deliver" del fe
                | _ -> expr_hook it fe)
            | Kept _ -> ())
          fields;
        raw_protos :=
          (!cur_node, loc_line e.exp_loc, !anchor_stack, !dec, !del)
          :: !raw_protos
    (* R9 guarded contexts: recurse manually so the guard counter covers
       exactly the dominated sub-expressions. *)
    | Texp_for (_, _, lo, hi, _, body) ->
        expr_hook it lo;
        expr_hook it hi;
        let g = length_derived 1 hi || length_derived 1 lo in
        if g then incr guard;
        expr_hook it body;
        if g then decr guard
    | Texp_while (cond, body) ->
        expr_hook it cond;
        let g = length_derived 1 cond in
        if g then incr guard;
        expr_hook it body;
        if g then decr guard
    | Texp_ifthenelse (cond, th, el) ->
        expr_hook it cond;
        let g = length_derived 1 cond in
        if g then incr guard;
        expr_hook it th;
        Option.iter (expr_hook it) el;
        if g then decr guard
    | Texp_sequence (e1, e2) ->
        expr_hook it e1;
        let g = seq_guard e1 in
        if g then incr guard;
        expr_hook it e2;
        if g then decr guard
    | _ -> iter.expr it e
  (* Attribute a callback/hint closure's body to a fresh synthetic
     call-graph node ("%decide@<line>" under the enclosing node), so the
     contract analyses can reason about it separately. *)
  and synth_walk it ~tag fe =
    let skey =
      !cur_node @ [ Printf.sprintf "%%%s@%d" tag (loc_line fe.exp_loc) ]
    in
    nodes :=
      {
        Callgraph.n_key = skey;
        n_line = loc_line fe.exp_loc;
        n_params = slot_params fe;
      }
      :: !nodes;
    let prev = !cur_node in
    cur_node := skey;
    expr_hook it fe;
    cur_node := prev;
    skey
  (* R13 roots: closures passed (possibly under [Some], through branches,
     or as a top-level identifier) as a [~next_busy_round] argument. *)
  and visit_hint_arg it a =
    match a.exp_desc with
    | Texp_function _ ->
        let k = synth_walk it ~tag:"hint" a in
        raw_hints := (`Key k, loc_line a.exp_loc, !anchor_stack) :: !raw_hints
    | Texp_construct (_, cd, [ inner ]) when cd.Types.cstr_name = "Some" -> (
        match inner.exp_desc with
        | Texp_function _ ->
            let k = synth_walk it ~tag:"hint" inner in
            raw_hints :=
              (`Key k, loc_line inner.exp_loc, !anchor_stack) :: !raw_hints
        | _ -> visit_hint_arg it inner)
    | Texp_ident (p, _, _) ->
        raw_hints := (`Path p, loc_line a.exp_loc, !anchor_stack) :: !raw_hints;
        expr_hook it a
    | Texp_ifthenelse (c, t, e') ->
        expr_hook it c;
        visit_hint_arg it t;
        Option.iter (visit_hint_arg it) e'
    | Texp_match (scrut, cases, _) ->
        expr_hook it scrut;
        List.iter
          (fun c ->
            Option.iter (expr_hook it) c.c_guard;
            visit_hint_arg it c.c_rhs)
          cases
    | _ -> expr_hook it a
  in
  let module_expr_hook it m =
    (match m.mod_desc with
    | Tmod_ident (p, _) -> (
        let parts = parts_of aliases p in
        match parts with
        | "Stdlib" :: "Random" :: _ when not rng_exempt ->
            emit m.mod_loc "R1"
              "aliasing Stdlib.Random is banned: draw through the seeded Rng"
        | "Stdlib" :: "Obj" :: _ ->
            emit m.mod_loc "R3" "aliasing Obj breaks abstraction"
        | _ -> ())
    | _ -> ());
    iter.module_expr it m
  in
  let module_binding_hook it mb =
    (match (mb.mb_id, mb.mb_expr.mod_desc) with
    | Some id, Tmod_ident (p, _) ->
        Hashtbl.replace aliases id (resolve_alias aliases p)
    | _ -> ());
    iter.module_binding it mb
  in
  let value_binding_hook it vb =
    (match vb.vb_pat.pat_desc with
    | Tpat_var (id, _) ->
        Hashtbl.replace val_defs id vb.vb_expr;
        (* R10 fact: a locally created stream whose ownership we track *)
        (match vb.vb_expr.exp_desc with
        | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _)
          when (match List.rev (parts_of aliases p) with
               | ("create" | "split" | "copy") :: "Rng" :: _ -> true
               | _ -> false)
               && is_rng_t (real_env vb.vb_expr.exp_env) vb.vb_expr.exp_type
          ->
            let l = loc_line vb.vb_loc in
            binds :=
              {
                Callgraph.b_stamp = stamp id;
                b_name = Ident.name id;
                b_line = l;
                b_anchors = l :: !anchor_stack;
              }
              :: !binds
        | _ -> ())
    | _ -> ());
    (* R12: inside a node scope, a binding computed from node-derived data
       stays node-derived, and a fresh allocation is node-local scratch. *)
    (match !scopes with
    | tbl :: _ when is_allocating vb.vb_expr || mentions_scoped vb.vb_expr ->
        List.iter
          (fun id -> Hashtbl.replace tbl id ())
          (pat_bound_idents vb.vb_pat)
    | _ -> ());
    let is_hot =
      List.exists
        (fun a -> a.Parsetree.attr_name.txt = "zero_alloc_hot")
        vb.vb_attributes
    in
    (* A local function later punned into a protocol record becomes its own
       synthetic node, like a literal callback closure would. *)
    let cb_node =
      match vb.vb_pat.pat_desc with
      | Tpat_var (id, _)
        when Hashtbl.mem callback_stamps (stamp id)
             && (not (Hashtbl.mem val_keys (stamp id)))
             && (match vb.vb_expr.exp_desc with
                | Texp_function _ -> true
                | _ -> false) ->
          let skey =
            !cur_node
            @ [ Printf.sprintf "%%%s@%d" (Ident.name id) (loc_line vb.vb_loc) ]
          in
          nodes :=
            {
              Callgraph.n_key = skey;
              n_line = loc_line vb.vb_loc;
              n_params = slot_params vb.vb_expr;
            }
            :: !nodes;
          Hashtbl.replace local_cb (stamp id) skey;
          Some skey
      | _ -> None
    in
    let prev = !anchor_stack in
    (let l = loc_line vb.vb_loc in
     if not (vb.vb_loc.Location.loc_ghost || List.mem l prev) then
       anchor_stack := l :: prev);
    let prev_node = !cur_node in
    (match cb_node with Some k -> cur_node := k | None -> ());
    (if is_hot then begin
       incr hot;
       iter.value_binding it vb;
       decr hot
     end
     else iter.value_binding it vb);
    cur_node := prev_node;
    anchor_stack := prev
  in
  let it =
    {
      iter with
      expr = expr_hook;
      module_expr = module_expr_hook;
      module_binding = module_binding_hook;
      value_binding = value_binding_hook;
    }
  in
  (* Custom top-level drive: module-level value bindings become call-graph
     nodes (key = unit key + nested module path + name); everything below
     them is attributed to the enclosing node.  The iterator hooks still
     serve expression-level traversal. *)
  let rec walk_items prefix items =
    List.iter
      (fun item ->
        match item.str_desc with
        | Tstr_value (_, vbs) -> List.iter (top_vb prefix) vbs
        | Tstr_module mb -> walk_mb prefix mb
        | Tstr_recmodule mbs -> List.iter (walk_mb prefix) mbs
        | Tstr_eval (e, _) ->
            cur_node := prefix @ [ "<init>" ];
            expr_hook it e
        | Tstr_type (_, decls) ->
            List.iter
              (fun d ->
                match d.typ_kind with
                | Ttype_record lds
                  when List.exists
                         (fun l -> l.ld_mutable = Asttypes.Mutable)
                         lds ->
                    Hashtbl.replace local_mut_types
                      (Ident.unique_name d.typ_id)
                      "record with mutable fields"
                | _ -> ())
              decls
        | Tstr_include i ->
            cur_node := prefix @ [ "<include>" ];
            walk_mod prefix i.incl_mod
        | _ -> ())
      items
  and walk_mb prefix mb =
    match (mb.mb_id, mb.mb_expr.mod_desc) with
    | Some _, Tmod_ident _ ->
        module_binding_hook it mb (* alias registration + R1/R3 *)
    | Some id, _ ->
        let p' = prefix @ [ Ident.name id ] in
        Hashtbl.replace mod_keys (stamp id) p';
        walk_mod p' mb.mb_expr
    | None, _ -> walk_mod prefix mb.mb_expr
  and walk_mod prefix m =
    match m.mod_desc with
    | Tmod_structure s -> walk_items prefix s.str_items
    | Tmod_constraint (m', _, _, _) -> walk_mod prefix m'
    | Tmod_functor (_, m') -> walk_mod prefix m'
    | Tmod_ident _ -> module_expr_hook it m
    | Tmod_apply (f, a, _) ->
        walk_mod prefix f;
        walk_mod prefix a
    | _ -> ()
  and top_vb prefix vb =
    match vb.vb_pat.pat_desc with
    | Tpat_var (id, _) ->
        let key = prefix @ [ Ident.name id ] in
        Hashtbl.replace val_keys (stamp id) key;
        nodes :=
          {
            Callgraph.n_key = key;
            n_line = loc_line vb.vb_loc;
            n_params = slot_params vb.vb_expr;
          }
          :: !nodes;
        cur_node := key;
        (* R10: a top-level binding holding a stream (in any container) is
           shared state no single caller owns. *)
        (let env = real_env vb.vb_expr.exp_env in
         if
           in_lib
           && (not (is_function_type env vb.vb_expr.exp_type))
           && mentions_rng env vb.vb_expr.exp_type
         then
           emit vb.vb_loc "R10"
             ("top-level binding `" ^ Ident.name id
            ^ "` holds an Rng stream: streams must be created (or split) \
               inside the entry point that owns them, not stored in module \
               state"));
        value_binding_hook it vb
    | _ ->
        cur_node := prefix @ [ "<pattern>" ];
        value_binding_hook it vb
  in
  (* Pre-scan: collect local idents punned into protocol records, so the
     main walk can give their bindings synthetic callback nodes. *)
  (let iter0 = Tast_iterator.default_iterator in
   let expr it e =
     (match e.exp_desc with
     | Texp_record { fields; _ }
       when is_protocol_type (real_env e.exp_env) e.exp_type ->
         Array.iter
           (fun (lbl, def) ->
             match (def, lbl.Types.lbl_name) with
             | ( Overridden
                   (_, { exp_desc = Texp_ident (Path.Pident id, _, _); _ }),
                 ("decide" | "deliver") ) ->
                 Hashtbl.replace callback_stamps (stamp id) ()
             | _ -> ())
           fields
     | _ -> ());
     iter0.expr it e
   in
   let pre = { iter0 with expr } in
   pre.structure pre str);
  walk_items unit_key str.str_items;
  (* R6 pass: top-level bindings only, including nested top-level modules. *)
  let rec scan_structure s =
    List.iter
      (fun item ->
        match item.str_desc with
        | Tstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                scan_top_rhs ~anchors:[ loc_line vb.vb_loc ] vb.vb_expr)
              vbs
        | Tstr_module mb -> scan_module mb.mb_expr
        | Tstr_recmodule mbs -> List.iter (fun mb -> scan_module mb.mb_expr) mbs
        | _ -> ())
      s.str_items
  and scan_module m =
    match m.mod_desc with
    | Tmod_structure s -> scan_structure s
    | Tmod_constraint (m, _, _, _) -> scan_module m
    | _ -> ()
  in
  scan_structure str;
  (* Resolve deferred references into call edges.  Local stamps map to
     node keys; dotted paths rooted in a unit-local module map through the
     module-stamp table; anything else flattens to its global parts. *)
  let resolve_path p =
    match p with
    | Path.Pident id -> (
        match Hashtbl.find_opt val_keys (stamp id) with
        | Some k -> Some k
        | None -> Hashtbl.find_opt local_cb (stamp id))
    | _ -> (
        let rec root = function
          | Path.Pident id -> Some id
          | Path.Pdot (q, _) -> root q
          | _ -> None
        in
        match root p with
        | Some rid when Hashtbl.mem mod_keys (stamp rid) -> (
            match Path.flatten p with
            | `Ok (_, rest) -> Some (Hashtbl.find mod_keys (stamp rid) @ rest)
            | `Contains_apply -> None)
        | _ -> (
            match parts_of aliases p with
            | [] -> None
            | parts -> Some parts))
  in
  let calls =
    List.filter_map
      (fun (caller, p, line, rng_args, sil, fwd, scope) ->
        match resolve_path p with
        | Some k ->
            Some
              {
                Callgraph.c_caller = caller;
                c_callee = k;
                c_line = line;
                c_rng_args = rng_args;
                c_sil = sil;
                c_fwd = fwd;
                c_scope = scope;
              }
        | None -> None)
      !raw_refs
  in
  let resolve_target = function
    | `None -> None
    | `Key k -> Some k
    | `Path p -> resolve_path p
  in
  let protos =
    List.rev_map
      (fun (node, line, anchors, dec, del) ->
        {
          Callgraph.p_node = node;
          p_line = line;
          p_anchors = anchors;
          p_decide = resolve_target dec;
          p_deliver = resolve_target del;
        })
      !raw_protos
  in
  let hints =
    List.filter_map
      (fun (target, line, anchors) ->
        match resolve_target target with
        | Some k ->
            Some { Callgraph.h_key = k; h_line = line; h_anchors = anchors }
        | None -> None)
      !raw_hints
  in
  let facts =
    {
      Callgraph.uf_unit = modname;
      uf_file = file;
      uf_nodes = List.rev !nodes;
      uf_calls = calls;
      uf_nondet = List.rev !nondet;
      uf_spawns = List.rev !spawn_caps;
      uf_occs = List.rev !occs;
      uf_binds = List.rev !binds;
      uf_writes = List.rev !writes;
      uf_protos = protos;
      uf_hints = List.rev hints;
    }
  in
  let sort fs =
    List.sort
      (fun a b ->
        match Int.compare a.line b.line with
        | 0 -> Int.compare a.col b.col
        | c -> c)
      fs
  in
  (sort (List.rev !findings), sort (List.rev !r6), !spawns, facts)

(* ------------------------------------------------------------------ *)
(* Frontends                                                           *)

let make_unit ~path ~source ~modname ~imports str =
  let file = normalize path in
  let findings, r6, sp, facts = analyze ~path ~modname str in
  let r0, valid = validate_allows ~file (collect_allows source) in
  {
    u_path = file;
    u_modname = modname;
    u_imports = imports;
    u_spawns = sp;
    u_findings = r0 @ findings;
    u_r6 = r6;
    u_allows = valid;
    u_facts = facts;
  }

let error_unit ~path ~rule msg =
  {
    u_path = normalize path;
    u_modname = "";
    u_imports = [];
    u_spawns = false;
    u_findings =
      [ { file = normalize path; line = 1; col = 0; rule; msg; anchors = [] } ];
    u_r6 = [];
    u_allows = [];
    u_facts = Callgraph.empty_facts;
  }

(* cmt frontend: the CLI path.  Sets the load path recorded in the cmt so
   the stored environments rehydrate (run from the dune context root,
   where those relative paths resolve). *)
let unit_of_cmt cmt_path =
  match Cmt_format.read_cmt cmt_path with
  | exception _ ->
      `Error
        (error_unit ~path:cmt_path ~rule:"CMT"
           ("unreadable cmt file: " ^ cmt_path))
  | cmt -> (
      match (cmt.Cmt_format.cmt_sourcefile, cmt.Cmt_format.cmt_annots) with
      | Some src, Cmt_format.Implementation str
        when Filename.check_suffix src ".ml" ->
          Load_path.init ~auto_include:Load_path.no_auto_include
            cmt.Cmt_format.cmt_loadpath;
          Envaux.reset_cache ();
          let source =
            match open_in_bin src with
            | exception Sys_error _ -> ""
            | ic ->
                let len = in_channel_length ic in
                let s = really_input_string ic len in
                close_in ic;
                s
          in
          `Unit
            (make_unit ~path:src ~source ~modname:cmt.Cmt_format.cmt_modname
               ~imports:(List.map fst cmt.Cmt_format.cmt_imports)
               str)
      | _ -> `Skip)

(* In-process typechecking frontend (stdlib scope only): used by the
   fixture self-tests so they need no build artifacts. *)
let typecheck_initialized = ref false

let lint_unit_of_source ~path ~source =
  if not !typecheck_initialized then begin
    typecheck_initialized := true;
    Clflags.dont_write_files := true;
    ignore (Warnings.parse_options false "-a");
    Compmisc.init_path ()
  end;
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf (normalize path);
  match Parse.implementation lexbuf with
  | exception exn ->
      let msg =
        match Location.error_of_exn exn with
        | Some (`Ok e) -> Format.asprintf "%a" Location.print_report e
        | _ -> Printexc.to_string exn
      in
      error_unit ~path ~rule:"PARSE" msg
  | ast -> (
      Env.reset_cache ();
      let env = Compmisc.initial_env () in
      match Typemod.type_structure env ast with
      | exception exn ->
          let msg =
            match Location.error_of_exn exn with
            | Some (`Ok e) -> Format.asprintf "%a" Location.print_report e
            | _ -> Printexc.to_string exn
          in
          error_unit ~path ~rule:"TYPE" msg
      | str, _, _, _, _ ->
          let modname =
            String.capitalize_ascii
              (Filename.remove_extension (Filename.basename path))
          in
          make_unit ~path ~source ~modname ~imports:[] str)

(* ------------------------------------------------------------------ *)
(* Whole-tree finalization: Domain-reachability and R6                 *)

(* A module is domain-shared when code in it can run on a spawned domain:
   (a) it calls Domain.spawn itself, or (b) it depends on a spawning
   module — its closures may be handed to a worker (Runner.map f) — and
   then transitively everything such a module depends on, since the worker
   may call into any of it. *)
let domain_reachable units =
  let by_name = Hashtbl.create 64 in
  List.iter
    (fun u -> if u.u_modname <> "" then Hashtbl.replace by_name u.u_modname u)
    units;
  let spawner_names =
    List.filter_map (fun u -> if u.u_spawns then Some u.u_modname else None) units
  in
  let seeds =
    List.filter
      (fun u ->
        u.u_spawns
        || List.exists (fun i -> List.mem i spawner_names) u.u_imports)
      units
  in
  let reachable = Hashtbl.create 64 in
  let rec visit u =
    if not (Hashtbl.mem reachable u.u_modname) then begin
      Hashtbl.replace reachable u.u_modname ();
      List.iter
        (fun i ->
          match Hashtbl.find_opt by_name i with
          | Some dep -> visit dep
          | None -> ())
        u.u_imports
    end
  in
  List.iter visit seeds;
  fun u -> u.u_modname <> "" && Hashtbl.mem reachable u.u_modname

(* One row of the suppression-debt ledger: every valid allow in the tree,
   with whether it still suppresses anything.  A stale allow (l_used =
   false) is debt that outlived its finding. *)
type ledger_entry = {
  l_file : string;
  l_line : int;
  l_rule : string;
  l_reason : string;
  l_used : bool;
}

(* Whole-tree finalization: R6 reachability filtering, the R8/R10
   call-graph analyses, suppression application with usage tracking.
   Returns the surviving findings and the allow ledger. *)
let finalize_full ?r8_sinks units =
  let reachable = domain_reachable units in
  let facts = List.map (fun u -> u.u_facts) units in
  let cg =
    (match r8_sinks with
    | Some sinks -> Callgraph.r8_findings ~sinks facts
    | None -> Callgraph.r8_findings facts)
    @ Callgraph.r10_findings facts
    @ Callgraph.r11_findings facts
    @ Callgraph.r12_findings facts
    @ (match r8_sinks with
      | Some sinks -> Callgraph.r13_findings ~r8_sinks:sinks facts
      | None -> Callgraph.r13_findings facts)
    @ Callgraph.r14_findings facts
  in
  let cg_by_file : (string, Callgraph.cg_finding) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter (fun (g : Callgraph.cg_finding) -> Hashtbl.add cg_by_file g.g_file g) cg;
  let used : (string * int * string, unit) Hashtbl.t = Hashtbl.create 64 in
  let all =
    List.concat_map
      (fun u ->
        let mark a = Hashtbl.replace used (u.u_path, a.a_line, a.a_rule) () in
        let graph =
          List.map
            (fun (g : Callgraph.cg_finding) ->
              {
                file = g.g_file;
                line = g.g_line;
                col = 0;
                rule = g.g_rule;
                msg = g.g_msg;
                anchors = g.g_anchors;
              })
            (Hashtbl.find_all cg_by_file u.u_path)
        in
        let r6 = if reachable u then u.u_r6 else [] in
        filter_allowed ~on_use:mark u.u_allows (u.u_findings @ r6 @ graph))
      units
  in
  let ledger =
    List.concat_map
      (fun u ->
        List.map
          (fun a ->
            {
              l_file = u.u_path;
              l_line = a.a_line;
              l_rule = a.a_rule;
              l_reason = a.a_reason;
              l_used = Hashtbl.mem used (u.u_path, a.a_line, a.a_rule);
            })
          u.u_allows)
      units
  in
  let sorted =
    List.sort
      (fun a b ->
        match String.compare a.file b.file with
        | 0 -> (
            match Int.compare a.line b.line with
            | 0 -> Int.compare a.col b.col
            | c -> c)
        | c -> c)
      all
  in
  let ledger =
    List.sort
      (fun a b ->
        match String.compare a.l_file b.l_file with
        | 0 -> Int.compare a.l_line b.l_line
        | c -> c)
      ledger
  in
  (sorted, ledger)

let finalize units = fst (finalize_full units)

(* Convenience for tests: lint one standalone source string (typechecked
   in-process; the module is its own reachability universe, so R6 fires
   only when the source itself spawns domains).  [r8_sinks] overrides the
   sanctioned-sink table so its seam is testable. *)
let lint_source ~path ~source =
  fst (finalize_full [ lint_unit_of_source ~path ~source ])

(* Same, with the sanctioned-sink table overridden — lets the fixture
   tests exercise the sink seam without touching the real table. *)
let lint_source_sinks ~r8_sinks ~path ~source =
  fst (finalize_full ~r8_sinks [ lint_unit_of_source ~path ~source ])
