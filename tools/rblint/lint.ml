(* rblint — repo-specific static analysis for the radio-broadcast simulator.

   Parses OCaml sources with compiler-libs and enforces the determinism,
   hot-path and zero-allocation invariants that the simulator's
   reproducibility claims rest on (DESIGN.md §8):

     R1  no [Stdlib.Random] outside lib/util/rng.ml — all randomness must
         flow through the seeded SplitMix64 [Rng] so every trial replays
         from one integer seed.
     R2  no polymorphic comparison ([compare], [Hashtbl.hash], comparison
         operators used as values, or infix comparison against structured
         operands such as [None] / [Some _] / [[]] / tuples) inside
         lib/util, lib/graph, lib/core, lib/radio — monomorphic
         comparators only.
     R3  no [Obj.magic] / [Obj.repr] (any use of [Obj]) anywhere.
     R4  no console output from lib/ — library code returns data; only
         bin/, bench/ and examples/ print.
     R5  no [List.*] traversal and no closure-allocating [Array]
         iteration inside a function tagged [@@zero_alloc_hot].

   Findings print as "file:line:col RULE message".  A finding is
   suppressed by [(* rblint:allow RULE reason *)] on the same line or the
   line directly above; a suppression with an empty reason is itself an
   error (R0) and suppresses nothing. *)

type finding = {
  file : string;
  line : int;
  col : int;
  rule : string;
  msg : string;
}

let pp_finding f = Printf.sprintf "%s:%d:%d %s %s" f.file f.line f.col f.rule f.msg

(* ------------------------------------------------------------------ *)
(* Path scoping                                                        *)

(* Normalize away leading "./" and backslashes so scope checks work on the
   paths dune hands us as well as plain CLI paths. *)
let normalize path =
  let path = String.map (fun c -> if c = '\\' then '/' else c) path in
  if String.length path > 2 && String.sub path 0 2 = "./" then
    String.sub path 2 (String.length path - 2)
  else path

let has_dir ~dir path =
  let path = normalize path and dir = dir ^ "/" in
  let n = String.length path and d = String.length dir in
  (n >= d && String.sub path 0 d = dir)
  ||
  let infix = "/" ^ dir in
  let di = String.length infix in
  let rec scan i =
    i + di <= n && (String.sub path i di = infix || scan (i + 1))
  in
  scan 0

let is_rng_ml path =
  let path = normalize path in
  let suffix = "lib/util/rng.ml" in
  let n = String.length path and s = String.length suffix in
  n >= s
  && String.sub path (n - s) s = suffix
  && (n = s || path.[n - s - 1] = '/')

let r2_scope path =
  List.exists
    (fun d -> has_dir ~dir:d path)
    [ "lib/util"; "lib/graph"; "lib/core"; "lib/radio" ]

let r4_scope path = has_dir ~dir:"lib" path

(* ------------------------------------------------------------------ *)
(* Suppressions                                                        *)

type allow = { a_line : int; a_rule : string; a_reason : string }

(* Scan raw source for [(* rblint:allow RULE reason *)] markers.  The
   parser drops comments, so this is a plain text scan; a marker applies
   to findings on its own line and on the following line. *)
let collect_allows source =
  let allows = ref [] in
  let lines = String.split_on_char '\n' source in
  List.iteri
    (fun i line ->
      let lno = i + 1 in
      let key = "rblint:allow" in
      match
        let kl = String.length key in
        let rec find j =
          if j + kl > String.length line then None
          else if String.sub line j kl = key then Some (j + kl)
          else find (j + 1)
        in
        find 0
      with
      | None -> ()
      | Some start ->
          let stop =
            let rec find j =
              if j + 2 > String.length line then String.length line
              else if String.sub line j 2 = "*)" then j
              else find (j + 1)
            in
            find start
          in
          let body = String.trim (String.sub line start (stop - start)) in
          let rule, reason =
            match String.index_opt body ' ' with
            | None -> (body, "")
            | Some sp ->
                ( String.sub body 0 sp,
                  String.trim
                    (String.sub body (sp + 1) (String.length body - sp - 1)) )
          in
          allows := { a_line = lno; a_rule = rule; a_reason = reason } :: !allows)
    lines;
  List.rev !allows

let apply_allows ~file allows findings =
  let invalid =
    List.filter_map
      (fun a ->
        if a.a_rule = "" || a.a_reason = "" then
          Some
            {
              file;
              line = a.a_line;
              col = 0;
              rule = "R0";
              msg = "rblint:allow needs a rule and a non-empty reason";
            }
        else None)
      allows
  in
  let valid = List.filter (fun a -> a.a_rule <> "" && a.a_reason <> "") allows in
  let kept =
    List.filter
      (fun f ->
        not
          (List.exists
             (fun a ->
               a.a_rule = f.rule && (a.a_line = f.line || a.a_line = f.line - 1))
             valid))
      findings
  in
  invalid @ kept

(* ------------------------------------------------------------------ *)
(* AST checks                                                          *)

open Parsetree

let loc_finding ~file (loc : Location.t) rule msg =
  let p = loc.loc_start in
  { file; line = p.pos_lnum; col = p.pos_cnum - p.pos_bol; rule; msg }

let poly_ops = [ "="; "<"; ">"; "<="; ">="; "<>" ]

(* Operands that make an infix comparison certainly polymorphic: constant
   constructors other than bool/unit ([None], [[]]), constructor or variant
   applications, tuples, records, arrays.  Comparisons between plain
   identifiers or against int/float/char/string literals are left alone —
   the typer specializes those. *)
let rec structured e =
  match e.pexp_desc with
  | Pexp_construct ({ txt = Longident.Lident ("true" | "false" | "()"); _ }, None)
    ->
      false
  | Pexp_construct _ | Pexp_variant _ | Pexp_tuple _ | Pexp_record _
  | Pexp_array _ ->
      true
  | Pexp_constraint (e, _) -> structured e
  | _ -> false

let lint_source ~path ~source =
  let file = normalize path in
  let findings = ref [] in
  let emit loc rule msg = findings := loc_finding ~file loc rule msg :: !findings in
  let in_r2 = r2_scope file and in_r4 = r4_scope file in
  let rng_exempt = is_rng_ml file in
  let hot = ref 0 in
  let check_longident loc lid =
    let parts = Longident.flatten lid in
    let parts =
      match parts with "Stdlib" :: rest when rest <> [] -> rest | _ -> parts
    in
    (match parts with
    | "Random" :: _ when not rng_exempt ->
        emit loc "R1"
          "Stdlib.Random is banned: draw through the seeded Rng (SplitMix64) \
           so runs replay from one seed"
    | _ -> ());
    (match parts with
    | "Obj" :: _ ->
        emit loc "R3" "Obj.magic/Obj.repr break abstraction and memory safety"
    | _ -> ());
    (if in_r2 then
       match parts with
       | [ "compare" ] | [ "Pervasives"; "compare" ] ->
           emit loc "R2"
             "polymorphic compare: use a monomorphic comparator \
              (Int.compare, Float.compare, ...)"
       | [ "Hashtbl"; "hash" ] ->
           emit loc "R2" "polymorphic Hashtbl.hash: hash a concrete key type"
       | _ -> ());
    if in_r4 then begin
      (match parts with
      | [ p ]
        when List.mem p
               [
                 "print_string"; "print_endline"; "print_newline"; "print_char";
                 "print_int"; "print_float"; "print_bytes"; "prerr_string";
                 "prerr_endline"; "prerr_newline"; "prerr_char"; "prerr_int";
                 "prerr_float"; "prerr_bytes"; "stdout"; "stderr";
               ] ->
          emit loc "R4"
            ("console output from lib/ (" ^ p
           ^ "): return data and let bin/bench/examples print")
      | _ -> ());
      match parts with
      | [ ("Printf" | "Format" | "Fmt"); fn ]
        when List.mem fn
               [
                 "printf"; "eprintf"; "pr"; "epr"; "print_string";
                 "print_newline"; "print_flush"; "std_formatter";
                 "err_formatter"; "stdout"; "stderr";
               ] ->
          emit loc "R4"
            "console output from lib/: return data and let bin/bench/examples \
             print"
      | _ -> ()
    end;
    if !hot > 0 then
      match parts with
      | "List" :: _ ->
          emit loc "R5"
            "List traversal inside [@@zero_alloc_hot]: lists allocate; use \
             preallocated arrays and indices"
      | [ "Array"; fn ]
        when List.mem fn
               [ "iter"; "iteri"; "map"; "mapi"; "fold_left"; "fold_right";
                 "to_list"; "of_list" ] ->
          emit loc "R5"
            ("closure-allocating Array." ^ fn
           ^ " inside [@@zero_alloc_hot]: use an explicit for-loop")
      | _ -> ()
  in
  let iter = Ast_iterator.default_iterator in
  let rec expr it e =
    match e.pexp_desc with
    | Pexp_apply
        ({ pexp_desc = Pexp_ident { txt = Longident.Lident op; loc }; _ }, args)
      when List.mem op poly_ops -> (
        match args with
        | [ (_, a); (_, b) ] ->
            if in_r2 && (structured a || structured b) then
              emit loc "R2"
                ("polymorphic (" ^ op
               ^ ") on a structured operand: match instead, or use \
                  Option.is_some/Option.is_none or a monomorphic equal");
            expr it a;
            expr it b
        | args ->
            if in_r2 then
              emit loc "R2"
                ("comparison operator (" ^ op
               ^ ") partially applied: pass a monomorphic comparator");
            List.iter (fun (_, a) -> expr it a) args)
    | Pexp_ident { txt = Longident.Lident op; loc } when List.mem op poly_ops ->
        if in_r2 then
          emit loc "R2"
            ("comparison operator (" ^ op
           ^ ") used as a value: pass a monomorphic comparator")
    | Pexp_ident { txt; loc } ->
        check_longident loc txt;
        iter.expr it e
    | _ -> iter.expr it e
  in
  let module_expr it m =
    (match m.pmod_desc with
    | Pmod_ident { txt; loc } -> check_longident loc txt
    | _ -> ());
    iter.module_expr it m
  in
  let value_binding it vb =
    let is_hot =
      List.exists (fun a -> a.attr_name.txt = "zero_alloc_hot") vb.pvb_attributes
    in
    if is_hot then begin
      incr hot;
      iter.value_binding it vb;
      decr hot
    end
    else iter.value_binding it vb
  in
  let it = { iter with expr; module_expr; value_binding } in
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf file;
  match Parse.implementation lexbuf with
  | exception exn ->
      let msg =
        match Location.error_of_exn exn with
        | Some (`Ok e) -> Format.asprintf "%a" Location.print_report e
        | _ -> Printexc.to_string exn
      in
      [ { file; line = 1; col = 0; rule = "PARSE"; msg } ]
  | ast ->
      it.structure it ast;
      let found =
        List.sort
          (fun a b ->
            match Int.compare a.line b.line with
            | 0 -> Int.compare a.col b.col
            | c -> c)
          (List.rev !findings)
      in
      apply_allows ~file (collect_allows source) found

let lint_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let source = really_input_string ic len in
  close_in ic;
  lint_source ~path ~source
