(* callgraph — whole-library dataflow over facts extracted from typed ASTs.

   lint.ml's per-unit traversal collects *facts* (top-level nodes, calls,
   nondeterministic-source uses, Domain.spawn captures, Rng occurrences and
   bindings); this module runs the cross-unit analyses over them:

     R8  determinism taint — a function is tainted when it uses a
         nondeterministic source (wall clock, domain identity, GC
         statistics, Hashtbl iteration order) or calls a tainted function.
         Taint stops at *sanctioned sinks* (declared in one table below):
         a sink's uses are by design never fed into simulation results.
         Findings are emitted for tainted functions defined under lib/ —
         bench wall-clock fields live outside lib/ and stay free.

     R10 RNG ownership — linearity of Rng streams over the call graph.  A
         parameter slot is *consuming* when the callee (transitively)
         hands it to a Domain.spawn closure.  Each locally created stream
         (Rng.create/split/copy result) may be consumed at most once, and
         never used again after it was consumed: two consumptions race two
         domains on one stream; use-after-consumption races the parent
         against the worker.

     v4 adds the protocol-contract rules, driven by the write/effect
     facts (mutable-store primitives with silence-region and
     node-locality flags, protocol-record constructions, next_busy_round
     hint roots):

     R11 silence purity — a protocol's [deliver] must not, transitively
         through silence-reachable calls, write mutable state or draw
         Rng on a [Silence] delivery (Engine_sparse skips silent rounds).
     R12 write locality — every write reachable from a protocol's
         [decide]/[deliver] must target node-derived state, node-local
         scratch, or an [Atomic.t] (Engine_sharded races callbacks of
         different nodes otherwise); Rng draws must come from a
         node-derived stream.
     R13 hint determinism — [~next_busy_round] closures must be pure
         functions of the round and data they can only read: any write,
         Rng draw or R8-tainted source reachable from the hint fires.
     R14 registry coverage — every lib/ pipeline that constructs a
         protocol and drives an engine must be reachable from an
         [Rn_radio.Registry.register] call, so the registry enumerates
         the full protocol surface.

   Approximations (documented in DESIGN.md §9): only top-level bindings
   become call-graph nodes (inner helpers are folded into their enclosing
   node); Rng arguments are tracked only when passed as a bare identifier;
   ordering within a function body is ignored, so a provably-sequential
   handoff that the analysis cannot see must carry a reasoned
   [rblint:allow R10].

   Identifier stamps are [Ident.unique_name] strings and are only
   meaningful within one unit; cross-unit flow goes through keys. *)

type key = string list
(* Canonical name of a call-graph node: the compilation unit split on the
   dune name-mangling separator, then any nested modules, then the value —
   ["Rn_radio"; "Engine"; "run"].  Cross-module references in a cmt appear
   as wrapper-dot paths (Rn_radio.Engine.run) and flatten to the same
   list. *)

let string_of_key = String.concat "."

(* "Rn_radio__Engine" -> ["Rn_radio"; "Engine"] *)
let key_of_modname m =
  let n = String.length m in
  let rec go start i acc =
    if i + 2 > n then List.rev (String.sub m start (n - start) :: acc)
    else if m.[i] = '_' && m.[i + 1] = '_' then
      go (i + 2) (i + 2) (String.sub m start (i - start) :: acc)
    else go start (i + 1) acc
  in
  if m = "" then [] else go 0 0 []

(* Argument slot: positional index among unlabelled arguments, or the
   label.  Call sites and parameter lists compute slots the same way, so
   labelled-argument reordering cannot misalign them. *)
type slot = Pos of int | Lab of string

let string_of_slot = function
  | Pos i -> "#" ^ string_of_int i
  | Lab l -> "~" ^ l

(* ------------------------------------------------------------------ *)
(* Facts                                                               *)

type node = {
  n_key : key;
  n_line : int;  (** definition start line — suppression anchor *)
  n_params : (slot * string) list;  (** slot -> param ident stamp *)
}

type call = {
  c_caller : key;
  c_callee : key;  (** resolved: local node key or dotted global parts *)
  c_line : int;
  c_rng_args : (slot * string) list;
      (** bare Rng.t identifiers passed at this site *)
  c_sil : bool;
      (** the call site is silence-reachable: not dominated by a
          reception-match arm that excludes [Silence] (R11) *)
  c_fwd : bool;
      (** some argument mentions a node-derived identifier — the callee is
          trusted to operate on that node's state (R12) *)
  c_scope : bool;  (** the call site sits inside a [~node]-parameter scope *)
}

type nondet_use = {
  d_node : key;
  d_src : string;  (** e.g. "Unix.gettimeofday" *)
  d_line : int;
}

type spawn_cap = {
  s_node : key;
  s_line : int;
  s_caps : string list;  (** stamps of Rng.t idents captured by the closure *)
}

type occ = { o_stamp : string; o_line : int }
(** a plain (non-argument, non-capture) use of an Rng.t identifier *)

type rng_bind = {
  b_stamp : string;
  b_name : string;
  b_line : int;
  b_anchors : int list;  (** enclosing-expression start lines *)
}

type write = {
  w_node : key;
  w_line : int;
  w_desc : string;  (** e.g. "Array.set", ":=", "mutable-field set" *)
  w_sil : bool;  (** silence-reachable within its function (see [call].c_sil) *)
  w_atomic : bool;  (** an [Atomic.*] store — sanctioned for R12, not R11/R13 *)
  w_node_ok : bool;
      (** the write target mentions a node-derived identifier or node-local
          scratch — only meaningful when [w_in_scope] *)
  w_in_scope : bool;  (** lexically inside a [~node]-parameter scope *)
  w_anchors : int list;
}
(** one mutable-store primitive executed by a call-graph node *)

type proto_decl = {
  p_node : key;  (** node constructing the [Engine.protocol] record *)
  p_line : int;
  p_anchors : int list;
  p_decide : key option;  (** resolved callback nodes; [None] = unanalyzable *)
  p_deliver : key option;
}

type hint_decl = {
  h_key : key;  (** node holding the [~next_busy_round] closure body *)
  h_line : int;
  h_anchors : int list;
}

type unit_facts = {
  uf_unit : string;  (** compilation unit name, e.g. "Rn_radio__Engine" *)
  uf_file : string;  (** normalized source path *)
  uf_nodes : node list;
  uf_calls : call list;
  uf_nondet : nondet_use list;
  uf_spawns : spawn_cap list;
  uf_occs : occ list;
  uf_binds : rng_bind list;
  uf_writes : write list;
  uf_protos : proto_decl list;
  uf_hints : hint_decl list;
}

let empty_facts =
  {
    uf_unit = "";
    uf_file = "";
    uf_nodes = [];
    uf_calls = [];
    uf_nondet = [];
    uf_spawns = [];
    uf_occs = [];
    uf_binds = [];
    uf_writes = [];
    uf_protos = [];
    uf_hints = [];
  }

(* All call edges, for the fixture self-tests. *)
let edges units =
  List.concat_map
    (fun uf ->
      List.map (fun c -> (c.c_caller, c.c_callee, c.c_line)) uf.uf_calls)
    units

(* ------------------------------------------------------------------ *)
(* Nondeterministic sources and sanctioned sinks                       *)

let nondet_of_parts = function
  | [ "Unix"; (("gettimeofday" | "time") as f) ] -> Some ("Unix." ^ f)
  | [ "Stdlib"; "Sys"; "time" ] -> Some "Sys.time"
  | [ "Stdlib"; "Domain"; "self" ] -> Some "Domain.self"
  | [ "Stdlib"; "Domain"; "recommended_domain_count" ] ->
      Some "Domain.recommended_domain_count"
  | [ "Stdlib"; "Gc";
      (( "stat" | "quick_stat" | "counters" | "minor_words" | "major_words"
       | "allocated_bytes" ) as f) ] ->
      Some ("Gc." ^ f)
  | [ "Stdlib"; "Hashtbl"; (("iter" | "fold") as f) ] ->
      Some ("Hashtbl." ^ f ^ " (iteration order)")
  | _ -> None

(* The one table of sanctioned sinks: functions allowed to touch a
   nondeterministic source because their result never feeds simulation
   output.  Taint neither enters nor leaves a sink. *)
let default_r8_sinks =
  [
    ( [ "Rn_radio"; "Runner"; "default_domains" ],
      "domain-count sizing: machine-dependent by design, affects only how \
       work is scheduled, never the simulated rounds" );
  ]

(* ------------------------------------------------------------------ *)
(* Findings                                                            *)

type cg_finding = {
  g_file : string;
  g_line : int;
  g_rule : string;
  g_msg : string;
  g_anchors : int list;
}

let in_lib file =
  let file = if String.length file > 2 && String.sub file 0 2 = "./" then
      String.sub file 2 (String.length file - 2)
    else file
  in
  let pre = "lib/" in
  (String.length file >= 4 && String.sub file 0 4 = pre)
  ||
  let infix = "/lib/" in
  let n = String.length file and d = String.length infix in
  let rec scan i = i + d <= n && (String.sub file i d = infix || scan (i + 1)) in
  scan 0

let sort_findings fs =
  List.sort
    (fun a b ->
      match String.compare a.g_file b.g_file with
      | 0 -> (
          match Int.compare a.g_line b.g_line with
          | 0 -> String.compare a.g_msg b.g_msg
          | c -> c)
      | c -> c)
    fs

(* ------------------------------------------------------------------ *)
(* Shared cross-unit machinery                                         *)

(* key -> (file, def line) over all units *)
let node_home_table units =
  let node_home = Hashtbl.create 256 in
  List.iter
    (fun uf ->
      List.iter
        (fun n -> Hashtbl.replace node_home n.n_key (uf.uf_file, n.n_line))
        uf.uf_nodes)
    units;
  node_home

(* Key classifiers: suffix-matched so they work on real wrapper-dot paths
   (Rn_util.Rng.bool) and on fixture-local modules (Bad_r12.Rng.bool)
   alike. *)
let rng_op_of_key k =
  match List.rev k with op :: "Rng" :: _ -> Some op | _ -> None

(* [create] mints a fresh stream and [copy] reads without mutating; every
   other Rng operation advances (or splits) the underlying stream state. *)
let rng_consuming = function "create" | "copy" -> false | _ -> true

let is_engine_run k =
  match List.rev k with
  | "run" :: ("Engine" | "Engine_sparse" | "Engine_sharded") :: _ -> true
  | _ -> false

let is_registry_register k =
  match List.rev k with "register" :: "Registry" :: _ -> true | _ -> false

(* Generic cause-table propagation: seed every node [seed_iter] offers,
   then spread along the reverse of the given edges (caller becomes bad
   when an eligible call reaches a bad callee).  The resulting table maps
   each bad node to its first witness ([`Direct] or [`Via]), from which
   [chain_of] renders an R8-style witness chain. *)
let propagate ~seed_iter ~edge_ok ~skip units =
  let rev = Hashtbl.create 256 in
  List.iter
    (fun uf ->
      List.iter
        (fun c ->
          if edge_ok c then Hashtbl.add rev c.c_callee (c.c_caller, c.c_line))
        uf.uf_calls)
    units;
  let cause = Hashtbl.create 64 in
  let queue = Queue.create () in
  let mark k c =
    if (not (skip k)) && not (Hashtbl.mem cause k) then begin
      Hashtbl.replace cause k c;
      Queue.add k queue
    end
  in
  seed_iter mark;
  while not (Queue.is_empty queue) do
    let k = Queue.pop queue in
    List.iter
      (fun (caller, line) -> mark caller (`Via (k, line)))
      (Hashtbl.find_all rev k)
  done;
  cause

(* witness chain: node -> ... -> direct cause *)
let chain_of ~node_home cause k0 =
  let buf = Buffer.create 64 in
  Buffer.add_string buf (string_of_key k0);
  let rec go k =
    match Hashtbl.find_opt cause k with
    | Some (`Direct (src, line)) ->
        let file =
          match Hashtbl.find_opt node_home k with
          | Some (f, _) -> f
          | None -> "?"
        in
        Buffer.add_string buf (Printf.sprintf " -> %s (%s:%d)" src file line)
    | Some (`Via (callee, line)) ->
        Buffer.add_string buf
          (Printf.sprintf " -> %s (call at line %d)" (string_of_key callee)
             line);
        go callee
    | None -> ()
  in
  go k0;
  Buffer.contents buf

(* Forward closure from a seed set along call edges satisfying [edge_ok]. *)
let forward_closure ~seeds ~edge_ok units =
  let out = Hashtbl.create 256 in
  List.iter
    (fun uf ->
      List.iter
        (fun c -> if edge_ok c then Hashtbl.add out c.c_caller c.c_callee)
        uf.uf_calls)
    units;
  let seen = Hashtbl.create 64 in
  let queue = Queue.create () in
  let visit k =
    if not (Hashtbl.mem seen k) then begin
      Hashtbl.replace seen k ();
      Queue.add k queue
    end
  in
  List.iter visit seeds;
  while not (Queue.is_empty queue) do
    let k = Queue.pop queue in
    List.iter visit (Hashtbl.find_all out k)
  done;
  seen

(* ------------------------------------------------------------------ *)
(* R8 — determinism taint                                              *)

(* The R8 cause table, exposed so R13 can treat taint as a hint-impurity
   source. *)
let r8_taint ?(sinks = List.map fst default_r8_sinks) units =
  propagate
    ~seed_iter:(fun mark ->
      List.iter
        (fun uf ->
          List.iter
            (fun d -> mark d.d_node (`Direct (d.d_src, d.d_line)))
            uf.uf_nondet)
        units)
    ~edge_ok:(fun _ -> true)
    ~skip:(fun k -> List.mem k sinks)
    units

let r8_findings ?(sinks = List.map fst default_r8_sinks) units =
  let node_home = node_home_table units in
  let cause = r8_taint ~sinks units in
  let chain = chain_of ~node_home cause in
  let fs =
    Hashtbl.fold
      (fun k _ acc ->
        match Hashtbl.find_opt node_home k with
        | Some (file, line) when in_lib file ->
            {
              g_file = file;
              g_line = line;
              g_rule = "R8";
              g_msg =
                "nondeterminism reaches simulation code: " ^ chain k
                ^ " — results must replay from the seed alone; route \
                   wall-clock through bench-only fields, or add the callee \
                   to the sanctioned-sink table (tools/rblint/callgraph.ml) \
                   if its result never feeds simulation output";
              g_anchors = [ line ];
            }
            :: acc
        | _ -> acc)
      cause []
  in
  sort_findings fs

(* ------------------------------------------------------------------ *)
(* R10 — RNG ownership                                                 *)

let r10_findings units =
  (* param stamp -> (node key, slot), per unit (stamps are unit-local) *)
  let param_of = Hashtbl.create 128 in
  List.iter
    (fun uf ->
      List.iter
        (fun n ->
          List.iter
            (fun (sl, st) ->
              Hashtbl.replace param_of (uf.uf_unit, st) (n.n_key, sl))
            n.n_params)
        uf.uf_nodes)
    units;
  (* consuming slots fixpoint: a slot consumes when the callee spawns a
     closure capturing that parameter, or forwards it to a consuming
     slot. *)
  let consuming : (key * slot, unit) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun uf ->
      List.iter
        (fun s ->
          List.iter
            (fun st ->
              match Hashtbl.find_opt param_of (uf.uf_unit, st) with
              | Some ks -> Hashtbl.replace consuming ks ()
              | None -> ())
            s.s_caps)
        uf.uf_spawns)
    units;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun uf ->
        List.iter
          (fun c ->
            List.iter
              (fun (sl, st) ->
                if Hashtbl.mem consuming (c.c_callee, sl) then
                  match Hashtbl.find_opt param_of (uf.uf_unit, st) with
                  | Some ks when not (Hashtbl.mem consuming ks) ->
                      Hashtbl.replace consuming ks ();
                      changed := true
                  | _ -> ())
              c.c_rng_args)
          uf.uf_calls)
      units
  done;
  (* verdict per locally created stream *)
  let fs =
    List.concat_map
      (fun uf ->
        if not (in_lib uf.uf_file) then []
        else
          List.filter_map
            (fun b ->
              let consumptions =
                List.length
                  (List.filter (fun s -> List.mem b.b_stamp s.s_caps)
                     uf.uf_spawns)
                + List.length
                    (List.concat_map
                       (fun c ->
                         List.filter
                           (fun (sl, st) ->
                             st = b.b_stamp
                             && Hashtbl.mem consuming (c.c_callee, sl))
                           c.c_rng_args)
                       uf.uf_calls)
              in
              let other_uses =
                List.length
                  (List.filter (fun o -> o.o_stamp = b.b_stamp) uf.uf_occs)
                + List.length
                    (List.concat_map
                       (fun c ->
                         List.filter
                           (fun (sl, st) ->
                             st = b.b_stamp
                             && not (Hashtbl.mem consuming (c.c_callee, sl)))
                           c.c_rng_args)
                       uf.uf_calls)
              in
              if consumptions >= 2 then
                Some
                  {
                    g_file = uf.uf_file;
                    g_line = b.b_line;
                    g_rule = "R10";
                    g_msg =
                      Printf.sprintf
                        "rng stream `%s` is handed to %d domain owners \
                         (Domain.spawn captures or ownership-transferring \
                         calls): two domains would race one stream — give \
                         each owner its own Rng.split child"
                        b.b_name consumptions;
                    g_anchors = b.b_anchors;
                  }
              else if consumptions = 1 && other_uses >= 1 then
                Some
                  {
                    g_file = uf.uf_file;
                    g_line = b.b_line;
                    g_rule = "R10";
                    g_msg =
                      Printf.sprintf
                        "rng stream `%s` is used again after being handed \
                         to a domain owner: the parent would race the \
                         worker — split before the handoff, or prove the \
                         uses are sequential and add a reasoned \
                         rblint:allow R10"
                        b.b_name;
                    g_anchors = b.b_anchors;
                  }
              else None)
            uf.uf_binds)
      units
  in
  sort_findings fs

(* ------------------------------------------------------------------ *)
(* R11 — silence purity of protocol [deliver] callbacks                *)

(* A node is silence-impure when a [Silence] delivery could reach a
   mutable write or an Rng draw: it performs one in silence-reachable
   position itself, or it silence-reachably calls a silence-impure
   callee.  A callee that opens with its own reception match contributes
   only its silence-reachable effects, so forwarding the reception to a
   guarded helper ([Recruiting.deliver recr ~node reception]) stays
   clean, while a leaf helper with no reception match contributes its
   whole body. *)
let silence_impure units =
  propagate
    ~seed_iter:(fun mark ->
      List.iter
        (fun uf ->
          List.iter
            (fun w ->
              if w.w_sil then mark w.w_node (`Direct (w.w_desc, w.w_line)))
            uf.uf_writes;
          List.iter
            (fun c ->
              if c.c_sil then
                match rng_op_of_key c.c_callee with
                | Some op when rng_consuming op ->
                    mark c.c_caller (`Direct ("Rng." ^ op ^ " draw", c.c_line))
                | _ -> ())
            uf.uf_calls)
        units)
    ~edge_ok:(fun c -> c.c_sil)
    ~skip:(fun _ -> false)
    units

let r11_findings units =
  let node_home = node_home_table units in
  let cause = silence_impure units in
  let chain = chain_of ~node_home cause in
  let fs =
    List.concat_map
      (fun uf ->
        if not (in_lib uf.uf_file) then []
        else
          List.filter_map
            (fun p ->
              match p.p_deliver with
              | Some k when Hashtbl.mem cause k ->
                  Some
                    {
                      g_file = uf.uf_file;
                      g_line = p.p_line;
                      g_rule = "R11";
                      g_msg =
                        "protocol deliver is not silence-pure: " ^ chain k
                        ^ " — a Silence delivery may mutate state or draw \
                           randomness, so Engine_sparse's skipped silent \
                           rounds would diverge from the dense engine; keep \
                           every silence-reachable path effect-free (guard \
                           effects under Received/Collision arms) or add a \
                           reasoned rblint:allow R11";
                      g_anchors = p.p_anchors;
                    }
              | _ -> None)
            uf.uf_protos)
      units
  in
  sort_findings fs

(* ------------------------------------------------------------------ *)
(* R12 — per-node write locality of protocol callbacks                 *)

let r12_findings units =
  let callbacks =
    List.concat_map
      (fun uf ->
        List.concat_map
          (fun p ->
            (match p.p_decide with Some k -> [ k ] | None -> [])
            @ (match p.p_deliver with Some k -> [ k ] | None -> []))
          uf.uf_protos)
      units
  in
  (* Everything a callback can execute. *)
  let reach =
    forward_closure ~seeds:callbacks ~edge_ok:(fun _ -> true) units
  in
  (* Everything a callback can execute without ever passing node-derived
     data along the way: helpers reached like this operate on state the
     analysis cannot tie to the delivering node.  A call that forwards a
     node-derived argument is a trust boundary — the callee is presumed
     to work on that node's state (documented approximation, DESIGN §13). *)
  let reach_blind =
    forward_closure ~seeds:callbacks ~edge_ok:(fun c -> not c.c_fwd) units
  in
  let advice =
    " — Engine_sharded runs callbacks for different nodes on different \
     domains, so cross-node or shared-accumulator writes race; index \
     through the callback's ~node argument, use node-local scratch, make \
     shared aggregates Atomic.t, or add a reasoned rblint:allow R12"
  in
  let fs =
    List.concat_map
      (fun uf ->
        if not (in_lib uf.uf_file) then []
        else
          List.filter_map
            (fun w ->
              if w.w_atomic then None
              else if
                w.w_in_scope && (not w.w_node_ok) && Hashtbl.mem reach w.w_node
              then
                Some
                  {
                    g_file = uf.uf_file;
                    g_line = w.w_line;
                    g_rule = "R12";
                    g_msg =
                      "cross-node write in a protocol callback: the target \
                       of " ^ w.w_desc
                      ^ " is not derived from the callback's ~node argument \
                         or node-local scratch" ^ advice;
                    g_anchors = w.w_anchors;
                  }
              else if
                (not w.w_in_scope) && Hashtbl.mem reach_blind w.w_node
              then
                Some
                  {
                    g_file = uf.uf_file;
                    g_line = w.w_line;
                    g_rule = "R12";
                    g_msg =
                      "shared-state write (" ^ w.w_desc ^ ") in `"
                      ^ string_of_key w.w_node
                      ^ "`, reachable from a protocol callback without a \
                         node-derived argument" ^ advice;
                    g_anchors = w.w_anchors;
                  }
              else None)
            uf.uf_writes
          @ List.filter_map
              (fun c ->
                match rng_op_of_key c.c_callee with
                | Some op
                  when rng_consuming op && (not c.c_fwd)
                       && ((c.c_scope && Hashtbl.mem reach c.c_caller)
                          || ((not c.c_scope)
                             && Hashtbl.mem reach_blind c.c_caller)) ->
                    Some
                      {
                        g_file = uf.uf_file;
                        g_line = c.c_line;
                        g_rule = "R12";
                        g_msg =
                          "shared Rng draw (Rng." ^ op
                          ^ ") in a protocol callback: the stream is not \
                             node-derived, so concurrent callbacks would \
                             race it and the draw order would depend on the \
                             shard schedule — draw from a per-node stream \
                             (e.g. Rng.split_n at setup)" ^ advice;
                        g_anchors = [ c.c_line ];
                      }
                | _ -> None)
              uf.uf_calls)
      units
  in
  sort_findings fs

(* ------------------------------------------------------------------ *)
(* R13 — determinism/purity of [~next_busy_round] hints                *)

let r13_findings ?r8_sinks units =
  let node_home = node_home_table units in
  let taint =
    match r8_sinks with
    | Some sinks -> r8_taint ~sinks units
    | None -> r8_taint units
  in
  (* A hint is impure when any write (Atomic included — hints may be
     re-queried or skipped, so even atomic counters desynchronize), any
     consuming Rng draw, or any R8-tainted source is reachable from its
     body.  Mutable *reads* are deliberately allowed: the engine
     re-queries the hint each silent round, so reading evolving state is
     sound. *)
  let cause =
    propagate
      ~seed_iter:(fun mark ->
        List.iter
          (fun uf ->
            List.iter
              (fun w -> mark w.w_node (`Direct (w.w_desc, w.w_line)))
              uf.uf_writes;
            List.iter
              (fun c ->
                (match rng_op_of_key c.c_callee with
                | Some op when rng_consuming op ->
                    mark c.c_caller (`Direct ("Rng." ^ op ^ " draw", c.c_line))
                | _ -> ());
                if Hashtbl.mem taint c.c_callee then
                  mark c.c_caller
                    (`Direct
                       ( "R8-tainted " ^ string_of_key c.c_callee,
                         c.c_line )))
              uf.uf_calls)
          units)
      ~edge_ok:(fun _ -> true)
      ~skip:(fun _ -> false)
      units
  in
  (* Direct nondet in the hint body itself (not through a call). *)
  List.iter
    (fun uf ->
      List.iter
        (fun d ->
          if not (Hashtbl.mem cause d.d_node) then
            Hashtbl.replace cause d.d_node (`Direct (d.d_src, d.d_line)))
        uf.uf_nondet)
    units;
  let chain = chain_of ~node_home cause in
  let fs =
    List.concat_map
      (fun uf ->
        if not (in_lib uf.uf_file) then []
        else
          List.filter_map
            (fun h ->
              if Hashtbl.mem cause h.h_key then
                Some
                  {
                    g_file = uf.uf_file;
                    g_line = h.h_line;
                    g_rule = "R13";
                    g_msg =
                      "next_busy_round hint is not a pure function of the \
                       round: " ^ chain h.h_key
                      ^ " — Engine_sparse consults the hint instead of \
                         simulating silent rounds, so any write, Rng draw \
                         or nondeterministic source in it diverges the \
                         sparse schedule from the dense one; compute the \
                         hint from the round and captured immutable data \
                         (reading evolving state is fine), or add a \
                         reasoned rblint:allow R13";
                    g_anchors = h.h_anchors;
                  }
              else None)
            uf.uf_hints)
      units
  in
  sort_findings fs

(* ------------------------------------------------------------------ *)
(* R14 — registry coverage of protocol pipelines                       *)

let r14_findings units =
  (* Nodes that register an entry, plus everything those registrations
     reference: an entry's run wrapper links the registered name to the
     pipeline it drives, so the whole pipeline counts as covered. *)
  let register_seeds =
    List.concat_map
      (fun uf ->
        List.filter_map
          (fun c ->
            if is_registry_register c.c_callee then Some c.c_caller else None)
          uf.uf_calls)
      units
  in
  let covered =
    forward_closure ~seeds:register_seeds ~edge_ok:(fun _ -> true) units
  in
  (* Nodes that transitively drive an engine: backward reachability from
     Engine/Engine_sparse/Engine_sharded run call sites. *)
  let drives =
    propagate
      ~seed_iter:(fun mark ->
        List.iter
          (fun uf ->
            List.iter
              (fun c ->
                if is_engine_run c.c_callee then
                  mark c.c_caller
                    (`Direct (string_of_key c.c_callee, c.c_line)))
              uf.uf_calls)
          units)
      ~edge_ok:(fun _ -> true)
      ~skip:(fun _ -> false)
      units
  in
  let fs =
    List.concat_map
      (fun uf ->
        if not (in_lib uf.uf_file) then []
        else
          List.filter_map
            (fun p ->
              if
                Hashtbl.mem drives p.p_node
                && not (Hashtbl.mem covered p.p_node)
              then
                Some
                  {
                    g_file = uf.uf_file;
                    g_line = p.p_line;
                    g_rule = "R14";
                    g_msg =
                      "protocol pipeline `" ^ string_of_key p.p_node
                      ^ "` constructs a protocol and drives an engine but \
                         is not reachable from any Rn_radio.Registry \
                         registration: add an entry (lib/core/protocols.ml) \
                         so rbcast/bench/tests and the contract rules \
                         R11-R13 see it, or mark an internal driver with a \
                         reasoned rblint:allow R14";
                    g_anchors = p.p_anchors;
                  }
              else None)
            uf.uf_protos)
      units
  in
  sort_findings fs
