(* callgraph — whole-library dataflow over facts extracted from typed ASTs.

   lint.ml's per-unit traversal collects *facts* (top-level nodes, calls,
   nondeterministic-source uses, Domain.spawn captures, Rng occurrences and
   bindings); this module runs the cross-unit analyses over them:

     R8  determinism taint — a function is tainted when it uses a
         nondeterministic source (wall clock, domain identity, GC
         statistics, Hashtbl iteration order) or calls a tainted function.
         Taint stops at *sanctioned sinks* (declared in one table below):
         a sink's uses are by design never fed into simulation results.
         Findings are emitted for tainted functions defined under lib/ —
         bench wall-clock fields live outside lib/ and stay free.

     R10 RNG ownership — linearity of Rng streams over the call graph.  A
         parameter slot is *consuming* when the callee (transitively)
         hands it to a Domain.spawn closure.  Each locally created stream
         (Rng.create/split/copy result) may be consumed at most once, and
         never used again after it was consumed: two consumptions race two
         domains on one stream; use-after-consumption races the parent
         against the worker.

   Approximations (documented in DESIGN.md §9): only top-level bindings
   become call-graph nodes (inner helpers are folded into their enclosing
   node); Rng arguments are tracked only when passed as a bare identifier;
   ordering within a function body is ignored, so a provably-sequential
   handoff that the analysis cannot see must carry a reasoned
   [rblint:allow R10].

   Identifier stamps are [Ident.unique_name] strings and are only
   meaningful within one unit; cross-unit flow goes through keys. *)

type key = string list
(* Canonical name of a call-graph node: the compilation unit split on the
   dune name-mangling separator, then any nested modules, then the value —
   ["Rn_radio"; "Engine"; "run"].  Cross-module references in a cmt appear
   as wrapper-dot paths (Rn_radio.Engine.run) and flatten to the same
   list. *)

let string_of_key = String.concat "."

(* "Rn_radio__Engine" -> ["Rn_radio"; "Engine"] *)
let key_of_modname m =
  let n = String.length m in
  let rec go start i acc =
    if i + 2 > n then List.rev (String.sub m start (n - start) :: acc)
    else if m.[i] = '_' && m.[i + 1] = '_' then
      go (i + 2) (i + 2) (String.sub m start (i - start) :: acc)
    else go start (i + 1) acc
  in
  if m = "" then [] else go 0 0 []

(* Argument slot: positional index among unlabelled arguments, or the
   label.  Call sites and parameter lists compute slots the same way, so
   labelled-argument reordering cannot misalign them. *)
type slot = Pos of int | Lab of string

let string_of_slot = function
  | Pos i -> "#" ^ string_of_int i
  | Lab l -> "~" ^ l

(* ------------------------------------------------------------------ *)
(* Facts                                                               *)

type node = {
  n_key : key;
  n_line : int;  (** definition start line — suppression anchor *)
  n_params : (slot * string) list;  (** slot -> param ident stamp *)
}

type call = {
  c_caller : key;
  c_callee : key;  (** resolved: local node key or dotted global parts *)
  c_line : int;
  c_rng_args : (slot * string) list;
      (** bare Rng.t identifiers passed at this site *)
}

type nondet_use = {
  d_node : key;
  d_src : string;  (** e.g. "Unix.gettimeofday" *)
  d_line : int;
}

type spawn_cap = {
  s_node : key;
  s_line : int;
  s_caps : string list;  (** stamps of Rng.t idents captured by the closure *)
}

type occ = { o_stamp : string; o_line : int }
(** a plain (non-argument, non-capture) use of an Rng.t identifier *)

type rng_bind = {
  b_stamp : string;
  b_name : string;
  b_line : int;
  b_anchors : int list;  (** enclosing-expression start lines *)
}

type unit_facts = {
  uf_unit : string;  (** compilation unit name, e.g. "Rn_radio__Engine" *)
  uf_file : string;  (** normalized source path *)
  uf_nodes : node list;
  uf_calls : call list;
  uf_nondet : nondet_use list;
  uf_spawns : spawn_cap list;
  uf_occs : occ list;
  uf_binds : rng_bind list;
}

let empty_facts =
  {
    uf_unit = "";
    uf_file = "";
    uf_nodes = [];
    uf_calls = [];
    uf_nondet = [];
    uf_spawns = [];
    uf_occs = [];
    uf_binds = [];
  }

(* All call edges, for the fixture self-tests. *)
let edges units =
  List.concat_map
    (fun uf ->
      List.map (fun c -> (c.c_caller, c.c_callee, c.c_line)) uf.uf_calls)
    units

(* ------------------------------------------------------------------ *)
(* Nondeterministic sources and sanctioned sinks                       *)

let nondet_of_parts = function
  | [ "Unix"; (("gettimeofday" | "time") as f) ] -> Some ("Unix." ^ f)
  | [ "Stdlib"; "Sys"; "time" ] -> Some "Sys.time"
  | [ "Stdlib"; "Domain"; "self" ] -> Some "Domain.self"
  | [ "Stdlib"; "Domain"; "recommended_domain_count" ] ->
      Some "Domain.recommended_domain_count"
  | [ "Stdlib"; "Gc";
      (( "stat" | "quick_stat" | "counters" | "minor_words" | "major_words"
       | "allocated_bytes" ) as f) ] ->
      Some ("Gc." ^ f)
  | [ "Stdlib"; "Hashtbl"; (("iter" | "fold") as f) ] ->
      Some ("Hashtbl." ^ f ^ " (iteration order)")
  | _ -> None

(* The one table of sanctioned sinks: functions allowed to touch a
   nondeterministic source because their result never feeds simulation
   output.  Taint neither enters nor leaves a sink. *)
let default_r8_sinks =
  [
    ( [ "Rn_radio"; "Runner"; "default_domains" ],
      "domain-count sizing: machine-dependent by design, affects only how \
       work is scheduled, never the simulated rounds" );
  ]

(* ------------------------------------------------------------------ *)
(* Findings                                                            *)

type cg_finding = {
  g_file : string;
  g_line : int;
  g_rule : string;
  g_msg : string;
  g_anchors : int list;
}

let in_lib file =
  let file = if String.length file > 2 && String.sub file 0 2 = "./" then
      String.sub file 2 (String.length file - 2)
    else file
  in
  let pre = "lib/" in
  (String.length file >= 4 && String.sub file 0 4 = pre)
  ||
  let infix = "/lib/" in
  let n = String.length file and d = String.length infix in
  let rec scan i = i + d <= n && (String.sub file i d = infix || scan (i + 1)) in
  scan 0

let sort_findings fs =
  List.sort
    (fun a b ->
      match String.compare a.g_file b.g_file with
      | 0 -> (
          match Int.compare a.g_line b.g_line with
          | 0 -> String.compare a.g_msg b.g_msg
          | c -> c)
      | c -> c)
    fs

(* ------------------------------------------------------------------ *)
(* R8 — determinism taint                                              *)

let r8_findings ?(sinks = List.map fst default_r8_sinks) units =
  let node_home = Hashtbl.create 256 in
  (* key -> (file, def line) *)
  List.iter
    (fun uf ->
      List.iter
        (fun n -> Hashtbl.replace node_home n.n_key (uf.uf_file, n.n_line))
        uf.uf_nodes)
    units;
  let is_sink k = List.mem k sinks in
  (* reverse edges: callee -> (caller, call line) *)
  let rev = Hashtbl.create 256 in
  List.iter
    (fun uf ->
      List.iter
        (fun c -> Hashtbl.add rev c.c_callee (c.c_caller, c.c_line))
        uf.uf_calls)
    units;
  (* cause: first taint witness per node *)
  let cause = Hashtbl.create 64 in
  let queue = Queue.create () in
  let taint k c =
    if (not (is_sink k)) && not (Hashtbl.mem cause k) then begin
      Hashtbl.replace cause k c;
      Queue.add k queue
    end
  in
  List.iter
    (fun uf ->
      List.iter (fun d -> taint d.d_node (`Direct (d.d_src, d.d_line))) uf.uf_nondet)
    units;
  while not (Queue.is_empty queue) do
    let k = Queue.pop queue in
    List.iter
      (fun (caller, line) -> taint caller (`Via (k, line)))
      (Hashtbl.find_all rev k)
  done;
  (* witness chain: node -> ... -> direct source *)
  let chain k0 =
    let buf = Buffer.create 64 in
    Buffer.add_string buf (string_of_key k0);
    let rec go k =
      match Hashtbl.find_opt cause k with
      | Some (`Direct (src, line)) ->
          let file =
            match Hashtbl.find_opt node_home k with
            | Some (f, _) -> f
            | None -> "?"
          in
          Buffer.add_string buf
            (Printf.sprintf " -> %s (%s:%d)" src file line)
      | Some (`Via (callee, line)) ->
          Buffer.add_string buf
            (Printf.sprintf " -> %s (call at line %d)" (string_of_key callee)
               line);
          go callee
      | None -> ()
    in
    go k0;
    Buffer.contents buf
  in
  let fs =
    Hashtbl.fold
      (fun k _ acc ->
        match Hashtbl.find_opt node_home k with
        | Some (file, line) when in_lib file ->
            {
              g_file = file;
              g_line = line;
              g_rule = "R8";
              g_msg =
                "nondeterminism reaches simulation code: " ^ chain k
                ^ " — results must replay from the seed alone; route \
                   wall-clock through bench-only fields, or add the callee \
                   to the sanctioned-sink table (tools/rblint/callgraph.ml) \
                   if its result never feeds simulation output";
              g_anchors = [ line ];
            }
            :: acc
        | _ -> acc)
      cause []
  in
  sort_findings fs

(* ------------------------------------------------------------------ *)
(* R10 — RNG ownership                                                 *)

let r10_findings units =
  (* param stamp -> (node key, slot), per unit (stamps are unit-local) *)
  let param_of = Hashtbl.create 128 in
  List.iter
    (fun uf ->
      List.iter
        (fun n ->
          List.iter
            (fun (sl, st) ->
              Hashtbl.replace param_of (uf.uf_unit, st) (n.n_key, sl))
            n.n_params)
        uf.uf_nodes)
    units;
  (* consuming slots fixpoint: a slot consumes when the callee spawns a
     closure capturing that parameter, or forwards it to a consuming
     slot. *)
  let consuming : (key * slot, unit) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun uf ->
      List.iter
        (fun s ->
          List.iter
            (fun st ->
              match Hashtbl.find_opt param_of (uf.uf_unit, st) with
              | Some ks -> Hashtbl.replace consuming ks ()
              | None -> ())
            s.s_caps)
        uf.uf_spawns)
    units;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun uf ->
        List.iter
          (fun c ->
            List.iter
              (fun (sl, st) ->
                if Hashtbl.mem consuming (c.c_callee, sl) then
                  match Hashtbl.find_opt param_of (uf.uf_unit, st) with
                  | Some ks when not (Hashtbl.mem consuming ks) ->
                      Hashtbl.replace consuming ks ();
                      changed := true
                  | _ -> ())
              c.c_rng_args)
          uf.uf_calls)
      units
  done;
  (* verdict per locally created stream *)
  let fs =
    List.concat_map
      (fun uf ->
        if not (in_lib uf.uf_file) then []
        else
          List.filter_map
            (fun b ->
              let consumptions =
                List.length
                  (List.filter (fun s -> List.mem b.b_stamp s.s_caps)
                     uf.uf_spawns)
                + List.length
                    (List.concat_map
                       (fun c ->
                         List.filter
                           (fun (sl, st) ->
                             st = b.b_stamp
                             && Hashtbl.mem consuming (c.c_callee, sl))
                           c.c_rng_args)
                       uf.uf_calls)
              in
              let other_uses =
                List.length
                  (List.filter (fun o -> o.o_stamp = b.b_stamp) uf.uf_occs)
                + List.length
                    (List.concat_map
                       (fun c ->
                         List.filter
                           (fun (sl, st) ->
                             st = b.b_stamp
                             && not (Hashtbl.mem consuming (c.c_callee, sl)))
                           c.c_rng_args)
                       uf.uf_calls)
              in
              if consumptions >= 2 then
                Some
                  {
                    g_file = uf.uf_file;
                    g_line = b.b_line;
                    g_rule = "R10";
                    g_msg =
                      Printf.sprintf
                        "rng stream `%s` is handed to %d domain owners \
                         (Domain.spawn captures or ownership-transferring \
                         calls): two domains would race one stream — give \
                         each owner its own Rng.split child"
                        b.b_name consumptions;
                    g_anchors = b.b_anchors;
                  }
              else if consumptions = 1 && other_uses >= 1 then
                Some
                  {
                    g_file = uf.uf_file;
                    g_line = b.b_line;
                    g_rule = "R10";
                    g_msg =
                      Printf.sprintf
                        "rng stream `%s` is used again after being handed \
                         to a domain owner: the parent would race the \
                         worker — split before the handoff, or prove the \
                         uses are sequential and add a reasoned \
                         rblint:allow R10"
                        b.b_name;
                    g_anchors = b.b_anchors;
                  }
              else None)
            uf.uf_binds)
      units
  in
  sort_findings fs
