(* Fixture-driven self-tests for rblint: every rule must fire on its bad
   fixture, stay quiet on the clean one, and the suppression grammar must
   require a reason.  Fixtures are typechecked in-process and linted under
   a pretend path inside lib/core/ (or wherever the rule's scope needs)
   so the scoped rules (R2, R4) apply.  The v2 cases prove the typed
   analysis sees what the untyped v1 pass provably could not: bare-variable
   polymorphic comparisons, aliased hot-path callees, and mutable state
   crossing Domain.spawn.  The v3 cases exercise the interprocedural
   engine: call-graph extraction through aliases/opens/mutual recursion,
   R8 determinism taint with sanctioned sinks, R9 unsafe-index dominance,
   R10 RNG-stream linearity, span-scoped suppressions, and the
   suppression-debt ledger behind --audit. *)

let read_fixture name =
  let path = Filename.concat "fixtures" name in
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let lint_as ~path name =
  Lint.lint_source ~path ~source:(read_fixture name)

let rules fs = List.sort_uniq String.compare (List.map (fun f -> f.Lint.rule) fs)

let count rule fs =
  List.length (List.filter (fun f -> f.Lint.rule = rule) fs)

let check_rules what expected fs =
  Alcotest.(check (list string)) what expected (rules fs)

let contains sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let replace ~sub ~by s =
  let sl = String.length sub in
  let b = Buffer.create (String.length s) in
  let i = ref 0 in
  while !i < String.length s do
    if !i + sl <= String.length s && String.sub s !i sl = sub then begin
      Buffer.add_string b by;
      i := !i + sl
    end
    else begin
      Buffer.add_char b s.[!i];
      incr i
    end
  done;
  Buffer.contents b

let test_r1 () =
  let fs = lint_as ~path:"bench/bad_r1.ml" "bad_r1.ml" in
  check_rules "R1 only" [ "R1" ] fs;
  (* self_init, int, Stdlib.Random.bits, module alias: four sites *)
  Alcotest.(check int) "four R1 sites" 4 (count "R1" fs);
  (* rng.ml itself is exempt *)
  let fs = lint_as ~path:"lib/util/rng.ml" "bad_r1.ml" in
  Alcotest.(check int) "rng.ml exempt" 0 (List.length fs)

let test_r2 () =
  let fs = lint_as ~path:"lib/core/bad_r2.ml" "bad_r2.ml" in
  check_rules "R2 only" [ "R2" ] fs;
  Alcotest.(check int) "six R2 sites" 6 (count "R2" fs);
  (* outside the scoped directories the same code is not R2-flagged *)
  let fs = lint_as ~path:"bench/bad_r2.ml" "bad_r2.ml" in
  Alcotest.(check int) "bench exempt from R2" 0 (count "R2" fs)

let test_r2_typed () =
  (* The v1 blind spot: [a = b] between bare variables carries no token the
     parsetree could match; only the operand types expose it. *)
  let fs = lint_as ~path:"lib/core/bad_r2_typed.ml" "bad_r2_typed.ml" in
  check_rules "R2 only" [ "R2" ] fs;
  Alcotest.(check int) "record, option, list comparisons flagged" 3
    (count "R2" fs);
  (* each message names the offending operand type *)
  let msgs = List.map (fun f -> f.Lint.msg) fs in
  List.iter2
    (fun ty msg ->
      Alcotest.(check bool)
        (Printf.sprintf "message mentions %s" ty)
        true
        (let tyl = String.length ty and n = String.length msg in
         let rec scan i =
           i + tyl <= n && (String.sub msg i tyl = ty || scan (i + 1))
         in
         scan 0))
    [ "point"; "int option"; "int list" ]
    msgs

let test_r2_minmax () =
  (* min/max get a narrower allowlist than the comparison operators:
     immediate types only — float min/max is the NaN-order bug even though
     float [=] is specialized. *)
  let fs = lint_as ~path:"lib/util/bad_r2_minmax.ml" "bad_r2_minmax.ml" in
  check_rules "R2 only" [ "R2" ] fs;
  Alcotest.(check int)
    "fold_left min, applied float max, tuple min flagged; int/char clean" 3
    (count "R2" fs);
  (* outside the scoped directories nothing fires *)
  let fs = lint_as ~path:"bench/bad_r2_minmax.ml" "bad_r2_minmax.ml" in
  Alcotest.(check int) "bench exempt" 0 (count "R2" fs)

let test_r3 () =
  let fs = lint_as ~path:"examples/bad_r3.ml" "bad_r3.ml" in
  check_rules "R3 only" [ "R3" ] fs;
  Alcotest.(check int) "two R3 sites" 2 (count "R3" fs)

let test_r4 () =
  let fs = lint_as ~path:"lib/coding/bad_r4.ml" "bad_r4.ml" in
  check_rules "R4 only" [ "R4" ] fs;
  Alcotest.(check int) "four R4 sites" 4 (count "R4" fs);
  (* printing is fine outside lib/ *)
  let fs = lint_as ~path:"bin/bad_r4.ml" "bad_r4.ml" in
  Alcotest.(check int) "bin may print" 0 (List.length fs)

let test_r5 () =
  let fs = lint_as ~path:"lib/radio/bad_r5.ml" "bad_r5.ml" in
  check_rules "R5 only" [ "R5" ] fs;
  Alcotest.(check int) "three R5 sites" 3 (count "R5" fs)

let test_r5_alias () =
  (* v1 matched callee names syntactically; [module L = List],
     [let open Array in] and [let module M = List in] all dodged it. *)
  let fs = lint_as ~path:"lib/radio/bad_r5_alias.ml" "bad_r5_alias.ml" in
  check_rules "R5 only" [ "R5" ] fs;
  Alcotest.(check int) "alias, open, local alias all resolved" 3
    (count "R5" fs)

let test_r5_frontier () =
  (* The sparse engine's frontier loop: list-kept frontiers and
     closure-allocating drains fire; the sanctioned int-stack drain
     (index loop, no closures) stays clean. *)
  let fs = lint_as ~path:"lib/radio/bad_r5_frontier.ml" "bad_r5_frontier.ml" in
  check_rules "R5 only" [ "R5" ] fs;
  Alcotest.(check int) "three R5 sites, int-stack drain clean" 3
    (count "R5" fs)

let test_r6 () =
  let fs = lint_as ~path:"lib/radio/bad_r6.ml" "bad_r6.ml" in
  check_rules "R6 only" [ "R6" ] fs;
  (* ref, array, bytes, hashtbl, mutable record — the Atomic tally is the
     sanctioned pattern and must stay clean *)
  Alcotest.(check int) "five R6 sites, Atomic exempt" 5 (count "R6" fs);
  (* the same module without a Domain.spawn anywhere is not domain-shared,
     so R6 stays quiet: reachability gates the rule *)
  let source = read_fixture "bad_r6.ml" in
  let serial =
    "let serial_apply f = f ()\n"
    ^ replace ~sub:"Domain.join" ~by:"ignore"
        (replace ~sub:"Domain.spawn" ~by:"serial_apply" source)
  in
  let fs = Lint.lint_source ~path:"lib/radio/bad_r6_serial.ml" ~source:serial in
  Alcotest.(check int) "no spawn, no R6" 0 (List.length fs)

let test_r7 () =
  let fs = lint_as ~path:"lib/radio/bad_r7.ml" "bad_r7.ml" in
  check_rules "R7 only" [ "R7" ] fs;
  (* the direct ref capture and the one hidden behind a worker function;
     the Atomic twin stays clean *)
  Alcotest.(check int) "two R7 sites, Atomic exempt" 2 (count "R7" fs)

let test_r6_sharded () =
  (* The sharded-engine shape: hoisting a run's lane state ([out_act],
     shard cuts) to the top level of a spawning module must fire once per
     array; the Atomic rounds tally stays sanctioned. *)
  let fs = lint_as ~path:"lib/radio/bad_r6_sharded.ml" "bad_r6_sharded.ml" in
  check_rules "R6 only" [ "R6" ] fs;
  Alcotest.(check int) "out_act and cuts flagged, Atomic tally exempt" 2
    (count "R6" fs)

let test_r6_frontier () =
  (* The sparse-engine shape: per-run frontier scratch (transmitter stack,
     touched bytes, a ref tally) hoisted to the top of a spawning module
     fires once per binding; the Atomic skip counter is the sanctioned
     cross-domain tally. *)
  let fs = lint_as ~path:"lib/radio/bad_r6_frontier.ml" "bad_r6_frontier.ml" in
  check_rules "R6 only" [ "R6" ] fs;
  Alcotest.(check int) "stack, touched bytes and tally ref flagged" 3
    (count "R6" fs)

let test_r7_sharded () =
  (* Disjoint-ownership sharing is invisible to the analysis; the reasoned
     allow is the sanctioned escape hatch, and stripping it must resurface
     exactly the one spawn capture. *)
  let fs = lint_as ~path:"lib/radio/good_r7_sharded.ml" "good_r7_sharded.ml" in
  Alcotest.(check int) "reasoned allow keeps the lane worker clean" 0
    (List.length fs);
  let stripped =
    replace ~sub:"rblint:allow R7" ~by:"ownership note:"
      (read_fixture "good_r7_sharded.ml")
  in
  let fs =
    Lint.lint_source ~path:"lib/radio/good_r7_sharded_stripped.ml"
      ~source:stripped
  in
  check_rules "allow stripped: R7 resurfaces" [ "R7" ] fs;
  Alcotest.(check int) "exactly the one spawn capture" 1 (count "R7" fs)

let test_reachability () =
  (* R6 candidates fire only in units reachable from a spawner: a unit
     that imports the spawner (it hands closures to workers) is shared;
     an unrelated unit with identical mutable state is not. *)
  let candidate file =
    {
      Lint.file;
      line = 3;
      col = 0;
      rule = "R6";
      msg = "top-level ref";
      anchors = [];
    }
  in
  let unit ~path ~modname ~imports ~spawns ~r6 =
    {
      Lint.u_path = path;
      u_modname = modname;
      u_imports = imports;
      u_spawns = spawns;
      u_findings = [];
      u_r6 = (if r6 then [ candidate path ] else []);
      u_allows = [];
      u_facts = Callgraph.empty_facts;
    }
  in
  let runner =
    unit ~path:"lib/radio/runner.ml" ~modname:"Runner" ~imports:[]
      ~spawns:true ~r6:false
  in
  let feeder =
    unit ~path:"bench/main.ml" ~modname:"Main" ~imports:[ "Runner" ]
      ~spawns:false ~r6:true
  in
  let dep_of_feeder =
    unit ~path:"lib/util/table.ml" ~modname:"Table" ~imports:[] ~spawns:false
      ~r6:true
  in
  let feeder' = { feeder with Lint.u_imports = [ "Runner"; "Table" ] } in
  let unrelated =
    unit ~path:"tools/plot.ml" ~modname:"Plot" ~imports:[] ~spawns:false
      ~r6:true
  in
  let fs = Lint.finalize [ runner; feeder'; dep_of_feeder; unrelated ] in
  Alcotest.(check (list string))
    "feeder and its deps flagged, unrelated unit clean"
    [ "bench/main.ml"; "lib/util/table.ml" ]
    (List.map (fun f -> f.Lint.file) fs)

(* ------------------------------------------------------------------ *)
(* v3: call graph, R8/R9/R10, span suppressions, audit ledger          *)

let test_cg_edges () =
  let u =
    Lint.lint_unit_of_source ~path:"lib/radio/cg_edges.ml"
      ~source:(read_fixture "cg_edges.ml")
  in
  let es = Callgraph.edges [ u.Lint.u_facts ] in
  let has caller callee =
    List.exists (fun (c, e, _) -> c = caller && e = callee) es
  in
  let k xs = "Cg_edges" :: xs in
  Alcotest.(check bool) "nested: A.inner -> base" true
    (has (k [ "A"; "inner" ]) (k [ "base" ]));
  Alcotest.(check bool) "aliased: via_alias -> A.inner (module B = A)" true
    (has (k [ "via_alias" ]) (k [ "A"; "inner" ]));
  Alcotest.(check bool) "opened: via_open -> A.inner (open A)" true
    (has (k [ "via_open" ]) (k [ "A"; "inner" ]));
  Alcotest.(check bool) "mutual: even -> odd (forward reference)" true
    (has (k [ "even" ]) (k [ "odd" ]));
  Alcotest.(check bool) "mutual: odd -> even" true
    (has (k [ "odd" ]) (k [ "even" ]))

let test_r8 () =
  let fs = lint_as ~path:"lib/radio/bad_r8.ml" "bad_r8.ml" in
  check_rules "R8 only" [ "R8" ] fs;
  (* now -> jitter -> schedule_delay, plus the two direct users *)
  Alcotest.(check int) "three-deep chain + Hashtbl + Gc" 5 (count "R8" fs);
  Alcotest.(check bool) "witness chain names the source" true
    (List.exists (fun f -> contains "Sys.time" f.Lint.msg) fs);
  Alcotest.(check bool) "witness chain walks the calls" true
    (List.exists
       (fun f ->
         contains "Bad_r8.schedule_delay -> Bad_r8.jitter" f.Lint.msg)
       fs);
  (* outside lib/ wall-clock is free: that is where bench timing lives *)
  let fs = lint_as ~path:"bench/bad_r8.ml" "bad_r8.ml" in
  Alcotest.(check int) "bench exempt" 0 (count "R8" fs)

let test_r8_sink () =
  let source = read_fixture "ok_r8_wallclock.ml" in
  let fs = Lint.lint_source ~path:"lib/radio/ok_r8_wallclock.ml" ~source in
  Alcotest.(check int) "unsanctioned: now and its caller tainted" 2
    (count "R8" fs);
  let fs =
    Lint.lint_source_sinks
      ~r8_sinks:[ [ "Ok_r8_wallclock"; "now" ] ]
      ~path:"lib/radio/ok_r8_wallclock.ml" ~source
  in
  Alcotest.(check int) "sanctioned sink absorbs the taint" 0 (List.length fs)

let test_r9 () =
  let fs = lint_as ~path:"lib/coding/bad_r9.ml" "bad_r9.ml" in
  check_rules "R9 only" [ "R9" ] fs;
  (* length-derived for bound, raising precondition and if comparison are
     clean; the two unchecked accesses and the bare alias fire *)
  Alcotest.(check int) "guarded forms clean, three sites fire" 3
    (count "R9" fs)

let test_r10 () =
  let fs = lint_as ~path:"lib/radio/bad_r10.ml" "bad_r10.ml" in
  check_rules "R10 only" [ "R10" ] fs;
  (* two spawn captures, use-after-handoff, double consumption through a
     callee, and the module-state stream *)
  Alcotest.(check int) "all four ownership violations" 4 (count "R10" fs);
  Alcotest.(check bool) "use-after-handoff names the race" true
    (List.exists (fun f -> contains "used again after" f.Lint.msg) fs);
  let fs = lint_as ~path:"lib/radio/ok_r10_split.ml" "ok_r10_split.ml" in
  Alcotest.(check int) "split-per-owner is clean" 0 (List.length fs)

let test_r6_campaign () =
  (* The campaign-runner shape: a lazily-filled topology cache and steal
     pointers hoisted to the top of a spawning module fire once per
     binding; rn_campaign keeps them run-local (cache frozen before
     workers start, queue indices behind the run's mutex). *)
  let fs =
    lint_as ~path:"lib/campaign/bad_r6_campaign.ml" "bad_r6_campaign.ml"
  in
  check_rules "R6 only" [ "R6" ] fs;
  Alcotest.(check int) "cache slots and both steal pointers, Atomic exempt" 3
    (count "R6" fs)

let test_r10_campaign () =
  (* The campaign's per-cell stream discipline violated: a stolen cell
     re-consumes the owner lane's stream, and the coordinator draws from
     a stream it handed off.  rn_campaign derives a fresh stream per job
     key, so neither shape can occur there. *)
  let fs =
    lint_as ~path:"lib/campaign/bad_r10_campaign.ml" "bad_r10_campaign.ml"
  in
  check_rules "R10 only" [ "R10" ] fs;
  Alcotest.(check int) "stolen-cell race and coordinator handoff" 2
    (count "R10" fs)

let test_r11 () =
  let fs = lint_as ~path:"lib/core/bad_r11.ml" "bad_r11.ml" in
  check_rules "R11 only" [ "R11" ] fs;
  (* the unconditional counter and the counted Silence arm *)
  Alcotest.(check int) "both delivers fire" 2 (count "R11" fs);
  let fs = lint_as ~path:"lib/core/ok_r11.ml" "ok_r11.ml" in
  Alcotest.(check int) "guarded delivers are clean" 0 (List.length fs);
  (* the acceptance probe: un-guarding the Silence arm turns the lint red *)
  let unguarded =
    replace ~sub:"| Engine.Silence -> ()"
      ~by:"| Engine.Silence -> Atomic.incr got"
      (read_fixture "ok_r11.ml")
  in
  let fs = Lint.lint_source ~path:"lib/core/ok_r11b.ml" ~source:unguarded in
  check_rules "Silence guard deleted: R11 resurfaces" [ "R11" ] fs

let test_r12 () =
  let fs = lint_as ~path:"lib/core/bad_r12.ml" "bad_r12.ml" in
  check_rules "R12 only" [ "R12" ] fs;
  (* message-indexed write, helper's shared counter, round-keyed decide *)
  Alcotest.(check int) "all three non-local writes fire" 3 (count "R12" fs);
  let fs = lint_as ~path:"lib/core/ok_r12.ml" "ok_r12.ml" in
  Alcotest.(check int) "node-indexed + Atomic aggregate is clean" 0
    (List.length fs)

let test_r13 () =
  let fs = lint_as ~path:"lib/core/bad_r13.ml" "bad_r13.ml" in
  check_rules "R13 only" [ "R13" ] fs;
  (* the Rng-drawing hint and the writing hint *)
  Alcotest.(check int) "both impure hints fire" 2 (count "R13" fs);
  let fs = lint_as ~path:"lib/core/ok_r13.ml" "ok_r13.ml" in
  Alcotest.(check int) "round-pure and state-reading hints are clean" 0
    (List.length fs)

let test_r14 () =
  let fs = lint_as ~path:"lib/core/bad_r14.ml" "bad_r14.ml" in
  check_rules "R14 only" [ "R14" ] fs;
  Alcotest.(check int) "the unregistered driver fires once" 1 (count "R14" fs);
  let fs = lint_as ~path:"lib/core/ok_r14.ml" "ok_r14.ml" in
  Alcotest.(check int) "registered pipeline is covered" 0 (List.length fs)

let test_suppress_multiline () =
  let fs =
    lint_as ~path:"lib/core/ok_suppress_multiline.ml" "ok_suppress_multiline.ml"
  in
  Alcotest.(check int) "marker above the definition reaches the inner line" 0
    (List.length fs);
  let stripped =
    replace ~sub:"rblint:allow R2" ~by:"ownership note:"
      (read_fixture "ok_suppress_multiline.ml")
  in
  let fs =
    Lint.lint_source ~path:"lib/core/ok_suppress_multiline2.ml"
      ~source:stripped
  in
  check_rules "marker stripped: the inner R2 resurfaces" [ "R2" ] fs

let test_audit_ledger () =
  let u path name =
    Lint.lint_unit_of_source ~path ~source:(read_fixture name)
  in
  let units =
    [
      u "lib/core/ok_suppress_multiline.ml" "ok_suppress_multiline.ml";
      u "lib/core/stale_allow.ml" "stale_allow.ml";
    ]
  in
  let findings, ledger = Lint.finalize_full units in
  Alcotest.(check int) "no findings" 0 (List.length findings);
  Alcotest.(check int) "two allows in the ledger" 2 (List.length ledger);
  Alcotest.(check int) "one used" 1
    (List.length (List.filter (fun e -> e.Lint.l_used) ledger));
  (match List.filter (fun e -> not e.Lint.l_used) ledger with
  | [ e ] ->
      Alcotest.(check string) "stale file" "lib/core/stale_allow.ml"
        e.Lint.l_file;
      Alcotest.(check string) "stale rule" "R2" e.Lint.l_rule
  | _ -> Alcotest.fail "expected exactly one stale allow");
  let lines, nstale = Audit.report ~json:false ~ages:false ledger in
  Alcotest.(check int) "report counts one stale" 1 nstale;
  Alcotest.(check bool) "text summary row" true
    (List.exists (contains "2 allows, 1 stale") lines);
  Alcotest.(check bool) "stale row is marked" true
    (List.exists (contains "STALE") lines);
  match Audit.report ~json:true ~ages:false ledger with
  | [ j ], _ ->
      Alcotest.(check bool) "json total" true (contains "\"total\": 2" j);
      Alcotest.(check bool) "json stale count" true
        (contains "\"stale\": 1" j);
      Alcotest.(check bool) "json null age when disabled" true
        (contains "\"age_days\": null" j)
  | _ -> Alcotest.fail "expected a single json line"

let test_clean () =
  let fs = lint_as ~path:"lib/core/ok_clean.ml" "ok_clean.ml" in
  Alcotest.(check int) "clean fixture has no findings" 0 (List.length fs)

let test_suppression () =
  let fs = lint_as ~path:"lib/core/ok_suppressed.ml" "ok_suppressed.ml" in
  Alcotest.(check int) "reasoned allows suppress" 0 (List.length fs);
  let fs = lint_as ~path:"lib/core/bad_suppress.ml" "bad_suppress.ml" in
  check_rules "reasonless allow: R0 + surviving R2" [ "R0"; "R2" ] fs

let test_positions () =
  let fs = lint_as ~path:"lib/core/bad_r2.ml" "bad_r2.ml" in
  match fs with
  | f :: _ ->
      Alcotest.(check string) "file recorded" "lib/core/bad_r2.ml" f.Lint.file;
      Alcotest.(check int) "first finding on line 5" 5 f.Lint.line;
      Alcotest.(check bool) "column is sane" true (f.Lint.col > 0);
      let printed = Lint.pp_finding f in
      Alcotest.(check bool) "pp has file:line:col prefix" true
        (String.length printed > 0
        && String.sub printed 0 (String.length "lib/core/bad_r2.ml:5:")
           = "lib/core/bad_r2.ml:5:")
  | [] -> Alcotest.fail "expected findings"

let test_parse_error () =
  let fs = Lint.lint_source ~path:"lib/core/broken.ml" ~source:"let let = in" in
  check_rules "syntax errors reported" [ "PARSE" ] fs

let test_type_error () =
  let fs =
    Lint.lint_source ~path:"lib/core/illtyped.ml"
      ~source:"let x : int = \"not an int\""
  in
  check_rules "type errors reported" [ "TYPE" ] fs

let test_json () =
  let f =
    {
      Lint.file = "lib/a.ml";
      line = 3;
      col = 7;
      rule = "R2";
      msg = "a \"b\"";
      anchors = [];
    }
  in
  Alcotest.(check string)
    "json escaping"
    "{ \"file\": \"lib/a.ml\", \"line\": 3, \"col\": 7, \"rule\": \"R2\", \
     \"msg\": \"a \\\"b\\\"\" }"
    (Lint.json_of_finding f)

let () =
  Alcotest.run "rblint"
    [
      ( "rules",
        [
          Alcotest.test_case "R1 randomness" `Quick test_r1;
          Alcotest.test_case "R2 polymorphic compare" `Quick test_r2;
          Alcotest.test_case "R2 typed operands (v1 blind spot)" `Quick
            test_r2_typed;
          Alcotest.test_case "R2 min/max immediate-only" `Quick test_r2_minmax;
          Alcotest.test_case "R3 Obj" `Quick test_r3;
          Alcotest.test_case "R4 printing" `Quick test_r4;
          Alcotest.test_case "R5 hot-path traversals" `Quick test_r5;
          Alcotest.test_case "R5 aliased callees (v1 blind spot)" `Quick
            test_r5_alias;
          Alcotest.test_case "R6 top-level mutable state" `Quick test_r6;
          Alcotest.test_case "R7 spawn captures" `Quick test_r7;
          Alcotest.test_case "R5 frontier shapes" `Quick test_r5_frontier;
          Alcotest.test_case "R6 sharded-engine shape" `Quick test_r6_sharded;
          Alcotest.test_case "R6 frontier scratch" `Quick test_r6_frontier;
          Alcotest.test_case "R7 sharded allow round-trip" `Quick
            test_r7_sharded;
          Alcotest.test_case "R6 reachability gating" `Quick test_reachability;
        ] );
      ( "interprocedural",
        [
          Alcotest.test_case "call-graph edges" `Quick test_cg_edges;
          Alcotest.test_case "R8 determinism taint" `Quick test_r8;
          Alcotest.test_case "R8 sanctioned sinks" `Quick test_r8_sink;
          Alcotest.test_case "R9 unsafe-index dominance" `Quick test_r9;
          Alcotest.test_case "R10 rng ownership" `Quick test_r10;
          Alcotest.test_case "R6 campaign cache shape" `Quick test_r6_campaign;
          Alcotest.test_case "R10 campaign steal shape" `Quick
            test_r10_campaign;
          Alcotest.test_case "R11 silence purity" `Quick test_r11;
          Alcotest.test_case "R12 write locality" `Quick test_r12;
          Alcotest.test_case "R13 hint determinism" `Quick test_r13;
          Alcotest.test_case "R14 registry coverage" `Quick test_r14;
        ] );
      ( "machinery",
        [
          Alcotest.test_case "clean fixture" `Quick test_clean;
          Alcotest.test_case "suppressions" `Quick test_suppression;
          Alcotest.test_case "span-scoped suppression" `Quick
            test_suppress_multiline;
          Alcotest.test_case "audit ledger" `Quick test_audit_ledger;
          Alcotest.test_case "finding positions" `Quick test_positions;
          Alcotest.test_case "parse errors" `Quick test_parse_error;
          Alcotest.test_case "type errors" `Quick test_type_error;
          Alcotest.test_case "json output" `Quick test_json;
        ] );
    ]
