(* Fixture-driven self-tests for rblint: every rule must fire on its bad
   fixture, stay quiet on the clean one, and the suppression grammar must
   require a reason.  Fixtures are linted under a pretend path inside
   lib/core/ so the scoped rules (R2, R4) apply. *)

let read_fixture name =
  let path = Filename.concat "fixtures" name in
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let lint_as ~path name =
  Lint.lint_source ~path ~source:(read_fixture name)

let rules fs = List.sort_uniq String.compare (List.map (fun f -> f.Lint.rule) fs)

let count rule fs =
  List.length (List.filter (fun f -> f.Lint.rule = rule) fs)

let check_rules what expected fs =
  Alcotest.(check (list string)) what expected (rules fs)

let test_r1 () =
  let fs = lint_as ~path:"bench/bad_r1.ml" "bad_r1.ml" in
  check_rules "R1 only" [ "R1" ] fs;
  (* self_init, int, Stdlib.Random.bits, module alias: four sites *)
  Alcotest.(check int) "four R1 sites" 4 (count "R1" fs);
  (* rng.ml itself is exempt *)
  let fs = lint_as ~path:"lib/util/rng.ml" "bad_r1.ml" in
  Alcotest.(check int) "rng.ml exempt" 0 (List.length fs)

let test_r2 () =
  let fs = lint_as ~path:"lib/core/bad_r2.ml" "bad_r2.ml" in
  check_rules "R2 only" [ "R2" ] fs;
  Alcotest.(check int) "six R2 sites" 6 (count "R2" fs);
  (* outside the scoped directories the same code is not R2-flagged *)
  let fs = lint_as ~path:"bench/bad_r2.ml" "bad_r2.ml" in
  Alcotest.(check int) "bench exempt from R2" 0 (count "R2" fs)

let test_r3 () =
  let fs = lint_as ~path:"examples/bad_r3.ml" "bad_r3.ml" in
  check_rules "R3 only" [ "R3" ] fs;
  Alcotest.(check int) "two R3 sites" 2 (count "R3" fs)

let test_r4 () =
  let fs = lint_as ~path:"lib/coding/bad_r4.ml" "bad_r4.ml" in
  check_rules "R4 only" [ "R4" ] fs;
  Alcotest.(check int) "four R4 sites" 4 (count "R4" fs);
  (* printing is fine outside lib/ *)
  let fs = lint_as ~path:"bin/bad_r4.ml" "bad_r4.ml" in
  Alcotest.(check int) "bin may print" 0 (List.length fs)

let test_r5 () =
  let fs = lint_as ~path:"lib/radio/bad_r5.ml" "bad_r5.ml" in
  check_rules "R5 only" [ "R5" ] fs;
  Alcotest.(check int) "three R5 sites" 3 (count "R5" fs)

let test_clean () =
  let fs = lint_as ~path:"lib/core/ok_clean.ml" "ok_clean.ml" in
  Alcotest.(check int) "clean fixture has no findings" 0 (List.length fs)

let test_suppression () =
  let fs = lint_as ~path:"lib/core/ok_suppressed.ml" "ok_suppressed.ml" in
  Alcotest.(check int) "reasoned allows suppress" 0 (List.length fs);
  let fs = lint_as ~path:"lib/core/bad_suppress.ml" "bad_suppress.ml" in
  check_rules "reasonless allow: R0 + surviving R2" [ "R0"; "R2" ] fs

let test_positions () =
  let fs = lint_as ~path:"lib/core/bad_r2.ml" "bad_r2.ml" in
  match fs with
  | f :: _ ->
      Alcotest.(check string) "file recorded" "lib/core/bad_r2.ml" f.Lint.file;
      Alcotest.(check int) "first finding on line 5" 5 f.Lint.line;
      Alcotest.(check bool) "column is sane" true (f.Lint.col > 0);
      let printed = Lint.pp_finding f in
      Alcotest.(check bool) "pp has file:line:col prefix" true
        (String.length printed > 0
        && String.sub printed 0 (String.length "lib/core/bad_r2.ml:5:")
           = "lib/core/bad_r2.ml:5:")
  | [] -> Alcotest.fail "expected findings"

let test_parse_error () =
  let fs = Lint.lint_source ~path:"lib/core/broken.ml" ~source:"let let = in" in
  check_rules "syntax errors reported" [ "PARSE" ] fs

let () =
  Alcotest.run "rblint"
    [
      ( "rules",
        [
          Alcotest.test_case "R1 randomness" `Quick test_r1;
          Alcotest.test_case "R2 polymorphic compare" `Quick test_r2;
          Alcotest.test_case "R3 Obj" `Quick test_r3;
          Alcotest.test_case "R4 printing" `Quick test_r4;
          Alcotest.test_case "R5 hot-path traversals" `Quick test_r5;
        ] );
      ( "machinery",
        [
          Alcotest.test_case "clean fixture" `Quick test_clean;
          Alcotest.test_case "suppressions" `Quick test_suppression;
          Alcotest.test_case "finding positions" `Quick test_positions;
          Alcotest.test_case "parse errors" `Quick test_parse_error;
        ] );
    ]
