(* Fixture: R5 — List traversals / closure-allocating Array iteration inside
   a function tagged [@@zero_alloc_hot]. *)

let hot_list xs = List.fold_left ( + ) 0 xs [@@zero_alloc_hot]

let hot_array a =
  let total = ref 0 in
  Array.iter (fun x -> total := !total + x) a;
  !total
[@@zero_alloc_hot]

let local_hot a =
  let step () = Array.fold_left ( + ) 0 a [@@zero_alloc_hot] in
  step ()

(* The same traversals outside a hot function are fine. *)
let cold_list xs = List.fold_left ( + ) 0 xs
