(* Fixture: R3 — Obj is banned everywhere. *)

let cast (x : int) : string = Obj.magic x

let peek x = Obj.repr x
