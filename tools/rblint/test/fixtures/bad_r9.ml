(* R9 fixture: the guarded forms are clean — a length-derived for bound,
   a raising precondition, an if comparison — and the unguarded accesses
   and the bare alias fire. *)

let sum_guarded a =
  let acc = ref 0 in
  for i = 0 to Array.length a - 1 do
    acc := !acc + Array.unsafe_get a i
  done;
  !acc

let get_checked a i =
  if i < 0 || i >= Array.length a then invalid_arg "get_checked";
  Array.unsafe_get a i

let last_if_any a = if Array.length a > 0 then Array.unsafe_get a 0 else 0

let head_unchecked a = Array.unsafe_get a 0

let set_unchecked a i = Array.unsafe_set a i 7

let bare_alias = Array.unsafe_get
