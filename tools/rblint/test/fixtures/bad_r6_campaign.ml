(* Fixture: R6 — the campaign-runner shape gone wrong: a topology cache
   and steal pointers hoisted to the top of a module that spawns
   executors.  The real rn_campaign keeps all of this inside [run]: the
   cache is fully built before workers start and frozen (read-only)
   after, and each lane's queue indices live behind that run's mutex.
   Hoisted to the top level they are shared mutable state across stolen
   work.  The Atomic steal tally is the sanctioned cross-domain counter
   and must stay clean. *)

let steal_tally : int Atomic.t = Atomic.make 0

(* one slot per instance, filled lazily by whichever executor gets there
   first — a write/write race once work is stolen across lanes *)
let topo_cache : int array option array = Array.make 8 None

(* steal pointers: a thief moves [hi] while the owner moves [lo] *)
let lane_lo = ref 0

let lane_hi = ref 7

let generate i = [| i; i + 1; i + 2 |]

let build i =
  match topo_cache.(i) with
  | Some g -> g
  | None ->
      let g = generate i in
      topo_cache.(i) <- Some g;
      g

let steal () =
  let i = !lane_hi in
  decr lane_hi;
  Array.length (build i)

let run () =
  (* the spawn closure itself touches only the sanctioned Atomic (R7
     stays quiet, as in bad_r6.ml); the module-level mutability alone is
     what R6 flags *)
  let thief = Domain.spawn (fun () -> Atomic.incr steal_tally) in
  let stolen = steal () in
  let own = Array.length (build !lane_lo) in
  incr lane_lo;
  Domain.join thief;
  stolen + own
