(* R11 fixture: delivers that treat Silence as an event.  Both effects are
   Atomic so the per-node locality rule (R12) stays quiet and R11 alone
   speaks: one deliver counts every delivery unconditionally, the other
   counts the Silence arm itself. *)

module Engine = struct
  type reception = Silence | Collision | Received of int

  type protocol = {
    decide : round:int -> node:int -> int;
    deliver : round:int -> node:int -> reception -> unit;
  }
end

(* every delivery bumps the counter before any guard *)
let count_all () =
  let got = Atomic.make 0 in
  let deliver ~round:_ ~node:_ r =
    Atomic.incr got;
    match r with Engine.Silence -> () | Engine.Collision | Engine.Received _ -> ()
  in
  ({ Engine.decide = (fun ~round:_ ~node:_ -> 0); deliver }, got)

(* the Silence arm is itself an effect: skipped silent rounds lose it *)
let count_silence () =
  let silent = Atomic.make 0 in
  let deliver ~round:_ ~node:_ = function
    | Engine.Silence -> Atomic.incr silent
    | Engine.Collision | Engine.Received _ -> ()
  in
  ({ Engine.decide = (fun ~round:_ ~node:_ -> 0); deliver }, silent)
