(* Fixture: R7 — closures crossing the Domain.spawn boundary.  [race]
   captures a plain ref (flagged), [safe] shares through Atomic.t (clean),
   [worker_indirect] hides the capture behind a locally-bound worker
   function that the analysis expands one level. *)

let race () =
  let counter = ref 0 in
  let d = Domain.spawn (fun () -> incr counter) in
  Domain.join d;
  !counter

let safe () =
  let counter = Atomic.make 0 in
  let d = Domain.spawn (fun () -> Atomic.incr counter) in
  Domain.join d;
  Atomic.get counter

let worker_indirect () =
  let cells = Array.make 4 0 in
  let worker i () = cells.(i) <- i in
  let d = Domain.spawn (worker 0) in
  Domain.join d;
  cells.(0)
