(* R12 clean fixture: every callback write is node-local — indexed through
   the callback's ~node argument, or a shared aggregate made Atomic — so
   Engine_sharded can run callbacks for different nodes on different
   domains without racing. *)

module Engine = struct
  type reception = Silence | Collision | Received of int

  type protocol = {
    decide : round:int -> node:int -> int;
    deliver : round:int -> node:int -> reception -> unit;
  }
end

let per_node () =
  let state = Array.make 16 0 in
  let total = Atomic.make 0 in
  let deliver ~round:_ ~node = function
    | Engine.Silence -> ()
    | Engine.Received m ->
        state.(node) <- m;
        Atomic.incr total
    | Engine.Collision -> ()
  in
  ({ Engine.decide = (fun ~round:_ ~node -> state.(node)); deliver }, total)
