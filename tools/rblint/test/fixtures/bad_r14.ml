(* R14 fixture: a protocol-shaped pipeline that drives an engine but is
   never reachable from a Registry.register call.  The callbacks are
   contract-clean (node-indexed, silence-guarded), so R14 alone speaks. *)

module Engine = struct
  type reception = Silence | Collision | Received of int

  type protocol = {
    decide : round:int -> node:int -> int;
    deliver : round:int -> node:int -> reception -> unit;
  }

  let run ~protocol ~max_rounds () =
    for round = 0 to max_rounds - 1 do
      for node = 0 to 3 do
        ignore (protocol.decide ~round ~node);
        protocol.deliver ~round ~node Silence
      done
    done
end

let run_pipeline () =
  let state = Array.make 4 0 in
  let protocol =
    {
      Engine.decide = (fun ~round:_ ~node -> state.(node));
      deliver =
        (fun ~round:_ ~node r ->
          match r with
          | Engine.Silence -> ()
          | Engine.Received m -> state.(node) <- m
          | Engine.Collision -> ());
    }
  in
  Engine.run ~protocol ~max_rounds:2 ();
  state
