(* Fixture: R2 min/max extension — [Stdlib.min]/[max] anywhere except at an
   immediate type (int, char, bool, unit).  Float is the motivating case:
   the polymorphic [<=] inside min/max is false for every NaN operand, so
   [Array.fold_left min] over floats is order-dependent and disagrees with
   a Float.compare-based fold (the Stats.summarize bug). *)

(* Used as a value at float — the exact shape of the bug. *)
let fold_min (xs : float array) = Array.fold_left min xs.(0) xs

(* Fully applied at float. *)
let fmax (a : float) (b : float) = max a b

(* Boxed type: unspecialized polymorphic compare under the hood. *)
let smaller_pair (a : int * int) (b : int * int) = min a b

(* Immediate types are legal and must stay unflagged. *)
let imax (a : int) (b : int) = max a b

let cmin (a : char) (b : char) = min a b

let clamp_fold (xs : int array) = Array.fold_left max 0 xs
