(* R8 sink fixture: [now] reads the wall clock, but when it is listed in
   the sanctioned-sink table the taint is absorbed — neither [now] nor
   its callers are findings. *)

let now () = Sys.time ()

let elapsed t0 = now () -. t0
