(* Call-graph extraction fixture: edges must survive nesting, module
   aliasing, [open], and [let rec ... and ...] forward references. *)

let base x = x + 1

module A = struct
  let inner y = base y
end

module B = A

let via_alias z = B.inner z

open A

let via_open w = inner w

let rec even n = n = 0 || odd (n - 1)
and odd n = n > 0 && even (n - 1)
