(* Fixture: R6 in the sharded-engine shape — per-run lane state hoisted to
   the top level of a spawning module.  [Engine_sharded.run] keeps
   [out_act] and the shard cuts inside [run] so every invocation owns
   fresh state; hoisting them makes concurrent runs race through the
   module.  The rounds tally mirrors the sanctioned Atomic pattern and
   must stay clean. *)

let rounds : int Atomic.t = Atomic.make 0

let out_act : int array = Array.make 1024 0

let cuts : int array = Array.make 8 0

let run () =
  let d = Domain.spawn (fun () -> Atomic.incr rounds) in
  out_act.(0) <- 1;
  cuts.(0) <- 0;
  Domain.join d;
  out_act.(0) + cuts.(0)
