(* Fixture: R5 resolved through module aliases and opens — the untyped v1
   pass matched callee names syntactically and missed every one of
   these. *)

module L = List

let hot_alias xs = L.fold_left ( + ) 0 xs [@@zero_alloc_hot]

let hot_open a =
  let open Array in
  fold_left ( + ) 0 a
[@@zero_alloc_hot]

let hot_local_alias xs =
  let module M = List in
  M.length xs
[@@zero_alloc_hot]

(* The alias is fine outside a hot body. *)
let cold_alias xs = L.length xs
