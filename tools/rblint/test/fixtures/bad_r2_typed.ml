(* Fixture: typed R2 — polymorphic comparison between bare variables, the
   exact form the untyped v1 pass could not see (no [compare] token, no
   structural literal on either side: just [a = b]). *)

type point = { px : int; py : int }

let same_point (a : point) (b : point) = a = b

let lt_opt (a : int option) (b : int option) = a < b

let eq_list (a : int list) (b : int list) = a = b

(* Comparisons at compiler-specialized types are legal and must stay
   unflagged, operands bare or not. *)
let eq_int (a : int) (b : int) = a = b

let eq_float (a : float) (b : float) = a = b

let eq_string (a : string) (b : string) = a = b
