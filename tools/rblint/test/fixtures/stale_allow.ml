(* Audit fixture: a well-formed allow that suppresses nothing.  The
   comparison it once excused was rewritten; the marker outlived it and
   must show up stale in the ledger. *)

(* rblint:allow R2 legacy tuple comparison, rewritten monomorphically long ago *)
let add a b = a + b
