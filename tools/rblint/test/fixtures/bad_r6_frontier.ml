(* Fixture: R6 — hoisting sparse-engine frontier scratch to the top level
   of a module that spawns domains.  Per-run frontier state (transmitter
   stack, touched bytes, a skip tally kept as a ref) must live inside the
   run; the Atomic counter mirrors [Engine.skipped_rounds], the sanctioned
   cross-domain tally, and must stay clean. *)

let skipped : int Atomic.t = Atomic.make 0

let transmitters = Array.make 1024 0

let touched = Bytes.create 1024

let n_tx = ref 0

let run () =
  let d = Domain.spawn (fun () -> Atomic.incr skipped) in
  Domain.join d;
  ignore transmitters.(0);
  ignore (Bytes.get touched 0);
  !n_tx
