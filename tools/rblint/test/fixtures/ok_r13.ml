(* R13 clean fixture: hints computed from the round and captured immutable
   data, plus one that *reads* evolving state — reads are sound because
   the engine re-queries the hint every silent round. *)

module Engine_sparse = struct
  let run ~next_busy_round ~max_rounds () =
    let r = ref 0 in
    while !r < max_rounds do
      r := next_busy_round ~round:!r
    done
end

let scheduled schedule =
  Engine_sparse.run
    ~next_busy_round:(fun ~round ->
      if round + 1 < Array.length schedule then schedule.(round + 1)
      else round + 1)
    ~max_rounds:4 ()

let watermark () =
  let cursor = ref 3 in
  Engine_sparse.run
    ~next_busy_round:(fun ~round -> if round < !cursor then !cursor else round + 1)
    ~max_rounds:4 ()
