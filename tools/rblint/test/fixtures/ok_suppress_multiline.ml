(* Span-scoped suppression fixture: the finding sits on an inner line of
   a multi-line definition, the marker sits above the definition — the
   enclosing-expression anchors must connect them. *)

type point = { x : int; y : int }

(* rblint:allow R2 record equality in a cold test helper; the monomorphic compare lands with the grid refactor *)
let same_cell a b =
  List.for_all
    (fun (p, q) ->
      p = q)
    [ (a, b) ]

let origin = { x = 0; y = 0 }

let check () = same_cell origin origin
