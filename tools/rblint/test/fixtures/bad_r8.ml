(* R8 fixture: nondeterminism flowing into simulation-shaped code.  The
   wall clock taints a three-deep call chain; Hashtbl iteration order and
   GC statistics taint their direct users. *)

let now () = Sys.time ()

let jitter r = now () +. r

let schedule_delay r = jitter r *. 2.

let count_buckets tbl = Hashtbl.fold (fun _ v acc -> acc + v) tbl 0

let gc_pressure () = (Gc.quick_stat ()).Gc.minor_words
