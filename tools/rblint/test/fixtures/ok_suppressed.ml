(* Fixture: valid suppressions with reasons — the findings must vanish. *)

(* rblint:allow R2 fixture demonstrates a justified suppression *)
let sorted a = Array.sort compare a

let check o =
  (* rblint:allow R2 option check precedes the monomorphic rewrite *)
  o <> None
