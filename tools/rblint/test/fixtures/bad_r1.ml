(* Fixture: R1 — Stdlib.Random anywhere outside lib/util/rng.ml. *)

let () = Random.self_init ()

let roll () = Random.int 6

let also_qualified () = Stdlib.Random.bits ()

module R = Random
