(* Fixture: R4 — console output from library code.  Linted with a pretend
   path under lib/, where printing is banned (libraries return data). *)

let shout () = print_endline "hello"

let printf_shout n = Printf.printf "n = %d\n" n

let format_shout n = Format.printf "n = %d@." n

let to_stderr msg = output_string stderr msg
