(* R13 fixture: ~next_busy_round hints that are not pure functions of the
   round — one draws randomness, one writes captured state.  No protocol
   record is built here, so the registry rule (R14) stays quiet and R13
   alone speaks.  The local [Rng] is sealed like the real Rn_util.Rng. *)

module Rng : sig
  type t

  val create : seed:int -> t
  val int : t -> int -> int
end = struct
  type t = int ref

  let create ~seed = ref seed

  let int r b =
    incr r;
    !r mod b
end

module Engine_sparse = struct
  let run ~next_busy_round ~max_rounds () =
    let r = ref 0 in
    while !r < max_rounds do
      r := next_busy_round ~round:!r
    done
end

(* a random hint desynchronizes the sparse schedule from the dense one *)
let jittered () =
  let rng = Rng.create ~seed:7 in
  Engine_sparse.run
    ~next_busy_round:(fun ~round -> round + 1 + Rng.int rng 3)
    ~max_rounds:4 ()

(* hints may be re-queried or skipped, so even a write desynchronizes *)
let memoized () =
  let last = ref 0 in
  Engine_sparse.run
    ~next_busy_round:(fun ~round ->
      last := round;
      !last + 2)
    ~max_rounds:4 ()
