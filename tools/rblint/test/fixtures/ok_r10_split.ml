(* R10 clean fixture: the parent splits one child stream per worker and
   hands each child to exactly one spawn — the sanctioned pattern. *)

module Rng : sig
  type t

  val create : seed:int -> t
  val split : t -> t
  val int : t -> int -> int
end = struct
  type t = int ref

  let create ~seed = ref seed
  let split r = ref (!r * 7)

  let int r b =
    incr r;
    !r mod b
end

let split_owners () =
  let rng = Rng.create ~seed:1 in
  let r1 = Rng.split rng in
  let r2 = Rng.split rng in
  let a = Domain.spawn (fun () -> Rng.int r1 10) in
  let b = Domain.spawn (fun () -> Rng.int r2 10) in
  Domain.join a + Domain.join b
