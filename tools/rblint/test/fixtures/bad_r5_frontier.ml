(* Fixture: R5 — frontier bookkeeping inside a sparse-engine-style hot
   loop.  Keeping the transmitter/touched sets as lists, or draining them
   with closure-allocating combinators, is exactly the per-round
   allocation the int-stack frontier exists to avoid. *)

let drain_frontier frontier touched =
  List.iter (fun v -> touched.(v) <- true) frontier
[@@zero_alloc_hot]

let count_touched touched =
  Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 touched
[@@zero_alloc_hot]

let skim_active active k =
  List.filteri (fun i _ -> i < k) active
[@@zero_alloc_hot]

(* The int-stack drain is the sanctioned shape: index loop, no closures. *)
let drain_stack stack n touched =
  for i = 0 to n - 1 do
    touched.(stack.(i)) <- true
  done
[@@zero_alloc_hot]
