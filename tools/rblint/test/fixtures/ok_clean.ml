(* Fixture: a file that satisfies every rule even under the strict lib/core
   scope — monomorphic comparators, no printing, loop-based hot path. *)

let sort_mono a = Array.sort Int.compare a

let sort_floats a = Array.sort Float.compare a

let is_set o = match o with Some _ -> true | None -> false

let render n = Printf.sprintf "n = %d" n

let hot_sum a =
  let total = ref 0 in
  for i = 0 to Array.length a - 1 do
    total := !total + a.(i)
  done;
  !total
[@@zero_alloc_hot]

let literal_compares x = x = 0 && x < 10 && x >= -3
