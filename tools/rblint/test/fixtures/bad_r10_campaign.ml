(* R10 fixture: the campaign's per-cell stream discipline violated — a
   cell's Rng stream consumed by two executors after a steal.  The real
   rn_campaign derives a fresh stream per job key (a second FNV hash
   domain over the cell label) precisely so a stolen cell never shares a
   stream with the lane that first owned it, and so the coordinator
   never draws at all.  The local [Rng] is sealed like Rn_util.Rng, so
   the stream type carries no visible mutability and R10 alone speaks
   (same setup as bad_r10.ml). *)

module Rng : sig
  type t

  val create : seed:int -> t
  val int : t -> int -> int
end = struct
  type t = int ref

  let create ~seed = ref seed

  let int r b =
    incr r;
    !r mod b
end

(* a lane-shared stream instead of per-cell splits: the owner starts the
   cell, a thief re-runs it — two spawn closures capture one stream *)
let stolen_cell_race () =
  let cell_rng = Rng.create ~seed:11 in
  let owner = Domain.spawn (fun () -> Rng.int cell_rng 10) in
  let thief = Domain.spawn (fun () -> Rng.int cell_rng 10) in
  Domain.join owner + Domain.join thief

(* the coordinator keeps drawing from a stream it already handed to a
   worker — one "campaign stream" threaded through the drain loop *)
let coordinator_keeps_drawing () =
  let campaign_rng = Rng.create ~seed:12 in
  let w = Domain.spawn (fun () -> Rng.int campaign_rng 10) in
  let x = Rng.int campaign_rng 10 in
  Domain.join w + x
