(* Fixture: R6 — top-level mutable state in a module that spawns domains.
   The Atomic counter mirrors [Engine.simulated_rounds], the sanctioned
   cross-domain tally, and must stay clean; everything below it races. *)

let tally : int Atomic.t = Atomic.make 0

let hits = ref 0

let scratch = Array.make 16 0

let buf = Bytes.create 32

let memo : (int, int) Hashtbl.t = Hashtbl.create 8

type cell = { mutable v : int }

let shared = { v = 0 }

let run () =
  let d = Domain.spawn (fun () -> Atomic.incr tally) in
  Domain.join d;
  ignore !hits;
  ignore scratch.(0);
  ignore (Bytes.get buf 0);
  ignore (Hashtbl.length memo);
  shared.v
