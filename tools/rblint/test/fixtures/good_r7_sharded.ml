(* Fixture: R7 in the sharded-engine shape — a worker closure carries a
   shared array across Domain.spawn.  Writes stay inside the lane's owned
   index range, which the analysis cannot see; the reasoned allow records
   the ownership argument.  Stripping the allow must resurface exactly one
   R7 finding (the self-test does). *)

let run n =
  let state = Array.make (max n 2) 0 in
  let mid = max n 2 / 2 in
  (* rblint:allow R7 lanes own disjoint index ranges; no element has two writers *)
  let d = Domain.spawn (fun () -> state.(mid) <- 1) in
  state.(0) <- 2;
  Domain.join d;
  state.(0) + state.(mid)
