(* R11 clean fixture: every effect sits under a reception-match arm that
   excludes Silence — directly in the deliver, and through a forwarding
   helper that opens with its own reception match (the analysis credits a
   guarded callee with only its silence-reachable effects). *)

module Engine = struct
  type reception = Silence | Collision | Received of int

  type protocol = {
    decide : round:int -> node:int -> int;
    deliver : round:int -> node:int -> reception -> unit;
  }
end

let guarded_inline () =
  let got = Atomic.make 0 in
  let deliver ~round:_ ~node:_ = function
    | Engine.Silence -> ()
    | Engine.Collision | Engine.Received _ -> Atomic.incr got
  in
  ({ Engine.decide = (fun ~round:_ ~node:_ -> 0); deliver }, got)

(* the helper's own match shields its effects *)
let handle got = function
  | Engine.Silence -> ()
  | Engine.Collision | Engine.Received _ -> Atomic.incr got

let guarded_via_helper () =
  let got = Atomic.make 0 in
  let deliver ~round:_ ~node:_ r = handle got r in
  ({ Engine.decide = (fun ~round:_ ~node:_ -> 0); deliver }, got)
