(* Fixture: R2 — polymorphic comparison in a core directory.  Linted with a
   pretend path under lib/core/, where monomorphic comparators are
   mandatory. *)

let sort_poly a = Array.sort compare a

let uniq_poly l = List.sort_uniq compare l

let hash_poly x = Hashtbl.hash x

let opt_poly o = o <> None

let first_class_poly l x = List.exists (( = ) x) l

let tuple_poly a b c d = (a, b) = (c, d)
