(* R12 fixture: callback writes that cannot be tied to the delivering
   node.  All three sit under non-Silence arms (or in decide), so the
   silence-purity rule (R11) stays quiet and R12 alone speaks: a write
   indexed by message payload, a shared counter bumped through a helper
   that never sees the node, and a decide writing by round. *)

module Engine = struct
  type reception = Silence | Collision | Received of int

  type protocol = {
    decide : round:int -> node:int -> int;
    deliver : round:int -> node:int -> reception -> unit;
  }
end

(* indexed by the message, not the delivering node *)
let histogram () =
  let seen = Array.make 16 0 in
  let deliver ~round:_ ~node:_ = function
    | Engine.Silence -> ()
    | Engine.Received m -> seen.(m land 15) <- seen.(m land 15) + 1
    | Engine.Collision -> ()
  in
  ({ Engine.decide = (fun ~round:_ ~node:_ -> 0); deliver }, seen)

(* the helper writes shared state and is reached without node data *)
let bump counter = counter := !counter + 1

let tally () =
  let total = ref 0 in
  let deliver ~round:_ ~node:_ = function
    | Engine.Silence -> ()
    | Engine.Received _ | Engine.Collision -> bump total
  in
  ({ Engine.decide = (fun ~round:_ ~node:_ -> 0); deliver }, total)

(* decide writing a slot keyed by round races across shards too *)
let scheduler () =
  let sched = Array.make 64 0 in
  let decide ~round ~node:_ =
    sched.(round land 63) <- 1;
    0
  in
  ({ Engine.decide; deliver = (fun ~round:_ ~node:_ _ -> ()) }, sched)
