(* R10 fixture: every way one Rng stream can grow two owners.  The local
   [Rng] module is sealed behind an abstract signature, like the real
   Rn_util.Rng, so the stream type carries no visible mutability (R7
   stays quiet and R10 alone speaks). *)

module Rng : sig
  type t

  val create : seed:int -> t
  val split : t -> t
  val int : t -> int -> int
end = struct
  type t = int ref

  let create ~seed = ref seed
  let split r = ref (!r * 7)

  let int r b =
    incr r;
    !r mod b
end

(* two spawn closures capture one stream *)
let two_spawn_race () =
  let rng = Rng.create ~seed:1 in
  let a = Domain.spawn (fun () -> Rng.int rng 10) in
  let b = Domain.spawn (fun () -> Rng.int rng 10) in
  Domain.join a + Domain.join b

(* the parent keeps drawing after handing the stream to a worker *)
let use_after_handoff () =
  let rng = Rng.create ~seed:2 in
  let a = Domain.spawn (fun () -> Rng.int rng 10) in
  let x = Rng.int rng 10 in
  Domain.join a + x

(* consumption through a callee: [worker]'s slot is consuming *)
let worker rng = Domain.spawn (fun () -> Rng.int rng 10)

let via_callee () =
  let rng = Rng.create ~seed:3 in
  let a = worker rng in
  let b = worker rng in
  Domain.join a + Domain.join b

(* a stream in module state has no single owner at all *)
let global_rng = Rng.create ~seed:4
