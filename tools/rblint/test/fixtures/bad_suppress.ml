(* Fixture: a suppression without a reason is itself an error (R0) and does
   not suppress the underlying finding. *)

(* rblint:allow R2 *)
let sorted a = Array.sort compare a
