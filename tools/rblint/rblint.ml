(* rblint CLI.

   Usage: rblint [--audit] [--json] PATH...

   Each PATH is a file or directory searched recursively for `.cmt` files
   (dune emits them under `_build/default/.../byte/`); the typed trees
   inside are analyzed by [Lint].  Run from the dune context root
   (`_build/default`) so the load paths recorded in the cmts resolve and
   stored typing environments rehydrate.

   `--audit` prints the suppression-debt ledger (one row per
   [rblint:allow] marker) instead of the findings themselves, and fails
   on *stale* allows — markers that no longer suppress anything — and on
   R0 (malformed allows), so dead suppressions cannot accumulate.

   Exit codes: 0 clean, 1 findings (or stale allows under --audit),
   2 usage error. *)

let usage () =
  prerr_endline "usage: rblint [--audit] [--json] PATH...";
  exit 2

let rec collect_cmts path acc =
  match Sys.is_directory path with
  | exception Sys_error _ -> acc
  | true ->
      let entries = Sys.readdir path in
      Array.sort String.compare entries;
      Array.fold_left
        (fun acc entry ->
          if entry = ".git" then acc
          else collect_cmts (Filename.concat path entry) acc)
        acc entries
  | false -> if Filename.check_suffix path ".cmt" then path :: acc else acc

let () =
  let audit, json, paths =
    let rec flags audit json = function
      | "--audit" :: rest -> flags true json rest
      | "--json" :: rest -> flags audit true rest
      | rest ->
          if List.exists (fun a -> a = "--audit" || a = "--json") rest then
            usage ();
          (audit, json, rest)
    in
    match Array.to_list Sys.argv with
    | _ :: rest -> flags false false rest
    | [] -> usage ()
  in
  if paths = [] then usage ();
  List.iter
    (fun p ->
      if not (Sys.file_exists p) then begin
        Printf.eprintf "rblint: no such path: %s\n" p;
        exit 2
      end)
    paths;
  let cmts = List.fold_left (fun acc p -> collect_cmts p acc) [] paths in
  (* One compilation unit can be compiled into several artifacts (library
     + executable); analyze each source once. *)
  let seen = Hashtbl.create 64 in
  let units =
    List.filter_map
      (fun cmt ->
        match Lint.unit_of_cmt cmt with
        | `Skip -> None
        | `Error u -> Some u
        | `Unit u ->
            if Hashtbl.mem seen u.Lint.u_path then None
            else begin
              Hashtbl.replace seen u.Lint.u_path ();
              Some u
            end)
      (List.rev cmts)
  in
  let findings, ledger = Lint.finalize_full units in
  if audit then begin
    (* Malformed allows (R0) are still findings under --audit: a ledger
       that silently skipped them would hide exactly the debt it exists
       to surface. *)
    let r0 = List.filter (fun f -> f.Lint.rule = "R0") findings in
    let lines, stale = Audit.report ~json ledger in
    List.iter print_endline lines;
    List.iter (fun f -> print_endline (Lint.pp_finding f)) r0;
    exit (if stale > 0 || r0 <> [] then 1 else 0)
  end;
  if json then begin
    print_string "{ \"files\": ";
    print_string (string_of_int (List.length units));
    print_string ", \"findings\": [";
    List.iteri
      (fun i f ->
        if i > 0 then print_string ",";
        print_string "\n  ";
        print_string (Lint.json_of_finding f))
      findings;
    if findings <> [] then print_newline ();
    print_endline "] }"
  end
  else begin
    List.iter (fun f -> print_endline (Lint.pp_finding f)) findings;
    let nfiles = List.length units in
    if findings <> [] then
      Printf.printf "rblint: %d finding(s) in %d file(s) scanned\n"
        (List.length findings) nfiles
    else Printf.printf "rblint: clean (%d files scanned)\n" nfiles
  end;
  exit (if findings = [] then 0 else 1)
