(* rblint CLI: lint every .ml under the given files/directories.

   Usage: rblint PATH...
   Exit 0 when clean, 1 when any finding survives suppression, 2 on usage
   errors.  See lint.ml for the rules. *)

let rec collect path acc =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc entry ->
        if entry = "_build" || entry = ".git" then acc
        else collect (Filename.concat path entry) acc)
      acc
      (let entries = Sys.readdir path in
       Array.sort String.compare entries;
       entries)
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  if args = [] then begin
    prerr_endline "usage: rblint PATH...";
    exit 2
  end;
  let missing = List.filter (fun p -> not (Sys.file_exists p)) args in
  if missing <> [] then begin
    List.iter (fun p -> prerr_endline ("rblint: no such path: " ^ p)) missing;
    exit 2
  end;
  let files = List.rev (List.fold_left (fun acc p -> collect p acc) [] args) in
  let findings = List.concat_map Lint.lint_file files in
  List.iter (fun f -> print_endline (Lint.pp_finding f)) findings;
  if findings <> [] then begin
    Printf.printf "rblint: %d finding(s) in %d file(s) scanned\n"
      (List.length findings) (List.length files);
    exit 1
  end
