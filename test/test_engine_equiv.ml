(* Trace equivalence: the CSR/active-set engine must be observationally
   identical to the seed engine — same deliver-callback sequence (order
   included), same traced events, same stats, same outcome — for any graph,
   schedule and detection mode.  [Reference] below is a verbatim copy of the
   seed list-based engine (pre-CSR), compiled against the same action and
   reception types, so the property pins the rewrite to the original
   semantics bit for bit. *)

open Rn_util
open Rn_graph
module Topo = Rn_graph.Gen
open Rn_radio

module Reference = struct
  open Engine

  let run ?stats ?on_round ?after_round ~graph ~detection ~protocol ~stop
      ~max_rounds () =
    let n = Graph.n graph in
    let tx_count = Array.make n 0 in
    let tx_msg = Array.make n None in
    let listening = Array.make n false in
    let transmitters = ref [] in
    let listeners = ref [] in
    let touched = ref [] in
    let record_stat f = match stats with None -> () | Some s -> f s in
    let rec loop round =
      if stop ~round then Completed round
      else if round >= max_rounds then Out_of_budget round
      else begin
        transmitters := [];
        listeners := [];
        let events = ref [] in
        let tracing = on_round <> None in
        for v = 0 to n - 1 do
          match protocol.decide ~round ~node:v with
          | Sleep -> listening.(v) <- false
          | Listen ->
              listening.(v) <- true;
              listeners := v :: !listeners
          | Transmit msg ->
              listening.(v) <- false;
              transmitters := (v, msg) :: !transmitters;
              if tracing then events := Ev_transmit { node = v; msg } :: !events
        done;
        let tx_happened = !transmitters <> [] in
        List.iter
          (fun (t, msg) ->
            record_stat (fun s -> s.transmissions <- s.transmissions + 1);
            Graph.iter_neighbors graph t (fun v ->
                if listening.(v) then begin
                  if tx_count.(v) = 0 then begin
                    touched := v :: !touched;
                    tx_msg.(v) <- Some msg
                  end;
                  tx_count.(v) <- tx_count.(v) + 1
                end))
          !transmitters;
        List.iter
          (fun v ->
            let reception =
              match tx_count.(v) with
              | 0 -> Silence
              | 1 -> (
                  record_stat (fun s -> s.deliveries <- s.deliveries + 1);
                  match tx_msg.(v) with
                  | Some m -> Received m
                  | None -> assert false)
              | _ -> (
                  record_stat (fun s -> s.collisions <- s.collisions + 1);
                  match detection with
                  | Collision_detection -> Collision
                  | No_collision_detection -> Silence)
            in
            if tracing then events := Ev_receive { node = v; reception } :: !events;
            protocol.deliver ~round ~node:v reception)
          !listeners;
        List.iter
          (fun v ->
            tx_count.(v) <- 0;
            tx_msg.(v) <- None)
          !touched;
        touched := [];
        record_stat (fun s ->
            s.rounds <- s.rounds + 1;
            if tx_happened then s.busy_rounds <- s.busy_rounds + 1);
        (match on_round with
        | Some f -> f ~round (List.rev !events)
        | None -> ());
        (match after_round with Some f -> f ~round | None -> ());
        loop (round + 1)
      end
    in
    loop 0
end

(* A random but deterministic schedule: action of (round, node) precomputed
   from the seed, messages tagged so any cross-wiring is visible. *)
let make_script ~rng ~n ~rounds =
  Array.init rounds (fun r ->
      Array.init n (fun v ->
          match Rng.int rng 4 with
          | 0 -> Engine.Sleep
          | 1 | 2 -> Engine.Listen
          | _ -> Engine.Transmit ((r * 10_000) + v)))

let scripted script log =
  let decide ~round ~node =
    if round < Array.length script then script.(round).(node) else Engine.Listen
  in
  let deliver ~round ~node reception =
    log := (round, node, reception) :: !log
  in
  { Engine.decide; deliver }

type 'msg observation = {
  obs_outcome : Engine.outcome;
  obs_log : (int * int * 'msg Engine.reception) list;
  obs_events : (int * 'msg Engine.trace_event list) list;
  obs_after : int list;
  obs_stats : Engine.stats;
}

let observing ~graph:_ ~script k =
  let log = ref [] and events = ref [] and after = ref [] in
  let stats = Engine.fresh_stats () in
  let outcome =
    k ~stats
      ~on_round:(fun ~round evs -> events := (round, evs) :: !events)
      ~after_round:(fun ~round -> after := round :: !after)
      ~protocol:(scripted script log)
  in
  {
    obs_outcome = outcome;
    obs_log = !log;
    obs_events = !events;
    obs_after = !after;
    obs_stats = stats;
  }

let observe_ref ~graph ~detection ~script ~max_rounds =
  observing ~graph ~script (fun ~stats ~on_round ~after_round ~protocol ->
      Reference.run ~stats ~on_round ~after_round ~graph ~detection ~protocol
        ~stop:(fun ~round:_ -> false)
        ~max_rounds ())

let observe_new ?decide_active ~graph ~detection ~script ~max_rounds () =
  observing ~graph ~script (fun ~stats ~on_round ~after_round ~protocol ->
      Engine.run ~stats ~on_round ~after_round ?decide_active ~validate:true
        ~graph ~detection ~protocol
        ~stop:(fun ~round:_ -> false)
        ~max_rounds ())

let same_observation a b =
  a.obs_outcome = b.obs_outcome && a.obs_log = b.obs_log
  && a.obs_events = b.obs_events && a.obs_after = b.obs_after
  && a.obs_stats = b.obs_stats

let arb_case =
  QCheck.make
    ~print:(fun (n, extra, rounds, seed, cd) ->
      Printf.sprintf "(n=%d,extra=%d,rounds=%d,seed=%d,cd=%b)" n extra rounds
        seed cd)
    QCheck.Gen.(
      tup5 (int_range 2 40) (int_range 0 30) (int_range 1 12)
        (int_range 0 100_000) bool)

let detection_of cd =
  if cd then Engine.Collision_detection else Engine.No_collision_detection

let setup (n, extra, rounds, seed, cd) =
  let rng = Rng.create ~seed in
  let g = Topo.random_connected ~rng ~n ~extra in
  let script = make_script ~rng ~n ~rounds in
  (g, script, detection_of cd, rounds)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"engine trace-equivalent to seed engine" ~count:300
      arb_case
      (fun case ->
        let g, script, detection, rounds = setup case in
        let a = observe_ref ~graph:g ~detection ~script ~max_rounds:rounds in
        let b = observe_new ~graph:g ~detection ~script ~max_rounds:rounds () in
        same_observation a b);
    (* The active-set path with the full node set enumerated must match the
       default every-node scan exactly. *)
    Test.make ~name:"decide_active(full set) ≡ full scan" ~count:150 arb_case
      (fun case ->
        let g, script, detection, rounds = setup case in
        let n = Graph.n g in
        let a = observe_new ~graph:g ~detection ~script ~max_rounds:rounds () in
        let b =
          observe_new
            ~decide_active:(fun ~round:_ buf ->
              for v = 0 to n - 1 do
                buf.(v) <- v
              done;
              n)
            ~graph:g ~detection ~script ~max_rounds:rounds ()
        in
        same_observation a b);
    (* Sparse active sets: enumerating exactly the non-Sleep nodes of the
       script (ascending) is indistinguishable from scanning everyone,
       because the skipped nodes would have slept anyway. *)
    Test.make ~name:"decide_active(awake set) ≡ full scan" ~count:150 arb_case
      (fun case ->
        let g, script, detection, rounds = setup case in
        let n = Graph.n g in
        let a = observe_new ~graph:g ~detection ~script ~max_rounds:rounds () in
        let b =
          observe_new
            ~decide_active:(fun ~round buf ->
              let k = ref 0 in
              if round < Array.length script then
                for v = 0 to n - 1 do
                  match script.(round).(v) with
                  | Engine.Sleep -> ()
                  | Engine.Listen | Engine.Transmit _ ->
                      buf.(!k) <- v;
                      incr k
                done
              else
                for v = 0 to n - 1 do
                  buf.(v) <- v;
                  incr k
                done;
              !k)
            ~graph:g ~detection ~script ~max_rounds:rounds ()
        in
        same_observation a b);
    (* The parallel runner must be bit-identical to a serial map. *)
    Test.make ~name:"Runner.map_seeds ≡ serial map" ~count:50
      (pair (int_range 1 20) (int_range 0 10_000))
      (fun (k, seed0) ->
        let seeds = List.init k (fun i -> seed0 + i) in
        let trial ~seed =
          let rng = Rng.create ~seed in
          let g = Topo.random_connected ~rng ~n:12 ~extra:8 in
          let stats = Engine.fresh_stats () in
          let script = make_script ~rng ~n:12 ~rounds:6 in
          let log = ref [] in
          let outcome =
            Engine.run ~stats ~graph:g
              ~detection:Engine.Collision_detection
              ~protocol:(scripted script log)
              ~stop:(fun ~round:_ -> false)
              ~max_rounds:6 ()
          in
          (outcome, !log, stats)
        in
        let serial = List.map (fun seed -> trial ~seed) seeds in
        let par2 = Runner.map_seeds ~domains:2 ~seeds trial in
        let par4 = Runner.map_seeds ~domains:4 ~seeds trial in
        serial = par2 && serial = par4);
  ]

let test_active_set_sleeps_rest () =
  (* Nodes outside the active set sleep: on a path 0-1-2 where the script
     says everyone listens and node 0 transmits, an active set of {0, 1}
     must leave node 2 asleep (no deliver callback). *)
  let g = Topo.path 3 in
  let log = ref [] in
  let decide ~round:_ ~node =
    if node = 0 then Engine.Transmit 7 else Engine.Listen
  in
  let deliver ~round:_ ~node reception = log := (node, reception) :: !log in
  ignore
    (Engine.run ~graph:g ~detection:Engine.Collision_detection
       ~protocol:{ Engine.decide; deliver }
       ~decide_active:(fun ~round:_ buf ->
         buf.(0) <- 0;
         buf.(1) <- 1;
         2)
       ~stop:(fun ~round:_ -> false)
       ~max_rounds:1 ());
  Alcotest.(check int) "only node 1 delivered" 1 (List.length !log);
  (match !log with
  | [ (1, Engine.Received 7) ] -> ()
  | _ -> Alcotest.fail "node 1 should receive 7");
  ()

let test_active_set_bad_id () =
  let g = Topo.path 3 in
  let p =
    {
      Engine.decide = (fun ~round:_ ~node:_ -> Engine.Listen);
      deliver = (fun ~round:_ ~node:_ _ -> ());
    }
  in
  Alcotest.check_raises "out-of-range id"
    (Invalid_argument "Engine.run: decide_active wrote a bad node id")
    (fun () ->
      ignore
        (Engine.run ~graph:g ~detection:Engine.Collision_detection ~protocol:p
           ~decide_active:(fun ~round:_ buf ->
             buf.(0) <- 5;
             1)
           ~stop:(fun ~round:_ -> false)
           ~max_rounds:1 ()))

let () =
  Alcotest.run "engine_equiv"
    [
      ( "active-set",
        [
          Alcotest.test_case "inactive nodes sleep" `Quick
            test_active_set_sleeps_rest;
          Alcotest.test_case "bad id rejected" `Quick test_active_set_bad_id;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
