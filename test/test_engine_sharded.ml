(* Equivalence of the sharded engine with the serial engine: same outcome,
   same per-node deliver log, same traced events (order included), same
   after_round sequence, same stats — for any graph, schedule, detection
   mode, with and without decide_active, for every shard count.  The
   deliver log is an array indexed by node (each lane appends only to its
   own nodes' cells), so the observation itself respects the engine's
   per-node-state contract and works unchanged under parallel delivery. *)

open Rn_util
open Rn_graph
module Topo = Rn_graph.Gen
open Rn_radio

(* Equivalence must hold under true multi-domain execution; on small
   machines the pool's hardware cap would otherwise degrade every sharded
   run to the calling domain. *)
let () =
  Atomic.set Runner.Pool.size_cap (max 8 (Atomic.get Runner.Pool.size_cap))

(* A random but deterministic schedule, same construction as the serial
   equivalence suite: action of (round, node) precomputed from the seed,
   messages tagged so cross-wiring is visible. *)
let make_script ~rng ~n ~rounds =
  Array.init rounds (fun r ->
      Array.init n (fun v ->
          match Rng.int rng 4 with
          | 0 -> Engine.Sleep
          | 1 | 2 -> Engine.Listen
          | _ -> Engine.Transmit ((r * 10_000) + v)))

type 'msg observation = {
  obs_outcome : Engine.outcome;
  obs_logs : (int * 'msg Engine.reception) list array;  (* per node *)
  obs_events : (int * 'msg Engine.trace_event list) list;
  obs_after : int list;
  obs_stats : Engine.stats;
}

let observing ~n ~script k =
  let logs = Array.make (max n 1) [] in
  let events = ref [] and after = ref [] in
  let stats = Engine.fresh_stats () in
  let decide ~round ~node =
    if round < Array.length script then script.(round).(node) else Engine.Listen
  in
  let deliver ~round ~node reception =
    logs.(node) <- (round, reception) :: logs.(node)
  in
  let outcome =
    k ~stats
      ~on_round:(fun ~round evs -> events := (round, evs) :: !events)
      ~after_round:(fun ~round -> after := round :: !after)
      ~protocol:{ Engine.decide; deliver }
  in
  {
    obs_outcome = outcome;
    obs_logs = logs;
    obs_events = !events;
    obs_after = !after;
    obs_stats = stats;
  }

let observe_serial ?decide_active ~graph ~detection ~script ~max_rounds () =
  observing ~n:(Graph.n graph) ~script
    (fun ~stats ~on_round ~after_round ~protocol ->
      Engine.run ~stats ~on_round ~after_round ?decide_active ~validate:true
        ~graph ~detection ~protocol
        ~stop:(fun ~round:_ -> false)
        ~max_rounds ())

let observe_sharded ?decide_active ~domains ~graph ~detection ~script
    ~max_rounds () =
  observing ~n:(Graph.n graph) ~script
    (fun ~stats ~on_round ~after_round ~protocol ->
      Engine_sharded.run ~stats ~on_round ~after_round ?decide_active
        ~validate:true ~domains ~graph ~detection ~protocol
        ~stop:(fun ~round:_ -> false)
        ~max_rounds ())

let same_observation a b =
  a.obs_outcome = b.obs_outcome && a.obs_logs = b.obs_logs
  && a.obs_events = b.obs_events && a.obs_after = b.obs_after
  && a.obs_stats = b.obs_stats

let arb_case =
  QCheck.make
    ~print:(fun (n, extra, rounds, seed, cd) ->
      Printf.sprintf "(n=%d,extra=%d,rounds=%d,seed=%d,cd=%b)" n extra rounds
        seed cd)
    QCheck.Gen.(
      tup5 (int_range 2 40) (int_range 0 30) (int_range 1 12)
        (int_range 0 100_000) bool)

let detection_of cd =
  if cd then Engine.Collision_detection else Engine.No_collision_detection

let setup (n, extra, rounds, seed, cd) =
  let rng = Rng.create ~seed in
  let g = Topo.random_connected ~rng ~n ~extra in
  let script = make_script ~rng ~n ~rounds in
  (g, script, detection_of cd, rounds)

(* Active set = exactly the non-Sleep nodes of the script, ascending — the
   sharded engine slices this buffer contiguously across lanes. *)
let awake_set script n ~round (buf : int array) =
  let k = ref 0 in
  if round < Array.length script then
    for v = 0 to n - 1 do
      match script.(round).(v) with
      | Engine.Sleep -> ()
      | Engine.Listen | Engine.Transmit _ ->
          buf.(!k) <- v;
          incr k
    done
  else
    for v = 0 to n - 1 do
      buf.(v) <- v;
      incr k
    done;
  !k

let domain_counts = [ 1; 2; 4 ]

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"sharded ≡ serial (full scan), domains 1/2/4" ~count:200
      arb_case
      (fun case ->
        let g, script, detection, rounds = setup case in
        let a = observe_serial ~graph:g ~detection ~script ~max_rounds:rounds () in
        List.for_all
          (fun domains ->
            same_observation a
              (observe_sharded ~domains ~graph:g ~detection ~script
                 ~max_rounds:rounds ()))
          domain_counts);
    Test.make ~name:"sharded ≡ serial (decide_active), domains 1/2/4"
      ~count:150 arb_case
      (fun case ->
        let g, script, detection, rounds = setup case in
        let n = Graph.n g in
        let da = awake_set script n in
        let a =
          observe_serial ~decide_active:da ~graph:g ~detection ~script
            ~max_rounds:rounds ()
        in
        List.for_all
          (fun domains ->
            same_observation a
              (observe_sharded ~decide_active:da ~domains ~graph:g ~detection
                 ~script ~max_rounds:rounds ()))
          domain_counts);
    (* Degenerate sharding as a property: more shards than nodes — most
       lanes own nothing (and in active mode most slices are empty). *)
    Test.make ~name:"sharded ≡ serial with domains > n" ~count:80
      (pair arb_case (int_range 1 12))
      (fun (case, extra_domains) ->
        let g, script, detection, rounds = setup case in
        let domains = Graph.n g + extra_domains in
        let a = observe_serial ~graph:g ~detection ~script ~max_rounds:rounds () in
        let b =
          observe_sharded ~domains ~graph:g ~detection ~script
            ~max_rounds:rounds ()
        in
        same_observation a b);
  ]

(* ------------------------------------------------------------------ *)
(* Degenerate shards, unit-style *)

let listen_all_script rounds n =
  Array.init rounds (fun _ -> Array.make n Engine.Listen)

let check_matches_serial ?decide_active ~graph ~detection ~script ~max_rounds
    domains_list =
  let a = observe_serial ?decide_active ~graph ~detection ~script ~max_rounds () in
  List.iter
    (fun domains ->
      let b =
        observe_sharded ?decide_active ~domains ~graph ~detection ~script
          ~max_rounds ()
      in
      Alcotest.(check bool)
        (Printf.sprintf "domains=%d matches serial" domains)
        true (same_observation a b))
    domains_list

let test_single_node () =
  (* n = 1: no edges, every shard after the first is empty. *)
  let g = Topo.path 1 in
  let script =
    [| [| Engine.Transmit 3 |]; [| Engine.Listen |]; [| Engine.Sleep |] |]
  in
  check_matches_serial ~graph:g ~detection:Engine.Collision_detection ~script
    ~max_rounds:3 [ 1; 2; 3; 8 ]

let test_n_less_than_domains () =
  let rng = Rng.create ~seed:7 in
  let g = Topo.path 2 in
  let script = make_script ~rng ~n:2 ~rounds:6 in
  check_matches_serial ~graph:g ~detection:Engine.No_collision_detection
    ~script ~max_rounds:6 [ 4; 7 ]

let test_empty_shards_star () =
  (* A star's edge mass sits on the hub, so word-aligned cuts collapse and
     several interior shards own zero nodes; results must not care. *)
  let n = 100 in
  let g = Topo.star n in
  let rng = Rng.create ~seed:11 in
  let script = make_script ~rng ~n ~rounds:8 in
  check_matches_serial ~graph:g ~detection:Engine.Collision_detection ~script
    ~max_rounds:8 [ 2; 8; 64 ];
  (* and the degenerate active set: empty every other round *)
  let da ~round (buf : int array) =
    if round mod 2 = 0 then 0
    else begin
      for v = 0 to n - 1 do
        buf.(v) <- v
      done;
      n
    end
  in
  check_matches_serial ~decide_active:da ~graph:g
    ~detection:Engine.Collision_detection ~script ~max_rounds:8 [ 2; 8 ]

let test_domains_must_be_positive () =
  let g = Topo.path 3 in
  let p =
    {
      Engine.decide = (fun ~round:_ ~node:_ -> Engine.Listen);
      deliver = (fun ~round:_ ~node:_ _ -> ());
    }
  in
  Alcotest.check_raises "domains = 0 rejected"
    (Invalid_argument "Engine_sharded.run: domains must be >= 1") (fun () ->
      ignore
        (Engine_sharded.run ~domains:0 ~graph:g
           ~detection:Engine.Collision_detection ~protocol:p
           ~stop:(fun ~round:_ -> false)
           ~max_rounds:1 ()))

let test_active_set_bad_id () =
  let g = Topo.path 3 in
  let p =
    {
      Engine.decide = (fun ~round:_ ~node:_ -> Engine.Listen);
      deliver = (fun ~round:_ ~node:_ _ -> ());
    }
  in
  List.iter
    (fun domains ->
      Alcotest.check_raises
        (Printf.sprintf "out-of-range id, domains=%d" domains)
        (Invalid_argument "Engine_sharded.run: decide_active wrote a bad node id")
        (fun () ->
          ignore
            (Engine_sharded.run ~domains ~graph:g
               ~detection:Engine.Collision_detection ~protocol:p
               ~decide_active:(fun ~round:_ buf ->
                 buf.(0) <- 5;
                 1)
               ~stop:(fun ~round:_ -> false)
               ~max_rounds:1 ())))
    [ 1; 3 ]

let test_active_set_bad_count () =
  let g = Topo.path 3 in
  let p =
    {
      Engine.decide = (fun ~round:_ ~node:_ -> Engine.Listen);
      deliver = (fun ~round:_ ~node:_ _ -> ());
    }
  in
  Alcotest.check_raises "count > n rejected"
    (Invalid_argument "Engine_sharded.run: decide_active returned a bad count")
    (fun () ->
      ignore
        (Engine_sharded.run ~domains:2 ~graph:g
           ~detection:Engine.Collision_detection ~protocol:p
           ~decide_active:(fun ~round:_ _ -> 17)
           ~stop:(fun ~round:_ -> false)
           ~max_rounds:1 ()))

(* A protocol exception raised inside a lane must shut the pool down
   cleanly and resurface in the caller — deterministically, regardless of
   which lanes also failed. *)
exception Boom of int

let test_lane_exception_propagates () =
  let g = Topo.path 40 in
  let p =
    {
      Engine.decide =
        (fun ~round ~node ->
          if round = 2 && node >= 20 then raise (Boom node) else Engine.Listen);
      deliver = (fun ~round:_ ~node:_ _ -> ());
    }
  in
  List.iter
    (fun domains ->
      match
        Engine_sharded.run ~domains ~graph:g
          ~detection:Engine.Collision_detection ~protocol:p
          ~stop:(fun ~round:_ -> false)
          ~max_rounds:10 ()
      with
      | _ -> Alcotest.failf "domains=%d: expected Boom" domains
      | exception Boom _ -> ())
    [ 1; 2; 4 ];
  (* The pool must still be usable after the failed run. *)
  let g2 = Topo.path 8 in
  let script = listen_all_script 3 8 in
  check_matches_serial ~graph:g2 ~detection:Engine.Collision_detection
    ~script ~max_rounds:3 [ 4 ]

(* Decay end-to-end: the protocol the sharded engine was built for, with
   its atomic completion count, across detection modes and shard counts. *)
let test_decay_integration () =
  let open Rn_broadcast in
  List.iter
    (fun seed ->
      let mk () = Rng.create ~seed in
      let graph =
        Topo.layered_random ~rng:(mk ()) ~depth:6 ~width:12 ~p:0.4
      in
      let run domains =
        Decay.broadcast ?domains ~rng:(mk ()) ~graph ~source:0 ()
      in
      let base = run None in
      List.iter
        (fun d ->
          let r = run (Some d) in
          Alcotest.(check bool)
            (Printf.sprintf "seed=%d domains=%d ≡ serial" seed d)
            true
            (base.Decay.outcome = r.Decay.outcome
            && base.Decay.received_round = r.Decay.received_round
            && base.Decay.stats = r.Decay.stats))
        [ 1; 2; 3; 4 ])
    [ 1; 2; 3 ]

let () =
  Alcotest.run "engine_sharded"
    [
      ( "degenerate",
        [
          Alcotest.test_case "single node" `Quick test_single_node;
          Alcotest.test_case "n < domains" `Quick test_n_less_than_domains;
          Alcotest.test_case "empty shards (star)" `Quick
            test_empty_shards_star;
          Alcotest.test_case "domains >= 1 enforced" `Quick
            test_domains_must_be_positive;
          Alcotest.test_case "bad active id rejected" `Quick
            test_active_set_bad_id;
          Alcotest.test_case "bad active count rejected" `Quick
            test_active_set_bad_count;
          Alcotest.test_case "lane exception propagates" `Quick
            test_lane_exception_propagates;
        ] );
      ( "decay",
        [ Alcotest.test_case "serial ≡ sharded" `Quick test_decay_integration ]
      );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
