(* Statistical smoke tests for Rng (SplitMix64).

   The simulator's w.h.p. claims are validated by running many seeded
   trials, so the generator must (a) give split children that are
   decorrelated even for adjacent integer seeds — the bench derives every
   trial's stream via [Rng.split] from consecutive seeds — and (b) draw
   [Rng.int] exactly uniformly on small bounds, since protocol coins are
   mostly [Rng.int]/[Rng.bernoulli] with tiny supports.

   All chi-square checks run on fixed seeds, so they are deterministic:
   thresholds are the 99.9% critical values with generous margin. *)

open Rn_util

let bits = 64

(* Fraction of agreeing bits between the next [draws] outputs of two
   generators; independent streams sit near 1/2. *)
let bit_agreement a b ~draws =
  let agree = ref 0 in
  for _ = 1 to draws do
    let xa = Rng.bits64 a and xb = Rng.bits64 b in
    let x = Int64.lognot (Int64.logxor xa xb) in
    (* popcount of the agreement mask *)
    for i = 0 to bits - 1 do
      if Int64.logand (Int64.shift_right_logical x i) 1L = 1L then incr agree
    done
  done;
  float_of_int !agree /. float_of_int (draws * bits)

(* 256 draws x 64 bits = 16384 bits; sigma ~ 0.004, so [0.45, 0.55] is a
   +-12 sigma band — a real correlation fails it, noise never does. *)
let check_band what frac =
  Alcotest.(check bool)
    (Printf.sprintf "%s: bit agreement %.4f in [0.45, 0.55]" what frac)
    true
    (frac > 0.45 && frac < 0.55)

let test_split_adjacent_seeds () =
  for seed = 0 to 7 do
    let a = Rng.split (Rng.create ~seed) in
    let b = Rng.split (Rng.create ~seed:(seed + 1)) in
    check_band (Printf.sprintf "split children of seeds %d/%d" seed (seed + 1))
      (bit_agreement a b ~draws:256)
  done

let test_parent_child_decorrelated () =
  for seed = 0 to 7 do
    let parent = Rng.create ~seed in
    let child = Rng.split parent in
    check_band (Printf.sprintf "parent/child of seed %d" seed)
      (bit_agreement parent child ~draws:256)
  done

let test_split_n_pairwise () =
  let parent = Rng.create ~seed:7 in
  let kids = Rng.split_n parent 8 in
  Array.iteri
    (fun i a ->
      Array.iteri
        (fun j b ->
          if i < j then
            check_band
              (Printf.sprintf "split_n children %d/%d" i j)
              (bit_agreement (Rng.copy a) (Rng.copy b) ~draws:256))
        kids)
    kids

(* Exhaustive histogram of [Rng.int] on small bounds: rejection sampling
   must be exactly uniform, so chi-square against the flat expectation
   stays under the 99.9% critical value (df <= 7 -> 24.32; we allow 25). *)
let test_int_chi_square () =
  List.iter
    (fun bound ->
      let rng = Rng.create ~seed:(1000 + bound) in
      let n = 20_000 * bound in
      let hist = Array.make bound 0 in
      for _ = 1 to n do
        let v = Rng.int rng bound in
        if v < 0 || v >= bound then
          Alcotest.failf "Rng.int %d returned %d, out of range" bound v;
        hist.(v) <- hist.(v) + 1
      done;
      let expected = float_of_int n /. float_of_int bound in
      let chi2 =
        Array.fold_left
          (fun acc c ->
            let d = float_of_int c -. expected in
            acc +. (d *. d /. expected))
          0.0 hist
      in
      Alcotest.(check bool)
        (Printf.sprintf "chi-square bound=%d: %.2f < 25" bound chi2)
        true (chi2 < 25.0))
    [ 2; 3; 4; 5; 6; 7; 8 ]

(* Bernoulli at p=1/2 must match the fair-coin rate under the same
   deterministic-seed policy. *)
let test_bernoulli_rate () =
  let rng = Rng.create ~seed:99 in
  let n = 100_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Rng.bernoulli rng 0.5 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "bernoulli 0.5 rate %.4f in [0.49, 0.51]" rate)
    true
    (rate > 0.49 && rate < 0.51)

(* QCheck: exact invariants that must hold for every seed, not just the
   pinned ones — range, determinism, and split independence of the
   parent's subsequent draws. *)
let qcheck_props =
  let open QCheck in
  [
    Test.make ~name:"int in range for all seeds/bounds" ~count:500
      (pair small_int (int_range 1 1000))
      (fun (seed, bound) ->
        let v = Rng.int (Rng.create ~seed) bound in
        v >= 0 && v < bound);
    Test.make ~name:"equal seeds replay equal streams" ~count:200 small_int
      (fun seed ->
        let a = Rng.create ~seed and b = Rng.create ~seed in
        List.for_all
          (fun _ -> Int64.equal (Rng.bits64 a) (Rng.bits64 b))
          [ 1; 2; 3; 4; 5; 6; 7; 8 ]);
    Test.make ~name:"split leaves the parent's stream unchanged" ~count:200
      small_int
      (fun seed ->
        let a = Rng.create ~seed and b = Rng.create ~seed in
        let (_ : Rng.t) = Rng.split a in
        let (_ : Rng.t) = Rng.split b in
        (* both parents advanced identically; their futures agree *)
        Int64.equal (Rng.bits64 a) (Rng.bits64 b));
  ]

let () =
  Alcotest.run "rng-stat"
    [
      ( "decorrelation",
        [
          Alcotest.test_case "adjacent seeds" `Quick test_split_adjacent_seeds;
          Alcotest.test_case "parent vs child" `Quick
            test_parent_child_decorrelated;
          Alcotest.test_case "split_n pairwise" `Quick test_split_n_pairwise;
        ] );
      ( "uniformity",
        [
          Alcotest.test_case "Rng.int chi-square" `Quick test_int_chi_square;
          Alcotest.test_case "bernoulli rate" `Quick test_bernoulli_rate;
        ] );
      ( "qcheck",
        List.map QCheck_alcotest.to_alcotest qcheck_props );
    ]
