(* The observability layer: registry mechanics (ring wraparound, phase
   clamping, histogram binning), export formatting, the Lemma-2.2/2.4
   analyses on hand-checkable inputs — and the acceptance property that a
   metrics registry filled by a sharded Decay run exports byte-identical
   text to the serial run, for every domain count. *)

open Rn_util
open Rn_graph
module Topo = Rn_graph.Gen
open Rn_broadcast
module M = Rn_obs.Metrics
module Export = Rn_obs.Export
module Analysis = Rn_obs.Analysis

(* Same cap override as test_engine_sharded: byte-identity must hold under
   true multi-domain execution, not a degenerate 1-domain fallback. *)
let () =
  Atomic.set Rn_radio.Runner.Pool.size_cap
    (max 8 (Atomic.get Rn_radio.Runner.Pool.size_cap))

(* ------------------------------------------------------------------ *)
(* Metrics registry *)

let test_create_validation () =
  List.iter
    (fun (what, mk) ->
      Alcotest.check_raises what
        (Invalid_argument ("Metrics.create: " ^ what ^ " < 1"))
        mk)
    [
      ("phases", fun () -> ignore (M.create ~phases:0 ()));
      ("ring", fun () -> ignore (M.create ~ring:0 ()));
      ("hist_bins", fun () -> ignore (M.create ~hist_bins:0 ()));
      ("hist_width", fun () -> ignore (M.create ~hist_width:0 ()));
    ]

let test_totals_and_phases () =
  let m = M.create ~phases:3 () in
  M.record_round m ~round:0 ~transmissions:4 ~deliveries:2 ~collisions:1;
  Rn_obs.Phase.enter m 1;
  M.record_round m ~round:1 ~transmissions:3 ~deliveries:1 ~collisions:0;
  M.record_round m ~round:2 ~transmissions:5 ~deliveries:0 ~collisions:2;
  (* phase ids at/beyond [phases] clamp into the last bin *)
  Rn_obs.Phase.enter m 99;
  Alcotest.(check int) "clamped phase" 2 (Rn_obs.Phase.current m);
  M.record_round m ~round:3 ~transmissions:1 ~deliveries:1 ~collisions:0;
  Alcotest.(check int) "rounds" 4 (M.rounds m);
  Alcotest.(check int) "tx" 13 (M.transmissions m);
  Alcotest.(check int) "deliveries" 4 (M.deliveries m);
  Alcotest.(check int) "collisions" 3 (M.collisions m);
  Alcotest.(check int) "phase 0 rounds" 1 (M.phase_rounds m 0);
  Alcotest.(check int) "phase 1 rounds" 2 (M.phase_rounds m 1);
  Alcotest.(check int) "phase 1 tx" 8 (M.phase_transmissions m 1);
  Alcotest.(check int) "phase 2 (clamped) deliveries" 1 (M.phase_deliveries m 2);
  Alcotest.(check int) "phases_used" 3 (M.phases_used m);
  Alcotest.check_raises "out-of-range phase read"
    (Invalid_argument "Metrics.phase_rounds") (fun () ->
      ignore (M.phase_rounds m 3))

let test_ring_wraparound () =
  let m = M.create ~ring:4 () in
  Alcotest.(check int) "capacity" 4 (M.ring_capacity m);
  for r = 0 to 5 do
    M.record_round m ~round:r ~transmissions:(10 + r) ~deliveries:r
      ~collisions:0
  done;
  Alcotest.(check int) "length saturates" 4 (M.ring_length m);
  (* chronological, oldest first: rounds 2,3,4,5 survive *)
  List.iteri
    (fun i expect ->
      let round, _, tx, del, _ = M.ring_get m i in
      Alcotest.(check int) (Printf.sprintf "slot %d round" i) expect round;
      Alcotest.(check int) "slot tx" (10 + expect) tx;
      Alcotest.(check int) "slot deliveries" expect del)
    [ 2; 3; 4; 5 ];
  Alcotest.check_raises "ring_get range"
    (Invalid_argument "Metrics.ring_get") (fun () -> ignore (M.ring_get m 4))

let test_histogram () =
  let m = M.create ~hist_bins:4 ~hist_width:3 () in
  (* bins: [0,2] [3,5] [6,8] [9,∞) — the last bin absorbs overflow *)
  M.record_receive_rounds m [| 0; 2; 3; 8; 100; -1; -7 |];
  M.observe_receive_round m 11;
  Alcotest.(check int) "negatives skipped" 6 (M.hist_count m);
  Alcotest.(check int) "bin 0" 2 (M.hist_get m 0);
  Alcotest.(check int) "bin 1" 1 (M.hist_get m 1);
  Alcotest.(check int) "bin 2" 1 (M.hist_get m 2);
  Alcotest.(check int) "bin 3 (clamped)" 2 (M.hist_get m 3)

let test_reset () =
  let m = M.create ~phases:4 ~ring:8 () in
  Rn_obs.Phase.enter m 2;
  M.record_round m ~round:0 ~transmissions:1 ~deliveries:1 ~collisions:1;
  M.observe_receive_round m 3;
  M.reset m;
  Alcotest.(check int) "rounds" 0 (M.rounds m);
  Alcotest.(check int) "phase back to 0" 0 (M.current_phase m);
  Alcotest.(check int) "ring emptied" 0 (M.ring_length m);
  Alcotest.(check int) "hist emptied" 0 (M.hist_count m);
  Alcotest.(check int) "phases_used" 0 (M.phases_used m);
  Alcotest.(check int) "capacity kept" 8 (M.ring_capacity m)

(* ------------------------------------------------------------------ *)
(* Export formatting *)

let test_export_formats () =
  let m = M.create ~phases:4 ~ring:8 ~hist_bins:8 ~hist_width:2 () in
  M.record_round m ~round:0 ~transmissions:3 ~deliveries:1 ~collisions:0;
  Rn_obs.Phase.enter m 1;
  M.record_round m ~round:1 ~transmissions:2 ~deliveries:2 ~collisions:1;
  M.record_receive_rounds m [| 1; 2; 5 |];
  Alcotest.(check (list string)) "round jsonl"
    [
      {|{"round":0,"phase":0,"tx":3,"deliveries":1,"collisions":0}|};
      {|{"round":1,"phase":1,"tx":2,"deliveries":2,"collisions":1}|};
    ]
    (Export.round_jsonl m);
  Alcotest.(check (list string)) "phases csv"
    [ "phase,rounds,tx,deliveries,collisions"; "0,1,3,1,0"; "1,1,2,2,1" ]
    (Export.phases_csv m);
  Alcotest.(check (list string)) "hist csv"
    [ "bin,round_lo,round_hi,count"; "0,0,1,1"; "1,2,3,1"; "2,4,5,1" ]
    (Export.hist_csv m);
  Alcotest.(check string) "summary"
    {|{"rounds":2,"tx":5,"deliveries":3,"collisions":1,"phases":2,"receives":3}|}
    (Export.summary_json m);
  Alcotest.(check string) "json int array" "[1,2,3]"
    (Export.json_int_array [ 1; 2; 3 ]);
  Alcotest.(check string) "empty json int array" "[]"
    (Export.json_int_array []);
  Alcotest.(check string) "phase deliveries" "[1,2]"
    (Export.phase_deliveries_json m);
  Alcotest.(check string) "phase tx" "[3,2]" (Export.phase_tx_json m)

(* ------------------------------------------------------------------ *)
(* Analysis: Lemma 2.2 / 2.4 helpers on hand-checkable inputs *)

let test_decay_phases_path () =
  (* Path 0-1-2-3, source 0, ladder 2; node 1 receives in phase 0, node 2
     only in phase 2 (round 5), node 3 never.  Hand check:
     phase 0: eligible {1} (only informed node is the source), delivered
     {1}, informed at end {0,1};
     phase 1: eligible {2} (neighbor 1 now informed), delivered {} — the
     zero-ratio phase, first receive falls outside;
     phase 2: eligible {2}, delivered {2}, informed {0,1,2}.  Phases run
     only to the last receive round, so node 3's eligibility after that
     is never scored. *)
  let g = Topo.path 4 in
  let received = [| 0; 1; 5; -1 |] in
  let stats =
    Analysis.decay_phases ~offsets:(Graph.offsets g) ~targets:(Graph.targets g)
      ~received_round:received ~source:0 ~ladder:2
  in
  let expect =
    [ (0, 0, 1, 1, 2); (1, 2, 1, 0, 2); (2, 4, 1, 1, 3) ]
  in
  Alcotest.(check int) "phase count" (List.length expect) (List.length stats);
  List.iter2
    (fun (p, s, e, d, ie) st ->
      Alcotest.(check int) "phase" p st.Analysis.phase;
      Alcotest.(check int) "start" s st.Analysis.start_round;
      Alcotest.(check int) "eligible" e st.Analysis.eligible;
      Alcotest.(check int) "delivered" d st.Analysis.delivered;
      Alcotest.(check int) "informed_end" ie st.Analysis.informed_end)
    expect stats;
  Alcotest.(check (float 1e-9)) "ratio" 1.0
    (Analysis.delivery_ratio (List.hd stats));
  Alcotest.(check bool) "empty phase ratio is nan" true
    (Float.is_nan
       (Analysis.delivery_ratio
          { Analysis.phase = 0; start_round = 0; eligible = 0; delivered = 0;
            informed_end = 0 }));
  Alcotest.(check (float 1e-9)) "min ratio sees the zero phase" 0.0
    (Analysis.min_delivery_ratio stats);
  Alcotest.(check bool) "min ratio nan when nothing qualifies" true
    (Float.is_nan (Analysis.min_delivery_ratio ~min_eligible:5 stats))

let test_shrink_factors () =
  Alcotest.(check (list (float 1e-9))) "plain halving" [ 2.0; 2.0 ]
    (Analysis.shrink_factors [ 8; 4; 2 ]);
  Alcotest.(check (list (float 1e-9))) "terminal zero" [ 4.0; infinity ]
    (Analysis.shrink_factors [ 8; 2; 0 ]);
  Alcotest.(check (list (float 1e-9))) "zero prefix skipped" [ 3.0 ]
    (Analysis.shrink_factors [ 0; 6; 2 ]);
  Alcotest.(check (list (float 1e-9))) "short input" []
    (Analysis.shrink_factors [ 5 ])

(* ------------------------------------------------------------------ *)
(* Acceptance property: sharded Decay fills the registry byte-identically *)

(* Everything Export can say about a registry, as one string. *)
let export_fingerprint m =
  String.concat "\n"
    (Export.round_jsonl m @ Export.phases_jsonl m @ Export.phases_csv m
    @ Export.hist_csv m
    @ [
        Export.summary_json m;
        Export.phase_deliveries_json m;
        Export.phase_tx_json m;
        Export.phase_collisions_json m;
      ])

let decay_fingerprint ?domains ~seed ~graph ~ladder () =
  let m = M.create ~phases:128 ~ring:4096 ~hist_bins:128 ~hist_width:ladder () in
  let rng = Rng.create ~seed in
  ignore (Decay.broadcast ?domains ~ladder ~metrics:m ~rng ~graph ~source:0 ());
  export_fingerprint m

let domain_counts = [ 1; 2; 4 ]

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"Decay obs export: sharded ≡ serial, domains 1/2/4"
      ~count:60
      (make
         ~print:(fun (n, extra, seed) ->
           Printf.sprintf "(n=%d,extra=%d,seed=%d)" n extra seed)
         Gen.(tup3 (int_range 2 48) (int_range 0 40) (int_range 0 100_000)))
      (fun (n, extra, seed) ->
        let rng = Rng.create ~seed in
        let graph = Topo.random_connected ~rng ~n ~extra in
        let ladder = max 1 (Ilog.clog n) in
        let base = decay_fingerprint ~seed ~graph ~ladder () in
        List.for_all
          (fun domains ->
            String.equal base
              (decay_fingerprint ~domains ~seed ~graph ~ladder ()))
          domain_counts);
  ]

(* And once on a fixed layered topology large enough that every shard owns
   work — the E-scale shape, unit-style so a failure prints the diff. *)
let test_decay_obs_layered () =
  let mkgraph () =
    Topo.layered_random ~rng:(Rng.create ~seed:5) ~depth:8 ~width:16 ~p:0.35
  in
  let graph = mkgraph () in
  let ladder = Ilog.clog (Graph.n graph) in
  let base = decay_fingerprint ~seed:42 ~graph ~ladder () in
  List.iter
    (fun domains ->
      Alcotest.(check string)
        (Printf.sprintf "domains=%d export" domains)
        base
        (decay_fingerprint ~domains ~seed:42 ~graph ~ladder ()))
    domain_counts;
  (* the registry saw real traffic — guard against a vacuous pass *)
  let m = M.create ~hist_width:ladder () in
  let r =
    Decay.broadcast ~ladder ~metrics:m ~rng:(Rng.create ~seed:42) ~graph
      ~source:0 ()
  in
  (match r.Decay.outcome with
  | Rn_radio.Engine.Completed _ -> ()
  | Rn_radio.Engine.Out_of_budget _ -> Alcotest.fail "broadcast did not finish");
  Alcotest.(check bool) "rounds recorded" true (M.rounds m > 0);
  Alcotest.(check bool) "receives observed" true (M.hist_count m > 0);
  Alcotest.(check bool) "several phases used" true (M.phases_used m > 1)

let () =
  Alcotest.run "rn_obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "create validation" `Quick test_create_validation;
          Alcotest.test_case "totals and phase bins" `Quick
            test_totals_and_phases;
          Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
          Alcotest.test_case "receive histogram" `Quick test_histogram;
          Alcotest.test_case "reset" `Quick test_reset;
        ] );
      ("export", [ Alcotest.test_case "formats" `Quick test_export_formats ]);
      ( "analysis",
        [
          Alcotest.test_case "decay phases (path)" `Quick
            test_decay_phases_path;
          Alcotest.test_case "shrink factors" `Quick test_shrink_factors;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "layered Decay export, domains 1/2/4" `Quick
            test_decay_obs_layered;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
