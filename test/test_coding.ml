open Rn_util
open Rn_coding

let rng () = Rng.create ~seed:777

(* ------------------------------------------------------------------ *)
(* Bitvec *)

let test_bitvec_get_set () =
  let v = Bitvec.create 130 in
  Alcotest.(check int) "length" 130 (Bitvec.length v);
  Alcotest.(check bool) "initially zero" true (Bitvec.is_zero v);
  Bitvec.set v 0 true;
  Bitvec.set v 63 true;
  Bitvec.set v 129 true;
  Alcotest.(check bool) "bit 0" true (Bitvec.get v 0);
  Alcotest.(check bool) "bit 63" true (Bitvec.get v 63);
  Alcotest.(check bool) "bit 129" true (Bitvec.get v 129);
  Alcotest.(check bool) "bit 64" false (Bitvec.get v 64);
  Alcotest.(check int) "popcount" 3 (Bitvec.popcount v);
  Bitvec.set v 63 false;
  Alcotest.(check bool) "cleared" false (Bitvec.get v 63)

let test_bitvec_out_of_bounds () =
  let v = Bitvec.create 8 in
  Alcotest.(check bool) "get oob raises" true
    (try
       ignore (Bitvec.get v 8);
       false
     with Invalid_argument _ -> true)

let test_bitvec_xor () =
  let a = Bitvec.of_string "1100" and b = Bitvec.of_string "1010" in
  Bitvec.xor_into ~dst:a b;
  Alcotest.(check string) "xor" "0110" (Bitvec.to_string a)

let test_bitvec_dot () =
  let a = Bitvec.of_string "1101" in
  Alcotest.(check bool) "odd overlap" true (Bitvec.dot a (Bitvec.of_string "1000"));
  Alcotest.(check bool) "even overlap" false (Bitvec.dot a (Bitvec.of_string "1100"));
  Alcotest.(check bool) "zero" false (Bitvec.dot a (Bitvec.of_string "0000"))

let test_bitvec_first_set () =
  Alcotest.(check (option int)) "none" None (Bitvec.first_set (Bitvec.create 70));
  Alcotest.(check (option int)) "bit 65" (Some 65)
    (Bitvec.first_set (Bitvec.unit 70 65));
  let v = Bitvec.of_string "00100100" in
  Alcotest.(check (option int)) "lowest" (Some 2) (Bitvec.first_set v)

let test_bitvec_string_roundtrip () =
  let s = "10110010011" in
  Alcotest.(check string) "roundtrip" s (Bitvec.to_string (Bitvec.of_string s))

let test_bitvec_unit () =
  let v = Bitvec.unit 5 3 in
  Alcotest.(check string) "unit" "00010" (Bitvec.to_string v)

let test_bitvec_clear_range () =
  (* Exhaustive over every [lo, hi) window of a 130-bit vector (three
     words), so every boundary offset is hit — including [hi - 1] at the
     top bit of a word, where a one-step mask shift would be an
     unspecified full-word [lsl] (a real bug once: [lsl] is
     right-associative, so an unparenthesized two-step shift composed the
     shift counts and left stale bits behind). *)
  let len = 130 in
  for lo = 0 to len do
    for hi = lo to len do
      let v = Bitvec.create len in
      for i = 0 to len - 1 do
        Bitvec.set v i true
      done;
      Bitvec.clear_range v ~lo ~hi;
      for i = 0 to len - 1 do
        let expect = i < lo || i >= hi in
        if Bitvec.get v i <> expect then
          Alcotest.failf "clear_range ~lo:%d ~hi:%d: bit %d = %b" lo hi i
            (not expect)
      done
    done
  done;
  Alcotest.(check_raises) "lo > hi rejected"
    (Invalid_argument "Bitvec.clear_range") (fun () ->
      Bitvec.clear_range (Bitvec.create 8) ~lo:5 ~hi:4)

(* rblint:allow R9 literal indices 62..64 against a fresh 100-bit vector; the test exercises the unchecked accessors themselves *)
let test_bitvec_unsafe_bits () =
  let v = Bitvec.create 100 in
  Bitvec.unsafe_set v 62;
  Bitvec.unsafe_set v 63;
  Alcotest.(check bool) "set 62" true (Bitvec.unsafe_get v 62);
  Alcotest.(check bool) "set 63" true (Bitvec.unsafe_get v 63);
  Alcotest.(check bool) "others untouched" false (Bitvec.unsafe_get v 64);
  Bitvec.unsafe_clear v 62;
  Alcotest.(check bool) "cleared 62" false (Bitvec.unsafe_get v 62);
  Alcotest.(check bool) "63 survives" true (Bitvec.unsafe_get v 63)

(* ------------------------------------------------------------------ *)
(* Rlnc *)

let random_msgs rng ~k ~len = Array.init k (fun _ -> Bitvec.random rng len)

let test_rlnc_source_packets_decode () =
  let rng = rng () in
  let msgs = random_msgs rng ~k:5 ~len:32 in
  let d = Rlnc.create ~k:5 ~msg_len:32 in
  Array.iteri
    (fun i _ ->
      let innovative = Rlnc.receive d (Rlnc.source_packet ~msgs i) in
      Alcotest.(check bool) "each source packet innovative" true innovative)
    msgs;
  Alcotest.(check bool) "can decode" true (Rlnc.can_decode d);
  match Rlnc.decode d with
  | None -> Alcotest.fail "decode failed"
  | Some out ->
      Array.iteri
        (fun i m ->
          Alcotest.(check string) "message recovered" (Bitvec.to_string msgs.(i))
            (Bitvec.to_string m))
        out

let test_rlnc_duplicate_not_innovative () =
  let rng = rng () in
  let msgs = random_msgs rng ~k:3 ~len:16 in
  let d = Rlnc.create ~k:3 ~msg_len:16 in
  let p = Rlnc.source_packet ~msgs 0 in
  Alcotest.(check bool) "first" true (Rlnc.receive d p);
  Alcotest.(check bool) "duplicate" false (Rlnc.receive d (Rlnc.source_packet ~msgs 0));
  Alcotest.(check int) "rank" 1 (Rlnc.rank d)

let test_rlnc_coded_packets_decode () =
  let rng = rng () in
  let k = 8 in
  let msgs = random_msgs rng ~k ~len:24 in
  let d = Rlnc.create ~k ~msg_len:24 in
  (* Feed random coded packets until full rank; must happen quickly. *)
  let steps = ref 0 in
  while not (Rlnc.can_decode d) && !steps < 200 do
    incr steps;
    let coeffs = Bitvec.random rng k in
    ignore (Rlnc.receive d (Rlnc.packet_of_coeffs ~msgs coeffs))
  done;
  Alcotest.(check bool) "decodes from random packets" true (Rlnc.can_decode d);
  Alcotest.(check bool) "within 3k packets" true (!steps <= 3 * k);
  match Rlnc.decode d with
  | None -> Alcotest.fail "decode failed"
  | Some out ->
      Array.iteri
        (fun i m ->
          Alcotest.(check string) "message recovered" (Bitvec.to_string msgs.(i))
            (Bitvec.to_string m))
        out

let test_rlnc_relay_chain () =
  (* Source -> relay -> sink, all by re-encoding: sink must still decode. *)
  let rng = rng () in
  let k = 6 in
  let msgs = random_msgs rng ~k ~len:16 in
  let src = Rlnc.create ~k ~msg_len:16 in
  Rlnc.seed_with_sources src ~msgs;
  Alcotest.(check bool) "source decodes" true (Rlnc.can_decode src);
  let relay = Rlnc.create ~k ~msg_len:16 and sink = Rlnc.create ~k ~msg_len:16 in
  let step () =
    (match Rlnc.encode rng src with
    | Some p -> ignore (Rlnc.receive relay p)
    | None -> ());
    match Rlnc.encode rng relay with
    | Some p -> ignore (Rlnc.receive sink p)
    | None -> ()
  in
  let steps = ref 0 in
  while not (Rlnc.can_decode sink) && !steps < 500 do
    incr steps;
    step ()
  done;
  Alcotest.(check bool) "sink decodes through relay" true (Rlnc.can_decode sink);
  match Rlnc.decode sink with
  | Some out ->
      Array.iteri
        (fun i m ->
          Alcotest.(check string) "payload intact" (Bitvec.to_string msgs.(i))
            (Bitvec.to_string m))
        out
  | None -> Alcotest.fail "decode failed"

let test_rlnc_infection_monotone () =
  let rng = rng () in
  let k = 4 in
  let msgs = random_msgs rng ~k ~len:8 in
  let d = Rlnc.create ~k ~msg_len:8 in
  let mu = Bitvec.of_string "1010" in
  Alcotest.(check bool) "not infected initially" false (Rlnc.infected d mu);
  ignore (Rlnc.receive d (Rlnc.source_packet ~msgs 0));
  Alcotest.(check bool) "infected by e0 (mu_0 = 1)" true (Rlnc.infected d mu);
  let mu' = Bitvec.of_string "0101" in
  Alcotest.(check bool) "not infected for orthogonal mu" false (Rlnc.infected d mu')

let test_rlnc_infected_all_iff_full_rank () =
  (* Proposition 3.9 second part: infected by all 2^k - 1 nonzero vectors
     iff the span is the full space. *)
  let rng = rng () in
  let k = 4 in
  let msgs = random_msgs rng ~k ~len:8 in
  let d = Rlnc.create ~k ~msg_len:8 in
  for i = 0 to k - 2 do
    ignore (Rlnc.receive d (Rlnc.source_packet ~msgs i))
  done;
  (* rank k-1: some nonzero mu must be uninfected *)
  let some_uninfected = ref false in
  for code = 1 to (1 lsl k) - 1 do
    let mu = Bitvec.create k in
    for b = 0 to k - 1 do
      if (code lsr b) land 1 = 1 then Bitvec.set mu b true
    done;
    if not (Rlnc.infected d mu) then some_uninfected := true
  done;
  Alcotest.(check bool) "rank k-1 leaves a blind spot" true !some_uninfected;
  ignore (Rlnc.receive d (Rlnc.source_packet ~msgs (k - 1)));
  for code = 1 to (1 lsl k) - 1 do
    let mu = Bitvec.create k in
    for b = 0 to k - 1 do
      if (code lsr b) land 1 = 1 then Bitvec.set mu b true
    done;
    Alcotest.(check bool) "full rank infects all" true (Rlnc.infected d mu)
  done

let test_rlnc_encode_in_span () =
  let rng = rng () in
  let k = 5 in
  let msgs = random_msgs rng ~k ~len:12 in
  let d = Rlnc.create ~k ~msg_len:12 in
  ignore (Rlnc.receive d (Rlnc.source_packet ~msgs 1));
  ignore (Rlnc.receive d (Rlnc.source_packet ~msgs 3));
  for _ = 1 to 50 do
    match Rlnc.encode rng d with
    | None -> Alcotest.fail "encode should produce packets"
    | Some p ->
        (* Coefficients must lie in span{e1, e3}. *)
        for b = 0 to k - 1 do
          if b <> 1 && b <> 3 then
            Alcotest.(check bool) "outside-span coeff zero" false
              (Bitvec.get p.Rlnc.coeffs b)
        done;
        (* Payload must match the coefficient combination. *)
        let expect = Rlnc.packet_of_coeffs ~msgs p.Rlnc.coeffs in
        Alcotest.(check string) "payload consistent"
          (Bitvec.to_string expect.Rlnc.payload)
          (Bitvec.to_string p.Rlnc.payload)
  done

let test_rlnc_empty_encode () =
  let d = Rlnc.create ~k:3 ~msg_len:4 in
  Alcotest.(check bool) "no packets before reception" true
    (Rlnc.encode (rng ()) d = None)

(* ------------------------------------------------------------------ *)
(* Fec *)

let test_fec_decodes_with_slack () =
  let rng = rng () in
  let k = 10 in
  let msgs = random_msgs rng ~k ~len:20 in
  let count = Fec.packets_needed ~k ~whp_slack:10 in
  let packets = Fec.encode rng ~msgs ~count in
  Alcotest.(check int) "packet count" count (Array.length packets);
  let d = Fec.decoder ~k ~msg_len:20 in
  Array.iter (fun p -> ignore (Rlnc.receive d p)) packets;
  Alcotest.(check bool) "decodes" true (Rlnc.can_decode d);
  match Rlnc.decode d with
  | Some out ->
      Array.iteri
        (fun i m ->
          Alcotest.(check string) "batch intact" (Bitvec.to_string msgs.(i))
            (Bitvec.to_string m))
        out
  | None -> Alcotest.fail "decode failed"

let test_fec_no_zero_packets () =
  let rng = rng () in
  let msgs = random_msgs rng ~k:4 ~len:8 in
  let packets = Fec.encode rng ~msgs ~count:40 in
  Array.iter
    (fun p ->
      Alcotest.(check bool) "nonzero coefficients" false
        (Bitvec.is_zero p.Rlnc.coeffs))
    packets

(* ------------------------------------------------------------------ *)
(* qcheck properties *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"xor is involutive" ~count:300
      (pair (int_range 1 200) (int_range 0 10_000))
      (fun (len, seed) ->
        let rng = Rng.create ~seed in
        let a = Bitvec.random rng len and b = Bitvec.random rng len in
        let a0 = Bitvec.copy a in
        Bitvec.xor_into ~dst:a b;
        Bitvec.xor_into ~dst:a b;
        Bitvec.equal a a0);
    Test.make ~name:"dot is bilinear in first arg" ~count:300
      (pair (int_range 1 100) (int_range 0 10_000))
      (fun (len, seed) ->
        let rng = Rng.create ~seed in
        let a = Bitvec.random rng len
        and b = Bitvec.random rng len
        and c = Bitvec.random rng len in
        let ab = Bitvec.copy a in
        Bitvec.xor_into ~dst:ab b;
        Bitvec.dot ab c = (Bitvec.dot a c <> Bitvec.dot b c));
    Test.make ~name:"rank never exceeds k and is monotone" ~count:100
      (pair (int_range 1 10) (int_range 0 10_000))
      (fun (k, seed) ->
        let rng = Rng.create ~seed in
        let msgs = Array.init k (fun _ -> Bitvec.random rng 8) in
        let d = Rlnc.create ~k ~msg_len:8 in
        let ok = ref true and prev = ref 0 in
        for _ = 1 to 30 do
          ignore (Rlnc.receive d (Rlnc.packet_of_coeffs ~msgs (Bitvec.random rng k)));
          let r = Rlnc.rank d in
          if r < !prev || r > k then ok := false;
          prev := r
        done;
        !ok);
    Test.make ~name:"decode inverts encode for any reception order" ~count:100
      (pair (int_range 1 8) (int_range 0 10_000))
      (fun (k, seed) ->
        let rng = Rng.create ~seed in
        let msgs = Array.init k (fun _ -> Bitvec.random rng 16) in
        let idx = Array.init k (fun i -> i) in
        Rng.shuffle rng idx;
        let d = Rlnc.create ~k ~msg_len:16 in
        Array.iter (fun i -> ignore (Rlnc.receive d (Rlnc.source_packet ~msgs i))) idx;
        match Rlnc.decode d with
        | None -> false
        | Some out ->
            Array.for_all2 (fun a b -> Bitvec.equal a b) msgs out);
    Test.make ~name:"infection is preserved by innovative receptions" ~count:100
      (pair (int_range 2 8) (int_range 0 10_000))
      (fun (k, seed) ->
        let rng = Rng.create ~seed in
        let msgs = Array.init k (fun _ -> Bitvec.random rng 8) in
        let d = Rlnc.create ~k ~msg_len:8 in
        let mu = Bitvec.random rng k in
        let ok = ref true in
        for _ = 1 to 20 do
          let was = Rlnc.infected d mu in
          ignore (Rlnc.receive d (Rlnc.packet_of_coeffs ~msgs (Bitvec.random rng k)));
          if was && not (Rlnc.infected d mu) then ok := false
        done;
        !ok);
  ]

let () =
  Alcotest.run "rn_coding"
    [
      ( "bitvec",
        [
          Alcotest.test_case "get/set" `Quick test_bitvec_get_set;
          Alcotest.test_case "bounds" `Quick test_bitvec_out_of_bounds;
          Alcotest.test_case "xor" `Quick test_bitvec_xor;
          Alcotest.test_case "dot" `Quick test_bitvec_dot;
          Alcotest.test_case "first_set" `Quick test_bitvec_first_set;
          Alcotest.test_case "string roundtrip" `Quick test_bitvec_string_roundtrip;
          Alcotest.test_case "unit vector" `Quick test_bitvec_unit;
          Alcotest.test_case "clear_range exhaustive" `Quick
            test_bitvec_clear_range;
          Alcotest.test_case "unsafe bit ops" `Quick test_bitvec_unsafe_bits;
        ] );
      ( "rlnc",
        [
          Alcotest.test_case "source packets decode" `Quick
            test_rlnc_source_packets_decode;
          Alcotest.test_case "duplicates not innovative" `Quick
            test_rlnc_duplicate_not_innovative;
          Alcotest.test_case "coded packets decode" `Quick
            test_rlnc_coded_packets_decode;
          Alcotest.test_case "relay chain" `Quick test_rlnc_relay_chain;
          Alcotest.test_case "infection basic" `Quick test_rlnc_infection_monotone;
          Alcotest.test_case "infected-all iff full rank" `Quick
            test_rlnc_infected_all_iff_full_rank;
          Alcotest.test_case "encode stays in span" `Quick test_rlnc_encode_in_span;
          Alcotest.test_case "empty encode" `Quick test_rlnc_empty_encode;
        ] );
      ( "fec",
        [
          Alcotest.test_case "decodes with slack" `Quick test_fec_decodes_with_slack;
          Alcotest.test_case "no zero packets" `Quick test_fec_no_zero_packets;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
