(* Equivalence of the sparse event-driven engine with the serial reference:
   same outcome, same stats, same per-node receive log (modulo the silence
   no-op contract: the sparse path elides zero-transmitter Silence
   deliveries, so logs are compared with Silence entries filtered from both
   sides — collision counts in stats pin the collided-Silence deliveries
   that both engines perform), same after_round sequence, and a
   byte-identical metrics export (per-round ring rows included).  The
   tracing path must be *strictly* identical — it delegates to Engine.run —
   so traced runs compare raw logs and event lists too.  The silent-round
   skip is exercised with a hint derived from the script itself, and its
   contract edges (lying hint, backwards hint, stop mid-stretch, decide
   never called while skipping) are pinned as unit tests. *)

open Rn_util
open Rn_graph
module Topo = Rn_graph.Gen
open Rn_radio

let make_script ~rng ~n ~rounds =
  Array.init rounds (fun r ->
      Array.init n (fun v ->
          match Rng.int rng 4 with
          | 0 -> Engine.Sleep
          | 1 | 2 -> Engine.Listen
          | _ -> Engine.Transmit ((r * 10_000) + v)))

(* Sparse scripts leave most rounds with zero transmitters, so the skip
   hint has real stretches to fast-forward. *)
let make_sparse_script ~rng ~n ~rounds =
  Array.init rounds (fun r ->
      if Rng.int rng 4 <> 0 then
        (* silent round: listeners and sleepers only *)
        Array.init n (fun _ ->
            if Rng.int rng 2 = 0 then Engine.Sleep else Engine.Listen)
      else
        Array.init n (fun v ->
            match Rng.int rng 4 with
            | 0 -> Engine.Sleep
            | 1 | 2 -> Engine.Listen
            | _ -> Engine.Transmit ((r * 10_000) + v)))

type 'msg observation = {
  obs_outcome : Engine.outcome;
  obs_logs : (int * 'msg Engine.reception) list array;  (* per node *)
  obs_events : (int * 'msg Engine.trace_event list) list;
  obs_after : int list;
  obs_stats : Engine.stats;
  obs_export : string;  (* full metrics export, ring rows included *)
}

let export_fingerprint m =
  String.concat "\n"
    (Rn_obs.Export.round_jsonl m
    @ Rn_obs.Export.phases_jsonl m
    @ [ Rn_obs.Export.summary_json m ])

let observe ?decide_active ?next_busy_round ~engine ~tracing ~graph ~detection
    ~script ~max_rounds () =
  let n = Graph.n graph in
  let logs = Array.make (max n 1) [] in
  let events = ref [] and after = ref [] in
  let stats = Engine.fresh_stats () in
  let metrics = Rn_obs.Metrics.create ~ring:(max_rounds + 1) () in
  let decide ~round ~node =
    if round < Array.length script then script.(round).(node) else Engine.Listen
  in
  let deliver ~round ~node reception =
    logs.(node) <- (round, reception) :: logs.(node)
  in
  let protocol = { Engine.decide; deliver } in
  let on_round =
    if tracing then Some (fun ~round evs -> events := (round, evs) :: !events)
    else None
  in
  let after_round ~round = after := round :: !after in
  let stop ~round:_ = false in
  let outcome =
    match engine with
    | `Dense ->
        Engine.run ~stats ~metrics ?on_round ~after_round ?decide_active
          ~validate:true ~graph ~detection ~protocol ~stop ~max_rounds ()
    | `Sparse ->
        Engine_sparse.run ~stats ~metrics ?on_round ~after_round ?decide_active
          ?next_busy_round ~validate:true ~graph ~detection ~protocol ~stop
          ~max_rounds ()
  in
  {
    obs_outcome = outcome;
    obs_logs = logs;
    obs_events = !events;
    obs_after = !after;
    obs_stats = stats;
    obs_export = export_fingerprint metrics;
  }

let drop_silence logs =
  Array.map
    (List.filter (fun (_, r) -> r <> Engine.Silence))
    logs

(* Non-tracing comparison: everything except raw logs, which are compared
   modulo elided zero-transmitter Silence deliveries. *)
let same_observation_sparse a b =
  a.obs_outcome = b.obs_outcome
  && drop_silence a.obs_logs = drop_silence b.obs_logs
  && a.obs_after = b.obs_after && a.obs_stats = b.obs_stats
  && String.equal a.obs_export b.obs_export

(* Tracing comparison: strict, raw logs and event stream included. *)
let same_observation_strict a b =
  a.obs_outcome = b.obs_outcome && a.obs_logs = b.obs_logs
  && a.obs_events = b.obs_events && a.obs_after = b.obs_after
  && a.obs_stats = b.obs_stats && String.equal a.obs_export b.obs_export

(* A sound skip hint computed from the script: next round >= r with at
   least one Transmit action (max_rounds when the tail is all-silent). *)
let script_hint script max_rounds =
  let rounds = Array.length script in
  let busy r =
    r < rounds
    && Array.exists
         (function Engine.Transmit _ -> true | _ -> false)
         script.(r)
  in
  let next = Array.make (max_rounds + 1) max_rounds in
  for r = max_rounds - 1 downto 0 do
    next.(r) <- (if busy r then r else next.(r + 1))
  done;
  fun ~round -> if round >= max_rounds then round else next.(round)

let arb_case =
  QCheck.make
    ~print:(fun (n, extra, rounds, seed, cd) ->
      Printf.sprintf "(n=%d,extra=%d,rounds=%d,seed=%d,cd=%b)" n extra rounds
        seed cd)
    QCheck.Gen.(
      tup5 (int_range 2 40) (int_range 0 30) (int_range 1 12)
        (int_range 0 100_000) bool)

let detection_of cd =
  if cd then Engine.Collision_detection else Engine.No_collision_detection

let setup ?(sparse = false) (n, extra, rounds, seed, cd) =
  let rng = Rng.create ~seed in
  let g = Topo.random_connected ~rng ~n ~extra in
  let script =
    if sparse then make_sparse_script ~rng ~n ~rounds
    else make_script ~rng ~n ~rounds
  in
  (g, script, detection_of cd, rounds)

let awake_set script n ~round (buf : int array) =
  let k = ref 0 in
  if round < Array.length script then
    for v = 0 to n - 1 do
      match script.(round).(v) with
      | Engine.Sleep -> ()
      | Engine.Listen | Engine.Transmit _ ->
          buf.(!k) <- v;
          incr k
    done
  else
    for v = 0 to n - 1 do
      buf.(v) <- v;
      incr k
    done;
  !k

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"sparse ≡ dense (full scan)" ~count:300 arb_case
      (fun case ->
        let g, script, detection, rounds = setup case in
        let a =
          observe ~engine:`Dense ~tracing:false ~graph:g ~detection ~script
            ~max_rounds:rounds ()
        in
        let b =
          observe ~engine:`Sparse ~tracing:false ~graph:g ~detection ~script
            ~max_rounds:rounds ()
        in
        same_observation_sparse a b);
    Test.make ~name:"sparse ≡ dense (decide_active)" ~count:200 arb_case
      (fun case ->
        let g, script, detection, rounds = setup case in
        let da = awake_set script (Graph.n g) in
        let a =
          observe ~decide_active:da ~engine:`Dense ~tracing:false ~graph:g
            ~detection ~script ~max_rounds:rounds ()
        in
        let b =
          observe ~decide_active:da ~engine:`Sparse ~tracing:false ~graph:g
            ~detection ~script ~max_rounds:rounds ()
        in
        same_observation_sparse a b);
    Test.make ~name:"sparse+skip ≡ dense (sparse schedules, ±decide_active)"
      ~count:300
      (pair arb_case bool)
      (fun (case, use_da) ->
        let g, script, detection, rounds = setup ~sparse:true case in
        let hint = script_hint script rounds in
        let da =
          if use_da then Some (awake_set script (Graph.n g)) else None
        in
        let a =
          observe ?decide_active:da ~engine:`Dense ~tracing:false ~graph:g
            ~detection ~script ~max_rounds:rounds ()
        in
        let b =
          observe ?decide_active:da ~next_busy_round:hint ~engine:`Sparse
            ~tracing:false ~graph:g ~detection ~script ~max_rounds:rounds ()
        in
        same_observation_sparse a b);
    Test.make ~name:"sparse tracing ≡ dense tracing (strict)" ~count:150
      arb_case
      (fun case ->
        let g, script, detection, rounds = setup case in
        let a =
          observe ~engine:`Dense ~tracing:true ~graph:g ~detection ~script
            ~max_rounds:rounds ()
        in
        let b =
          observe ~engine:`Sparse ~tracing:true ~graph:g ~detection ~script
            ~max_rounds:rounds ()
        in
        same_observation_strict a b);
    (* A "useless" hint (never promises silence) must change nothing. *)
    Test.make ~name:"sparse with hint=round ≡ sparse without" ~count:100
      arb_case
      (fun case ->
        let g, script, detection, rounds = setup case in
        let a =
          observe ~engine:`Sparse ~tracing:false ~graph:g ~detection ~script
            ~max_rounds:rounds ()
        in
        let b =
          observe ~next_busy_round:(fun ~round -> round) ~engine:`Sparse
            ~tracing:false ~graph:g ~detection ~script ~max_rounds:rounds ()
        in
        same_observation_sparse a b);
  ]

(* ------------------------------------------------------------------ *)
(* Skip-contract unit tests *)

let listen_protocol () =
  {
    Engine.decide = (fun ~round:_ ~node:_ -> Engine.Listen);
    deliver = (fun ~round:_ ~node:_ _ -> ());
  }

(* decide must never run during a skipped stretch. *)
let test_skip_elides_decide () =
  let n = 5 in
  let g = Topo.path n in
  let calls = Array.make 16 0 in
  let p =
    {
      Engine.decide =
        (fun ~round ~node ->
          calls.(round) <- calls.(round) + 1;
          if round = 0 || round = 9 then
            if node = 2 then Engine.Transmit round else Engine.Listen
          else Engine.Listen);
      deliver = (fun ~round:_ ~node:_ _ -> ());
    }
  in
  let hint ~round = if round = 0 then 0 else if round <= 9 then 9 else round in
  let after = ref [] in
  let outcome =
    Engine_sparse.run ~next_busy_round:hint
      ~after_round:(fun ~round -> after := round :: !after)
      ~graph:g ~detection:Engine.Collision_detection ~protocol:p
      ~stop:(fun ~round:_ -> false)
      ~max_rounds:12 ()
  in
  Alcotest.(check bool) "out of budget" true (outcome = Engine.Out_of_budget 12);
  for r = 0 to 11 do
    let expected = if r >= 1 && r <= 8 then 0 else n in
    Alcotest.(check int) (Printf.sprintf "decide calls round %d" r) expected
      calls.(r)
  done;
  (* after_round fires on every round, skipped or not. *)
  Alcotest.(check (list int)) "after_round every round"
    (List.init 12 (fun i -> 11 - i))
    !after

(* stop is checked before each round, including inside a skipped stretch. *)
let test_stop_mid_stretch () =
  let g = Topo.path 4 in
  let outcome =
    Engine_sparse.run
      ~next_busy_round:(fun ~round:_ -> 1_000_000)
      ~graph:g ~detection:Engine.Collision_detection
      ~protocol:(listen_protocol ())
      ~stop:(fun ~round -> round = 5)
      ~max_rounds:100 ()
  in
  Alcotest.(check bool) "completed at 5" true (outcome = Engine.Completed 5)

(* A hint that goes backwards is a contract violation the engine detects. *)
let test_backwards_hint_raises () =
  let g = Topo.path 3 in
  Alcotest.check_raises "backwards hint rejected"
    (Invalid_argument "Engine_sparse.run: next_busy_round went backwards")
    (fun () ->
      ignore
        (Engine_sparse.run
           ~next_busy_round:(fun ~round -> round - 1)
           ~graph:g ~detection:Engine.Collision_detection
           ~protocol:(listen_protocol ())
           ~stop:(fun ~round:_ -> false)
           ~max_rounds:4 ()))

(* A hint that lies — claims silence over rounds where the protocol would
   transmit — is *obeyed*, not detected: the engine skips exactly so it
   can avoid asking every node, so it cannot check the claim.  This pins
   the documented contract (DESIGN §12): soundness is the protocol's
   obligation. *)
let test_lying_hint_is_obeyed () =
  let n = 4 in
  let g = Topo.path n in
  let stats = Engine.fresh_stats () in
  let p =
    {
      (* would transmit every round from every node *)
      Engine.decide = (fun ~round ~node:_ -> Engine.Transmit round);
      deliver = (fun ~round:_ ~node:_ _ -> ());
    }
  in
  let outcome =
    Engine_sparse.run ~stats
      ~next_busy_round:(fun ~round:_ -> max_int)
      ~graph:g ~detection:Engine.Collision_detection ~protocol:p
      ~stop:(fun ~round:_ -> false)
      ~max_rounds:50 ()
  in
  Alcotest.(check bool) "ran to budget" true (outcome = Engine.Out_of_budget 50);
  Alcotest.(check int) "clock still ticked" 50 stats.Engine.rounds;
  Alcotest.(check int) "no transmissions simulated" 0 stats.Engine.transmissions

(* Skipped rounds land in the skipped tally, simulated rounds in the
   simulated tally, and they partition stats.rounds. *)
let test_honest_accounting () =
  let n = 6 in
  let g = Topo.path n in
  let p =
    {
      Engine.decide =
        (fun ~round ~node ->
          if round mod 10 = 0 && node = 0 then Engine.Transmit round
          else Engine.Listen);
      deliver = (fun ~round:_ ~node:_ _ -> ());
    }
  in
  let hint ~round =
    if round mod 10 = 0 then round else round + (10 - (round mod 10))
  in
  let stats = Engine.fresh_stats () in
  let sim0 = Engine.total_simulated_rounds () in
  let skip0 = Engine.total_skipped_rounds () in
  let outcome =
    Engine_sparse.run ~stats ~next_busy_round:hint ~graph:g
      ~detection:Engine.Collision_detection ~protocol:p
      ~stop:(fun ~round:_ -> false)
      ~max_rounds:100 ()
  in
  let sim = Engine.total_simulated_rounds () - sim0 in
  let skip = Engine.total_skipped_rounds () - skip0 in
  Alcotest.(check bool) "budget" true (outcome = Engine.Out_of_budget 100);
  Alcotest.(check int) "clock counts both" 100 stats.Engine.rounds;
  Alcotest.(check int) "simulated = busy rounds only" 10 sim;
  Alcotest.(check int) "skipped = the other 90" 90 skip

let test_single_node () =
  let g = Topo.path 1 in
  let script =
    [| [| Engine.Transmit 3 |]; [| Engine.Listen |]; [| Engine.Sleep |] |]
  in
  let a =
    observe ~engine:`Dense ~tracing:false ~graph:g
      ~detection:Engine.Collision_detection ~script ~max_rounds:3 ()
  in
  let b =
    observe ~engine:`Sparse ~tracing:false ~graph:g
      ~detection:Engine.Collision_detection ~script ~max_rounds:3 ()
  in
  Alcotest.(check bool) "n=1 matches" true (same_observation_sparse a b)

(* Wrapper-level equivalence: the protocol wrappers default to the sparse
   engine, so each must give byte-identical results under [Engine.Dense]
   and [Engine.Sparse] from the same seed — the per-node RNG streams must
   advance exactly as under the full scan even though the sparse path
   elides sleeping nodes' decides and fast-forwards silent stretches. *)

let test_wrapper_decay () =
  let rng = Rng.create ~seed:421 in
  let g = Topo.random_connected ~rng ~n:60 ~extra:40 in
  let run engine =
    Rn_broadcast.Decay.broadcast ~engine ~rng:(Rng.create ~seed:7) ~graph:g
      ~source:0 ()
  in
  let a = run Engine.Dense and b = run Engine.Sparse in
  Alcotest.(check bool) "outcome" true (a.Rn_broadcast.Decay.outcome = b.Rn_broadcast.Decay.outcome);
  Alcotest.(check (array int)) "received rounds"
    a.Rn_broadcast.Decay.received_round b.Rn_broadcast.Decay.received_round;
  Alcotest.(check bool) "stats" true
    (a.Rn_broadcast.Decay.stats = b.Rn_broadcast.Decay.stats)

let test_wrapper_cr () =
  let rng = Rng.create ~seed:422 in
  let g = Topo.random_connected ~rng ~n:60 ~extra:30 in
  let run engine =
    Rn_broadcast.Baselines.cr_broadcast ~engine ~rng:(Rng.create ~seed:9)
      ~graph:g ~source:0 ~diameter:8 ()
  in
  let a = run Engine.Dense and b = run Engine.Sparse in
  Alcotest.(check bool) "outcome" true (a.Rn_broadcast.Decay.outcome = b.Rn_broadcast.Decay.outcome);
  Alcotest.(check (array int)) "received rounds"
    a.Rn_broadcast.Decay.received_round b.Rn_broadcast.Decay.received_round;
  Alcotest.(check bool) "stats" true
    (a.Rn_broadcast.Decay.stats = b.Rn_broadcast.Decay.stats)

let test_wrapper_recruiting () =
  let rng = Rng.create ~seed:423 in
  let n = 40 in
  let g = Topo.random_connected ~rng ~n ~extra:60 in
  let reds = Array.init (n / 2) (fun i -> i) in
  let blues = Array.init (n - (n / 2)) (fun i -> (n / 2) + i) in
  let run engine =
    Rn_broadcast.Recruiting.run_standalone ~engine ~rng:(Rng.create ~seed:11)
      ~params:Rn_broadcast.Params.default ~graph:g ~reds ~blues ()
  in
  let a = run Engine.Dense and b = run Engine.Sparse in
  Alcotest.(check bool) "outcome record" true (a = b)

let test_wrapper_bipartite () =
  let rng = Rng.create ~seed:424 in
  let n = 40 in
  let g = Topo.random_connected ~rng ~n ~extra:60 in
  let reds = Array.init (n / 2) (fun i -> i) in
  let blues = Array.init (n - (n / 2)) (fun i -> (n / 2) + i) in
  let blue_ranks = Array.make n 1 in
  let run engine =
    Rn_broadcast.Bipartite_assignment.run_standalone ~engine
      ~rng:(Rng.create ~seed:13) ~params:Rn_broadcast.Params.default ~graph:g
      ~reds ~blues ~blue_ranks ()
  in
  let a = run Engine.Dense and b = run Engine.Sparse in
  Alcotest.(check bool) "outcome record" true (a = b)

let test_wrapper_construct () =
  let rng = Rng.create ~seed:425 in
  let g = Topo.random_connected ~rng ~n:50 ~extra:50 in
  List.iter
    (fun mode ->
      let run engine =
        Rn_broadcast.Gst_distributed.construct ~mode ~learn_vd:true
          ~engine ~rng:(Rng.create ~seed:17) ~graph:g ~roots:[| 0 |] ()
      in
      let a = run Engine.Dense and b = run Engine.Sparse in
      Alcotest.(check bool) "whole result record" true (a = b))
    [ Rn_broadcast.Gst_distributed.Sequential;
      Rn_broadcast.Gst_distributed.Pipelined ]

let test_wrapper_single_broadcast () =
  let rng = Rng.create ~seed:426 in
  let g = Topo.random_connected ~rng ~n:50 ~extra:40 in
  let run engine =
    Rn_broadcast.Single_broadcast.run ~engine ~rng:(Rng.create ~seed:19)
      ~graph:g ~source:0 ()
  in
  let a = run Engine.Dense and b = run Engine.Sparse in
  Alcotest.(check bool) "whole result record" true (a = b);
  Alcotest.(check bool) "delivered" true a.Rn_broadcast.Single_broadcast.delivered

let test_wrapper_multi_broadcast () =
  let rng = Rng.create ~seed:427 in
  let g = Topo.random_connected ~rng ~n:40 ~extra:40 in
  let run engine =
    Rn_broadcast.Multi_broadcast.unknown ~engine ~rng:(Rng.create ~seed:23)
      ~graph:g ~source:0 ~k:4 ()
  in
  let a = run Engine.Dense and b = run Engine.Sparse in
  Alcotest.(check bool) "whole result record" true (a = b);
  let runk engine =
    Rn_broadcast.Multi_broadcast.known ~engine ~rng:(Rng.create ~seed:29)
      ~graph:g ~source:0 ~k:4 ()
  in
  let ka = runk Engine.Dense and kb = runk Engine.Sparse in
  Alcotest.(check bool) "known result record" true (ka = kb)

let () =
  Alcotest.run "engine_sparse"
    [
      ( "skip contract",
        [
          Alcotest.test_case "decide elided while skipping" `Quick
            test_skip_elides_decide;
          Alcotest.test_case "stop mid-stretch" `Quick test_stop_mid_stretch;
          Alcotest.test_case "backwards hint raises" `Quick
            test_backwards_hint_raises;
          Alcotest.test_case "lying hint obeyed (documented)" `Quick
            test_lying_hint_is_obeyed;
          Alcotest.test_case "skipped vs simulated accounting" `Quick
            test_honest_accounting;
          Alcotest.test_case "single node" `Quick test_single_node;
        ] );
      ( "wrappers",
        [
          Alcotest.test_case "Decay dense ≡ sparse" `Quick test_wrapper_decay;
          Alcotest.test_case "CR baseline dense ≡ sparse" `Quick
            test_wrapper_cr;
          Alcotest.test_case "Recruiting dense ≡ sparse" `Quick
            test_wrapper_recruiting;
          Alcotest.test_case "Bipartite dense ≡ sparse" `Quick
            test_wrapper_bipartite;
          Alcotest.test_case "GST construct dense ≡ sparse" `Quick
            test_wrapper_construct;
          Alcotest.test_case "Thm 1.1 pipeline dense ≡ sparse" `Quick
            test_wrapper_single_broadcast;
          Alcotest.test_case "Thm 1.3 pipeline dense ≡ sparse" `Quick
            test_wrapper_multi_broadcast;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
