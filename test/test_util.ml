open Rn_util

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_determinism () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  Alcotest.(check int) "different seeds diverge" 0 !same

let test_rng_split_independent () =
  let parent = Rng.create ~seed:7 in
  let c1 = Rng.split parent in
  let c2 = Rng.split parent in
  Alcotest.(check bool) "children differ" true (Rng.bits64 c1 <> Rng.bits64 c2)

let test_rng_int_bounds () =
  let rng = Rng.create ~seed:3 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 7 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 7)
  done

let test_rng_int_uniformish () =
  let rng = Rng.create ~seed:5 in
  let counts = Array.make 4 0 in
  let trials = 40_000 in
  for _ = 1 to trials do
    let v = Rng.int rng 4 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c ->
      let f = float_of_int c /. float_of_int trials in
      Alcotest.(check bool) "roughly uniform" true (f > 0.23 && f < 0.27))
    counts

let test_rng_float_bounds () =
  let rng = Rng.create ~seed:11 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 2.5 in
    Alcotest.(check bool) "in range" true (v >= 0.0 && v < 2.5)
  done

let test_rng_bernoulli_extremes () =
  let rng = Rng.create ~seed:13 in
  Alcotest.(check bool) "p=0 never" false (Rng.bernoulli rng 0.0);
  Alcotest.(check bool) "p=1 always" true (Rng.bernoulli rng 1.0);
  Alcotest.(check bool) "p<0 never" false (Rng.bernoulli rng (-1.0))

let test_rng_bernoulli_rate () =
  let rng = Rng.create ~seed:17 in
  let hits = ref 0 and trials = 50_000 in
  for _ = 1 to trials do
    if Rng.bernoulli rng 0.125 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int trials in
  Alcotest.(check bool) "close to 1/8" true (rate > 0.11 && rate < 0.14)

let test_rng_shuffle_permutation () =
  let rng = Rng.create ~seed:19 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

let test_rng_sample_without_replacement () =
  let rng = Rng.create ~seed:23 in
  let s = Rng.sample_without_replacement rng 10 30 in
  Alcotest.(check int) "size" 10 (Array.length s);
  let sorted = Array.copy s in
  Array.sort compare sorted;
  for i = 1 to 9 do
    Alcotest.(check bool) "distinct" true (sorted.(i) > sorted.(i - 1))
  done;
  Array.iter
    (fun v -> Alcotest.(check bool) "in range" true (v >= 0 && v < 30))
    s

let test_rng_copy_replays () =
  let rng = Rng.create ~seed:29 in
  ignore (Rng.bits64 rng);
  let dup = Rng.copy rng in
  Alcotest.(check int64) "copy replays" (Rng.bits64 rng) (Rng.bits64 dup)

(* ------------------------------------------------------------------ *)
(* Ilog *)

let test_ilog_small_values () =
  Alcotest.(check int) "floor 1" 0 (Ilog.floor_log2 1);
  Alcotest.(check int) "floor 2" 1 (Ilog.floor_log2 2);
  Alcotest.(check int) "floor 3" 1 (Ilog.floor_log2 3);
  Alcotest.(check int) "floor 1024" 10 (Ilog.floor_log2 1024);
  Alcotest.(check int) "ceil 1" 0 (Ilog.ceil_log2 1);
  Alcotest.(check int) "ceil 3" 2 (Ilog.ceil_log2 3);
  Alcotest.(check int) "ceil 1024" 10 (Ilog.ceil_log2 1024);
  Alcotest.(check int) "ceil 1025" 11 (Ilog.ceil_log2 1025);
  Alcotest.(check int) "clog 1" 1 (Ilog.clog 1);
  Alcotest.(check int) "clog 2" 1 (Ilog.clog 2);
  Alcotest.(check int) "clog 100" 7 (Ilog.clog 100)

let test_ilog_pow () =
  Alcotest.(check int) "2^0" 1 (Ilog.pow2 0);
  Alcotest.(check int) "2^10" 1024 (Ilog.pow2 10);
  Alcotest.(check int) "3^4" 81 (Ilog.pow 3 4);
  Alcotest.(check int) "5^0" 1 (Ilog.pow 5 0);
  Alcotest.(check int) "7^1" 7 (Ilog.pow 7 1)

let test_ilog_isqrt () =
  Alcotest.(check int) "isqrt 0" 0 (Ilog.isqrt 0);
  Alcotest.(check int) "isqrt 1" 1 (Ilog.isqrt 1);
  Alcotest.(check int) "isqrt 15" 3 (Ilog.isqrt 15);
  Alcotest.(check int) "isqrt 16" 4 (Ilog.isqrt 16);
  Alcotest.(check int) "isqrt 17" 4 (Ilog.isqrt 17)

let test_ilog_cdiv () =
  Alcotest.(check int) "7/2" 4 (Ilog.cdiv 7 2);
  Alcotest.(check int) "8/2" 4 (Ilog.cdiv 8 2);
  Alcotest.(check int) "0/5" 0 (Ilog.cdiv 0 5)

let test_ilog_invalid () =
  Alcotest.check_raises "floor_log2 0" (Invalid_argument "Ilog.floor_log2")
    (fun () -> ignore (Ilog.floor_log2 0))

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_mean_stddev () =
  check_float "mean" 3.0 (Stats.mean [| 1.0; 2.0; 3.0; 4.0; 5.0 |]);
  check_float "stddev" (sqrt 2.5) (Stats.stddev [| 1.0; 2.0; 3.0; 4.0; 5.0 |]);
  check_float "stddev singleton" 0.0 (Stats.stddev [| 9.0 |])

let test_stats_median_percentile () =
  check_float "odd median" 2.0 (Stats.median [| 3.0; 1.0; 2.0 |]);
  check_float "even median" 2.5 (Stats.median [| 4.0; 1.0; 2.0; 3.0 |]);
  check_float "p0" 1.0 (Stats.percentile [| 1.0; 2.0; 3.0 |] 0.0);
  check_float "p100" 3.0 (Stats.percentile [| 1.0; 2.0; 3.0 |] 100.0)

let test_stats_summary () =
  let s = Stats.summarize [| 2.0; 4.0; 6.0; 8.0 |] in
  Alcotest.(check int) "n" 4 s.Stats.n;
  check_float "min" 2.0 s.Stats.min;
  check_float "max" 8.0 s.Stats.max;
  check_float "median" 5.0 s.Stats.median

let test_stats_linear_fit_exact () =
  let pts = [ (1.0, 5.0); (2.0, 7.0); (3.0, 9.0) ] in
  let f = Stats.linear_fit pts in
  check_float "slope" 2.0 f.Stats.slope;
  check_float "intercept" 3.0 f.Stats.intercept;
  check_float "r2" 1.0 f.Stats.r2

let test_stats_linear_fit_r2 () =
  let pts = [ (1.0, 1.0); (2.0, 3.0); (3.0, 2.0); (4.0, 5.0) ] in
  let f = Stats.linear_fit pts in
  Alcotest.(check bool) "r2 in [0,1]" true (f.Stats.r2 >= 0.0 && f.Stats.r2 <= 1.0)

let test_stats_two_predictor_exact () =
  (* y = 2 x1 + 3 x2 + 5, exactly. *)
  let pts =
    [ (1.0, 1.0, 10.0); (2.0, 1.0, 12.0); (1.0, 2.0, 13.0); (3.0, 4.0, 23.0);
      (0.0, 0.0, 5.0) ]
  in
  let f = Stats.two_predictor_fit pts in
  check_float "a" 2.0 f.Stats.a;
  check_float "b" 3.0 f.Stats.b;
  check_float "c" 5.0 f.Stats.c;
  check_float "r2" 1.0 f.Stats.r2_2

let test_stats_two_predictor_singular () =
  (* x2 = 2 x1 everywhere: collinear predictors must be rejected. *)
  Alcotest.(check bool) "raises" true
    (try
       ignore
         (Stats.two_predictor_fit
            [ (1.0, 2.0, 1.0); (2.0, 4.0, 2.0); (3.0, 6.0, 3.0) ]);
       false
     with Invalid_argument _ -> true)

let test_stats_ratio_spread () =
  let m, spread = Stats.ratio_spread [ (1.0, 2.0); (2.0, 4.0); (4.0, 8.0) ] in
  check_float "mean ratio" 2.0 m;
  check_float "spread" 1.0 spread

(* The summary's min/max must order by Float.compare like its percentiles:
   NaN below every number, and independent of where NaN sits in the input.
   (The old polymorphic fold returned a NaN-position-dependent number.) *)
let test_stats_nan_summary () =
  let check xs =
    let s = Stats.summarize xs in
    Alcotest.(check bool) "min is NaN" true (Float.is_nan s.Stats.min);
    check_float "max ignores NaN" 2.0 s.Stats.max;
    (* consistency with the percentile path of the same summary *)
    Alcotest.(check int) "min = p0 under Float.compare" 0
      (Float.compare s.Stats.min (Stats.percentile xs 0.0));
    check_float "max = p100" (Stats.percentile xs 100.0) s.Stats.max
  in
  check [| 1.0; nan; 2.0 |];
  check [| nan; 1.0; 2.0 |];
  check [| 1.0; 2.0; nan |];
  let s = Stats.summarize [| nan; nan |] in
  Alcotest.(check bool) "all-NaN max" true (Float.is_nan s.Stats.max)

let test_stats_ratio_spread_zero () =
  (* x = 0.0 points are dropped by a float-equality test; -0.0 = 0.0 so a
     negative zero is dropped too (no division by -0.0 → -infinity). *)
  let m, spread = Stats.ratio_spread [ (0.0, 5.0); (1.0, 2.0); (2.0, 4.0) ] in
  check_float "zero-x dropped" 2.0 m;
  check_float "spread" 1.0 spread;
  let m, _ = Stats.ratio_spread [ (-0.0, 5.0); (3.0, 6.0) ] in
  check_float "negative zero dropped" 2.0 m;
  (* a zero *ratio* makes the spread infinite rather than dividing by 0 *)
  let _, spread = Stats.ratio_spread [ (1.0, 0.0); (1.0, 2.0) ] in
  check_float "zero ratio -> infinite spread" infinity spread;
  Alcotest.check_raises "all x zero"
    (Invalid_argument "Stats.ratio_spread: no usable points") (fun () ->
      ignore (Stats.ratio_spread [ (0.0, 1.0); (0.0, 2.0) ]))

let test_ilog_pow_overflow () =
  Alcotest.(check int) "2^61 fits" (1 lsl 61) (Ilog.pow 2 61);
  Alcotest.(check int) "10^18 fits" 1_000_000_000_000_000_000 (Ilog.pow 10 18);
  Alcotest.(check int) "3^39 fits" 4052555153018976267 (Ilog.pow 3 39);
  Alcotest.(check int) "(-2)^3" (-8) (Ilog.pow (-2) 3);
  Alcotest.(check int) "1^big" 1 (Ilog.pow 1 1_000_000);
  Alcotest.(check int) "0^10" 0 (Ilog.pow 0 10);
  (* k = 1 must not square the base: max_int^1 is representable even though
     max_int * max_int is not (the pre-guard code squared unconditionally) *)
  Alcotest.(check int) "max_int^1" max_int (Ilog.pow max_int 1);
  let ov b k =
    Alcotest.check_raises
      (Printf.sprintf "%d^%d overflows" b k)
      (Invalid_argument "Ilog.pow: overflow")
      (fun () -> ignore (Ilog.pow b k))
  in
  ov 2 62;
  ov 10 19;
  ov 3 40;
  ov max_int 2

(* ------------------------------------------------------------------ *)
(* jsons *)

let test_jsons_known_escapes () =
  Alcotest.(check string) "plain" "abc" (Jsons.escape "abc");
  Alcotest.(check string) "quote" {|a\"b|} (Jsons.escape {|a"b|});
  Alcotest.(check string) "backslash" {|a\\b|} (Jsons.escape {|a\b|});
  Alcotest.(check string) "newline" {|a\nb|} (Jsons.escape "a\nb");
  Alcotest.(check string) "tab" {|a\tb|} (Jsons.escape "a\tb");
  Alcotest.(check string) "cr" {|a\rb|} (Jsons.escape "a\rb");
  Alcotest.(check string) "backspace" {|a\bb|} (Jsons.escape "a\bb");
  Alcotest.(check string) "formfeed" {|a\fb|} (Jsons.escape "a\012b");
  Alcotest.(check string) "nul" "\\u0000" (Jsons.escape "\000");
  Alcotest.(check string) "esc" "\\u001b" (Jsons.escape "\027");
  (* High bytes pass through verbatim (UTF-8 stays UTF-8), unlike %S. *)
  Alcotest.(check string) "high byte" "\xc3\xa9" (Jsons.escape "\xc3\xa9");
  Alcotest.(check string) "quote wraps" {|"a\nb"|} (Jsons.quote "a\nb")

let test_jsons_int_array () =
  Alcotest.(check string) "empty" "[]" (Jsons.int_array []);
  Alcotest.(check string) "one" "[7]" (Jsons.int_array [ 7 ]);
  Alcotest.(check string) "many" "[12,8,-3,0]" (Jsons.int_array [ 12; 8; -3; 0 ])

let jsons_value =
  Alcotest.testable
    (fun fmt v ->
      Format.pp_print_string fmt
        (match v with
        | Jsons.Null -> "null"
        | Jsons.Bool b -> string_of_bool b
        | Jsons.Int i -> string_of_int i
        | Jsons.Float f -> string_of_float f
        | Jsons.Str s -> Printf.sprintf "%S" s
        | Jsons.Ints xs -> Jsons.int_array xs))
    (fun a b -> a = b)

let fields = Alcotest.(result (list (pair string jsons_value)) string)

let test_jsons_parse_obj () =
  Alcotest.check fields "empty object" (Ok []) (Jsons.parse_obj "{}");
  Alcotest.check fields "whitespace + trailing comma"
    (Ok [ ("a", Jsons.Int 1); ("b", Jsons.Ints [ 1; 2 ]) ])
    (Jsons.parse_obj "  { \"a\" : 1 , \"b\" : [1, 2] } ,  ");
  Alcotest.check fields "scalar zoo"
    (Ok
       [
         ("n", Jsons.Null);
         ("t", Jsons.Bool true);
         ("f", Jsons.Bool false);
         ("i", Jsons.Int (-3));
         ("x", Jsons.Float 2.5);
         ("s", Jsons.Str "a\nb");
         ("e", Jsons.Ints []);
       ])
    (Jsons.parse_obj
       "{\"n\":null,\"t\":true,\"f\":false,\"i\":-3,\"x\":2.5,\"s\":\"a\\nb\",\"e\":[]}");
  Alcotest.check fields "unicode escape decodes"
    (Ok [ ("s", Jsons.Str "\xc3\xa9") ])
    (Jsons.parse_obj "{\"s\":\"\\u00e9\"}");
  let rejects label line =
    match Jsons.parse_obj line with
    | Ok _ -> Alcotest.failf "%s: accepted %s" label line
    | Error _ -> ()
  in
  rejects "trailing garbage" "{\"a\":1} x";
  rejects "nested object" "{\"a\":{\"b\":1}}";
  rejects "mixed array" "{\"a\":[1,\"x\"]}";
  rejects "bad number" "{\"a\":1.2.3}";
  rejects "unterminated string" "{\"a\":\"oops}";
  rejects "bare value" "42";
  (* pinned number edge cases (ISSUE 10 audit) *)
  rejects "leading + is not JSON" "{\"a\":+5}";
  rejects "leading + in array" "{\"a\":[+5]}";
  rejects "max_int+1 literal" "{\"a\":4611686018427387904}";
  rejects "min_int-1 literal" "{\"a\":-4611686018427387905}";
  Alcotest.check fields "max_int literal fits"
    (Ok [ ("a", Jsons.Int max_int) ])
    (Jsons.parse_obj (Printf.sprintf "{\"a\":%d}" max_int));
  Alcotest.check fields "min_int literal fits"
    (Ok [ ("a", Jsons.Int min_int) ])
    (Jsons.parse_obj (Printf.sprintf "{\"a\":%d}" min_int));
  Alcotest.check fields "large float still floats"
    (Ok [ ("a", Jsons.Float 1e300) ])
    (Jsons.parse_obj "{\"a\":1e300}");
  (* pinned surrogate edge cases *)
  Alcotest.check fields "surrogate pair decodes"
    (Ok [ ("s", Jsons.Str "\xf0\x9f\x98\x80") ])
    (Jsons.parse_obj "{\"s\":\"\\ud83d\\ude00\"}");
  rejects "lone high surrogate" "{\"s\":\"\\ud83d\"}";
  rejects "lone low surrogate" "{\"s\":\"\\ude00\"}";
  rejects "swapped surrogate pair" "{\"s\":\"\\ude00\\ud83d\"}";
  (* benchdiff's line shape: an experiments record mid-file *)
  Alcotest.check fields "bench record line"
    (Ok
       [
         ("id", Jsons.Str "E1[decay]");
         ("wall_s", Jsons.Float 0.123);
         ("rounds", Jsons.Int 19);
         ("phase_rounds", Jsons.Ints [ 12; 7 ]);
       ])
    (Jsons.parse_obj
       "    { \"id\": \"E1[decay]\", \"wall_s\": 0.123, \"rounds\": 19, \"phase_rounds\": [12,7] },")

let test_jsons_members () =
  let f =
    match
      Jsons.parse_obj "{\"i\":7,\"z\":0,\"x\":1.5,\"s\":\"v\",\"b\":true,\"a\":[3]}"
    with
    | Ok f -> f
    | Error e -> Alcotest.failf "parse failed: %s" e
  in
  Alcotest.(check (option int)) "int_mem" (Some 7) (Jsons.int_mem "i" f);
  Alcotest.(check (option int)) "int_mem miss" None (Jsons.int_mem "s" f);
  Alcotest.(check (option (float 0.0))) "float_mem" (Some 1.5) (Jsons.float_mem "x" f);
  Alcotest.(check (option (float 0.0)))
    "float_mem coerces int" (Some 0.0) (Jsons.float_mem "z" f);
  Alcotest.(check (option string)) "str_mem" (Some "v") (Jsons.str_mem "s" f);
  Alcotest.(check (option bool)) "bool_mem" (Some true) (Jsons.bool_mem "b" f);
  Alcotest.(check (option (list int))) "ints_mem" (Some [ 3 ]) (Jsons.ints_mem "a" f)

(* Decoder for the escape grammar Jsons.escape emits — used to check the
   round trip property.  Fails loudly on anything outside that grammar,
   which doubles as a "well-formed JSON string body" check: an unescaped
   control char, quote, or dangling backslash raises. *)
let jsons_unescape s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let hex c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> failwith "bad hex digit"
  in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '\\' ->
        incr i;
        if !i >= n then failwith "dangling backslash";
        (match s.[!i] with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | 'n' -> Buffer.add_char b '\n'
        | 't' -> Buffer.add_char b '\t'
        | 'r' -> Buffer.add_char b '\r'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
            if !i + 4 >= n then failwith "short \\u escape";
            let v =
              (hex s.[!i + 1] * 0x1000)
              + (hex s.[!i + 2] * 0x100)
              + (hex s.[!i + 3] * 0x10)
              + hex s.[!i + 4]
            in
            if v > 0xff then failwith "non-byte \\u escape";
            Buffer.add_char b (Char.chr v);
            i := !i + 4
        | _ -> failwith "unknown escape")
    | '"' -> failwith "unescaped quote"
    | c when Char.code c < 0x20 -> failwith "unescaped control char"
    | c -> Buffer.add_char b c);
    incr i
  done;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* qcheck properties *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"jsons escape round-trips" ~count:500 string (fun s ->
        jsons_unescape (Jsons.escape s) = s);
    Test.make ~name:"jsons escape body is well-formed" ~count:500 string
      (fun s ->
        (* No raise = every control char / quote / backslash is escaped. *)
        let _ = jsons_unescape (Jsons.escape s) in
        true);
    Test.make ~name:"jsons int_array matches printf shape" ~count:300
      (list_of_size (Gen.int_range 0 30) int)
      (fun xs ->
        Jsons.int_array xs
        = "[" ^ String.concat "," (List.map string_of_int xs) ^ "]");
    (* parser vs emitters: any object rendered with the construction
       helpers parses back to the same fields, byte-exactly *)
    (Test.make ~name:"jsons obj/parse_obj round-trips" ~count:500
       (let value_gen =
          Gen.oneof
            [
              Gen.return Jsons.Null;
              Gen.map (fun b -> Jsons.Bool b) Gen.bool;
              Gen.map (fun i -> Jsons.Int i) Gen.int;
              Gen.map
                (fun f ->
                  Jsons.Float (if Float.is_finite f then f else 0.5))
                Gen.float;
              Gen.map (fun s -> Jsons.Str s) Gen.string;
              Gen.map
                (fun xs -> Jsons.Ints xs)
                (Gen.list_size (Gen.int_range 0 8) Gen.int);
            ]
        in
        make
          (Gen.list_size (Gen.int_range 0 10)
             (Gen.pair Gen.string value_gen)))
       (fun fields ->
         let render = function
           | Jsons.Null -> "null"
           | Jsons.Bool true -> "true"
           | Jsons.Bool false -> "false"
           | Jsons.Int i -> string_of_int i
           | Jsons.Float f -> Jsons.float_lit f
           | Jsons.Str s -> Jsons.quote s
           | Jsons.Ints xs -> Jsons.int_array xs
         in
         let line =
           Jsons.obj (List.map (fun (k, v) -> (k, render v)) fields)
         in
         match Jsons.parse_obj line with
         | Ok back -> back = fields
         | Error _ -> false));
    Test.make ~name:"jsons float_lit parses back exactly" ~count:500 float
      (fun f ->
        let f = if Float.is_finite f then f else 1e300 in
        Float.compare (float_of_string (Jsons.float_lit f)) f = 0);
    Test.make ~name:"rng int always in range" ~count:500
      (pair small_int (int_range 1 1000))
      (fun (seed, bound) ->
        let rng = Rng.create ~seed in
        let v = Rng.int rng bound in
        v >= 0 && v < bound);
    Test.make ~name:"ceil_log2 is tight" ~count:500 (int_range 1 100_000)
      (fun n ->
        let c = Ilog.ceil_log2 n in
        (1 lsl c) >= n && (c = 0 || 1 lsl (c - 1) < n));
    Test.make ~name:"floor_log2 is tight" ~count:500 (int_range 1 100_000)
      (fun n ->
        let f = Ilog.floor_log2 n in
        (1 lsl f) <= n && n < 1 lsl (f + 1));
    Test.make ~name:"isqrt correct" ~count:500 (int_range 0 1_000_000) (fun n ->
        let r = Ilog.isqrt n in
        (r * r) <= n && (r + 1) * (r + 1) > n);
    Test.make ~name:"median between min and max" ~count:200
      (list_of_size (Gen.int_range 1 50) (float_range (-100.) 100.))
      (fun l ->
        let a = Array.of_list l in
        let m = Stats.median a in
        let s = Stats.summarize a in
        m >= s.Stats.min && m <= s.Stats.max);
    Test.make ~name:"percentile interpolates between order statistics"
      ~count:300
      (pair
         (list_of_size (Gen.int_range 1 40) (float_range (-50.) 50.))
         (float_range 0. 100.))
      (fun (l, p) ->
        let a = Array.of_list l in
        let sorted = Array.copy a in
        Array.sort Float.compare sorted;
        let v = Stats.percentile a p in
        let n = Array.length sorted in
        let rank = p /. 100. *. float_of_int (n - 1) in
        let lo = sorted.(int_of_float (floor rank))
        and hi = sorted.(int_of_float (ceil rank)) in
        Float.compare lo v <= 0 && Float.compare v hi <= 0);
    Test.make ~name:"summary min/max are the extreme percentiles" ~count:200
      (list_of_size (Gen.int_range 1 40) (float_range (-100.) 100.))
      (fun l ->
        let a = Array.of_list l in
        let s = Stats.summarize a in
        Float.compare s.Stats.min (Stats.percentile a 0.0) = 0
        && Float.compare s.Stats.max (Stats.percentile a 100.0) = 0);
    Test.make ~name:"shuffle preserves multiset" ~count:200
      (list_of_size (Gen.int_range 0 30) small_int)
      (fun l ->
        let a = Array.of_list l in
        let rng = Rng.create ~seed:1 in
        Rng.shuffle rng a;
        let x = List.sort compare (Array.to_list a) in
        x = List.sort compare l);
    (* --- the three parse_obj audit properties (ISSUE 10) ------------- *)
    (* 1. integer exactness: every native int round-trips bit-exactly,
       and an integral literal beyond the native range is an Error, never
       a silently-lossy Float. *)
    Test.make ~name:"jsons int literals round-trip exactly" ~count:500
      (oneof [ int; oneofl [ max_int; min_int; 0; -1; 1 ] ])
      (fun i ->
        match Jsons.parse_obj (Printf.sprintf "{\"v\":%d}" i) with
        | Ok f -> Jsons.int_mem "v" f = Some i
        | Error _ -> false);
    Test.make ~name:"jsons out-of-range integer literal is an error"
      ~count:300
      (pair (int_range 0 1_000_000) bool)
      (fun (i, neg) ->
        (* 9<digits>000000000000000000 has ≥ 19 significant digits with a
           leading 9, so it always exceeds |min_int| = 2^62. *)
        let lit =
          Printf.sprintf "%s9%d000000000000000000" (if neg then "-" else "") i
        in
        match Jsons.parse_obj (Printf.sprintf "{\"v\":%s}" lit) with
        | Ok _ -> false
        | Error msg ->
            (* pinned: rejected as out-of-range, not mistyped as float *)
            let needle = "out of native range" in
            let k = String.length needle in
            let rec find i =
              i + k <= String.length msg
              && (String.equal (String.sub msg i k) needle || find (i + 1))
            in
            find 0);
    (* 2. surrogates: a valid pair decodes to the supplementary-plane
       scalar's 4-byte UTF-8; a lone half is an error. *)
    Test.make ~name:"jsons surrogate pair decodes to 4-byte UTF-8" ~count:300
      (int_range 0x10000 0x10FFFF)
      (fun cp ->
        let u = cp - 0x10000 in
        let hi = 0xd800 lor (u lsr 10) and lo = 0xdc00 lor (u land 0x3ff) in
        let line = Printf.sprintf "{\"v\":\"\\u%04x\\u%04x\"}" hi lo in
        let expect =
          let b = Bytes.create 4 in
          Bytes.set b 0 (Char.chr (0xf0 lor (cp lsr 18)));
          Bytes.set b 1 (Char.chr (0x80 lor ((cp lsr 12) land 0x3f)));
          Bytes.set b 2 (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
          Bytes.set b 3 (Char.chr (0x80 lor (cp land 0x3f)));
          Bytes.to_string b
        in
        match Jsons.parse_obj line with
        | Ok f -> Jsons.str_mem "v" f = Some expect
        | Error _ -> false);
    Test.make ~name:"jsons lone surrogate half is an error" ~count:300
      (pair (int_range 0xd800 0xdfff) bool)
      (fun (half, pad) ->
        (* alone, or followed by a non-surrogate escape: both invalid *)
        let tail = if pad then "\\u0041" else "" in
        let line = Printf.sprintf "{\"v\":\"\\u%04x%s\"}" half tail in
        match Jsons.parse_obj line with Ok _ -> false | Error _ -> true);
    (* 3. duplicate keys: both bindings survive in source order and every
       accessor resolves first-wins — pinned because journal-merge
       duplicate resolution depends on it. *)
    Test.make ~name:"jsons duplicate keys resolve first-wins" ~count:300
      (triple (int_range 0 9) int int)
      (fun (koffset, v1, v2) ->
        let k = Printf.sprintf "k%d" koffset in
        let line =
          Printf.sprintf "{\"%s\":%d,\"other\":true,\"%s\":%d}" k v1 k v2
        in
        match Jsons.parse_obj line with
        | Error _ -> false
        | Ok f ->
            Jsons.int_mem k f = Some v1
            && Jsons.mem k f = Some (Jsons.Int v1)
            && List.length (List.filter (fun (k', _) -> String.equal k' k) f)
               = 2);
  ]

let () =
  Alcotest.run "rn_util"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int uniformity" `Quick test_rng_int_uniformish;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "bernoulli extremes" `Quick test_rng_bernoulli_extremes;
          Alcotest.test_case "bernoulli rate" `Quick test_rng_bernoulli_rate;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "sample without replacement" `Quick
            test_rng_sample_without_replacement;
          Alcotest.test_case "copy replays" `Quick test_rng_copy_replays;
        ] );
      ( "ilog",
        [
          Alcotest.test_case "small values" `Quick test_ilog_small_values;
          Alcotest.test_case "pow" `Quick test_ilog_pow;
          Alcotest.test_case "pow overflow boundaries" `Quick
            test_ilog_pow_overflow;
          Alcotest.test_case "isqrt" `Quick test_ilog_isqrt;
          Alcotest.test_case "cdiv" `Quick test_ilog_cdiv;
          Alcotest.test_case "invalid input" `Quick test_ilog_invalid;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean/stddev" `Quick test_stats_mean_stddev;
          Alcotest.test_case "median/percentile" `Quick test_stats_median_percentile;
          Alcotest.test_case "summary" `Quick test_stats_summary;
          Alcotest.test_case "linear fit exact" `Quick test_stats_linear_fit_exact;
          Alcotest.test_case "linear fit r2" `Quick test_stats_linear_fit_r2;
          Alcotest.test_case "two-predictor exact" `Quick test_stats_two_predictor_exact;
          Alcotest.test_case "two-predictor singular" `Quick test_stats_two_predictor_singular;
          Alcotest.test_case "ratio spread" `Quick test_stats_ratio_spread;
          Alcotest.test_case "NaN summary (Float.compare folds)" `Quick
            test_stats_nan_summary;
          Alcotest.test_case "ratio spread zero-x edges" `Quick
            test_stats_ratio_spread_zero;
        ] );
      ( "jsons",
        [
          Alcotest.test_case "known escapes" `Quick test_jsons_known_escapes;
          Alcotest.test_case "int_array" `Quick test_jsons_int_array;
          Alcotest.test_case "parse_obj" `Quick test_jsons_parse_obj;
          Alcotest.test_case "member accessors" `Quick test_jsons_members;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
