(* Dynamic conformance probes for the protocol contracts of DESIGN.md §13,
   run over the live registry so every pipeline a user can reach from
   rbcast/bench is exercised:

   - R11 silence purity: each registered pipeline runs twice on the same
     (graph, seed), the second time with [Engine.inject_silence] handing
     every listener a spurious [Silence] before its real reception.
     Entries declaring [silence_pure] must produce byte-identical result
     records; entries that opted out with a reasoned [rblint:allow R11]
     (the GST self-test family, where silence means unsafe) must still
     run to completion.
   - transmit-buffer contract: the engines' [?validate] debug flag must
     stay quiet on a well-formed [decide_active] and raise — naming the
     offending round — on one that repeats a node id, on all three round
     paths. *)

open Rn_graph
open Rn_radio
open Rn_broadcast

let () = Protocols.ensure_registered ()

let graph =
  Gen.layered_random
    ~rng:(Rn_util.Rng.create ~seed:5)
    ~depth:6 ~width:6 ~p:0.3

let run_entry e = e.Registry.run ~k:3 ~seed:42 ~graph ~source:0 ()

let with_injection f =
  Atomic.set Engine.inject_silence true;
  Fun.protect ~finally:(fun () -> Atomic.set Engine.inject_silence false) f

let injection_case e =
  let name = e.Registry.name in
  Alcotest.test_case name `Quick (fun () ->
      let base = run_entry e in
      let injected = with_injection (fun () -> run_entry e) in
      if e.Registry.silence_pure then begin
        Alcotest.(check int) "rounds" base.Registry.rounds injected.Registry.rounds;
        Alcotest.(check bool) "delivered" base.Registry.delivered
          injected.Registry.delivered;
        Alcotest.(check (list (pair string string)))
          "details" base.Registry.details injected.Registry.details
      end
      else
        (* Silence-as-evidence pipelines legitimately take a different
           trajectory under injection (self-test fallbacks fire); the
           contract is that they remain well-defined, not identical. *)
        Alcotest.(check bool) "completes" true (injected.Registry.rounds > 0))

(* --------------------------------------------------------------- *)
(* ?validate: the transmit-buffer distinctness check                 *)

let null_protocol =
  {
    Engine.decide = (fun ~round:_ ~node:_ -> Engine.Listen);
    deliver = (fun ~round:_ ~node:_ _ -> ());
  }

let small = Gen.path 4

let duplicated ~round:_ dst =
  dst.(0) <- 1;
  dst.(1) <- 1;
  2

let distinct ~round:_ dst =
  for v = 0 to Graph.n small - 1 do
    dst.(v) <- v
  done;
  Graph.n small

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  at 0

let expect_repeat name runner =
  Alcotest.test_case name `Quick (fun () ->
      match runner () with
      | exception Invalid_argument msg ->
          Alcotest.(check bool)
            ("names the repeat and the round: " ^ msg)
            true
            (contains msg "repeated node id 1" && contains msg "round 0")
      | _ -> Alcotest.fail "validate:true accepted a duplicated node id")

let expect_clean name runner =
  Alcotest.test_case name `Quick (fun () ->
      ignore (runner () : Engine.outcome))

let dense decide_active () =
  Engine.run ~decide_active ~validate:true ~graph:small
    ~detection:Engine.No_collision_detection ~protocol:null_protocol
    ~stop:(fun ~round:_ -> false)
    ~max_rounds:3 ()

let sparse decide_active () =
  Engine_sparse.run ~decide_active ~validate:true ~graph:small
    ~detection:Engine.No_collision_detection ~protocol:null_protocol
    ~stop:(fun ~round:_ -> false)
    ~max_rounds:3 ()

let sharded decide_active () =
  Engine_sharded.run ~decide_active ~validate:true ~domains:2 ~graph:small
    ~detection:Engine.No_collision_detection ~protocol:null_protocol
    ~stop:(fun ~round:_ -> false)
    ~max_rounds:3 ()

let registry_tests =
  [
    Alcotest.test_case "duplicate name rejected" `Quick (fun () ->
        match
          Registry.register
            (match Registry.find "decay" with
            | Some e -> e
            | None -> Alcotest.fail "decay not registered")
        with
        | exception Invalid_argument _ -> ()
        | () -> Alcotest.fail "duplicate registration accepted");
    Alcotest.test_case "names cover both arities" `Quick (fun () ->
        let names = Registry.names () in
        List.iter
          (fun n ->
            Alcotest.(check bool) (n ^ " registered") true (List.mem n names))
          [ "decay"; "cr"; "gst"; "thm11"; "known"; "unknown" ]);
  ]

let () =
  Alcotest.run "contracts"
    [
      ("registry", registry_tests);
      ("silence-injection", List.map injection_case (Registry.all ()));
      ( "validate",
        [
          expect_clean "dense accepts distinct ids" (dense distinct);
          expect_clean "sparse accepts distinct ids" (sparse distinct);
          expect_clean "sharded accepts distinct ids" (sharded distinct);
          expect_repeat "dense rejects a repeated id" (dense duplicated);
          expect_repeat "sparse rejects a repeated id" (sparse duplicated);
          expect_repeat "sharded rejects a repeated id" (sharded duplicated);
        ] );
    ]
