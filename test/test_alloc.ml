(* Alloc-budget tests: the dynamic half of the zero-allocation invariant
   that rblint's R5 enforces statically (DESIGN.md §8).

   The engine's steady-state round loop must allocate nothing on the minor
   heap beyond the [Received] wrappers handed to successful listeners (the
   [Transmit] packets are the protocol's own, counted against it).  The
   Runner's shard loop must allocate O(1) words per item, independent of
   both the item count and the graph size.  Both are measured with
   [Gc.minor_words] deltas captured into preallocated float arrays, so the
   measurement itself allocates nothing between the marks. *)

open Rn_graph
open Rn_radio

(* The per-lane budgets below rely on lane [j] being pinned to executor
   [j], i.e. on real worker domains; on small machines the pool's
   hardware cap would otherwise degrade every lane to the calling
   domain. *)
let () =
  Atomic.set Runner.Pool.size_cap (max 8 (Atomic.get Runner.Pool.size_cap))

(* Minor-heap words allocated by [rounds] steady-state rounds, measured
   after [warmup] rounds so per-run scratch setup is excluded. *)
let engine_round_words ?decide_active ?metrics ~graph ~protocol ~warmup
    ~rounds () =
  let marks = [| 0.0; 0.0 |] in
  let after_round ~round =
    if round = warmup then marks.(0) <- Gc.minor_words ()
    else if round = warmup + rounds then marks.(1) <- Gc.minor_words ()
  in
  let (_ : Engine.outcome) =
    Engine.run ?decide_active ?metrics ~after_round ~graph
      ~detection:Engine.Collision_detection ~protocol
      ~stop:(fun ~round:_ -> false)
      ~max_rounds:(warmup + rounds + 2) ()
  in
  marks.(1) -. marks.(0)

let star n =
  Graph.create ~n ~edges:(List.init (n - 1) (fun i -> (0, i + 1)))

(* A quiet network — everyone listens, nobody transmits — must drive the
   round loop at exactly zero minor-heap words per round. *)
let test_quiet_round_loop () =
  let graph = star 512 in
  let protocol =
    {
      Engine.decide = (fun ~round:_ ~node:_ -> Engine.Listen);
      deliver = (fun ~round:_ ~node:_ _ -> ());
    }
  in
  let words = engine_round_words ~graph ~protocol ~warmup:16 ~rounds:256 () in
  Alcotest.(check (float 0.0))
    "quiet steady-state rounds allocate zero minor words" 0.0 words

(* The same zero-word bound with a metrics registry attached: record_round
   and set_phase are pure int mutation on preallocated arrays, so enabling
   observability must not cost a single word on the round loop. *)
let test_quiet_round_loop_with_metrics () =
  let graph = star 512 in
  let protocol =
    {
      Engine.decide = (fun ~round:_ ~node:_ -> Engine.Listen);
      deliver = (fun ~round:_ ~node:_ _ -> ());
    }
  in
  let metrics = Rn_obs.Metrics.create ~ring:1024 () in
  let words =
    engine_round_words ~metrics ~graph ~protocol ~warmup:16 ~rounds:256 ()
  in
  Alcotest.(check (float 0.0))
    "metrics-enabled quiet rounds allocate zero minor words" 0.0 words;
  Alcotest.(check bool) "registry recorded the rounds" true
    (Rn_obs.Metrics.rounds metrics >= 256)

(* A busy star: the hub transmits a preallocated packet every round, all
   leaves listen and are delivered.  The only legal per-round allocation is
   one [Received] wrapper per delivery — budget 4 words each (block + header
   + slack) and a constant per round.  A reintroduced per-transmitter or
   per-node allocation blows this budget immediately. *)
let test_busy_round_loop_delivery_budget () =
  let leaves = 63 in
  let graph = star (leaves + 1) in
  let tx = Engine.Transmit 7 in
  let protocol =
    {
      Engine.decide =
        (fun ~round:_ ~node -> if node = 0 then tx else Engine.Listen);
      deliver = (fun ~round:_ ~node:_ _ -> ());
    }
  in
  let rounds = 128 in
  let words =
    engine_round_words ~graph ~protocol ~warmup:16 ~rounds ()
  in
  let budget = float_of_int (rounds * ((4 * leaves) + 8)) in
  Alcotest.(check bool)
    (Printf.sprintf
       "busy rounds stay within the delivery budget (%.0f words <= %.0f)"
       words budget)
    true
    (words <= budget);
  (* same traffic, same budget, with the registry recording every round *)
  let metrics = Rn_obs.Metrics.create () in
  let words_m =
    engine_round_words ~metrics ~graph ~protocol ~warmup:16 ~rounds ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "metrics add no allocation (%.0f words <= %.0f)" words_m
       budget)
    true
    (words_m <= budget)

(* Allocation must track the active set, not the graph: one transmitter and
   one listener inside a 4096-node graph stay under a tiny constant per
   round even though n is large. *)
let test_round_loop_independent_of_n () =
  let n = 4096 in
  let graph = star n in
  let tx = Engine.Transmit 1 in
  let protocol =
    {
      Engine.decide =
        (fun ~round:_ ~node ->
          if node = 0 then tx
          else if node = 1 then Engine.Listen
          else Engine.Sleep);
      deliver = (fun ~round:_ ~node:_ _ -> ());
    }
  in
  let rounds = 128 in
  let words = engine_round_words ~graph ~protocol ~warmup:16 ~rounds () in
  let budget = float_of_int (rounds * 16) in
  Alcotest.(check bool)
    (Printf.sprintf "1 tx + 1 rx in n=4096 stays O(active) (%.0f <= %.0f)"
       words budget)
    true
    (words <= budget)

(* The same bound must hold under the [decide_active] fast path. *)
let test_active_set_round_loop () =
  let n = 2048 in
  let graph = star n in
  let tx = Engine.Transmit 1 in
  let protocol =
    {
      Engine.decide =
        (fun ~round:_ ~node -> if node = 0 then tx else Engine.Listen);
      deliver = (fun ~round:_ ~node:_ _ -> ());
    }
  in
  let decide_active ~round:_ (buf : int array) =
    buf.(0) <- 0;
    buf.(1) <- 5;
    2
  in
  let rounds = 128 in
  let words =
    engine_round_words ~decide_active ~graph ~protocol ~warmup:16 ~rounds ()
  in
  let budget = float_of_int (rounds * 16) in
  Alcotest.(check bool)
    (Printf.sprintf "decide_active loop stays O(active) (%.0f <= %.0f)" words
       budget)
    true
    (words <= budget)

(* Sparse engine: same marker trick, driving [Engine_sparse.run]. *)
let sparse_round_words ?decide_active ?next_busy_round ?metrics ~graph
    ~protocol ~warmup ~rounds () =
  let marks = [| 0.0; 0.0 |] in
  let after_round ~round =
    if round = warmup then marks.(0) <- Gc.minor_words ()
    else if round = warmup + rounds then marks.(1) <- Gc.minor_words ()
  in
  let (_ : Engine.outcome) =
    Engine_sparse.run ?decide_active ?next_busy_round ?metrics ~after_round
      ~graph ~detection:Engine.Collision_detection ~protocol
      ~stop:(fun ~round:_ -> false)
      ~max_rounds:(warmup + rounds + 2) ()
  in
  marks.(1) -. marks.(0)

(* Sparse quiet rounds — everyone listens, nobody transmits, Silence
   deliveries elided — must be exactly zero words per round even with the
   metrics registry recording every round. *)
let test_sparse_quiet_round_loop () =
  let graph = star 512 in
  let protocol =
    {
      Engine.decide = (fun ~round:_ ~node:_ -> Engine.Listen);
      deliver = (fun ~round:_ ~node:_ _ -> ());
    }
  in
  let metrics = Rn_obs.Metrics.create ~ring:1024 () in
  let words =
    sparse_round_words ~metrics ~graph ~protocol ~warmup:16 ~rounds:256 ()
  in
  Alcotest.(check (float 0.0))
    "sparse quiet rounds allocate zero minor words" 0.0 words;
  Alcotest.(check bool) "registry recorded the rounds" true
    (Rn_obs.Metrics.rounds metrics >= 256)

(* The skip fast path — every round fast-forwarded by the hint, metrics
   still recording a zero row per skipped round — must also run at zero
   words per round. *)
let test_sparse_skip_fast_path () =
  let graph = star 512 in
  let protocol =
    {
      Engine.decide = (fun ~round:_ ~node:_ -> Engine.Listen);
      deliver = (fun ~round:_ ~node:_ _ -> ());
    }
  in
  let metrics = Rn_obs.Metrics.create ~ring:1024 () in
  let next_busy_round ~round = round + 1_000_000 in
  let words =
    sparse_round_words ~metrics ~next_busy_round ~graph ~protocol ~warmup:16
      ~rounds:256 ()
  in
  Alcotest.(check (float 0.0))
    "skipped rounds allocate zero minor words" 0.0 words;
  Alcotest.(check bool) "registry recorded the skipped rounds" true
    (Rn_obs.Metrics.rounds metrics >= 256)

(* Sparse busy rounds obey the same delivery-only budget as the dense
   engine: one [Received] wrapper per clean delivery, a constant per
   round, nothing proportional to n. *)
let test_sparse_busy_budget () =
  let leaves = 63 in
  let graph = star (leaves + 1) in
  let tx = Engine.Transmit 7 in
  let protocol =
    {
      Engine.decide =
        (fun ~round:_ ~node -> if node = 0 then tx else Engine.Listen);
      deliver = (fun ~round:_ ~node:_ _ -> ());
    }
  in
  let rounds = 128 in
  let words = sparse_round_words ~graph ~protocol ~warmup:16 ~rounds () in
  let budget = float_of_int (rounds * ((4 * leaves) + 8)) in
  Alcotest.(check bool)
    (Printf.sprintf
       "sparse busy rounds stay within the delivery budget (%.0f <= %.0f)"
       words budget)
    true
    (words <= budget)

(* Sharded engine, per-shard-lane budget: each lane writes Gc.minor_words
   (its executing domain's counter — lane j is pinned to executor j when
   the pool is idle) into its own row of a preallocated matrix at its first
   decide of every round.  The delta between consecutive rounds on the same
   lane is the steady-state cost of one lane-round: two or three barrier
   crossings plus the phase loops, all of which must be allocation-free —
   the budget only has to absorb whatever the runtime's Mutex/Condition
   path spends. *)
let test_sharded_lane_budget () =
  let n = 256 and domains = 2 in
  let graph = Gen.path n in
  let cuts =
    Graph.shard_cuts ~align:Rn_coding.Bitvec.bits_per_word graph
      ~parts:domains
  in
  Alcotest.(check bool)
    "both lanes nonempty" true
    (cuts.(1) > 0 && cuts.(2) > cuts.(1));
  let warmup = 16 and rounds = 256 in
  let total = warmup + rounds + 2 in
  let marks = Array.init domains (fun _ -> Array.make total 0.0) in
  let round_no = ref 0 in
  let protocol =
    {
      Engine.decide =
        (fun ~round ~node ->
          if node = cuts.(0) then marks.(0).(round) <- Gc.minor_words ()
          else if node = cuts.(1) then marks.(1).(round) <- Gc.minor_words ();
          Engine.Listen);
      deliver = (fun ~round:_ ~node:_ _ -> ());
    }
  in
  let (_ : Engine.outcome) =
    Engine_sharded.run ~domains ~graph
      ~detection:Engine.Collision_detection ~protocol
      ~after_round:(fun ~round -> round_no := round)
      ~stop:(fun ~round:_ -> false)
      ~max_rounds:total ()
  in
  Alcotest.(check int) "ran all rounds" (total - 1) !round_no;
  let budget = 128.0 in
  for j = 0 to domains - 1 do
    let worst = ref 0.0 in
    for r = warmup to warmup + rounds - 1 do
      let delta = marks.(j).(r + 1) -. marks.(j).(r) in
      if delta > !worst then worst := delta
    done;
    Alcotest.(check bool)
      (Printf.sprintf
         "lane %d steady-state round allocates <= %.0f words (worst %.0f)" j
         budget !worst)
      true
      (!worst <= budget)
  done

(* Runner shard loop: every domain lane records Gc.minor_words (its own
   domain's counter) at each item it processes; the delta between two
   consecutive items of the same lane is the steady-state cost of one
   while-loop iteration.  Since [map] rides on [map_array]'s preallocated
   lane slots there is no per-element [Some] cell any more — the loop
   body is a bare store. *)
let test_runner_shard_loop () =
  let k = 1024 and d = 4 in
  let marks = Array.make k 0.0 in
  let items = List.init k (fun i -> i) in
  let f i =
    marks.(i) <- Gc.minor_words ();
    i * 2
  in
  let out = Runner.map ~domains:d f items in
  Alcotest.(check int) "all items mapped" k (List.length out);
  let worst = ref 0.0 in
  (* skip each lane's first stride: domain startup allocs land before it *)
  for i = d to k - d - 1 do
    let delta = marks.(i + d) -. marks.(i) in
    if delta > !worst then worst := delta
  done;
  Alcotest.(check bool)
    (Printf.sprintf "shard-loop iteration allocates <= 8 words (worst %.0f)"
       !worst)
    true
    (!worst <= 8.0)

(* map_array steady-state dispatch: the array-in/array-out entry point has
   no list conversion at either end, so between two consecutive items of a
   lane the only allocation permitted is whatever [f] itself does (here:
   none — unboxed int results into the preallocated lane array). *)
let test_runner_map_array_dispatch () =
  let k = 2048 and d = 4 in
  let marks = Array.make k 0.0 in
  let items = Array.init k (fun i -> i) in
  let f i =
    marks.(i) <- Gc.minor_words ();
    i * 3
  in
  let out = Runner.map_array ~domains:d f items in
  Alcotest.(check int) "all items mapped" k (Array.length out);
  Alcotest.(check int) "input order restored" 51 out.(17);
  let worst = ref 0.0 in
  for i = d to k - d - 1 do
    let delta = marks.(i + d) -. marks.(i) in
    if delta > !worst then worst := delta
  done;
  Alcotest.(check bool)
    (Printf.sprintf
       "map_array dispatch iteration allocates <= 8 words (worst %.0f)"
       !worst)
    true
    (!worst <= 8.0)

(* Serial path budget: the d <= 1 fast path may allocate the result list
   but must stay O(1) words per item. *)
let test_runner_serial_budget () =
  let k = 8192 in
  let items = List.init k (fun i -> i) in
  let marks = [| 0.0; 0.0 |] in
  marks.(0) <- Gc.minor_words ();
  let out = Runner.map ~domains:1 (fun i -> i + 1) items in
  marks.(1) <- Gc.minor_words ();
  Alcotest.(check int) "all items mapped" k (List.length out);
  let per_item = (marks.(1) -. marks.(0)) /. float_of_int k in
  Alcotest.(check bool)
    (Printf.sprintf "serial map allocates <= 32 words/item (got %.1f)"
       per_item)
    true
    (per_item <= 32.0)

let () =
  Alcotest.run "alloc"
    [
      ( "engine",
        [
          Alcotest.test_case "quiet loop is allocation-free" `Quick
            test_quiet_round_loop;
          Alcotest.test_case "quiet loop with metrics" `Quick
            test_quiet_round_loop_with_metrics;
          Alcotest.test_case "busy loop: deliveries only" `Quick
            test_busy_round_loop_delivery_budget;
          Alcotest.test_case "allocation independent of n" `Quick
            test_round_loop_independent_of_n;
          Alcotest.test_case "decide_active loop" `Quick
            test_active_set_round_loop;
        ] );
      ( "sparse",
        [
          Alcotest.test_case "quiet loop with metrics" `Quick
            test_sparse_quiet_round_loop;
          Alcotest.test_case "skip fast path with metrics" `Quick
            test_sparse_skip_fast_path;
          Alcotest.test_case "busy loop: deliveries only" `Quick
            test_sparse_busy_budget;
        ] );
      ( "sharded",
        [
          Alcotest.test_case "lane round budget" `Quick
            test_sharded_lane_budget;
        ] );
      ( "runner",
        [
          Alcotest.test_case "shard loop O(1)/item" `Quick
            test_runner_shard_loop;
          Alcotest.test_case "map_array dispatch zero-alloc" `Quick
            test_runner_map_array_dispatch;
          Alcotest.test_case "serial path budget" `Quick
            test_runner_serial_budget;
        ] );
    ]
