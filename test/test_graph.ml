open Rn_util
open Rn_graph
module Topo = Rn_graph.Gen

let rng () = Rng.create ~seed:12345

(* ------------------------------------------------------------------ *)
(* Graph *)

let test_create_basic () =
  let g = Graph.create ~n:4 ~edges:[ (0, 1); (1, 2); (2, 3) ] in
  Alcotest.(check int) "n" 4 (Graph.n g);
  Alcotest.(check int) "m" 3 (Graph.m g);
  Alcotest.(check int) "deg 1" 2 (Graph.degree g 1);
  Alcotest.(check bool) "edge 0-1" true (Graph.mem_edge g 0 1);
  Alcotest.(check bool) "edge 1-0" true (Graph.mem_edge g 1 0);
  Alcotest.(check bool) "no edge 0-2" false (Graph.mem_edge g 0 2)

let test_create_dedup_selfloop () =
  let g = Graph.create ~n:3 ~edges:[ (0, 1); (1, 0); (0, 1); (2, 2) ] in
  Alcotest.(check int) "m deduped" 1 (Graph.m g);
  Alcotest.(check int) "self-loop dropped" 0 (Graph.degree g 2)

let test_create_out_of_range () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Graph.create ~n:2 ~edges:[ (0, 5) ]);
       false
     with Invalid_argument _ -> true)

let test_neighbors_sorted () =
  let g = Graph.create ~n:5 ~edges:[ (2, 4); (2, 0); (2, 3); (2, 1) ] in
  Alcotest.(check (array int)) "sorted" [| 0; 1; 3; 4 |] (Graph.neighbors g 2)

let test_edges_listing () =
  let g = Graph.create ~n:3 ~edges:[ (2, 1); (1, 0) ] in
  Alcotest.(check (list (pair int int))) "edges" [ (0, 1); (1, 2) ] (Graph.edges g)

let test_empty_graph () =
  let g = Graph.create ~n:0 ~edges:[] in
  Alcotest.(check int) "n" 0 (Graph.n g);
  Alcotest.(check bool) "connected" true (Bfs.is_connected g)

let test_induced_bipartite () =
  (* Path 0-1-2-3, left = {1}, right = {0, 2}; edge 2-3 must vanish. *)
  let g = Topo.path 4 in
  let h, back = Graph.induced_bipartite g ~left:[| 1 |] ~right:[| 0; 2 |] in
  Alcotest.(check int) "n" 3 (Graph.n h);
  Alcotest.(check int) "m" 2 (Graph.m h);
  Alcotest.(check (array int)) "back map" [| 1; 0; 2 |] back;
  Alcotest.(check bool) "1-0 edge" true (Graph.mem_edge h 0 1);
  Alcotest.(check bool) "1-2 edge" true (Graph.mem_edge h 0 2)

let test_induced_bipartite_mapping () =
  (* Dense-ish graph with intra-side edges on both sides: the extracted H
     must contain exactly the crossing edges of G, and [back] must map every
     H-edge to a G-edge and every crossing G-edge to an H-edge. *)
  let g =
    Graph.create ~n:7
      ~edges:
        [
          (0, 1) (* left-left: dropped *); (5, 6) (* right-right: dropped *);
          (0, 4); (0, 5); (1, 6); (2, 4); (2, 6); (1, 3) (* 3 in neither *);
        ]
  in
  let left = [| 0; 1; 2 |] and right = [| 4; 5; 6 |] in
  let h, back = Graph.induced_bipartite g ~left ~right in
  Alcotest.(check int) "n" 6 (Graph.n h);
  Alcotest.(check (array int)) "back map" [| 0; 1; 2; 4; 5; 6 |] back;
  let expected = [ (0, 4); (0, 5); (1, 6); (2, 4); (2, 6) ] in
  Alcotest.(check int) "m" (List.length expected) (Graph.m h);
  (* Every H-edge maps back to a crossing G-edge... *)
  List.iter
    (fun (i, j) ->
      Alcotest.(check bool)
        (Printf.sprintf "H-edge %d-%d exists in G" back.(i) back.(j))
        true
        (Graph.mem_edge g back.(i) back.(j)))
    (Graph.edges h);
  (* ... and every crossing G-edge appears in H under the mapping. *)
  List.iter
    (fun (u, v) ->
      let idx x =
        let found = ref (-1) in
        Array.iteri (fun i y -> if y = x then found := i) back;
        !found
      in
      Alcotest.(check bool)
        (Printf.sprintf "G-edge %d-%d present in H" u v)
        true
        (Graph.mem_edge h (idx u) (idx v)))
    expected

(* ------------------------------------------------------------------ *)
(* Bfs *)

let test_bfs_levels_path () =
  let g = Topo.path 5 in
  Alcotest.(check (array int)) "levels" [| 0; 1; 2; 3; 4 |] (Bfs.levels g ~src:0);
  Alcotest.(check (array int)) "levels mid" [| 2; 1; 0; 1; 2 |]
    (Bfs.levels g ~src:2)

let test_bfs_unreachable () =
  let g = Graph.create ~n:3 ~edges:[ (0, 1) ] in
  Alcotest.(check (array int)) "unreachable -1" [| 0; 1; -1 |] (Bfs.levels g ~src:0);
  Alcotest.(check bool) "disconnected" false (Bfs.is_connected g)

let test_bfs_parents () =
  let g = Topo.path 4 in
  let levels, parents = Bfs.levels_and_parents g ~src:0 in
  Alcotest.(check (array int)) "levels" [| 0; 1; 2; 3 |] levels;
  Alcotest.(check (array int)) "parents" [| -1; 0; 1; 2 |] parents

let test_bfs_multi_levels () =
  let g = Topo.path 5 in
  Alcotest.(check (array int)) "two sources" [| 0; 1; 2; 1; 0 |]
    (Bfs.multi_levels g ~sources:[| 0; 4 |])

let test_diameter_shapes () =
  Alcotest.(check int) "path" 4 (Bfs.diameter (Topo.path 5));
  Alcotest.(check int) "cycle" 3 (Bfs.diameter (Topo.cycle 6));
  Alcotest.(check int) "cycle odd" 3 (Bfs.diameter (Topo.cycle 7));
  Alcotest.(check int) "star" 2 (Bfs.diameter (Topo.star 10));
  Alcotest.(check int) "complete" 1 (Bfs.diameter (Topo.complete 8));
  Alcotest.(check int) "grid" 5 (Bfs.diameter (Topo.grid ~w:3 ~h:4));
  Alcotest.(check int) "single node" 0 (Bfs.diameter (Topo.path 1))

let test_nodes_at_level () =
  let g = Topo.star 5 in
  let levels = Bfs.levels g ~src:0 in
  Alcotest.(check (array int)) "level 0" [| 0 |] (Bfs.nodes_at_level levels 0);
  Alcotest.(check (array int)) "level 1" [| 1; 2; 3; 4 |]
    (Bfs.nodes_at_level levels 1);
  Alcotest.(check int) "max level" 1 (Bfs.max_level levels)

(* ------------------------------------------------------------------ *)
(* Generators *)

let test_gen_balanced_tree () =
  let g = Topo.balanced_tree ~arity:2 ~depth:3 in
  Alcotest.(check int) "n" 15 (Graph.n g);
  Alcotest.(check int) "m" 14 (Graph.m g);
  Alcotest.(check int) "diameter" 6 (Bfs.diameter g)

let test_gen_caterpillar () =
  let g = Topo.caterpillar ~spine:4 ~legs:2 in
  Alcotest.(check int) "n" 12 (Graph.n g);
  Alcotest.(check bool) "connected" true (Bfs.is_connected g);
  Alcotest.(check int) "diameter" 5 (Bfs.diameter g)

let test_gen_random_connected () =
  let g = Topo.random_connected ~rng:(rng ()) ~n:64 ~extra:30 in
  Alcotest.(check int) "n" 64 (Graph.n g);
  Alcotest.(check bool) "connected" true (Bfs.is_connected g);
  Alcotest.(check bool) "has extra edges" true (Graph.m g >= 63)

let test_gen_layered_random () =
  let g = Topo.layered_random ~rng:(rng ()) ~depth:6 ~width:5 ~p:0.3 in
  Alcotest.(check int) "n" 31 (Graph.n g);
  Alcotest.(check bool) "connected" true (Bfs.is_connected g);
  let levels = Bfs.levels g ~src:0 in
  (* Every node's BFS level equals its layer index. *)
  for v = 1 to 30 do
    Alcotest.(check int)
      (Printf.sprintf "layer of %d" v)
      (((v - 1) / 5) + 1)
      levels.(v)
  done;
  Alcotest.(check int) "diameter from src" 6 (Bfs.eccentricity g 0)

let test_gen_cluster_path () =
  let g = Topo.cluster_path ~rng:(rng ()) ~clusters:4 ~size:6 ~p_intra:0.5 in
  Alcotest.(check int) "n" 24 (Graph.n g);
  Alcotest.(check bool) "connected" true (Bfs.is_connected g)

let test_gen_unit_disk_connected () =
  let g = Topo.unit_disk ~rng:(rng ()) ~n:50 ~radius:0.18 in
  Alcotest.(check int) "n" 50 (Graph.n g);
  Alcotest.(check bool) "stitched connected" true (Bfs.is_connected g)

let test_gen_bipartite_random () =
  let reds = 6 and blues = 10 in
  let g = Topo.bipartite_random ~rng:(rng ()) ~reds ~blues ~p:0.2 in
  Alcotest.(check int) "n" 16 (Graph.n g);
  (* No intra-side edges; every blue has a red neighbor. *)
  List.iter
    (fun (u, v) ->
      Alcotest.(check bool) "crossing edge" true (u < reds && v >= reds))
    (Graph.edges g);
  for b = reds to reds + blues - 1 do
    Alcotest.(check bool) "blue covered" true (Graph.degree g b >= 1)
  done

let test_gen_gnp_extremes () =
  let g0 = Topo.gnp ~rng:(rng ()) ~n:10 ~p:0.0 in
  Alcotest.(check int) "p=0 no edges" 0 (Graph.m g0);
  let g1 = Topo.gnp ~rng:(rng ()) ~n:10 ~p:1.0 in
  Alcotest.(check int) "p=1 complete" 45 (Graph.m g1)

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let test_gen_dot () =
  let s = Topo.dot (Topo.path 3) in
  Alcotest.(check bool) "edge 0--1" true (contains s "0 -- 1");
  Alcotest.(check bool) "edge 1--2" true (contains s "1 -- 2")

(* ------------------------------------------------------------------ *)
(* Builder and shard_cuts *)

let same_graph a b =
  Graph.n a = Graph.n b && Graph.m a = Graph.m b
  && Graph.offsets a = Graph.offsets b
  && Graph.targets a = Graph.targets b

let test_builder_matches_create () =
  let edges = [ (0, 1); (1, 0); (3, 2); (2, 2); (0, 3); (0, 1) ] in
  let b = Graph.Builder.create ~n:4 () in
  List.iter (fun (u, v) -> Graph.Builder.add_edge b u v) edges;
  Alcotest.(check int) "edge_count pre-dedup" 6 (Graph.Builder.edge_count b);
  Alcotest.(check bool) "builder ≡ create" true
    (same_graph (Graph.Builder.finish b) (Graph.create ~n:4 ~edges))

let test_builder_empty_and_bounds () =
  let b = Graph.Builder.create ~capacity:1 ~n:3 () in
  Alcotest.(check bool) "empty builder" true
    (same_graph (Graph.Builder.finish b) (Graph.create ~n:3 ~edges:[]));
  Alcotest.check_raises "endpoint out of range"
    (Invalid_argument "Graph.Builder.add_edge: node 3 out of range [0,3)")
    (fun () -> Graph.Builder.add_edge b 0 3)

let test_builder_growth () =
  (* Start from a 1-slot buffer so every doubling path is exercised. *)
  let n = 200 in
  let b = Graph.Builder.create ~capacity:1 ~n () in
  let edges = ref [] in
  for i = 0 to n - 2 do
    Graph.Builder.add_edge b i (i + 1);
    edges := (i, i + 1) :: !edges
  done;
  Alcotest.(check bool) "grown builder ≡ create" true
    (same_graph (Graph.Builder.finish b) (Graph.create ~n ~edges:!edges))

let test_csc_is_csr () =
  let g = Topo.random_connected ~rng:(rng ()) ~n:20 ~extra:10 in
  Alcotest.(check bool) "csc offsets alias" true
    (Graph.csc_offsets g == Graph.offsets g);
  Alcotest.(check bool) "csc targets alias" true
    (Graph.csc_targets g == Graph.targets g)

let check_cuts_shape ~n ~parts ~align cuts =
  Alcotest.(check int) "length" (parts + 1) (Array.length cuts);
  Alcotest.(check int) "first" 0 cuts.(0);
  Alcotest.(check int) "last" n cuts.(parts);
  for k = 1 to parts do
    Alcotest.(check bool) "nondecreasing" true (cuts.(k) >= cuts.(k - 1))
  done;
  for k = 1 to parts - 1 do
    Alcotest.(check int)
      (Printf.sprintf "cut %d aligned" k)
      0
      (cuts.(k) mod align)
  done

let test_shard_cuts_shapes () =
  let cases =
    [
      (Topo.path 256, 4, 63);
      (Topo.star 100, 8, 63);
      (Topo.path 2, 7, 63) (* parts > n *);
      (Topo.path 1, 3, 1);
      (Graph.create ~n:0 ~edges:[], 2, 63);
      (Topo.complete 12, 5, 1);
    ]
  in
  List.iter
    (fun (g, parts, align) ->
      check_cuts_shape ~n:(Graph.n g) ~parts ~align
        (Graph.shard_cuts ~align g ~parts))
    cases;
  Alcotest.check_raises "parts < 1"
    (Invalid_argument "Graph.shard_cuts: parts must be >= 1") (fun () ->
      ignore (Graph.shard_cuts (Topo.path 3) ~parts:0))

let test_shard_cuts_balance () =
  (* On a uniform-degree shape, unaligned cuts land within one node-weight
     of the ideal split. *)
  let n = 1000 in
  let g = Topo.cycle n in
  let parts = 4 in
  let cuts = Graph.shard_cuts g ~parts in
  check_cuts_shape ~n ~parts ~align:1 cuts;
  for k = 1 to parts - 1 do
    let ideal = n * k / parts in
    Alcotest.(check bool)
      (Printf.sprintf "cut %d near ideal (%d vs %d)" k cuts.(k) ideal)
      true
      (abs (cuts.(k) - ideal) <= 1)
  done

(* ------------------------------------------------------------------ *)
(* qcheck properties *)

let arb_connected =
  QCheck.make
    ~print:(fun (n, extra, seed) -> Printf.sprintf "(n=%d,extra=%d,seed=%d)" n extra seed)
    QCheck.Gen.(triple (int_range 1 60) (int_range 0 40) (int_range 0 10_000))

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"random_connected is connected" ~count:200 arb_connected
      (fun (n, extra, seed) ->
        let g = Topo.random_connected ~rng:(Rng.create ~seed) ~n ~extra in
        Bfs.is_connected g);
    Test.make ~name:"bfs triangle inequality on edges" ~count:100 arb_connected
      (fun (n, extra, seed) ->
        let g = Topo.random_connected ~rng:(Rng.create ~seed) ~n ~extra in
        let d = Bfs.levels g ~src:0 in
        List.for_all (fun (u, v) -> abs (d.(u) - d.(v)) <= 1) (Graph.edges g));
    Test.make ~name:"degree sum = 2m" ~count:200 arb_connected
      (fun (n, extra, seed) ->
        let g = Topo.random_connected ~rng:(Rng.create ~seed) ~n ~extra in
        let sum = ref 0 in
        for v = 0 to n - 1 do
          sum := !sum + Graph.degree g v
        done;
        !sum = 2 * Graph.m g);
    Test.make ~name:"mem_edge matches neighbor lists" ~count:100 arb_connected
      (fun (n, extra, seed) ->
        let g = Topo.random_connected ~rng:(Rng.create ~seed) ~n ~extra in
        let ok = ref true in
        for u = 0 to n - 1 do
          Graph.iter_neighbors g u (fun v ->
              if not (Graph.mem_edge g u v) then ok := false)
        done;
        !ok);
    Test.make ~name:"CSR rows sorted, deduped, offset-consistent" ~count:200
      arb_connected
      (fun (n, extra, seed) ->
        let g = Topo.random_connected ~rng:(Rng.create ~seed) ~n ~extra in
        let off = Graph.offsets g and tgt = Graph.targets g in
        let ok = ref (Array.length off = n + 1 && off.(0) = 0) in
        if Array.length tgt <> off.(n) then ok := false;
        for v = 0 to n - 1 do
          if off.(v) > off.(v + 1) then ok := false;
          for i = off.(v) to off.(v + 1) - 2 do
            (* strictly ascending ⇒ sorted and duplicate-free *)
            if tgt.(i) >= tgt.(i + 1) then ok := false
          done;
          if Graph.neighbors g v <> Array.sub tgt off.(v) (off.(v + 1) - off.(v))
          then ok := false
        done;
        !ok);
    Test.make ~name:"unit disk always connected" ~count:50
      (pair (int_range 2 40) (int_range 0 1000))
      (fun (n, seed) ->
        Bfs.is_connected (Topo.unit_disk ~rng:(Rng.create ~seed) ~n ~radius:0.2));
    Test.make ~name:"Builder ≡ create on random edge lists" ~count:200
      arb_connected
      (fun (n, extra, seed) ->
        let rng = Rng.create ~seed in
        (* Random multiset with duplicates and self-loops: both paths must
           drop them identically. *)
        let k = extra + (2 * n) in
        let edges =
          List.init k (fun _ -> (Rng.int rng n, Rng.int rng n))
        in
        let b = Graph.Builder.create ~capacity:(1 + (seed mod 4)) ~n () in
        List.iter (fun (u, v) -> Graph.Builder.add_edge b u v) edges;
        same_graph (Graph.Builder.finish b) (Graph.create ~n ~edges));
    Test.make ~name:"shard_cuts covers, sorted, aligned" ~count:200
      (pair arb_connected (pair (int_range 1 12) (int_range 1 64)))
      (fun ((n, extra, seed), (parts, align)) ->
        let g = Topo.random_connected ~rng:(Rng.create ~seed) ~n ~extra in
        let cuts = Graph.shard_cuts ~align g ~parts in
        let ok = ref (Array.length cuts = parts + 1) in
        if cuts.(0) <> 0 || cuts.(parts) <> n then ok := false;
        for k = 1 to parts do
          if cuts.(k) < cuts.(k - 1) then ok := false
        done;
        for k = 1 to parts - 1 do
          if cuts.(k) mod align <> 0 then ok := false
        done;
        !ok);
    Test.make ~name:"layered_random levels = layers" ~count:50
      (triple (int_range 1 8) (int_range 1 6) (int_range 0 1000))
      (fun (depth, width, seed) ->
        let g =
          Topo.layered_random ~rng:(Rng.create ~seed) ~depth ~width ~p:0.4
        in
        let levels = Bfs.levels g ~src:0 in
        let ok = ref true in
        for v = 1 to Graph.n g - 1 do
          if levels.(v) <> ((v - 1) / width) + 1 then ok := false
        done;
        !ok);
  ]

let () =
  Alcotest.run "rn_graph"
    [
      ( "graph",
        [
          Alcotest.test_case "create basic" `Quick test_create_basic;
          Alcotest.test_case "dedup & self-loops" `Quick test_create_dedup_selfloop;
          Alcotest.test_case "out of range" `Quick test_create_out_of_range;
          Alcotest.test_case "neighbors sorted" `Quick test_neighbors_sorted;
          Alcotest.test_case "edges listing" `Quick test_edges_listing;
          Alcotest.test_case "empty graph" `Quick test_empty_graph;
          Alcotest.test_case "induced bipartite" `Quick test_induced_bipartite;
          Alcotest.test_case "induced bipartite mapping" `Quick
            test_induced_bipartite_mapping;
        ] );
      ( "builder & shard_cuts",
        [
          Alcotest.test_case "builder matches create" `Quick
            test_builder_matches_create;
          Alcotest.test_case "builder empty & bounds" `Quick
            test_builder_empty_and_bounds;
          Alcotest.test_case "builder growth" `Quick test_builder_growth;
          Alcotest.test_case "csc aliases csr" `Quick test_csc_is_csr;
          Alcotest.test_case "shard_cuts shapes" `Quick test_shard_cuts_shapes;
          Alcotest.test_case "shard_cuts balance" `Quick
            test_shard_cuts_balance;
        ] );
      ( "bfs",
        [
          Alcotest.test_case "levels on path" `Quick test_bfs_levels_path;
          Alcotest.test_case "unreachable" `Quick test_bfs_unreachable;
          Alcotest.test_case "parents" `Quick test_bfs_parents;
          Alcotest.test_case "multi-source levels" `Quick test_bfs_multi_levels;
          Alcotest.test_case "diameter shapes" `Quick test_diameter_shapes;
          Alcotest.test_case "nodes at level" `Quick test_nodes_at_level;
        ] );
      ( "generators",
        [
          Alcotest.test_case "balanced tree" `Quick test_gen_balanced_tree;
          Alcotest.test_case "caterpillar" `Quick test_gen_caterpillar;
          Alcotest.test_case "random connected" `Quick test_gen_random_connected;
          Alcotest.test_case "layered random" `Quick test_gen_layered_random;
          Alcotest.test_case "cluster path" `Quick test_gen_cluster_path;
          Alcotest.test_case "unit disk" `Quick test_gen_unit_disk_connected;
          Alcotest.test_case "bipartite random" `Quick test_gen_bipartite_random;
          Alcotest.test_case "gnp extremes" `Quick test_gen_gnp_extremes;
          Alcotest.test_case "dot output" `Quick test_gen_dot;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
