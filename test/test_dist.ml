(* Distributed campaign executor: supervisor state machine, shard-journal
   merge, and the ISSUE 10 acceptance property — a distributed campaign
   with random worker-kill schedules at worker counts 1/2/4 must merge to
   output byte-identical to a serial single-process run, with no cell
   executed more times than the retry budget allows.

   Everything runs against a simulated io harness on a virtual clock:
   [sleep] advances time and steps each live simulated worker by one
   cell, so crashes, torn journal tails, hangs, and lying exit codes are
   exact and deterministic. *)

open Rn_campaign
open Rn_broadcast

let () = Protocols.ensure_registered ()

let parse_ok text =
  match Spec.parse text with
  | Ok spec -> spec
  | Error msg -> Alcotest.failf "spec rejected: %s" msg

let small_spec =
  "{\"topo\":\"path\",\"n\":10}\n"
  ^ "{\"topo\":\"layered\",\"depth\":3,\"width\":3,\"p\":0.5,\"seeds\":[1,2]}\n"
  ^ "{\"proto\":\"decay\"}\n" ^ "{\"proto\":\"cr\"}\n" ^ "{\"seeds\":[1,2,3]}\n"

(* The serial single-process reference: emit order is cell-index order,
   so [lines.(idx)] is cell [idx]'s one true journal/output line. *)
let serial_lines spec =
  let acc = ref [] in
  let (_ : Campaign.stats) =
    Campaign.run ~domains:1 ~emit:(fun l -> acc := l :: !acc) spec
  in
  Array.of_list (List.rev !acc)

(* --- simulated workers ---------------------------------------------- *)

type fault =
  | Clean
  | Crash_after of int  (* exit 3 after executing this many cells *)
  | Sigkill_after of int * int
      (* SIGKILL after this many cells; the second field tears that many
         bytes off a final half-written line (0 = die between the last
         flush and exit) *)
  | Exit0_after of int  (* exit 0 with work unfinished — a lying worker *)
  | Hang_after of int  (* stop progressing but stay alive *)

type proc = Alive | Dead_exit of int | Dead_signal of int

type simw = {
  mutable cells : int array;
  mutable pos : int;
  mutable ran : int;  (* cells executed this attempt *)
  mutable proc : proc;
  mutable fault : fault;
}

type harness = {
  io : Dist.io;
  journals : string list array;  (* newest first, per slot *)
  exec_count : int array;  (* per cell, across all attempts *)
}

(* [fault_of ~slot ~attempt] scripts each spawn.  [initial_journals]
   pre-seeds shard journals (the --resume path). *)
let make_harness ~workers ~fault_of ?(initial_journals = [||]) ~lines () =
  let journals =
    Array.init workers (fun s ->
        if s < Array.length initial_journals then
          List.rev initial_journals.(s)
        else [])
  in
  let exec_count = Array.make (Array.length lines) 0 in
  let sims =
    Array.init workers (fun _ ->
        { cells = [||]; pos = 0; ran = 0; proc = Dead_exit 0; fault = Clean })
  in
  let vclock = ref 0.0 in
  let step s (w : simw) =
    match w.proc with
    | Dead_exit _ | Dead_signal _ -> ()
    | Alive -> (
        let fire =
          match w.fault with
          | Clean -> `Run
          | Crash_after k when w.ran >= k -> `Crash
          | Sigkill_after (k, tear) when w.ran >= k -> `Sig tear
          | Exit0_after k when w.ran >= k -> `Exit0
          | Hang_after k when w.ran >= k -> `Hang
          | _ -> `Run
        in
        match fire with
        | `Crash -> w.proc <- Dead_exit 3
        | `Exit0 -> w.proc <- Dead_exit 0
        | `Hang -> ()
        | `Sig tear ->
            (* the kill lands mid-write: the next cell ran, but only a
               torn prefix of its line reached the journal *)
            if tear > 0 && w.pos < Array.length w.cells then begin
              let idx = w.cells.(w.pos) in
              let line = lines.(idx) in
              let cut = min tear (String.length line - 1) in
              exec_count.(idx) <- exec_count.(idx) + 1;
              journals.(s) <-
                String.sub line 0 (String.length line - cut) :: journals.(s)
            end;
            w.proc <- Dead_signal 9
        | `Run ->
            if w.pos >= Array.length w.cells then w.proc <- Dead_exit 0
            else begin
              let idx = w.cells.(w.pos) in
              w.pos <- w.pos + 1;
              w.ran <- w.ran + 1;
              exec_count.(idx) <- exec_count.(idx) + 1;
              journals.(s) <- lines.(idx) :: journals.(s)
            end)
  in
  let io =
    {
      Dist.spawn =
        (fun ~slot ~attempt ~cells ->
          let w = sims.(slot) in
          w.cells <- cells;
          w.pos <- 0;
          w.ran <- 0;
          w.fault <- fault_of ~slot ~attempt;
          w.proc <- Alive);
      status =
        (fun ~slot ->
          match sims.(slot).proc with
          | Alive -> Dist.Running
          | Dead_exit c -> Dist.Exited c
          | Dead_signal sg -> Dist.Signaled sg);
      kill =
        (fun ~slot ->
          match sims.(slot).proc with
          | Alive -> sims.(slot).proc <- Dead_signal 9
          | _ -> ());
      journal_lines = (fun ~slot -> List.rev journals.(slot));
      clock = (fun () -> !vclock);
      sleep =
        (fun dt ->
          vclock := !vclock +. dt;
          Array.iteri step sims);
    }
  in
  { io; journals; exec_count }

let config workers =
  {
    Dist.workers;
    retries = 2;
    heartbeat_timeout = 0.45;
    backoff_base = 0.1;
    poll_interval = 0.1;
  }

let run_dist ?(workers = 2) ?initial_journals ~fault_of spec =
  let lines = serial_lines spec in
  let h = make_harness ~workers ~fault_of ?initial_journals ~lines () in
  let events = ref [] in
  let out = Buffer.create 4096 in
  let r =
    Dist.run
      ~on_event:(fun e -> events := e :: !events)
      ~config:(config workers) ~io:h.io
      ~emit:(fun l ->
        Buffer.add_string out l;
        Buffer.add_char out '\n')
      spec
  in
  let reference =
    String.concat "" (Array.to_list (Array.map (fun l -> l ^ "\n") lines))
  in
  (r, Buffer.contents out, reference, h, List.rev !events)

let no_fault ~slot:_ ~attempt:_ = Clean

let fault_table table ~slot ~attempt =
  match List.assoc_opt (slot, attempt) table with
  | Some f -> f
  | None -> Clean

let crash_reasons events =
  List.filter_map
    (function Dist.Crash { reason; _ } -> Some reason | _ -> None)
    events

let has_substring needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i =
    i + nl <= hl && (String.equal (String.sub hay i nl) needle || go (i + 1))
  in
  go 0

let check_ok = function
  | Ok (s : Dist.stats) -> s
  | Error m -> Alcotest.failf "distributed run failed: %s" m

(* --- supervisor ------------------------------------------------------ *)

let test_clean_run () =
  let spec = parse_ok small_spec in
  List.iter
    (fun workers ->
      let r, out, reference, _, _ =
        run_dist ~workers ~fault_of:no_fault spec
      in
      let stats = check_ok r in
      Alcotest.(check string)
        (Printf.sprintf "bytes at %d workers" workers)
        reference out;
      Alcotest.(check int) "no crashes" 0 stats.Dist.sup.crashes;
      Alcotest.(check int) "one spawn per busy slot"
        (min workers (Array.length (Spec.cells spec)))
        stats.Dist.sup.spawns)
    [ 1; 2; 4; 32 ]

(* satellite 4: a worker that exits 0 having journaled nothing is a
   crash, not a success — its cells must be re-run, not lost *)
let test_exit0_nothing_journaled () =
  let spec = parse_ok small_spec in
  let r, out, reference, _, events =
    run_dist ~workers:1
      ~fault_of:(fault_table [ ((0, 1), Exit0_after 0) ])
      spec
  in
  let stats = check_ok r in
  Alcotest.(check string) "recovered bytes" reference out;
  Alcotest.(check int) "one crash" 1 stats.Dist.sup.crashes;
  Alcotest.(check int) "respawned once" 2 stats.Dist.sup.spawns;
  Alcotest.(check bool) "reason names the lying exit" true
    (List.exists (has_substring "exited 0") (crash_reasons events))

(* satellite 4: a worker killed between its final journal flush and its
   exit did all its work — the slot retires as a success, zero retries *)
let test_killed_between_flush_and_exit () =
  let spec = parse_ok small_spec in
  let total = Array.length (Spec.cells spec) in
  let shard0 =
    Array.length (Dist.plan ~workers:2 ~pending:(Array.init total Fun.id)).(0)
  in
  let r, out, reference, _, events =
    run_dist ~workers:2
      ~fault_of:(fault_table [ ((0, 1), Sigkill_after (shard0, 0)) ])
      spec
  in
  let stats = check_ok r in
  Alcotest.(check string) "bytes intact" reference out;
  Alcotest.(check int) "no crash recorded" 0 stats.Dist.sup.crashes;
  Alcotest.(check int) "no respawn" 2 stats.Dist.sup.spawns;
  Alcotest.(check bool) "no Crash event" true
    (List.for_all (function Dist.Crash _ -> false | _ -> true) events)

(* satellite 4: retry budget exhaustion fails loudly and preserves the
   partial shard journals — a later resumed run finishes from them *)
let test_retry_exhaustion_then_resume () =
  let spec = parse_ok small_spec in
  let total = Array.length (Spec.cells spec) in
  let lines = serial_lines spec in
  let always_crash ~slot:_ ~attempt:_ = Crash_after 1 in
  let h = make_harness ~workers:1 ~fault_of:always_crash ~lines () in
  let r =
    Dist.supervise ~config:(config 1) ~io:h.io spec
  in
  (match r with
  | Ok _ -> Alcotest.fail "exhausted campaign must fail"
  | Error msg ->
      Alcotest.(check bool) "message names the budget" true
        (has_substring "budget" msg));
  (* one cell survived per attempt: 3 attempts, 3 journaled lines *)
  Alcotest.(check int) "partial journal preserved" 3
    (List.length h.journals.(0));
  (* resume: seed a fresh harness with the surviving shard journal *)
  let r2, out, reference, h2, _ =
    run_dist ~workers:1
      ~initial_journals:[| List.rev h.journals.(0) |]
      ~fault_of:no_fault spec
  in
  let stats = check_ok r2 in
  Alcotest.(check string) "resumed bytes" reference out;
  Alcotest.(check int) "journaled cells not re-run" (total - 3)
    (Array.fold_left ( + ) 0 h2.exec_count);
  Alcotest.(check int) "no crashes after resume" 0 stats.Dist.sup.crashes

(* a slot that dies hands its unfinished cells to a retired survivor *)
let test_orphan_reassignment () =
  let spec = parse_ok small_spec in
  let slot0_dead ~slot ~attempt:_ =
    if slot = 0 then Crash_after 0 else Clean
  in
  let r, out, reference, _, events = run_dist ~workers:2 ~fault_of:slot0_dead spec in
  let stats = check_ok r in
  Alcotest.(check string) "bytes after reassignment" reference out;
  Alcotest.(check bool) "slot 0 died" true
    (List.exists (function Dist.Death { slot = 0; _ } -> true | _ -> false) events);
  Alcotest.(check bool) "cells moved to slot 1" true
    (List.exists (function Dist.Reassign { slot = 1; _ } -> true | _ -> false) events);
  Alcotest.(check bool) "reassigned count" true (stats.Dist.sup.reassigned > 0)

(* a hung worker (alive, journal not growing) is killed and respawned *)
let test_hang_heartbeat () =
  let spec = parse_ok small_spec in
  let r, out, reference, _, events =
    run_dist ~workers:2
      ~fault_of:(fault_table [ ((0, 1), Hang_after 2) ])
      spec
  in
  let stats = check_ok r in
  Alcotest.(check string) "bytes after hang" reference out;
  Alcotest.(check bool) "stall observed" true
    (List.exists (function Dist.Stall _ -> true | _ -> false) events);
  Alcotest.(check bool) "heartbeat names the timeout" true
    (List.exists (has_substring "heartbeat") (crash_reasons events));
  Alcotest.(check bool) "killed at least once" true (stats.Dist.sup.kills >= 1)

(* --- merge ----------------------------------------------------------- *)

let test_merge_order_independent () =
  let spec = parse_ok small_spec in
  let lines = Array.to_list (serial_lines spec) in
  let conflict =
    (* same cell, different-but-sealed bytes: a corrupt twin *)
    let c = (Spec.cells spec).(0) in
    Journal.line ~idx:0 ~key:c.Spec.key ~cell:c.Spec.label ~rounds:9999
      ~delivered:false ~details:[]
  in
  let torn = String.sub (List.hd lines) 0 (String.length (List.hd lines) - 5) in
  let shards_a = [ lines; [ conflict; torn ]; [ List.hd lines ] ] in
  let shards_b = [ [ torn; conflict ]; List.rev lines; [ List.nth lines 0 ] ] in
  let out_a, stats_a = Dist.merge spec shards_a in
  let out_b, stats_b = Dist.merge spec shards_b in
  Alcotest.(check (list string)) "shard/line order invisible" out_a out_b;
  Alcotest.(check int) "torn dropped" 1 stats_a.Dist.torn;
  Alcotest.(check bool) "conflict counted" true (stats_a.Dist.conflicts >= 1);
  (* idx 0 saw three extra events beyond its accepted line: however the
     twins are ordered, conflicts + duplicates is the same *)
  Alcotest.(check int) "conflict/duplicate split is order-independent"
    (stats_a.Dist.conflicts + stats_a.Dist.duplicates)
    (stats_b.Dist.conflicts + stats_b.Dist.duplicates);
  Alcotest.(check int) "conflicts agree" stats_a.Dist.conflicts
    stats_b.Dist.conflicts;
  Alcotest.(check (list int)) "nothing missing" [] stats_a.Dist.missing;
  Alcotest.(check (list int)) "nothing missing (b)" [] stats_b.Dist.missing;
  (* winner is the lexicographic least of the conflicting twins *)
  let winner = List.hd out_a in
  Alcotest.(check string) "deterministic conflict winner"
    (if String.compare conflict (List.hd lines) < 0 then conflict
     else List.hd lines)
    winner

let test_plan_and_ranges () =
  let pending = Array.init 17 (fun i -> i * 2) in
  let parts = Dist.plan ~workers:5 ~pending in
  Alcotest.(check int) "five shards" 5 (Array.length parts);
  let glued = Array.concat (Array.to_list parts) in
  Alcotest.(check (array int)) "contiguous cover" pending glued;
  Array.iter
    (fun p ->
      Alcotest.(check bool) "balanced" true
        (abs (Array.length p - (17 / 5)) <= 1))
    parts;
  List.iter
    (fun a ->
      Alcotest.(check (array int)) "range round-trip" a
        (Dist.cells_of_string (Dist.cells_to_string a)))
    [ [||]; [| 3 |]; [| 0; 1; 2; 7; 9; 10 |]; Array.init 40 (fun i -> i) ];
  Alcotest.(check string) "compact ranges" "0-2,7,9-10"
    (Dist.cells_to_string [| 0; 1; 2; 7; 9; 10 |]);
  Alcotest.check_raises "malformed ranges rejected"
    (Invalid_argument "Dist.cells_of_string: \"3-\"") (fun () ->
      ignore (Dist.cells_of_string "3-"))

(* --- QCheck: the ISSUE 10 acceptance property ------------------------ *)

let spec_gen =
  QCheck.Gen.(
    let topo_pool =
      [
        "{\"topo\":\"path\",\"n\":11}";
        "{\"topo\":\"star\",\"n\":9}";
        "{\"topo\":\"grid\",\"w\":3,\"h\":4}";
        "{\"topo\":\"layered\",\"depth\":3,\"width\":3,\"p\":0.5,\"seeds\":[1,2]}";
      ]
    and proto_pool =
      [ "{\"proto\":\"decay\"}"; "{\"proto\":\"cr\"}"; "{\"proto\":\"mmv\",\"k\":2}" ]
    in
    let pick_slice pool =
      int_range 0 (List.length pool - 1) >>= fun start ->
      int_range 1 (List.length pool - start) >>= fun len ->
      return (List.filteri (fun i _ -> i >= start && i < start + len) pool)
    in
    pick_slice topo_pool >>= fun topos ->
    pick_slice proto_pool >>= fun protos ->
    int_range 1 3 >>= fun nseeds ->
    let seeds =
      "{\"seeds\":" ^ Rn_util.Jsons.int_array (List.init nseeds (fun i -> i + 1))
      ^ "}"
    in
    return (String.concat "\n" (topos @ protos @ [ seeds ])))

let fault_gen =
  QCheck.Gen.(
    frequency
      [
        (3, return Clean);
        (2, int_range 0 3 >>= fun k -> return (Crash_after k));
        ( 2,
          int_range 0 3 >>= fun k ->
          int_range 0 30 >>= fun tear -> return (Sigkill_after (k, tear)) );
        (1, int_range 0 2 >>= fun k -> return (Exit0_after k));
        (1, int_range 0 2 >>= fun k -> return (Hang_after k));
      ])

(* Random kill schedules over every (slot, attempt) with the final
   attempt clean, so the run always recovers; the merged bytes must
   equal the serial single-process run's, and the per-cell execution
   count stays within the retry budget. *)
let dist_recovery_prop (spec_text, workers, schedules) =
  let spec = parse_ok spec_text in
  let retries = (config workers).Dist.retries in
  let fault_of ~slot ~attempt =
    if attempt > retries then Clean
    else
      match List.nth_opt schedules slot with
      | Some per_slot -> (
          match List.nth_opt per_slot (attempt - 1) with
          | Some f -> f
          | None -> Clean)
      | None -> Clean
  in
  let r, out, reference, h, _ = run_dist ~workers ~fault_of spec in
  (match r with
  | Error m ->
      QCheck.Test.fail_reportf "run failed (%s) workers=%d@.%s" m workers
        spec_text
  | Ok _ -> ());
  if not (String.equal out reference) then
    QCheck.Test.fail_reportf "merged bytes differ at workers=%d@.%s" workers
      spec_text;
  Array.iteri
    (fun idx c ->
      if c > retries + 1 then
        QCheck.Test.fail_reportf
          "cell %d executed %d times (budget %d) at workers=%d" idx c
          (retries + 1) workers)
    h.exec_count;
  true

let dist_recovery =
  QCheck.Test.make ~count:25
    ~name:"distributed crash recovery == serial bytes (QCheck)"
    (QCheck.make
       QCheck.Gen.(
         spec_gen >>= fun s ->
         oneofl [ 1; 2; 4 ] >>= fun w ->
         list_size (return w) (list_size (return 2) fault_gen)
         >>= fun schedules -> return (s, w, schedules)))
    dist_recovery_prop

let () =
  Alcotest.run "dist"
    [
      ( "supervisor",
        [
          Alcotest.test_case "clean fan-out matches serial" `Quick
            test_clean_run;
          Alcotest.test_case "exit 0 with nothing journaled is a crash" `Quick
            test_exit0_nothing_journaled;
          Alcotest.test_case "killed between flush and exit retires" `Quick
            test_killed_between_flush_and_exit;
          Alcotest.test_case "retry exhaustion fails loudly, resume finishes"
            `Quick test_retry_exhaustion_then_resume;
          Alcotest.test_case "orphans reassigned to survivor" `Quick
            test_orphan_reassignment;
          Alcotest.test_case "hung worker killed by heartbeat" `Quick
            test_hang_heartbeat;
        ] );
      ( "merge",
        [
          Alcotest.test_case "order independent, torn/conflict resolved"
            `Quick test_merge_order_independent;
          Alcotest.test_case "plan and cell ranges" `Quick test_plan_and_ranges;
        ] );
      ( "recovery",
        [ QCheck_alcotest.to_alcotest dist_recovery ] );
    ]
