(* Edge-case coverage for the parallel trial runner (Runner.map) and the
   fault-injection helpers (Faults) — previously only exercised indirectly
   through the bench smoke. *)

open Rn_util
open Rn_radio
open Rn_broadcast

(* The concurrency tests below (Atomic tally hammering, serial ≡ parallel)
   only bite with real worker domains; on small machines the pool's
   hardware cap would otherwise run every lane in the calling domain. *)
let () =
  Atomic.set Runner.Pool.size_cap (max 8 (Atomic.get Runner.Pool.size_cap))

(* ------------------------------------------------------------------ *)
(* Runner.map edge cases                                               *)

let test_domains_exceed_items () =
  (* 8 domains over 3 items must clamp to 3 and preserve order. *)
  let out = Runner.map ~domains:8 (fun x -> x * x) [ 1; 2; 3 ] in
  Alcotest.(check (list int)) "order preserved" [ 1; 4; 9 ] out

let test_domains_zero_clamps () =
  let out = Runner.map ~domains:0 (fun x -> x + 1) [ 10; 20; 30 ] in
  Alcotest.(check (list int)) "domains=0 runs serially" [ 11; 21; 31 ] out;
  let out = Runner.map ~domains:(-3) (fun x -> x + 1) [ 10 ] in
  Alcotest.(check (list int)) "negative domains clamp too" [ 11 ] out

let test_empty_items () =
  let called = ref false in
  let out =
    Runner.map ~domains:4
      (fun x ->
        called := true;
        x)
      []
  in
  Alcotest.(check (list int)) "empty in, empty out" [] out;
  Alcotest.(check bool) "f never called" false !called

let test_single_item_many_domains () =
  let out = Runner.map ~domains:16 string_of_int [ 42 ] in
  Alcotest.(check (list string)) "singleton" [ "42" ] out

let test_map_seeds_order () =
  let out =
    Runner.map_seeds ~domains:3 ~seeds:[ 5; 1; 9; 2 ] (fun ~seed -> seed * 10)
  in
  Alcotest.(check (list int)) "seed order preserved" [ 50; 10; 90; 20 ] out

(* Serial-vs-parallel bit-identity: each trial derives everything from its
   seed, so any domain count must reproduce the serial result exactly.
   The trial body runs a real protocol stack to make the property
   meaningful, not just an integer map. *)
let qcheck_bit_identity =
  let open QCheck in
  Test.make ~name:"Runner.map serial == parallel (bit-identical trials)"
    ~count:20
    (pair (int_range 2 8) (list_of_size Gen.(int_range 1 12) small_nat))
    (fun (domains, seeds) ->
      let trial seed =
        let rng = Rng.create ~seed in
        let g =
          Rn_graph.Gen.layered_random ~rng:(Rng.split rng) ~depth:4 ~width:4
            ~p:0.5
        in
        let r = Single_broadcast.run ~rng:(Rng.split rng) ~graph:g ~source:0 () in
        (r.Single_broadcast.rounds_total, r.Single_broadcast.delivered)
      in
      Runner.map ~domains:1 trial seeds = Runner.map ~domains trial seeds)

(* ------------------------------------------------------------------ *)
(* The cross-domain round tally (Engine.simulated_rounds)              *)

let listen_protocol =
  {
    Engine.decide = (fun ~round:_ ~node:_ -> Engine.Listen);
    deliver = (fun ~round:_ ~node:_ _ -> ());
  }

let tiny_star n =
  Rn_graph.Graph.create ~n ~edges:(List.init (n - 1) (fun i -> (0, i + 1)))

let quiet_run ~max_rounds () =
  let (_ : Engine.outcome) =
    Engine.run ~graph:(tiny_star 8) ~detection:Engine.Collision_detection
      ~protocol:listen_protocol
      ~stop:(fun ~round:_ -> false)
      ~max_rounds ()
  in
  ()

(* Every Engine.run bumps the shared Atomic round tally once on exit.
   Hammer it from every domain concurrently: with [trials] runs racing
   their fetch_and_add, the total must equal the serial sum exactly — a
   single lost update (the bug a plain ref would have) shows up as a
   shortfall. *)
let test_concurrent_tally_no_lost_updates () =
  let trials = 64 and rounds_each = 10 in
  let before = Engine.total_simulated_rounds () in
  quiet_run ~max_rounds:rounds_each ();
  let per_run = Engine.total_simulated_rounds () - before in
  Alcotest.(check bool) "one run advances the tally" true (per_run > 0);
  let before_serial = Engine.total_simulated_rounds () in
  let (_ : unit list) =
    Runner.map ~domains:1
      (fun _ -> quiet_run ~max_rounds:rounds_each ())
      (List.init trials Fun.id)
  in
  let serial_delta = Engine.total_simulated_rounds () - before_serial in
  Alcotest.(check int) "serial tally is trials * per-run" (trials * per_run)
    serial_delta;
  let before_par = Engine.total_simulated_rounds () in
  let (_ : unit list) =
    Runner.map ~domains:(Runner.default_domains ())
      (fun _ -> quiet_run ~max_rounds:rounds_each ())
      (List.init trials Fun.id)
  in
  let par_delta = Engine.total_simulated_rounds () - before_par in
  Alcotest.(check int) "concurrent Atomic tally equals the serial sum"
    serial_delta par_delta

(* The tally also feeds real protocol runs fanned out by the bench: the
   delta accumulated across a parallel ensemble must match the serial
   ensemble bit-for-bit, like the results themselves. *)
let test_concurrent_tally_protocol_ensemble () =
  let seeds = List.init 24 (fun i -> 500 + i) in
  let trial ~seed =
    let rng = Rng.create ~seed in
    let g =
      Rn_graph.Gen.layered_random ~rng:(Rng.split rng) ~depth:3 ~width:3 ~p:0.6
    in
    let r = Single_broadcast.run ~rng:(Rng.split rng) ~graph:g ~source:0 () in
    r.Single_broadcast.rounds_total
  in
  let before = Engine.total_simulated_rounds () in
  let serial = Runner.map_seeds ~domains:1 ~seeds trial in
  let serial_delta = Engine.total_simulated_rounds () - before in
  let before = Engine.total_simulated_rounds () in
  let par = Runner.map_seeds ~domains:6 ~seeds trial in
  let par_delta = Engine.total_simulated_rounds () - before in
  Alcotest.(check (list int)) "trial results bit-identical" serial par;
  Alcotest.(check int) "tally delta identical under parallel fan-out"
    serial_delta par_delta;
  Alcotest.(check bool) "tally advanced" true (serial_delta > 0)

(* Alloc budget: reading the Atomic tally from inside the round loop must
   stay off the minor heap — Atomic.get is a plain load and the count is
   an immediate int, so polling it every round keeps the quiet steady
   state at exactly zero minor words (the same budget test_alloc.ml
   proves for the unpolled loop). *)
let test_tally_read_alloc_free () =
  let warmup = 16 and rounds = 256 in
  let marks = [| 0.0; 0.0 |] in
  let sink = [| 0 |] in
  let after_round ~round =
    sink.(0) <- Engine.total_simulated_rounds ();
    if round = warmup then marks.(0) <- Gc.minor_words ()
    else if round = warmup + rounds then marks.(1) <- Gc.minor_words ()
  in
  let (_ : Engine.outcome) =
    Engine.run ~after_round ~graph:(tiny_star 128)
      ~detection:Engine.Collision_detection ~protocol:listen_protocol
      ~stop:(fun ~round:_ -> false)
      ~max_rounds:(warmup + rounds + 2) ()
  in
  Alcotest.(check (float 0.0))
    "polling the round tally allocates zero minor words" 0.0
    (marks.(1) -. marks.(0))

(* ------------------------------------------------------------------ *)
(* Faults                                                              *)

let action_testable =
  Alcotest.testable
    (fun fmt a ->
      Format.pp_print_string fmt
        (match a with
        | Engine.Sleep -> "Sleep"
        | Engine.Listen -> "Listen"
        | Engine.Transmit m -> Printf.sprintf "Transmit %d" m))
    (fun a b ->
      match (a, b) with
      | Engine.Sleep, Engine.Sleep | Engine.Listen, Engine.Listen -> true
      | Engine.Transmit x, Engine.Transmit y -> x = y
      | _ -> false)

let test_jammers_p1_always_jam () =
  let rng = Rng.create ~seed:3 in
  let p =
    Faults.with_jammers ~rng ~jammers:[| 1; 3 |] ~p:1.0 ~noise:(-7)
      listen_protocol
  in
  for round = 0 to 9 do
    Alcotest.check action_testable "jammer transmits noise"
      (Engine.Transmit (-7))
      (p.Engine.decide ~round ~node:1);
    Alcotest.check action_testable "non-jammer falls through" Engine.Listen
      (p.Engine.decide ~round ~node:2)
  done

let test_jammers_p0_never_jam () =
  let rng = Rng.create ~seed:3 in
  let p =
    Faults.with_jammers ~rng ~jammers:[| 0; 2 |] ~p:0.0 ~noise:(-7)
      listen_protocol
  in
  for round = 0 to 9 do
    Alcotest.check action_testable "p=0 jammer never jams" Engine.Listen
      (p.Engine.decide ~round ~node:0)
  done

let test_jammers_deterministic () =
  let mk () =
    Faults.with_jammers ~rng:(Rng.create ~seed:11) ~jammers:[| 0; 1; 2 |]
      ~p:0.5 ~noise:99 listen_protocol
  in
  let a = mk () and b = mk () in
  for round = 0 to 49 do
    for node = 0 to 2 do
      Alcotest.check action_testable "same seed, same jam schedule"
        (a.Engine.decide ~round ~node)
        (b.Engine.decide ~round ~node)
    done
  done

let test_pick_jammers_properties () =
  let rng = Rng.create ~seed:5 in
  let jammers = Faults.pick_jammers ~rng ~n:50 ~count:10 ~exclude:[| 0; 7 |] in
  Alcotest.(check int) "count respected" 10 (Array.length jammers);
  Array.iter
    (fun v ->
      if v = 0 || v = 7 then Alcotest.failf "excluded node %d picked" v;
      if v < 0 || v >= 50 then Alcotest.failf "node %d out of range" v)
    jammers;
  let sorted = Array.copy jammers in
  Array.sort Int.compare sorted;
  for i = 1 to Array.length sorted - 1 do
    if sorted.(i) = sorted.(i - 1) then
      Alcotest.failf "duplicate jammer %d" sorted.(i)
  done

let test_pick_jammers_errors () =
  let raises f =
    match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "negative count rejected" true
    (raises (fun () ->
         Faults.pick_jammers ~rng:(Rng.create ~seed:1) ~n:5 ~count:(-1)
           ~exclude:[||]));
  Alcotest.(check bool) "count > candidates rejected" true
    (raises (fun () ->
         Faults.pick_jammers ~rng:(Rng.create ~seed:1) ~n:5 ~count:5
           ~exclude:[| 0 |]))

(* End-to-end: a broadcast through a jammed network still completes (the
   jammers only add collisions) and is reproducible from its seed. *)
let test_jammed_broadcast_deterministic () =
  let run_once () =
    let rng = Rng.create ~seed:21 in
    let g =
      Rn_graph.Gen.layered_random ~rng:(Rng.split rng) ~depth:4 ~width:4 ~p:0.5
    in
    let jammers =
      Faults.pick_jammers ~rng:(Rng.split rng) ~n:(Rn_graph.Graph.n g) ~count:2
        ~exclude:[| 0 |]
    in
    let r =
      Single_broadcast.run ~rng:(Rng.split rng) ~graph:g ~source:0 ()
    in
    (Array.to_list jammers, r.Single_broadcast.rounds_total)
  in
  Alcotest.(check (pair (list int) int))
    "jammed run replays bit-identically" (run_once ()) (run_once ())

let () =
  Alcotest.run "runner-faults"
    [
      ( "runner",
        [
          Alcotest.test_case "domains > items" `Quick test_domains_exceed_items;
          Alcotest.test_case "domains = 0 clamps" `Quick
            test_domains_zero_clamps;
          Alcotest.test_case "empty items" `Quick test_empty_items;
          Alcotest.test_case "single item" `Quick test_single_item_many_domains;
          Alcotest.test_case "map_seeds order" `Quick test_map_seeds_order;
          QCheck_alcotest.to_alcotest qcheck_bit_identity;
        ] );
      ( "round tally",
        [
          Alcotest.test_case "no lost updates under concurrent bumps" `Quick
            test_concurrent_tally_no_lost_updates;
          Alcotest.test_case "parallel ensemble tally equals serial" `Quick
            test_concurrent_tally_protocol_ensemble;
          Alcotest.test_case "tally reads stay off the minor heap" `Quick
            test_tally_read_alloc_free;
        ] );
      ( "faults",
        [
          Alcotest.test_case "p=1 always jams" `Quick test_jammers_p1_always_jam;
          Alcotest.test_case "p=0 never jams" `Quick test_jammers_p0_never_jam;
          Alcotest.test_case "jam schedule deterministic" `Quick
            test_jammers_deterministic;
          Alcotest.test_case "pick_jammers properties" `Quick
            test_pick_jammers_properties;
          Alcotest.test_case "pick_jammers errors" `Quick
            test_pick_jammers_errors;
          Alcotest.test_case "jammed broadcast deterministic" `Quick
            test_jammed_broadcast_deterministic;
        ] );
    ]
