(* Edge-case coverage for the parallel trial runner (Runner.map) and the
   fault-injection helpers (Faults) — previously only exercised indirectly
   through the bench smoke. *)

open Rn_util
open Rn_radio
open Rn_broadcast

(* ------------------------------------------------------------------ *)
(* Runner.map edge cases                                               *)

let test_domains_exceed_items () =
  (* 8 domains over 3 items must clamp to 3 and preserve order. *)
  let out = Runner.map ~domains:8 (fun x -> x * x) [ 1; 2; 3 ] in
  Alcotest.(check (list int)) "order preserved" [ 1; 4; 9 ] out

let test_domains_zero_clamps () =
  let out = Runner.map ~domains:0 (fun x -> x + 1) [ 10; 20; 30 ] in
  Alcotest.(check (list int)) "domains=0 runs serially" [ 11; 21; 31 ] out;
  let out = Runner.map ~domains:(-3) (fun x -> x + 1) [ 10 ] in
  Alcotest.(check (list int)) "negative domains clamp too" [ 11 ] out

let test_empty_items () =
  let called = ref false in
  let out =
    Runner.map ~domains:4
      (fun x ->
        called := true;
        x)
      []
  in
  Alcotest.(check (list int)) "empty in, empty out" [] out;
  Alcotest.(check bool) "f never called" false !called

let test_single_item_many_domains () =
  let out = Runner.map ~domains:16 string_of_int [ 42 ] in
  Alcotest.(check (list string)) "singleton" [ "42" ] out

let test_map_seeds_order () =
  let out =
    Runner.map_seeds ~domains:3 ~seeds:[ 5; 1; 9; 2 ] (fun ~seed -> seed * 10)
  in
  Alcotest.(check (list int)) "seed order preserved" [ 50; 10; 90; 20 ] out

(* Serial-vs-parallel bit-identity: each trial derives everything from its
   seed, so any domain count must reproduce the serial result exactly.
   The trial body runs a real protocol stack to make the property
   meaningful, not just an integer map. *)
let qcheck_bit_identity =
  let open QCheck in
  Test.make ~name:"Runner.map serial == parallel (bit-identical trials)"
    ~count:20
    (pair (int_range 2 8) (list_of_size Gen.(int_range 1 12) small_nat))
    (fun (domains, seeds) ->
      let trial seed =
        let rng = Rng.create ~seed in
        let g =
          Rn_graph.Gen.layered_random ~rng:(Rng.split rng) ~depth:4 ~width:4
            ~p:0.5
        in
        let r = Single_broadcast.run ~rng:(Rng.split rng) ~graph:g ~source:0 () in
        (r.Single_broadcast.rounds_total, r.Single_broadcast.delivered)
      in
      Runner.map ~domains:1 trial seeds = Runner.map ~domains trial seeds)

(* ------------------------------------------------------------------ *)
(* Faults                                                              *)

let listen_protocol =
  {
    Engine.decide = (fun ~round:_ ~node:_ -> Engine.Listen);
    deliver = (fun ~round:_ ~node:_ _ -> ());
  }

let action_testable =
  Alcotest.testable
    (fun fmt a ->
      Format.pp_print_string fmt
        (match a with
        | Engine.Sleep -> "Sleep"
        | Engine.Listen -> "Listen"
        | Engine.Transmit m -> Printf.sprintf "Transmit %d" m))
    (fun a b ->
      match (a, b) with
      | Engine.Sleep, Engine.Sleep | Engine.Listen, Engine.Listen -> true
      | Engine.Transmit x, Engine.Transmit y -> x = y
      | _ -> false)

let test_jammers_p1_always_jam () =
  let rng = Rng.create ~seed:3 in
  let p =
    Faults.with_jammers ~rng ~jammers:[| 1; 3 |] ~p:1.0 ~noise:(-7)
      listen_protocol
  in
  for round = 0 to 9 do
    Alcotest.check action_testable "jammer transmits noise"
      (Engine.Transmit (-7))
      (p.Engine.decide ~round ~node:1);
    Alcotest.check action_testable "non-jammer falls through" Engine.Listen
      (p.Engine.decide ~round ~node:2)
  done

let test_jammers_p0_never_jam () =
  let rng = Rng.create ~seed:3 in
  let p =
    Faults.with_jammers ~rng ~jammers:[| 0; 2 |] ~p:0.0 ~noise:(-7)
      listen_protocol
  in
  for round = 0 to 9 do
    Alcotest.check action_testable "p=0 jammer never jams" Engine.Listen
      (p.Engine.decide ~round ~node:0)
  done

let test_jammers_deterministic () =
  let mk () =
    Faults.with_jammers ~rng:(Rng.create ~seed:11) ~jammers:[| 0; 1; 2 |]
      ~p:0.5 ~noise:99 listen_protocol
  in
  let a = mk () and b = mk () in
  for round = 0 to 49 do
    for node = 0 to 2 do
      Alcotest.check action_testable "same seed, same jam schedule"
        (a.Engine.decide ~round ~node)
        (b.Engine.decide ~round ~node)
    done
  done

let test_pick_jammers_properties () =
  let rng = Rng.create ~seed:5 in
  let jammers = Faults.pick_jammers ~rng ~n:50 ~count:10 ~exclude:[| 0; 7 |] in
  Alcotest.(check int) "count respected" 10 (Array.length jammers);
  Array.iter
    (fun v ->
      if v = 0 || v = 7 then Alcotest.failf "excluded node %d picked" v;
      if v < 0 || v >= 50 then Alcotest.failf "node %d out of range" v)
    jammers;
  let sorted = Array.copy jammers in
  Array.sort Int.compare sorted;
  for i = 1 to Array.length sorted - 1 do
    if sorted.(i) = sorted.(i - 1) then
      Alcotest.failf "duplicate jammer %d" sorted.(i)
  done

let test_pick_jammers_errors () =
  let raises f =
    match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "negative count rejected" true
    (raises (fun () ->
         Faults.pick_jammers ~rng:(Rng.create ~seed:1) ~n:5 ~count:(-1)
           ~exclude:[||]));
  Alcotest.(check bool) "count > candidates rejected" true
    (raises (fun () ->
         Faults.pick_jammers ~rng:(Rng.create ~seed:1) ~n:5 ~count:5
           ~exclude:[| 0 |]))

(* End-to-end: a broadcast through a jammed network still completes (the
   jammers only add collisions) and is reproducible from its seed. *)
let test_jammed_broadcast_deterministic () =
  let run_once () =
    let rng = Rng.create ~seed:21 in
    let g =
      Rn_graph.Gen.layered_random ~rng:(Rng.split rng) ~depth:4 ~width:4 ~p:0.5
    in
    let jammers =
      Faults.pick_jammers ~rng:(Rng.split rng) ~n:(Rn_graph.Graph.n g) ~count:2
        ~exclude:[| 0 |]
    in
    let r =
      Single_broadcast.run ~rng:(Rng.split rng) ~graph:g ~source:0 ()
    in
    (Array.to_list jammers, r.Single_broadcast.rounds_total)
  in
  Alcotest.(check (pair (list int) int))
    "jammed run replays bit-identically" (run_once ()) (run_once ())

let () =
  Alcotest.run "runner-faults"
    [
      ( "runner",
        [
          Alcotest.test_case "domains > items" `Quick test_domains_exceed_items;
          Alcotest.test_case "domains = 0 clamps" `Quick
            test_domains_zero_clamps;
          Alcotest.test_case "empty items" `Quick test_empty_items;
          Alcotest.test_case "single item" `Quick test_single_item_many_domains;
          Alcotest.test_case "map_seeds order" `Quick test_map_seeds_order;
          QCheck_alcotest.to_alcotest qcheck_bit_identity;
        ] );
      ( "faults",
        [
          Alcotest.test_case "p=1 always jams" `Quick test_jammers_p1_always_jam;
          Alcotest.test_case "p=0 never jams" `Quick test_jammers_p0_never_jam;
          Alcotest.test_case "jam schedule deterministic" `Quick
            test_jammers_deterministic;
          Alcotest.test_case "pick_jammers properties" `Quick
            test_pick_jammers_properties;
          Alcotest.test_case "pick_jammers errors" `Quick
            test_pick_jammers_errors;
          Alcotest.test_case "jammed broadcast deterministic" `Quick
            test_jammed_broadcast_deterministic;
        ] );
    ]
