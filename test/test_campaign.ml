(* Campaign runner: spec expansion, journal round-trips, and the crash
   recovery contract of DESIGN.md §14 — a campaign killed after an
   arbitrary prefix of cells and resumed from its journal must produce
   output byte-identical to an uninterrupted run, at every domain count,
   schedule, and cache setting, while re-running zero journaled cells. *)

open Rn_campaign
open Rn_broadcast

let () = Protocols.ensure_registered ()

(* Force real worker domains so domains 2/4 genuinely cross the pool on
   small machines (the hardware cap would otherwise degrade every lane to
   the calling domain and the byte-identity checks would be vacuous). *)
let () =
  Atomic.set Rn_radio.Runner.Pool.size_cap
    (max 8 (Atomic.get Rn_radio.Runner.Pool.size_cap))

let parse_ok text =
  match Spec.parse text with
  | Ok spec -> spec
  | Error msg -> Alcotest.failf "spec rejected: %s" msg

let parse_err text =
  match Spec.parse text with
  | Ok _ -> Alcotest.failf "spec accepted: %s" text
  | Error msg -> msg

let small_spec =
  "{\"topo\":\"path\",\"n\":10}\n"
  ^ "{\"topo\":\"layered\",\"depth\":3,\"width\":3,\"p\":0.5,\"seeds\":[1,2]}\n"
  ^ "# a comment line\n" ^ "{\"proto\":\"decay\"}\n" ^ "{\"proto\":\"cr\"}\n"
  ^ "{\"seeds\":[1,2,3]}\n"

(* --- spec ----------------------------------------------------------- *)

let test_spec_expansion () =
  let spec = parse_ok small_spec in
  let instances = Spec.instances spec in
  let cells = Spec.cells spec in
  Alcotest.(check int) "instances" 3 (Array.length instances);
  Alcotest.(check int) "cells = 3 topos * 2 protos * 3 seeds" 18
    (Array.length cells);
  Alcotest.(check string)
    "first instance label" "path(n=10)"
    (Spec.instance_label instances.(0));
  Alcotest.(check string)
    "seeded instance label" "layered(depth=3,width=3,p=0.5,tseed=2)"
    (Spec.instance_label instances.(2));
  Array.iteri
    (fun i (c : Spec.cell) ->
      Alcotest.(check int) "idx is position" i c.idx;
      Alcotest.(check int) "key is 16 hex chars" 16 (String.length c.key))
    cells;
  Alcotest.(check string)
    "first cell label" "path(n=10)|decay|seed=1"
    cells.(0).label;
  (* keys are distinct and schedule-independent: derived only from labels *)
  let keys = Array.to_list (Array.map (fun (c : Spec.cell) -> c.key) cells) in
  let sorted = List.sort_uniq String.compare keys in
  Alcotest.(check int) "keys distinct" (List.length keys) (List.length sorted)

let test_spec_build_deterministic () =
  let spec = parse_ok small_spec in
  let inst = (Spec.instances spec).(1) in
  let a = Spec.build inst and b = Spec.build inst in
  Alcotest.(check int)
    "same node count" (Rn_graph.Graph.n a) (Rn_graph.Graph.n b);
  let da = Rn_graph.Gen.dot a and db = Rn_graph.Gen.dot b in
  Alcotest.(check string) "byte-identical rebuild" da db

let test_spec_errors () =
  let has needle msg =
    Alcotest.(check bool)
      (Printf.sprintf "%S mentions %S" msg needle)
      true
      (let rec find i =
         i + String.length needle <= String.length msg
         && (String.equal (String.sub msg i (String.length needle)) needle
            || find (i + 1))
       in
       find 0)
  in
  has "unknown generator" (parse_err "{\"topo\":\"moebius\",\"n\":4}\n{\"proto\":\"decay\"}");
  has "unknown field" (parse_err "{\"topo\":\"path\",\"n\":4,\"m\":2}\n{\"proto\":\"decay\"}");
  has "deterministic" (parse_err "{\"topo\":\"path\",\"n\":4,\"seeds\":[1]}\n{\"proto\":\"decay\"}");
  has "no \"proto\"" (parse_err "{\"topo\":\"path\",\"n\":4}");
  has "no \"topo\"" (parse_err "{\"proto\":\"decay\"}");
  has "duplicate" (parse_err "{\"topo\":\"path\",\"n\":4}\n{\"proto\":\"decay\"}\n{\"proto\":\"decay\"}");
  has "needs integer" (parse_err "{\"topo\":\"path\"}\n{\"proto\":\"decay\"}");
  has "spec line 2" (parse_err "{\"topo\":\"path\",\"n\":4}\nnot json\n{\"proto\":\"decay\"}")

(* --- journal --------------------------------------------------------- *)

let test_journal_roundtrip () =
  let line =
    Journal.line ~idx:17 ~key:"00ff00ff00ff00ff" ~cell:"path(n=4)|decay|seed=1"
      ~rounds:42 ~delivered:true
      ~details:[ ("phase_rounds", "12,8"); ("note", "a\"b\\c") ]
  in
  (match Journal.parse_line line with
  | Some (idx, key, rounds) ->
      Alcotest.(check int) "idx" 17 idx;
      Alcotest.(check string) "key" "00ff00ff00ff00ff" key;
      Alcotest.(check int) "rounds" 42 rounds
  | None -> Alcotest.fail "journal line failed to parse");
  Alcotest.(check (option (triple int string int)))
    "garbage line rejected" None
    (Journal.parse_line "{\"idx\":3,\"key\":\"ab");
  Alcotest.(check (option (triple int string int)))
    "non-journal object rejected" None
    (Journal.parse_line "{\"rounds\":3}")

(* Regression for ISSUE 10 satellite: a journal line torn inside the
   details can still close as valid JSON with idx/key/rounds intact —
   before the end-of-record seal, merge/resume mistook it for a complete
   cell. *)
let test_journal_truncated_but_valid_json () =
  let full =
    Journal.line ~idx:5 ~key:"00ff00ff00ff00ff" ~cell:"path(n=4)|decay|seed=1"
      ~rounds:42 ~delivered:true
      ~details:[ ("phase_rounds", "12,8"); ("gst_rounds", "9") ]
  in
  (match Journal.parse_line full with
  | Some _ -> ()
  | None -> Alcotest.fail "sealed full line must parse");
  (* byte-level truncation at the start of the details, re-closed by the
     torn byte stream: the result is valid JSON carrying idx/key/rounds *)
  let cut =
    let rec find i =
      if i + 4 > String.length full then Alcotest.fail "no details found"
      else if String.equal (String.sub full i 4) ",\"d_" then i
      else find (i + 1)
    in
    find 0
  in
  let torn = String.sub full 0 cut ^ "}" in
  (match Rn_util.Jsons.parse_obj torn with
  | Ok fields ->
      (* the trap: the torn line still looks complete field-wise *)
      Alcotest.(check (option int))
        "torn line still has idx" (Some 5)
        (Rn_util.Jsons.int_mem "idx" fields)
  | Error _ -> Alcotest.fail "torn line should still be valid JSON");
  Alcotest.(check (option (triple int string int)))
    "torn-but-valid-JSON line rejected" None (Journal.parse_line torn);
  (* an unsealed (pre-ISSUE-10) line is rejected too: resume re-runs it *)
  let unsealed =
    "{\"idx\":5,\"key\":\"00ff00ff00ff00ff\",\"cell\":\"c\",\"rounds\":42,\
     \"delivered\":true}"
  in
  Alcotest.(check (option (triple int string int)))
    "unsealed line rejected" None (Journal.parse_line unsealed);
  (* a glued line (torn tail + later record appended) must not parse even
     when the glue point makes the bytes scan as one JSON object *)
  let glued = String.sub full 0 cut ^ String.sub full cut (String.length full - cut) ^ "" in
  Alcotest.(check (option (triple int string int)))
    "identity glue still parses (sanity)" (Some (5, "00ff00ff00ff00ff", 42))
    (Journal.parse_line glued);
  let padded =
    (* extra bytes between details and seal: length check must fail *)
    let l = String.length full in
    String.sub full 0 (l - 1) ^ ",\"d_x\":\"1\"}"
  in
  Alcotest.(check (option (triple int string int)))
    "seal not last field rejected" None (Journal.parse_line padded)

(* --- campaign runs --------------------------------------------------- *)

let run_collect ?domains ?schedule ?cache ?journal ?resume_lines ?abort_after
    spec =
  let buf = Buffer.create 4096 in
  let stats =
    Campaign.run ?domains ?schedule ?cache ?journal ?resume_lines ?abort_after
      ~emit:(fun line ->
        Buffer.add_string buf line;
        Buffer.add_char buf '\n')
      spec
  in
  (Buffer.contents buf, stats)

let test_run_complete () =
  let spec = parse_ok small_spec in
  let out, stats = run_collect ~domains:1 spec in
  Alcotest.(check int) "all cells executed" 18 stats.Campaign.executed;
  Alcotest.(check int) "none replayed" 0 stats.Campaign.replayed;
  Alcotest.(check bool) "not aborted" false stats.Campaign.aborted;
  let lines = String.split_on_char '\n' (String.trim out) in
  Alcotest.(check int) "one line per cell" 18 (List.length lines);
  (* output is in cell-index order and parses as journal lines *)
  List.iteri
    (fun i line ->
      match Journal.parse_line line with
      | Some (idx, key, _) ->
          Alcotest.(check int) "line order" i idx;
          Alcotest.(check string) "key matches spec" (Spec.cells spec).(i).key
            key
      | None -> Alcotest.failf "unparseable output line %d" i)
    lines

let test_run_schedule_independent () =
  let spec = parse_ok small_spec in
  let reference, _ = run_collect ~domains:1 spec in
  List.iter
    (fun (domains, schedule, cache) ->
      let out, stats = run_collect ~domains ~schedule ~cache spec in
      Alcotest.(check string)
        (Printf.sprintf "bytes at domains=%d cache=%b" domains cache)
        reference out;
      Alcotest.(check int)
        "executed all" 18 stats.Campaign.executed)
    [
      (1, Campaign.Static, false);
      (2, Campaign.Stealing, true);
      (2, Campaign.Static, true);
      (4, Campaign.Stealing, false);
      (4, Campaign.Stealing, true);
      (8, Campaign.Stealing, true);
    ]

let test_abort_zero () =
  let spec = parse_ok small_spec in
  let journal = Buffer.create 256 in
  let out, stats =
    run_collect ~domains:2 ~abort_after:0
      ~journal:(fun l ->
        Buffer.add_string journal l;
        Buffer.add_char journal '\n')
      spec
  in
  Alcotest.(check bool) "aborted" true stats.Campaign.aborted;
  Alcotest.(check string) "nothing journaled" "" (Buffer.contents journal);
  Alcotest.(check string) "nothing emitted" "" out

let test_resume_after_corrupt_tail () =
  let spec = parse_ok small_spec in
  let reference, _ = run_collect ~domains:1 spec in
  let journal = Buffer.create 1024 in
  let _, stats =
    run_collect ~domains:1 ~abort_after:7
      ~journal:(fun l ->
        Buffer.add_string journal l;
        Buffer.add_char journal '\n')
      spec
  in
  Alcotest.(check bool) "aborted" true stats.Campaign.aborted;
  (* chop the journal mid-line, as a kill between write and flush would *)
  let j = Buffer.contents journal in
  let torn = String.sub j 0 (String.length j - 9) in
  let lines =
    List.filter
      (fun l -> not (String.equal l ""))
      (String.split_on_char '\n' torn)
  in
  let out, stats = run_collect ~domains:2 ~resume_lines:lines spec in
  Alcotest.(check string) "resume == uninterrupted" reference out;
  Alcotest.(check int) "torn line replays short" 6 stats.Campaign.replayed;
  Alcotest.(check int) "only the rest re-ran" 12 stats.Campaign.executed

let test_resume_ignores_stale_lines () =
  let spec = parse_ok small_spec in
  let reference, _ = run_collect ~domains:1 spec in
  let stale =
    [
      (* right shape, wrong key: a journal from a different spec *)
      Journal.line ~idx:0 ~key:"beefbeefbeefbeef" ~cell:"path(n=9)|decay|seed=1"
        ~rounds:3 ~delivered:true ~details:[];
      "not json at all";
    ]
  in
  let out, stats = run_collect ~resume_lines:stale spec in
  Alcotest.(check string) "stale journal is harmless" reference out;
  Alcotest.(check int) "nothing replayed" 0 stats.Campaign.replayed;
  Alcotest.(check int) "everything re-ran" 18 stats.Campaign.executed

(* --- QCheck: crash at a random prefix, resume, compare bytes ---------- *)

let spec_gen =
  QCheck.Gen.(
    let topo_pool =
      [
        "{\"topo\":\"path\",\"n\":11}";
        "{\"topo\":\"star\",\"n\":9}";
        "{\"topo\":\"grid\",\"w\":3,\"h\":4}";
        "{\"topo\":\"layered\",\"depth\":3,\"width\":3,\"p\":0.5,\"seeds\":[1,2]}";
        "{\"topo\":\"disk\",\"n\":12,\"radius\":0.6,\"seeds\":[7]}";
      ]
    and proto_pool =
      [ "{\"proto\":\"decay\"}"; "{\"proto\":\"cr\"}"; "{\"proto\":\"mmv\",\"k\":2}" ]
    in
    let pick_slice pool =
      (* a random non-empty contiguous slice, preserving pool order
         (specs reject duplicate cells, so each line appears at most
         once) *)
      int_range 0 (List.length pool - 1) >>= fun start ->
      int_range 1 (List.length pool - start) >>= fun len ->
      return (List.filteri (fun i _ -> i >= start && i < start + len) pool)
    in
    pick_slice topo_pool >>= fun topos ->
    pick_slice proto_pool >>= fun protos ->
    int_range 1 3 >>= fun nseeds ->
    let seeds =
      "{\"seeds\":" ^ Rn_util.Jsons.int_array (List.init nseeds (fun i -> i + 1))
      ^ "}"
    in
    return (String.concat "\n" (topos @ protos @ [ seeds ])))

let crash_recovery_prop (spec_text, cut_frac, domains) =
  let spec = parse_ok spec_text in
  let total = Array.length (Spec.cells spec) in
  let reference, _ = run_collect ~domains:1 spec in
  let cut = int_of_float (cut_frac *. float_of_int total) in
  let journal = Buffer.create 1024 in
  let _, aborted_stats =
    run_collect ~domains ~abort_after:cut
      ~journal:(fun l ->
        Buffer.add_string journal l;
        Buffer.add_char journal '\n')
      spec
  in
  let lines =
    List.filter
      (fun l -> not (String.equal l ""))
      (String.split_on_char '\n' (Buffer.contents journal))
  in
  let out, stats = run_collect ~domains ~resume_lines:lines spec in
  if not (String.equal out reference) then
    QCheck.Test.fail_reportf "resumed bytes differ (domains=%d cut=%d)@.%s"
      domains cut spec_text;
  if stats.Campaign.replayed <> List.length lines then
    QCheck.Test.fail_reportf "journaled %d but replayed %d"
      (List.length lines) stats.Campaign.replayed;
  (* zero re-runs of journaled cells *)
  if stats.Campaign.executed <> total - stats.Campaign.replayed then
    QCheck.Test.fail_reportf "executed %d, expected %d re-runs only"
      stats.Campaign.executed
      (total - stats.Campaign.replayed);
  if cut < total && not aborted_stats.Campaign.aborted then
    QCheck.Test.fail_reportf "abort_after %d of %d did not abort" cut total;
  true

let crash_recovery =
  QCheck.Test.make ~count:25 ~name:"campaign crash recovery (QCheck)"
    (QCheck.make
       QCheck.Gen.(
         spec_gen >>= fun s ->
         float_bound_inclusive 1.0 >>= fun frac ->
         oneofl [ 1; 2; 4 ] >>= fun d -> return (s, frac, d)))
    crash_recovery_prop

let () =
  Alcotest.run "campaign"
    [
      ( "spec",
        [
          Alcotest.test_case "expansion" `Quick test_spec_expansion;
          Alcotest.test_case "deterministic build" `Quick
            test_spec_build_deterministic;
          Alcotest.test_case "errors" `Quick test_spec_errors;
        ] );
      ( "journal",
        [
          Alcotest.test_case "round trip" `Quick test_journal_roundtrip;
          Alcotest.test_case "truncated-but-valid-JSON line rejected" `Quick
            test_journal_truncated_but_valid_json;
        ] );
      ( "run",
        [
          Alcotest.test_case "complete run" `Quick test_run_complete;
          Alcotest.test_case "schedule independence" `Quick
            test_run_schedule_independent;
          Alcotest.test_case "abort after zero" `Quick test_abort_zero;
          Alcotest.test_case "resume after torn tail" `Quick
            test_resume_after_corrupt_tail;
          Alcotest.test_case "stale journal ignored" `Quick
            test_resume_ignores_stale_lines;
        ] );
      ( "recovery",
        [ QCheck_alcotest.to_alcotest crash_recovery ] );
    ]
