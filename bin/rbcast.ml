(* rbcast — command-line driver for the radio-broadcast library.

   Subcommands:
     rbcast broadcast  single-message broadcast with a chosen algorithm
     rbcast multi      k-message broadcast (Theorems 1.2 / 1.3, baselines)
     rbcast gst        build a GST (centralized or distributed) and report
     rbcast topo       describe or export a generated topology *)

open Cmdliner
open Rn_util
open Rn_graph
open Rn_broadcast

(* ------------------------------------------------------------------ *)
(* Topology specification *)

type topo =
  | Path
  | Cycle
  | Star
  | Grid
  | Tree
  | Random
  | Layered
  | Clusters
  | Disk

let topo_conv =
  Arg.enum
    [
      ("path", Path); ("cycle", Cycle); ("star", Star); ("grid", Grid);
      ("tree", Tree); ("random", Random); ("layered", Layered);
      ("clusters", Clusters); ("disk", Disk);
    ]

let build_graph topo n depth seed =
  let rng = Rng.create ~seed in
  match topo with
  | Path -> Gen.path n
  | Cycle -> Gen.cycle (max 3 n)
  | Star -> Gen.star n
  | Grid ->
      let w = max 1 (Ilog.isqrt n) in
      Gen.grid ~w ~h:(max 1 (Ilog.cdiv n w))
  | Tree ->
      let d = max 1 depth in
      Gen.balanced_tree ~arity:2 ~depth:d
  | Random -> Gen.random_connected ~rng ~n ~extra:(n * 3 / 2)
  | Layered ->
      let d = max 1 depth in
      Gen.layered_random ~rng ~depth:d ~width:(max 1 ((n - 1) / d)) ~p:0.3
  | Clusters ->
      let d = max 1 depth in
      Gen.cluster_path ~rng ~clusters:d ~size:(max 1 (n / d)) ~p_intra:0.4
  | Disk -> Gen.unit_disk ~rng ~n ~radius:(1.8 /. sqrt (float_of_int n))

let topo_args =
  let topo =
    Arg.(value & opt topo_conv Random & info [ "topo" ] ~docv:"TOPO"
           ~doc:"Topology: path, cycle, star, grid, tree, random, layered, \
                 clusters or disk.")
  in
  let n =
    Arg.(value & opt int 64 & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Number of nodes.")
  in
  let depth =
    Arg.(value & opt int 8 & info [ "depth" ] ~docv:"DEPTH"
           ~doc:"Depth parameter for layered/clusters/tree topologies.")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")
  in
  Term.(const build_graph $ topo $ n $ depth $ seed)

let seed_arg =
  Arg.(value & opt int 42 & info [ "run-seed" ] ~docv:"SEED"
         ~doc:"Seed for the protocol's randomness.")

(* ------------------------------------------------------------------ *)
(* Protocol selection — enumerated from the registry, not hand-wired.
   Registering here (module init, before any Term is built) makes the
   [--proto] completions and the --help listing reflect exactly what
   [Protocols.ensure_registered] publishes. *)

module Registry = Rn_radio.Registry

let () = Protocols.ensure_registered ()

let proto_arg ~multi ~default =
  let entries =
    List.filter (fun e -> e.Registry.multi = multi) (Registry.all ())
  in
  (* Enumerate names, not entries: Cmdliner prints enum defaults with
     structural equality, which is undefined on the closures inside
     [Registry.entry]. *)
  let name_enum =
    Arg.enum (List.map (fun e -> (e.Registry.name, e.Registry.name)) entries)
  in
  let doc =
    String.concat " "
      ("Protocol to run:"
      :: List.map
           (fun e -> Printf.sprintf "$(b,%s) (%s)." e.Registry.name e.Registry.summary)
           entries)
  in
  Arg.(value & opt name_enum default & info [ "proto"; "algo" ] ~docv:"PROTO" ~doc)

let entry_of name =
  match Registry.find name with
  | Some e -> e
  | None -> invalid_arg ("rbcast: unregistered protocol " ^ name)

let print_result name (r : Registry.result) =
  Printf.printf "%s: %d rounds delivered=%b" name r.Registry.rounds
    r.Registry.delivered;
  List.iter (fun (key, v) -> Printf.printf " %s=%s" key v) r.Registry.details;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* broadcast *)

(* JSONL trace: one object per retained round, then the run summary. *)
let write_trace path m =
  let oc = open_out path in
  List.iter
    (fun line ->
      output_string oc line;
      output_char oc '\n')
    (Rn_obs.Export.round_jsonl m);
  output_string oc (Rn_obs.Export.summary_json m);
  output_char oc '\n';
  close_out oc;
  Printf.printf "trace: %d round rows + summary -> %s\n"
    (Rn_obs.Metrics.ring_length m) path

let broadcast_cmd =
  let run graph proto seed trace =
    let e = entry_of proto in
    let source = 0 in
    Printf.printf "n=%d m=%d\n" (Graph.n graph) (Graph.m graph);
    (* One metrics registry per traced run, sized to retain a full run;
       the histogram bins first-receive rounds by the Decay phase length. *)
    let metrics =
      match trace with
      | None -> None
      | Some _ when not e.Registry.traceable ->
          Printf.eprintf "rbcast: --trace is not supported for --proto %s\n%!"
            e.Registry.name;
          None
      | Some _ ->
          Some
            (Rn_obs.Metrics.create ~phases:1024 ~ring:65536 ~hist_bins:1024
               ~hist_width:(max 1 (Ilog.clog (Graph.n graph)))
               ())
    in
    let r = e.Registry.run ?metrics ~seed ~graph ~source () in
    print_result e.Registry.name r;
    (match (trace, metrics) with
    | Some path, Some m -> write_trace path m
    | _ -> ());
    0
  in
  let proto = proto_arg ~multi:false ~default:"thm11" in
  let trace =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write a per-round JSONL trace (round, phase, tx, deliveries, \
                 collisions; final line is the run summary) to $(docv). \
                 Supported for protocols whose registry entry is traceable \
                 (decay, cr, gst).")
  in
  Cmd.v
    (Cmd.info "broadcast" ~doc:"Single-message broadcast from node 0.")
    Term.(const run $ topo_args $ proto $ seed_arg $ trace)

(* ------------------------------------------------------------------ *)
(* multi *)

let multi_cmd =
  let run graph proto k seed =
    let e = entry_of proto in
    let r = e.Registry.run ~k ~seed ~graph ~source:0 () in
    print_result e.Registry.name r;
    0
  in
  let proto = proto_arg ~multi:true ~default:"known" in
  let k =
    Arg.(value & opt int 8 & info [ "k"; "messages" ] ~docv:"K" ~doc:"Number of messages.")
  in
  Cmd.v
    (Cmd.info "multi" ~doc:"k-message broadcast from node 0.")
    Term.(const run $ topo_args $ proto $ k $ seed_arg)

(* ------------------------------------------------------------------ *)
(* gst *)

let gst_cmd =
  let run graph distributed pipelined seed =
    let source = 0 in
    if distributed then begin
      let mode =
        if pipelined then Gst_distributed.Pipelined else Gst_distributed.Sequential
      in
      let r =
        Gst_distributed.construct ~mode ~learn_vd:true ~rng:(Rng.create ~seed)
          ~graph ~roots:[| source |] ()
      in
      Printf.printf
        "distributed GST: %d rounds (layering %d, assignment %d, self-test %d, \
         vd %d)\n"
        r.Gst_distributed.total_rounds r.Gst_distributed.layering_rounds
        r.Gst_distributed.assignment_rounds r.Gst_distributed.selftest_rounds
        r.Gst_distributed.vd_rounds;
      (match Gst.validate r.Gst_distributed.gst with
      | Ok () -> Printf.printf "validated: yes\n"
      | Error e -> Printf.printf "INVALID: %s\n" e);
      Printf.printf "max rank=%d overrides=%d\n"
        (Ranked_bfs.max_rank r.Gst_distributed.gst.Gst.ranks)
        (Gst.override_count r.Gst_distributed.gst)
    end
    else begin
      let gst = Gst.build_centralized ~graph ~roots:[| source |] () in
      (match Gst.validate gst with
      | Ok () -> Printf.printf "centralized GST: valid\n"
      | Error e -> Printf.printf "centralized GST INVALID: %s\n" e);
      let vd = Gst.virtual_distances gst in
      Printf.printf "max rank=%d max vd=%d overrides=%d\n"
        (Ranked_bfs.max_rank gst.Gst.ranks)
        (Array.fold_left max 0 vd) (Gst.override_count gst)
    end;
    0
  in
  let distributed =
    Arg.(value & flag & info [ "distributed" ]
           ~doc:"Use the distributed construction (Theorem 2.1).")
  in
  let pipelined =
    Arg.(value & flag & info [ "pipelined" ]
           ~doc:"Pipeline level pairs (with --distributed).")
  in
  Cmd.v
    (Cmd.info "gst" ~doc:"Build a gathering spanning tree rooted at node 0.")
    Term.(const run $ topo_args $ distributed $ pipelined $ seed_arg)

(* ------------------------------------------------------------------ *)
(* estimate *)

let estimate_cmd =
  let run graph =
    let r = Diameter_estimate.run ~graph ~source:0 () in
    Printf.printf
      "eccentricity(0)=%d estimate=%d (2-approximation) in %d rounds\n"
      r.Diameter_estimate.eccentricity r.Diameter_estimate.estimate
      r.Diameter_estimate.rounds;
    0
  in
  Cmd.v
    (Cmd.info "estimate"
       ~doc:"Beep-wave diameter 2-approximation from node 0 (footnote 2).")
    Term.(const run $ topo_args)

(* ------------------------------------------------------------------ *)
(* topo *)

let topo_cmd =
  let run graph dot =
    if dot then print_string (Gen.dot graph)
    else begin
      Printf.printf "n=%d m=%d max_degree=%d connected=%b" (Graph.n graph)
        (Graph.m graph) (Graph.max_degree graph) (Bfs.is_connected graph);
      if Bfs.is_connected graph && Graph.n graph > 0 then
        Printf.printf " diameter=%d" (Bfs.diameter graph);
      print_newline ()
    end;
    0
  in
  let dot =
    Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz instead of a summary.")
  in
  Cmd.v
    (Cmd.info "topo" ~doc:"Describe or export a generated topology.")
    Term.(const run $ topo_args $ dot)

let () =
  let info =
    Cmd.info "rbcast" ~version:"1.0.0"
      ~doc:"Randomized broadcast in radio networks with collision detection"
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ broadcast_cmd; multi_cmd; gst_cmd; estimate_cmd; topo_cmd ]))
