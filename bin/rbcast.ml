(* rbcast — command-line driver for the radio-broadcast library.

   Subcommands:
     rbcast broadcast  single-message broadcast with a chosen algorithm
     rbcast multi      k-message broadcast (Theorems 1.2 / 1.3, baselines)
     rbcast gst        build a GST (centralized or distributed) and report
     rbcast topo       describe or export a generated topology
     rbcast campaign   run a sweep campaign (cache, stealing, resume) *)

open Cmdliner
open Rn_util
open Rn_graph
open Rn_broadcast

(* ------------------------------------------------------------------ *)
(* Topology specification *)

type topo =
  | Path
  | Cycle
  | Star
  | Grid
  | Tree
  | Random
  | Layered
  | Clusters
  | Disk

let topo_conv =
  Arg.enum
    [
      ("path", Path); ("cycle", Cycle); ("star", Star); ("grid", Grid);
      ("tree", Tree); ("random", Random); ("layered", Layered);
      ("clusters", Clusters); ("disk", Disk);
    ]

let build_graph topo n depth seed =
  let rng = Rng.create ~seed in
  match topo with
  | Path -> Gen.path n
  | Cycle -> Gen.cycle (max 3 n)
  | Star -> Gen.star n
  | Grid ->
      let w = max 1 (Ilog.isqrt n) in
      Gen.grid ~w ~h:(max 1 (Ilog.cdiv n w))
  | Tree ->
      let d = max 1 depth in
      Gen.balanced_tree ~arity:2 ~depth:d
  | Random -> Gen.random_connected ~rng ~n ~extra:(n * 3 / 2)
  | Layered ->
      let d = max 1 depth in
      Gen.layered_random ~rng ~depth:d ~width:(max 1 ((n - 1) / d)) ~p:0.3
  | Clusters ->
      let d = max 1 depth in
      Gen.cluster_path ~rng ~clusters:d ~size:(max 1 (n / d)) ~p_intra:0.4
  | Disk -> Gen.unit_disk ~rng ~n ~radius:(1.8 /. sqrt (float_of_int n))

let topo_args =
  let topo =
    Arg.(value & opt topo_conv Random & info [ "topo" ] ~docv:"TOPO"
           ~doc:"Topology: path, cycle, star, grid, tree, random, layered, \
                 clusters or disk.")
  in
  let n =
    Arg.(value & opt int 64 & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Number of nodes.")
  in
  let depth =
    Arg.(value & opt int 8 & info [ "depth" ] ~docv:"DEPTH"
           ~doc:"Depth parameter for layered/clusters/tree topologies.")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")
  in
  Term.(const build_graph $ topo $ n $ depth $ seed)

let seed_arg =
  Arg.(value & opt int 42 & info [ "run-seed" ] ~docv:"SEED"
         ~doc:"Seed for the protocol's randomness.")

(* ------------------------------------------------------------------ *)
(* Protocol selection — enumerated from the registry, not hand-wired.
   Registering here (module init, before any Term is built) makes the
   [--proto] completions and the --help listing reflect exactly what
   [Protocols.ensure_registered] publishes. *)

module Registry = Rn_radio.Registry

let () = Protocols.ensure_registered ()

let proto_arg ~multi ~default =
  let entries =
    List.filter (fun e -> e.Registry.multi = multi) (Registry.all ())
  in
  (* Enumerate names, not entries: Cmdliner prints enum defaults with
     structural equality, which is undefined on the closures inside
     [Registry.entry]. *)
  let name_enum =
    Arg.enum (List.map (fun e -> (e.Registry.name, e.Registry.name)) entries)
  in
  let doc =
    String.concat " "
      ("Protocol to run:"
      :: List.map
           (fun e -> Printf.sprintf "$(b,%s) (%s)." e.Registry.name e.Registry.summary)
           entries)
  in
  Arg.(value & opt name_enum default & info [ "proto"; "algo" ] ~docv:"PROTO" ~doc)

let entry_of name =
  match Registry.find name with
  | Some e -> e
  | None -> invalid_arg ("rbcast: unregistered protocol " ^ name)

let print_result name (r : Registry.result) =
  Printf.printf "%s: %d rounds delivered=%b" name r.Registry.rounds
    r.Registry.delivered;
  List.iter (fun (key, v) -> Printf.printf " %s=%s" key v) r.Registry.details;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* broadcast *)

(* JSONL trace: one object per retained round, then the run summary. *)
let write_trace path m =
  let oc = open_out path in
  List.iter
    (fun line ->
      output_string oc line;
      output_char oc '\n')
    (Rn_obs.Export.round_jsonl m);
  output_string oc (Rn_obs.Export.summary_json m);
  output_char oc '\n';
  close_out oc;
  Printf.printf "trace: %d round rows + summary -> %s\n"
    (Rn_obs.Metrics.ring_length m) path

let broadcast_cmd =
  let run graph proto seed trace =
    let e = entry_of proto in
    let source = 0 in
    Printf.printf "n=%d m=%d\n" (Graph.n graph) (Graph.m graph);
    (* One metrics registry per traced run, sized to retain a full run;
       the histogram bins first-receive rounds by the Decay phase length. *)
    let metrics =
      match trace with
      | None -> None
      | Some _ when not e.Registry.traceable ->
          Printf.eprintf "rbcast: --trace is not supported for --proto %s\n%!"
            e.Registry.name;
          None
      | Some _ ->
          Some
            (Rn_obs.Metrics.create ~phases:1024 ~ring:65536 ~hist_bins:1024
               ~hist_width:(max 1 (Ilog.clog (Graph.n graph)))
               ())
    in
    let r = e.Registry.run ?metrics ~seed ~graph ~source () in
    print_result e.Registry.name r;
    (match (trace, metrics) with
    | Some path, Some m -> write_trace path m
    | _ -> ());
    0
  in
  let proto = proto_arg ~multi:false ~default:"thm11" in
  let trace =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write a per-round JSONL trace (round, phase, tx, deliveries, \
                 collisions; final line is the run summary) to $(docv). \
                 Supported for protocols whose registry entry is traceable \
                 (decay, cr, gst).")
  in
  Cmd.v
    (Cmd.info "broadcast" ~doc:"Single-message broadcast from node 0.")
    Term.(const run $ topo_args $ proto $ seed_arg $ trace)

(* ------------------------------------------------------------------ *)
(* multi *)

let multi_cmd =
  let run graph proto k seed =
    let e = entry_of proto in
    let r = e.Registry.run ~k ~seed ~graph ~source:0 () in
    print_result e.Registry.name r;
    0
  in
  let proto = proto_arg ~multi:true ~default:"known" in
  let k =
    Arg.(value & opt int 8 & info [ "k"; "messages" ] ~docv:"K" ~doc:"Number of messages.")
  in
  Cmd.v
    (Cmd.info "multi" ~doc:"k-message broadcast from node 0.")
    Term.(const run $ topo_args $ proto $ k $ seed_arg)

(* ------------------------------------------------------------------ *)
(* gst *)

let gst_cmd =
  let run graph distributed pipelined seed =
    let source = 0 in
    if distributed then begin
      let mode =
        if pipelined then Gst_distributed.Pipelined else Gst_distributed.Sequential
      in
      let r =
        Gst_distributed.construct ~mode ~learn_vd:true ~rng:(Rng.create ~seed)
          ~graph ~roots:[| source |] ()
      in
      Printf.printf
        "distributed GST: %d rounds (layering %d, assignment %d, self-test %d, \
         vd %d)\n"
        r.Gst_distributed.total_rounds r.Gst_distributed.layering_rounds
        r.Gst_distributed.assignment_rounds r.Gst_distributed.selftest_rounds
        r.Gst_distributed.vd_rounds;
      (match Gst.validate r.Gst_distributed.gst with
      | Ok () -> Printf.printf "validated: yes\n"
      | Error e -> Printf.printf "INVALID: %s\n" e);
      Printf.printf "max rank=%d overrides=%d\n"
        (Ranked_bfs.max_rank r.Gst_distributed.gst.Gst.ranks)
        (Gst.override_count r.Gst_distributed.gst)
    end
    else begin
      let gst = Gst.build_centralized ~graph ~roots:[| source |] () in
      (match Gst.validate gst with
      | Ok () -> Printf.printf "centralized GST: valid\n"
      | Error e -> Printf.printf "centralized GST INVALID: %s\n" e);
      let vd = Gst.virtual_distances gst in
      Printf.printf "max rank=%d max vd=%d overrides=%d\n"
        (Ranked_bfs.max_rank gst.Gst.ranks)
        (Array.fold_left max 0 vd) (Gst.override_count gst)
    end;
    0
  in
  let distributed =
    Arg.(value & flag & info [ "distributed" ]
           ~doc:"Use the distributed construction (Theorem 2.1).")
  in
  let pipelined =
    Arg.(value & flag & info [ "pipelined" ]
           ~doc:"Pipeline level pairs (with --distributed).")
  in
  Cmd.v
    (Cmd.info "gst" ~doc:"Build a gathering spanning tree rooted at node 0.")
    Term.(const run $ topo_args $ distributed $ pipelined $ seed_arg)

(* ------------------------------------------------------------------ *)
(* estimate *)

let estimate_cmd =
  let run graph =
    let r = Diameter_estimate.run ~graph ~source:0 () in
    Printf.printf
      "eccentricity(0)=%d estimate=%d (2-approximation) in %d rounds\n"
      r.Diameter_estimate.eccentricity r.Diameter_estimate.estimate
      r.Diameter_estimate.rounds;
    0
  in
  Cmd.v
    (Cmd.info "estimate"
       ~doc:"Beep-wave diameter 2-approximation from node 0 (footnote 2).")
    Term.(const run $ topo_args)

(* ------------------------------------------------------------------ *)
(* topo *)

let topo_cmd =
  let run graph dot =
    if dot then print_string (Gen.dot graph)
    else begin
      Printf.printf "n=%d m=%d max_degree=%d connected=%b" (Graph.n graph)
        (Graph.m graph) (Graph.max_degree graph) (Bfs.is_connected graph);
      if Bfs.is_connected graph && Graph.n graph > 0 then
        Printf.printf " diameter=%d" (Bfs.diameter graph);
      print_newline ()
    end;
    0
  in
  let dot =
    Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz instead of a summary.")
  in
  Cmd.v
    (Cmd.info "topo" ~doc:"Describe or export a generated topology.")
    Term.(const run $ topo_args $ dot)

(* ------------------------------------------------------------------ *)
(* campaign *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let campaign_cmd =
  let run spec_path out journal_path resume domains no_cache static kill_after
      quiet =
    match Rn_campaign.Spec.parse (read_file spec_path) with
    | Error msg ->
        Printf.eprintf "rbcast campaign: %s\n%!" msg;
        1
    | Ok spec ->
        let journal_path =
          match journal_path with
          | Some p -> p
          | None -> (
              match out with Some o -> o ^ ".journal" | None -> spec_path ^ ".journal")
        in
        let resume_lines =
          if resume && Sys.file_exists journal_path then read_lines journal_path
          else []
        in
        (* The journal is append-only and flushed per line, so a SIGKILL
           loses at most the line being written — which resume ignores.
           The output file is rewritten from scratch each run (resume
           re-emits the replayed prefix), keeping it byte-identical to an
           uninterrupted run. *)
        let jc = open_out_gen [ Open_append; Open_creat ] 0o644 journal_path in
        let oc = match out with Some p -> open_out p | None -> stdout in
        let t0 = Unix.gettimeofday () in
        let stats =
          Rn_campaign.Campaign.run ?domains
            ~schedule:
              (if static then Rn_campaign.Campaign.Static
               else Rn_campaign.Campaign.Stealing)
            ~cache:(not no_cache)
            ~journal:(fun line ->
              output_string jc line;
              output_char jc '\n';
              flush jc)
            ~resume_lines
            ?on_cell:
              (match kill_after with
              | None -> None
              | Some n ->
                  Some
                    (fun ~completed ~total:_ ->
                      if completed >= n then (
                        (* a real, unhandled kill: what CI's crash test
                           relies on to interrupt mid-flight *)
                        flush jc;
                        Unix.kill (Unix.getpid ()) Sys.sigkill)))
            ~clock:Unix.gettimeofday
            ~emit:(fun line ->
              output_string oc line;
              output_char oc '\n';
              flush oc)
            spec
        in
        let wall = Unix.gettimeofday () -. t0 in
        flush jc;
        close_out jc;
        (match out with Some _ -> close_out oc | None -> flush oc);
        if not quiet then begin
          let open Rn_campaign.Campaign in
          Printf.eprintf
            "campaign: %d cells (%d run, %d replayed) in %.2fs — %.1f \
             cells/s, %d steals; gen %.2fs run %.2fs drain %.2fs\n%!"
            stats.cells stats.executed stats.replayed wall
            (float_of_int stats.executed /. max 1e-9 wall)
            stats.steals stats.gen_s stats.run_s stats.drain_s
        end;
        0
  in
  let spec =
    Arg.(
      required
      & opt (some file) None
      & info [ "spec" ] ~docv:"FILE"
          ~doc:
            "Campaign spec: JSONL lines {\"topo\":…}, {\"proto\":…}, \
             {\"seeds\":[…]} (see DESIGN.md §14).  Cells are the cross \
             product, each with a stable job key.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:
            "Write result JSONL here (default stdout), one line per cell in \
             spec order, streamed as the in-order prefix completes.")
  in
  let journal =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "Append-only checkpoint journal (default $(b,OUT).journal).  \
             Every finished cell is flushed here immediately; $(b,--resume) \
             replays it.")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Replay the journal before running: journaled cells are not \
             re-run, and the output is byte-identical to an uninterrupted \
             run.")
  in
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"D"
          ~doc:
            "Scheduler lane count (default: recommended domain count).  \
             Results never depend on it.")
  in
  let no_cache =
    Arg.(
      value & flag
      & info [ "no-cache" ]
          ~doc:
            "Regenerate each cell's topology instead of building every \
             distinct topology once (same results, for benchmarking the \
             cache).")
  in
  let static =
    Arg.(
      value & flag
      & info [ "static" ]
          ~doc:
            "Disable work stealing: each lane runs exactly its strided share \
             (same results, for benchmarking the scheduler).")
  in
  let kill_after =
    Arg.(
      value
      & opt (some int) None
      & info [ "kill-after" ] ~docv:"N"
          ~doc:
            "SIGKILL this process after N cells have been journaled — the \
             crash half of CI's crash/resume smoke test.")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Suppress the stderr summary.")
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:
         "Run a sweep campaign: topology cache, work-stealing scheduler, \
          checkpoint/resume.")
    Term.(
      const run $ spec $ out $ journal $ resume $ domains $ no_cache $ static
      $ kill_after $ quiet)

let () =
  let info =
    Cmd.info "rbcast" ~version:"1.0.0"
      ~doc:"Randomized broadcast in radio networks with collision detection"
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            broadcast_cmd; multi_cmd; gst_cmd; estimate_cmd; topo_cmd;
            campaign_cmd;
          ]))
