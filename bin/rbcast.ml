(* rbcast — command-line driver for the radio-broadcast library.

   Subcommands:
     rbcast broadcast  single-message broadcast with a chosen algorithm
     rbcast multi      k-message broadcast (Theorems 1.2 / 1.3, baselines)
     rbcast gst        build a GST (centralized or distributed) and report
     rbcast topo       describe or export a generated topology
     rbcast campaign   run a sweep campaign (cache, stealing, resume)
     rbcast campaign-dist    distributed campaign: supervised worker fan-out
     rbcast campaign-worker  one shard of a distributed campaign (internal)
     rbcast campaign-merge   merge shard journals into campaign output *)

open Cmdliner
open Rn_util
open Rn_graph
open Rn_broadcast

(* ------------------------------------------------------------------ *)
(* Topology specification *)

type topo =
  | Path
  | Cycle
  | Star
  | Grid
  | Tree
  | Random
  | Layered
  | Clusters
  | Disk

let topo_conv =
  Arg.enum
    [
      ("path", Path); ("cycle", Cycle); ("star", Star); ("grid", Grid);
      ("tree", Tree); ("random", Random); ("layered", Layered);
      ("clusters", Clusters); ("disk", Disk);
    ]

let build_graph topo n depth seed =
  let rng = Rng.create ~seed in
  match topo with
  | Path -> Gen.path n
  | Cycle -> Gen.cycle (max 3 n)
  | Star -> Gen.star n
  | Grid ->
      let w = max 1 (Ilog.isqrt n) in
      Gen.grid ~w ~h:(max 1 (Ilog.cdiv n w))
  | Tree ->
      let d = max 1 depth in
      Gen.balanced_tree ~arity:2 ~depth:d
  | Random -> Gen.random_connected ~rng ~n ~extra:(n * 3 / 2)
  | Layered ->
      let d = max 1 depth in
      Gen.layered_random ~rng ~depth:d ~width:(max 1 ((n - 1) / d)) ~p:0.3
  | Clusters ->
      let d = max 1 depth in
      Gen.cluster_path ~rng ~clusters:d ~size:(max 1 (n / d)) ~p_intra:0.4
  | Disk -> Gen.unit_disk ~rng ~n ~radius:(1.8 /. sqrt (float_of_int n))

let topo_args =
  let topo =
    Arg.(value & opt topo_conv Random & info [ "topo" ] ~docv:"TOPO"
           ~doc:"Topology: path, cycle, star, grid, tree, random, layered, \
                 clusters or disk.")
  in
  let n =
    Arg.(value & opt int 64 & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Number of nodes.")
  in
  let depth =
    Arg.(value & opt int 8 & info [ "depth" ] ~docv:"DEPTH"
           ~doc:"Depth parameter for layered/clusters/tree topologies.")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")
  in
  Term.(const build_graph $ topo $ n $ depth $ seed)

let seed_arg =
  Arg.(value & opt int 42 & info [ "run-seed" ] ~docv:"SEED"
         ~doc:"Seed for the protocol's randomness.")

(* ------------------------------------------------------------------ *)
(* Protocol selection — enumerated from the registry, not hand-wired.
   Registering here (module init, before any Term is built) makes the
   [--proto] completions and the --help listing reflect exactly what
   [Protocols.ensure_registered] publishes. *)

module Registry = Rn_radio.Registry

let () = Protocols.ensure_registered ()

let proto_arg ~multi ~default =
  let entries =
    List.filter (fun e -> e.Registry.multi = multi) (Registry.all ())
  in
  (* Enumerate names, not entries: Cmdliner prints enum defaults with
     structural equality, which is undefined on the closures inside
     [Registry.entry]. *)
  let name_enum =
    Arg.enum (List.map (fun e -> (e.Registry.name, e.Registry.name)) entries)
  in
  let doc =
    String.concat " "
      ("Protocol to run:"
      :: List.map
           (fun e -> Printf.sprintf "$(b,%s) (%s)." e.Registry.name e.Registry.summary)
           entries)
  in
  Arg.(value & opt name_enum default & info [ "proto"; "algo" ] ~docv:"PROTO" ~doc)

let entry_of name =
  match Registry.find name with
  | Some e -> e
  | None -> invalid_arg ("rbcast: unregistered protocol " ^ name)

let print_result name (r : Registry.result) =
  Printf.printf "%s: %d rounds delivered=%b" name r.Registry.rounds
    r.Registry.delivered;
  List.iter (fun (key, v) -> Printf.printf " %s=%s" key v) r.Registry.details;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* broadcast *)

(* JSONL trace: one object per retained round, then the run summary. *)
let write_trace path m =
  let oc = open_out path in
  List.iter
    (fun line ->
      output_string oc line;
      output_char oc '\n')
    (Rn_obs.Export.round_jsonl m);
  output_string oc (Rn_obs.Export.summary_json m);
  output_char oc '\n';
  close_out oc;
  Printf.printf "trace: %d round rows + summary -> %s\n"
    (Rn_obs.Metrics.ring_length m) path

let broadcast_cmd =
  let run graph proto seed trace =
    let e = entry_of proto in
    let source = 0 in
    Printf.printf "n=%d m=%d\n" (Graph.n graph) (Graph.m graph);
    (* One metrics registry per traced run, sized to retain a full run;
       the histogram bins first-receive rounds by the Decay phase length. *)
    let metrics =
      match trace with
      | None -> None
      | Some _ when not e.Registry.traceable ->
          Printf.eprintf "rbcast: --trace is not supported for --proto %s\n%!"
            e.Registry.name;
          None
      | Some _ ->
          Some
            (Rn_obs.Metrics.create ~phases:1024 ~ring:65536 ~hist_bins:1024
               ~hist_width:(max 1 (Ilog.clog (Graph.n graph)))
               ())
    in
    let r = e.Registry.run ?metrics ~seed ~graph ~source () in
    print_result e.Registry.name r;
    (match (trace, metrics) with
    | Some path, Some m -> write_trace path m
    | _ -> ());
    0
  in
  let proto = proto_arg ~multi:false ~default:"thm11" in
  let trace =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write a per-round JSONL trace (round, phase, tx, deliveries, \
                 collisions; final line is the run summary) to $(docv). \
                 Supported for protocols whose registry entry is traceable \
                 (decay, cr, gst).")
  in
  Cmd.v
    (Cmd.info "broadcast" ~doc:"Single-message broadcast from node 0.")
    Term.(const run $ topo_args $ proto $ seed_arg $ trace)

(* ------------------------------------------------------------------ *)
(* multi *)

let multi_cmd =
  let run graph proto k seed =
    let e = entry_of proto in
    let r = e.Registry.run ~k ~seed ~graph ~source:0 () in
    print_result e.Registry.name r;
    0
  in
  let proto = proto_arg ~multi:true ~default:"known" in
  let k =
    Arg.(value & opt int 8 & info [ "k"; "messages" ] ~docv:"K" ~doc:"Number of messages.")
  in
  Cmd.v
    (Cmd.info "multi" ~doc:"k-message broadcast from node 0.")
    Term.(const run $ topo_args $ proto $ k $ seed_arg)

(* ------------------------------------------------------------------ *)
(* gst *)

let gst_cmd =
  let run graph distributed pipelined seed =
    let source = 0 in
    if distributed then begin
      let mode =
        if pipelined then Gst_distributed.Pipelined else Gst_distributed.Sequential
      in
      let r =
        Gst_distributed.construct ~mode ~learn_vd:true ~rng:(Rng.create ~seed)
          ~graph ~roots:[| source |] ()
      in
      Printf.printf
        "distributed GST: %d rounds (layering %d, assignment %d, self-test %d, \
         vd %d)\n"
        r.Gst_distributed.total_rounds r.Gst_distributed.layering_rounds
        r.Gst_distributed.assignment_rounds r.Gst_distributed.selftest_rounds
        r.Gst_distributed.vd_rounds;
      (match Gst.validate r.Gst_distributed.gst with
      | Ok () -> Printf.printf "validated: yes\n"
      | Error e -> Printf.printf "INVALID: %s\n" e);
      Printf.printf "max rank=%d overrides=%d\n"
        (Ranked_bfs.max_rank r.Gst_distributed.gst.Gst.ranks)
        (Gst.override_count r.Gst_distributed.gst)
    end
    else begin
      let gst = Gst.build_centralized ~graph ~roots:[| source |] () in
      (match Gst.validate gst with
      | Ok () -> Printf.printf "centralized GST: valid\n"
      | Error e -> Printf.printf "centralized GST INVALID: %s\n" e);
      let vd = Gst.virtual_distances gst in
      Printf.printf "max rank=%d max vd=%d overrides=%d\n"
        (Ranked_bfs.max_rank gst.Gst.ranks)
        (Array.fold_left max 0 vd) (Gst.override_count gst)
    end;
    0
  in
  let distributed =
    Arg.(value & flag & info [ "distributed" ]
           ~doc:"Use the distributed construction (Theorem 2.1).")
  in
  let pipelined =
    Arg.(value & flag & info [ "pipelined" ]
           ~doc:"Pipeline level pairs (with --distributed).")
  in
  Cmd.v
    (Cmd.info "gst" ~doc:"Build a gathering spanning tree rooted at node 0.")
    Term.(const run $ topo_args $ distributed $ pipelined $ seed_arg)

(* ------------------------------------------------------------------ *)
(* estimate *)

let estimate_cmd =
  let run graph =
    let r = Diameter_estimate.run ~graph ~source:0 () in
    Printf.printf
      "eccentricity(0)=%d estimate=%d (2-approximation) in %d rounds\n"
      r.Diameter_estimate.eccentricity r.Diameter_estimate.estimate
      r.Diameter_estimate.rounds;
    0
  in
  Cmd.v
    (Cmd.info "estimate"
       ~doc:"Beep-wave diameter 2-approximation from node 0 (footnote 2).")
    Term.(const run $ topo_args)

(* ------------------------------------------------------------------ *)
(* topo *)

let topo_cmd =
  let run graph dot =
    if dot then print_string (Gen.dot graph)
    else begin
      Printf.printf "n=%d m=%d max_degree=%d connected=%b" (Graph.n graph)
        (Graph.m graph) (Graph.max_degree graph) (Bfs.is_connected graph);
      if Bfs.is_connected graph && Graph.n graph > 0 then
        Printf.printf " diameter=%d" (Bfs.diameter graph);
      print_newline ()
    end;
    0
  in
  let dot =
    Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz instead of a summary.")
  in
  Cmd.v
    (Cmd.info "topo" ~doc:"Describe or export a generated topology.")
    Term.(const run $ topo_args $ dot)

(* ------------------------------------------------------------------ *)
(* campaign *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

(* Monotonic clock for campaign timing and worker supervision: wall
   clock steps (NTP, suspend) must not corrupt heartbeat timeouts or
   the stderr profile.  The library stays clock-free — this is the
   injected seam ([~clock] / [io.clock]); Monotonic_clock is bechamel's
   CLOCK_MONOTONIC stub, nanoseconds since an arbitrary origin. *)
let mono_now () = Int64.to_float (Monotonic_clock.now ()) *. 1e-9

let campaign_cmd =
  let run spec_path out journal_path resume domains no_cache static kill_after
      quiet =
    match Rn_campaign.Spec.parse (read_file spec_path) with
    | Error msg ->
        Printf.eprintf "rbcast campaign: %s\n%!" msg;
        1
    | Ok spec ->
        let journal_path =
          match journal_path with
          | Some p -> p
          | None -> (
              match out with Some o -> o ^ ".journal" | None -> spec_path ^ ".journal")
        in
        let resume_lines =
          if resume && Sys.file_exists journal_path then read_lines journal_path
          else []
        in
        (* The journal is append-only and flushed per line, so a SIGKILL
           loses at most the line being written — which resume ignores.
           The output file is rewritten from scratch each run (resume
           re-emits the replayed prefix), keeping it byte-identical to an
           uninterrupted run. *)
        let jc = open_out_gen [ Open_append; Open_creat ] 0o644 journal_path in
        let oc = match out with Some p -> open_out p | None -> stdout in
        let t0 = mono_now () in
        let stats =
          Rn_campaign.Campaign.run ?domains
            ~schedule:
              (if static then Rn_campaign.Campaign.Static
               else Rn_campaign.Campaign.Stealing)
            ~cache:(not no_cache)
            ~journal:(fun line ->
              output_string jc line;
              output_char jc '\n';
              flush jc)
            ~resume_lines
            ?on_cell:
              (match kill_after with
              | None -> None
              | Some n ->
                  Some
                    (fun ~completed ~total:_ ->
                      if completed >= n then (
                        (* a real, unhandled kill: what CI's crash test
                           relies on to interrupt mid-flight *)
                        flush jc;
                        Unix.kill (Unix.getpid ()) Sys.sigkill)))
            ~clock:mono_now
            ~emit:(fun line ->
              output_string oc line;
              output_char oc '\n';
              flush oc)
            spec
        in
        let wall = mono_now () -. t0 in
        flush jc;
        close_out jc;
        (match out with Some _ -> close_out oc | None -> flush oc);
        if not quiet then begin
          let open Rn_campaign.Campaign in
          Printf.eprintf
            "campaign: %d cells (%d run, %d replayed) in %.2fs — %.1f \
             cells/s, %d steals; gen %.2fs run %.2fs drain %.2fs\n%!"
            stats.cells stats.executed stats.replayed wall
            (float_of_int stats.executed /. max 1e-9 wall)
            stats.steals stats.gen_s stats.run_s stats.drain_s
        end;
        0
  in
  let spec =
    Arg.(
      required
      & opt (some file) None
      & info [ "spec" ] ~docv:"FILE"
          ~doc:
            "Campaign spec: JSONL lines {\"topo\":…}, {\"proto\":…}, \
             {\"seeds\":[…]} (see DESIGN.md §14).  Cells are the cross \
             product, each with a stable job key.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:
            "Write result JSONL here (default stdout), one line per cell in \
             spec order, streamed as the in-order prefix completes.")
  in
  let journal =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "Append-only checkpoint journal (default $(b,OUT).journal).  \
             Every finished cell is flushed here immediately; $(b,--resume) \
             replays it.")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Replay the journal before running: journaled cells are not \
             re-run, and the output is byte-identical to an uninterrupted \
             run.")
  in
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"D"
          ~doc:
            "Scheduler lane count (default: recommended domain count).  \
             Results never depend on it.")
  in
  let no_cache =
    Arg.(
      value & flag
      & info [ "no-cache" ]
          ~doc:
            "Regenerate each cell's topology instead of building every \
             distinct topology once (same results, for benchmarking the \
             cache).")
  in
  let static =
    Arg.(
      value & flag
      & info [ "static" ]
          ~doc:
            "Disable work stealing: each lane runs exactly its strided share \
             (same results, for benchmarking the scheduler).")
  in
  let kill_after =
    Arg.(
      value
      & opt (some int) None
      & info [ "kill-after" ] ~docv:"N"
          ~doc:
            "SIGKILL this process after N cells have been journaled — the \
             crash half of CI's crash/resume smoke test.")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Suppress the stderr summary.")
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:
         "Run a sweep campaign: topology cache, work-stealing scheduler, \
          checkpoint/resume.")
    Term.(
      const run $ spec $ out $ journal $ resume $ domains $ no_cache $ static
      $ kill_after $ quiet)

(* ------------------------------------------------------------------ *)
(* campaign-worker — one shard of a distributed campaign.

   Spawned by campaign-dist with an explicit cell list; runs exactly
   those cells and appends their journal lines (flushed per line) to its
   own shard journal.  It re-reads that journal on start, so a respawn
   after a crash replays instead of re-running.  It emits nothing — the
   coordinator's merge is the only output path. *)

module Dist = Rn_campaign.Dist

let campaign_worker_cmd =
  let run spec_path journal_path cells_str domains =
    match Rn_campaign.Spec.parse (read_file spec_path) with
    | Error msg ->
        Printf.eprintf "rbcast campaign-worker: %s\n%!" msg;
        1
    | Ok spec -> (
        match Dist.cells_of_string cells_str with
        | exception Invalid_argument msg ->
            Printf.eprintf "rbcast campaign-worker: %s\n%!" msg;
            2
        | select ->
            let resume_lines =
              if Sys.file_exists journal_path then read_lines journal_path
              else []
            in
            let jc =
              open_out_gen [ Open_append; Open_creat ] 0o644 journal_path
            in
            let (_ : Rn_campaign.Campaign.stats) =
              Rn_campaign.Campaign.run ~domains ~select ~resume_lines
                ~journal:(fun line ->
                  output_string jc line;
                  output_char jc '\n';
                  flush jc)
                ~clock:mono_now
                ~emit:(fun _ -> ())
                spec
            in
            flush jc;
            close_out jc;
            0)
  in
  let spec =
    Arg.(
      required
      & opt (some file) None
      & info [ "spec" ] ~docv:"FILE" ~doc:"Campaign spec (same file as the coordinator's).")
  in
  let journal =
    Arg.(
      required
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:"This shard's append-only journal; replayed on respawn.")
  in
  let cells =
    Arg.(
      required
      & opt (some string) None
      & info [ "cells" ] ~docv:"RANGES"
          ~doc:"Cell indices to run, as compact ranges (e.g. $(b,0-24,31)).")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"D"
          ~doc:"Scheduler lanes inside this worker (default 1).")
  in
  Cmd.v
    (Cmd.info "campaign-worker"
       ~doc:
         "Run one shard of a distributed campaign (spawned by \
          $(b,campaign-dist); not normally invoked by hand).")
    Term.(const run $ spec $ journal $ cells $ domains)

(* ------------------------------------------------------------------ *)
(* campaign-dist — coordinator: fan out, supervise, merge. *)

let campaign_dist_cmd =
  let run spec_path out workers retries heartbeat backoff poll worker_domains
      resume chaos chaos_kills quiet =
    match Rn_campaign.Spec.parse (read_file spec_path) with
    | Error msg ->
        Printf.eprintf "rbcast campaign-dist: %s\n%!" msg;
        1
    | Ok spec ->
        let prefix = match out with Some o -> o | None -> spec_path in
        let shard_path s = Printf.sprintf "%s.shard%d.journal" prefix s in
        if not resume then
          for s = 0 to workers - 1 do
            if Sys.file_exists (shard_path s) then Sys.remove (shard_path s)
          done;
        let pids = Array.make workers (-1) in
        let last_status = Array.make workers (Dist.Exited 0) in
        (* SIGINT/SIGTERM: take the workers down with us, then die with
           the conventional 128+signal code.  Shard journals survive for
           a later --resume. *)
        let forward sg =
          Array.iter
            (fun pid ->
              if pid >= 0 then
                try Unix.kill pid Sys.sigkill
                with Unix.Unix_error _ -> ())
            pids;
          exit (128 + sg)
        in
        Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> forward 2));
        Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> forward 15));
        let reap s =
          if pids.(s) >= 0 then begin
            (match Unix.waitpid [] pids.(s) with
            | _, Unix.WEXITED c -> last_status.(s) <- Dist.Exited c
            | _, Unix.WSIGNALED sg -> last_status.(s) <- Dist.Signaled sg
            | _, Unix.WSTOPPED _ -> ()
            | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
                last_status.(s) <- Dist.Exited 0);
            pids.(s) <- -1
          end
        in
        let chaos_rng = Option.map (fun seed -> Rng.create ~seed) chaos in
        let chaos_kills_left = ref chaos_kills in
        let ticks = ref 0 in
        let spawn ~slot ~attempt:_ ~cells =
          reap slot;
          (match chaos_rng with
          | Some rng when Rng.bernoulli rng 0.25 ->
              Printf.eprintf "chaos: delaying spawn of slot %d\n%!" slot;
              Unix.sleepf (Rng.float rng 0.2)
          | _ -> ());
          let argv =
            [|
              Sys.executable_name; "campaign-worker"; "--spec"; spec_path;
              "--journal"; shard_path slot; "--cells";
              Dist.cells_to_string cells; "--domains";
              string_of_int worker_domains;
            |]
          in
          pids.(slot) <-
            Unix.create_process Sys.executable_name argv Unix.stdin
              Unix.stdout Unix.stderr
        in
        let status ~slot =
          if pids.(slot) < 0 then last_status.(slot)
          else
            match Unix.waitpid [ Unix.WNOHANG ] pids.(slot) with
            | 0, _ -> Dist.Running
            | _, Unix.WEXITED c ->
                pids.(slot) <- -1;
                last_status.(slot) <- Dist.Exited c;
                last_status.(slot)
            | _, Unix.WSIGNALED sg ->
                pids.(slot) <- -1;
                last_status.(slot) <- Dist.Signaled sg;
                last_status.(slot)
            | _, Unix.WSTOPPED _ -> Dist.Running
            | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
                pids.(slot) <- -1;
                last_status.(slot)
        in
        let kill ~slot =
          if pids.(slot) >= 0 then
            try Unix.kill pids.(slot) Sys.sigkill
            with Unix.Unix_error _ -> ()
        in
        let journal_lines ~slot =
          let p = shard_path slot in
          if Sys.file_exists p then read_lines p else []
        in
        (* Chaos fault injection rides the supervisor's sleep tick:
           SIGKILL a random live worker (preferring one that has already
           journaled, so the kill lands mid-flight), and half the time
           tear a few bytes off its shard journal — a torn final line
           the merge must survive. *)
        let tear rng path =
          match (Unix.stat path).Unix.st_size with
          | size when size > 2 ->
              let cut = 1 + Rng.int rng (min 40 (size - 1)) in
              let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
              Unix.ftruncate fd (size - cut);
              Unix.close fd;
              Printf.eprintf "chaos: tore %d bytes off %s\n%!" cut path
          | _ | (exception Unix.Unix_error _) -> ()
        in
        let sleep dt =
          incr ticks;
          (match chaos_rng with
          | Some rng when !chaos_kills_left > 0 ->
              let live =
                List.filter
                  (fun s -> pids.(s) >= 0)
                  (List.init workers (fun s -> s))
              in
              let journaled =
                List.filter
                  (fun s -> Sys.file_exists (shard_path s))
                  live
              in
              let pool = if journaled <> [] then journaled else live in
              if pool <> [] && (journaled <> [] || !ticks > 5) then begin
                let victim = List.nth pool (Rng.int rng (List.length pool)) in
                decr chaos_kills_left;
                Printf.eprintf "chaos: SIGKILL slot %d (pid %d)\n%!" victim
                  pids.(victim);
                (try Unix.kill pids.(victim) Sys.sigkill
                 with Unix.Unix_error _ -> ());
                if Rng.bool rng && Sys.file_exists (shard_path victim) then
                  tear rng (shard_path victim)
              end
          | _ -> ());
          Unix.sleepf dt
        in
        let io =
          {
            Dist.spawn; status; kill; journal_lines; clock = mono_now; sleep;
          }
        in
        let config =
          {
            Dist.workers; retries; heartbeat_timeout = heartbeat;
            backoff_base = backoff; poll_interval = poll;
          }
        in
        let on_event ev =
          if not quiet then
            match ev with
            | Dist.Spawn { slot; attempt; cells } ->
                Printf.eprintf "dist: spawn slot=%d attempt=%d cells=%d\n%!"
                  slot attempt cells
            | Dist.Progress { slot; completed; total } ->
                Printf.eprintf "dist: progress %d/%d (slot %d)\n%!" completed
                  total slot
            | Dist.Stall { slot; idle } ->
                Printf.eprintf "dist: slot %d stalled %.1fs\n%!" slot idle
            | Dist.Kill { slot } ->
                Printf.eprintf "dist: kill slot=%d\n%!" slot
            | Dist.Crash { slot; attempt; reason } ->
                Printf.eprintf "dist: crash slot=%d attempt=%d (%s)\n%!" slot
                  attempt reason
            | Dist.Backoff { slot; attempt; delay } ->
                Printf.eprintf "dist: backoff slot=%d attempt=%d %.2fs\n%!"
                  slot attempt delay
            | Dist.Retire { slot } ->
                Printf.eprintf "dist: retire slot=%d\n%!" slot
            | Dist.Death { slot; orphans } ->
                Printf.eprintf "dist: slot %d dead, %d cells orphaned\n%!"
                  slot orphans
            | Dist.Reassign { slot; cells } ->
                Printf.eprintf "dist: reassign %d cells -> slot %d\n%!" cells
                  slot
        in
        let t0 = mono_now () in
        let oc = match out with Some p -> open_out p | None -> stdout in
        let emit line =
          output_string oc line;
          output_char oc '\n'
        in
        let r = Dist.run ~on_event ~config ~io ~emit spec in
        (match out with Some _ -> close_out oc | None -> flush oc);
        (match r with
        | Error msg ->
            Printf.eprintf "rbcast campaign-dist: %s\n%!" msg;
            1
        | Ok stats ->
            if not quiet then begin
              let open Dist in
              Printf.eprintf
                "campaign-dist: %d cells via %d workers in %.2fs — %d \
                 spawns, %d crashes, %d killed, %d reassigned; merge: %d \
                 lines (%d torn, %d stale, %d duplicate, %d conflicting)\n%!"
                stats.cells workers
                (mono_now () -. t0)
                stats.sup.spawns stats.sup.crashes stats.sup.kills
                stats.sup.reassigned stats.merge.lines_in stats.merge.torn
                stats.merge.stale stats.merge.duplicates stats.merge.conflicts
            end;
            0)
  in
  let spec =
    Arg.(
      required
      & opt (some file) None
      & info [ "spec" ] ~docv:"FILE" ~doc:"Campaign spec (see $(b,campaign)).")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:
            "Merged result JSONL (default stdout) — byte-identical to a \
             single-process $(b,campaign) run over the same spec.  Shard \
             journals are written next to it as $(docv).shardN.journal.")
  in
  let workers =
    Arg.(
      value & opt int 2
      & info [ "workers"; "w" ] ~docv:"W"
          ~doc:"Worker processes to fan out to.")
  in
  let retries =
    Arg.(
      value & opt int 2
      & info [ "retries" ] ~docv:"R"
          ~doc:"Respawns allowed per worker slot before it is given up on.")
  in
  let heartbeat =
    Arg.(
      value & opt float 60.0
      & info [ "heartbeat-timeout" ] ~docv:"SECS"
          ~doc:
            "Kill a worker whose shard journal has not grown for $(docv) \
             seconds.")
  in
  let backoff =
    Arg.(
      value & opt float 0.5
      & info [ "backoff" ] ~docv:"SECS"
          ~doc:"Respawn delay after the first crash; doubles per attempt.")
  in
  let poll =
    Arg.(
      value & opt float 0.1
      & info [ "poll" ] ~docv:"SECS" ~doc:"Supervisor tick interval.")
  in
  let worker_domains =
    Arg.(
      value & opt int 1
      & info [ "worker-domains" ] ~docv:"D"
          ~doc:"Scheduler lanes inside each worker (default 1).")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Keep existing shard journals and resume from them (default: \
             start fresh).")
  in
  let chaos =
    Arg.(
      value
      & opt (some int) None
      & info [ "chaos" ] ~docv:"SEED"
          ~doc:
            "Fault injection: randomly SIGKILL workers mid-flight, delay \
             spawns, and tear shard-journal tails, driven by $(docv).  The \
             merged output must still be byte-identical to a clean run.")
  in
  let chaos_kills =
    Arg.(
      value & opt int 1
      & info [ "chaos-kills" ] ~docv:"N"
          ~doc:"Number of worker SIGKILLs to inject (with $(b,--chaos)).")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Suppress stderr logging.")
  in
  Cmd.v
    (Cmd.info "campaign-dist"
       ~doc:
         "Distributed campaign: fan out to supervised worker processes, \
          merge their shard journals deterministically.")
    Term.(
      const run $ spec $ out $ workers $ retries $ heartbeat $ backoff $ poll
      $ worker_domains $ resume $ chaos $ chaos_kills $ quiet)

(* ------------------------------------------------------------------ *)
(* campaign-merge — standalone shard-journal merge. *)

let campaign_merge_cmd =
  let run spec_path out shard_paths allow_partial quiet =
    match Rn_campaign.Spec.parse (read_file spec_path) with
    | Error msg ->
        Printf.eprintf "rbcast campaign-merge: %s\n%!" msg;
        1
    | Ok spec ->
        let shards =
          List.map
            (fun p -> if Sys.file_exists p then read_lines p else [])
            shard_paths
        in
        let lines, m = Dist.merge spec shards in
        let oc = match out with Some p -> open_out p | None -> stdout in
        List.iter
          (fun line ->
            output_string oc line;
            output_char oc '\n')
          lines;
        (match out with Some _ -> close_out oc | None -> flush oc);
        if not quiet then
          Printf.eprintf
            "campaign-merge: %d/%d cells from %d shards — %d lines (%d \
             torn, %d stale, %d duplicate, %d conflicting)\n%!"
            (List.length lines)
            (Array.length (Rn_campaign.Spec.cells spec))
            m.Dist.shards m.Dist.lines_in m.Dist.torn m.Dist.stale
            m.Dist.duplicates m.Dist.conflicts;
        (match m.Dist.missing with
        | [] -> 0
        | missing when allow_partial ->
            if not quiet then
              Printf.eprintf "campaign-merge: %d cells missing (allowed)\n%!"
                (List.length missing);
            0
        | missing ->
            Printf.eprintf
              "rbcast campaign-merge: %d cells missing from shard journals\n%!"
              (List.length missing);
            1)
  in
  let spec =
    Arg.(
      required
      & opt (some file) None
      & info [ "spec" ] ~docv:"FILE"
          ~doc:"Campaign spec the shards were executed against.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:"Merged result JSONL (default stdout).")
  in
  let shard_files =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"SHARD" ~doc:"Shard journal files to merge.")
  in
  let allow_partial =
    Arg.(
      value & flag
      & info [ "allow-partial" ]
          ~doc:"Exit 0 even when some cells have no journal line.")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Suppress the stderr summary.")
  in
  Cmd.v
    (Cmd.info "campaign-merge"
       ~doc:
         "Deterministically merge shard journals into campaign output \
          (what $(b,campaign-dist) does after supervision).")
    Term.(const run $ spec $ out $ shard_files $ allow_partial $ quiet)

let () =
  let info =
    Cmd.info "rbcast" ~version:"1.0.0"
      ~doc:"Randomized broadcast in radio networks with collision detection"
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            broadcast_cmd; multi_cmd; gst_cmd; estimate_cmd; topo_cmd;
            campaign_cmd; campaign_worker_cmd; campaign_dist_cmd;
            campaign_merge_cmd;
          ]))
