(* Benchmark harness: regenerates every experiment of DESIGN.md §3.

   The paper (PODC 2013) is a theory paper without an experimental
   section, so each "table" here validates one theorem or lemma's claimed
   complexity shape empirically: who wins, what the slopes are, where the
   crossovers sit.  EXPERIMENTS.md records the outcomes against the
   paper's claims.

   Trials fan out over OCaml 5 domains via Rn_radio.Runner: every
   (configuration, seed) cell is a pure function of its inputs, so the
   parallel run is bit-identical to the serial one (--domains 1).

   Usage: dune exec bench/main.exe                 (all default experiments)
          dune exec bench/main.exe -- E1 E5        (a subset)
          dune exec bench/main.exe -- ES           (E-scale, explicit-only:
                                                    minutes at n = 10^5)
          dune exec bench/main.exe -- micro        (Bechamel micro-benchmarks)
          dune exec bench/main.exe -- --csv out/   (also write CSV tables)
          dune exec bench/main.exe -- --domains 1  (force serial trials)
          dune exec bench/main.exe -- --json f.json (perf record path;
                                                     default BENCH_engine.json) *)

open Rn_util
open Rn_graph
module Topo = Rn_graph.Gen
open Rn_broadcast

let seeds = [ 1; 2; 3 ]
let many_seeds = [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]

let median_of runs = Stats.median (Array.of_list (List.map float_of_int runs))

let rounds_outcome o = Rn_radio.Engine.rounds_of_outcome o

(* Table rendering is pure (rblint R4: lib/ returns data); the bench owns
   the console.  Byte-for-byte the same output as the old Table.print. *)
let print_table t =
  Table.write_csv t;
  print_newline ();
  List.iter print_endline (Table.to_lines t)

let note s = print_endline (Table.note_line s)

let section s =
  print_newline ();
  List.iter print_endline (Table.section_lines s)

(* ------------------------------------------------------------------ *)
(* Parallel trial plumbing                                             *)

let domains : int option Atomic.t = Atomic.make None
(* --domains N; None = one per recommended core *)

let domains_used () =
  match Atomic.get domains with
  | Some d -> max 1 d
  | None -> Rn_radio.Runner.default_domains ()

(* [per_config configs seeds f] evaluates [f cfg seed] for every cell of the
   configs × seeds grid in parallel and hands each config its seed-ordered
   result list, in config order.  The printing stays serial and ordered; only
   the trials fan out.  One array split per config — the old list walk
   recomputed [List.length seeds] and re-took a prefix per config,
   quadratic in the grid. *)
let per_config configs seeds f k =
  let pairs =
    List.concat_map (fun c -> List.map (fun s -> (c, s)) seeds) configs
  in
  let results =
    Array.of_list
      (Rn_radio.Runner.map ?domains:(Atomic.get domains)
         (fun (c, s) -> f c s)
         pairs)
  in
  let ns = List.length seeds in
  List.iteri
    (fun i c -> k c (Array.to_list (Array.sub results (i * ns) ns)))
    configs

let pmap_seeds seeds f =
  Rn_radio.Runner.map_seeds ?domains:(Atomic.get domains) ~seeds f

(* Per-experiment perf record, written to BENCH_engine.json at exit.
   Experiments may add their own finer-grained rows (the E-scale
   per-domain-count timings) alongside the per-experiment totals.
   [extra] carries additional fields as (name, raw-JSON-value) pairs —
   the ES rows attach per-phase aggregates from the metrics registry
   ("phase_deliveries": [..] etc.), which tools/benchdiff gates exactly
   when the baseline has them too.

   Honest accounting: [rounds] counts only rounds the engine actually
   simulated; [skipped] counts rounds the sparse engine fast-forwarded
   with the silent-round hint.  They are disjoint, and rounds/sec is
   computed over simulated rounds only — a skipped round is not
   throughput. *)
let bench_records :
    (string * float * int * int * (string * string) list) list Atomic.t =
  Atomic.make []

let record_bench ?(extra = []) ?(skipped = 0) id wall rounds =
  Atomic.set bench_records
    ((id, wall, rounds, skipped, extra) :: Atomic.get bench_records)

let json_path : string Atomic.t = Atomic.make "BENCH_engine.json"

let write_bench_json ~total_wall =
  let records = List.rev (Atomic.get bench_records) in
  if records <> [] then begin
    match open_out (Atomic.get json_path) with
    | exception Sys_error msg ->
        Printf.eprintf "warning: cannot write perf record: %s\n" msg
    | oc ->
    Printf.fprintf oc
      "{\n  \"suite\": \"radio_broadcast bench\",\n  \"domains\": %d,\n"
      (domains_used ());
    Printf.fprintf oc "  \"total_wall_s\": %.3f,\n  \"experiments\": [\n"
      total_wall;
    List.iteri
      (fun i (id, wall, rounds, skipped, extra) ->
        (* Jsons.quote, not %S: OCaml's decimal escapes are not JSON. *)
        let extras =
          String.concat ""
            (List.map
               (fun (k, v) -> Printf.sprintf ", %s: %s" (Jsons.quote k) v)
               extra)
        in
        Printf.fprintf oc
          "    { \"id\": %s, \"wall_s\": %.4f, \"rounds\": %d, \
           \"rounds_per_sec\": %.0f, \"skipped_rounds\": %d%s }%s\n"
          (Jsons.quote id) wall rounds
          (if wall > 0.0 then float_of_int rounds /. wall else 0.0)
          skipped extras
          (if i = List.length records - 1 then "" else ",");
        ())
      records;
    Printf.fprintf oc "  ]\n}\n";
    close_out oc;
    Printf.printf "perf record written to %s (%d domains)\n"
      (Atomic.get json_path)
      (domains_used ())
  end

(* ------------------------------------------------------------------ *)
(* E1 — Theorem 1.1: single-message broadcast, rounds vs D and vs n     *)

let layered ~seed ~depth ~width =
  Topo.layered_random ~rng:(Rng.create ~seed) ~depth ~width ~p:0.3

let e1 () =
  section
    "E1  Theorem 1.1: O(D + polylog) vs D.log baselines (single message)";
  (* Sweep D at (almost) fixed n = 1 + 128. *)
  let t =
    Table.create
      ~title:
        "E1a  rounds vs diameter, n = 257 (layered graphs, median of 3 seeds)"
      ~columns:[ "D"; "thm1.1 total"; "thm1.1 spread"; "decay"; "cr" ]
  in
  let pts_cd = ref []
  and pts_spread = ref []
  and pts_decay = ref []
  and pts_cr = ref [] in
  (* (D.log n, log^2 n, decay rounds) across both sweeps, for the joint
     two-predictor check of Decay's D.log n + log^2 n shape. *)
  let joint_pts = ref [] in
  per_config [ 8; 16; 32; 64; 128; 256 ] seeds
    (fun depth seed ->
      let width = 256 / depth in
      let g = layered ~seed ~depth ~width in
      let rng = Rng.create ~seed:(seed * 977) in
      let r = Single_broadcast.run ~rng:(Rng.split rng) ~graph:g ~source:0 () in
      assert r.Single_broadcast.delivered;
      let d = Decay.broadcast ~rng:(Rng.split rng) ~graph:g ~source:0 () in
      let c =
        Baselines.cr_broadcast ~rng:(Rng.split rng) ~graph:g ~source:0
          ~diameter:depth ()
      in
      ( r.Single_broadcast.rounds_total,
        r.Single_broadcast.rounds_layering + r.Single_broadcast.rounds_broadcast,
        rounds_outcome d.Decay.outcome,
        rounds_outcome c.Decay.outcome ))
    (fun depth cells ->
      let tot = List.map (fun (a, _, _, _) -> a) cells
      and spr = List.map (fun (_, b, _, _) -> b) cells
      and dec = List.map (fun (_, _, c, _) -> c) cells
      and cr = List.map (fun (_, _, _, d) -> d) cells in
      let m l = median_of l in
      pts_cd := (float_of_int depth, m tot) :: !pts_cd;
      pts_spread := (float_of_int depth, m spr) :: !pts_spread;
      pts_decay := (float_of_int depth, m dec) :: !pts_decay;
      pts_cr := (float_of_int depth, m cr) :: !pts_cr;
      let l = float_of_int (Ilog.clog 257) in
      joint_pts := (float_of_int depth *. l, l *. l, m dec) :: !joint_pts;
      Table.add_row t
        [
          string_of_int depth;
          Table.cell_f (m tot);
          Table.cell_f (m spr);
          Table.cell_f (m dec);
          Table.cell_f (m cr);
        ]);
  print_table t;
  let fit name pts =
    let f = Stats.linear_fit !pts in
    note
      (Printf.sprintf "%s: rounds ~ %.1f.D + %.0f   (r2=%.2f)" name
         f.Stats.slope f.Stats.intercept f.Stats.r2)
  in
  fit "thm1.1 total   " pts_cd;
  fit "thm1.1 spread  " pts_spread;
  fit "decay          " pts_decay;
  fit "cr             " pts_cr;

  note
    "shape check: the CD algorithm's D-coefficient is a small constant \
     (additive D); Decay/CR pay ~log-factor slopes.";
  (* Sweep n at fixed D = 12. *)
  let t =
    Table.create
      ~title:"E1b  rounds vs n, D = 12 (layered graphs, median of 3 seeds)"
      ~columns:[ "n"; "thm1.1 total"; "thm1.1 spread"; "decay"; "decay/D" ]
  in
  per_config [ 2; 4; 8; 16; 32 ] seeds
    (fun width seed ->
      let depth = 12 in
      let g = layered ~seed ~depth ~width in
      let rng = Rng.create ~seed:(seed * 31) in
      let r = Single_broadcast.run ~rng:(Rng.split rng) ~graph:g ~source:0 () in
      let d = Decay.broadcast ~rng:(Rng.split rng) ~graph:g ~source:0 () in
      ( r.Single_broadcast.rounds_total,
        r.Single_broadcast.rounds_layering + r.Single_broadcast.rounds_broadcast,
        rounds_outcome d.Decay.outcome ))
    (fun width cells ->
      let depth = 12 in
      let n = 1 + (depth * width) in
      let tot = List.map (fun (a, _, _) -> a) cells
      and spr = List.map (fun (_, b, _) -> b) cells
      and dec = List.map (fun (_, _, c) -> c) cells in
      let l = float_of_int (Ilog.clog n) in
      joint_pts := (12.0 *. l, l *. l, median_of dec) :: !joint_pts;
      Table.add_row t
        [
          string_of_int n;
          Table.cell_f (median_of tot);
          Table.cell_f (median_of spr);
          Table.cell_f (median_of dec);
          Table.cell_f (median_of dec /. 12.0);
        ]);
  print_table t;
  note
    "shape check: decay's per-hop cost (decay/D) grows with log n; the CD \
     algorithm's spread part stays ~D + polylog.";
  let joint = Stats.two_predictor_fit !joint_pts in
  note
    (Printf.sprintf
       "decay joint fit over both sweeps: rounds ~ %.2f.(D.log n) + \
        %.2f.log^2 n + %.0f  (r2=%.2f) — the O(D log n + log^2 n) shape of \
        [2]."
       joint.Stats.a joint.Stats.b joint.Stats.c joint.Stats.r2_2);
  (* E1c — Lemma 2.2 measured directly: per-phase delivery probability.
     For each Decay phase, a node that is uninformed at the phase start
     but has an informed neighbor is delivered during the phase w.p.
     >= 1/8; Rn_obs.Analysis counts exactly those events, pooled over
     seeds. *)
  let depth = 16 and width = 16 in
  let t =
    Table.create
      ~title:
        "E1c  Lemma 2.2: per-phase delivery probability, layered D=16 n=257 \
         (10 seeds pooled)"
      ~columns:[ "phase"; "eligible"; "delivered"; "ratio" ]
  in
  let per_seed =
    pmap_seeds many_seeds (fun ~seed ->
        let g = layered ~seed ~depth ~width in
        let ladder = Ilog.clog (Graph.n g) in
        let r =
          Decay.broadcast ~ladder
            ~rng:(Rng.create ~seed:(seed * 211))
            ~graph:g ~source:0 ()
        in
        Rn_obs.Analysis.decay_phases ~offsets:(Graph.offsets g)
          ~targets:(Graph.targets g) ~received_round:r.Decay.received_round
          ~source:0 ~ladder)
  in
  let elig = Hashtbl.create 16 and deliv = Hashtbl.create 16 in
  let bump tbl k v =
    Hashtbl.replace tbl k (v + Option.value ~default:0 (Hashtbl.find_opt tbl k))
  in
  List.iter
    (List.iter (fun st ->
         bump elig st.Rn_obs.Analysis.phase st.Rn_obs.Analysis.eligible;
         bump deliv st.Rn_obs.Analysis.phase st.Rn_obs.Analysis.delivered))
    per_seed;
  let max_phase = Hashtbl.fold (fun p _ acc -> max acc p) elig 0 in
  let worst = ref infinity in
  for p = 0 to max_phase do
    let e = Option.value ~default:0 (Hashtbl.find_opt elig p)
    and d = Option.value ~default:0 (Hashtbl.find_opt deliv p) in
    if e > 0 then begin
      let ratio = float_of_int d /. float_of_int e in
      (* phases with a handful of stragglers are noise, not statistics *)
      if e >= 10 && Float.compare ratio !worst < 0 then worst := ratio;
      Table.add_row t
        [
          string_of_int p; string_of_int e; string_of_int d;
          Table.cell_f ratio;
        ]
    end
  done;
  print_table t;
  note
    (Printf.sprintf
       "Lemma 2.2 check: worst pooled per-phase delivery ratio (phases with \
        >= 10 eligible) = %.3f vs the proven bound 1/8 = 0.125."
       !worst)

(* ------------------------------------------------------------------ *)
(* E2 — Theorem 2.1: distributed GST construction cost                  *)

let e2 () =
  section
    "E2  Theorem 2.1: distributed GST construction, O(D polylog) rounds";
  let t =
    Table.create
      ~title:"E2  layered graphs (width 4), median of 3 seeds; L = ceil(log2 n)"
      ~columns:
        [
          "D"; "n"; "seq rounds"; "pipe rounds"; "pipe/(D.L^2)"; "valid";
          "overrides";
        ]
  in
  per_config [ 4; 8; 16; 32 ] seeds
    (fun depth seed ->
      let width = 4 in
      let g = layered ~seed ~depth ~width in
      let run mode =
        Gst_distributed.construct ~mode
          ~layering:Gst_distributed.Collision_wave_layering
          ~rng:(Rng.create ~seed:(seed * 131))
          ~graph:g ~roots:[| 0 |] ()
      in
      let rs = run Gst_distributed.Sequential in
      let rp = run Gst_distributed.Pipelined in
      let valid =
        match Gst.validate rp.Gst_distributed.gst with
        | Ok () -> true
        | Error _ -> false
      in
      ( rs.Gst_distributed.total_rounds,
        rp.Gst_distributed.total_rounds,
        Gst.override_count rp.Gst_distributed.gst,
        valid ))
    (fun depth cells ->
      let width = 4 in
      let n = 1 + (depth * width) in
      let l = Ilog.clog n in
      let seq = List.map (fun (a, _, _, _) -> a) cells
      and pipe = List.map (fun (_, b, _, _) -> b) cells
      and ovr = List.map (fun (_, _, c, _) -> c) cells in
      let valid = List.for_all (fun (_, _, _, v) -> v) cells in
      Table.add_row t
        [
          string_of_int depth;
          string_of_int n;
          Table.cell_f (median_of seq);
          Table.cell_f (median_of pipe);
          Table.cell_f (median_of pipe /. float_of_int (depth * l * l));
          string_of_bool valid;
          Table.cell_f (median_of ovr);
        ]);
  print_table t;
  (* And versus n at fixed depth. *)
  let t =
    Table.create
      ~title:"E2b  rounds vs n at fixed D = 8 (pipelined, median of 3 seeds)"
      ~columns:[ "width"; "n"; "pipe rounds"; "rounds/L^2" ]
  in
  per_config [ 2; 4; 8; 16; 32 ] seeds
    (fun width seed ->
      let depth = 8 in
      let g = layered ~seed ~depth ~width in
      let r =
        Gst_distributed.construct ~mode:Gst_distributed.Pipelined
          ~layering:Gst_distributed.Collision_wave_layering
          ~rng:(Rng.create ~seed:(seed * 17))
          ~graph:g ~roots:[| 0 |] ()
      in
      r.Gst_distributed.total_rounds)
    (fun width pipe ->
      let depth = 8 in
      let n = 1 + (depth * width) in
      let l = Ilog.clog n in
      Table.add_row t
        [
          string_of_int width; string_of_int n; Table.cell_f (median_of pipe);
          Table.cell_f (median_of pipe /. float_of_int (l * l));
        ]);
  print_table t;
  note
    "shape check: rounds/(D.L^2) roughly flat => construction linear in D \
     with a polylog factor (the adaptive schedule exits far below the \
     worst-case log^4/log^5 budgets); every output is a valid GST."

(* ------------------------------------------------------------------ *)
(* E3 — Lemma 2.3: recruiting protocol                                  *)

let e3 () =
  section
    "E3  Lemma 2.3: recruiting on bipartite graphs, Theta(log^3 n) rounds";
  let t =
    Table.create ~title:"E3  10 seeds each; L = ceil(log2 n)"
      ~columns:[ "reds x blues, p"; "median rounds"; "L^3"; "covered"; "classes ok" ]
  in
  per_config
    [ (8, 20, 0.3); (16, 40, 0.2); (32, 80, 0.1); (32, 80, 0.4) ]
    many_seeds
    (fun (reds, blues, p) seed ->
      let rng = Rng.create ~seed in
      let g = Topo.bipartite_random ~rng ~reds ~blues ~p in
      let o =
        Recruiting.run_standalone ~rng:(Rng.split rng) ~params:Params.default
          ~graph:g
          ~reds:(Array.init reds (fun i -> i))
          ~blues:(Array.init blues (fun i -> reds + i))
          ()
      in
      (o.Recruiting.rounds, o.Recruiting.all_covered, o.Recruiting.classes_consistent))
    (fun (reds, blues, p) cells ->
      let rounds = List.map (fun (r, _, _) -> r) cells in
      let cov = List.length (List.filter (fun (_, c, _) -> c) cells) in
      let cons = List.length (List.filter (fun (_, _, c) -> c) cells) in
      let n = reds + blues in
      let l = Ilog.clog n in
      Table.add_row t
        [
          Printf.sprintf "%dx%d, p=%.1f" reds blues p;
          Table.cell_f (median_of rounds);
          string_of_int (l * l * l);
          Printf.sprintf "%d/10" cov;
          Printf.sprintf "%d/10" cons;
        ]);
  print_table t;
  (* Regular degrees select the loner regime exactly: degree 1 = all
     loners, larger degrees = none. *)
  let t =
    Table.create ~title:"E3b  blue-regular bipartite graphs (10 seeds)"
      ~columns:[ "reds x blues, degree"; "median rounds"; "covered"; "classes ok" ]
  in
  per_config
    [ (16, 40, 1); (16, 40, 2); (16, 40, 8); (16, 40, 16) ]
    many_seeds
    (fun (reds, blues, degree) seed ->
      let rng = Rng.create ~seed:(seed * 71) in
      let g = Topo.bipartite_regular ~rng ~reds ~blues ~degree in
      let o =
        Recruiting.run_standalone ~rng:(Rng.split rng) ~params:Params.default
          ~graph:g
          ~reds:(Array.init reds (fun i -> i))
          ~blues:(Array.init blues (fun i -> reds + i))
          ()
      in
      (o.Recruiting.rounds, o.Recruiting.all_covered, o.Recruiting.classes_consistent))
    (fun (reds, blues, degree) cells ->
      let rounds = List.map (fun (r, _, _) -> r) cells in
      let cov = List.length (List.filter (fun (_, c, _) -> c) cells) in
      let cons = List.length (List.filter (fun (_, _, c) -> c) cells) in
      Table.add_row t
        [
          Printf.sprintf "%dx%d, d=%d" reds blues degree;
          Table.cell_f (median_of rounds);
          Printf.sprintf "%d/10" cov;
          Printf.sprintf "%d/10" cons;
        ]);
  print_table t;
  note
    "shape check: every blue is recruited with a consistent class, within \
     the same order as the L^3 bound (adaptive exit usually well below)."

(* ------------------------------------------------------------------ *)
(* E4 — Lemma 2.4: epoch shrinkage of the assignment problem            *)

let e4 () =
  section "E4  Lemma 2.4: active reds shrink geometrically per epoch";
  let reds = 16 and blues = 40 in
  let histories =
    pmap_seeds
      (List.init 20 (fun i -> i + 1))
      (fun ~seed ->
        let rng = Rng.create ~seed in
        let g = Topo.bipartite_random ~rng ~reds ~blues ~p:0.3 in
        let blue_ranks = Array.make (reds + blues) 1 in
        let o =
          Bipartite_assignment.run_standalone ~rng:(Rng.split rng)
            ~params:Params.default ~graph:g
            ~reds:(Array.init reds (fun i -> i))
            ~blues:(Array.init blues (fun i -> reds + i))
            ~blue_ranks ()
        in
        o.Bipartite_assignment.epoch_history)
  in
  let sums = Hashtbl.create 8 and counts = Hashtbl.create 8 in
  List.iter
    (fun history ->
      List.iteri
        (fun e (_, active) ->
          Hashtbl.replace sums e
            (active + Option.value ~default:0 (Hashtbl.find_opt sums e));
          Hashtbl.replace counts e
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts e)))
        history)
    histories;
  let t =
    Table.create
      ~title:"E4  mean active reds at epoch start (16x40 bipartite, 20 seeds)"
      ~columns:[ "epoch"; "mean active reds"; "runs reaching epoch" ]
  in
  let epochs = Hashtbl.fold (fun e _ acc -> max acc e) sums 0 in
  for e = 0 to epochs do
    match (Hashtbl.find_opt sums e, Hashtbl.find_opt counts e) with
    | Some s, Some c ->
        Table.add_row t
          [
            string_of_int (e + 1);
            Table.cell_f (float_of_int s /. float_of_int c);
            string_of_int c;
          ]
    | _ -> ()
  done;
  print_table t;
  note
    "shape check: the count decays by a constant factor per epoch (the \
     paper proves an 8/7 shrink w.p. 1/7; observed decay is much faster).";
  (* Lemma 2.4 measured directly: per-epoch shrink factors of each run's
     survivor series (infinite = the epoch finished the instance). *)
  let factors =
    List.concat_map
      (fun history ->
        Rn_obs.Analysis.shrink_factors (List.map snd history))
      histories
  in
  let finite = List.filter (fun f -> f < infinity) factors in
  if finite <> [] then begin
    let s = Stats.summarize (Array.of_list finite) in
    note
      (Printf.sprintf
         "Lemma 2.4 shrink factors per epoch step: median %.2f, min %.2f \
          (%d finite of %d steps; the rest cleared the instance outright) — \
          paper proves >= 8/7 ~ 1.14 w.p. 1/7."
         s.Stats.median s.Stats.min (List.length finite)
         (List.length factors))
  end

(* ------------------------------------------------------------------ *)
(* E5 — Theorem 1.2: k-message broadcast, known topology                *)

let e5 () =
  section "E5  Theorem 1.2: O(D + k.log n + log^2 n), known topology";
  let depth = 12 and width = 8 in
  let n = 1 + (depth * width) in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "E5  rounds vs k on a layered graph (D=%d, n=%d), median of 3 seeds"
           depth n)
      ~columns:[ "k"; "rlnc rounds"; "rounds/k"; "routing"; "sequential" ]
  in
  let pts = ref [] in
  per_config [ 1; 2; 4; 8; 16; 32; 64 ] seeds
    (fun k seed ->
      let g = layered ~seed ~depth ~width in
      let rng = Rng.create ~seed:(seed * 7177) in
      let r =
        Multi_broadcast.known ~rng:(Rng.split rng) ~graph:g ~source:0 ~k ()
      in
      assert (r.Multi_broadcast.delivered && r.Multi_broadcast.payloads_ok);
      let b =
        Baselines.routing_multi ~rng:(Rng.split rng) ~graph:g ~source:0 ~k ()
      in
      let s =
        Baselines.sequential_multi ~rng:(Rng.split rng) ~graph:g ~source:0 ~k ()
      in
      (r.Multi_broadcast.rounds, b.Baselines.rounds, s.Baselines.rounds))
    (fun k cells ->
      let rl = List.map (fun (a, _, _) -> a) cells
      and ro = List.map (fun (_, b, _) -> b) cells
      and sq = List.map (fun (_, _, c) -> c) cells in
      let m = median_of rl in
      pts := (float_of_int k, m) :: !pts;
      Table.add_row t
        [
          string_of_int k;
          Table.cell_f m;
          Table.cell_f (m /. float_of_int k);
          Table.cell_f (median_of ro);
          Table.cell_f (median_of sq);
        ]);
  print_table t;
  let f = Stats.linear_fit !pts in
  note
    (Printf.sprintf
       "rlnc: rounds ~ %.1f.k + %.0f (r2=%.2f); log2 n = %d, so the \
        per-message cost is ~%.1f.log n — the optimal k.log n throughput."
       f.Stats.slope f.Stats.intercept f.Stats.r2 (Ilog.clog n)
       (f.Stats.slope /. float_of_int (Ilog.clog n)))

(* ------------------------------------------------------------------ *)
(* E6 — Theorem 1.3: k-message broadcast, unknown topology + CD         *)

let e6 () =
  section
    "E6  Theorem 1.3: O(D + k.log n + polylog), unknown topology + CD";
  let depth = 12 and width = 8 in
  let t =
    Table.create ~title:"E6  rounds vs k (layered D=12 n=97), median of 3 seeds"
      ~columns:
        [
          "k"; "total"; "layering"; "construction"; "dissemination"; "rings";
          "batches";
        ]
  in
  let pts = ref [] in
  per_config [ 1; 4; 16; 32 ] seeds
    (fun k seed ->
      let g = layered ~seed ~depth ~width in
      let rng = Rng.create ~seed:(seed * 911) in
      let r = Multi_broadcast.unknown ~rng ~graph:g ~source:0 ~k () in
      assert (r.Multi_broadcast.delivered && r.Multi_broadcast.payloads_ok);
      ( r.Multi_broadcast.rounds_total,
        r.Multi_broadcast.rounds_dissemination,
        r.Multi_broadcast.rounds_construction,
        r.Multi_broadcast.ring_count,
        r.Multi_broadcast.batch_count ))
    (fun k cells ->
      let tot = List.map (fun (a, _, _, _, _) -> a) cells
      and dis = List.map (fun (_, b, _, _, _) -> b) cells
      and con = List.map (fun (_, _, c, _, _) -> c) cells in
      let rc, bc =
        match List.rev cells with
        | (_, _, _, rc, bc) :: _ -> (rc, bc)
        | [] -> (0, 0)
      in
      pts := (float_of_int k, median_of dis) :: !pts;
      Table.add_row t
        [
          string_of_int k;
          Table.cell_f (median_of tot);
          "12";
          Table.cell_f (median_of con);
          Table.cell_f (median_of dis);
          string_of_int rc;
          string_of_int bc;
        ]);
  print_table t;
  let f = Stats.linear_fit !pts in
  note
    (Printf.sprintf
       "dissemination ~ %.1f.k + %.0f: linear in k as claimed; construction \
        is the k-independent polylog setup."
       f.Stats.slope f.Stats.intercept)

(* ------------------------------------------------------------------ *)
(* E7 — Lemma 3.2: Decay is multi-message viable                        *)

let e7 () =
  section
    "E7  Lemma 3.2: Decay stays fast when have-nots transmit noise (MMV)";
  let t =
    Table.create
      ~title:"E7  level-keyed Decay, noising vs silent (median of 10 seeds)"
      ~columns:[ "graph"; "silent"; "noising"; "ratio"; "both deliver" ]
  in
  per_config
    [
      ("path 48", Topo.path 48);
      ("grid 8x6", Topo.grid ~w:8 ~h:6);
      ("layered D=10", layered ~seed:3 ~depth:10 ~width:5);
      ("tree arity 2 depth 5", Topo.balanced_tree ~arity:2 ~depth:5);
    ]
    many_seeds
    (fun (_, g) seed ->
      let levels = Bfs.levels g ~src:0 in
      let rng = Rng.create ~seed:(seed * 13) in
      let s =
        Decay.mmv_broadcast ~noising:false ~rng:(Rng.split rng) ~graph:g
          ~levels ~source:0 ()
      in
      let z =
        Decay.mmv_broadcast ~noising:true ~rng:(Rng.split rng) ~graph:g
          ~levels ~source:0 ()
      in
      let ok =
        match (s.Decay.outcome, z.Decay.outcome) with
        | Rn_radio.Engine.Completed _, Rn_radio.Engine.Completed _ -> true
        | _ -> false
      in
      (rounds_outcome s.Decay.outcome, rounds_outcome z.Decay.outcome, ok))
    (fun (name, _) cells ->
      let sil = List.map (fun (a, _, _) -> a) cells
      and noi = List.map (fun (_, b, _) -> b) cells in
      let ok = List.for_all (fun (_, _, o) -> o) cells in
      Table.add_row t
        [
          name;
          Table.cell_f (median_of sil);
          Table.cell_f (median_of noi);
          Table.cell_f (median_of noi /. median_of sil);
          string_of_bool ok;
        ]);
  print_table t;
  note
    "shape check: noise costs only a constant factor — the MMV property \
     that makes the schedule usable under concurrent messages."

(* ------------------------------------------------------------------ *)
(* E8 — §3.2 ablation: virtual-distance vs level-keyed slow steps       *)

let e8 () =
  section
    "E8  Ablation: MMV-GST slow steps keyed by virtual distance (paper) vs by level [7,19]";
  let t =
    Table.create
      ~title:"E8  k=4 messages under MMV noise, median of 5 seeds (budgeted runs)"
      ~columns:[ "graph"; "vd-keyed"; "level-keyed"; "vd ok"; "level ok" ]
  in
  per_config
    [
      ("path 48", Topo.path 48);
      ("tree arity 2 depth 5", Topo.balanced_tree ~arity:2 ~depth:5);
      ("layered D=10", layered ~seed:5 ~depth:10 ~width:5);
      ("caterpillar 16x3", Topo.caterpillar ~spine:16 ~legs:3);
    ]
    [ 1; 2; 3; 4; 5 ]
    (fun (_, g) seed ->
      let run slow_key =
        let gst = Gst.build_centralized ~graph:g ~roots:[| 0 |] () in
        let vd = Gst.virtual_distances gst in
        let rng = Rng.create ~seed:(seed * 37) in
        let msgs = Multi_broadcast.random_messages rng ~k:4 ~msg_len:16 in
        Gst_broadcast.run ~slow_key ~rng:(Rng.split rng) ~gst ~vd ~msgs
          ~sources:[| 0 |] ()
      in
      let a = run Gst_broadcast.By_virtual_distance in
      let b = run Gst_broadcast.By_level in
      let completed (r : Gst_broadcast.result) =
        match r.Gst_broadcast.outcome with
        | Rn_radio.Engine.Completed _ -> true
        | _ -> false
      in
      (a.Gst_broadcast.rounds, b.Gst_broadcast.rounds, completed a, completed b))
    (fun (name, _) cells ->
      let vd_r = List.map (fun (a, _, _, _) -> a) cells
      and lv_r = List.map (fun (_, b, _, _) -> b) cells in
      let vd_ok = List.length (List.filter (fun (_, _, o, _) -> o) cells) in
      let lv_ok = List.length (List.filter (fun (_, _, _, o) -> o) cells) in
      Table.add_row t
        [
          name;
          Table.cell_f (median_of vd_r);
          Table.cell_f (median_of lv_r);
          Printf.sprintf "%d/5" vd_ok;
          Printf.sprintf "%d/5" lv_ok;
        ]);
  print_table t;
  note
    "shape check: pushing slow packets toward fast-stretch entry points \
     (virtual distance) is never worse and is what the backwards analysis \
     needs; level-keyed slow steps only push away from the source."

(* ------------------------------------------------------------------ *)
(* E9 — structural properties (§2.1, Lemmas 3.4, 3.5)                   *)

let e9 () =
  section "E9  Structural invariants: rank bound, vd bound, wave safety";
  let t =
    Table.create ~title:"E9  random connected graphs, 5 seeds each"
      ~columns:
        [ "n"; "max rank"; "clog n"; "max vd"; "2.clog n"; "overrides"; "hazards" ]
  in
  per_config [ 32; 64; 128; 256 ]
    (List.init 5 (fun i -> i + 1))
    (fun n seed ->
      let g =
        Topo.random_connected
          ~rng:(Rng.create ~seed:(seed + (n * 17)))
          ~n ~extra:(n * 3 / 2)
      in
      let gst = Gst.build_centralized ~graph:g ~roots:[| 0 |] () in
      ( Ranked_bfs.max_rank gst.Gst.ranks,
        Array.fold_left max 0 (Gst.virtual_distances gst),
        Gst.override_count gst,
        List.length (Gst.wave_unsafe gst) ))
    (fun n cells ->
      let mr = List.fold_left (fun acc (a, _, _, _) -> max acc a) 0 cells in
      let mvd = List.fold_left (fun acc (_, b, _, _) -> max acc b) 0 cells in
      let ovr = List.fold_left (fun acc (_, _, c, _) -> acc + c) 0 cells in
      let haz = List.fold_left (fun acc (_, _, _, d) -> acc + d) 0 cells in
      Table.add_row t
        [
          string_of_int n;
          string_of_int mr;
          string_of_int (Ilog.clog n);
          string_of_int mvd;
          string_of_int (2 * Ilog.clog n);
          string_of_int ovr;
          string_of_int haz;
        ]);
  print_table t;
  note
    "shape check: max rank <= ceil(log2 n) (§2.1), virtual distances <= \
     2.ceil(log2 n) (Lemma 3.4, + the counted repairs), and zero remaining \
     fast-wave hazards (Lemma 3.5) after the wave-safety repair."

(* ------------------------------------------------------------------ *)
(* E10 — coding vs routing throughput ([11] discussion)                 *)

let e10 () =
  section "E10  Network coding vs routing for k messages";
  let g =
    Topo.cluster_path ~rng:(Rng.create ~seed:6) ~clusters:6 ~size:10
      ~p_intra:0.35
  in
  let t =
    Table.create ~title:"E10  cluster corridor (n=60), median of 3 seeds"
      ~columns:[ "k"; "rlnc"; "routing"; "sequential"; "routing/rlnc" ]
  in
  per_config [ 4; 8; 16; 32; 64 ] seeds
    (fun k seed ->
      let rng = Rng.create ~seed:(seed * 41) in
      let a =
        Multi_broadcast.known ~rng:(Rng.split rng) ~graph:g ~source:0 ~k ()
      in
      let b =
        Baselines.routing_multi ~rng:(Rng.split rng) ~graph:g ~source:0 ~k ()
      in
      let c =
        Baselines.sequential_multi ~rng:(Rng.split rng) ~graph:g ~source:0 ~k ()
      in
      (a.Multi_broadcast.rounds, b.Baselines.rounds, c.Baselines.rounds))
    (fun k cells ->
      let rl = List.map (fun (a, _, _) -> a) cells
      and ro = List.map (fun (_, b, _) -> b) cells
      and sq = List.map (fun (_, _, c) -> c) cells in
      Table.add_row t
        [
          string_of_int k;
          Table.cell_f (median_of rl);
          Table.cell_f (median_of ro);
          Table.cell_f (median_of sq);
          Table.cell_f (median_of ro /. median_of rl);
        ]);
  print_table t;
  note
    "shape check: the coded schedule's advantage grows with k — the \
     throughput separation the Ω(k log n) discussion in [11] is about."

(* ------------------------------------------------------------------ *)
(* E11 — footnote 2: beep-wave 2-approximation of the diameter          *)

let e11 () =
  section
    "E11  Footnote 2: distributed 2-approximation of D in O(D) rounds (CD)";
  let t =
    Table.create ~title:"E11  doubling beep-wave estimator"
      ~columns:[ "graph"; "ecc"; "estimate"; "rounds"; "rounds/ecc" ]
  in
  List.iter
    (fun (name, g) ->
      let r = Diameter_estimate.run ~graph:g ~source:0 () in
      let ecc = max 1 r.Diameter_estimate.eccentricity in
      Table.add_row t
        [
          name;
          string_of_int r.Diameter_estimate.eccentricity;
          string_of_int r.Diameter_estimate.estimate;
          string_of_int r.Diameter_estimate.rounds;
          Table.cell_f (float_of_int r.Diameter_estimate.rounds /. float_of_int ecc);
        ])
    [
      ("path 128", Topo.path 128);
      ("grid 12x12", Topo.grid ~w:12 ~h:12);
      ("barbell 10+20", Topo.barbell ~clique:10 ~bridge:20);
      ("random n=128", Topo.random_connected ~rng:(Rng.create ~seed:8) ~n:128 ~extra:128);
      ("disk n=100", Topo.unit_disk ~rng:(Rng.create ~seed:9) ~n:100 ~radius:0.15);
    ];
  print_table t;
  note
    "shape check: estimate in [ecc, 2.ecc] and total cost a small constant \
     times D — the assumption `nodes know D up to a constant' is removable \
     exactly as the paper's footnote claims."

(* ------------------------------------------------------------------ *)
(* E12 — §3.4 strips: bounded-memory restarts                           *)

let e12 () =
  section
    "E12  §3.4 strips: buffer-reset steps keep the schedule correct with bounded memory";
  let t =
    Table.create
      ~title:"E12  k=4 messages, step = c.log^2 n resets vs unbounded buffers (median of 5 seeds)"
      ~columns:[ "graph"; "unbounded"; "step 8L^2"; "step 4L^2"; "all deliver" ]
  in
  per_config
    [
      ("grid 6x5", Topo.grid ~w:6 ~h:5);
      ("layered D=10", layered ~seed:2 ~depth:10 ~width:5);
      ("tree arity 2 depth 5", Topo.balanced_tree ~arity:2 ~depth:5);
    ]
    [ 1; 2; 3; 4; 5 ]
    (fun (_, g) seed ->
      let gst = Gst.build_centralized ~graph:g ~roots:[| 0 |] () in
      let vd = Gst.virtual_distances gst in
      let l = Ilog.clog (Graph.n g) in
      let run ?step_reset () =
        let rng = Rng.create ~seed:(seed * 59) in
        let msgs = Multi_broadcast.random_messages rng ~k:4 ~msg_len:16 in
        Gst_broadcast.run ?step_reset ~rng:(Rng.split rng) ~gst ~vd ~msgs
          ~sources:[| 0 |] ()
      in
      let a = run () in
      let b = run ~step_reset:(8 * l * l) () in
      let c = run ~step_reset:(4 * l * l) () in
      let ok =
        List.for_all
          (fun (r : Gst_broadcast.result) ->
            match r.Gst_broadcast.outcome with
            | Rn_radio.Engine.Completed _ -> true
            | _ -> false)
          [ a; b; c ]
      in
      (a.Gst_broadcast.rounds, b.Gst_broadcast.rounds, c.Gst_broadcast.rounds, ok))
    (fun (name, _) cells ->
      let unb = List.map (fun (a, _, _, _) -> a) cells
      and s8 = List.map (fun (_, b, _, _) -> b) cells
      and s4 = List.map (fun (_, _, c, _) -> c) cells in
      let ok = List.for_all (fun (_, _, _, o) -> o) cells in
      Table.add_row t
        [
          name; Table.cell_f (median_of unb); Table.cell_f (median_of s8);
          Table.cell_f (median_of s4); string_of_bool ok;
        ]);
  print_table t;
  note
    "shape check: with steps of c.log^2 n rounds the restart discipline \
     still delivers every batch (one strip of progress survives each \
     step), at a modest constant-factor cost — memory per node is bounded \
     by one step of receptions instead of the whole run."

(* ------------------------------------------------------------------ *)
(* E13 — fault injection: intermittent jammers                          *)

let e13 () =
  section
    "E13  Fault injection: intermittent jammers (6 nodes transmit noise w.p. p)";
  let g = Topo.grid ~w:8 ~h:8 in
  let n = Graph.n g in
  let gst = Gst.build_centralized ~graph:g ~roots:[| 0 |] () in
  let vd = Gst.virtual_distances gst in
  let t =
    Table.create
      ~title:"E13  8x8 grid, 6 jammers, median of 5 seeds (0 = no jamming)"
      ~columns:[ "p"; "decay"; "gst schedule"; "decay ok"; "gst ok" ]
  in
  per_config [ 0.0; 0.1; 0.3; 0.6 ] [ 1; 2; 3; 4; 5 ]
    (fun p seed ->
      let rng = Rng.create ~seed:(seed * 97) in
      let jammers =
        Faults.pick_jammers ~rng:(Rng.split rng) ~n ~count:6 ~exclude:[| 0 |]
      in
      let faults = { Faults.jammers; p } in
      let d =
        Decay.broadcast ~faults ~rng:(Rng.split rng) ~graph:g ~source:0 ()
      in
      let dok =
        match d.Decay.outcome with
        | Rn_radio.Engine.Completed _ -> true
        | _ -> false
      in
      let msgs = Multi_broadcast.random_messages rng ~k:1 ~msg_len:16 in
      let b =
        Gst_broadcast.run ~faults ~rng:(Rng.split rng) ~gst ~vd ~msgs
          ~sources:[| 0 |] ()
      in
      let gok =
        match b.Gst_broadcast.outcome with
        | Rn_radio.Engine.Completed _ -> true
        | _ -> false
      in
      (rounds_outcome d.Decay.outcome, dok, b.Gst_broadcast.rounds, gok))
    (fun p cells ->
      let dec = List.map (fun (a, _, _, _) -> a) cells
      and gstr = List.map (fun (_, _, c, _) -> c) cells in
      let dok = List.length (List.filter (fun (_, o, _, _) -> o) cells) in
      let gok = List.length (List.filter (fun (_, _, _, o) -> o) cells) in
      Table.add_row t
        [
          Table.cell_f p; Table.cell_f (median_of dec);
          Table.cell_f (median_of gstr); Printf.sprintf "%d/5" dok;
          Printf.sprintf "%d/5" gok;
        ]);
  print_table t;
  note
    "shape check: both randomized schedules keep delivering under heavy \
     intermittent jamming at a graceful round-count cost — the resilience \
     the MMV analysis formalizes for protocol-internal noise."

(* ------------------------------------------------------------------ *)
(* E14 — sensitivity of the explicit Theta(.) constants                 *)

let e14 () =
  section
    "E14  Sensitivity: distributed construction vs the explicit whp budgets";
  let g = layered ~seed:4 ~depth:12 ~width:5 in
  let t =
    Table.create
      ~title:"E14  layered D=12 n=61, median of 3 seeds per setting"
      ~columns:
        [ "c_whp"; "c_recruit"; "rounds"; "valid"; "fallbacks"; "fixups" ]
  in
  per_config
    [ (2, 3); (4, 6); (8, 12); (16, 24) ]
    seeds
    (fun (c_whp, c_recruit) seed ->
      let params = { Params.default with Params.c_whp; c_recruit } in
      match
        Gst_distributed.construct ~params ~rng:(Rng.create ~seed:(seed * 53))
          ~graph:g ~roots:[| 0 |] ()
      with
      | r ->
          let valid =
            match Gst.validate r.Gst_distributed.gst with
            | Ok () -> true
            | Error _ -> false
          in
          Some
            ( valid,
              r.Gst_distributed.total_rounds,
              r.Gst_distributed.fallback_reactivations,
              r.Gst_distributed.class_fixups )
      | exception Failure _ -> None)
    (fun (c_whp, c_recruit) cells ->
      let rounds = List.filter_map (Option.map (fun (_, r, _, _) -> r)) cells in
      let valid =
        List.for_all
          (function Some (v, _, _, _) -> v | None -> false)
          cells
      in
      let fb =
        List.fold_left
          (fun acc -> function Some (_, _, f, _) -> acc + f | None -> acc)
          0 cells
      in
      let fx =
        List.fold_left
          (fun acc -> function Some (_, _, _, f) -> acc + f | None -> acc)
          0 cells
      in
      Table.add_row t
        [
          string_of_int c_whp; string_of_int c_recruit;
          (if rounds = [] then "-" else Table.cell_f (median_of rounds));
          string_of_bool valid; string_of_int fb; string_of_int fx;
        ]);
  print_table t;
  note
    "shape check: doubling every safety budget costs well under 2x rounds \
     (only the fixed-epoch layering scales with c_whp; the adaptive phases \
     exit at success), and even the smallest setting stays valid here — \
     failures would appear as fallbacks/late attaches first."

(* ------------------------------------------------------------------ *)
(* F1 — Figure 1 reproduction                                           *)

let f1 () =
  section
    "F1  Figure 1: ranked BFS vs GST (see examples/gst_explorer.exe)";
  let g =
    Graph.create ~n:8
      ~edges:[ (0, 1); (0, 2); (1, 3); (2, 3); (2, 4); (3, 5); (4, 6); (5, 7) ]
  in
  let levels, naive_parents = Bfs.levels_and_parents g ~src:0 in
  let naive_ranks = Ranked_bfs.ranks ~parents:naive_parents ~levels in
  let naive =
    Gst.make ~graph:g ~levels ~parents:naive_parents ~ranks:naive_ranks ()
  in
  let gst = Gst.build_centralized ~graph:g ~roots:[| 0 |] () in
  note
    (Printf.sprintf "naive ranked BFS: %d collision-freeness violations"
       (List.length (Gst.collision_violations naive)));
  note
    (Printf.sprintf "constructed GST:  %s"
       (match Gst.validate gst with
       | Ok () -> "valid (0 violations)"
       | Error e -> e));
  note "run `dune exec examples/gst_explorer.exe` for the full rendering."

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                            *)

let micro () =
  section "B   Bechamel micro-benchmarks (wall-clock per operation)";
  let open Bechamel in
  let rng = Rng.create ~seed:1 in
  let grid = Topo.grid ~w:32 ~h:32 in
  let big_rand = Topo.random_connected ~rng ~n:256 ~extra:512 in
  let vec_a = Rn_coding.Bitvec.random rng 256 in
  let vec_b = Rn_coding.Bitvec.random rng 256 in
  let msgs = Multi_broadcast.random_messages rng ~k:32 ~msg_len:64 in
  let decoder = Rn_coding.Rlnc.create ~k:32 ~msg_len:64 in
  Rn_coding.Rlnc.seed_with_sources decoder ~msgs;
  (* 10^4-node graph for the engine/iteration benchmarks; [rows] is the
     pre-CSR int array array representation, rebuilt here as the baseline
     the flat slice walk is measured against. *)
  let big_grid = Topo.grid ~w:100 ~h:100 in
  let big_n = Graph.n big_grid in
  let rows = Array.init big_n (Graph.neighbors big_grid) in
  let one_engine_round graph =
    let p =
      {
        Rn_radio.Engine.decide =
          (fun ~round:_ ~node ->
            if node land 7 = 0 then Rn_radio.Engine.Transmit 0
            else Rn_radio.Engine.Listen);
        deliver = (fun ~round:_ ~node:_ _ -> ());
      }
    in
    Rn_radio.Engine.run ~graph ~detection:Rn_radio.Engine.Collision_detection
      ~protocol:p
      ~stop:(fun ~round:_ -> false)
      ~max_rounds:1 ()
  in
  let tests =
    Test.make_grouped ~name:"micro"
      [
        Test.make ~name:"rng_bits64" (Staged.stage (fun () -> Rng.bits64 rng));
        Test.make ~name:"bitvec_xor_256"
          (Staged.stage (fun () -> Rn_coding.Bitvec.xor_into ~dst:vec_a vec_b));
        Test.make ~name:"bitvec_dot_256"
          (Staged.stage (fun () -> Rn_coding.Bitvec.dot vec_a vec_b));
        Test.make ~name:"rlnc_encode_k32"
          (Staged.stage (fun () -> Rn_coding.Rlnc.encode rng decoder));
        Test.make ~name:"bfs_grid_32x32"
          (Staged.stage (fun () -> Bfs.levels grid ~src:0));
        Test.make ~name:"gst_centralized_n256"
          (Staged.stage (fun () ->
               Gst.build_centralized ~graph:big_rand ~roots:[| 0 |] ()));
        (* Full-graph neighbor sweep: CSR flat slices vs per-node rows. *)
        Test.make ~name:"iter_neighbors_csr_n1e4"
          (Staged.stage (fun () ->
               let acc = ref 0 in
               for v = 0 to big_n - 1 do
                 Graph.iter_neighbors big_grid v (fun u -> acc := !acc + u)
               done;
               !acc));
        Test.make ~name:"iter_neighbors_rows_n1e4"
          (Staged.stage (fun () ->
               let acc = ref 0 in
               for v = 0 to big_n - 1 do
                 Array.iter (fun u -> acc := !acc + u) rows.(v)
               done;
               !acc));
        Test.make ~name:"engine_round_grid1024"
          (Staged.stage (fun () -> one_engine_round grid));
        Test.make ~name:"engine_round_n1e4"
          (Staged.stage (fun () -> one_engine_round big_grid));
        (* Graph construction straight into CSR via Graph.Builder (no
           intermediate edge lists) — the Gen scalability path. *)
        Test.make ~name:"gen_layered_n1e4"
          (Staged.stage (fun () ->
               Topo.layered_random
                 ~rng:(Rng.create ~seed:1)
                 ~depth:100 ~width:100 ~p:0.3));
        Test.make ~name:"gen_random_connected_n1e4"
          (Staged.stage (fun () ->
               Topo.random_connected
                 ~rng:(Rng.create ~seed:1)
                 ~n:10_000 ~extra:40_000));
      ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.3) ~kde:None () in
  let raw = Benchmark.all cfg [ instance ] tests in
  let results = Analyze.all ols instance raw in
  let t =
    Table.create ~title:"B  monotonic-clock estimates"
      ~columns:[ "operation"; "ns/op" ]
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some [ est ] -> rows := (name, est) :: !rows
      | _ -> ())
    results;
  List.iter
    (fun (name, est) -> Table.add_row t [ name; Table.cell_f est ])
    (List.sort compare !rows);
  print_table t

(* ------------------------------------------------------------------ *)
(* ES — E-scale: the sharded engine at n = 10^4 / 10^5                  *)

(* One Decay broadcast per engine configuration, each checked byte-identical
   to the serial reference before its timing is reported.  Per-configuration
   rounds/sec rows land in BENCH_engine.json next to the per-experiment
   totals (ids like "ES-layered[domains=2]").

   Every run carries a metrics registry; its full export (per-phase
   aggregates + receive histogram + totals) must also be byte-identical
   across engines, and the per-phase aggregates ride into the perf record
   as extra JSON fields that tools/benchdiff gates exactly. *)
module Obs = Rn_obs

let obs_fingerprint m =
  String.concat "\n"
    (Obs.Export.phases_jsonl m @ Obs.Export.hist_csv m
    @ [ Obs.Export.summary_json m ])

let es_decay ~id ~graph_name g ~domain_counts =
  let t =
    Table.create
      ~title:
        (Printf.sprintf "%s  Decay on %s (n=%d, m=%d)" id graph_name
           (Graph.n g) (Graph.m g))
      ~columns:[ "engine"; "wall s"; "rounds/s"; "vs serial" ]
  in
  let ladder = Ilog.clog (Graph.n g) in
  let run ?(engine = Rn_radio.Engine.Dense) domains =
    let rng = Rng.create ~seed:42 in
    let metrics = Obs.Metrics.create ~phases:256 ~hist_width:ladder () in
    let w0 = Unix.gettimeofday () in
    let r =
      Decay.broadcast ?domains ~engine ~metrics ~rng ~graph:g ~source:0 ()
    in
    (Unix.gettimeofday () -. w0, r, metrics)
  in
  let ref_wall, ref_r, ref_m = run None in
  let ref_obs = obs_fingerprint ref_m in
  let rounds = ref_r.Decay.stats.Rn_radio.Engine.rounds in
  let extra =
    [
      ("phase_deliveries", Obs.Export.phase_deliveries_json ref_m);
      ("phase_tx", Obs.Export.phase_tx_json ref_m);
      ("phase_collisions", Obs.Export.phase_collisions_json ref_m);
    ]
  in
  let row name wall =
    record_bench ~extra (Printf.sprintf "%s[%s]" id name) wall rounds;
    Table.add_row t
      [
        name;
        Printf.sprintf "%.2f" wall;
        Table.cell_f (float_of_int rounds /. wall);
        Printf.sprintf "%.2fx" (ref_wall /. wall);
      ]
  in
  let verify name r m =
    if
      r.Decay.outcome <> ref_r.Decay.outcome
      || r.Decay.received_round <> ref_r.Decay.received_round
      || r.Decay.stats <> ref_r.Decay.stats
    then
      failwith
        (Printf.sprintf "%s: %s diverged from the serial engine" id name);
    if not (String.equal ref_obs (obs_fingerprint m)) then
      failwith
        (Printf.sprintf
           "%s: %s metrics export diverged from the serial engine" id name)
  in
  row "serial" ref_wall;
  let sparse_wall, sparse_r, sparse_m =
    run ~engine:Rn_radio.Engine.Sparse None
  in
  verify "sparse" sparse_r sparse_m;
  row "sparse" sparse_wall;
  List.iter
    (fun d ->
      let wall, r, m = run (Some d) in
      verify (Printf.sprintf "domains=%d" d) r m;
      row (Printf.sprintf "domains=%d" d) wall)
    domain_counts;
  print_table t;
  note
    (Printf.sprintf
       "every sparse and sharded run verified byte-identical to serial \
        (outcome, per-node receive rounds, stats, metrics export); %d \
        engine rounds each"
       rounds)

let es_smoke () =
  section "ESsmoke  sharded engine ≡ serial, CI-sized (n = 10^4)";
  es_decay ~id:"ESsmoke" ~graph_name:"layered D=100 w=100"
    (layered ~seed:7 ~depth:100 ~width:100)
    ~domain_counts:[ 2 ]

let es () =
  section "ES  E-scale: Decay rounds/sec per domain count (n = 10^5, 10^6)";
  es_decay ~id:"ES-layered" ~graph_name:"layered D=100 w=1000"
    (layered ~seed:7 ~depth:100 ~width:1000)
    ~domain_counts:[ 1; 2; 4 ];
  es_decay ~id:"ES-random" ~graph_name:"random_connected deg~10"
    (Topo.random_connected ~rng:(Rng.create ~seed:11) ~n:100_000
       ~extra:400_000)
    ~domain_counts:[ 1; 2; 4 ];
  (* The million-node point stays sparse: a dense layered graph at
     n = 10^6 is ~3*10^8 edges of CSR, past what a CI-class machine
     holds. *)
  es_decay ~id:"ES-random-1e6" ~graph_name:"random_connected deg~8"
    (Topo.random_connected ~rng:(Rng.create ~seed:13) ~n:1_000_000
       ~extra:3_000_000)
    ~domain_counts:[ 1; 2; 4 ];
  (* Theorem 1.1 comparison point.  The paper's algorithm is
     O(D + log^6 n): at every n this harness can reach, the polylog term
     towers over Decay's O(D log n + log^2 n), so the honest comparison is
     round counts at n = 10^4.  (Wall clock for larger n lives in ESthm,
     where the sparse event-driven engine makes n = 10^5 feasible.) *)
  let g = layered ~seed:7 ~depth:100 ~width:100 in
  let t =
    Table.create
      ~title:"ES  Decay vs Theorem 1.1 round counts (layered n=10^4, D=100)"
      ~columns:[ "algorithm"; "rounds"; "wall s" ]
  in
  let wd, rd =
    let w0 = Unix.gettimeofday () in
    let r = Decay.broadcast ~rng:(Rng.create ~seed:42) ~graph:g ~source:0 () in
    (Unix.gettimeofday () -. w0, r)
  in
  Table.add_row t
    [
      "Decay (BGI)";
      string_of_int rd.Decay.stats.Rn_radio.Engine.rounds;
      Printf.sprintf "%.2f" wd;
    ];
  let ws, rs, sim, skip =
    let rng = Rng.create ~seed:42 in
    let s0 = Rn_radio.Engine.total_simulated_rounds () in
    let k0 = Rn_radio.Engine.total_skipped_rounds () in
    let w0 = Unix.gettimeofday () in
    let r = Single_broadcast.run ~rng:(Rng.split rng) ~graph:g ~source:0 () in
    ( Unix.gettimeofday () -. w0,
      r,
      Rn_radio.Engine.total_simulated_rounds () - s0,
      Rn_radio.Engine.total_skipped_rounds () - k0 )
  in
  assert rs.Single_broadcast.delivered;
  (* Runs on the sparse default engine: record simulated rounds (not the
     protocol clock) so rounds_per_sec never takes credit for the
     fast-forwarded volume, which is gated separately. *)
  record_bench ~skipped:skip "ES-thm11[n=1e4]" ws sim;
  Table.add_row t
    [
      "Theorem 1.1";
      string_of_int rs.Single_broadcast.rounds_total;
      Printf.sprintf "%.2f" ws;
    ];
  print_table t;
  note
    "Theorem 1.1's O(D + log^6 n) constant dominates at any feasible n; \
     its asymptotic advantage needs D >> log^5 n"

(* ------------------------------------------------------------------ *)
(* ESthm — the sparse event-driven engine on the Theorem 1.1 pipeline   *)

(* Dense vs sparse on the full Single_broadcast pipeline: the sparse run
   must produce the *identical* result record (outcome, every per-node
   receive flag, every per-phase round count) from the same seed — the
   runtime re-verification behind every new bench row — and its win is
   reported with simulated and fast-forwarded rounds kept apart, so the
   speedup column never takes credit for rounds nobody simulated. *)
let esthm_compare ~id ~graph_name g =
  let t =
    Table.create
      ~title:
        (Printf.sprintf "%s  Theorem 1.1 dense vs sparse engine, %s (n=%d)"
           id graph_name (Graph.n g))
      ~columns:
        [ "engine"; "wall s"; "protocol rounds"; "simulated"; "skipped";
          "speedup" ]
  in
  let run engine =
    let rng = Rng.create ~seed:42 in
    let s0 = Rn_radio.Engine.total_simulated_rounds () in
    let k0 = Rn_radio.Engine.total_skipped_rounds () in
    let w0 = Unix.gettimeofday () in
    let r = Single_broadcast.run ~engine ~rng:(Rng.split rng) ~graph:g ~source:0 () in
    let wall = Unix.gettimeofday () -. w0 in
    ( wall,
      r,
      Rn_radio.Engine.total_simulated_rounds () - s0,
      Rn_radio.Engine.total_skipped_rounds () - k0 )
  in
  let wd, rd, sim_d, skip_d = run Rn_radio.Engine.Dense in
  let ws, rs, sim_s, skip_s = run Rn_radio.Engine.Sparse in
  if rd <> rs then
    failwith
      (id ^ ": sparse engine diverged from dense on the Theorem 1.1 pipeline");
  assert rs.Single_broadcast.delivered;
  let row name wall r sim skip speedup =
    record_bench ~skipped:skip (Printf.sprintf "%s[%s]" id name) wall sim;
    Table.add_row t
      [
        name;
        Printf.sprintf "%.2f" wall;
        string_of_int r.Single_broadcast.rounds_total;
        string_of_int sim;
        string_of_int skip;
        Printf.sprintf "%.1fx" speedup;
      ]
  in
  row "dense" wd rd sim_d skip_d 1.0;
  row "sparse" ws rs sim_s skip_s (wd /. ws);
  print_table t;
  note
    (Printf.sprintf
       "sparse result record identical to dense (delivered=%b, %d protocol \
        rounds); dense simulated every protocol round, sparse simulated %d \
        and fast-forwarded %d"
       rs.Single_broadcast.delivered rs.Single_broadcast.rounds_total sim_s
       skip_s);
  (wd, ws)

(* Sparse-only: the graphs where the dense engine is the reason the row
   never existed.  The run still self-checks (delivery to every node). *)
let esthm_sparse_only ~id ~graph_name g =
  let rng = Rng.create ~seed:42 in
  let s0 = Rn_radio.Engine.total_simulated_rounds () in
  let k0 = Rn_radio.Engine.total_skipped_rounds () in
  let w0 = Unix.gettimeofday () in
  let r =
    Single_broadcast.run ~engine:Rn_radio.Engine.Sparse ~rng:(Rng.split rng)
      ~graph:g ~source:0 ()
  in
  let wall = Unix.gettimeofday () -. w0 in
  let sim = Rn_radio.Engine.total_simulated_rounds () - s0 in
  let skip = Rn_radio.Engine.total_skipped_rounds () - k0 in
  assert r.Single_broadcast.delivered;
  record_bench ~skipped:skip (Printf.sprintf "%s[sparse]" id) wall sim;
  let t =
    Table.create
      ~title:
        (Printf.sprintf "%s  Theorem 1.1 sparse engine, %s (n=%d)" id
           graph_name (Graph.n g))
      ~columns:
        [ "wall s"; "protocol rounds"; "simulated"; "skipped"; "delivered" ]
  in
  Table.add_row t
    [
      Printf.sprintf "%.2f" wall;
      string_of_int r.Single_broadcast.rounds_total;
      string_of_int sim;
      string_of_int skip;
      string_of_bool r.Single_broadcast.delivered;
    ];
  print_table t

let esthm_smoke () =
  section
    "ESthmsmoke  sparse Thm 1.1 engine ≡ dense, CI-sized (n = 2.5*10^3)";
  let wd, ws =
    esthm_compare ~id:"ESthmsmoke" ~graph_name:"layered D=50 w=50"
      (layered ~seed:7 ~depth:50 ~width:50)
  in
  note (Printf.sprintf "dense %.1fs, sparse %.1fs" wd ws)

let esthm () =
  section "ESthm  sparse event-driven engine: Theorem 1.1 at n = 10^4, 10^5";
  let _wd, _ws =
    esthm_compare ~id:"ESthm-1e4" ~graph_name:"layered D=100 w=100"
      (layered ~seed:7 ~depth:100 ~width:100)
  in
  esthm_sparse_only ~id:"ESthm-1e5" ~graph_name:"layered D=100 w=1000"
    (layered ~seed:7 ~depth:100 ~width:1000)

(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* REG — registry sweep: every registered pipeline through one harness  *)

let reg () =
  let module R = Rn_radio.Registry in
  section "REG  protocol registry sweep (every registered pipeline)";
  Protocols.ensure_registered ();
  let g = layered ~seed:7 ~depth:8 ~width:8 in
  let t =
    Table.create
      ~title:"REG  registered protocols, layered n=65 D=8, run seed 42"
      ~columns:[ "proto"; "rounds"; "delivered"; "wall s" ]
  in
  List.iter
    (fun e ->
      let s0 = Rn_radio.Engine.total_simulated_rounds () in
      let k0 = Rn_radio.Engine.total_skipped_rounds () in
      let w0 = Unix.gettimeofday () in
      let r = e.R.run ~k:4 ~seed:42 ~graph:g ~source:0 () in
      let wall = Unix.gettimeofday () -. w0 in
      let sim = Rn_radio.Engine.total_simulated_rounds () - s0 in
      let skip = Rn_radio.Engine.total_skipped_rounds () - k0 in
      assert r.R.delivered;
      record_bench ~skipped:skip
        (Printf.sprintf "REG[%s]" e.R.name)
        wall sim;
      Table.add_row t
        [
          e.R.name; string_of_int r.R.rounds; string_of_bool r.R.delivered;
          Printf.sprintf "%.2f" wall;
        ])
    (R.all ());
  print_table t;
  note
    "one deterministic run per Registry entry (the same source rbcast and \
     test_contracts dispatch from); multi protocols use k = 4."

(* ------------------------------------------------------------------ *)
(* EC — campaign runner capacity: topology cache, work stealing,        *)
(* saturation profile (rn_campaign on top of Runner.Pool)               *)

let campaign_spec text =
  match Rn_campaign.Spec.parse text with
  | Ok s -> s
  | Error msg -> failwith ("EC: bad campaign spec: " ^ msg)

let run_campaign ?domains ?schedule ?cache spec =
  let w0 = Unix.gettimeofday () in
  let stats =
    Rn_campaign.Campaign.run ?domains ?schedule ?cache
      ~clock:Unix.gettimeofday
      ~emit:(fun _ -> ())
      spec
  in
  (stats, Unix.gettimeofday () -. w0)

(* Deterministic per-row rounds: the campaign engine's per-cell counts
   are schedule/cache/domain independent (QCheck-enforced), so benchdiff
   can gate these rows exactly like any other experiment. *)
let campaign_rounds (st : Rn_campaign.Campaign.stats) =
  Array.fold_left ( + ) 0 st.Rn_campaign.Campaign.cell_rounds

let campaign_extra (st : Rn_campaign.Campaign.stats) wall =
  let open Rn_campaign.Campaign in
  let cps = if wall > 0.0 then float_of_int st.cells /. wall else 0.0 in
  [
    ("cells", string_of_int st.cells);
    ("cells_per_sec", Printf.sprintf "%.1f" cps);
    ("gen_s", Printf.sprintf "%.4f" st.gen_s);
    ("run_s", Printf.sprintf "%.4f" st.run_s);
    ("drain_s", Printf.sprintf "%.4f" st.drain_s);
  ]

(* List-scheduling model: replay the campaign's exact lane assignment
   (cell [i] starts on lane [i mod lanes]; owners take from the front)
   and steal policy (an idle lane takes one cell from the back of the
   most loaded queue) over measured per-cell serial durations.  This is
   what keeps the steal-vs-static comparison meaningful on a single-core
   host, where real lanes time-slice one CPU and every schedule's wall
   clock collapses to the same serial sum; on a multicore host the
   recorded real walls tell the same story directly. *)
let model_makespan ~steal ~lanes durs =
  let n = Array.length durs in
  let order =
    Array.init lanes (fun l ->
        Array.init ((n - l + lanes - 1) / lanes) (fun s -> l + (s * lanes)))
  in
  let lo = Array.make lanes 0 in
  let hi = Array.map Array.length order in
  let t = Array.make lanes 0.0 in
  let finished = Array.make lanes false in
  let active = ref lanes in
  while !active > 0 do
    let l = ref (-1) in
    for i = 0 to lanes - 1 do
      if (not finished.(i)) && (!l < 0 || t.(i) < t.(!l)) then l := i
    done;
    let l = !l in
    if lo.(l) < hi.(l) then begin
      t.(l) <- t.(l) +. durs.(order.(l).(lo.(l)));
      lo.(l) <- lo.(l) + 1
    end
    else if steal then begin
      let victim = ref (-1) and rem = ref 0 in
      for i = 0 to lanes - 1 do
        if hi.(i) - lo.(i) > !rem then begin
          rem := hi.(i) - lo.(i);
          victim := i
        end
      done;
      match !victim with
      | -1 ->
          finished.(l) <- true;
          decr active
      | v ->
          hi.(v) <- hi.(v) - 1;
          t.(l) <- t.(l) +. durs.(order.(v).(hi.(v)))
    end
    else begin
      finished.(l) <- true;
      decr active
    end
  done;
  Array.fold_left Float.max 0.0 t

let ec_smoke () =
  let open Rn_campaign.Campaign in
  section "ECsmoke  campaign runner capacity (cache / stealing / saturation)";
  Protocols.ensure_registered ();

  (* Topology cache: unit-disk generation is O(n^2) distance checks, so
     with 10 run seeds per instance the cache amortizes 10 generations
     into 1 while the Decay cells themselves stay cheap. *)
  let cache_spec =
    campaign_spec
      "{\"topo\": \"disk\", \"n\": 500, \"radius\": 0.15, \"seeds\": [1, 2]}\n\
       {\"proto\": \"decay\"}\n\
       {\"seeds\": [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]}"
  in
  let st_on, w_on = run_campaign ~domains:1 ~cache:true cache_spec in
  let st_off, w_off = run_campaign ~domains:1 ~cache:false cache_spec in
  let cache_rounds = campaign_rounds st_on in
  assert (campaign_rounds st_off = cache_rounds);
  record_bench ~extra:(campaign_extra st_on w_on) "ECsmoke-cache[on]" w_on
    cache_rounds;
  record_bench ~extra:(campaign_extra st_off w_off) "ECsmoke-cache[off]" w_off
    cache_rounds;
  let cps st w = if w > 0.0 then float_of_int st.cells /. w else 0.0 in
  let t =
    Table.create ~title:"ECsmoke  topology cache, 20 Decay cells on disk n=500"
      ~columns:[ "cache"; "wall s"; "cells/s"; "gen s"; "run s" ]
  in
  let cache_row name st w =
    Table.add_row t
      [
        name; Printf.sprintf "%.3f" w; Printf.sprintf "%.1f" (cps st w);
        Printf.sprintf "%.3f" st.gen_s; Printf.sprintf "%.3f" st.run_s;
      ]
  in
  cache_row "on" st_on w_on;
  cache_row "off" st_off w_off;
  print_table t;
  note
    (Printf.sprintf
       "cache shares each generated CSR read-only across all of an \
        instance's cells: %.1fx cells/sec vs regenerating per cell."
       (cps st_on w_on /. cps st_off w_off));

  (* Work stealing: a protocol-comparison sweep (Thm 1.1 vs Decay, a
     heavy-tailed duration mix) whose strided static split aligns
     pathologically — two protocols on two lanes pins every slow cell to
     one lane. *)
  let steal_spec =
    campaign_spec
      "{\"topo\": \"layered\", \"depth\": 8, \"width\": 8, \"p\": 0.3, \
        \"seeds\": [1]}\n\
       {\"proto\": \"thm11\"}\n\
       {\"proto\": \"decay\"}\n\
       {\"seeds\": [1, 2, 3, 4, 5, 6]}"
  in
  let st_ser, _ = run_campaign ~domains:1 steal_spec in
  let durs = st_ser.cell_wall in
  let steal_rounds = campaign_rounds st_ser in
  let st_stat2, w_stat2 =
    run_campaign ~domains:2 ~schedule:Static steal_spec
  in
  let st_work2, w_work2 =
    run_campaign ~domains:2 ~schedule:Stealing steal_spec
  in
  assert (campaign_rounds st_stat2 = steal_rounds);
  assert (campaign_rounds st_work2 = steal_rounds);
  let ms_stat2 = model_makespan ~steal:false ~lanes:2 durs in
  let ms_work2 = model_makespan ~steal:true ~lanes:2 durs in
  let ms_stat4 = model_makespan ~steal:false ~lanes:4 durs in
  let ms_work4 = model_makespan ~steal:true ~lanes:4 durs in
  record_bench
    ~extra:
      (campaign_extra st_stat2 w_stat2
      @ [ ("modeled_makespan_s", Printf.sprintf "%.4f" ms_stat2) ])
    "ECsmoke-steal[static,d=2]" w_stat2 steal_rounds;
  record_bench
    ~extra:
      (campaign_extra st_work2 w_work2
      @ [
          ("modeled_makespan_s", Printf.sprintf "%.4f" ms_work2);
          ("steals", string_of_int st_work2.steals);
        ])
    "ECsmoke-steal[steal,d=2]" w_work2 steal_rounds;
  let t =
    Table.create
      ~title:
        "ECsmoke  steal vs static, 6x (thm11 + decay) on layered n=65 \
         (modeled makespan over measured serial cell durations)"
      ~columns:[ "lanes"; "static s"; "steal s"; "speedup" ]
  in
  let steal_row lanes ms_stat ms_work =
    Table.add_row t
      [
        string_of_int lanes; Printf.sprintf "%.3f" ms_stat;
        Printf.sprintf "%.3f" ms_work;
        Printf.sprintf "%.2fx" (ms_stat /. ms_work);
      ]
  in
  steal_row 2 ms_stat2 ms_work2;
  steal_row 4 ms_stat4 ms_work4;
  print_table t;
  note
    "the model replays the campaign's exact assignment and steal policy \
     over per-cell durations measured serially, so it is schedule truth \
     independent of how many cores this host can actually run lanes on; \
     real 2-lane walls are recorded in the ECsmoke-steal rows.";

  (* Saturation profile: where does a cached, stealing campaign spend its
     time as lanes are added. *)
  let t =
    Table.create ~title:"ECsmoke  capacity vs lanes (cached, stealing)"
      ~columns:[ "lanes"; "wall s"; "cells/s"; "gen s"; "run s"; "drain s" ]
  in
  List.iter
    (fun d ->
      let st, w = run_campaign ~domains:d cache_spec in
      assert (campaign_rounds st = cache_rounds);
      record_bench ~extra:(campaign_extra st w)
        (Printf.sprintf "ECsmoke-capacity[d=%d]" d)
        w cache_rounds;
      Table.add_row t
        [
          string_of_int d; Printf.sprintf "%.3f" w;
          Printf.sprintf "%.1f" (cps st w); Printf.sprintf "%.3f" st.gen_s;
          Printf.sprintf "%.3f" st.run_s; Printf.sprintf "%.3f" st.drain_s;
        ])
    [ 1; 2; 4 ];
  print_table t;
  note
    "protocol execution (run s) dominates once the cache removes repeated \
     generation; the drain column is the coordinator's journal/emit cost \
     and stays negligible, so throughput is engine-bound."

let ec () =
  let module R = Rn_radio.Registry in
  section "EC  campaign registry sweep (every protocol, seed x size grid)";
  Protocols.ensure_registered ();
  let b = Buffer.create 512 in
  Buffer.add_string b
    "{\"topo\": \"layered\", \"depth\": 4, \"width\": 4, \"p\": 0.5, \
     \"seeds\": [3]}\n\
     {\"topo\": \"layered\", \"depth\": 8, \"width\": 8, \"p\": 0.3, \
     \"seeds\": [7]}\n\
     {\"seeds\": [41, 42, 43]}\n";
  List.iter
    (fun e ->
      if e.R.multi then
        Buffer.add_string b
          (Printf.sprintf "{\"proto\": %S, \"k\": 4}\n" e.R.name)
      else Buffer.add_string b (Printf.sprintf "{\"proto\": %S}\n" e.R.name))
    (R.all ());
  let spec = campaign_spec (Buffer.contents b) in
  let st, wall = run_campaign ~domains:2 spec in
  record_bench ~extra:(campaign_extra st wall) "EC-registry[sweep]" wall
    (campaign_rounds st);
  let open Rn_campaign in
  let cells = Spec.cells spec in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "EC  %d cells: every registry entry x layered {n=17, n=65} x 3 \
            run seeds"
           (Array.length cells))
      ~columns:[ "proto"; "cells"; "rounds"; "wall s" ]
  in
  List.iter
    (fun e ->
      let n = ref 0 and rounds = ref 0 and w = ref 0.0 in
      Array.iteri
        (fun i c ->
          if String.equal c.Spec.proto e.R.name then begin
            incr n;
            rounds := !rounds + st.Campaign.cell_rounds.(i);
            w := !w +. st.Campaign.cell_wall.(i)
          end)
        cells;
      Table.add_row t
        [
          e.R.name; string_of_int !n; string_of_int !rounds;
          Printf.sprintf "%.2f" !w;
        ])
    (R.all ());
  print_table t;
  note
    "one campaign over the whole registry: the sweep rbcast-campaign runs \
     from a spec file, here driven in-process for the capacity record."

(* ------------------------------------------------------------------ *)
(* ED — distributed campaign: real multi-process fan-out through        *)
(* rbcast campaign-dist, worker-count scaling plus a chaos arm          *)

let ed () =
  section "ED  distributed campaign (rbcast campaign-dist worker scaling)";
  Protocols.ensure_registered ();
  let exe = "./_build/default/bin/rbcast.exe" in
  if not (Sys.file_exists exe) then
    note
      "skipped: ./_build/default/bin/rbcast.exe not built (run `dune build \
       bin/rbcast.exe` first); ED drives the real coordinator/worker \
       processes, not an in-process model."
  else begin
    let spec_text =
      "{\"topo\": \"disk\", \"n\": 350, \"radius\": 0.18, \"seeds\": [1, 2]}\n\
       {\"proto\": \"decay\"}\n\
       {\"proto\": \"cr\"}\n\
       {\"seeds\": [1, 2, 3, 4, 5, 6]}"
    in
    let spec = campaign_spec spec_text in
    (* serial in-process reference: the bytes every distributed variant
       must reproduce, and the deterministic per-row rounds metric *)
    let buf = Buffer.create 8192 in
    let st, w_serial =
      let w0 = Unix.gettimeofday () in
      let st =
        Rn_campaign.Campaign.run ~domains:1
          ~clock:Unix.gettimeofday
          ~emit:(fun l ->
            Buffer.add_string buf l;
            Buffer.add_char buf '\n')
          spec
      in
      (st, Unix.gettimeofday () -. w0)
    in
    let reference = Buffer.contents buf in
    let rounds = campaign_rounds st in
    let cells = st.Rn_campaign.Campaign.cells in
    let tmp suffix = Filename.temp_file "rbcast_ed" suffix in
    let spec_path = tmp ".spec.jsonl" in
    let oc = open_out spec_path in
    output_string oc spec_text;
    close_out oc;
    let read_file path =
      let ic = open_in_bin path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      s
    in
    let t =
      Table.create
        ~title:
          (Printf.sprintf "ED  %d cells via campaign-dist (serial %.3fs)"
             cells w_serial)
        ~columns:[ "arm"; "workers"; "wall s"; "cells/s"; "vs serial"; "ok" ]
    in
    let arm ~label ~workers ~chaos =
      let out_path = tmp ".out.jsonl" in
      let chaos_flags =
        if chaos then " --chaos 7 --backoff 0.05 --poll 0.02" else ""
      in
      let cmd =
        Printf.sprintf "%s campaign-dist --spec %s -o %s --workers %d -q%s"
          (Filename.quote exe) (Filename.quote spec_path)
          (Filename.quote out_path) workers chaos_flags
      in
      let w0 = Unix.gettimeofday () in
      let rc = Sys.command cmd in
      let wall = Unix.gettimeofday () -. w0 in
      let ok = rc = 0 && String.equal (read_file out_path) reference in
      if not ok then
        failwith
          (Printf.sprintf "ED %s: exit %d or merged bytes differ" label rc);
      record_bench
        ~extra:
          [
            ("cells", string_of_int cells);
            ("workers", string_of_int workers);
            ( "cells_per_sec",
              Printf.sprintf "%.1f"
                (if wall > 0.0 then float_of_int cells /. wall else 0.0) );
          ]
        (Printf.sprintf "ED-dist[%s]" label)
        wall rounds;
      Table.add_row t
        [
          label; string_of_int workers; Printf.sprintf "%.3f" wall;
          Printf.sprintf "%.1f" (float_of_int cells /. Float.max 1e-9 wall);
          Printf.sprintf "%.2fx" (wall /. Float.max 1e-9 w_serial);
          string_of_bool ok;
        ]
    in
    arm ~label:"w=1" ~workers:1 ~chaos:false;
    arm ~label:"w=2" ~workers:2 ~chaos:false;
    arm ~label:"w=3" ~workers:3 ~chaos:false;
    arm ~label:"chaos,w=3" ~workers:3 ~chaos:true;
    print_table t;
    note
      "each arm byte-diffs the merged output against the in-process serial \
       run; the chaos arm SIGKILLs a worker mid-flight (plus spawn delays \
       and a torn shard tail) and must still match.  Worker processes pay \
       a spawn + spec-expansion cost per attempt, so small sweeps amortize \
       poorly — the scaling story is the cells/s column."
  end

let experiments =
  [
    ("E1", e1); ("E2", e2); ("E3", e3); ("E4", e4); ("E5", e5); ("E6", e6);
    ("E7", e7); ("E8", e8); ("E9", e9); ("E10", e10); ("E11", e11);
    ("E12", e12); ("E13", e13); ("E14", e14); ("F1", f1);
    ("ESsmoke", es_smoke); ("ES", es); ("ESthmsmoke", esthm_smoke);
    ("ESthm", esthm); ("REG", reg); ("ECsmoke", ec_smoke); ("EC", ec);
    ("ED", ed); ("micro", micro);
  ]

(* Heavyweight experiments that only run when named explicitly: ES is
   minutes of wall clock at n = 10^5, and ESthm's dense reference run is
   ~2 minutes at n = 10^4. *)
let explicit_only = [ "ES"; "ESthm" ]

let () =
  let args = match Array.to_list Sys.argv with [] -> [] | _ :: rest -> rest in
  let rec strip_opts acc = function
    | "--csv" :: dir :: rest ->
        Atomic.set Table.csv_dir (Some dir);
        strip_opts acc rest
    | "--domains" :: d :: rest ->
        Atomic.set domains (Some (max 1 (int_of_string d)));
        strip_opts acc rest
    | "--json" :: path :: rest ->
        Atomic.set json_path path;
        strip_opts acc rest
    | x :: rest -> strip_opts (x :: acc) rest
    | [] -> List.rev acc
  in
  let args = strip_opts [] args in
  let requested = match args with [] -> None | ids -> Some ids in
  let wanted id =
    match requested with
    | None -> not (List.mem id explicit_only)
    | Some ids -> List.mem id ids
  in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun (id, f) ->
      if wanted id then begin
        let r0 = Rn_radio.Engine.total_simulated_rounds () in
        let k0 = Rn_radio.Engine.total_skipped_rounds () in
        let w0 = Unix.gettimeofday () in
        f ();
        let wall = Unix.gettimeofday () -. w0 in
        let rounds = Rn_radio.Engine.total_simulated_rounds () - r0 in
        let skipped = Rn_radio.Engine.total_skipped_rounds () - k0 in
        record_bench ~skipped id wall rounds
      end)
    experiments;
  let total_wall = Unix.gettimeofday () -. t0 in
  write_bench_json ~total_wall;
  Printf.printf "\nall requested experiments done in %.1fs\n" total_wall
