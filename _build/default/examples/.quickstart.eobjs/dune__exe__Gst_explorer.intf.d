examples/gst_explorer.mli:
