examples/firmware_update.mli:
