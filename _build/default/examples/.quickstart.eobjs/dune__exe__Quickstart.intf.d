examples/quickstart.mli:
