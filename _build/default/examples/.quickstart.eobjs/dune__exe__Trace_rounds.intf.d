examples/trace_rounds.mli:
