examples/firmware_update.ml: Baselines Multi_broadcast Printf Rn_broadcast Rn_graph Rn_util Rng
