examples/gst_explorer.ml: Array Bfs Graph Gst Gst_distributed List Printf Ranked_bfs Rn_broadcast Rn_graph Rn_util Rng String
