examples/sensor_field.mli:
