examples/trace_rounds.ml: Array Decay Engine List Params Printf Rn_broadcast Rn_graph Rn_radio Rn_util Rng String
