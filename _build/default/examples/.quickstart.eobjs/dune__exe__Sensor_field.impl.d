examples/sensor_field.ml: Array Baselines Bfs Decay Gen Graph Printf Rn_broadcast Rn_graph Rn_radio Rn_util Rng Single_broadcast String
