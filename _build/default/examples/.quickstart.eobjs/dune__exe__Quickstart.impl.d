examples/quickstart.ml: Baselines Decay Printf Rn_broadcast Rn_graph Rn_radio Rn_util Rng Single_broadcast
