(* GST explorer: Figure 1 of the paper, reproduced on a live graph.

   Shows a ranked BFS tree built naively (smallest-id parents), the
   collision-freeness violations it commits, and the proper gathering
   spanning tree built by the library, with its fast stretches and
   virtual distances.

   Run with: dune exec examples/gst_explorer.exe *)

open Rn_util
open Rn_graph
open Rn_broadcast

(* A two-branch shape in the spirit of Figure 1: node 3 can hang off
   either branch, and the naive smallest-id choice creates exactly the
   collision-freeness violation the figure's left side shows (3 -> 1 and
   4 -> 2 all of rank 1, with the cross edge 2 - 3). *)
let figure_graph () =
  Graph.create ~n:8
    ~edges:
      [ (0, 1); (0, 2); (1, 3); (2, 3); (2, 4); (3, 5); (4, 6); (5, 7) ]

let show_tree title ~levels ~parents ~ranks g =
  Printf.printf "%s\n" title;
  let depth = Bfs.max_level levels in
  for l = 0 to depth do
    Printf.printf "  level %d: " l;
    Array.iter
      (fun v ->
        if parents.(v) < 0 then Printf.printf "[%d r%d] " v ranks.(v)
        else Printf.printf "[%d r%d <-%d] " v ranks.(v) parents.(v))
      (Bfs.nodes_at_level levels l);
    print_newline ()
  done;
  ignore g

let () =
  let g = figure_graph () in
  let levels, naive_parents = Bfs.levels_and_parents g ~src:0 in
  let naive_ranks = Ranked_bfs.ranks ~parents:naive_parents ~levels in
  show_tree "Naive ranked BFS (smallest-id parents):" ~levels
    ~parents:naive_parents ~ranks:naive_ranks g;
  let naive =
    Gst.make ~graph:g ~levels ~parents:naive_parents ~ranks:naive_ranks ()
  in
  (match Gst.collision_violations naive with
  | [] -> Printf.printf "  collision-free: yes (lucky graph)\n\n"
  | viols ->
      Printf.printf "  collision-freeness VIOLATIONS (as in Figure 1, left):\n";
      List.iter
        (fun (u1, v1, u2, v2) ->
          Printf.printf
            "    %d->%d and %d->%d share a cross edge — fast waves would collide\n"
            u1 v1 u2 v2)
        viols;
      print_newline ());

  let gst = Gst.build_centralized ~graph:g ~roots:[| 0 |] () in
  show_tree "Gathering spanning tree (Figure 1, right):" ~levels:gst.Gst.levels
    ~parents:gst.Gst.parents ~ranks:gst.Gst.ranks g;
  (match Gst.validate gst with
  | Ok () -> Printf.printf "  validated: ranked BFS + collision-free + wave-safe\n\n"
  | Error e -> Printf.printf "  UNEXPECTED: %s\n\n" e);

  Printf.printf "Fast stretches (same-rank root-ward chains, pipelined by the\nschedule's fast transmissions):\n";
  let heads = Gst.stretch_head_of gst in
  Array.iteri
    (fun h hv ->
      if h = hv then begin
        match Gst.stretch_members gst h with
        | [ _ ] -> ()
        | members ->
            Printf.printf "  head %d: %s\n" h
              (String.concat " -> " (List.map string_of_int members))
      end)
    heads;

  Printf.printf "\nVirtual distances in G' (Lemma 3.4 bound: <= 2.ceil(log2 n) = %d):\n  "
    (2 * Rn_util.Ilog.clog 13);
  Array.iteri (fun v d -> Printf.printf "%d:%d " v d) (Gst.virtual_distances gst);
  print_newline ();

  (* And the distributed construction reaches an equally valid tree. *)
  let r =
    Gst_distributed.construct ~learn_vd:true ~rng:(Rng.create ~seed:1) ~graph:g
      ~roots:[| 0 |] ()
  in
  Printf.printf
    "\nDistributed construction (Theorem 2.1): %d rounds, valid = %b\n"
    r.Gst_distributed.total_rounds
    (match Gst.validate r.Gst_distributed.gst with Ok () -> true | Error _ -> false)
