(* Round-by-round trace of the radio model on a tiny network.

   Prints every transmission and reception of a Decay broadcast on a
   5-node path, showing the model's mechanics: the probability ladder,
   collisions turning into silence (without CD), and the message hopping
   level by level.

   Run with: dune exec examples/trace_rounds.exe *)

open Rn_util
open Rn_radio
open Rn_broadcast

type msg = Payload

let () =
  let graph = Rn_graph.Gen.path 5 in
  let rng = Rng.create ~seed:6 in
  let n = Rn_graph.Graph.n graph in
  let node_rng = Rng.split_n rng n in
  let has = Array.make n false in
  has.(0) <- true;
  let missing = ref (n - 1) in
  let ladder = Params.phase_len ~n in
  let decide ~round ~node =
    if has.(node) && Rng.bernoulli node_rng.(node) (Decay.probability ~ladder round)
    then Engine.Transmit Payload
    else Engine.Listen
  in
  let deliver ~round:_ ~node reception =
    match reception with
    | Engine.Received Payload ->
        if not has.(node) then begin
          has.(node) <- true;
          decr missing
        end
    | Engine.Silence | Engine.Collision -> ()
  in
  Printf.printf "Decay broadcast on a 5-node path (0-1-2-3-4), source 0.\n";
  Printf.printf "phase ladder length = %d (transmit w.p. 2^-(1 + round mod %d))\n\n"
    ladder ladder;
  let on_round ~round events =
    let holders =
      String.concat ""
        (List.init n (fun v -> if has.(v) then string_of_int v else "."))
    in
    let show = function
      | Engine.Ev_transmit { node; msg = Payload } ->
          Some (Printf.sprintf "%d!" node)
      | Engine.Ev_receive { node; reception = Engine.Received _ } ->
          Some (Printf.sprintf "%d<-msg" node)
      | Engine.Ev_receive { node; reception = Engine.Collision } ->
          Some (Printf.sprintf "%d<-TOP" node)
      | Engine.Ev_receive { reception = Engine.Silence; _ } -> None
    in
    let line = List.filter_map show events in
    if line <> [] then
      Printf.printf "round %3d  holders=%s  %s\n" round holders
        (String.concat "  " line)
  in
  let outcome =
    Engine.run ~on_round ~graph ~detection:Engine.No_collision_detection
      ~protocol:{ Engine.decide; deliver }
      ~stop:(fun ~round:_ -> !missing = 0)
      ~max_rounds:500 ()
  in
  Printf.printf "\nall nodes reached after %d rounds\n"
    (Engine.rounds_of_outcome outcome);

  (* The same network with collision detection: show ⊤ during a forced
     clash, the primitive behind the collision wave of §2.3. *)
  Printf.printf "\nForced clash with collision detection (nodes 0 and 2 transmit):\n";
  let decide ~round:_ ~node =
    if node = 0 || node = 2 then Engine.Transmit Payload else Engine.Listen
  in
  let deliver ~round:_ ~node:_ _ = () in
  ignore
    (Engine.run
       ~on_round:(fun ~round:_ events ->
         List.iter
           (function
             | Engine.Ev_receive { node; reception = Engine.Collision } ->
                 Printf.printf "  node %d hears the collision symbol (TOP)\n" node
             | Engine.Ev_receive { node; reception = Engine.Received _ } ->
                 Printf.printf "  node %d receives cleanly\n" node
             | Engine.Ev_receive { node; reception = Engine.Silence } ->
                 Printf.printf "  node %d hears silence\n" node
             | Engine.Ev_transmit _ -> ())
           events)
       ~graph ~detection:Engine.Collision_detection
       ~protocol:{ Engine.decide; deliver }
       ~stop:(fun ~round -> round >= 1)
       ~max_rounds:1 ())
