(* Firmware update: a gateway pushes a k-chunk image to every node of a
   mesh, the k-message broadcast problem of §3.

   Compares the paper's network-coded schedule (Theorem 1.2 with known
   topology, Theorem 1.3 without) against store-and-forward routing and
   against k back-to-back single-message floods.

   Run with: dune exec examples/firmware_update.exe *)

open Rn_util
open Rn_broadcast

let () =
  let rng = Rng.create ~seed:99 in
  (* A mesh of dense clusters chained along a corridor: long diameter,
     heavy local contention — the hard regime for multi-message traffic. *)
  let graph =
    Rn_graph.Gen.cluster_path ~rng ~clusters:6 ~size:10 ~p_intra:0.35
  in
  let source = 0 in
  let k = 24 in
  let d = Rn_graph.Bfs.eccentricity graph source in
  Printf.printf
    "mesh: n=%d, diameter-from-gateway=%d; firmware image: %d chunks\n\n"
    (Rn_graph.Graph.n graph) d k;

  let known = Multi_broadcast.known ~rng:(Rng.split rng) ~graph ~source ~k () in
  assert (known.Multi_broadcast.delivered && known.Multi_broadcast.payloads_ok);

  let unknown = Multi_broadcast.unknown ~rng:(Rng.split rng) ~graph ~source ~k () in

  let routing = Baselines.routing_multi ~rng:(Rng.split rng) ~graph ~source ~k () in
  let seq = Baselines.sequential_multi ~rng:(Rng.split rng) ~graph ~source ~k () in

  Printf.printf "%-52s %8s %10s\n" "strategy" "rounds" "rounds/chunk";
  let row name rounds =
    Printf.printf "%-52s %8d %10.1f\n" name rounds
      (float_of_int rounds /. float_of_int k)
  in
  row "RLNC + MMV-GST schedule, known topology (Thm 1.2)"
    known.Multi_broadcast.rounds;
  row "RLNC + rings + FEC, unknown topology + CD (Thm 1.3)"
    unknown.Multi_broadcast.rounds_total;
  row "store-and-forward routing (uncoded)" routing.Baselines.rounds;
  row "k sequential Decay floods" seq.Baselines.rounds;

  print_newline ();
  Printf.printf
    "Per-chunk cost of the coded schedule approaches Θ(log n); routing\n\
     repeats itself and the sequential flood pays the full diameter per\n\
     chunk.  Experiment E5/E10 in bench/main.exe sweeps k to show the\n\
     slopes.\n";
  Printf.printf
    "Unknown-topology breakdown: layering %d + construction %d + pipelined\n\
     dissemination %d over %d rings x %d batches.\n"
    unknown.Multi_broadcast.rounds_layering
    unknown.Multi_broadcast.rounds_construction
    unknown.Multi_broadcast.rounds_dissemination
    unknown.Multi_broadcast.ring_count unknown.Multi_broadcast.batch_count
