(* Sensor field: an alarm spreads through a geometric radio network.

   Radio networks model exactly this deployment: sensors scattered over an
   area, each hearing only nearby transmitters, interference when two
   neighbors talk at once.  We drop 120 sensors in the unit square, raise
   an alarm at the sensor closest to a corner, and compare dissemination
   strategies.

   Run with: dune exec examples/sensor_field.exe *)

open Rn_util
open Rn_graph
open Rn_broadcast

let () =
  let rng = Rng.create ~seed:7 in
  let n = 120 in
  let graph = Gen.unit_disk ~rng ~n ~radius:0.14 in
  let source = 0 in
  let ecc = Bfs.eccentricity graph source in
  Printf.printf "sensor field: %d sensors, %d links, %d hops to the farthest sensor\n\n"
    (Graph.n graph) (Graph.m graph) ecc;

  (* 1. Plain Decay flooding. *)
  let decay = Baselines.decay_broadcast ~rng:(Rng.split rng) ~graph ~source () in
  let decay_rounds = Rn_radio.Engine.rounds_of_outcome decay.Decay.outcome in

  (* 2. The truncated-ladder (Czumaj-Rytter-style) variant. *)
  let cr =
    Baselines.cr_broadcast ~rng:(Rng.split rng) ~graph ~source ~diameter:ecc ()
  in
  let cr_rounds = Rn_radio.Engine.rounds_of_outcome cr.Decay.outcome in

  (* 3. Theorem 1.1 with collision detection. *)
  let cd = Single_broadcast.run ~rng:(Rng.split rng) ~graph ~source () in

  Printf.printf "%-42s %8s\n" "strategy" "rounds";
  Printf.printf "%-42s %8d\n" "Decay flooding [BGI]" decay_rounds;
  Printf.printf "%-42s %8d\n" "truncated Decay [Czumaj-Rytter-style]" cr_rounds;
  Printf.printf "%-42s %8d   (setup %d + spread %d)\n"
    "collision detection [Theorem 1.1]" cd.Single_broadcast.rounds_total
    (cd.Single_broadcast.rounds_layering + cd.Single_broadcast.rounds_construction)
    cd.Single_broadcast.rounds_broadcast;
  assert cd.Single_broadcast.delivered;

  (* Reception-time profile of the Decay flood: how the alarm wave moves. *)
  print_newline ();
  Printf.printf "Decay alarm wavefront (sensors reached per 10-round window):\n";
  let window = 10 in
  let buckets = (decay_rounds / window) + 1 in
  let hist = Array.make buckets 0 in
  Array.iter
    (fun r -> if r >= 0 then hist.(r / window) <- hist.(r / window) + 1)
    decay.Decay.received_round;
  Array.iteri
    (fun i c ->
      if c > 0 then
        Printf.printf "  rounds %3d-%3d | %s %d\n" (i * window)
          (((i + 1) * window) - 1)
          (String.make c '#') c)
    hist;

  (* The GST setup is reusable: once built, every further single-message
     broadcast costs only the dissemination part. *)
  print_newline ();
  Printf.printf
    "Note: the Theorem 1.1 setup (%d rounds here) is a one-time cost; after\n\
     it, each further alarm costs only ~%d rounds on this field.\n"
    (cd.Single_broadcast.rounds_layering + cd.Single_broadcast.rounds_construction)
    cd.Single_broadcast.rounds_broadcast
