(* Quickstart: broadcast one message through a random multi-hop radio
   network, with the paper's collision-detection algorithm (Theorem 1.1)
   and with the classic Decay baseline.

   Run with: dune exec examples/quickstart.exe *)

open Rn_util
open Rn_broadcast

let () =
  let rng = Rng.create ~seed:2013 in
  (* A corridor of dense clusters: 96 radios, a long multi-hop diameter. *)
  let graph = Rn_graph.Gen.cluster_path ~rng ~clusters:12 ~size:8 ~p_intra:0.4 in
  let source = 0 in
  let diameter = Rn_graph.Bfs.eccentricity graph source in
  Printf.printf "network: n=%d, m=%d, eccentricity(source)=%d\n\n"
    (Rn_graph.Graph.n graph) (Rn_graph.Graph.m graph) diameter;

  (* Theorem 1.1: collision wave -> rings -> distributed GSTs -> schedule. *)
  let cd = Single_broadcast.run ~rng:(Rng.split rng) ~graph ~source () in
  Printf.printf "with collision detection (Theorem 1.1): %d rounds\n"
    cd.Single_broadcast.rounds_total;
  Printf.printf "  layering %d + construction %d + dissemination %d (%d rings)\n"
    cd.Single_broadcast.rounds_layering cd.Single_broadcast.rounds_construction
    cd.Single_broadcast.rounds_broadcast cd.Single_broadcast.ring_count;
  assert cd.Single_broadcast.delivered;

  (* Baseline: BGI Decay, no collision detection. *)
  let decay = Baselines.decay_broadcast ~rng:(Rng.split rng) ~graph ~source () in
  Printf.printf "Decay baseline (no CD):                  %d rounds\n"
    (Rn_radio.Engine.rounds_of_outcome decay.Decay.outcome);

  print_newline ();
  Printf.printf
    "The CD algorithm pays a poly-log setup once; its dissemination cost\n\
     grows additively with the diameter, while Decay pays a log factor on\n\
     every hop.  Sweep the diameter in bench/main.exe (experiment E1) to\n\
     see the shapes and the crossover.\n"
