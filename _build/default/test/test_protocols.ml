(* Integration and unit tests for the paper's protocols: Decay (Lemma 2.2,
   Lemma 3.2), recruiting (Lemma 2.3), bipartite assignment (Lemmas 2.4,
   2.5), layering, distributed GST construction (Theorem 2.1, Lemma 3.10),
   the MMV GST schedule (Lemma 3.3) and the end-to-end broadcast pipelines
   (Theorems 1.1, 1.2, 1.3). *)

open Rn_util
open Rn_graph
module Topo = Rn_graph.Gen
open Rn_radio
open Rn_broadcast

let rng seed = Rng.create ~seed

let completed = function
  | Engine.Completed _ -> true
  | Engine.Out_of_budget _ -> false

(* ------------------------------------------------------------------ *)
(* Decay *)

let test_decay_probability_ladder () =
  Alcotest.(check (float 1e-9)) "round 0" 0.5 (Decay.probability ~ladder:4 0);
  Alcotest.(check (float 1e-9)) "round 3" 0.0625 (Decay.probability ~ladder:4 3);
  Alcotest.(check (float 1e-9)) "wraps" 0.5 (Decay.probability ~ladder:4 4)

let test_decay_broadcast_delivers () =
  List.iter
    (fun g ->
      let r = Decay.broadcast ~rng:(rng 11) ~graph:g ~source:0 () in
      Alcotest.(check bool) "completed" true (completed r.Decay.outcome);
      Array.iteri
        (fun v rr ->
          Alcotest.(check bool) (Printf.sprintf "node %d got it" v) true (rr >= 0))
        r.Decay.received_round)
    [ Topo.path 20; Topo.star 20; Topo.grid ~w:5 ~h:4; Topo.complete 12 ]

let test_decay_single_node () =
  let r = Decay.broadcast ~rng:(rng 1) ~graph:(Topo.path 1) ~source:0 () in
  Alcotest.(check int) "0 rounds" 0 (Engine.rounds_of_outcome r.Decay.outcome)

let test_decay_respects_distance () =
  (* No node can receive before its BFS distance. *)
  let g = Topo.path 12 in
  let r = Decay.broadcast ~rng:(rng 3) ~graph:g ~source:0 () in
  Array.iteri
    (fun v rr ->
      if v > 0 then
        Alcotest.(check bool) "causality" true (rr >= v - 1))
    r.Decay.received_round

let test_decay_mmv_noising_delivers () =
  let g = Topo.grid ~w:6 ~h:4 in
  let levels = Bfs.levels g ~src:0 in
  let r = Decay.mmv_broadcast ~noising:true ~rng:(rng 5) ~graph:g ~levels ~source:0 () in
  Alcotest.(check bool) "MMV decay completes despite noise" true
    (completed r.Decay.outcome)

let test_decay_mmv_silent_delivers () =
  let g = Topo.grid ~w:6 ~h:4 in
  let levels = Bfs.levels g ~src:0 in
  let r = Decay.mmv_broadcast ~noising:false ~rng:(rng 5) ~graph:g ~levels ~source:0 () in
  Alcotest.(check bool) "silent variant completes" true (completed r.Decay.outcome)

let test_cr_ladder_values () =
  Alcotest.(check int) "n=1024,D=256" (Ilog.clog 4 + 1)
    (Decay.cr_ladder ~n:1024 ~diameter:256);
  Alcotest.(check bool) "small ratio floors at log 2 + 1" true
    (Decay.cr_ladder ~n:16 ~diameter:16 >= 2)

(* ------------------------------------------------------------------ *)
(* Recruiting (Lemma 2.3) *)

let run_recruiting seed ~reds ~blues ~p =
  let r = Rng.create ~seed in
  let g = Topo.bipartite_random ~rng:r ~reds ~blues ~p in
  ( g,
    Recruiting.run_standalone ~rng:(Rng.split r) ~params:Params.default
      ~graph:g
      ~reds:(Array.init reds (fun i -> i))
      ~blues:(Array.init blues (fun i -> reds + i))
      () )

let test_recruiting_covers_all () =
  for seed = 1 to 10 do
    let _, o = run_recruiting seed ~reds:8 ~blues:20 ~p:0.3 in
    Alcotest.(check bool) "all covered" true o.Recruiting.all_covered;
    Alcotest.(check bool) "classes consistent" true o.Recruiting.classes_consistent
  done

let test_recruiting_parents_are_neighbors () =
  let g, o = run_recruiting 42 ~reds:6 ~blues:15 ~p:0.4 in
  List.iter
    (fun (b, r) ->
      Alcotest.(check bool) "parent adjacent" true (Graph.mem_edge g b r))
    o.Recruiting.recruited

let test_recruiting_red_classes_match () =
  let _, o = run_recruiting 7 ~reds:5 ~blues:12 ~p:0.5 in
  (* Count children per red from the blue side and compare. *)
  let count = Hashtbl.create 8 in
  List.iter
    (fun (_, r) ->
      Hashtbl.replace count r (1 + Option.value ~default:0 (Hashtbl.find_opt count r)))
    o.Recruiting.recruited;
  ()

let test_recruiting_single_pair () =
  let g = Graph.create ~n:2 ~edges:[ (0, 1) ] in
  let o =
    Recruiting.run_standalone ~rng:(rng 1) ~params:Params.default ~graph:g
      ~reds:[| 0 |] ~blues:[| 1 |] ()
  in
  Alcotest.(check (list (pair int int))) "recruited" [ (1, 0) ] o.Recruiting.recruited

let test_recruiting_uncoverable_blue () =
  (* A blue with no red neighbor is left out, and that is not a failure. *)
  let g = Graph.create ~n:3 ~edges:[ (0, 1) ] in
  let o =
    Recruiting.run_standalone ~rng:(rng 1) ~params:Params.default ~graph:g
      ~reds:[| 0 |] ~blues:[| 1; 2 |] ()
  in
  Alcotest.(check bool) "covered ones recruited" true o.Recruiting.all_covered;
  Alcotest.(check (list (pair int int))) "only blue 1" [ (1, 0) ] o.Recruiting.recruited

(* ------------------------------------------------------------------ *)
(* Bipartite assignment (Lemmas 2.4 / 2.5) *)

let test_assignment_assigns_everyone () =
  for seed = 1 to 8 do
    let r = Rng.create ~seed in
    let reds = 8 and blues = 18 in
    let g = Topo.bipartite_random ~rng:r ~reds ~blues ~p:0.25 in
    let blue_ranks = Array.make (reds + blues) 0 in
    for b = reds to reds + blues - 1 do
      blue_ranks.(b) <- 1 + Rng.int r 3
    done;
    let o =
      Bipartite_assignment.run_standalone ~rng:(Rng.split r)
        ~params:Params.default ~graph:g
        ~reds:(Array.init reds (fun i -> i))
        ~blues:(Array.init blues (fun i -> reds + i))
        ~blue_ranks ()
    in
    for b = reds to reds + blues - 1 do
      Alcotest.(check bool) "assigned" true (o.Bipartite_assignment.parents.(b) >= 0);
      Alcotest.(check bool) "parent is red" true (o.Bipartite_assignment.parents.(b) < reds)
    done;
    (* Ranking rule per red. *)
    for v = 0 to reds - 1 do
      let children =
        List.filter
          (fun b -> o.Bipartite_assignment.parents.(b) = v)
          (List.init blues (fun i -> reds + i))
      in
      let expected =
        match children with
        | [] -> 0
        | cs ->
            let rmax = List.fold_left (fun a c -> max a blue_ranks.(c)) 0 cs in
            let cnt = List.length (List.filter (fun c -> blue_ranks.(c) = rmax) cs) in
            if cnt >= 2 then rmax + 1 else rmax
      in
      Alcotest.(check int) (Printf.sprintf "red %d rank" v) expected
        o.Bipartite_assignment.ranks.(v)
    done;
    (* Blues know their parent's rank (property needed by footnote 3). *)
    for b = reds to reds + blues - 1 do
      let p = o.Bipartite_assignment.parents.(b) in
      Alcotest.(check int) "parent rank knowledge"
        o.Bipartite_assignment.ranks.(p)
        o.Bipartite_assignment.parent_rank.(b)
    done
  done

let test_assignment_epoch_shrinkage_recorded () =
  let r = Rng.create ~seed:4 in
  let reds = 12 and blues = 30 in
  let g = Topo.bipartite_random ~rng:r ~reds ~blues ~p:0.3 in
  let blue_ranks = Array.make (reds + blues) 1 in
  let o =
    Bipartite_assignment.run_standalone ~rng:(Rng.split r)
      ~params:Params.default ~graph:g
      ~reds:(Array.init reds (fun i -> i))
      ~blues:(Array.init blues (fun i -> reds + i))
      ~blue_ranks ()
  in
  Alcotest.(check bool) "history nonempty" true
    (List.length o.Bipartite_assignment.epoch_history >= 1);
  List.iter
    (fun (rank, active) ->
      Alcotest.(check int) "rank 1 only" 1 rank;
      Alcotest.(check bool) "active in range" true (active >= 0 && active <= reds))
    o.Bipartite_assignment.epoch_history

(* ------------------------------------------------------------------ *)
(* Layering *)

let test_collision_wave_exact_levels () =
  List.iter
    (fun g ->
      let r = Layering.collision_wave ~graph:g ~sources:[| 0 |] () in
      Alcotest.(check (array int)) "levels = BFS" (Bfs.levels g ~src:0)
        r.Layering.levels;
      Alcotest.(check int) "rounds = eccentricity" (Bfs.eccentricity g 0)
        r.Layering.rounds)
    [ Topo.path 17; Topo.grid ~w:5 ~h:5; Topo.star 9; Topo.complete 7 ]

let test_collision_wave_needs_cd () =
  (* On a star with >= 2 arms... actually: two transmitters at round 1
     collide at every second-layer listener; with CD the wave still
     advances.  Check a diamond: 0-1, 0-2, 1-3, 2-3. *)
  let g = Graph.create ~n:4 ~edges:[ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  let r = Layering.collision_wave ~graph:g ~sources:[| 0 |] () in
  Alcotest.(check (array int)) "diamond levels" [| 0; 1; 1; 2 |] r.Layering.levels

let test_decay_bfs_levels () =
  for seed = 1 to 6 do
    let r = Rng.create ~seed in
    let g = Topo.random_connected ~rng:r ~n:40 ~extra:30 in
    let res = Layering.decay_bfs ~rng:(Rng.split r) ~graph:g ~sources:[| 0 |] () in
    Alcotest.(check (array int))
      (Printf.sprintf "seed %d levels" seed)
      (Bfs.levels g ~src:0) res.Layering.levels
  done

let test_decay_bfs_multi_source () =
  let g = Topo.path 9 in
  let res = Layering.decay_bfs ~rng:(rng 2) ~graph:g ~sources:[| 0; 8 |] () in
  Alcotest.(check (array int)) "multi-source"
    (Bfs.multi_levels g ~sources:[| 0; 8 |])
    res.Layering.levels

(* ------------------------------------------------------------------ *)
(* Distributed GST construction (Theorem 2.1) *)

let construct ?(mode = Gst_distributed.Pipelined) ?(learn_vd = true) g seed =
  Gst_distributed.construct ~mode ~learn_vd ~rng:(rng seed) ~graph:g
    ~roots:[| 0 |] ()

let test_distributed_gst_valid_and_spanning () =
  List.iteri
    (fun i g ->
      let r = construct g (100 + i) in
      (match Gst.validate r.Gst_distributed.gst with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      Alcotest.(check int) "spans" (Graph.n g) (Gst.size r.Gst_distributed.gst))
    [
      Topo.path 24;
      Topo.star 16;
      Topo.grid ~w:6 ~h:4;
      Topo.balanced_tree ~arity:3 ~depth:3;
      Topo.random_connected ~rng:(rng 9) ~n:60 ~extra:70;
      Topo.unit_disk ~rng:(rng 10) ~n:50 ~radius:0.25;
    ]

let test_distributed_gst_sequential_mode () =
  let g = Topo.random_connected ~rng:(rng 12) ~n:50 ~extra:40 in
  let r = construct ~mode:Gst_distributed.Sequential g 13 in
  match Gst.validate r.Gst_distributed.gst with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_distributed_gst_learned_vd_matches () =
  for seed = 1 to 6 do
    let g = Topo.random_connected ~rng:(rng (200 + seed)) ~n:48 ~extra:60 in
    let r = construct g seed in
    Alcotest.(check (array int)) "vd = centralized recomputation"
      (Gst.virtual_distances r.Gst_distributed.gst)
      r.Gst_distributed.vd
  done

let test_distributed_gst_parent_rank_knowledge () =
  let g = Topo.grid ~w:5 ~h:5 in
  let r = construct g 31 in
  let gst = r.Gst_distributed.gst in
  Array.iteri
    (fun v p ->
      if p >= 0 then
        Alcotest.(check int)
          (Printf.sprintf "node %d knows parent rank" v)
          gst.Gst.ranks.(p)
          r.Gst_distributed.parent_rank.(v))
    gst.Gst.parents

let test_distributed_gst_ring_band () =
  (* Construction restricted to a band with multi-root layering. *)
  let g = Topo.path 12 in
  let levels = Array.make 12 (-1) in
  for v = 3 to 8 do
    levels.(v) <- v - 3
  done;
  let r =
    Gst_distributed.construct ~layering:(Gst_distributed.Given_layering levels)
      ~learn_vd:true ~rng:(rng 77) ~graph:g ~roots:[| 3 |] ()
  in
  Alcotest.(check int) "band size" 6 (Gst.size r.Gst_distributed.gst);
  match Gst.validate r.Gst_distributed.gst with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_distributed_gst_no_fixups_expected () =
  let g = Topo.random_connected ~rng:(rng 55) ~n:60 ~extra:60 in
  let r = construct g 56 in
  Alcotest.(check int) "class fixups" 0 r.Gst_distributed.class_fixups

(* ------------------------------------------------------------------ *)
(* GST broadcast schedule (Lemma 3.3, Theorem 1.2 machinery) *)

let test_schedule_slots_disjoint () =
  (* Fast slots are even, slow slots odd; a node is never in both. *)
  for round = 0 to 200 do
    for level = 0 to 5 do
      for rank = 1 to 4 do
        let fast = Gst_broadcast.fast_slot ~clogn:5 ~level ~rank ~round in
        let slow = Gst_broadcast.slow_slot ~level_or_vd:level ~round in
        Alcotest.(check bool) "not both" false (fast && slow)
      done
    done
  done

let test_schedule_fast_cadence () =
  (* Every node is fast-scheduled exactly once per 6 clogn rounds. *)
  let clogn = 4 in
  let hits = ref 0 in
  for round = 0 to (6 * clogn) - 1 do
    if Gst_broadcast.fast_slot ~clogn ~level:2 ~rank:3 ~round then incr hits
  done;
  Alcotest.(check int) "once per cycle" 1 !hits

let test_schedule_slow_cadence () =
  let hits = ref 0 in
  for round = 0 to 5 do
    if Gst_broadcast.slow_slot ~level_or_vd:7 ~round then incr hits
  done;
  Alcotest.(check int) "once per 6 rounds" 1 !hits

let test_gst_broadcast_single () =
  List.iteri
    (fun i g ->
      let gst = Gst.build_centralized ~graph:g ~roots:[| 0 |] () in
      let vd = Gst.virtual_distances gst in
      let msgs = [| Rn_coding.Bitvec.random (rng 1) 32 |] in
      let r =
        Gst_broadcast.run ~rng:(rng (300 + i)) ~gst ~vd ~msgs ~sources:[| 0 |] ()
      in
      Alcotest.(check bool) "completed" true (completed r.Gst_broadcast.outcome);
      Alcotest.(check bool) "payloads ok" true r.Gst_broadcast.payloads_ok)
    [ Topo.path 30; Topo.grid ~w:6 ~h:5; Topo.balanced_tree ~arity:2 ~depth:4 ]

let test_gst_broadcast_silent_variant () =
  let g = Topo.grid ~w:5 ~h:5 in
  let gst = Gst.build_centralized ~graph:g ~roots:[| 0 |] () in
  let vd = Gst.virtual_distances gst in
  let msgs = [| Rn_coding.Bitvec.random (rng 1) 32 |] in
  let r =
    Gst_broadcast.run ~noise_when_empty:false ~rng:(rng 17) ~gst ~vd ~msgs
      ~sources:[| 0 |] ()
  in
  Alcotest.(check bool) "silent completes" true (completed r.Gst_broadcast.outcome)

let test_gst_broadcast_multi_sources () =
  (* Forest with several roots, all holding the messages (ring scenario). *)
  let g = Topo.grid ~w:6 ~h:3 in
  let roots = [| 0; 1; 2; 3; 4; 5 |] in
  let gst = Gst.build_centralized ~graph:g ~roots () in
  let vd = Gst.virtual_distances gst in
  let msgs = Multi_broadcast.random_messages (rng 2) ~k:4 ~msg_len:16 in
  let r = Gst_broadcast.run ~rng:(rng 23) ~gst ~vd ~msgs ~sources:roots () in
  Alcotest.(check bool) "completed" true (completed r.Gst_broadcast.outcome);
  Alcotest.(check bool) "payloads" true r.Gst_broadcast.payloads_ok

(* ------------------------------------------------------------------ *)
(* Rings and handoffs *)

let test_rings_decompose () =
  let levels = [| 0; 1; 2; 3; 4; 5; 6 |] in
  let t = Rings.decompose ~levels ~width:3 in
  Alcotest.(check int) "count" 3 t.Rings.count;
  Alcotest.(check (array int)) "roots ring1" [| 3 |] (Rings.roots t 1);
  Alcotest.(check (array int)) "outer ring0" [| 2 |] (Rings.outer_boundary t 0);
  Alcotest.(check (array int)) "ring-local levels"
    [| -1; -1; -1; 0; 1; 2; -1 |]
    (Rings.ring_levels t 1)

let test_rings_charged_rounds () =
  Alcotest.(check int) "2x max" 84 (Rings.charged_parallel_rounds [ 10; 42; 7 ]);
  Alcotest.(check int) "empty" 0 (Rings.charged_parallel_rounds [])

let test_handoff_single () =
  let g = Topo.path 6 in
  let r =
    Rings.handoff_single ~rng:(rng 3) ~graph:g ~holders:[| 2 |]
      ~receivers:[| 3 |] ()
  in
  Alcotest.(check bool) "delivered" true r.Rings.delivered

let test_handoff_fec_batch () =
  (* Boundary layer of 3 holders, 4 receivers, batch of 5. *)
  let edges =
    List.concat_map (fun h -> List.map (fun r -> (h, r)) [ 3; 4; 5; 6 ]) [ 0; 1; 2 ]
  in
  let g = Graph.create ~n:7 ~edges in
  let msgs = Multi_broadcast.random_messages (rng 4) ~k:5 ~msg_len:24 in
  let r, decoded =
    Rings.handoff_fec ~rng:(rng 5) ~graph:g ~holders:[| 0; 1; 2 |]
      ~receivers:[| 3; 4; 5; 6 |] ~msgs ()
  in
  Alcotest.(check bool) "delivered" true r.Rings.delivered;
  match decoded with
  | Some out ->
      Alcotest.(check bool) "batch intact" true
        (Array.for_all2 Rn_coding.Bitvec.equal out msgs)
  | None -> Alcotest.fail "no decode"

(* ------------------------------------------------------------------ *)
(* End-to-end theorems *)

let test_theorem_1_1 () =
  List.iteri
    (fun i g ->
      let r = Single_broadcast.run ~rng:(rng (400 + i)) ~graph:g ~source:0 () in
      Alcotest.(check bool) "delivered" true r.Single_broadcast.delivered;
      Alcotest.(check bool) "every node" true
        (Array.for_all (fun b -> b) r.Single_broadcast.received))
    [
      Topo.path 40;
      Topo.grid ~w:7 ~h:4;
      Topo.cluster_path ~rng:(rng 41) ~clusters:6 ~size:6 ~p_intra:0.5;
      Topo.star 20;
    ]

let test_theorem_1_1_ring_choices () =
  let g = Topo.path 30 in
  List.iter
    (fun rings ->
      let r = Single_broadcast.run ~rings ~rng:(rng 44) ~graph:g ~source:0 () in
      Alcotest.(check bool) "delivered" true r.Single_broadcast.delivered)
    [
      Single_broadcast.Auto;
      Single_broadcast.Ring_count 1;
      Single_broadcast.Ring_count 5;
      Single_broadcast.Ring_width 7;
    ]

let test_theorem_1_2 () =
  let g = Topo.layered_random ~rng:(rng 50) ~depth:8 ~width:5 ~p:0.4 in
  List.iter
    (fun k ->
      let r = Multi_broadcast.known ~rng:(rng (60 + k)) ~graph:g ~source:0 ~k () in
      Alcotest.(check bool) "delivered" true r.Multi_broadcast.delivered;
      Alcotest.(check bool) "payloads" true r.Multi_broadcast.payloads_ok)
    [ 1; 3; 9 ]

let test_theorem_1_3 () =
  let g = Topo.cluster_path ~rng:(rng 70) ~clusters:5 ~size:7 ~p_intra:0.4 in
  List.iter
    (fun k ->
      let r = Multi_broadcast.unknown ~rng:(rng (80 + k)) ~graph:g ~source:0 ~k () in
      Alcotest.(check bool) "delivered" true r.Multi_broadcast.delivered;
      Alcotest.(check bool) "payloads" true r.Multi_broadcast.payloads_ok)
    [ 1; 5; 12 ]

let test_baseline_routing () =
  let g = Topo.grid ~w:5 ~h:4 in
  let r = Baselines.routing_multi ~rng:(rng 90) ~graph:g ~source:0 ~k:6 () in
  Alcotest.(check bool) "delivered" true r.Baselines.delivered;
  Array.iteri
    (fun v c ->
      Alcotest.(check bool) (Printf.sprintf "node %d complete" v) true (c >= 0))
    r.Baselines.complete_round

let test_baseline_sequential () =
  let g = Topo.grid ~w:5 ~h:4 in
  let r = Baselines.sequential_multi ~rng:(rng 91) ~graph:g ~source:0 ~k:4 () in
  Alcotest.(check bool) "delivered" true r.Baselines.delivered

let test_baseline_cr () =
  let g = Topo.path 32 in
  let r = Baselines.cr_broadcast ~rng:(rng 92) ~graph:g ~source:0 ~diameter:31 () in
  Alcotest.(check bool) "completed" true (completed r.Decay.outcome)

(* ------------------------------------------------------------------ *)
(* qcheck properties *)

let arb_graph =
  QCheck.make
    ~print:(fun (n, extra, seed) ->
      Printf.sprintf "(n=%d,extra=%d,seed=%d)" n extra seed)
    QCheck.Gen.(triple (int_range 2 50) (int_range 0 60) (int_range 0 10_000))

let graph_of (n, extra, seed) =
  Topo.random_connected ~rng:(Rng.create ~seed) ~n ~extra

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"decay broadcast always delivers" ~count:60 arb_graph
      (fun spec ->
        let g = graph_of spec in
        let r = Decay.broadcast ~rng:(rng 1) ~graph:g ~source:0 () in
        completed r.Decay.outcome
        && Array.for_all (fun rr -> rr >= 0) r.Decay.received_round);
    Test.make ~name:"collision wave = BFS levels" ~count:80 arb_graph
      (fun spec ->
        let g = graph_of spec in
        let r = Layering.collision_wave ~graph:g ~sources:[| 0 |] () in
        r.Layering.levels = Bfs.levels g ~src:0);
    Test.make ~name:"distributed GST validates" ~count:40 arb_graph
      (fun spec ->
        let g = graph_of spec in
        let r =
          Gst_distributed.construct ~rng:(rng 2) ~graph:g ~roots:[| 0 |] ()
        in
        match Gst.validate r.Gst_distributed.gst with
        | Ok () -> Gst.size r.Gst_distributed.gst = Graph.n g
        | Error _ -> false);
    Test.make ~name:"distributed vd = virtual distances" ~count:25 arb_graph
      (fun spec ->
        let g = graph_of spec in
        let r =
          Gst_distributed.construct ~learn_vd:true ~rng:(rng 3) ~graph:g
            ~roots:[| 0 |] ()
        in
        r.Gst_distributed.vd = Gst.virtual_distances r.Gst_distributed.gst);
    Test.make ~name:"GST broadcast delivers and decodes" ~count:30
      (pair arb_graph (int_range 1 6))
      (fun (spec, k) ->
        let g = graph_of spec in
        let gst = Gst.build_centralized ~graph:g ~roots:[| 0 |] () in
        let vd = Gst.virtual_distances gst in
        let msgs = Multi_broadcast.random_messages (rng 4) ~k ~msg_len:16 in
        let r = Gst_broadcast.run ~rng:(rng 5) ~gst ~vd ~msgs ~sources:[| 0 |] () in
        completed r.Gst_broadcast.outcome && r.Gst_broadcast.payloads_ok);
    Test.make ~name:"Theorem 1.1 delivers on random graphs" ~count:15 arb_graph
      (fun spec ->
        let g = graph_of spec in
        let r = Single_broadcast.run ~rng:(rng 6) ~graph:g ~source:0 () in
        r.Single_broadcast.delivered);
  ]

let () =
  Alcotest.run "protocols"
    [
      ( "decay",
        [
          Alcotest.test_case "probability ladder" `Quick test_decay_probability_ladder;
          Alcotest.test_case "broadcast delivers" `Quick test_decay_broadcast_delivers;
          Alcotest.test_case "single node" `Quick test_decay_single_node;
          Alcotest.test_case "causality" `Quick test_decay_respects_distance;
          Alcotest.test_case "MMV noising" `Quick test_decay_mmv_noising_delivers;
          Alcotest.test_case "MMV silent" `Quick test_decay_mmv_silent_delivers;
          Alcotest.test_case "CR ladder" `Quick test_cr_ladder_values;
        ] );
      ( "recruiting",
        [
          Alcotest.test_case "covers all blues" `Quick test_recruiting_covers_all;
          Alcotest.test_case "parents adjacent" `Quick test_recruiting_parents_are_neighbors;
          Alcotest.test_case "red classes" `Quick test_recruiting_red_classes_match;
          Alcotest.test_case "single pair" `Quick test_recruiting_single_pair;
          Alcotest.test_case "uncoverable blue" `Quick test_recruiting_uncoverable_blue;
        ] );
      ( "assignment",
        [
          Alcotest.test_case "assigns everyone, ranks correct" `Slow
            test_assignment_assigns_everyone;
          Alcotest.test_case "epoch history" `Quick
            test_assignment_epoch_shrinkage_recorded;
        ] );
      ( "layering",
        [
          Alcotest.test_case "collision wave exact" `Quick
            test_collision_wave_exact_levels;
          Alcotest.test_case "collision wave diamond" `Quick test_collision_wave_needs_cd;
          Alcotest.test_case "decay BFS" `Quick test_decay_bfs_levels;
          Alcotest.test_case "decay BFS multi-source" `Quick test_decay_bfs_multi_source;
        ] );
      ( "gst_distributed",
        [
          Alcotest.test_case "valid and spanning" `Slow
            test_distributed_gst_valid_and_spanning;
          Alcotest.test_case "sequential mode" `Quick test_distributed_gst_sequential_mode;
          Alcotest.test_case "learned vd" `Slow test_distributed_gst_learned_vd_matches;
          Alcotest.test_case "parent rank knowledge" `Quick
            test_distributed_gst_parent_rank_knowledge;
          Alcotest.test_case "ring band" `Quick test_distributed_gst_ring_band;
          Alcotest.test_case "no class fixups" `Quick test_distributed_gst_no_fixups_expected;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "slots disjoint" `Quick test_schedule_slots_disjoint;
          Alcotest.test_case "fast cadence" `Quick test_schedule_fast_cadence;
          Alcotest.test_case "slow cadence" `Quick test_schedule_slow_cadence;
          Alcotest.test_case "single broadcast" `Quick test_gst_broadcast_single;
          Alcotest.test_case "silent variant" `Quick test_gst_broadcast_silent_variant;
          Alcotest.test_case "multi-root sources" `Quick test_gst_broadcast_multi_sources;
        ] );
      ( "rings",
        [
          Alcotest.test_case "decompose" `Quick test_rings_decompose;
          Alcotest.test_case "charged rounds" `Quick test_rings_charged_rounds;
          Alcotest.test_case "single handoff" `Quick test_handoff_single;
          Alcotest.test_case "FEC handoff" `Quick test_handoff_fec_batch;
        ] );
      ( "theorems",
        [
          Alcotest.test_case "1.1 single broadcast" `Slow test_theorem_1_1;
          Alcotest.test_case "1.1 ring choices" `Slow test_theorem_1_1_ring_choices;
          Alcotest.test_case "1.2 known topology" `Slow test_theorem_1_2;
          Alcotest.test_case "1.3 unknown topology" `Slow test_theorem_1_3;
          Alcotest.test_case "routing baseline" `Quick test_baseline_routing;
          Alcotest.test_case "sequential baseline" `Quick test_baseline_sequential;
          Alcotest.test_case "CR baseline" `Quick test_baseline_cr;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
